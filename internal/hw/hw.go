// Package hw simulates the hardware platform the OMG paper evaluates on: an
// ARM HiKey 960 development board with an octa-core big.LITTLE SoC
// (4 cores @ 2.4 GHz, 4 cores @ 1.8 GHz), 3 GB of DRAM, a TrustZone address
// space controller (TZASC), per-core L1 caches, a shared L2 cache, and
// TrustZone-aware peripherals (microphone, flash storage).
//
// The simulator is functional plus cycle-approximate: every memory access and
// every modelled operation charges cycles to the core that performs it, and a
// per-core clock converts cycles to simulated time. Access control (which
// world and which core may touch which memory and which peripheral) is
// enforced on every access, which is what the OMG / SANCTUARY security
// argument rests on.
//
// The package is deliberately free of any TrustZone *policy*: it provides the
// mechanisms (TZASC regions, secure/non-secure accesses, peripheral
// assignment, core power control) and the packages trustzone and sanctuary
// implement the firmware and enclave logic on top.
package hw

import "fmt"

// PhysAddr is a physical address on the simulated SoC bus.
type PhysAddr uint64

// World identifies a TrustZone security state. Every bus access is tagged
// with the world of the initiating core (the NS bit in real hardware).
type World int

const (
	// NormalWorld is the non-secure state running the commodity OS.
	NormalWorld World = iota
	// SecureWorld is the secure state running the trusted OS.
	SecureWorld
)

// String returns the conventional TrustZone name of the world.
func (w World) String() string {
	switch w {
	case NormalWorld:
		return "normal"
	case SecureWorld:
		return "secure"
	default:
		return fmt.Sprintf("World(%d)", int(w))
	}
}

// Access describes a single bus transaction for access-control checks.
type Access struct {
	Core  int      // initiating core ID, or -1 for a DMA master
	World World    // security state of the initiator
	Addr  PhysAddr // first byte touched
	Len   int      // number of bytes
	Write bool     // true for stores, false for loads
}

// String renders the access for fault messages.
func (a Access) String() string {
	op := "read"
	if a.Write {
		op = "write"
	}
	return fmt.Sprintf("%s-world core %d %s [%#x, %#x)", a.World, a.Core, op, uint64(a.Addr), uint64(a.Addr)+uint64(a.Len))
}

// BusFault is returned when the TZASC or a peripheral controller rejects an
// access. It is the simulated equivalent of an external abort.
type BusFault struct {
	Access Access
	Reason string
}

// Error implements the error interface.
func (f *BusFault) Error() string {
	return fmt.Sprintf("hw: bus fault: %s: %s", f.Access, f.Reason)
}

// IsBusFault reports whether err is a *BusFault.
func IsBusFault(err error) bool {
	_, ok := err.(*BusFault)
	return ok
}
