package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTZASCBackgroundAllowsEverything(t *testing.T) {
	tz := NewTZASC(1 << 20)
	for _, a := range []Access{
		{Core: 0, World: NormalWorld, Addr: 0, Len: 16},
		{Core: 1, World: NormalWorld, Addr: 100, Len: 16, Write: true},
		{Core: 2, World: SecureWorld, Addr: 4096, Len: 1},
		{Core: -1, World: NormalWorld, Addr: 64, Len: 64}, // DMA
	} {
		if err := tz.Check(a); err != nil {
			t.Errorf("background region rejected %v: %v", a, err)
		}
	}
}

func TestTZASCProgramRequiresSecureWorld(t *testing.T) {
	tz := NewTZASC(1 << 20)
	r := Region{Name: "enclave", Base: 0x1000, Size: 0x1000, Attr: RegionAttr{CoreLock: AnyCore}}
	if err := tz.Program(NormalWorld, r); err == nil {
		t.Fatal("normal world programmed the TZASC")
	} else if !IsBusFault(err) {
		t.Fatalf("want BusFault, got %T: %v", err, err)
	}
	if err := tz.Program(SecureWorld, r); err != nil {
		t.Fatalf("secure world failed to program TZASC: %v", err)
	}
	if err := tz.Unprogram(NormalWorld, "enclave"); err == nil {
		t.Fatal("normal world unprogrammed the TZASC")
	}
	if err := tz.Unprogram(SecureWorld, "enclave"); err != nil {
		t.Fatalf("secure world failed to unprogram: %v", err)
	}
	if err := tz.Unprogram(SecureWorld, "enclave"); err == nil {
		t.Fatal("unprogramming a missing region succeeded")
	}
}

func TestTZASCEnclaveRegionIsolation(t *testing.T) {
	tz := NewTZASC(1 << 24)
	// SANCTUARY-style enclave region: core 3 only, both worlds denied
	// elsewhere, no DMA.
	err := tz.Program(SecureWorld, Region{
		Name: "sa0", Base: 0x100000, Size: 0x10000,
		Attr: RegionAttr{
			NormalRead: true, NormalWrite: true,
			SecureRead: false, SecureWrite: false,
			CoreLock: 3, NoDMA: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		a    Access
		ok   bool
	}{
		{"enclave core reads", Access{Core: 3, World: NormalWorld, Addr: 0x100000, Len: 64}, true},
		{"enclave core writes", Access{Core: 3, World: NormalWorld, Addr: 0x10ff00, Len: 256, Write: true}, true},
		{"other core read", Access{Core: 0, World: NormalWorld, Addr: 0x100000, Len: 4}, false},
		{"other core write", Access{Core: 1, World: NormalWorld, Addr: 0x100010, Len: 4, Write: true}, false},
		{"secure world other core", Access{Core: 2, World: SecureWorld, Addr: 0x100000, Len: 4}, false},
		{"DMA", Access{Core: -1, World: NormalWorld, Addr: 0x100000, Len: 64}, false},
		{"outside region", Access{Core: 0, World: NormalWorld, Addr: 0x200000, Len: 64}, true},
		{"straddles boundary", Access{Core: 0, World: NormalWorld, Addr: 0x0fffc0, Len: 128}, false},
	}
	for _, tc := range cases {
		err := tz.Check(tc.a)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected fault: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: access allowed, want fault", tc.name)
		}
	}
}

func TestTZASCPriorityNewestWins(t *testing.T) {
	tz := NewTZASC(1 << 20)
	deny := RegionAttr{CoreLock: AnyCore} // all false => deny everything
	allow := RegionAttr{NormalRead: true, NormalWrite: true, SecureRead: true, SecureWrite: true, CoreLock: AnyCore}
	if err := tz.Program(SecureWorld, Region{Name: "outer", Base: 0x1000, Size: 0x2000, Attr: deny}); err != nil {
		t.Fatal(err)
	}
	if err := tz.Program(SecureWorld, Region{Name: "hole", Base: 0x1800, Size: 0x100, Attr: allow}); err != nil {
		t.Fatal(err)
	}
	if err := tz.Check(Access{Core: 0, World: NormalWorld, Addr: 0x1800, Len: 16}); err != nil {
		t.Errorf("higher-priority hole not honored: %v", err)
	}
	if err := tz.Check(Access{Core: 0, World: NormalWorld, Addr: 0x1400, Len: 16}); err == nil {
		t.Error("outer deny region not honored")
	}
}

func TestTZASCZeroSizeRegionRejected(t *testing.T) {
	tz := NewTZASC(1 << 20)
	if err := tz.Program(SecureWorld, Region{Name: "empty", Base: 0, Size: 0}); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

// TestTZASCCheckMatchesPerByteOracle cross-checks the range walker in Check
// against a naive per-byte oracle on randomized region sets and accesses.
func TestTZASCCheckMatchesPerByteOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dram = 1 << 16
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tz := NewTZASC(dram)
		for i := 0; i < r.Intn(5); i++ {
			base := PhysAddr(r.Intn(dram - 256))
			size := uint64(r.Intn(1024) + 1)
			if uint64(base)+size > dram {
				size = dram - uint64(base)
			}
			attr := RegionAttr{
				NormalRead:  r.Intn(2) == 0,
				NormalWrite: r.Intn(2) == 0,
				SecureRead:  r.Intn(2) == 0,
				SecureWrite: r.Intn(2) == 0,
				CoreLock:    r.Intn(3) - 1,
				NoDMA:       r.Intn(2) == 0,
			}
			if err := tz.Program(SecureWorld, Region{Name: "r", Base: base, Size: size, Attr: attr}); err != nil {
				return false
			}
		}
		a := Access{
			Core:  r.Intn(4) - 1,
			World: World(r.Intn(2)),
			Addr:  PhysAddr(r.Intn(dram - 300)),
			Len:   r.Intn(300) + 1,
			Write: r.Intn(2) == 0,
		}
		got := tz.Check(a) == nil
		want := true
		for off := 0; off < a.Len; off++ {
			b := a
			b.Addr = a.Addr + PhysAddr(off)
			b.Len = 1
			if tz.Check(b) != nil {
				want = false
				break
			}
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
