package hw

// Cache models a set-associative cache with true-LRU replacement. It tracks
// which line-aligned addresses are resident so the simulator can charge
// realistic hit/miss latencies and so cache side-channel experiments
// (prime+probe, E8) observe genuine eviction behaviour.
//
// A cache can exclude address ranges: accesses to excluded ranges bypass the
// cache entirely (never allocate, never hit). SANCTUARY uses this to keep
// enclave memory out of the shared L2 so that co-resident attackers cannot
// observe enclave-driven evictions.
type Cache struct {
	sets     int
	ways     int
	lineSize int
	// lines[set][way] holds the line-aligned address, valid[set][way] its
	// validity, and lru[set][way] a per-set LRU stamp (higher = more recent).
	lines    [][]PhysAddr
	valid    [][]bool
	lru      [][]uint64
	stamp    uint64
	excluded []addrRange

	hits   uint64
	misses uint64
}

type addrRange struct {
	base PhysAddr
	size uint64
}

func (r addrRange) contains(a PhysAddr) bool {
	return a >= r.base && uint64(a-r.base) < r.size
}

// NewCache constructs a cache with the given geometry.
func NewCache(sets, ways, lineSize int) *Cache {
	c := &Cache{sets: sets, ways: ways, lineSize: lineSize}
	c.lines = make([][]PhysAddr, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.lines[i] = make([]PhysAddr, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Exclude registers [base, base+size) as uncacheable. Subsequent accesses to
// the range bypass the cache; lines already resident are evicted.
func (c *Cache) Exclude(base PhysAddr, size uint64) {
	c.excluded = append(c.excluded, addrRange{base: base, size: size})
	r := addrRange{base: base, size: size}
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if c.valid[s][w] && r.contains(c.lines[s][w]) {
				c.valid[s][w] = false
			}
		}
	}
}

// ClearExclusions removes all exclusion ranges (used between experiments).
func (c *Cache) ClearExclusions() { c.excluded = nil }

// RemoveExclusion drops the exclusion range previously registered with
// exactly (base, size); enclave teardown uses it to make the range cacheable
// again. It reports whether such a range was found.
func (c *Cache) RemoveExclusion(base PhysAddr, size uint64) bool {
	for i, r := range c.excluded {
		if r.base == base && r.size == size {
			c.excluded = append(c.excluded[:i], c.excluded[i+1:]...)
			return true
		}
	}
	return false
}

// Bypasses reports whether addr falls in an excluded range.
func (c *Cache) Bypasses(addr PhysAddr) bool {
	line := c.lineAddr(addr)
	for _, r := range c.excluded {
		if r.contains(line) {
			return true
		}
	}
	return false
}

func (c *Cache) lineAddr(addr PhysAddr) PhysAddr {
	return addr &^ PhysAddr(c.lineSize-1)
}

func (c *Cache) setIndex(line PhysAddr) int {
	return int(uint64(line) / uint64(c.lineSize) % uint64(c.sets))
}

// Access simulates a load/store of the line containing addr. It returns
// whether the line hit and, if the fill evicted a valid victim, the victim's
// line address. Excluded addresses always miss and never allocate.
func (c *Cache) Access(addr PhysAddr) (hit bool, evicted PhysAddr, hadVictim bool) {
	if c.Bypasses(addr) {
		c.misses++
		return false, 0, false
	}
	line := c.lineAddr(addr)
	set := c.setIndex(line)
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == line {
			c.lru[set][w] = c.stamp
			c.hits++
			return true, 0, false
		}
	}
	c.misses++
	// Fill: prefer an invalid way, otherwise evict the LRU way.
	victim := 0
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			goto fill
		}
	}
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	if c.valid[set][victim] {
		evicted, hadVictim = c.lines[set][victim], true
	}
fill:
	c.lines[set][victim] = line
	c.valid[set][victim] = true
	c.lru[set][victim] = c.stamp
	return false, evicted, hadVictim
}

// Probe reports whether the line containing addr is resident without
// updating LRU state or statistics. Prime+probe attackers cannot do this on
// real hardware (they must time accesses); tests use it as ground truth.
func (c *Cache) Probe(addr PhysAddr) bool {
	if c.Bypasses(addr) {
		return false
	}
	line := c.lineAddr(addr)
	set := c.setIndex(line)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			c.valid[s][w] = false
		}
	}
}

// SetOf returns the set index addr maps to; side-channel experiments use it
// to build eviction sets.
func (c *Cache) SetOf(addr PhysAddr) int {
	return c.setIndex(c.lineAddr(addr))
}
