package hw

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testSoC() *SoC {
	return NewSoC(Config{BigCores: 2, LittleCores: 2, DRAMSize: 1 << 24})
}

func TestSoCDefaultsToHiKey960(t *testing.T) {
	s := NewSoC(Config{})
	if s.NumCores() != 8 {
		t.Fatalf("cores = %d, want 8", s.NumCores())
	}
	if s.Core(0).Hz() != BigCoreHz || s.Core(7).Hz() != LittleCoreHz {
		t.Fatalf("core clocks = %d / %d", s.Core(0).Hz(), s.Core(7).Hz())
	}
	if s.Mem().Size() != DRAMSize {
		t.Fatalf("DRAM = %d", s.Mem().Size())
	}
}

func TestSoCReadWriteRoundTrip(t *testing.T) {
	s := testSoC()
	c := s.Core(0)
	want := []byte("offline model guard")
	if err := s.Write(c, 0x4000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.Read(c, 0x4000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestSoCRoundTripProperty(t *testing.T) {
	s := testSoC()
	c := s.Core(1)
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		addr := PhysAddr(0x8000 + uint64(off))
		if err := s.Write(c, addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.Read(c, addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestSoCOutOfRangeFaults(t *testing.T) {
	s := testSoC()
	c := s.Core(0)
	err := s.Read(c, PhysAddr(s.Mem().Size()-4), make([]byte, 16))
	if err == nil || !IsBusFault(err) {
		t.Fatalf("want bus fault, got %v", err)
	}
	if len(s.Faults()) == 0 {
		t.Fatal("fault not recorded")
	}
}

func TestSoCOfflineCoreCannotAccess(t *testing.T) {
	s := testSoC()
	c := s.Core(2)
	if err := c.PowerOff(s.Core(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(c, 0, make([]byte, 4)); err == nil {
		t.Fatal("offline core performed a read")
	}
	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(c, 0, make([]byte, 4)); err != nil {
		t.Fatalf("read after power on: %v", err)
	}
}

func TestSoCEnclaveRegionEnforced(t *testing.T) {
	s := testSoC()
	err := s.TZASC().Program(SecureWorld, Region{
		Name: "sa", Base: 0x100000, Size: 0x10000,
		Attr: RegionAttr{NormalRead: true, NormalWrite: true, CoreLock: 3, NoDMA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("model weights")
	if err := s.Write(s.Core(3), 0x100000, secret); err != nil {
		t.Fatalf("enclave core write: %v", err)
	}
	if err := s.Read(s.Core(0), 0x100000, make([]byte, 8)); err == nil {
		t.Fatal("commodity-OS core read enclave memory")
	}
	if err := s.DMARead(0x100000, make([]byte, 8)); err == nil {
		t.Fatal("DMA read enclave memory")
	}
	got := make([]byte, len(secret))
	if err := s.Read(s.Core(3), 0x100000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("enclave core read wrong data")
	}
}

func TestSoCMicrophoneAssignment(t *testing.T) {
	s := testSoC()
	s.Microphone().Feed(make([]int16, 160))
	// Default: normal world may read.
	if _, err := s.ReadMic(s.Core(0), 80); err != nil {
		t.Fatalf("normal-world mic read with default assignment: %v", err)
	}
	if err := s.TZPC().Assign(SecureWorld, PeriphMicrophone, SecureWorld); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadMic(s.Core(0), 80); err == nil {
		t.Fatal("normal world read secure-assigned microphone")
	}
	s.Core(1).SetWorld(SecureWorld)
	got, err := s.ReadMic(s.Core(1), 80)
	if err != nil {
		t.Fatalf("secure-world mic read: %v", err)
	}
	if len(got) != 80 {
		t.Fatalf("drained %d samples, want 80", len(got))
	}
	if s.Microphone().Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Microphone().Pending())
	}
	if err := s.TZPC().Assign(NormalWorld, PeriphMicrophone, NormalWorld); err == nil {
		t.Fatal("normal world reprogrammed the TZPC")
	}
}

func TestSoCCacheTimingObservable(t *testing.T) {
	s := testSoC()
	c := s.Core(0)
	cold, err := s.MeasureAccess(c, 0x9000, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.MeasureAccess(c, 0x9000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm access (%d cycles) not faster than cold (%d)", warm, cold)
	}
	if warm != L1HitCycles {
		t.Fatalf("warm = %d cycles, want L1 hit (%d)", warm, L1HitCycles)
	}
	if cold != DRAMCycles {
		t.Fatalf("cold = %d cycles, want DRAM (%d)", cold, DRAMCycles)
	}
}

func TestCoreClockConversion(t *testing.T) {
	s := testSoC()
	c := s.Core(0) // 2.4 GHz
	c.ResetCycles()
	c.ChargeDuration(1 * time.Millisecond)
	if got := c.Cycles(); got != 2_400_000 {
		t.Fatalf("1ms at 2.4GHz = %d cycles, want 2400000", got)
	}
	if e := c.Elapsed(); e < 999*time.Microsecond || e > 1001*time.Microsecond {
		t.Fatalf("elapsed = %v, want ~1ms", e)
	}
}

func TestFlashBlobStore(t *testing.T) {
	f := NewFlash()
	f.Store("model.enc", []byte{1, 2, 3})
	got, ok := f.Load("model.enc")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("load = %v, %v", got, ok)
	}
	// Loads are copies: mutating the returned slice must not corrupt flash.
	got[0] = 99
	again, _ := f.Load("model.enc")
	if again[0] != 1 {
		t.Fatal("flash blob aliased caller memory")
	}
	if !f.Corrupt("model.enc", 1) {
		t.Fatal("corrupt failed")
	}
	tampered, _ := f.Load("model.enc")
	if tampered[1] == 2 {
		t.Fatal("corruption had no effect")
	}
	f.Delete("model.enc")
	if _, ok := f.Load("model.enc"); ok {
		t.Fatal("blob survived delete")
	}
}

func TestMemZeroScrubs(t *testing.T) {
	s := testSoC()
	c := s.Core(0)
	secret := bytes.Repeat([]byte{0xAA}, 300)
	if err := s.Write(c, 0x5000, secret); err != nil {
		t.Fatal(err)
	}
	s.Mem().Zero(0x5000, 300)
	got := make([]byte, 300)
	if err := s.Read(c, 0x5000, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after scrub", i, b)
		}
	}
}
