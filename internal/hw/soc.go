package hw

import (
	"fmt"
	"time"
)

// SoC assembles the simulated platform: cores, DRAM, TZASC, caches and
// peripherals. All software layers perform memory and peripheral accesses
// through the SoC so that access control and cycle accounting are applied
// uniformly.
type SoC struct {
	cores  []*Core
	mem    *PhysMem
	tzasc  *TZASC
	l2     *Cache
	tzpc   *PeriphController
	mic    *Microphone
	flash  *Flash
	faults []BusFault
}

// Config describes a SoC to build. The zero value is replaced by HiKey960
// defaults.
type Config struct {
	BigCores    int
	LittleCores int
	BigHz       uint64
	LittleHz    uint64
	DRAMSize    uint64
}

// HiKey960 returns the configuration of the paper's evaluation board.
func HiKey960() Config {
	return Config{
		BigCores:    4,
		LittleCores: 4,
		BigHz:       BigCoreHz,
		LittleHz:    LittleCoreHz,
		DRAMSize:    DRAMSize,
	}
}

// NewSoC builds a SoC from cfg; zero fields take HiKey960 values.
func NewSoC(cfg Config) *SoC {
	def := HiKey960()
	if cfg.BigCores == 0 && cfg.LittleCores == 0 {
		cfg.BigCores, cfg.LittleCores = def.BigCores, def.LittleCores
	}
	if cfg.BigHz == 0 {
		cfg.BigHz = def.BigHz
	}
	if cfg.LittleHz == 0 {
		cfg.LittleHz = def.LittleHz
	}
	if cfg.DRAMSize == 0 {
		cfg.DRAMSize = def.DRAMSize
	}
	s := &SoC{
		mem:   NewPhysMem(cfg.DRAMSize),
		tzasc: NewTZASC(cfg.DRAMSize),
		l2:    NewCache(L2Sets, L2Ways, CacheLineSize),
		tzpc:  NewPeriphController(),
		mic:   NewMicrophone(),
		flash: NewFlash(),
	}
	id := 0
	for i := 0; i < cfg.BigCores; i++ {
		s.addCore(id, cfg.BigHz)
		id++
	}
	for i := 0; i < cfg.LittleCores; i++ {
		s.addCore(id, cfg.LittleHz)
		id++
	}
	return s
}

func (s *SoC) addCore(id int, hz uint64) {
	c := &Core{
		id:     id,
		hz:     hz,
		soc:    s,
		world:  NormalWorld,
		online: true,
		l1:     NewCache(L1Sets, L1Ways, CacheLineSize),
	}
	s.cores = append(s.cores, c)
}

// Core returns core i.
func (s *SoC) Core(i int) *Core { return s.cores[i] }

// NumCores returns the number of cores.
func (s *SoC) NumCores() int { return len(s.cores) }

// Cores returns all cores.
func (s *SoC) Cores() []*Core { return s.cores }

// Mem exposes raw DRAM for privileged software layers (firmware load) and
// for attacker models that simulate physical access in tests. Regular
// software must use Read/Write.
func (s *SoC) Mem() *PhysMem { return s.mem }

// TZASC returns the address space controller.
func (s *SoC) TZASC() *TZASC { return s.tzasc }

// TZPC returns the peripheral protection controller.
func (s *SoC) TZPC() *PeriphController { return s.tzpc }

// L2 returns the shared level-2 cache model.
func (s *SoC) L2() *Cache { return s.l2 }

// Microphone returns the board microphone.
func (s *SoC) Microphone() *Microphone { return s.mic }

// Flash returns the untrusted flash blob store.
func (s *SoC) Flash() *Flash { return s.flash }

// Faults returns the bus faults recorded so far (most recent last).
func (s *SoC) Faults() []BusFault { return s.faults }

func (s *SoC) recordFault(err error) {
	if f, ok := err.(*BusFault); ok {
		s.faults = append(s.faults, *f)
	}
}

// Read performs a checked, cycle-charged load of len(buf) bytes at addr on
// behalf of core c.
func (s *SoC) Read(c *Core, addr PhysAddr, buf []byte) error {
	return s.access(c, addr, buf, nil)
}

// Write performs a checked, cycle-charged store of data at addr on behalf of
// core c.
func (s *SoC) Write(c *Core, addr PhysAddr, data []byte) error {
	return s.access(c, addr, nil, data)
}

func (s *SoC) access(c *Core, addr PhysAddr, readBuf, writeData []byte) error {
	n := len(readBuf)
	write := false
	if writeData != nil {
		n = len(writeData)
		write = true
	}
	if n == 0 {
		return nil
	}
	if !c.online {
		return fmt.Errorf("hw: core %d is offline", c.id)
	}
	a := Access{Core: c.id, World: c.world, Addr: addr, Len: n, Write: write}
	if !s.mem.InRange(addr, n) {
		err := &BusFault{Access: a, Reason: "address outside DRAM"}
		s.recordFault(err)
		return err
	}
	if err := s.tzasc.Check(a); err != nil {
		s.recordFault(err)
		return err
	}
	s.chargeMemory(c, addr, n)
	if write {
		s.mem.Write(addr, writeData)
	} else {
		s.mem.Read(addr, readBuf)
	}
	return nil
}

// chargeMemory walks the cache hierarchy line by line and charges latency.
func (s *SoC) chargeMemory(c *Core, addr PhysAddr, n int) {
	line := PhysAddr(uint64(addr) &^ uint64(CacheLineSize-1))
	end := uint64(addr) + uint64(n)
	for uint64(line) < end {
		if hit, _, _ := c.l1.Access(line); hit {
			c.Charge(L1HitCycles)
		} else if hit, _, _ := s.l2.Access(line); hit {
			c.Charge(L2HitCycles)
		} else {
			c.Charge(DRAMCycles)
		}
		line += PhysAddr(CacheLineSize)
	}
}

// MeasureAccess performs a read like Read but returns the cycles it cost,
// which is what a prime+probe attacker observes through timing.
func (s *SoC) MeasureAccess(c *Core, addr PhysAddr, n int) (uint64, error) {
	before := c.Cycles()
	buf := make([]byte, n)
	if err := s.Read(c, addr, buf); err != nil {
		return 0, err
	}
	return c.Cycles() - before, nil
}

// DMARead models a non-CPU bus master (e.g. a malicious DMA-capable device)
// reading memory. The TZASC's NoDMA attribute blocks it for protected
// regions.
func (s *SoC) DMARead(addr PhysAddr, buf []byte) error {
	a := Access{Core: -1, World: NormalWorld, Addr: addr, Len: len(buf)}
	if !s.mem.InRange(addr, len(buf)) {
		err := &BusFault{Access: a, Reason: "address outside DRAM"}
		s.recordFault(err)
		return err
	}
	if err := s.tzasc.Check(a); err != nil {
		s.recordFault(err)
		return err
	}
	s.mem.Read(addr, buf)
	return nil
}

// ReadMic drains up to n samples from the microphone on behalf of core c,
// enforcing the TZPC assignment and charging FIFO transfer cost.
func (s *SoC) ReadMic(c *Core, n int) ([]int16, error) {
	buf := make([]int16, n)
	got, err := s.ReadMicInto(c, buf)
	if err != nil {
		return nil, err
	}
	return buf[:got], nil
}

// ReadMicInto is ReadMic draining into caller-owned storage (up to len(dst)
// samples), returning the transferred count; the secure peripheral driver
// uses it to keep the capture path allocation-free.
func (s *SoC) ReadMicInto(c *Core, dst []int16) (int, error) {
	a := Access{Core: c.id, World: c.world, Len: len(dst)}
	if err := s.tzpc.Check(a, PeriphMicrophone); err != nil {
		s.recordFault(err)
		return 0, err
	}
	got := s.mic.DrainInto(dst)
	bursts := (got*2 + 63) / 64
	c.Charge(uint64(bursts) * PeriphCycles)
	return got, nil
}

// Elapsed returns the largest per-core simulated time, a convenient
// "wall clock" for multi-core protocol measurements.
func (s *SoC) Elapsed() time.Duration {
	var max time.Duration
	for _, c := range s.cores {
		if e := c.Elapsed(); e > max {
			max = e
		}
	}
	return max
}

// TotalBusy returns the sum of all cores' simulated busy time. Protocol
// phases execute mostly sequentially across cores, so deltas of TotalBusy
// approximate phase latency regardless of which core did the work.
func (s *SoC) TotalBusy() time.Duration {
	var sum time.Duration
	for _, c := range s.cores {
		sum += c.Elapsed()
	}
	return sum
}
