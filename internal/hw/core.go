package hw

import (
	"fmt"
	"time"
)

// Core models one CPU core of the SoC. A core has a fixed clock frequency, a
// current security state (the NS bit), a power state, and a cycle counter
// that accumulates the cost of everything executed on it. Cores are not
// goroutine-safe; the simulation is single-threaded by design so that cycle
// accounting is deterministic.
type Core struct {
	id     int
	hz     uint64
	soc    *SoC
	world  World
	online bool
	cycles uint64
	l1     *Cache
}

// ID returns the core's index on the SoC.
func (c *Core) ID() int { return c.id }

// Hz returns the core's clock frequency.
func (c *Core) Hz() uint64 { return c.hz }

// World returns the core's current security state.
func (c *Core) World() World { return c.world }

// SetWorld switches the core's security state. On real hardware only the
// secure monitor can do this; the trustzone package is the only caller.
func (c *Core) SetWorld(w World) { c.world = w }

// Online reports whether the core is powered on.
func (c *Core) Online() bool { return c.online }

// Cycles returns the total cycles charged to this core since reset.
func (c *Core) Cycles() uint64 { return c.cycles }

// Charge adds n cycles of simulated work to the core.
func (c *Core) Charge(n uint64) { c.cycles += n }

// ChargeDuration charges the cycle equivalent of d at this core's clock.
func (c *Core) ChargeDuration(d time.Duration) {
	if d <= 0 {
		return
	}
	c.cycles += uint64(d.Nanoseconds()) * c.hz / 1_000_000_000
}

// Elapsed converts the core's cycle counter to simulated time.
func (c *Core) Elapsed() time.Duration {
	return time.Duration(float64(c.cycles) / float64(c.hz) * 1e9)
}

// ResetCycles zeroes the cycle counter; measurement harnesses use it to
// delimit intervals.
func (c *Core) ResetCycles() { c.cycles = 0 }

// L1 returns the core's private L1 data cache model.
func (c *Core) L1() *Cache { return c.l1 }

// PowerOff powers the core down, charging the shutdown cost to the core that
// initiates it (by in SANCTUARY's flow, the commodity OS core). The core's
// architectural state (world) resets to normal.
func (c *Core) PowerOff(initiator *Core) error {
	if !c.online {
		return fmt.Errorf("hw: core %d already offline", c.id)
	}
	c.online = false
	c.world = NormalWorld
	if initiator != nil {
		initiator.ChargeDuration(CoreShutdownTime)
	}
	return nil
}

// PowerOn boots the core. SANCTUARY boots enclave cores with the SL image;
// the boot latency is charged to the booted core itself (it is the one that
// runs the boot ROM and SL init).
func (c *Core) PowerOn() error {
	if c.online {
		return fmt.Errorf("hw: core %d already online", c.id)
	}
	c.online = true
	c.ChargeDuration(CoreBootTime)
	return nil
}

// InvalidateL1 flushes the core's L1 cache, as SANCTUARY's teardown step
// requires before handing the core back to the commodity OS.
func (c *Core) InvalidateL1() {
	c.l1.Flush()
	c.Charge(uint64(L1Sets*L1Ways) * 2)
}
