package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(4, 2, 64)
	if hit, _, _ := c.Access(0x100); hit {
		t.Fatal("cold cache reported a hit")
	}
	if hit, _, _ := c.Access(0x100); !hit {
		t.Fatal("second access missed")
	}
	if hit, _, _ := c.Access(0x13f); !hit {
		t.Fatal("same-line access missed")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-ish cache: 2 sets, 2 ways, 64B lines. Addresses mapping to set 0
	// are multiples of 128.
	c := NewCache(2, 2, 64)
	a0, a1, a2 := PhysAddr(0), PhysAddr(128), PhysAddr(256)
	c.Access(a0)
	c.Access(a1)
	c.Access(a0) // a0 now MRU, a1 LRU
	_, evicted, had := c.Access(a2)
	if !had || evicted != a1 {
		t.Fatalf("evicted %#x (had=%v), want %#x", uint64(evicted), had, uint64(a1))
	}
	if !c.Probe(a0) || c.Probe(a1) || !c.Probe(a2) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestCacheExclusion(t *testing.T) {
	c := NewCache(4, 2, 64)
	c.Access(0x1000)
	if !c.Probe(0x1000) {
		t.Fatal("line not resident after access")
	}
	c.Exclude(0x1000, 0x100)
	if c.Probe(0x1000) {
		t.Fatal("excluded line still resident")
	}
	if hit, _, _ := c.Access(0x1000); hit {
		t.Fatal("excluded access hit")
	}
	if c.Probe(0x1000) {
		t.Fatal("excluded access allocated a line")
	}
	// Non-excluded addresses still cache normally.
	c.Access(0x2000)
	if !c.Probe(0x2000) {
		t.Fatal("regular line did not allocate")
	}
	c.ClearExclusions()
	c.Access(0x1000)
	if !c.Probe(0x1000) {
		t.Fatal("line not cacheable after ClearExclusions")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(8, 4, 64)
	for i := 0; i < 32; i++ {
		c.Access(PhysAddr(i * 64))
	}
	c.Flush()
	for i := 0; i < 32; i++ {
		if c.Probe(PhysAddr(i * 64)) {
			t.Fatalf("line %d resident after flush", i)
		}
	}
}

func TestCacheSetOf(t *testing.T) {
	c := NewCache(16, 4, 64)
	if got := c.SetOf(0); got != 0 {
		t.Errorf("SetOf(0) = %d", got)
	}
	if got := c.SetOf(64 * 17); got != 1 {
		t.Errorf("SetOf(64*17) = %d, want 1", got)
	}
	if got := c.SetOf(64*16 + 63); got != 0 {
		t.Errorf("SetOf(64*16+63) = %d, want 0", got)
	}
}

// TestCacheResidencyInvariant: immediately after a non-excluded access, the
// line is resident; the cache never holds more than `ways` lines per set.
func TestCacheResidencyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCache(8, 2, 64)
		resident := make(map[int]map[PhysAddr]bool)
		for i := 0; i < 200; i++ {
			addr := PhysAddr(r.Intn(1 << 14))
			line := addr &^ 63
			set := c.SetOf(addr)
			_, evicted, had := c.Access(addr)
			if !c.Probe(addr) {
				return false
			}
			if resident[set] == nil {
				resident[set] = make(map[PhysAddr]bool)
			}
			if had {
				delete(resident[set], evicted)
			}
			resident[set][line] = true
			if len(resident[set]) > c.Ways() {
				return false
			}
			// Everything we believe resident must be resident.
			for l := range resident[set] {
				if !c.Probe(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
