package hw

import "fmt"

// PeriphID identifies a peripheral on the simulated bus.
type PeriphID string

// Standard peripherals of the simulated board.
const (
	PeriphMicrophone PeriphID = "microphone"
	PeriphFlash      PeriphID = "flash"
)

// PeriphController models the TrustZone Protection Controller (TZPC): it
// records, per peripheral, which world may access it. OMG assigns the
// microphone to the secure world so voice samples can only be read through
// the trusted peripheral service (§III-B, §V step 7).
type PeriphController struct {
	assignment map[PeriphID]World
}

// NewPeriphController returns a controller with all peripherals defaulting
// to normal-world access.
func NewPeriphController() *PeriphController {
	return &PeriphController{assignment: make(map[PeriphID]World)}
}

// Assign dedicates a peripheral to a world. Only secure-world callers may
// reassign peripherals, mirroring the TZPC's secure-only programming model.
func (p *PeriphController) Assign(by World, id PeriphID, to World) error {
	if by != SecureWorld {
		return &BusFault{
			Access: Access{Core: -1, World: by, Write: true},
			Reason: "TZPC programming from non-secure world",
		}
	}
	p.assignment[id] = to
	return nil
}

// WorldOf returns the world a peripheral is assigned to.
func (p *PeriphController) WorldOf(id PeriphID) World {
	return p.assignment[id] // zero value = NormalWorld
}

// Check validates an access to the peripheral by the given world.
func (p *PeriphController) Check(a Access, id PeriphID) error {
	owner := p.WorldOf(id)
	if owner == SecureWorld && a.World != SecureWorld {
		return &BusFault{Access: a, Reason: fmt.Sprintf("peripheral %q assigned to secure world", id)}
	}
	return nil
}

// Microphone models the board's PDM microphone front end. A test or demo
// installs a PCM16 sample source; reads drain it through a FIFO, charging
// MMIO cost per transfer burst. The microphone holds whatever audio the
// "environment" produced; access control decides who may read it.
type Microphone struct {
	pending []int16
	// SampleRate is informational (the frontend assumes 16 kHz).
	SampleRate int
}

// NewMicrophone returns a microphone with an empty FIFO.
func NewMicrophone() *Microphone {
	return &Microphone{SampleRate: 16000}
}

// Feed appends samples to the FIFO, as if the user spoke into the device.
func (m *Microphone) Feed(samples []int16) {
	m.pending = append(m.pending, samples...)
}

// Pending returns the number of buffered samples.
func (m *Microphone) Pending() int { return len(m.pending) }

// Drain removes and returns up to n samples from the FIFO.
func (m *Microphone) Drain(n int) []int16 {
	if n > len(m.pending) {
		n = len(m.pending)
	}
	out := make([]int16, n)
	m.DrainInto(out)
	return out
}

// DrainInto removes up to len(dst) samples from the FIFO into dst and
// returns how many were transferred — the allocation-free drain the secure
// peripheral driver uses on its hot path.
func (m *Microphone) DrainInto(dst []int16) int {
	n := copy(dst, m.pending)
	m.pending = m.pending[n:]
	return n
}

// Flash models untrusted on-board flash storage as a blob store. OMG keeps
// the *encrypted* model here (§V step 4): the store is reachable from the
// normal world, so nothing confidential may be stored in plaintext.
type Flash struct {
	blobs map[string][]byte
}

// NewFlash returns an empty flash store.
func NewFlash() *Flash {
	return &Flash{blobs: make(map[string][]byte)}
}

// Store writes a named blob (replacing any previous content).
func (f *Flash) Store(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	f.blobs[name] = cp
}

// Load returns a copy of a named blob.
func (f *Flash) Load(name string) ([]byte, bool) {
	data, ok := f.blobs[name]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// Delete removes a named blob.
func (f *Flash) Delete(name string) { delete(f.blobs, name) }

// Names returns the stored blob names (order unspecified).
func (f *Flash) Names() []string {
	names := make([]string, 0, len(f.blobs))
	for n := range f.blobs {
		names = append(names, n)
	}
	return names
}

// Corrupt flips one bit of a stored blob, for tamper-detection tests.
func (f *Flash) Corrupt(name string, byteIndex int) bool {
	data, ok := f.blobs[name]
	if !ok || byteIndex >= len(data) {
		return false
	}
	data[byteIndex] ^= 0x01
	return true
}
