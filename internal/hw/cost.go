package hw

import "time"

// Cost-model constants. Each constant is annotated with its provenance:
//
//   - "paper": a number stated in the OMG paper (or in the SANCTUARY paper it
//     cites for platform costs) that we adopt directly.
//   - "calibrated": chosen so that the end-to-end Table I pipeline lands near
//     the paper's measured totals on the simulated 2.4 GHz core.
//   - "estimated": a plausible architectural figure with no paper source;
//     only latency *shapes* depend on these.
const (
	// BigCoreHz is the clock of the four "big" cores. [paper §VI]
	BigCoreHz = 2_400_000_000
	// LittleCoreHz is the clock of the four "LITTLE" cores. [paper §VI]
	LittleCoreHz = 1_800_000_000
	// DRAMSize is the physical memory size (3 GB). [paper §VI] The simulator
	// backs only the pages actually used, so tests may use far less.
	DRAMSize = 3 << 30

	// CacheLineSize is the line size of both cache levels. [estimated]
	CacheLineSize = 64
	// L1Sets and L1Ways describe a 32 KiB 4-way per-core L1 data cache.
	// [estimated, typical Cortex-A73]
	L1Sets = 128
	L1Ways = 4
	// L2Sets and L2Ways describe a 1 MiB 16-way shared L2. [estimated]
	L2Sets = 1024
	L2Ways = 16

	// L1HitCycles, L2HitCycles and DRAMCycles are per-line access latencies
	// charged to the initiating core. [estimated]
	L1HitCycles  = 4
	L2HitCycles  = 22
	DRAMCycles   = 160
	PeriphCycles = 60 // MMIO register or FIFO beat [estimated]
)

// WorldSwitchTime is the cost of a world switch from a SANCTUARY App to the
// secure world and back (one SMC round trip). [paper §VI: "the switch from an
// SA to the secure world takes around 0.3 ms", citing SANCTUARY]
const WorldSwitchTime = 300 * time.Microsecond

// Core power-management costs, charged when SANCTUARY shuts a core down and
// boots it with the SANCTUARY Library. [estimated from SANCTUARY's reported
// SA setup times; only E5/E6 phase costs depend on them]
const (
	CoreShutdownTime = 2 * time.Millisecond
	CoreBootTime     = 25 * time.Millisecond
)

// Arithmetic cost model for code executed on a simulated core. The TFLM
// reference kernels are portable C without NEON, so a quantized
// multiply-accumulate costs well above one cycle. [calibrated: one utterance
// through frontend+tiny_conv ≈ 3.79 ms at 2.4 GHz, Table I]
//
// The cost model is a property of the MODELED device, not of the host
// kernels that simulate it: the engine's SWAR GEMM retires three int8 MACs
// per 64-bit host multiply and the parallel InvokeBatch fans utterances
// across host cores, but both change only wall time — CyclesPerMAC still
// prices the portable scalar kernel the paper's device runs, and metering
// still charges every utterance's full cycle count on its (single) enclave
// core. Recalibrate these constants only if the modeled device changes.
const (
	CyclesPerMAC           = 18         // int8 MAC incl. requantization amortization
	CyclesPerButterfly     = 14         // fixed-point radix-2 FFT butterfly
	CyclesPerRFFTPostBin   = 7          // real-FFT split post-pass per spectrum bin (half a butterfly's rotate+combine)
	CyclesPerActivation    = 4          // ReLU / clamp per element
	CyclesPerSoftmaxTerm   = 40         // exp approximation per logit
	CyclesPerFeatureBin    = 6          // bin averaging + log compression per bin
	CyclesPerByteCopy      = 1          // bulk copies (memcpy-like), per byte
	CyclesPerByteHash      = 12         // SHA-256 measurement, per byte [estimated]
	CyclesPerByteAES       = 24         // AES-GCM without crypto extensions [estimated]
	CyclesPerRSA2048Sign   = 26_000_000 // ~11 ms at 2.4 GHz [estimated]
	CyclesPerRSA2048Verify = 700_000    // ~0.3 ms at 2.4 GHz [estimated]
)

// RSAKeygenTime models RSA-2048 key-pair generation, performed once per
// enclave instance during the preparation phase. [estimated]
const RSAKeygenTime = 120 * time.Millisecond
