package hw

// PhysMem is the simulated DRAM. It is sparsely backed: pages are allocated
// on first touch, so a 3 GB address space costs only what the workload
// actually uses. PhysMem performs no access-control checks; those belong to
// the TZASC, consulted by the SoC front end.
type PhysMem struct {
	size  uint64
	pages map[uint64][]byte
}

const pageShift = 16 // 64 KiB simulator pages
const pageSize = 1 << pageShift

// NewPhysMem creates a DRAM of the given size.
func NewPhysMem(size uint64) *PhysMem {
	return &PhysMem{size: size, pages: make(map[uint64][]byte)}
}

// Size returns the DRAM size in bytes.
func (m *PhysMem) Size() uint64 { return m.size }

// InRange reports whether [addr, addr+n) lies inside DRAM.
func (m *PhysMem) InRange(addr PhysAddr, n int) bool {
	if n < 0 {
		return false
	}
	end := uint64(addr) + uint64(n)
	return end >= uint64(addr) && end <= m.size
}

func (m *PhysMem) page(idx uint64) []byte {
	p, ok := m.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	return p
}

// Read copies len(buf) bytes starting at addr into buf.
func (m *PhysMem) Read(addr PhysAddr, buf []byte) {
	off := uint64(addr)
	for len(buf) > 0 {
		p := m.page(off >> pageShift)
		in := off & (pageSize - 1)
		n := copy(buf, p[in:])
		buf = buf[n:]
		off += uint64(n)
	}
}

// Write copies data into DRAM starting at addr.
func (m *PhysMem) Write(addr PhysAddr, data []byte) {
	off := uint64(addr)
	for len(data) > 0 {
		p := m.page(off >> pageShift)
		in := off & (pageSize - 1)
		n := copy(p[in:], data)
		data = data[n:]
		off += uint64(n)
	}
}

// Zero clears [addr, addr+n); SANCTUARY's teardown uses it to scrub enclave
// memory before unlocking it.
func (m *PhysMem) Zero(addr PhysAddr, n uint64) {
	off := uint64(addr)
	remaining := n
	for remaining > 0 {
		p := m.page(off >> pageShift)
		in := off & (pageSize - 1)
		span := uint64(pageSize) - in
		if span > remaining {
			span = remaining
		}
		clearBytes(p[in : in+span])
		off += span
		remaining -= span
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
