package hw

import (
	"fmt"
	"sort"
)

// RegionAttr describes the access policy of one TZASC region.
//
// SANCTUARY's key trick is that the TZASC can bind a physical memory range
// to a single CPU core in addition to the usual secure/non-secure split:
// the enclave's memory is normal-world memory, but only the enclave's
// dedicated core may access it.
type RegionAttr struct {
	// NormalRead / NormalWrite permit non-secure accesses.
	NormalRead  bool
	NormalWrite bool
	// SecureRead / SecureWrite permit secure-world accesses.
	SecureRead  bool
	SecureWrite bool
	// CoreLock restricts all accesses to the given core ID. -1 disables the
	// restriction. The lock applies to both worlds: even secure-world code on
	// another core is refused, which keeps the enclave's TCB free of the
	// (potentially large) secure-world stack.
	CoreLock int
	// NoDMA blocks bus masters other than CPU cores (DMA attack protection,
	// inherited from TrustZone per §III-B).
	NoDMA bool
}

// AnyCore is the CoreLock value that allows all cores.
const AnyCore = -1

// Region is a contiguous physical range with an access policy.
type Region struct {
	Name string
	Base PhysAddr
	Size uint64
	Attr RegionAttr
}

// End returns the first address past the region.
func (r Region) End() PhysAddr { return r.Base + PhysAddr(r.Size) }

func (r Region) contains(a PhysAddr) bool { return a >= r.Base && a < r.End() }

// TZASC models the TrustZone Address Space Controller: an ordered list of
// regions where the highest-numbered (most recently programmed) matching
// region wins, mirroring the priority scheme of the real TZC-400. A default
// background region makes all of DRAM normal-world accessible.
//
// Programming the TZASC is itself a privileged operation: on the simulated
// platform only secure-world callers may add or remove regions, which the
// Program/Unprogram methods enforce.
type TZASC struct {
	regions []Region
	nextID  int
}

// NewTZASC returns a TZASC with the default all-permissive background region
// for a DRAM of the given size.
func NewTZASC(dramSize uint64) *TZASC {
	t := &TZASC{}
	t.regions = append(t.regions, Region{
		Name: "background",
		Base: 0,
		Size: dramSize,
		Attr: RegionAttr{
			NormalRead: true, NormalWrite: true,
			SecureRead: true, SecureWrite: true,
			CoreLock: AnyCore,
		},
	})
	return t
}

// Program installs a region with higher priority than all existing regions.
// Only secure-world callers may program the TZASC; normal-world attempts get
// a bus fault, exactly the property SANCTUARY relies on to keep the
// commodity OS from unlocking enclave memory.
func (t *TZASC) Program(by World, r Region) error {
	if by != SecureWorld {
		return &BusFault{
			Access: Access{Core: -1, World: by, Write: true},
			Reason: "TZASC programming from non-secure world",
		}
	}
	if r.Size == 0 {
		return fmt.Errorf("hw: TZASC region %q has zero size", r.Name)
	}
	t.regions = append(t.regions, r)
	return nil
}

// Unprogram removes the highest-priority region with the given name. Only
// secure-world callers may do so.
func (t *TZASC) Unprogram(by World, name string) error {
	if by != SecureWorld {
		return &BusFault{
			Access: Access{Core: -1, World: by, Write: true},
			Reason: "TZASC programming from non-secure world",
		}
	}
	for i := len(t.regions) - 1; i >= 1; i-- { // region 0 is the background
		if t.regions[i].Name == name {
			t.regions = append(t.regions[:i], t.regions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("hw: TZASC region %q not programmed", name)
}

// Lookup returns the highest-priority region containing addr.
func (t *TZASC) Lookup(addr PhysAddr) (Region, bool) {
	for i := len(t.regions) - 1; i >= 0; i-- {
		if t.regions[i].contains(addr) {
			return t.regions[i], true
		}
	}
	return Region{}, false
}

// Check validates a bus access against the programmed regions. Accesses that
// span region boundaries are checked per byte range; every byte must be
// permitted.
func (t *TZASC) Check(a Access) error {
	if a.Len <= 0 {
		return nil
	}
	addr := a.Addr
	remaining := uint64(a.Len)
	for remaining > 0 {
		r, ok := t.Lookup(addr)
		if !ok {
			return &BusFault{Access: a, Reason: "address outside DRAM"}
		}
		if err := t.checkRegion(a, r); err != nil {
			return err
		}
		// Advance only to the nearest boundary of *any* region, since a
		// higher-priority region may begin inside the one that matched.
		span := uint64(t.nextBoundary(addr) - addr)
		if span > remaining {
			span = remaining
		}
		addr += PhysAddr(span)
		remaining -= span
	}
	return nil
}

// nextBoundary returns the smallest region base or end strictly above addr.
func (t *TZASC) nextBoundary(addr PhysAddr) PhysAddr {
	best := PhysAddr(^uint64(0))
	for _, r := range t.regions {
		if r.Base > addr && r.Base < best {
			best = r.Base
		}
		if e := r.End(); e > addr && e < best {
			best = e
		}
	}
	return best
}

func (t *TZASC) checkRegion(a Access, r Region) error {
	if a.Core < 0 && r.Attr.NoDMA {
		return &BusFault{Access: a, Reason: fmt.Sprintf("DMA blocked by region %q", r.Name)}
	}
	if a.Core >= 0 && r.Attr.CoreLock != AnyCore && r.Attr.CoreLock != a.Core {
		return &BusFault{Access: a, Reason: fmt.Sprintf("region %q locked to core %d", r.Name, r.Attr.CoreLock)}
	}
	var allowed bool
	switch {
	case a.World == NormalWorld && !a.Write:
		allowed = r.Attr.NormalRead
	case a.World == NormalWorld && a.Write:
		allowed = r.Attr.NormalWrite
	case a.World == SecureWorld && !a.Write:
		allowed = r.Attr.SecureRead
	default:
		allowed = r.Attr.SecureWrite
	}
	if !allowed {
		op := "read"
		if a.Write {
			op = "write"
		}
		return &BusFault{Access: a, Reason: fmt.Sprintf("%s-world %s denied by region %q", a.World, op, r.Name)}
	}
	return nil
}

// Regions returns a copy of the programmed regions ordered base-ascending,
// for diagnostics and the F1 architecture rendering.
func (t *TZASC) Regions() []Region {
	out := make([]Region, len(t.regions))
	copy(out, t.regions)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}
