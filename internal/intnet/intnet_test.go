package intnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tflm"
)

func paperSpec(t *testing.T) *Spec {
	t.Helper()
	m, err := tflm.BuildRandomTinyConv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFromModelPaperGeometry(t *testing.T) {
	spec := paperSpec(t)
	if spec.InH != 49 || spec.InW != 43 || spec.Filters != 8 {
		t.Fatalf("geometry %+v", spec)
	}
	if spec.OutH != 25 || spec.OutW != 22 || spec.FlatLen != 4400 {
		t.Fatalf("conv geometry %+v", spec)
	}
	if spec.NumClasses != 12 || spec.InputLn != 49*43 {
		t.Fatalf("io geometry %+v", spec)
	}
	if spec.PadT != 4 || spec.PadL != 3 {
		t.Fatalf("padding %d,%d", spec.PadT, spec.PadL)
	}
	if len(spec.ConvW) != 640 || len(spec.FCW) != 12*4400 {
		t.Fatalf("weights %d/%d", len(spec.ConvW), len(spec.FCW))
	}
}

// TestForwardMatchesTFLMArgmax: the integer-domain evaluation (no
// requantization) must agree with the int8 interpreter's prediction on
// most inputs — the property that makes the HE/MPC baselines comparable.
func TestForwardMatchesTFLMArgmax(t *testing.T) {
	m, err := tflm.BuildRandomTinyConv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	agree := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		features := make([]uint8, spec.InputLn)
		for i := range features {
			features[i] = uint8(r.Intn(256))
		}
		_, intPred := spec.Forward(spec.InputFromFeatures(features))
		for i, f := range features {
			ip.Input(0).I8[i] = int8(int32(f) - 128)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
		if intPred == tflm.Argmax(ip.Output(0)) {
			agree++
		}
	}
	if agree < trials*8/10 {
		t.Fatalf("integer reference agrees with int8 model on only %d/%d inputs", agree, trials)
	}
}

// TestConvBilinearity is the algebraic property the MPC convolution triple
// relies on: conv(a+c, b+d) = conv(a,b)+conv(a,d)+conv(c,b)+conv(c,d).
func TestConvBilinearity(t *testing.T) {
	spec := paperSpec(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(r.Intn(2001) - 1000)
			}
			return out
		}
		a, c := mk(spec.InputLn), mk(spec.InputLn)
		b, d := mk(len(spec.ConvW)), mk(len(spec.ConvW))
		sumIn := make([]int64, spec.InputLn)
		for i := range sumIn {
			sumIn[i] = a[i] + c[i]
		}
		sumW := make([]int64, len(spec.ConvW))
		for i := range sumW {
			sumW[i] = b[i] + d[i]
		}
		lhs := spec.ConvWith(sumIn, sumW, nil)
		ab := spec.ConvWith(a, b, nil)
		ad := spec.ConvWith(a, d, nil)
		cb := spec.ConvWith(c, b, nil)
		cd := spec.ConvWith(c, d, nil)
		for i := range lhs {
			if lhs[i] != ab[i]+ad[i]+cb[i]+cd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestFromModelRejectsNonTinyConv(t *testing.T) {
	// A model without a convolution.
	b := tflm.NewBuilder("fc-only", 1)
	q := tflm.QuantParams{Scale: 1.0 / 128, ZeroPoint: 0}
	in := b.Tensor(&tflm.Tensor{Name: "in", Type: tflm.Int8, Shape: []int{1, 4}, Quant: &q})
	b.Input(in)
	wQ := tflm.SymmetricWeightParams(1)
	w := &tflm.Tensor{Name: "w", Type: tflm.Int8, Shape: []int{2, 4}, Quant: &wQ}
	w.Alloc()
	bias := &tflm.Tensor{Name: "b", Type: tflm.Int32, Shape: []int{2}, Quant: &tflm.QuantParams{Scale: q.Scale * wQ.Scale}}
	bias.Alloc()
	wi, bi := b.Const(w), b.Const(bias)
	outQ := tflm.QuantParams{Scale: 1, ZeroPoint: 0}
	out := b.Tensor(&tflm.Tensor{Name: "out", Type: tflm.Int8, Shape: []int{1, 2}, Quant: &outQ})
	b.Node(tflm.OpFullyConnected, tflm.FullyConnectedParams{}, []int{in, wi, bi}, []int{out})
	b.Output(out)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromModel(m); err == nil {
		t.Fatal("FC-only model accepted")
	}
}

func TestReLUInForward(t *testing.T) {
	spec := paperSpec(t)
	x := make([]int64, spec.InputLn)
	for i := range x {
		x[i] = int64(i%256) - 128
	}
	logits, pred := spec.Forward(x)
	if len(logits) != spec.NumClasses {
		t.Fatalf("logits length %d", len(logits))
	}
	if pred < 0 || pred >= spec.NumClasses {
		t.Fatalf("prediction %d", pred)
	}
	for i, v := range logits {
		if i == pred {
			continue
		}
		if v > logits[pred] {
			t.Fatal("argmax wrong")
		}
	}
}
