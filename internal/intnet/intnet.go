// Package intnet extracts an integer-arithmetic view of the tiny_conv
// tflm model for the cryptographic baselines (internal/he, internal/mpc).
//
// Both baselines evaluate the network over exact integers — int8 weights,
// int32 biases, full-width accumulators — without TFLite's inter-layer
// requantization, because requantization (a truncating fixed-point rescale)
// is the expensive part of secure protocols and early HE/MPC inference
// systems avoided it the same way. The class decision (argmax over logits)
// is preserved: positive rescaling between layers does not change the sign
// structure ReLU depends on, and the final argmax is scale-invariant per
// layer. Package tests verify prediction agreement against the int8 model.
package intnet

import (
	"fmt"

	"repro/internal/tflm"
)

// Spec is the integer tiny_conv: one convolution (fused ReLU) and one fully
// connected layer, as produced by train.Quantize.
type Spec struct {
	InH, InW         int
	Filters          int
	KH, KW           int
	SH, SW           int
	PadT, PadL       int
	InZP             int64 // input zero point (0 for the paper pipeline)
	ConvW            []int64
	ConvB            []int64
	FCW              []int64
	FCB              []int64
	NumClasses       int
	OutH, OutW       int
	FlatLen, InputLn int
}

// FromModel extracts the spec from a quantized tiny_conv model.
func FromModel(m *tflm.Model) (*Spec, error) {
	var convNode, fcNode *tflm.Node
	for i := range m.Nodes {
		switch m.Nodes[i].Op {
		case tflm.OpConv2D:
			if convNode != nil {
				return nil, fmt.Errorf("intnet: multiple convolutions unsupported")
			}
			convNode = &m.Nodes[i]
		case tflm.OpFullyConnected:
			if fcNode != nil {
				return nil, fmt.Errorf("intnet: multiple FC layers unsupported")
			}
			fcNode = &m.Nodes[i]
		}
	}
	if convNode == nil || fcNode == nil {
		return nil, fmt.Errorf("intnet: model is not conv+fc shaped")
	}
	in := m.Tensor(convNode.Inputs[0])
	w := m.Tensor(convNode.Inputs[1])
	bias := m.Tensor(convNode.Inputs[2])
	fcW := m.Tensor(fcNode.Inputs[1])
	fcB := m.Tensor(fcNode.Inputs[2])
	p, ok := convNode.Params.(tflm.Conv2DParams)
	if !ok {
		return nil, fmt.Errorf("intnet: conv params missing")
	}
	if p.Padding != tflm.PaddingSame {
		return nil, fmt.Errorf("intnet: only SAME padding supported")
	}
	if in.Quant == nil {
		return nil, fmt.Errorf("intnet: unquantized input")
	}
	s := &Spec{
		InH: in.Dim(1), InW: in.Dim(2),
		Filters: w.Dim(0), KH: w.Dim(1), KW: w.Dim(2),
		SH: p.StrideH, SW: p.StrideW,
		InZP:       int64(in.Quant.ZeroPoint),
		NumClasses: fcW.Dim(0),
	}
	s.OutH = (s.InH + s.SH - 1) / s.SH
	s.OutW = (s.InW + s.SW - 1) / s.SW
	s.FlatLen = s.OutH * s.OutW * s.Filters
	s.InputLn = s.InH * s.InW
	if fcW.Dim(1) != s.FlatLen {
		return nil, fmt.Errorf("intnet: FC input %d != conv output %d", fcW.Dim(1), s.FlatLen)
	}
	totalPadH := (s.OutH-1)*s.SH + s.KH - s.InH
	if totalPadH < 0 {
		totalPadH = 0
	}
	totalPadW := (s.OutW-1)*s.SW + s.KW - s.InW
	if totalPadW < 0 {
		totalPadW = 0
	}
	s.PadT, s.PadL = totalPadH/2, totalPadW/2

	s.ConvW = make([]int64, len(w.I8))
	for i, v := range w.I8 {
		s.ConvW[i] = int64(v)
	}
	s.ConvB = make([]int64, len(bias.I32))
	for i, v := range bias.I32 {
		s.ConvB[i] = int64(v)
	}
	s.FCW = make([]int64, len(fcW.I8))
	for i, v := range fcW.I8 {
		s.FCW[i] = int64(v)
	}
	s.FCB = make([]int64, len(fcB.I32))
	for i, v := range fcB.I32 {
		s.FCB[i] = int64(v)
	}
	return s, nil
}

// InputFromFeatures converts frontend features to the integer input domain
// (int8 input values minus the zero point).
func (s *Spec) InputFromFeatures(features []uint8) []int64 {
	x := make([]int64, len(features))
	for i, f := range features {
		x[i] = int64(int32(f)-128) - s.InZP
	}
	return x
}

// ConvWith computes the convolution of x with arbitrary weights/bias of the
// spec's geometry. The MPC baseline evaluates it on secret shares and
// opened differences, exploiting the bilinearity of convolution; a nil bias
// means zero.
func (s *Spec) ConvWith(x, w, bias []int64) []int64 {
	out := make([]int64, s.FlatLen)
	for oy := 0; oy < s.OutH; oy++ {
		iy0 := oy*s.SH - s.PadT
		for ox := 0; ox < s.OutW; ox++ {
			ix0 := ox*s.SW - s.PadL
			for f := 0; f < s.Filters; f++ {
				var acc int64
				if bias != nil {
					acc = bias[f]
				}
				wBase := f * s.KH * s.KW
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.InH {
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.InW {
							continue
						}
						acc += x[iy*s.InW+ix] * w[wBase+ky*s.KW+kx]
					}
				}
				out[(oy*s.OutW+ox)*s.Filters+f] = acc
			}
		}
	}
	return out
}

// Conv computes the model's convolution accumulators (no ReLU).
func (s *Spec) Conv(x []int64) []int64 { return s.ConvWith(x, s.ConvW, s.ConvB) }

// FCWith computes a fully connected layer with arbitrary weights/bias of
// the spec's geometry.
func (s *Spec) FCWith(flat, w, bias []int64) []int64 {
	out := make([]int64, s.NumClasses)
	for o := 0; o < s.NumClasses; o++ {
		var acc int64
		if bias != nil {
			acc = bias[o]
		}
		wBase := o * s.FlatLen
		for i := 0; i < s.FlatLen; i++ {
			acc += flat[i] * w[wBase+i]
		}
		out[o] = acc
	}
	return out
}

// FC computes the model's fully connected logits.
func (s *Spec) FC(flat []int64) []int64 { return s.FCWith(flat, s.FCW, s.FCB) }

// Forward is the plaintext integer reference: conv → ReLU → FC → argmax.
func (s *Spec) Forward(x []int64) (logits []int64, prediction int) {
	conv := s.Conv(x)
	for i, v := range conv {
		if v < 0 {
			conv[i] = 0
		}
	}
	logits = s.FC(conv)
	prediction = 0
	for i, v := range logits {
		if v > logits[prediction] {
			prediction = i
		}
	}
	return logits, prediction
}
