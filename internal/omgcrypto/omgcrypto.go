// Package omgcrypto provides the cryptographic substrate of the OMG
// protocol: HKDF key derivation, AES-256-GCM envelopes for model
// confidentiality, RSA-2048 identities with a minimal certificate hierarchy
// (device vendor root → platform key → enclave key, §V), signed attestation
// reports, and RSA-OAEP key wrapping for license-key delivery.
//
// All primitives come from the Go standard library. Randomness is injectable
// so that simulations and tests are reproducible; production call sites use
// crypto/rand.Reader.
package omgcrypto

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// Rand is the randomness source used by key generation helpers that do not
// take an explicit reader. Tests may replace it with a DRBG for determinism.
var Rand io.Reader = rand.Reader

// DRBG is a deterministic random bit generator built from HMAC-SHA256 in
// counter mode. It exists so simulations produce identical keys and nonces
// run after run; it must never be used where real unpredictability is
// required.
type DRBG struct {
	key     [32]byte
	counter uint64
	buf     []byte
}

// NewDRBG seeds a deterministic generator from an arbitrary string.
func NewDRBG(seed string) *DRBG {
	d := &DRBG{}
	d.key = sha256.Sum256([]byte("omg-drbg-seed:" + seed))
	return d
}

// Read implements io.Reader with a deterministic stream.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			mac := hmac.New(sha256.New, d.key[:])
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.counter)
			d.counter++
			mac.Write(ctr[:])
			d.buf = mac.Sum(nil)
		}
		c := copy(p, d.buf)
		d.buf = d.buf[c:]
		p = p[c:]
	}
	return n, nil
}

// HKDF derives length bytes from the input keying material ikm with the
// given salt and info, per RFC 5869 with SHA-256.
func HKDF(ikm, salt, info []byte, length int) []byte {
	// Extract.
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(ikm)
	prk := ext.Sum(nil)
	// Expand.
	var (
		out  []byte
		prev []byte
	)
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{i})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// RandomBytes returns n random bytes from r (Rand if r is nil).
func RandomBytes(r io.Reader, n int) ([]byte, error) {
	if r == nil {
		r = Rand
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
