package omgcrypto

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DeterministicRSAKey derives an RSA key pair entirely from seed. The
// platform uses it to give an enclave the *same* identity every time the
// same image is measured on the same device (§V: the enclave key pair "is
// derived from the platform certificate"), which is what keeps previously
// provisioned model ciphertexts usable across enclave relaunches.
//
// The standard library's rsa.GenerateKey is deliberately non-deterministic
// even with a deterministic reader (since Go 1.20), so this function runs
// its own Miller–Rabin prime search over a DRBG stream. The security of the
// resulting key reduces to the entropy of seed, which the caller must
// derive from a device secret.
func DeterministicRSAKey(seed []byte, bits int) (*rsa.PrivateKey, error) {
	if bits < 512 {
		return nil, fmt.Errorf("omgcrypto: RSA size %d too small", bits)
	}
	rng := NewDRBG("det-rsa:" + string(seed))
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempt := 0; attempt < 100; attempt++ {
		p, err := drbgPrime(rng, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := drbgPrime(rng, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e not coprime with φ(n); redraw primes
		}
		key := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: new(big.Int).Mul(p, q), E: int(e.Int64())},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		key.Precompute()
		if err := key.Validate(); err != nil {
			continue
		}
		return key, nil
	}
	return nil, errors.New("omgcrypto: deterministic RSA generation exhausted attempts")
}

func drbgPrime(rng io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	for i := 0; i < 100000; i++ {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		p.Rsh(p, uint(len(buf)*8-bits))
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1) // force full-size modulus
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("omgcrypto: prime search exhausted")
}
