package omgcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key size (AES-256).
const KeySize = 32

// Envelope is an authenticated ciphertext produced by Seal. The nonce is
// carried alongside the ciphertext; the associated data is not (both sides
// must agree on it, which OMG uses to bind a model ciphertext to its version
// and the enclave identity).
type Envelope struct {
	Nonce      []byte
	Ciphertext []byte
}

// ErrDecrypt is returned when authenticated decryption fails: wrong key,
// tampered ciphertext, or mismatched associated data. Callers treat all
// three identically (fail closed), so a single opaque error is deliberate.
var ErrDecrypt = errors.New("omgcrypto: decryption failed")

// Seal encrypts plaintext under a 32-byte key with AES-256-GCM, binding the
// associated data ad. The nonce is drawn from rng (Rand if nil).
func Seal(rng io.Reader, key, plaintext, ad []byte) (Envelope, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return Envelope{}, err
	}
	nonce, err := RandomBytes(rng, gcm.NonceSize())
	if err != nil {
		return Envelope{}, err
	}
	ct := gcm.Seal(nil, nonce, plaintext, ad)
	return Envelope{Nonce: nonce, Ciphertext: ct}, nil
}

// Open decrypts an envelope, verifying integrity and the associated data.
func Open(key []byte, env Envelope, ad []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(env.Nonce) != gcm.NonceSize() {
		return nil, ErrDecrypt
	}
	pt, err := gcm.Open(nil, env.Nonce, env.Ciphertext, ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("omgcrypto: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Marshal serializes the envelope as nonceLen || nonce || ciphertext.
func (e Envelope) Marshal() []byte {
	out := make([]byte, 0, 1+len(e.Nonce)+len(e.Ciphertext))
	out = append(out, byte(len(e.Nonce)))
	out = append(out, e.Nonce...)
	out = append(out, e.Ciphertext...)
	return out
}

// UnmarshalEnvelope parses the output of Marshal.
func UnmarshalEnvelope(data []byte) (Envelope, error) {
	if len(data) < 1 {
		return Envelope{}, errors.New("omgcrypto: truncated envelope")
	}
	n := int(data[0])
	if len(data) < 1+n {
		return Envelope{}, errors.New("omgcrypto: truncated envelope nonce")
	}
	e := Envelope{
		Nonce:      append([]byte(nil), data[1:1+n]...),
		Ciphertext: append([]byte(nil), data[1+n:]...),
	}
	return e, nil
}
