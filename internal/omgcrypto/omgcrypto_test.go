package omgcrypto

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestDRBGDeterministic(t *testing.T) {
	a, b := NewDRBG("seed"), NewDRBG("seed")
	ba, bb := make([]byte, 100), make([]byte, 100)
	if _, err := a.Read(ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different streams")
	}
	c := NewDRBG("other")
	bc := make([]byte, 100)
	if _, err := c.Read(bc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba, bc) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDRBGChunkingIndependence(t *testing.T) {
	a, b := NewDRBG("x"), NewDRBG("x")
	one := make([]byte, 77)
	a.Read(one)
	var pieces []byte
	for _, n := range []int{1, 31, 32, 13} {
		p := make([]byte, n)
		b.Read(p)
		pieces = append(pieces, p...)
	}
	if !bytes.Equal(one, pieces) {
		t.Fatal("stream depends on read chunking")
	}
}

func TestHKDFVector(t *testing.T) {
	// RFC 5869 test case 1 (SHA-256).
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}
	info := []byte{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9}
	want := []byte{
		0x3c, 0xb2, 0x5f, 0x25, 0xfa, 0xac, 0xd5, 0x7a, 0x90, 0x43, 0x4f, 0x64, 0xd0, 0x36, 0x2f, 0x2a,
		0x2d, 0x2d, 0x0a, 0x90, 0xcf, 0x1a, 0x5a, 0x4c, 0x5d, 0xb0, 0x2d, 0x56, 0xec, 0xc4, 0xc5, 0xbf,
		0x34, 0x00, 0x72, 0x08, 0xd5, 0xb8, 0x87, 0x18, 0x58, 0x65,
	}
	got := HKDF(ikm, salt, info, 42)
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF RFC5869 vector mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestHKDFLengths(t *testing.T) {
	for _, n := range []int{1, 31, 32, 33, 64, 100} {
		out := HKDF([]byte("ikm"), []byte("salt"), []byte("info"), n)
		if len(out) != n {
			t.Fatalf("len = %d, want %d", len(out), n)
		}
	}
	// Prefix property: longer outputs extend shorter ones.
	short := HKDF([]byte("k"), nil, nil, 16)
	long := HKDF([]byte("k"), nil, nil, 48)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("HKDF output is not prefix-stable")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	rng := NewDRBG("seal")
	key, _ := RandomBytes(rng, KeySize)
	pt := []byte("49 kB of model weights")
	ad := []byte("version 7")
	env, err := Seal(rng, key, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, env, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip mismatch")
	}
}

func TestOpenFailsClosed(t *testing.T) {
	rng := NewDRBG("fail")
	key, _ := RandomBytes(rng, KeySize)
	otherKey, _ := RandomBytes(rng, KeySize)
	env, err := Seal(rng, key, []byte("secret"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(otherKey, env, []byte("ad")); err != ErrDecrypt {
		t.Fatalf("wrong key: err = %v, want ErrDecrypt", err)
	}
	if _, err := Open(key, env, []byte("other ad")); err != ErrDecrypt {
		t.Fatalf("wrong AD: err = %v, want ErrDecrypt", err)
	}
	tampered := Envelope{Nonce: env.Nonce, Ciphertext: append([]byte(nil), env.Ciphertext...)}
	tampered.Ciphertext[0] ^= 1
	if _, err := Open(key, tampered, []byte("ad")); err != ErrDecrypt {
		t.Fatalf("tampered: err = %v, want ErrDecrypt", err)
	}
	if _, err := Seal(rng, key[:16], nil, nil); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	f := func(nonce, ct []byte) bool {
		if len(nonce) > 255 {
			nonce = nonce[:255]
		}
		e := Envelope{Nonce: nonce, Ciphertext: ct}
		parsed, err := UnmarshalEnvelope(e.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(parsed.Nonce, nonce) && bytes.Equal(parsed.Ciphertext, ct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if _, err := UnmarshalEnvelope(nil); err == nil {
		t.Fatal("empty envelope parsed")
	}
	if _, err := UnmarshalEnvelope([]byte{200, 1, 2}); err == nil {
		t.Fatal("truncated envelope parsed")
	}
}

// testIdentity caches RSA generation across tests (2048-bit keygen is the
// slowest operation in this package).
var (
	testRoot, testPlatform, testEnclave *Identity
)

func identities(t *testing.T) (root, platform, enclave *Identity) {
	t.Helper()
	if testRoot == nil {
		rng := NewDRBG("identity-test")
		var err error
		if testRoot, err = NewIdentity(rng, "device-vendor"); err != nil {
			t.Fatal(err)
		}
		if testPlatform, err = NewIdentity(rng, "platform"); err != nil {
			t.Fatal(err)
		}
		if testEnclave, err = NewIdentity(rng, "enclave"); err != nil {
			t.Fatal(err)
		}
	}
	return testRoot, testPlatform, testEnclave
}

func TestSignVerify(t *testing.T) {
	root, _, _ := identities(t)
	msg := []byte("attest me")
	sig, err := root.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(root.Public(), msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := Verify(root.Public(), []byte("attest you"), sig); err == nil {
		t.Fatal("verified wrong message")
	}
}

func TestWrapUnwrapKey(t *testing.T) {
	_, _, enclave := identities(t)
	rng := NewDRBG("wrap")
	ku, _ := RandomBytes(rng, KeySize)
	wrapped, err := WrapKey(rng, enclave.Public(), ku)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enclave.UnwrapKey(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ku) {
		t.Fatal("unwrap mismatch")
	}
	wrapped[3] ^= 0xFF
	if _, err := enclave.UnwrapKey(wrapped); err == nil {
		t.Fatal("tampered wrap unwrapped")
	}
}

func TestCertificateChain(t *testing.T) {
	root, platform, enclave := identities(t)
	rootCert, err := SelfSign(root)
	if err != nil {
		t.Fatal(err)
	}
	platCert, err := IssueCertificate(root, platform.Subject, platform.Public())
	if err != nil {
		t.Fatal(err)
	}
	enclCert, err := IssueCertificate(platform, enclave.Subject, enclave.Public())
	if err != nil {
		t.Fatal(err)
	}
	leafPub, err := VerifyChain([]*Certificate{enclCert, platCert, rootCert}, root.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leafPub, enclave.Public()) {
		t.Fatal("leaf public key mismatch")
	}
	// A chain not terminating at the trusted root must fail.
	if _, err := VerifyChain([]*Certificate{enclCert, platCert}, platform.Public()); err == nil {
		// platCert is signed by root, not by platform itself, so this is invalid.
		t.Fatal("bogus chain verified")
	}
	// Tampered subject key breaks the signature.
	bad := *enclCert
	bad.PublicKey = append([]byte(nil), bad.PublicKey...)
	bad.PublicKey[10] ^= 1
	if _, err := VerifyChain([]*Certificate{&bad, platCert, rootCert}, root.Public()); err == nil {
		t.Fatal("tampered certificate verified")
	}
	if _, err := VerifyChain(nil, root.Public()); err == nil {
		t.Fatal("empty chain verified")
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	root, platform, _ := identities(t)
	cert, err := IssueCertificate(root, platform.Subject, platform.Public())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := UnmarshalCertificate(cert.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != cert.Subject || parsed.Issuer != cert.Issuer ||
		!bytes.Equal(parsed.PublicKey, cert.PublicKey) || !bytes.Equal(parsed.Signature, cert.Signature) {
		t.Fatal("marshal round trip mismatch")
	}
	if _, err := UnmarshalCertificate([]byte{0, 0, 0, 200, 1}); err == nil {
		t.Fatal("truncated certificate parsed")
	}
}

func TestAttestationReport(t *testing.T) {
	root, platform, enclave := identities(t)
	rootCert, _ := SelfSign(root)
	platCert, _ := IssueCertificate(root, platform.Subject, platform.Public())
	chain := []*Certificate{platCert, rootCert}

	m := Measurement(sha256.Sum256([]byte("enclave image v1")))
	nonce := []byte("fresh-nonce-123")
	report, err := SignReport(platform, m, enclave.Public(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := VerifyReport(report, chain, root.Public(), m, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub, enclave.Public()) {
		t.Fatal("report returned wrong enclave key")
	}

	wrongM := Measurement(sha256.Sum256([]byte("tampered image")))
	if _, err := VerifyReport(report, chain, root.Public(), wrongM, nonce); err != ErrBadMeasurement {
		t.Fatalf("tampered measurement: err = %v, want ErrBadMeasurement", err)
	}
	if _, err := VerifyReport(report, chain, root.Public(), m, []byte("stale")); err == nil {
		t.Fatal("replayed nonce accepted")
	}
	forged := *report
	forged.PlatformSig = append([]byte(nil), forged.PlatformSig...)
	forged.PlatformSig[0] ^= 1
	if _, err := VerifyReport(&forged, chain, root.Public(), m, nonce); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestModelKeyDerivation(t *testing.T) {
	_, _, enclave := identities(t)
	secret := []byte("vendor-master-secret")
	n1 := NonceForVersion(secret, 1)
	n2 := NonceForVersion(secret, 2)
	if n1 == n2 {
		t.Fatal("nonces collide across versions")
	}
	k1 := DeriveModelKey(secret, enclave.Public(), n1)
	k1again := DeriveModelKey(secret, enclave.Public(), n1)
	if !bytes.Equal(k1, k1again) {
		t.Fatal("derivation not deterministic")
	}
	k2 := DeriveModelKey(secret, enclave.Public(), n2)
	if bytes.Equal(k1, k2) {
		t.Fatal("different versions derived the same KU (rollback protection broken)")
	}
	otherEnclavePub := append([]byte(nil), enclave.Public()...)
	otherEnclavePub[20] ^= 1
	k3 := DeriveModelKey(secret, otherEnclavePub, n1)
	if bytes.Equal(k1, k3) {
		t.Fatal("different enclaves derived the same KU (ciphertexts transferable)")
	}
	if len(k1) != KeySize {
		t.Fatalf("key length = %d", len(k1))
	}
}

func TestModelAADVersionBinding(t *testing.T) {
	if bytes.Equal(ModelAAD(1), ModelAAD(2)) {
		t.Fatal("AAD identical across versions")
	}
	rng := NewDRBG("aad")
	key, _ := RandomBytes(rng, KeySize)
	env, err := Seal(rng, key, []byte("model v1"), ModelAAD(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, env, ModelAAD(2)); err != ErrDecrypt {
		t.Fatal("version-1 ciphertext opened as version 2")
	}
}

func TestKeyFingerprint(t *testing.T) {
	a := KeyFingerprint([]byte("key-a"))
	b := KeyFingerprint([]byte("key-b"))
	if a == b {
		t.Fatal("fingerprint collision")
	}
}
