package omgcrypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Measurement is the SHA-256 hash of an enclave's initial memory content
// ("the enclave is attested ('measured') by SANCTUARY", §V).
type Measurement [32]byte

// AttestationReport binds an enclave measurement to the enclave's public key
// and a freshness nonce, signed by the platform key. Both the user (via
// secure output) and the vendor (via a secure channel) verify such reports
// before trusting the enclave (§V steps 1–2).
type AttestationReport struct {
	Measurement Measurement
	EnclavePub  []byte // PKIX DER of the enclave's key PK
	Nonce       []byte // verifier-chosen freshness nonce
	PlatformSig []byte // platform identity signature over tbs()
}

func (r *AttestationReport) tbs() []byte {
	var buf bytes.Buffer
	buf.WriteString("omg-attestation-v1")
	buf.Write(r.Measurement[:])
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(r.EnclavePub)))
	buf.Write(l[:])
	buf.Write(r.EnclavePub)
	binary.BigEndian.PutUint32(l[:], uint32(len(r.Nonce)))
	buf.Write(l[:])
	buf.Write(r.Nonce)
	return buf.Bytes()
}

// SignReport produces an attestation report under the platform identity.
func SignReport(platform *Identity, m Measurement, enclavePub, nonce []byte) (*AttestationReport, error) {
	r := &AttestationReport{
		Measurement: m,
		EnclavePub:  append([]byte(nil), enclavePub...),
		Nonce:       append([]byte(nil), nonce...),
	}
	sig, err := platform.Sign(r.tbs())
	if err != nil {
		return nil, err
	}
	r.PlatformSig = sig
	return r, nil
}

// ErrBadMeasurement indicates the report is authentic but the enclave code
// is not the expected one (tampered or outdated image).
var ErrBadMeasurement = errors.New("omgcrypto: enclave measurement mismatch")

// VerifyReport validates a report against the platform certificate chain
// rooted at rootPub, the verifier's expected measurement, and the nonce the
// verifier chose. On success it returns the enclave public key, which the
// verifier may then use to wrap secrets for the enclave.
func VerifyReport(r *AttestationReport, chain []*Certificate, rootPub []byte, expect Measurement, nonce []byte) ([]byte, error) {
	platformPub, err := VerifyChain(chain, rootPub)
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: attestation chain: %w", err)
	}
	if err := Verify(platformPub, r.tbs(), r.PlatformSig); err != nil {
		return nil, fmt.Errorf("omgcrypto: attestation signature: %w", err)
	}
	if !bytes.Equal(r.Nonce, nonce) {
		return nil, errors.New("omgcrypto: attestation nonce mismatch (replay?)")
	}
	if r.Measurement != expect {
		return nil, ErrBadMeasurement
	}
	return r.EnclavePub, nil
}
