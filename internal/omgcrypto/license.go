package omgcrypto

import "encoding/binary"

// Model-key derivation (§V): "V uses PK and a nonce n to derive a symmetric
// encryption key KU used only for this respective enclave and version of the
// model." The vendor's long-term secret enters as the HKDF input keying
// material so that neither PK nor n alone reveals anything; PK binds KU to
// one physical enclave, n binds it to one model version (which is what
// defeats rollback: an old ciphertext needs an old KU, which the vendor no
// longer issues).

// ModelNonce identifies one (enclave, model-version) provisioning epoch.
type ModelNonce [16]byte

// NonceForVersion derives a deterministic per-version nonce from a vendor
// epoch seed. Real vendors would draw it randomly and store it; determinism
// keeps simulations reproducible while preserving the uniqueness that the
// rollback argument needs.
func NonceForVersion(vendorSeed []byte, version uint64) ModelNonce {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	out := HKDF(vendorSeed, []byte("omg-model-nonce"), v[:], 16)
	var n ModelNonce
	copy(n[:], out)
	return n
}

// DeriveModelKey computes KU = KDF(vendor secret; PK, n).
func DeriveModelKey(vendorSecret, enclavePubDER []byte, n ModelNonce) []byte {
	info := make([]byte, 0, len(enclavePubDER)+len(n))
	info = append(info, enclavePubDER...)
	info = append(info, n[:]...)
	return HKDF(vendorSecret, []byte("omg-model-key"), info, KeySize)
}

// ModelAAD is the associated data under which a model of the given version
// is sealed, binding ciphertexts to their version so a version-v blob cannot
// be passed off as version-w even under the correct key.
func ModelAAD(version uint64) []byte {
	aad := make([]byte, 8+len("omg-model"))
	copy(aad, "omg-model")
	binary.BigEndian.PutUint64(aad[len("omg-model"):], version)
	return aad
}
