package omgcrypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Certificate is a minimal signed binding of a subject name to a public key,
// forming the hierarchy the paper describes: "This key pair is derived from
// the platform certificate issued by the device vendor, effectively creating
// a certificate hierarchy similar to SSL certificates" (§V).
//
// We intentionally do not reuse x509.Certificate: the simulated platform
// needs only (subject, key, issuer, signature), and a 40-line encoding keeps
// the trust computation auditable in tests.
type Certificate struct {
	Subject   string
	PublicKey []byte // PKIX DER
	Issuer    string
	Signature []byte // issuer's signature over tbs()
}

// tbs returns the canonical to-be-signed encoding.
func (c *Certificate) tbs() []byte {
	var buf bytes.Buffer
	writeBytes := func(b []byte) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(b)))
		buf.Write(l[:])
		buf.Write(b)
	}
	writeBytes([]byte("omg-cert-v1"))
	writeBytes([]byte(c.Subject))
	writeBytes(c.PublicKey)
	writeBytes([]byte(c.Issuer))
	return buf.Bytes()
}

// IssueCertificate signs a certificate for subjectPub under the issuer key.
func IssueCertificate(issuer *Identity, subject string, subjectPub []byte) (*Certificate, error) {
	c := &Certificate{
		Subject:   subject,
		PublicKey: append([]byte(nil), subjectPub...),
		Issuer:    issuer.Subject,
	}
	sig, err := issuer.Sign(c.tbs())
	if err != nil {
		return nil, err
	}
	c.Signature = sig
	return c, nil
}

// SelfSign produces a root certificate for an identity.
func SelfSign(root *Identity) (*Certificate, error) {
	return IssueCertificate(root, root.Subject, root.Public())
}

// VerifyChain checks that chain[0] is signed by chain[1], chain[1] by
// chain[2], ..., and that the final certificate's public key equals
// rootPub (the verifier's trust anchor). It returns the leaf public key.
func VerifyChain(chain []*Certificate, rootPub []byte) ([]byte, error) {
	if len(chain) == 0 {
		return nil, errors.New("omgcrypto: empty certificate chain")
	}
	for i := 0; i < len(chain); i++ {
		var issuerPub []byte
		if i+1 < len(chain) {
			issuerPub = chain[i+1].PublicKey
		} else {
			issuerPub = rootPub // the root signs itself
		}
		if err := Verify(issuerPub, chain[i].tbs(), chain[i].Signature); err != nil {
			return nil, fmt.Errorf("omgcrypto: chain link %d (%s): %w", i, chain[i].Subject, err)
		}
		if i+1 < len(chain) && chain[i].Issuer != chain[i+1].Subject {
			return nil, fmt.Errorf("omgcrypto: chain link %d issuer %q != %q", i, chain[i].Issuer, chain[i+1].Subject)
		}
	}
	last := chain[len(chain)-1]
	if !bytes.Equal(last.PublicKey, rootPub) {
		return nil, errors.New("omgcrypto: chain does not terminate at the trusted root")
	}
	return chain[0].PublicKey, nil
}

// Marshal serializes the certificate.
func (c *Certificate) Marshal() []byte {
	var buf bytes.Buffer
	writeBytes := func(b []byte) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(b)))
		buf.Write(l[:])
		buf.Write(b)
	}
	writeBytes([]byte(c.Subject))
	writeBytes(c.PublicKey)
	writeBytes([]byte(c.Issuer))
	writeBytes(c.Signature)
	return buf.Bytes()
}

// UnmarshalCertificate parses the output of Marshal.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	rd := bytes.NewReader(data)
	readBytes := func() ([]byte, error) {
		var l [4]byte
		if _, err := rd.Read(l[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(l[:])
		if uint64(n) > uint64(rd.Len()) {
			return nil, errors.New("omgcrypto: truncated certificate field")
		}
		b := make([]byte, n)
		if _, err := rd.Read(b); err != nil {
			return nil, err
		}
		return b, nil
	}
	c := &Certificate{}
	subject, err := readBytes()
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: parsing certificate subject: %w", err)
	}
	c.Subject = string(subject)
	if c.PublicKey, err = readBytes(); err != nil {
		return nil, fmt.Errorf("omgcrypto: parsing certificate key: %w", err)
	}
	issuer, err := readBytes()
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: parsing certificate issuer: %w", err)
	}
	c.Issuer = string(issuer)
	if c.Signature, err = readBytes(); err != nil {
		return nil, fmt.Errorf("omgcrypto: parsing certificate signature: %w", err)
	}
	return c, nil
}
