package omgcrypto

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"io"
)

// IdentityKeySize is the RSA modulus size of identity keys. 2048 bits is the
// paper-era baseline for device attestation keys.
const IdentityKeySize = 2048

// Identity is an RSA signing/decryption key pair with a human-readable
// subject, used for the device-vendor root, the platform key, and per-enclave
// keys.
type Identity struct {
	Subject string
	Private *rsa.PrivateKey
}

// NewIdentity generates a fresh RSA identity using rng (Rand if nil).
func NewIdentity(rng io.Reader, subject string) (*Identity, error) {
	if rng == nil {
		rng = Rand
	}
	key, err := rsa.GenerateKey(rng, IdentityKeySize)
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: generating identity %q: %w", subject, err)
	}
	return &Identity{Subject: subject, Private: key}, nil
}

// Public returns the DER encoding (PKIX) of the identity's public key. DER
// is used as the canonical byte form everywhere a public key is hashed,
// signed, or fed into a KDF.
func (id *Identity) Public() []byte {
	der, err := x509.MarshalPKIXPublicKey(&id.Private.PublicKey)
	if err != nil {
		// Marshalling a valid in-memory RSA key cannot fail.
		panic("omgcrypto: marshal public key: " + err.Error())
	}
	return der
}

// Sign produces an RSA PKCS#1 v1.5 signature over SHA-256(message).
func (id *Identity) Sign(message []byte) ([]byte, error) {
	digest := sha256.Sum256(message)
	return rsa.SignPKCS1v15(nil, id.Private, crypto.SHA256, digest[:])
}

// Verify checks a PKCS#1 v1.5 signature over SHA-256(message) against a DER
// public key.
func Verify(pubDER, message, sig []byte) error {
	pub, err := ParsePublicKey(pubDER)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(message)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("omgcrypto: signature verification failed: %w", err)
	}
	return nil
}

// ParsePublicKey decodes a PKIX DER RSA public key.
func ParsePublicKey(der []byte) (*rsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: parsing public key: %w", err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("omgcrypto: public key is %T, want RSA", pub)
	}
	return rsaPub, nil
}

// WrapKey encrypts a symmetric key to the holder of pubDER with RSA-OAEP
// (SHA-256). OMG's vendor uses this to deliver KU to the attested enclave.
func WrapKey(rng io.Reader, pubDER, key []byte) ([]byte, error) {
	if rng == nil {
		rng = Rand
	}
	pub, err := ParsePublicKey(pubDER)
	if err != nil {
		return nil, err
	}
	return rsa.EncryptOAEP(sha256.New(), rng, pub, key, []byte("omg-key-wrap"))
}

// UnwrapKey decrypts a wrapped symmetric key with the identity's private key.
func (id *Identity) UnwrapKey(wrapped []byte) ([]byte, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), nil, id.Private, wrapped, []byte("omg-key-wrap"))
	if err != nil {
		return nil, fmt.Errorf("omgcrypto: unwrapping key: %w", err)
	}
	return key, nil
}

// KeyFingerprint returns SHA-256 over a DER public key, used as a compact
// identity handle in logs and license tables.
func KeyFingerprint(pubDER []byte) [32]byte {
	return sha256.Sum256(pubDER)
}
