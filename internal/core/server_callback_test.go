package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSubmitFuncMatchesSerial: callback submissions must classify exactly
// like the serial reference, each callback firing exactly once.
func TestSubmitFuncMatchesSerial(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 12)
	want := serialResults(t, model, utts)
	for _, workers := range []int{1, 3} {
		srv, err := NewServer(model, ServerConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(utts))
		fired := make([]atomic.Int32, len(utts))
		var wg sync.WaitGroup
		for i, u := range utts {
			i := i
			wg.Add(1)
			if err := srv.SubmitFunc(u, func(r Result) {
				defer wg.Done()
				fired[i].Add(1)
				if r.Err != nil {
					t.Errorf("utterance %d: %v", i, r.Err)
					return
				}
				got[i] = r.Label
			}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		for i := range utts {
			if n := fired[i].Load(); n != 1 {
				t.Fatalf("workers=%d utterance %d: callback fired %d times", workers, i, n)
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%d utterance %d: label %d, want %d", workers, i, got[i], want[i])
			}
		}
		srv.Close()
	}
}

// TestTrySubmitFuncBackpressure: with the workers not draining, the callback
// path must report ErrQueueFull past queue capacity, and everything accepted
// must still fire once the workers start.
func TestTrySubmitFuncBackpressure(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 4)
	srv, err := newServer(model, ServerConfig{Workers: 1, Queue: len(utts)})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int32
	for i, u := range utts {
		if err := srv.TrySubmitFunc(u, func(Result) { fired.Add(1) }); err != nil {
			t.Fatalf("submit %d within capacity: %v", i, err)
		}
	}
	if err := srv.TrySubmitFunc(utts[0], func(Result) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond capacity: err = %v, want ErrQueueFull", err)
	}
	srv.start()
	srv.Close()
	if n := fired.Load(); int(n) != len(utts) {
		t.Fatalf("after Close: %d callbacks fired, want %d (drain contract)", n, len(utts))
	}
}

// TestStreamOnResultOrdering: stream callbacks must arrive strictly in hop
// order with the same labels as the ticket path, across pool sizes that
// complete hops out of order.
func TestStreamOnResultOrdering(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	var signal []int16
	for _, u := range utts {
		signal = append(signal, u...)
	}
	// Ticket-path ground truth.
	ref, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refStream, err := ref.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	tickets, err := ref.SubmitStream(refStream, signal)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tickets {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want = append(want, r.Label)
		p.Release()
	}
	ref.Close()
	if len(want) == 0 {
		t.Fatal("fixture produced no hops")
	}

	for _, workers := range []int{1, 4} {
		srv, err := NewServer(model, ServerConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := srv.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []int
		var hops []uint64
		stream.OnResult(func(hop uint64, r Result) {
			mu.Lock()
			defer mu.Unlock()
			if r.Err != nil {
				t.Errorf("hop %d: %v", hop, r.Err)
			}
			got = append(got, r.Label)
			hops = append(hops, hop)
		})
		// Uneven chunks exercise hop reassembly under the callback path.
		for off, step := 0, 0; off < len(signal); off += step {
			step = 1234
			if off+step > len(signal) {
				step = len(signal) - off
			}
			ts, err := srv.SubmitStream(stream, signal[off:off+step])
			if err != nil {
				t.Fatal(err)
			}
			if len(ts) != 0 {
				t.Fatal("callback stream returned tickets")
			}
		}
		srv.Close() // drain contract: all callbacks fired after Close
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d callbacks, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if hops[i] != uint64(i) {
				t.Fatalf("workers=%d: callback %d carried hop %d — out of order", workers, i, hops[i])
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%d hop %d: label %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSeqDeliveryReorders exercises the sequencer directly with adversarial
// completion orders: whatever order hops finish in, callbacks fire 0,1,2,...
func TestSeqDeliveryReorders(t *testing.T) {
	const n = 16
	orders := [][]int{
		{15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, // fully reversed
		{1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14}, // pairwise swapped
		{0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15}, // evens then odds
	}
	for _, order := range orders {
		var got []uint64
		q := &seqDelivery{
			fn:      func(hop uint64, r Result) { got = append(got, hop) },
			pending: make(map[uint64]*cbTicket),
		}
		for _, seq := range order {
			tk := newCbTicket(nil)
			tk.seq, tk.sq = uint64(seq), q
			tk.complete()
		}
		if len(got) != n {
			t.Fatalf("order %v: %d callbacks, want %d", order, len(got), n)
		}
		for i, hop := range got {
			if hop != uint64(i) {
				t.Fatalf("order %v: position %d got hop %d", order, i, hop)
			}
		}
		if len(q.pending) != 0 {
			t.Fatalf("order %v: %d tickets stuck in pending", order, len(q.pending))
		}
	}
}

// TestServerCloseVsSubmitStream races Close against in-flight SubmitStream
// callers (the ISSUE-flagged audit): every hop a SubmitStream call accepted
// must fire its callback exactly once — all before Close returns — the
// remainder of an interrupted chunk must surface ErrServerClosed, and
// nothing may deadlock. Run with -race.
func TestServerCloseVsSubmitStream(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 4)
	var signal []int16
	for _, u := range utts {
		signal = append(signal, u...)
	}
	for round := 0; round < 8; round++ {
		srv, err := NewServer(model, ServerConfig{Workers: 2, Queue: 2})
		if err != nil {
			t.Fatal(err)
		}
		const streams = 3
		var accepted, fired [streams]atomic.Int64
		var wg sync.WaitGroup
		for sid := 0; sid < streams; sid++ {
			sid := sid
			stream, err := srv.OpenStream()
			if err != nil {
				t.Fatal(err)
			}
			stream.OnResult(func(hop uint64, r Result) {
				if r.Err != nil {
					t.Errorf("stream %d hop %d: %v", sid, hop, r.Err)
				}
				if int64(hop) != fired[sid].Load() {
					t.Errorf("stream %d: hop %d fired after %d callbacks", sid, hop, fired[sid].Load())
				}
				fired[sid].Add(1)
			})
			wg.Add(1)
			go func() {
				defer wg.Done()
				hopSamples := stream.Streamer().Frontend().Config().StrideSamples
				for off := 0; off+hopSamples <= len(signal); off += hopSamples {
					before := stream.hops
					_, err := srv.SubmitStream(stream, signal[off:off+hopSamples])
					accepted[sid].Add(int64(stream.hops - before))
					if err != nil {
						if !errors.Is(err, ErrServerClosed) {
							t.Errorf("stream %d: %v", sid, err)
						}
						return
					}
				}
			}()
		}
		// Let the streams make some progress, then slam the door.
		for fired[0].Load() == 0 && accepted[0].Load() < 4 {
			runtime.Gosched()
		}
		srv.Close()
		// Drain contract: at the moment Close returned, every accepted hop
		// had fired. Record the counts before the goroutines finish erroring
		// out so the assertion really tests Close, not wg.Wait.
		var acceptedAtClose, firedAtClose [streams]int64
		for sid := 0; sid < streams; sid++ {
			firedAtClose[sid] = fired[sid].Load()
			acceptedAtClose[sid] = accepted[sid].Load()
		}
		wg.Wait()
		for sid := 0; sid < streams; sid++ {
			if firedAtClose[sid] < acceptedAtClose[sid] {
				t.Fatalf("round %d stream %d: %d hops accepted before Close returned but only %d callbacks fired",
					round, sid, acceptedAtClose[sid], firedAtClose[sid])
			}
			if a, f := accepted[sid].Load(), fired[sid].Load(); a != f {
				t.Fatalf("round %d stream %d: %d hops accepted, %d callbacks fired", round, sid, a, f)
			}
		}
	}
}

// TestSubmitFuncAllocFree: the steady-state callback submission path must
// not allocate on the submitting goroutine (tickets recycle through the
// pool).
func TestSubmitFuncAllocFree(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 1)
	srv, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{}, 1)
	fn := func(Result) { done <- struct{}{} }
	// Warm the pools.
	for i := 0; i < 8; i++ {
		if err := srv.SubmitFunc(utts[0], fn); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := srv.SubmitFunc(utts[0], fn); err != nil {
			t.Fatal(err)
		}
		<-done
	})
	if allocs > 0 {
		t.Fatalf("SubmitFunc steady state allocates %.1f objects/op, want 0", allocs)
	}
}
