package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/omgcrypto"
	"repro/internal/tflm"
)

// Vendor is V: it owns the model (intellectual property), verifies device
// attestation before handing out anything, encrypts the model per enclave
// and version, and actively manages licenses by granting or withholding KU
// (§V: "V can actively manage the access of U to the model by either
// sending or not sending the symmetric key KU").
type Vendor struct {
	identity *omgcrypto.Identity // the key pinned in the enclave image
	secret   []byte              // long-term master secret feeding the KU derivation
	rootPub  []byte              // device-vendor trust anchor
	expected omgcrypto.Measurement
	model    *tflm.Model
	version  uint64
	revoked  map[[32]byte]bool // by enclave-key fingerprint
	rng      io.Reader
}

// NewVendor creates a vendor with an initial model version. The vendor's
// identity public key must be the one pinned in the enclave image, since
// the expected measurement is computed from it.
func NewVendor(rng io.Reader, rootPub []byte, identity *omgcrypto.Identity, model *tflm.Model, version uint64) (*Vendor, error) {
	if version == 0 {
		return nil, errors.New("core: model versions start at 1")
	}
	expected, err := ExpectedMeasurement(identity.Public())
	if err != nil {
		return nil, err
	}
	secret, err := omgcrypto.RandomBytes(rng, 32)
	if err != nil {
		return nil, err
	}
	model.Version = version
	return &Vendor{
		identity: identity,
		secret:   secret,
		rootPub:  rootPub,
		expected: expected,
		model:    model,
		version:  version,
		revoked:  make(map[[32]byte]bool),
		rng:      rng,
	}, nil
}

// Public returns the vendor's public key (the image pin).
func (v *Vendor) Public() []byte { return v.identity.Public() }

// Version returns the current licensed model version.
func (v *Vendor) Version() uint64 { return v.version }

// verifyEnclave validates an attestation report (step 2) and returns the
// enclave key.
func (v *Vendor) verifyEnclave(report *omgcrypto.AttestationReport, chain []*omgcrypto.Certificate, nonce []byte) ([]byte, error) {
	pk, err := omgcrypto.VerifyReport(report, chain, v.rootPub, v.expected, nonce)
	if err != nil {
		return nil, fmt.Errorf("core: vendor attestation: %w", err)
	}
	if v.revoked[omgcrypto.KeyFingerprint(pk)] {
		return nil, fmt.Errorf("core: enclave license revoked")
	}
	return pk, nil
}

// ProvisionModel runs step 3: after verifying the report, the vendor
// derives KU = KDF(PK, n) for the current version and returns the model
// encrypted under it. The ciphertext binds the version via associated data.
func (v *Vendor) ProvisionModel(report *omgcrypto.AttestationReport, chain []*omgcrypto.Certificate, nonce []byte) (*ModelPackage, error) {
	pk, err := v.verifyEnclave(report, chain, nonce)
	if err != nil {
		return nil, err
	}
	blob, err := tflm.Encode(v.model)
	if err != nil {
		return nil, err
	}
	n := omgcrypto.NonceForVersion(v.secret, v.version)
	ku := omgcrypto.DeriveModelKey(v.secret, pk, n)
	env, err := omgcrypto.Seal(v.rng, ku, blob, omgcrypto.ModelAAD(v.version))
	if err != nil {
		return nil, err
	}
	return &ModelPackage{Version: v.version, Blob: env.Marshal()}, nil
}

// IssueKey runs step 5: the vendor re-verifies the enclave, checks that the
// requested version is the one it still licenses, and wraps KU to the
// enclave key, signing the response against replay. Refusing to issue keys
// for superseded versions is exactly the rollback protection of §V: old
// ciphertexts require old KUs, which no longer exist.
func (v *Vendor) IssueKey(req *KeyRequest) (*KeyResponse, error) {
	pk, err := v.verifyEnclave(req.Report, req.Chain, req.Nonce)
	if err != nil {
		return nil, err
	}
	if req.Version != v.version {
		return nil, fmt.Errorf("core: version %d no longer licensed (current %d)", req.Version, v.version)
	}
	n := omgcrypto.NonceForVersion(v.secret, v.version)
	ku := omgcrypto.DeriveModelKey(v.secret, pk, n)
	wrapped, err := omgcrypto.WrapKey(v.rng, pk, ku)
	if err != nil {
		return nil, err
	}
	sig, err := v.identity.Sign(keyResponseTBS(req.Nonce, v.version, wrapped))
	if err != nil {
		return nil, err
	}
	return &KeyResponse{Version: v.version, WrappedKU: wrapped, Nonce: append([]byte(nil), req.Nonce...), VendorSig: sig}, nil
}

// Revoke withdraws the license of the enclave with the given public key:
// subsequent IssueKey and ProvisionModel calls fail (the "expired license"
// scenario of §V).
func (v *Vendor) Revoke(enclavePub []byte) {
	v.revoked[omgcrypto.KeyFingerprint(enclavePub)] = true
}

// Reinstate restores a revoked license.
func (v *Vendor) Reinstate(enclavePub []byte) {
	delete(v.revoked, omgcrypto.KeyFingerprint(enclavePub))
}

// UpdateModel replaces the licensed model with a new version. The version
// must increase; the nonce (and hence every KU) changes with it.
func (v *Vendor) UpdateModel(model *tflm.Model, version uint64) error {
	if version <= v.version {
		return fmt.Errorf("core: version must increase (%d -> %d)", v.version, version)
	}
	model.Version = version
	v.model = model
	v.version = version
	return nil
}
