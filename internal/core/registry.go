// Multi-tenant serving tier: the Registry fronts N models × M core.Server
// shards behind one admission layer, converting the single fast box into
// the fleet shape ROADMAP item 1 demands. Three properties are the point:
//
//   - Routing: every submission names a model id; the Registry resolves it
//     to the model's current shard set (round-robin across shards) behind
//     the Engine interface, so workers are parameterized over (model,
//     interpreter flavor) instead of hard-coding one Server.
//   - Hot swap with zero dropped requests: Swap verifies a signed, sealed
//     SwapPackage (vendor signature, monotone version — the omgcrypto
//     provenance/license machinery), flushes already-admitted work to the
//     outgoing shard set, brings the new set live for new submissions,
//     drains the old servers (the PR-6 drain contract: Close completes
//     every accepted job) and releases them. In-flight requests on the old
//     model complete bit-exactly; streams bound to the old set either
//     finish there or report ErrModelSwapped with a retry expectation.
//   - Per-tenant admission control: each tenant owns a bounded queue and a
//     DRR (deficit-round-robin) weight; a single dispatcher drains the
//     tenant queues into the shard pool in weight proportion, so under
//     saturation a flooding tenant cannot starve the others. The per-tenant
//     cap plus TenantCounters (accepted/busy/shed/dispatched) replace the
//     single global BUSY bit.
//
// Self-healing (health.go) layers on top: every shard carries a circuit
// breaker fed by outcome scoring, open shards leave the rotation, a
// supervisor rebuilds persistently-broken shards, and a queue-delay
// controller sheds over-share tenants with computed retry-after hints.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/omgcrypto"
	"repro/internal/tflm"
)

// ErrModelSwapped reports a submission bound to a shard set that has been
// retired by a hot swap: the work is not lost server-side (everything the
// old set accepted completes), but this binding — typically a stream — is
// over. The caller should reopen against the current generation; the wire
// face is CodeModelSwapped with a retry hint.
var ErrModelSwapped = errors.New("core: model swapped; reopen against the new generation")

// ErrUnknownModel reports a submission naming a model id the registry does
// not serve.
var ErrUnknownModel = errors.New("core: unknown model id")

// ErrTenantBusy reports admission-control backpressure: the submitting
// tenant's queue is at its cap. It is the per-tenant successor of the
// single global ErrQueueFull BUSY — one tenant's flood fills only that
// tenant's queue.
var ErrTenantBusy = errors.New("core: tenant queue full")

// ErrRegistryClosed is returned by submissions after Registry.Close.
var ErrRegistryClosed = errors.New("core: registry closed")

// ErrSwapRejected classifies a Swap that failed provenance checks —
// signature, rollback (non-increasing version), or envelope decryption.
// The serving state is untouched by a rejected swap.
var ErrSwapRejected = errors.New("core: model swap rejected")

// Engine is the inference backend a Registry shard fronts: the subset of
// core.Server the serving tier needs, so a shard can be a local Server, a
// test double, or any other interpreter flavor. Implementations must honor
// the Server drain contract: Close completes every accepted submission
// before returning.
type Engine interface {
	// SubmitFuncDeadline enqueues one utterance, blocking while the queue
	// is full; fn fires exactly once with the result. A nonzero deadline
	// sheds the job at dequeue with ErrDeadlineExceeded.
	SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error
	// TrySubmitFuncDeadline is the non-blocking form: ErrQueueFull instead
	// of waiting.
	TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error
	// OpenStream opens a continuous audio stream on this engine.
	OpenStream() (*Stream, error)
	// Workers returns the engine's worker pool size.
	Workers() int
	// LiveWorkers returns the currently running worker count (health).
	LiveWorkers() int
	// Close drains all accepted work, then releases the engine.
	Close()
}

// Compile-time proof that the persistent Server is an Engine.
var _ Engine = (*Server)(nil)

// EngineFactory builds one shard engine over a model. nil means NewServer.
type EngineFactory func(model *tflm.Model, cfg ServerConfig) (Engine, error)

// TenantConfig parameterizes one tenant's admission control.
type TenantConfig struct {
	// Weight is the tenant's DRR quantum — how many requests per
	// dispatcher round it may dispatch while backlogged. Goodput under
	// saturation is proportional to Weight. <= 0 means 1.
	Weight int
	// MaxQueue caps the tenant's admission queue; submissions beyond it
	// fail with ErrTenantBusy. <= 0 means DefaultTenantQueue.
	MaxQueue int
}

// DefaultTenantQueue is the per-tenant admission queue cap when
// TenantConfig.MaxQueue is unset.
const DefaultTenantQueue = 64

// ModelConfig describes one served model at registry construction.
type ModelConfig struct {
	// Model is the initial model; each shard engine clones it.
	Model *tflm.Model
	// Version is the initial model version (swap versions must exceed it).
	// 0 means 1.
	Version uint64
	// VendorPub is the DER public key trusted to sign SwapPackages for
	// this model — the provenance anchor of hot swap. nil disables Swap.
	VendorPub []byte
	// Key is the symmetric key (KU) that opens swap envelopes. Required
	// when VendorPub is set.
	Key []byte
}

// RegistryConfig parameterizes NewRegistry.
type RegistryConfig struct {
	// Shards is how many engines serve each model; <= 0 means 1.
	Shards int
	// Server configures each shard engine (NewServer unless Engine is set).
	Server ServerConfig
	// Engine overrides the shard factory; nil means NewServer. Test
	// doubles and alternative interpreter flavors plug in here.
	Engine EngineFactory
	// Tenants pre-declares known tenants; unknown tenants materialize on
	// first submission with DefaultTenant's configuration.
	Tenants map[string]TenantConfig
	// DefaultTenant configures tenants not listed in Tenants. The zero
	// value means weight 1, queue DefaultTenantQueue.
	DefaultTenant TenantConfig
	// Breaker parameterizes per-shard circuit breaking and the rebuild
	// supervisor; the zero value enables both with defaults.
	Breaker BreakerConfig
	// Overload parameterizes the queue-delay admission controller; the
	// zero value enables it with defaults.
	Overload OverloadConfig
}

// TenantCounters is one tenant's admission-control observability snapshot.
type TenantCounters struct {
	// Accepted counts submissions admitted to the tenant queue.
	Accepted uint64
	// Busy counts submissions rejected at admission (queue at cap) — the
	// per-tenant BUSY rate.
	Busy uint64
	// Shed counts admitted submissions completed with an error by the
	// dispatcher (queue deadline passed before dispatch, registry closed).
	Shed uint64
	// Dispatched counts admitted submissions handed to a shard engine.
	Dispatched uint64
}

// admJob is one admitted submission waiting in a tenant queue.
type admJob struct {
	entry    *modelEntry
	tenant   *tenantState
	samples  []int16
	deadline time.Time
	enq      time.Time // admission instant; sojourn feeds the overload controller
	fn       func(Result)
}

// tenantState is one tenant's admission queue plus DRR bookkeeping. The
// queue is a head-indexed slice (amortized allocation-free once warm);
// deficit and active are dispatcher state, all guarded by Registry.amu.
type tenantState struct {
	name    string
	weight  int
	cap     int
	q       []admJob
	head    int
	deficit int
	active  bool

	accepted   atomic.Uint64
	busy       atomic.Uint64
	shed       atomic.Uint64
	dispatched atomic.Uint64
}

// depth returns the queued-job count.
func (t *tenantState) depth() int { return len(t.q) - t.head }

// pop removes the head job; the caller holds amu and checked depth() > 0.
func (t *tenantState) pop() admJob {
	j := t.q[t.head]
	t.q[t.head] = admJob{} // release references for GC
	t.head++
	if t.head == len(t.q) {
		t.q = t.q[:0]
		t.head = 0
	}
	return j
}

// shardSet is one generation of shards serving a model. next distributes
// submissions round-robin; retired flips exactly once when a swap replaces
// the set, which is how stream bindings distinguish "model swapped" from a
// genuinely closed server. model is retained so the supervisor can rebuild
// a broken shard's engine from the package that built the set.
type shardSet struct {
	version uint64
	model   *tflm.Model
	shards  []*shard
	next    atomic.Uint32
	retired atomic.Bool
}

// modelEntry is one served model: its trust anchors and the atomically
// swappable current shard set. smu serializes Swap (and Close's retirement)
// per model.
type modelEntry struct {
	id        string
	vendorPub []byte
	key       []byte

	smu sync.Mutex
	cur atomic.Pointer[shardSet]

	// inflight counts dispatcher jobs popped for this entry whose engine
	// submit has not yet committed; guarded by Registry.amu. Swap's flush
	// barrier waits for it to reach zero so a job that resolved the old
	// shard set always lands before the old engines close.
	inflight int
}

// Registry is the sharded multi-model serving tier. Construct with
// NewRegistry, submit with Submit/OpenStream/RunBatch, update models in the
// field with Swap, and Close when done: Close stops admission, drains every
// admitted submission, then drains and releases every shard engine.
type Registry struct {
	cfg      RegistryConfig
	factory  EngineFactory
	entries  map[string]*modelEntry // immutable after construction
	ids      []string               // sorted model ids: deterministic iteration
	breaker  BreakerConfig          // resolved (withDefaults)
	overload OverloadConfig         // resolved (withDefaults)
	cbPool   sync.Pool              // *healthCb outcome wrappers

	amu     sync.Mutex
	cond    *sync.Cond // dispatcher wakeup: backlog appeared or closing
	idle    *sync.Cond // swap-barrier wakeup: an in-flight dispatch committed
	tenants map[string]*tenantState
	active  []*tenantState // backlogged tenants, DRR order
	closed  bool

	// Overload-controller state, guarded by amu.
	backlog    int           // admitted-but-undispatched jobs across all tenants
	aboveSince time.Time     // start of the current above-target sojourn run
	overloaded bool          // controller verdict: shed over-share tenants
	svcEWMA    time.Duration // inter-dispatch interval EWMA (service rate)
	lastPop    time.Time     // previous dispatch instant; zeroed on idle

	dispatcherDone chan struct{}
	superKick      chan struct{} // breaker trip -> supervisor wakeup
	superStop      chan struct{}
	superDone      chan struct{}
	swaps          atomic.Uint64
}

// NewRegistry builds the serving tier over the given models. Each model
// gets cfg.Shards engines built by the factory; the admission dispatcher
// starts immediately.
func NewRegistry(models map[string]ModelConfig, cfg RegistryConfig) (*Registry, error) {
	if len(models) == 0 {
		return nil, errors.New("core: registry needs at least one model")
	}
	factory := cfg.Engine
	if factory == nil {
		factory = func(m *tflm.Model, sc ServerConfig) (Engine, error) { return NewServer(m, sc) }
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	r := &Registry{
		cfg:            cfg,
		factory:        factory,
		entries:        make(map[string]*modelEntry, len(models)),
		breaker:        cfg.Breaker.withDefaults(),
		overload:       cfg.Overload.withDefaults(),
		tenants:        make(map[string]*tenantState),
		dispatcherDone: make(chan struct{}),
		superKick:      make(chan struct{}, 1),
		superStop:      make(chan struct{}),
		superDone:      make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.amu)
	r.idle = sync.NewCond(&r.amu)
	// Deterministic construction order so a failure mid-build releases the
	// same prefix run over run.
	ids := make([]string, 0, len(models))
	for id := range models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		mc := models[id]
		if mc.Model == nil {
			r.releaseAll()
			return nil, fmt.Errorf("core: model %q: nil model", id)
		}
		if mc.VendorPub != nil && len(mc.Key) != omgcrypto.KeySize {
			r.releaseAll()
			return nil, fmt.Errorf("core: model %q: swap enabled but key is %d bytes, want %d", id, len(mc.Key), omgcrypto.KeySize)
		}
		version := mc.Version
		if version == 0 {
			version = 1
		}
		set, err := r.buildShardSet(mc.Model, version)
		if err != nil {
			r.releaseAll()
			return nil, fmt.Errorf("core: model %q: %w", id, err)
		}
		e := &modelEntry{id: id, vendorPub: mc.VendorPub, key: mc.Key}
		e.cur.Store(set)
		r.entries[id] = e
	}
	r.ids = ids
	go r.dispatch()
	if r.breaker.Disable {
		close(r.superDone)
	} else {
		go r.supervise()
	}
	return r, nil
}

// buildShardSet constructs one generation of engines over model.
func (r *Registry) buildShardSet(model *tflm.Model, version uint64) (*shardSet, error) {
	set := &shardSet{version: version, model: model, shards: make([]*shard, 0, r.cfg.Shards)}
	for i := 0; i < r.cfg.Shards; i++ {
		eng, err := r.factory(model, r.cfg.Server)
		if err != nil {
			for _, built := range set.shards {
				built.engine().Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sh := &shard{idx: i}
		sh.setEngine(eng)
		set.shards = append(set.shards, sh)
	}
	return set, nil
}

// releaseAll closes every built engine (constructor failure path).
func (r *Registry) releaseAll() {
	for _, e := range r.entries {
		for _, sh := range e.cur.Load().shards {
			sh.engine().Close()
		}
	}
}

// Models returns the served model ids, sorted.
func (r *Registry) Models() []string {
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ModelVersion returns the current version of model id, and whether the
// registry serves it.
func (r *Registry) ModelVersion(id string) (uint64, bool) {
	e, ok := r.entries[id]
	if !ok {
		return 0, false
	}
	return e.cur.Load().version, true
}

// ShardHealth reports the current shard set of model id: shard count, the
// configured worker total, and the live worker total. A healthy model has
// live == workers; the chaos gate asserts exactly that across swaps and
// injected panics.
func (r *Registry) ShardHealth(id string) (shards, workers, live int) {
	e, ok := r.entries[id]
	if !ok {
		return 0, 0, 0
	}
	set := e.cur.Load()
	for _, sh := range set.shards {
		eng := sh.engine()
		workers += eng.Workers()
		live += eng.LiveWorkers()
	}
	return len(set.shards), workers, live
}

// Swaps returns how many hot swaps have completed over the registry's
// lifetime.
func (r *Registry) Swaps() uint64 { return r.swaps.Load() }

// InjectPanic arms the worker-panic chaos hook on one current shard engine
// of model id, when the engine exposes one (core.Server does). It reports
// whether a hook was armed — false for unknown models or engines without
// the hook.
func (r *Registry) InjectPanic(id string) bool {
	e, ok := r.entries[id]
	if !ok {
		return false
	}
	set := e.cur.Load()
	for _, sh := range set.shards {
		if chaos, ok := sh.engine().(interface{ InjectPanic() }); ok {
			chaos.InjectPanic()
			return true
		}
	}
	return false
}

// InjectPanicShard arms the worker-panic chaos hook on one specific shard
// of model id — the targeted form of InjectPanic that panic-storm chaos
// uses to concentrate failures on a single shard until its breaker trips.
// It reports whether a hook was armed.
func (r *Registry) InjectPanicShard(id string, shard int) bool {
	e, ok := r.entries[id]
	if !ok {
		return false
	}
	set := e.cur.Load()
	if shard < 0 || shard >= len(set.shards) {
		return false
	}
	if chaos, ok := set.shards[shard].engine().(interface{ InjectPanic() }); ok {
		chaos.InjectPanic()
		return true
	}
	return false
}

// tenantFor returns (materializing if needed) the tenant's state; the
// caller holds amu.
func (r *Registry) tenantFor(name string) *tenantState {
	t := r.tenants[name]
	if t != nil {
		return t
	}
	tc, ok := r.cfg.Tenants[name]
	if !ok {
		tc = r.cfg.DefaultTenant
	}
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.MaxQueue <= 0 {
		tc.MaxQueue = DefaultTenantQueue
	}
	t = &tenantState{name: name, weight: tc.Weight, cap: tc.MaxQueue}
	r.tenants[name] = t
	return t
}

// Tenants returns every tenant that has submitted (or was pre-declared and
// has submitted), sorted.
func (r *Registry) Tenants() []string {
	r.amu.Lock()
	defer r.amu.Unlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TenantCounters returns the tenant's admission counters; zero counters
// for tenants that never submitted.
func (r *Registry) TenantCounters(name string) TenantCounters {
	r.amu.Lock()
	t := r.tenants[name]
	r.amu.Unlock()
	if t == nil {
		return TenantCounters{}
	}
	return TenantCounters{
		Accepted:   t.accepted.Load(),
		Busy:       t.busy.Load(),
		Shed:       t.shed.Load(),
		Dispatched: t.dispatched.Load(),
	}
}

// Submit admits one utterance for (model, tenant): non-blocking admission
// into the tenant's queue, weighted-fair dispatch to the model's current
// shard set, fn invoked exactly once with the result (on a worker or
// dispatcher goroutine — same contract as Server.SubmitFunc). Admission
// failures are synchronous: ErrUnknownModel, ErrTenantBusy when the
// tenant's queue is at cap (the per-tenant BUSY, with a computed retry-after
// via *TenantBusyError), ErrOverloaded when the queue-delay controller is
// shedding this tenant for exceeding its fair share (*OverloadError, also
// hinted), ErrRegistryClosed after Close. A nonzero deadline sheds the job
// — at dispatch or at engine dequeue — with ErrDeadlineExceeded once it
// passes. Work is only ever refused here: once admitted, a submission is
// never dropped by overload control.
func (r *Registry) Submit(model, tenant string, samples []int16, deadline time.Time, fn func(Result)) error {
	e, ok := r.entries[model]
	if !ok {
		return ErrUnknownModel
	}
	r.amu.Lock()
	if r.closed {
		r.amu.Unlock()
		return ErrRegistryClosed
	}
	t := r.tenantFor(tenant)
	if r.overloaded && !r.overload.Disable && r.overShareLocked(t, t.depth()+1) {
		// Queue-delay controller: dispatch sojourn has been above target for
		// a full window and this tenant is hogging the backlog — shed at
		// admission, before the job costs queue memory. Checked before the
		// hard cap so a capped flood surfaces the overload verdict, not a
		// generic BUSY.
		retry := r.retryAfterLocked()
		r.amu.Unlock()
		t.busy.Add(1)
		return &OverloadError{RetryAfter: retry}
	}
	if t.depth() >= t.cap {
		// Hard cap: the memory backstop. The hint is computed from the
		// measured service rate, not a config constant.
		retry := r.retryAfterLocked()
		r.amu.Unlock()
		t.busy.Add(1)
		return &TenantBusyError{RetryAfter: retry}
	}
	t.q = append(t.q, admJob{entry: e, tenant: t, samples: samples, deadline: deadline, enq: time.Now(), fn: fn})
	r.backlog++
	t.accepted.Add(1)
	if !t.active {
		t.active = true
		r.active = append(r.active, t)
		r.cond.Signal()
	}
	r.amu.Unlock()
	return nil
}

// dispatch is the admission dispatcher: deficit round robin over the
// backlogged tenants. Each round the head tenant earns its weight in
// request credits and dispatches up to that many queued jobs (blocking on
// shard backpressure — fairness is decided here, so the engines only ever
// see work in fair proportion); a tenant whose queue empties leaves the
// round-robin ring and forfeits its deficit, per DRR. After Close the
// dispatcher drains every remaining admitted job before exiting — the
// registry half of the drain contract.
func (r *Registry) dispatch() {
	defer close(r.dispatcherDone)
	r.amu.Lock()
	for {
		for len(r.active) == 0 {
			if r.closed {
				r.amu.Unlock()
				return
			}
			r.lastPop = time.Time{} // idle: think time must not skew the rate
			r.cond.Wait()
		}
		t := r.active[0]
		r.active = r.active[1:]
		t.deficit += t.weight
		for t.deficit > 0 && t.depth() > 0 {
			j := t.pop()
			t.deficit--
			r.backlog--
			now := time.Now()
			r.noteServiceLocked(now)
			if !j.enq.IsZero() {
				r.overloadObserveLocked(now.Sub(j.enq), now)
			}
			// Resolve the target generation under amu: a Swap flush barrier
			// that runs after this pop observes inflight > 0 and waits for
			// the dispatch to commit before it retires this set.
			set := j.entry.cur.Load()
			j.entry.inflight++
			r.amu.Unlock()
			r.dispatchOne(set, j)
			r.amu.Lock()
			if j.entry.inflight--; j.entry.inflight == 0 {
				r.idle.Broadcast()
			}
		}
		if t.depth() > 0 {
			r.active = append(r.active, t)
		} else {
			t.deficit = 0
			t.active = false
		}
	}
}

// swapRetryLimit bounds how often a dispatch retries against a fresh shard
// set after racing a swap's engine retirement. One retry is enough in
// practice (the new set is live before the old one closes); the bound is a
// defensive backstop, not a policy.
const swapRetryLimit = 8

// dispatchOne hands one admitted job to its model's current shard set.
// Jobs whose deadline already passed are shed here without costing an
// engine slot. A dispatch that races a hot swap (the set it resolved
// retired under it) re-resolves and retries — this is the mechanism that
// makes swap drop zero accepted requests.
func (r *Registry) dispatchOne(set *shardSet, j admJob) {
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.tenant.shed.Add(1)
		j.fn(Result{Label: -1, Err: ErrDeadlineExceeded})
		return
	}
	for attempt := 0; ; attempt++ {
		err := r.submitTo(set, j)
		if err == nil {
			j.tenant.dispatched.Add(1)
			return
		}
		if errors.Is(err, ErrServerClosed) && attempt < swapRetryLimit {
			set = j.entry.cur.Load() // raced a swap: retry on the new set
			continue
		}
		j.tenant.shed.Add(1)
		j.fn(Result{Label: -1, Err: err})
		return
	}
}

// submitTo places a job on one of the set's engines: a non-blocking pass
// over every breaker-admissible shard first (work-stealing across shard
// queues), then a blocking submit on the first admitted shard when all are
// full. Open shards are skipped — except that when every shard of the set
// is open or probing, the rotation choice serves anyway: breakers shed
// routing preference, never the last capacity. With breaking enabled every
// callback is wrapped in a pooled outcome recorder that feeds the shard's
// health scoring.
func (r *Registry) submitTo(set *shardSet, j admJob) error {
	n := len(set.shards)
	start := int(set.next.Add(1)-1) % n
	if r.breaker.Disable {
		for k := 0; k < n; k++ {
			err := set.shards[(start+k)%n].engine().TrySubmitFuncDeadline(j.samples, j.deadline, j.fn)
			if err == nil {
				return nil
			}
			if !errors.Is(err, ErrQueueFull) {
				return err
			}
		}
		return set.shards[start].engine().SubmitFuncDeadline(j.samples, j.deadline, j.fn)
	}
	now := time.Now().UnixNano()
	hc := r.getHealthCb()
	var admitted *shard
	for k := 0; k < n; k++ {
		sh := set.shards[(start+k)%n]
		if !sh.admit(now) {
			continue
		}
		if admitted == nil {
			admitted = sh
		}
		hc.sh, hc.fn = sh, j.fn
		err := sh.engine().TrySubmitFuncDeadline(j.samples, j.deadline, hc.cb)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrQueueFull) {
			r.putHealthCb(hc)
			return err
		}
		// A half-open probe that found a full queue stays half-open: the
		// backlog draining from that engine carries outcome recorders, and
		// their verdicts resolve the probe.
	}
	if admitted == nil {
		admitted = set.shards[start]
	}
	hc.sh, hc.fn = admitted, j.fn
	if err := admitted.engine().SubmitFuncDeadline(j.samples, j.deadline, hc.cb); err != nil {
		r.putHealthCb(hc)
		return err
	}
	return nil
}

// RunBatch classifies a whole batch for (model, tenant) through admission
// control, returning one Result per utterance in order. Utterances the
// admission layer rejects (tenant queue cap) report their error in-place;
// the rest complete normally. This is the netfront batch path's registry
// face.
func (r *Registry) RunBatch(model, tenant string, utts [][]int16) []Result {
	results := make([]Result, len(utts))
	var wg sync.WaitGroup
	for i := range utts {
		res := &results[i]
		wg.Add(1)
		err := r.Submit(model, tenant, utts[i], time.Time{}, func(rr Result) {
			*res = rr
			wg.Done()
		})
		if err != nil {
			*res = Result{Label: -1, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return results
}

// RegistryStream is a stream bound to one model generation. It delegates
// to the underlying core.Stream; once a hot swap retires the generation —
// or the supervisor rebuilds the shard the stream is bound to — Submit
// reports ErrModelSwapped (accepted hops still complete and deliver
// through OnResult — the binding breaks, the work does not).
type RegistryStream struct {
	set *shardSet
	sh  *shard
	gen uint64 // sh.gen at open; a mismatch means the engine was rebuilt away
	st  *Stream
}

// OpenStream opens a stream for (model, tenant) on one shard of the
// model's current generation. Streams bypass the admission queues — their
// flow control is the per-stream buffer budget — but stay bound to the
// generation that opened them: after a swap the stream finishes its
// accepted hops on the old interpreter and then reports ErrModelSwapped.
func (r *Registry) OpenStream(model, tenant string) (*RegistryStream, error) {
	e, ok := r.entries[model]
	if !ok {
		return nil, ErrUnknownModel
	}
	r.amu.Lock()
	closed := r.closed
	r.amu.Unlock()
	if closed {
		return nil, ErrRegistryClosed
	}
	set := e.cur.Load()
	n := len(set.shards)
	start := int(set.next.Add(1)-1) % n
	sh := set.shards[start]
	if !r.breaker.Disable {
		// Prefer a closed-breaker shard; fall back to the rotation choice
		// when every shard is open (availability over purity).
		for k := 0; k < n; k++ {
			if cand := set.shards[(start+k)%n]; BreakerState(cand.state.Load()) == BreakerClosed {
				sh = cand
				break
			}
		}
	}
	gen := sh.gen.Load()
	st, err := sh.engine().OpenStream()
	if err != nil {
		return nil, err
	}
	return &RegistryStream{set: set, sh: sh, gen: gen, st: st}, nil
}

// Stream returns the underlying core.Stream.
func (rs *RegistryStream) Stream() *Stream { return rs.st }

// OnResult switches the stream to callback delivery (core.Stream.OnResult).
func (rs *RegistryStream) OnResult(fn func(hop uint64, r Result)) { rs.st.OnResult(fn) }

// Hops returns how many inference hops the stream has submitted.
func (rs *RegistryStream) Hops() uint64 { return rs.st.Hops() }

// Swapped reports whether the stream's generation has been retired by a
// hot swap (or its shard rebuilt away by the supervisor).
func (rs *RegistryStream) Swapped() bool {
	return rs.set.retired.Load() || rs.sh.gen.Load() != rs.gen
}

// Submit advances the stream by chunk. Once the stream's generation has
// been retired by a swap — or its shard's engine rebuilt by the supervisor
// — Submit reports ErrModelSwapped instead of the engine's ErrServerClosed:
// hops accepted before retirement still deliver, and the caller reopens
// against the current generation.
func (rs *RegistryStream) Submit(chunk []int16) ([]*Pending, error) {
	tickets, err := rs.st.Submit(chunk)
	if err != nil && errors.Is(err, ErrServerClosed) && rs.Swapped() {
		err = ErrModelSwapped
	}
	return tickets, err
}

// SwapPackage is a provenance-checked model update: the field-swap
// counterpart of the provisioning-phase ModelPackage. Blob is a marshalled
// omgcrypto.Envelope over the OMGM bytes, sealed under the model's KU with
// ModelAAD(Version); VendorSig signs the canonical TBS encoding under the
// vendor key the registry pins. Everything here is safe to move over an
// untrusted channel.
type SwapPackage struct {
	// ModelID names the registry entry the package updates.
	ModelID string
	// Version is the new model version; Swap enforces monotone increase
	// (the rollback half of the license machinery).
	Version uint64
	// Blob is the sealed model envelope (omgcrypto.Envelope.Marshal).
	Blob []byte
	// VendorSig is the vendor signature over swapTBS.
	VendorSig []byte
}

// swapTBS is the canonical signed encoding of a SwapPackage.
func swapTBS(modelID string, version uint64, blob []byte) []byte {
	out := make([]byte, 0, len("omg-swap")+len(modelID)+1+8+len(blob))
	out = append(out, "omg-swap"...)
	out = append(out, byte(len(modelID)))
	out = append(out, modelID...)
	var v [8]byte
	for i := range v {
		v[i] = byte(version >> (8 * i))
	}
	out = append(out, v[:]...)
	out = append(out, blob...)
	return out
}

// Swap hot-swaps model id to the package's version with zero dropped
// requests. The sequence:
//
//  1. Provenance: the vendor signature is verified against the pinned key,
//     the version must strictly increase (rollback protection), and the
//     blob must open under the model's KU bound to ModelAAD(version) —
//     any failure is ErrSwapRejected and the serving state is untouched.
//  2. The new shard set is built and its workers started.
//  3. Already-admitted submissions for this model are flushed from the
//     tenant queues to the outgoing set, so every request accepted before
//     Swap classifies on the model version current at admission.
//  4. The new set is installed: new submissions route to it from here on.
//  5. The old set is marked retired and its engines drained and released
//     (Engine.Close): every in-flight and queued request completes —
//     bit-exactly on the old model — before Swap returns. Streams bound
//     to the old set deliver their accepted hops and then report
//     ErrModelSwapped.
//
// Swaps of one model serialize; swaps of different models may overlap.
func (r *Registry) Swap(id string, pkg *SwapPackage) error {
	e, ok := r.entries[id]
	if !ok {
		return ErrUnknownModel
	}
	e.smu.Lock()
	defer e.smu.Unlock()
	r.amu.Lock()
	closed := r.closed
	r.amu.Unlock()
	if closed {
		return ErrRegistryClosed
	}
	if e.vendorPub == nil {
		return fmt.Errorf("%w: model %q has no pinned vendor key", ErrSwapRejected, id)
	}
	if pkg.ModelID != id {
		return fmt.Errorf("%w: package is for model %q, not %q", ErrSwapRejected, pkg.ModelID, id)
	}
	old := e.cur.Load()
	if pkg.Version <= old.version {
		return fmt.Errorf("%w: version must increase (%d -> %d)", ErrSwapRejected, old.version, pkg.Version)
	}
	if err := omgcrypto.Verify(e.vendorPub, swapTBS(pkg.ModelID, pkg.Version, pkg.Blob), pkg.VendorSig); err != nil {
		return fmt.Errorf("%w: %v", ErrSwapRejected, err)
	}
	env, err := omgcrypto.UnmarshalEnvelope(pkg.Blob)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSwapRejected, err)
	}
	blob, err := omgcrypto.Open(e.key, env, omgcrypto.ModelAAD(pkg.Version))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSwapRejected, err)
	}
	model, err := tflm.Decode(blob)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSwapRejected, err)
	}

	next, err := r.buildShardSet(model, pkg.Version)
	if err != nil {
		return fmt.Errorf("core: swap %q: %w", id, err)
	}

	// Flush admitted-but-undispatched work for this model to the outgoing
	// set: collected under the admission lock (order within each tenant
	// preserved), dispatched outside it (blocking submits drain into the
	// old engines, which are still at full strength).
	r.amu.Lock()
	var flush []admJob
	for _, t := range r.tenants {
		kept := t.q[:t.head]
		for _, j := range t.q[t.head:] {
			if j.entry == e {
				flush = append(flush, j)
			} else {
				kept = append(kept, j)
			}
		}
		t.q = kept
	}
	r.backlog -= len(flush)
	// Barrier: a dispatch popped before the sweep resolved the outgoing
	// set under amu; wait for it to commit into the (still live) old
	// engines before cutting over.
	for e.inflight > 0 {
		r.idle.Wait()
	}
	r.amu.Unlock()
	for _, j := range flush {
		r.flushOne(old, j)
	}

	e.cur.Store(next)
	old.retired.Store(true)
	for _, sh := range old.shards {
		sh.engine().Close()
	}
	r.swaps.Add(1)
	return nil
}

// flushOne dispatches one flushed job to the outgoing shard set during a
// swap (deadline shedding as in dispatchOne; an outgoing engine cannot be
// closed yet, so no retry loop is needed).
func (r *Registry) flushOne(set *shardSet, j admJob) {
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.tenant.shed.Add(1)
		j.fn(Result{Label: -1, Err: ErrDeadlineExceeded})
		return
	}
	if err := r.submitTo(set, j); err != nil {
		j.tenant.shed.Add(1)
		j.fn(Result{Label: -1, Err: err})
		return
	}
	j.tenant.dispatched.Add(1)
}

// Close shuts the registry down with the drain contract: admission stops
// (new submissions get ErrRegistryClosed), the dispatcher drains every
// admitted job into the engines, and every engine is drained and released.
// Every submission accepted before Close completes before Close returns.
// Idempotent.
func (r *Registry) Close() {
	r.amu.Lock()
	if r.closed {
		r.amu.Unlock()
		<-r.dispatcherDone
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.amu.Unlock()
	<-r.dispatcherDone
	// Stop the rebuild supervisor before releasing engines so a rebuild
	// cannot race the final close.
	close(r.superStop)
	<-r.superDone
	for _, e := range r.entries {
		e.smu.Lock()
		for _, eng := range e.cur.Load().shards {
			eng.engine().Close()
		}
		e.smu.Unlock()
	}
}

// SwapSigner is the vendor side of hot swap: it owns the signing identity
// and the model key KU, and mints provenance-checked SwapPackages that a
// Registry pinned to VendorPub/Key will accept. cmd/omg-serve uses one for
// SIGHUP-triggered swaps; tests and the chaos harness mint adversarial and
// honest packages with it.
type SwapSigner struct {
	identity *omgcrypto.Identity
	key      []byte
}

// NewSwapSigner generates a fresh vendor identity and model key from rng
// (omgcrypto.Rand when nil).
func NewSwapSigner(rng io.Reader) (*SwapSigner, error) {
	id, err := omgcrypto.NewIdentity(rng, "omg-swap-vendor")
	if err != nil {
		return nil, err
	}
	key, err := omgcrypto.RandomBytes(rng, omgcrypto.KeySize)
	if err != nil {
		return nil, err
	}
	return &SwapSigner{identity: id, key: key}, nil
}

// VendorPub returns the DER public key to pin as ModelConfig.VendorPub.
func (s *SwapSigner) VendorPub() []byte { return s.identity.Public() }

// Key returns the model key to pin as ModelConfig.Key.
func (s *SwapSigner) Key() []byte { return s.key }

// Package seals and signs model as a SwapPackage for (modelID, version).
func (s *SwapSigner) Package(modelID string, version uint64, model *tflm.Model) (*SwapPackage, error) {
	blob, err := tflm.Encode(model)
	if err != nil {
		return nil, err
	}
	env, err := omgcrypto.Seal(nil, s.key, blob, omgcrypto.ModelAAD(version))
	if err != nil {
		return nil, err
	}
	sealed := env.Marshal()
	sig, err := s.identity.Sign(swapTBS(modelID, version, sealed))
	if err != nil {
		return nil, err
	}
	return &SwapPackage{ModelID: modelID, Version: version, Blob: sealed, VendorSig: sig}, nil
}
