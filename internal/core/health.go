// Shard health tracking and self-healing for the Registry (ISSUE 9): every
// shard carries a three-state circuit breaker fed by per-outcome health
// scoring, open shards leave the dispatch rotation, and a supervisor
// goroutine rebuilds persistently-broken shards from the model package under
// capped exponential backoff. The design constraints, in order:
//
//   - Zero dropped admitted work: a breaker redirects NEW dispatches only.
//     Jobs an engine already accepted complete through the drain contract
//     (Engine.Close completes every accepted submission), and a rebuild
//     closes the broken engine only after its replacement is installed.
//   - Bit-exact results on survivors: health routing never touches the
//     inference path — a job served by any closed shard classifies exactly
//     as it would have on a healthy set.
//   - Availability over purity: when every shard of a set is open, dispatch
//     falls through to the rotation choice anyway. Breakers shed routing
//     preference, never the last capacity.
package core

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"
)

// BreakerState is one shard's circuit-breaker position.
type BreakerState int32

// Breaker states: Closed admits traffic, Open sheds it until the cooldown
// expires, HalfOpen has exactly one probe in flight whose outcome decides
// between reclosing and reopening.
const (
	// BreakerClosed is the healthy state: the shard is in rotation.
	BreakerClosed BreakerState = iota
	// BreakerOpen is the tripped state: the shard is out of rotation until
	// its cooldown expires.
	BreakerOpen
	// BreakerHalfOpen is the probing state: one submission is testing the
	// shard; success recloses, failure reopens with a doubled cooldown.
	BreakerHalfOpen
)

// String names the state for logs and health dumps.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterizes per-shard circuit breaking. The zero value
// enables breaking with the defaults below; set Disable to opt out.
type BreakerConfig struct {
	// Disable turns circuit breaking (and the rebuild supervisor) off:
	// every shard stays in rotation regardless of outcomes — the pre-ISSUE-9
	// behavior.
	Disable bool
	// Threshold is how many consecutive hard failures (worker panics,
	// engine errors — deadline sheds count toward the failure rate only)
	// trip a closed breaker. <= 0 means DefaultBreakerThreshold.
	Threshold int
	// FailureRate is the failure-rate EWMA level in (0, 1] that trips a
	// closed breaker even without a consecutive run — the intermittent-
	// failure detector. <= 0 means DefaultBreakerFailureRate.
	FailureRate float64
	// Cooldown is the first open→half-open wait; it doubles per consecutive
	// trip. <= 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
	// CooldownMax caps the doubling (and the supervisor's rebuild backoff).
	// <= 0 means DefaultBreakerCooldownMax.
	CooldownMax time.Duration
	// RebuildAfter is how many consecutive trips mark a shard persistently
	// broken, making the supervisor rebuild its engine from the model
	// package. <= 0 means DefaultBreakerRebuildAfter.
	RebuildAfter int
}

// Breaker defaults; see BreakerConfig.
const (
	// DefaultBreakerThreshold trips after this many consecutive hard
	// failures.
	DefaultBreakerThreshold = 5
	// DefaultBreakerFailureRate trips when the outcome EWMA crosses it.
	DefaultBreakerFailureRate = 0.5
	// DefaultBreakerCooldown is the first open→half-open wait.
	DefaultBreakerCooldown = 50 * time.Millisecond
	// DefaultBreakerCooldownMax caps the per-trip cooldown doubling.
	DefaultBreakerCooldownMax = 2 * time.Second
	// DefaultBreakerRebuildAfter rebuilds a shard after this many
	// consecutive trips.
	DefaultBreakerRebuildAfter = 3
)

// withDefaults resolves unset breaker knobs.
func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.Threshold <= 0 {
		b.Threshold = DefaultBreakerThreshold
	}
	if b.FailureRate <= 0 {
		b.FailureRate = DefaultBreakerFailureRate
	}
	if b.Cooldown <= 0 {
		b.Cooldown = DefaultBreakerCooldown
	}
	if b.CooldownMax <= 0 {
		b.CooldownMax = DefaultBreakerCooldownMax
	}
	if b.RebuildAfter <= 0 {
		b.RebuildAfter = DefaultBreakerRebuildAfter
	}
	return b
}

// ewmaScale is the fixed-point unit of the failure-rate EWMA (1.0).
const ewmaScale = 1 << 16

// ewmaMinSamples gates the rate trip: the EWMA must have seen at least this
// many outcomes since the last reset before its level alone can trip.
const ewmaMinSamples = 16

// shard is one engine slot of a shardSet plus its health state. The engine
// is behind an atomic pointer because the supervisor replaces it in place on
// rebuild while the dispatcher keeps reading it.
type shard struct {
	idx int
	eng atomic.Pointer[Engine]
	// gen counts engine rebuilds; stream bindings record it so a binding to
	// a rebuilt-away engine can be distinguished from a closed server.
	gen atomic.Uint64

	state   atomic.Int32  // BreakerState
	consec  atomic.Int32  // consecutive hard failures
	ewma    atomic.Uint64 // failure-rate EWMA, fixed point over ewmaScale
	samples atomic.Uint64 // outcomes since the last breaker reset

	trips       atomic.Uint64 // lifetime trip count
	consecTrips atomic.Int32  // trips since the last reclose (drives cooldown + rebuild)
	rebuilds    atomic.Uint64 // lifetime supervisor rebuilds
	openUntil   atomic.Int64  // unix nanos when an open breaker may probe

	// Supervisor-owned rebuild backoff (only the supervisor goroutine
	// touches these, so they need no atomics).
	rebuildDelay time.Duration
	rebuildAt    time.Time
}

// engine returns the shard's current engine.
func (sh *shard) engine() Engine { return *sh.eng.Load() }

// setEngine installs eng and returns the previous engine (nil at build).
func (sh *shard) setEngine(eng Engine) Engine {
	old := sh.eng.Swap(&eng)
	if old == nil {
		return nil
	}
	return *old
}

// admit reports whether a dispatch may target this shard now: always for a
// closed breaker, exactly once per expired cooldown for an open one (the
// CAS winner carries the half-open probe), never while a probe is in
// flight.
func (sh *shard) admit(now int64) bool {
	switch BreakerState(sh.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return now >= sh.openUntil.Load() &&
			sh.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen))
	default:
		return false
	}
}

// noteEWMA folds one outcome into the failure-rate EWMA (alpha = 1/16).
func (sh *shard) noteEWMA(fail bool) {
	var x uint64
	if fail {
		x = ewmaScale
	}
	for {
		old := sh.ewma.Load()
		nw := old - old>>4 + x>>4
		if sh.ewma.CompareAndSwap(old, nw) {
			break
		}
	}
	sh.samples.Add(1)
}

// failureRate returns the EWMA as a float in [0, 1].
func (sh *shard) failureRate() float64 { return float64(sh.ewma.Load()) / ewmaScale }

// ShardStatus is one shard's health snapshot (Registry.Health).
type ShardStatus struct {
	// Shard is the shard's index within its model's set.
	Shard int
	// State is the breaker position.
	State BreakerState
	// Gen counts supervisor rebuilds of this slot's engine.
	Gen uint64
	// ConsecutiveFailures is the current hard-failure run length.
	ConsecutiveFailures int
	// FailureRate is the outcome EWMA in [0, 1].
	FailureRate float64
	// Trips is the lifetime breaker-trip count.
	Trips uint64
	// Rebuilds is the lifetime supervisor-rebuild count.
	Rebuilds uint64
	// Workers is the engine's configured worker count.
	Workers int
	// Live is the engine's currently-running worker count.
	Live int
}

// ModelHealth is one model's health snapshot (Registry.Health).
type ModelHealth struct {
	// Model is the registry model id.
	Model string
	// Version is the model's current (swap-monotone) version.
	Version uint64
	// Shards holds one status per shard, in shard order.
	Shards []ShardStatus
}

// Health returns a point-in-time health snapshot of every served model,
// sorted by model id: per shard the breaker state, failure scoring, trip
// and rebuild counts, and worker liveness. This is the registry face of the
// FrameHealth admin query and the SIGUSR1 dump in cmd/omg-serve.
func (r *Registry) Health() []ModelHealth {
	out := make([]ModelHealth, 0, len(r.entries))
	for _, id := range r.ids {
		e := r.entries[id]
		set := e.cur.Load()
		mh := ModelHealth{Model: id, Version: set.version, Shards: make([]ShardStatus, len(set.shards))}
		for i, sh := range set.shards {
			eng := sh.engine()
			mh.Shards[i] = ShardStatus{
				Shard:               i,
				State:               BreakerState(sh.state.Load()),
				Gen:                 sh.gen.Load(),
				ConsecutiveFailures: int(sh.consec.Load()),
				FailureRate:         sh.failureRate(),
				Trips:               sh.trips.Load(),
				Rebuilds:            sh.rebuilds.Load(),
				Workers:             eng.Workers(),
				Live:                eng.LiveWorkers(),
			}
		}
		out = append(out, mh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// healthCb is the pooled outcome-recording wrapper around a job's callback.
// Like netfront's reqCtx, cb is bound to complete exactly once at pool-miss
// construction so the steady-state dispatch path allocates nothing.
type healthCb struct {
	r  *Registry
	sh *shard
	fn func(Result)
	cb func(Result)
}

// complete records the outcome against the shard, recycles the wrapper, and
// forwards the result.
func (h *healthCb) complete(res Result) {
	fn, sh, r := h.fn, h.sh, h.r
	h.fn, h.sh = nil, nil
	r.cbPool.Put(h)
	r.recordOutcome(sh, res.Err)
	fn(res)
}

// getHealthCb draws a pooled wrapper, binding its callback on pool miss.
func (r *Registry) getHealthCb() *healthCb {
	if h, ok := r.cbPool.Get().(*healthCb); ok {
		return h
	}
	h := &healthCb{r: r}
	h.cb = h.complete
	return h
}

// putHealthCb recycles a wrapper whose submission never committed.
func (r *Registry) putHealthCb(h *healthCb) {
	h.fn, h.sh = nil, nil
	r.cbPool.Put(h)
}

// recordOutcome scores one completed job against its shard: successes clear
// the consecutive count (and reclose a half-open breaker), hard failures
// extend it, and every outcome feeds the failure-rate EWMA. Deadline sheds
// are soft — they signal backlog concentrating on the shard (a stuck shard's
// queue fills while work-stealing routes around it), so they move the rate
// but never a half-open probe or the consecutive run.
func (r *Registry) recordOutcome(sh *shard, err error) {
	if err == nil {
		sh.noteEWMA(false)
		sh.consec.Store(0)
		if BreakerState(sh.state.Load()) == BreakerHalfOpen {
			r.recloseShard(sh)
		}
		return
	}
	sh.noteEWMA(true)
	if errors.Is(err, ErrDeadlineExceeded) {
		if BreakerState(sh.state.Load()) == BreakerClosed && r.rateTripped(sh) {
			r.tripShard(sh, int32(BreakerClosed))
		}
		return
	}
	n := sh.consec.Add(1)
	switch BreakerState(sh.state.Load()) {
	case BreakerHalfOpen:
		// The probe failed: reopen with a doubled cooldown.
		r.tripShard(sh, int32(BreakerHalfOpen))
	case BreakerClosed:
		if int(n) >= r.breaker.Threshold || r.rateTripped(sh) {
			r.tripShard(sh, int32(BreakerClosed))
		}
	}
}

// rateTripped reports whether the shard's failure-rate EWMA alone warrants
// a trip (enough samples, level at or above the configured rate).
func (r *Registry) rateTripped(sh *shard) bool {
	return sh.samples.Load() >= ewmaMinSamples &&
		sh.failureRate() >= r.breaker.FailureRate
}

// tripShard moves a shard from the given state to open, arming the cooldown
// (doubling per consecutive trip, capped) and kicking the supervisor.
func (r *Registry) tripShard(sh *shard, from int32) {
	if !sh.state.CompareAndSwap(from, int32(BreakerOpen)) {
		return // another outcome raced the trip; exactly one wins
	}
	sh.trips.Add(1)
	ct := sh.consecTrips.Add(1)
	cooldown := r.breaker.Cooldown
	for i := int32(1); i < ct && cooldown < r.breaker.CooldownMax; i++ {
		cooldown *= 2
	}
	if cooldown > r.breaker.CooldownMax {
		cooldown = r.breaker.CooldownMax
	}
	sh.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	select {
	case r.superKick <- struct{}{}:
	default:
	}
}

// recloseShard resets a shard to closed after a successful probe (or a
// rebuild): health scoring starts fresh.
func (r *Registry) recloseShard(sh *shard) {
	sh.consec.Store(0)
	sh.consecTrips.Store(0)
	sh.ewma.Store(0)
	sh.samples.Store(0)
	sh.state.Store(int32(BreakerClosed))
}

// supervise is the self-healing loop: woken by trips (and a periodic rescan
// for backoff expiry), it rebuilds shards whose consecutive-trip count marks
// them persistently broken. One goroutine per registry; stopped by Close
// before the engines are released.
func (r *Registry) supervise() {
	defer close(r.superDone)
	for {
		select {
		case <-r.superStop:
			return
		case <-r.superKick:
		case <-time.After(r.breaker.Cooldown):
		}
		for _, id := range r.ids {
			e := r.entries[id]
			set := e.cur.Load()
			for _, sh := range set.shards {
				if BreakerState(sh.state.Load()) == BreakerOpen &&
					int(sh.consecTrips.Load()) >= r.breaker.RebuildAfter &&
					!time.Now().Before(sh.rebuildAt) {
					r.rebuildShard(e, set, sh)
				}
			}
		}
	}
}

// rebuildShard replaces one persistently-broken shard's engine with a fresh
// build from the model package. It serializes with Swap (and Close) on the
// entry's smu and re-checks that the set is still current afterwards — a
// concurrent Swap wins, and the retired set's engines are released exactly
// once, by Swap. The broken engine is closed only after its replacement is
// installed, so accepted work drains (zero drop) and new dispatches land on
// the fresh engine.
func (r *Registry) rebuildShard(e *modelEntry, set *shardSet, sh *shard) {
	e.smu.Lock()
	defer e.smu.Unlock()
	if e.cur.Load() != set || set.retired.Load() {
		return // a swap replaced the set: nothing of ours left to heal
	}
	if BreakerState(sh.state.Load()) != BreakerOpen {
		return // a probe reclosed it while we were queued on smu
	}
	eng, err := r.factory(set.model, r.cfg.Server)
	if err != nil {
		// Capped exponential backoff between rebuild attempts.
		if sh.rebuildDelay <= 0 {
			sh.rebuildDelay = r.breaker.Cooldown
		} else {
			sh.rebuildDelay *= 2
		}
		if sh.rebuildDelay > r.breaker.CooldownMax {
			sh.rebuildDelay = r.breaker.CooldownMax
		}
		sh.rebuildAt = time.Now().Add(sh.rebuildDelay)
		return
	}
	old := sh.setEngine(eng)
	sh.gen.Add(1)
	sh.rebuilds.Add(1)
	sh.rebuildDelay, sh.rebuildAt = 0, time.Time{}
	r.recloseShard(sh)
	// Drain contract: every submission the broken engine accepted completes
	// before Close returns — the rebuild drops nothing.
	old.Close()
}

// OverloadConfig parameterizes the queue-delay admission controller. The
// zero value enables it with the defaults below; set Disable to fall back
// to hard per-tenant caps only.
type OverloadConfig struct {
	// Disable turns delay-based shedding off. Retry-after hints are still
	// computed from the measured service rate.
	Disable bool
	// Target is the acceptable queue sojourn time (CoDel-style): dispatch
	// delay at or below it is healthy. <= 0 means DefaultOverloadTarget.
	Target time.Duration
	// Window is how long sojourn must stay above Target before the
	// controller declares overload and starts shedding over-share tenants.
	// <= 0 means DefaultOverloadWindow.
	Window time.Duration
}

// Overload-controller defaults; see OverloadConfig.
const (
	// DefaultOverloadTarget is the acceptable queue sojourn.
	DefaultOverloadTarget = 5 * time.Millisecond
	// DefaultOverloadWindow is the above-target persistence before shedding.
	DefaultOverloadWindow = 25 * time.Millisecond
)

// withDefaults resolves unset overload knobs.
func (o OverloadConfig) withDefaults() OverloadConfig {
	if o.Target <= 0 {
		o.Target = DefaultOverloadTarget
	}
	if o.Window <= 0 {
		o.Window = DefaultOverloadWindow
	}
	return o
}

// Computed retry-after clamp: at least the wire's millisecond granularity,
// at most a bound that keeps a mis-measured service rate from idling
// clients for minutes.
const (
	minRetryAfter = time.Millisecond
	maxRetryAfter = 2 * time.Second
)

// ErrOverloaded reports a submission shed by the queue-delay controller:
// the tenant was consuming more than its fair share while dispatch sojourn
// stayed above target. The concrete error is an *OverloadError carrying the
// computed retry-after; the wire face is CodeUnavailable with that hint.
var ErrOverloaded = errors.New("core: shed by overload control")

// OverloadError is the concrete overload shed; errors.Is(err, ErrOverloaded)
// matches it.
type OverloadError struct {
	// RetryAfter is the computed backlog-drain estimate.
	RetryAfter time.Duration
}

// Error returns the overload message.
func (e *OverloadError) Error() string { return ErrOverloaded.Error() }

// Is matches ErrOverloaded.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// TenantBusyError is the concrete admission rejection: errors.Is(err,
// ErrTenantBusy) matches it, and RetryAfter carries the computed
// backlog-drain estimate (service-rate EWMA × queue depth) instead of a
// config constant.
type TenantBusyError struct {
	// RetryAfter is the computed backoff hint.
	RetryAfter time.Duration
}

// Error returns the busy message.
func (e *TenantBusyError) Error() string { return ErrTenantBusy.Error() }

// Is matches ErrTenantBusy, so callers keep writing errors.Is(err,
// ErrTenantBusy).
func (e *TenantBusyError) Is(target error) bool { return target == ErrTenantBusy }

// noteServiceLocked folds one dispatch interval into the service-rate EWMA
// (alpha = 1/8); the caller holds amu. Only backlogged intervals count —
// lastPop is zeroed when the dispatcher idles, so think time between bursts
// never inflates the estimate.
func (r *Registry) noteServiceLocked(now time.Time) {
	if !r.lastPop.IsZero() {
		if iv := now.Sub(r.lastPop); iv > 0 {
			if r.svcEWMA == 0 {
				r.svcEWMA = iv
			} else {
				r.svcEWMA += (iv - r.svcEWMA) / 8
			}
		}
	}
	r.lastPop = now
}

// retryAfterLocked computes the BUSY hint from live state: the measured
// per-job service interval times the current backlog, clamped. The caller
// holds amu.
func (r *Registry) retryAfterLocked() time.Duration {
	svc := r.svcEWMA
	if svc <= 0 {
		svc = minRetryAfter
	}
	d := time.Duration(r.backlog+1) * svc
	if d < minRetryAfter {
		d = minRetryAfter
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// overShareSlack is the absolute headroom in the over-share comparison:
// small transient imbalances between near-equal tenants never read as
// over-share.
const overShareSlack = 4.0

// overShareLocked reports whether a tenant holding depth queued jobs is
// consuming far beyond its fair share: its weight-normalized backlog
// exceeds twice the largest normalized backlog among the OTHER active
// tenants (plus slack). The comparison is deliberately relative — a lone
// backlogged tenant is never over-share (there is nobody to be unfair to),
// and near-equal tenants never shed each other. The caller holds amu.
func (r *Registry) overShareLocked(t *tenantState, depth int) bool {
	maxOther := -1.0
	for _, a := range r.active {
		if a == t || a.depth() == 0 {
			continue
		}
		if n := float64(a.depth()) / float64(a.weight); n > maxOther {
			maxOther = n
		}
	}
	if maxOther < 0 {
		return false
	}
	return float64(depth)/float64(t.weight) > 2*maxOther+overShareSlack
}

// overloadObserveLocked updates the queue-delay controller with one popped
// job's sojourn: at or under target clears overload, persistently above
// target for a full window declares it. Shedding itself happens only at
// admission (Submit) — already-admitted work is never dropped, preserving
// the registry's zero-drop contract. The caller holds amu.
func (r *Registry) overloadObserveLocked(sojourn time.Duration, now time.Time) {
	if sojourn <= r.overload.Target {
		r.aboveSince = time.Time{}
		r.overloaded = false
		return
	}
	if r.aboveSince.IsZero() {
		r.aboveSince = now
		return
	}
	if !r.overloaded && now.Sub(r.aboveSince) >= r.overload.Window {
		r.overloaded = true
	}
}
