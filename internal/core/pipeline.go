// Batch inference pipeline: the host-throughput layer of the engine. Where
// KWSApp runs one utterance at a time inside a simulated enclave, Pipeline
// serves many utterances concurrently at host speed — the "as fast as the
// hardware allows" serving path for experiments, calibration sweeps and
// load generation. It owns a pool of workers, each with a private
// interpreter (over a weight-sharing model clone), a private DSP frontend
// and private fingerprint scratch, so the per-utterance hot path performs
// no heap allocation beyond the caller-visible result probabilities.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dsp"
	"repro/internal/tflm"
)

// PipelineConfig parameterizes NewPipeline.
type PipelineConfig struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Frontend configures feature extraction; the zero value means
	// dsp.DefaultFrontend().
	Frontend dsp.FrontendConfig
	// WithProbs requests dequantized class probabilities in each Result
	// (one allocation per utterance); when false only labels are produced.
	WithProbs bool
}

// Result is the outcome of one utterance in a batch.
type Result struct {
	// Label is the argmax class, or -1 when Err is set.
	Label int
	// Probs holds dequantized class probabilities when requested.
	Probs []float64
	// Err reports a per-utterance failure; other utterances are unaffected.
	Err error
}

// pipeWorker is one worker's private execution state.
type pipeWorker struct {
	fe *dsp.Frontend
	ip *tflm.Interpreter
	fp []uint8 // fingerprint scratch, reused across utterances
}

// Pipeline fans batches of utterances across a fixed worker pool.
type Pipeline struct {
	workers   []*pipeWorker
	withProbs bool
}

// NewPipeline builds a pool of workers over clones of model (constant
// weight tensors are shared, activations are private per worker).
func NewPipeline(model *tflm.Model, cfg PipelineConfig) (*Pipeline, error) {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	feCfg := cfg.Frontend
	if feCfg == (dsp.FrontendConfig{}) {
		feCfg = dsp.DefaultFrontend()
	}
	p := &Pipeline{withProbs: cfg.WithProbs}
	for i := 0; i < n; i++ {
		ip, err := tflm.NewInterpreter(model.Clone())
		if err != nil {
			return nil, fmt.Errorf("core: pipeline worker %d: %w", i, err)
		}
		fe, err := dsp.NewFrontend(feCfg)
		if err != nil {
			return nil, fmt.Errorf("core: pipeline worker %d: %w", i, err)
		}
		in := ip.Input(0)
		if in.Type != tflm.Int8 || in.NumElements() != feCfg.FingerprintLen() {
			return nil, fmt.Errorf("core: model input %s incompatible with %d-feature fingerprint", in, feCfg.FingerprintLen())
		}
		p.workers = append(p.workers, &pipeWorker{
			fe: fe,
			ip: ip,
			fp: make([]uint8, feCfg.FingerprintLen()),
		})
	}
	return p, nil
}

// Workers returns the pool size.
func (p *Pipeline) Workers() int { return len(p.workers) }

// RunBatch classifies every utterance and returns one Result per input, in
// order. Utterances are distributed dynamically over the worker pool, so a
// slow utterance never stalls the rest of the batch.
func (p *Pipeline) RunBatch(utts [][]int16) []Result {
	results := make([]Result, len(utts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *pipeWorker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(utts) {
					return
				}
				results[i] = w.run(utts[i], p.withProbs)
			}
		}(w)
	}
	wg.Wait()
	return results
}

// run executes one utterance on this worker's private state.
func (w *pipeWorker) run(samples []int16, withProbs bool) Result {
	w.fp = w.fe.ExtractInto(w.fp, samples)
	in := w.ip.Input(0)
	for i, f := range w.fp {
		in.I8[i] = int8(int32(f) - 128)
	}
	if err := w.ip.Invoke(); err != nil {
		return Result{Label: -1, Err: err}
	}
	out := w.ip.Output(0)
	res := Result{Label: tflm.Argmax(out)}
	if withProbs {
		res.Probs = make([]float64, out.NumElements())
		for i, q := range out.I8 {
			res.Probs[i] = out.Quant.Dequantize(q)
		}
	}
	return res
}
