// Batch inference pipeline: the host-throughput layer of the engine. Where
// KWSApp runs one utterance at a time inside a simulated enclave, Pipeline
// serves many utterances concurrently at host speed. Since the streaming
// Server landed it is a thin compatibility wrapper over it: NewPipeline
// stands up a persistent Server and RunBatch forwards to Server.RunBatch,
// so the per-call goroutine spawn and WaitGroup churn of the original
// implementation are gone while the API and result semantics are unchanged.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/dsp"
	"repro/internal/tflm"
)

// PipelineConfig parameterizes NewPipeline.
type PipelineConfig struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Frontend configures feature extraction; the zero value means
	// dsp.DefaultFrontend().
	Frontend dsp.FrontendConfig
	// WithProbs requests dequantized class probabilities in each Result
	// (one allocation per utterance); when false only labels are produced.
	WithProbs bool
}

// Result is the outcome of one utterance in a batch.
type Result struct {
	// Label is the argmax class, or -1 when Err is set.
	Label int
	// Probs holds dequantized class probabilities when requested.
	Probs []float64
	// Err reports a per-utterance failure; other utterances are unaffected.
	Err error
}

// pipeWorker is one worker's private execution state.
type pipeWorker struct {
	fe *dsp.Frontend
	ip *tflm.Interpreter
	fp []uint8 // fingerprint scratch, reused across utterances
	// batch is the job staging area for batched queue draining (nil when
	// the worker runs strictly one utterance per interpreter call).
	batch []job
}

// newPipeWorker builds one worker over a clone of model, validating that the
// model input matches the frontend's fingerprint geometry. maxBatch > 1
// additionally plans the interpreter's stacked InvokeBatch path — sharded
// batchPar ways when above 1 — so the worker can drain several queued
// utterances per interpreter call.
func newPipeWorker(model *tflm.Model, feCfg dsp.FrontendConfig, maxBatch, batchPar int) (*pipeWorker, error) {
	ip, err := tflm.NewInterpreter(model.Clone())
	if err != nil {
		return nil, err
	}
	fe, err := dsp.NewFrontend(feCfg)
	if err != nil {
		return nil, err
	}
	in := ip.Input(0)
	if in.Type != tflm.Int8 || in.NumElements() != feCfg.FingerprintLen() {
		return nil, fmt.Errorf("core: model input %s incompatible with %d-feature fingerprint", in, feCfg.FingerprintLen())
	}
	w := &pipeWorker{fe: fe, ip: ip, fp: make([]uint8, feCfg.FingerprintLen())}
	// Models the batched engine cannot plan (e.g. non-int8 or multi-tensor
	// output) simply keep the one-utterance-per-call path; batching is an
	// optimization, not a serving requirement.
	if batchPar < 1 {
		batchPar = 1
	}
	if maxBatch > 1 && ip.PlanBatchParallel(maxBatch, batchPar) == nil {
		w.batch = make([]job, 0, maxBatch)
	}
	return w, nil
}

// run executes one utterance on this worker's private state.
func (w *pipeWorker) run(samples []int16, withProbs bool) Result {
	w.fp = w.fe.ExtractInto(w.fp, samples)
	return w.runFingerprint(w.fp, withProbs)
}

// runFingerprint invokes the model on an already extracted fingerprint (the
// streaming path, where the Stream's incremental extractor produced it).
func (w *pipeWorker) runFingerprint(fp []uint8, withProbs bool) Result {
	in := w.ip.Input(0)
	for i, f := range fp {
		in.I8[i] = int8(int32(f) - 128)
	}
	if err := w.ip.Invoke(); err != nil {
		return Result{Label: -1, Err: err}
	}
	out := w.ip.Output(0)
	res := Result{Label: tflm.Argmax(out)}
	if withProbs {
		res.Probs = make([]float64, out.NumElements())
		for i, q := range out.I8 {
			res.Probs[i] = out.Quant.Dequantize(q)
		}
	}
	return res
}

// runJobs classifies a drained batch of queued jobs through the planned
// InvokeBatch path: each job's fingerprint (extracted here for utterance
// jobs, precomputed for stream jobs) is staged into the interpreter's
// stacked input slab, one InvokeBatch covers all of them, and the results
// are written through the jobs' result pointers. Completion is signalled
// per job, in order.
func (w *pipeWorker) runJobs(jobs []job, withProbs bool) {
	for j := range jobs {
		fp := jobs[j].fp
		if fp == nil {
			w.fp = w.fe.ExtractInto(w.fp, jobs[j].samples)
			fp = w.fp
		}
		in := w.ip.BatchInput(j)
		for i, f := range fp {
			in[i] = int8(int32(f) - 128)
		}
	}
	err := w.ip.InvokeBatch(len(jobs))
	outQ := w.ip.Output(0).Quant
	for j := range jobs {
		if err != nil {
			*jobs[j].res = Result{Label: -1, Err: err}
		} else {
			out := w.ip.BatchOutput(j)
			res := Result{Label: tflm.ArgmaxI8(out)}
			if withProbs {
				res.Probs = make([]float64, len(out))
				for i, q := range out {
					res.Probs[i] = outQ.Dequantize(q)
				}
			}
			*jobs[j].res = res
		}
	}
}

// Pipeline fans batches of utterances across a persistent worker pool.
type Pipeline struct {
	srv *Server
}

// NewPipeline builds a pool of workers over clones of model (constant
// weight tensors are shared, activations are private per worker). The pool
// is a persistent Server private to the Pipeline (no accessor — the GC
// cleanup below closes it when the Pipeline is dropped, so an escaped
// reference could be closed mid-use); callers that want streaming or queue
// control should build a Server directly. Close the Pipeline when done;
// a dropped Pipeline also releases its workers via the cleanup, so the
// pre-Server API contract (no Close) cannot leak goroutines.
func NewPipeline(model *tflm.Model, cfg PipelineConfig) (*Pipeline, error) {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	srv, err := NewServer(model, ServerConfig{
		Workers:   n,
		Frontend:  cfg.Frontend,
		WithProbs: cfg.WithProbs,
	})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{srv: srv}
	runtime.AddCleanup(p, func(s *Server) { s.Close() }, srv)
	return p, nil
}

// Workers returns the pool size.
func (p *Pipeline) Workers() int { return p.srv.Workers() }

// Close stops the worker pool after draining queued work. Idempotent.
func (p *Pipeline) Close() { p.srv.Close() }

// RunBatch classifies every utterance and returns one Result per input, in
// order. Utterances are distributed dynamically over the worker pool, so a
// slow utterance never stalls the rest of the batch.
func (p *Pipeline) RunBatch(utts [][]int16) []Result {
	return p.srv.RunBatch(utts)
}
