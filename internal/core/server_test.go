package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dsp"
)

// TestServerSubmitOrdering: tickets waited in submission order must yield
// exactly the serial classification of the batch, for every pool size.
func TestServerSubmitOrdering(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 24)
	want := serialResults(t, model, utts)
	for _, workers := range []int{1, 2, 4} {
		srv, err := NewServer(model, ServerConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tickets := make([]*Pending, len(utts))
		for i, u := range utts {
			if tickets[i], err = srv.Submit(u); err != nil {
				t.Fatalf("workers=%d submit %d: %v", workers, i, err)
			}
		}
		for i, p := range tickets {
			r := p.Wait()
			if r.Err != nil {
				t.Fatalf("workers=%d utterance %d: %v", workers, i, r.Err)
			}
			if r.Label != want[i] {
				t.Fatalf("workers=%d utterance %d: label %d, want %d", workers, i, r.Label, want[i])
			}
			// Wait must be repeatable.
			if again := p.Wait(); again.Label != r.Label {
				t.Fatalf("workers=%d utterance %d: second Wait diverged", workers, i)
			}
		}
		srv.Close()
		if n := srv.liveWorkers(); n != 0 {
			t.Fatalf("workers=%d: %d worker goroutines alive after Close", workers, n)
		}
	}
}

// TestServerConcurrentSubmitters: many goroutines sharing one server must
// each observe correct in-order results for their own submissions (run with
// -race to check the synchronization).
func TestServerConcurrentSubmitters(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 12)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 4, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				tickets := make([]*Pending, len(utts))
				for i, u := range utts {
					p, err := srv.Submit(u)
					if err != nil {
						errs <- err
						return
					}
					tickets[i] = p
				}
				for i, p := range tickets {
					if r := p.Wait(); r.Err != nil || r.Label != want[i] {
						errs <- errors.New("wrong result under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestServerBackpressure: with the workers not yet draining, TrySubmit must
// accept exactly Queue submissions and then report ErrQueueFull; once the
// workers start, everything queued resolves in order.
func TestServerBackpressure(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	want := serialResults(t, model, utts)
	srv, err := newServer(model, ServerConfig{Workers: 2, Queue: len(utts)})
	if err != nil {
		t.Fatal(err)
	}
	if srv.QueueDepth() != len(utts) {
		t.Fatalf("queue depth %d, want %d", srv.QueueDepth(), len(utts))
	}
	tickets := make([]*Pending, len(utts))
	for i, u := range utts {
		if tickets[i], err = srv.TrySubmit(u); err != nil {
			t.Fatalf("submit %d within queue capacity: %v", i, err)
		}
	}
	if _, err := srv.TrySubmit(utts[0]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond capacity: err = %v, want ErrQueueFull", err)
	}
	srv.start()
	for i, p := range tickets {
		if r := p.Wait(); r.Err != nil || r.Label != want[i] {
			t.Fatalf("utterance %d after backpressure: %+v, want label %d", i, r, want[i])
		}
	}
	srv.Close()
	if n := srv.liveWorkers(); n != 0 {
		t.Fatalf("%d worker goroutines alive after Close", n)
	}
}

// TestServerCloseDrains: Close must resolve every ticket obtained before it,
// reject later submissions with ErrServerClosed, stop all workers, and stay
// idempotent.
func TestServerCloseDrains(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 10)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 2, Queue: len(utts)})
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*Pending, len(utts))
	for i, u := range utts {
		if tickets[i], err = srv.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	for i, p := range tickets {
		if r := p.Wait(); r.Err != nil || r.Label != want[i] {
			t.Fatalf("in-flight utterance %d not drained by Close: %+v", i, r)
		}
	}
	if _, err := srv.Submit(utts[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrServerClosed", err)
	}
	if _, err := srv.TrySubmit(utts[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("TrySubmit after Close: err = %v, want ErrServerClosed", err)
	}
	if res := srv.RunBatch(utts[:2]); res[0].Err == nil || res[1].Err == nil {
		t.Fatal("RunBatch after Close did not error per utterance")
	}
	srv.Close() // idempotent
	if n := srv.liveWorkers(); n != 0 {
		t.Fatalf("%d worker goroutines alive after Close", n)
	}
}

// TestServerStreamMatchesWindows: streamed hops must classify exactly like
// independently submitted sliding windows of the same signal, ticket for
// ticket, and reuse the stream's fingerprint buffers rather than allocating
// per hop.
func TestServerStreamMatchesWindows(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 4)
	cfg := dsp.DefaultFrontend()
	// One long signal: several utterances back to back.
	var signal []int16
	for _, u := range utts {
		signal = append(signal, u...)
	}
	srv, err := NewServer(model, ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stream, err := srv.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	// Feed in uneven chunks to exercise hop reassembly.
	for off, step := 0, 0; off < len(signal); off += step {
		step = 777
		if off+step > len(signal) {
			step = len(signal) - off
		}
		tickets, err := srv.SubmitStream(stream, signal[off:off+step])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range tickets {
			r := p.Wait()
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			got = append(got, r.Label)
		}
	}
	// Ground truth: one Submit per sliding window ending at each hop.
	utt := cfg.UtteranceSamples()
	var want []int
	for frames := cfg.NumFrames; ; frames++ {
		start := (frames - cfg.NumFrames) * cfg.StrideSamples
		if start+utt > len(signal) {
			break
		}
		p, err := srv.Submit(signal[start : start+utt])
		if err != nil {
			t.Fatal(err)
		}
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want = append(want, r.Label)
	}
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("stream produced %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hop %d: streamed label %d, windowed label %d", i, got[i], want[i])
		}
	}
	if stream.Streamer().Frames() < len(got) {
		t.Fatal("frame accounting inconsistent with delivered results")
	}
}

// TestServerStreamOwnership: streams are bound to their server.
func TestServerStreamOwnership(t *testing.T) {
	model, _, _ := pipelineFixture(t, 0)
	a, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	stream, err := a.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubmitStream(stream, make([]int16, 16)); err == nil {
		t.Fatal("foreign stream accepted")
	}
}

// TestServerProbs: WithProbs produces per-class probabilities consistent
// with the label, through both the utterance and fingerprint paths.
func TestServerProbs(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 3)
	srv, err := NewServer(model, ServerConfig{Workers: 2, WithProbs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range utts {
		p, err := srv.Submit(u)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		best, bestIdx := -1.0, -1
		for c, pr := range r.Probs {
			if pr > best {
				best, bestIdx = pr, c
			}
		}
		if bestIdx != r.Label {
			t.Fatalf("utterance %d: label %d but probs argmax %d", i, r.Label, bestIdx)
		}
		// Fingerprint path through a worker directly (stream jobs).
		fp := fe.Extract(u)
		direct := srv.workers[0].runFingerprint(fp, true)
		if direct.Label != r.Label {
			t.Fatalf("utterance %d: fingerprint path label %d, utterance path %d", i, direct.Label, r.Label)
		}
		for c := range direct.Probs {
			if direct.Probs[c] != r.Probs[c] {
				t.Fatalf("utterance %d class %d: fingerprint path prob %v, utterance path %v", i, c, direct.Probs[c], r.Probs[c])
			}
		}
	}
}

// TestServerMixedSubmitRunBatch runs concurrent Submit callers against
// concurrent RunBatch callers on a small queue, so workers constantly drain
// mixed batches through InvokeBatch while backpressure cycles — the -race
// target for the batched draining path. Every result must match the serial
// classification.
func TestServerMixedSubmitRunBatch(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 12)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 3, Queue: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // Submit path
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, u := range utts {
					p, err := srv.Submit(u)
					if err != nil {
						errs <- err
						return
					}
					if r := p.Wait(); r.Err != nil || r.Label != want[i] {
						errs <- fmt.Errorf("goroutine %d utterance %d: label %d err %v, want %d", g, i, r.Label, r.Err, want[i])
						p.Release()
						return
					}
					p.Release()
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // RunBatch path
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, r := range srv.RunBatch(utts) {
					if r.Err != nil || r.Label != want[i] {
						errs <- fmt.Errorf("batch goroutine %d utterance %d: label %d err %v, want %d", g, i, r.Label, r.Err, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerParallelBatchRace: with intra-batch shard parallelism enabled,
// concurrent Submit and RunBatch load must stay correct and race-free (run
// with -race): every drained batch fans across the worker interpreter's
// shard goroutines while multiple server workers run concurrently.
func TestServerParallelBatchRace(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 12)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 2, Queue: 6, MaxBatch: 6, BatchParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range srv.workers {
		if got := w.ip.BatchParallelism(); got != 2 {
			t.Fatalf("worker interpreter BatchParallelism = %d, want 2", got)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // Submit path
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, u := range utts {
					p, err := srv.Submit(u)
					if err != nil {
						errs <- err
						return
					}
					if r := p.Wait(); r.Err != nil || r.Label != want[i] {
						errs <- fmt.Errorf("goroutine %d utterance %d: label %d err %v, want %d", g, i, r.Label, r.Err, want[i])
						p.Release()
						return
					}
					p.Release()
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // RunBatch path
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, r := range srv.RunBatch(utts) {
					if r.Err != nil || r.Label != want[i] {
						errs <- fmt.Errorf("batch goroutine %d utterance %d: label %d err %v, want %d", g, i, r.Label, r.Err, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	srv.Close()
	// Close must also retire the interpreters' shard workers.
	for _, w := range srv.workers {
		if got := w.ip.BatchParallelism(); got != 0 {
			t.Fatalf("shard workers alive after Close: BatchParallelism = %d", got)
		}
	}
}

// TestPendingRelease: released tickets recycle through the pool and a
// reused ticket observes only its own submission's result.
func TestPendingRelease(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for rep := 0; rep < 4; rep++ {
		for i, u := range utts {
			p, err := srv.Submit(u)
			if err != nil {
				t.Fatal(err)
			}
			if r := p.Wait(); r.Label != want[i] {
				t.Fatalf("rep %d utterance %d: label %d, want %d", rep, i, r.Label, want[i])
			}
			p.Release()
		}
	}
}

// TestWorkerPanicIsolation: a panicking inference must complete its ticket
// with an ErrWorkerPanic-wrapped error, leave the pool at full strength,
// and not disturb later submissions — the resilience guarantee the netfront
// edge builds on.
func TestWorkerPanicIsolation(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 4)
	want := serialResults(t, model, utts)
	srv, err := NewServer(model, ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.InjectPanic()
	p, err := srv.Submit(utts[0])
	if err != nil {
		t.Fatal(err)
	}
	r := p.Wait()
	if !errors.Is(r.Err, ErrWorkerPanic) {
		t.Fatalf("panicked submission: err = %v, want ErrWorkerPanic", r.Err)
	}
	if r.Label >= 0 {
		t.Fatalf("panicked submission produced label %d", r.Label)
	}
	if got := srv.Panics(); got != 1 {
		t.Fatalf("Panics() = %d, want 1", got)
	}
	if live, want := srv.LiveWorkers(), srv.Workers(); live != want {
		t.Fatalf("pool shrank after panic: %d live of %d", live, want)
	}
	// The pool still serves correctly after the recovered panic.
	for i, u := range utts {
		p, err := srv.Submit(u)
		if err != nil {
			t.Fatalf("submit %d after panic: %v", i, err)
		}
		if r := p.Wait(); r.Err != nil || r.Label != want[i] {
			t.Fatalf("utterance %d after panic: %+v, want label %d", i, r, want[i])
		}
	}
}

// TestWorkerPanicInBatch: a panic while running a drained batch must fail
// every job of the batch (partial results are untrustworthy) without
// killing the worker.
func TestWorkerPanicInBatch(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	srv, err := newServer(model, ServerConfig{Workers: 1, Queue: len(utts)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tickets := make([]*Pending, len(utts))
	for i, u := range utts {
		if tickets[i], err = srv.TrySubmit(u); err != nil {
			t.Fatal(err)
		}
	}
	srv.InjectPanic() // consumed by the first batch the worker drains
	srv.start()
	var panicked int
	for _, p := range tickets {
		if r := p.Wait(); errors.Is(r.Err, ErrWorkerPanic) {
			panicked++
		}
	}
	if panicked == 0 {
		t.Fatal("no ticket observed the injected batch panic")
	}
	if live, want := srv.LiveWorkers(), srv.Workers(); live != want {
		t.Fatalf("pool shrank after batch panic: %d live of %d", live, want)
	}
}

// TestQueueDeadlineShedding: jobs whose queue deadline passed before a
// worker picked them up must be shed at dequeue with ErrDeadlineExceeded —
// cheap load-shedding instead of wasted inference — while undeadlined jobs
// are untouched.
func TestQueueDeadlineShedding(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	want := serialResults(t, model, utts)
	srv, err := newServer(model, ServerConfig{Workers: 1, Queue: len(utts) + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	expired := time.Now().Add(-time.Millisecond)
	stale := make([]*Pending, len(utts))
	for i, u := range utts {
		if stale[i], err = srv.SubmitDeadline(u, expired); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := srv.SubmitDeadline(utts[0], time.Time{}) // no deadline
	if err != nil {
		t.Fatal(err)
	}
	srv.start()
	for i, p := range stale {
		if r := p.Wait(); !errors.Is(r.Err, ErrDeadlineExceeded) {
			t.Fatalf("stale job %d: err = %v, want ErrDeadlineExceeded", i, r.Err)
		}
	}
	if r := fresh.Wait(); r.Err != nil || r.Label != want[0] {
		t.Fatalf("undeadlined job swept up in shedding: %+v, want label %d", r, want[0])
	}
	if got := srv.Shed(); got != uint64(len(utts)) {
		t.Fatalf("Shed() = %d, want %d", got, len(utts))
	}
}

// TestSubmitAfterClose: every submission path must return ErrServerClosed
// deterministically after Close — never panic, never hang — including the
// callback and deadline variants (the netfront edge calls these on live
// connections that race Close).
func TestSubmitAfterClose(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 2)
	srv, err := NewServer(model, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := srv.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Submit(utts[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := srv.SubmitDeadline(utts[0], time.Now().Add(time.Second)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("SubmitDeadline: %v", err)
	}
	if _, err := srv.TrySubmit(utts[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("TrySubmit: %v", err)
	}
	if err := srv.SubmitFunc(utts[0], func(Result) {}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("SubmitFunc: %v", err)
	}
	if err := srv.TrySubmitFunc(utts[0], func(Result) {}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("TrySubmitFunc: %v", err)
	}
	if err := srv.TrySubmitFuncDeadline(utts[0], time.Time{}, func(Result) {}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("TrySubmitFuncDeadline: %v", err)
	}
	// A long chunk guarantees at least one hop submission attempt.
	if _, err := srv.SubmitStream(stream, utts[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("SubmitStream: %v", err)
	}
	srv.Close() // still idempotent with a stream open
}
