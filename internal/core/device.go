package core

import (
	"io"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/sanctuary"
	"repro/internal/trustzone"
)

// Device assembles U's phone: the simulated SoC, the TrustZone firmware
// with the platform keys the device vendor provisioned at the factory, and
// the SANCTUARY driver in the commodity OS.
type Device struct {
	// SoC is the cycle-approximate ARM hardware model.
	SoC *hw.SoC
	// Monitor is the EL3 secure monitor mediating world switches.
	Monitor *trustzone.Monitor
	// SecureOS runs in the secure world (mic capture, key services).
	SecureOS *trustzone.SecureOS
	// Sanctuary manages enclave lifecycle in the commodity OS.
	Sanctuary *sanctuary.Manager
	// Keys are the factory-provisioned platform keys certifying the device.
	Keys *trustzone.PlatformKeys
}

// DeviceConfig parameterizes device construction.
type DeviceConfig struct {
	// Root is the device vendor's root identity used to certify the
	// platform key (factory provisioning).
	Root *omgcrypto.Identity
	// Rand drives key generation; nil means crypto/rand.
	Rand io.Reader
	// EnclaveKeyBits reduces enclave RSA key sizes in simulations
	// (0 = 2048).
	EnclaveKeyBits int
	// SoC overrides the hardware config (zero = HiKey 960).
	SoC hw.Config
	// OSCore selects the commodity-OS core (default 0).
	OSCore int
}

// NewDevice boots a device: SoC, secure monitor, trusted OS (which claims
// the microphone for the secure world), and the SANCTUARY driver.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	soc := hw.NewSoC(cfg.SoC)
	mon := trustzone.NewMonitor(soc)
	keys, err := trustzone.NewPlatformKeys(cfg.Rand, cfg.Root, "hikey960")
	if err != nil {
		return nil, err
	}
	sos, err := trustzone.BootSecureOS(soc, mon, trustzone.SecureOSConfig{
		Keys:           keys,
		Rand:           cfg.Rand,
		EnclaveKeyBits: cfg.EnclaveKeyBits,
	})
	if err != nil {
		return nil, err
	}
	mgr := sanctuary.NewManager(soc, mon, sos, cfg.OSCore)
	return &Device{SoC: soc, Monitor: mon, SecureOS: sos, Sanctuary: mgr, Keys: keys}, nil
}

// Speak feeds PCM16 samples into the device microphone, modelling the user
// talking to the phone.
func (d *Device) Speak(samples []int16) {
	d.SoC.Microphone().Feed(samples)
}
