package core

import (
	"errors"

	"repro/internal/dsp"
	"repro/internal/hw"
	"repro/internal/tflm"
)

// PlainRunner is the Table I baseline: the same frontend and interpreter
// running as an ordinary normal-world process with no enclave, no TZASC
// region, no secure peripheral path — and no protection. It charges the
// identical compute costs to its core, so the difference to KWSApp.Query is
// exactly the OMG overhead.
type PlainRunner struct {
	soc    *hw.SoC
	core   *hw.Core
	fe     *dsp.Frontend
	interp *tflm.Interpreter
}

// NewPlainRunner builds the unprotected runner on the given core. The model
// arrives in plaintext, as it would in a conventional deployment.
func NewPlainRunner(soc *hw.SoC, coreID int, model *tflm.Model) (*PlainRunner, error) {
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		return nil, err
	}
	interp, err := tflm.NewInterpreter(model)
	if err != nil {
		return nil, err
	}
	core := soc.Core(coreID)
	interp.SetMeter(core)
	return &PlainRunner{soc: soc, core: core, fe: fe, interp: interp}, nil
}

// Core returns the core the runner executes on.
func (r *PlainRunner) Core() *hw.Core { return r.core }

// Query reads the microphone directly from the normal world (possible only
// because this configuration never assigned it to the secure world) and
// runs one inference.
func (r *PlainRunner) Query() (*QueryResult, error) {
	samples, err := r.soc.ReadMic(r.core, r.fe.Config().SampleRate)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("core: microphone empty")
	}
	features := r.fe.Extract(samples)
	r.core.Charge(r.fe.Cycles())
	in := r.interp.Input(0)
	for i, f := range features {
		in.I8[i] = int8(int32(f) - 128)
	}
	if err := r.interp.Invoke(); err != nil {
		return nil, err
	}
	out := r.interp.Output(0)
	probs := make([]float64, out.NumElements())
	for i, q := range out.I8 {
		probs[i] = out.Quant.Dequantize(q)
	}
	return &QueryResult{Label: tflm.Argmax(out), Probs: probs}, nil
}
