package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tflm"
)

// fakeHealthEngine is a synchronous Engine double for breaker tests: it
// completes every submission inline, failing with ErrWorkerPanic while its
// fail switch is on, and counts Close calls so release discipline (exactly
// once, never twice) is assertable.
type fakeHealthEngine struct {
	fail   *atomic.Bool
	slow   time.Duration
	closed atomic.Int32
}

func (f *fakeHealthEngine) SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	return f.TrySubmitFuncDeadline(samples, deadline, fn)
}

func (f *fakeHealthEngine) TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	if f.closed.Load() > 0 {
		return ErrServerClosed
	}
	if f.slow > 0 {
		time.Sleep(f.slow)
	}
	if f.fail != nil && f.fail.Load() {
		fn(Result{Label: -1, Err: fmt.Errorf("%w: injected", ErrWorkerPanic)})
		return nil
	}
	fn(Result{Label: 7})
	return nil
}

func (f *fakeHealthEngine) OpenStream() (*Stream, error) {
	return nil, errors.New("fakeHealthEngine: no streams")
}

func (f *fakeHealthEngine) Workers() int     { return 1 }
func (f *fakeHealthEngine) LiveWorkers() int { return 1 }
func (f *fakeHealthEngine) Close()           { f.closed.Add(1) }

// fakeEngineFleet builds fakeHealthEngines and remembers every one, so a
// test can flip individual shards' failure switches and audit Close counts.
type fakeEngineFleet struct {
	mu      sync.Mutex
	built   []*fakeHealthEngine
	failAll atomic.Bool
	slow    time.Duration
}

func (fl *fakeEngineFleet) factory(model *tflm.Model, cfg ServerConfig) (Engine, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	e := &fakeHealthEngine{fail: &fl.failAll, slow: fl.slow}
	fl.built = append(fl.built, e)
	return e, nil
}

// engines returns a snapshot of every engine built so far.
func (fl *fakeEngineFleet) engines() []*fakeHealthEngine {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return append([]*fakeHealthEngine(nil), fl.built...)
}

// submitWait pushes one job through the registry and returns its result.
func submitWait(t *testing.T, reg *Registry, model string) Result {
	t.Helper()
	done := make(chan Result, 1)
	if err := reg.Submit(model, "t", []int16{1}, time.Time{}, func(r Result) { done <- r }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case r := <-done:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("submit result never delivered")
		return Result{}
	}
}

// shardStatus extracts one shard's status from a Health snapshot.
func shardStatus(t *testing.T, reg *Registry, model string, shard int) ShardStatus {
	t.Helper()
	for _, mh := range reg.Health() {
		if mh.Model == model {
			if shard >= len(mh.Shards) {
				t.Fatalf("model %q has %d shards, want index %d", model, len(mh.Shards), shard)
			}
			return mh.Shards[shard]
		}
	}
	t.Fatalf("model %q not in health snapshot", model)
	return ShardStatus{}
}

// TestBreakerTripsAndRecloses drives a per-shard failure run past the
// consecutive threshold, asserts the breaker opens (and the registry keeps
// serving on the survivor), then lets a half-open probe succeed and asserts
// the breaker recloses with scoring reset.
func TestBreakerTripsAndRecloses(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &fakeEngineFleet{}
	reg, err := NewRegistry(map[string]ModelConfig{"m": {Model: model}}, RegistryConfig{
		Shards: 2,
		Engine: fleet.factory,
		Breaker: BreakerConfig{
			Threshold:    3,
			Cooldown:     2 * time.Millisecond,
			CooldownMax:  20 * time.Millisecond,
			RebuildAfter: 1000, // keep the supervisor out of this test
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Fail everything until some shard's breaker opens. Round-robin spreads
	// the failures, so both shards trip eventually; wait for the first.
	fleet.failAll.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	tripped := -1
	for tripped < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no breaker opened under persistent failures")
		}
		r := submitWait(t, reg, "m")
		if r.Err == nil {
			t.Fatal("failing engine produced a success")
		}
		for i := 0; i < 2; i++ {
			if st := shardStatus(t, reg, "m", i); st.State != BreakerClosed {
				tripped = i
			}
		}
	}
	st := shardStatus(t, reg, "m", tripped)
	if st.Trips == 0 {
		t.Fatalf("shard %d open with zero recorded trips: %+v", tripped, st)
	}

	// Heal the engines: probes must reclose every shard and reset scoring.
	fleet.failAll.Store(false)
	for time.Now().Before(deadline) {
		if r := submitWait(t, reg, "m"); r.Err != nil {
			t.Fatalf("healed engine failed: %v", r.Err)
		}
		healthy := true
		for i := 0; i < 2; i++ {
			if st := shardStatus(t, reg, "m", i); st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
				healthy = false
			}
		}
		if healthy {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("breakers never reclosed after failures stopped")
}

// TestSupervisorRebuildsBrokenShard lets a persistently-failing shard trip
// repeatedly until the supervisor rebuilds its engine from the model, then
// asserts the fresh engine serves, the broken one was released exactly
// once, and the rebuild is visible in the health snapshot.
func TestSupervisorRebuildsBrokenShard(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &fakeEngineFleet{}
	// The first engine fails forever; rebuilds produce healthy engines.
	var firstBroken atomic.Bool
	firstBroken.Store(true)
	factory := func(m *tflm.Model, cfg ServerConfig) (Engine, error) {
		eng, _ := fleet.factory(m, cfg)
		fe := eng.(*fakeHealthEngine)
		if len(fleet.engines()) == 1 {
			fe.fail = &firstBroken
		} else {
			fe.fail = nil
		}
		return fe, nil
	}
	reg, err := NewRegistry(map[string]ModelConfig{"m": {Model: model}}, RegistryConfig{
		Shards: 1,
		Engine: factory,
		Breaker: BreakerConfig{
			Threshold:    2,
			Cooldown:     time.Millisecond,
			CooldownMax:  10 * time.Millisecond,
			RebuildAfter: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never rebuilt the broken shard: %+v", shardStatus(t, reg, "m", 0))
		}
		submitWait(t, reg, "m") // traffic drives trips and probes
		if st := shardStatus(t, reg, "m", 0); st.Rebuilds >= 1 {
			break
		}
	}
	// The rebuilt engine serves, and the shard recloses.
	recovered := false
	for time.Now().Before(deadline) {
		r := submitWait(t, reg, "m")
		st := shardStatus(t, reg, "m", 0)
		if r.Err == nil && st.State == BreakerClosed && st.Gen >= 1 {
			recovered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatalf("rebuilt shard never served cleanly: %+v", shardStatus(t, reg, "m", 0))
	}
	engines := fleet.engines()
	if len(engines) < 2 {
		t.Fatalf("rebuild recorded but only %d engines ever built", len(engines))
	}
	if got := engines[0].closed.Load(); got != 1 {
		t.Fatalf("broken engine closed %d times, want exactly 1", got)
	}
}

// TestSwapWinsBreakerRebuildRace races hot swaps against breaker trips and
// supervisor rebuilds on the same model (satellite: swap wins, no
// double-release). Run under -race by default `go test`. At the end every
// engine ever built must have been closed exactly once.
func TestSwapWinsBreakerRebuildRace(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &fakeEngineFleet{}
	reg, signer := signedRegistry(t, model, RegistryConfig{
		Shards: 2,
		Engine: fleet.factory,
		Breaker: BreakerConfig{
			Threshold:    1,
			Cooldown:     time.Millisecond,
			CooldownMax:  4 * time.Millisecond,
			RebuildAfter: 1,
		},
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Failure storm: flip the global failure switch fast enough that trips,
	// probes, and rebuilds all interleave with the swap loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fleet.failAll.Store(i%2 == 0)
			time.Sleep(500 * time.Microsecond)
		}
	}()
	// Traffic keeps outcomes flowing so breakers actually trip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		for {
			select {
			case <-stop:
				inner.Wait()
				return
			default:
			}
			inner.Add(1)
			err := reg.Submit("kws", "t", []int16{1}, time.Time{}, func(Result) { inner.Done() })
			if err != nil {
				inner.Done()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const swaps = 25
	for v := uint64(2); v < 2+swaps; v++ {
		pkg, err := signer.Package("kws", v, model)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Swap("kws", pkg); err != nil {
			t.Fatalf("swap v%d: %v", v, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if v, _ := reg.ModelVersion("kws"); v != 1+swaps {
		t.Fatalf("version %d after %d swaps, want %d", v, swaps, 1+swaps)
	}
	reg.Close()

	// Release discipline: every engine ever built — initial set, swap sets,
	// supervisor rebuilds — is closed exactly once, by exactly one owner.
	for i, e := range fleet.engines() {
		if got := e.closed.Load(); got != 1 {
			t.Fatalf("engine %d closed %d times, want exactly 1 (double release or leak)", i, got)
		}
	}
}

// TestOverloadShedsOverShareTenant floods one tenant through a slow engine
// until the queue-delay controller declares overload, then asserts (a) the
// flooding tenant is shed at admission with a computed retry-after, (b) the
// light tenant is never overload-shed, and (c) no already-admitted job is
// dropped by the controller.
func TestOverloadShedsOverShareTenant(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &fakeEngineFleet{slow: time.Millisecond}
	reg, err := NewRegistry(map[string]ModelConfig{"m": {Model: model}}, RegistryConfig{
		Shards:        1,
		Engine:        fleet.factory,
		DefaultTenant: TenantConfig{MaxQueue: 1024},
		Overload: OverloadConfig{
			Target: 500 * time.Microsecond,
			Window: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var admitted sync.WaitGroup
	var dropped atomic.Uint64
	var lightOut atomic.Int64 // light tenant's outstanding jobs, kept small
	var floodShed int
	var hint time.Duration
	deadline := time.Now().Add(10 * time.Second)
	for floodShed == 0 && time.Now().Before(deadline) {
		// Flood tenant: pour in work far beyond its fair share.
		for i := 0; i < 32; i++ {
			admitted.Add(1)
			err := reg.Submit("m", "flood", []int16{1}, time.Time{}, func(r Result) {
				defer admitted.Done()
				if r.Err != nil {
					dropped.Add(1)
				}
			})
			if err != nil {
				admitted.Done()
				if errors.Is(err, ErrOverloaded) {
					floodShed++
					var oe *OverloadError
					if !errors.As(err, &oe) {
						t.Fatalf("overload shed is %T, want *OverloadError", err)
					}
					hint = oe.RetryAfter
				} else if !errors.Is(err, ErrTenantBusy) {
					t.Fatalf("flood submit: %v", err)
				}
			}
		}
		// Light tenant: a small steady backlog, never over fair share.
		if lightOut.Load() < 8 {
			admitted.Add(1)
			lightOut.Add(1)
			err := reg.Submit("m", "light", []int16{1}, time.Time{}, func(r Result) {
				defer admitted.Done()
				lightOut.Add(-1)
				if r.Err != nil {
					dropped.Add(1)
				}
			})
			if err != nil {
				admitted.Done()
				lightOut.Add(-1)
				if errors.Is(err, ErrOverloaded) {
					t.Fatal("light tenant shed by overload control while under fair share")
				}
				if !errors.Is(err, ErrTenantBusy) {
					t.Fatalf("light submit: %v", err)
				}
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	admitted.Wait()
	if floodShed == 0 {
		t.Fatal("queue-delay controller never shed the flooding tenant")
	}
	if hint < time.Millisecond {
		t.Fatalf("overload retry-after hint %v, want >= 1ms (computed from backlog)", hint)
	}
	if n := dropped.Load(); n != 0 {
		t.Fatalf("%d admitted jobs dropped; overload control must only refuse at admission", n)
	}
}

// TestBusyHintComputedFromBacklog fills a tiny tenant queue behind a slow
// engine and asserts the hard-cap rejection carries a computed, nonzero
// retry-after (TenantBusyError), not a bare sentinel.
func TestBusyHintComputedFromBacklog(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &fakeEngineFleet{slow: 2 * time.Millisecond}
	reg, err := NewRegistry(map[string]ModelConfig{"m": {Model: model}}, RegistryConfig{
		Shards:        1,
		Engine:        fleet.factory,
		DefaultTenant: TenantConfig{MaxQueue: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	var busy *TenantBusyError
	deadline := time.Now().Add(5 * time.Second)
	for busy == nil && time.Now().Before(deadline) {
		wg.Add(1)
		err := reg.Submit("m", "t", []int16{1}, time.Time{}, func(Result) { wg.Done() })
		if err != nil {
			wg.Done()
			if !errors.Is(err, ErrTenantBusy) {
				t.Fatalf("submit: %v", err)
			}
			if !errors.As(err, &busy) {
				t.Fatalf("busy rejection is %T, want *TenantBusyError", err)
			}
		}
	}
	wg.Wait()
	if busy == nil {
		t.Fatal("queue never filled")
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("busy retry-after %v, want > 0", busy.RetryAfter)
	}
}
