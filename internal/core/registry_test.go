package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tflm"
)

// registryFixture builds two models whose classifications differ on the
// fixture utterances (distinct weight seeds), so a test can tell from a
// label which model generation served a request.
func registryFixture(t testing.TB, n int) (oldM, newM *tflm.Model, utts [][]int16, oldLabels, newLabels []int) {
	t.Helper()
	oldM, utts, _ = pipelineFixture(t, n)
	var err error
	newM, err = tflm.BuildRandomTinyConv(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	oldLabels = serialResults(t, oldM, utts)
	newLabels = serialResults(t, newM, utts)
	diff := 0
	for i := range oldLabels {
		if oldLabels[i] != newLabels[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("fixture models classify identically; pick different seeds")
	}
	return oldM, newM, utts, oldLabels, newLabels
}

// signedRegistry builds a single-model registry with swap enabled and
// returns the vendor signer pinned to it.
func signedRegistry(t testing.TB, model *tflm.Model, cfg RegistryConfig) (*Registry, *SwapSigner) {
	t.Helper()
	signer, err := NewSwapSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(map[string]ModelConfig{
		"kws": {Model: model, Version: 1, VendorPub: signer.VendorPub(), Key: signer.Key()},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, signer
}

// TestRegistrySwapZeroDrop is the drain/swap race test (run under -race by
// `go test`): every request admitted before Swap is called must classify
// bit-exactly on the OLD model, every request admitted at any point must
// complete exactly once, and the goroutine count must return to baseline
// once the old shard set is released.
func TestRegistrySwapZeroDrop(t *testing.T) {
	oldM, newM, utts, oldLabels, newLabels := registryFixture(t, 16)

	settle := func(base int) bool {
		for i := 0; i < 100; i++ {
			if runtime.NumGoroutine() <= base {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	baseline := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		reg, signer := signedRegistry(t, oldM, RegistryConfig{
			Shards:        2,
			Server:        ServerConfig{Workers: 1, Queue: 1},
			DefaultTenant: TenantConfig{MaxQueue: 1024},
		})

		// Admit a backlog before swapping: tiny engine queues keep most of
		// it parked in the tenant queues, so the flush barrier does real
		// work rather than racing an empty queue.
		const n = 64
		type outcome struct {
			label int
			err   error
		}
		results := make([]outcome, n)
		fired := make([]atomic.Uint32, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			err := reg.Submit("kws", "tenant-a", utts[i%len(utts)], time.Time{}, func(r Result) {
				if fired[i].Add(1) != 1 {
					t.Errorf("request %d completed more than once", i)
				}
				results[i] = outcome{label: r.Label, err: r.Err}
				wg.Done()
			})
			if err != nil {
				t.Fatalf("round %d submit %d: %v", round, i, err)
			}
		}

		pkg, err := signer.Package("kws", uint64(round)+2, newM)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Swap("kws", pkg); err != nil {
			t.Fatalf("round %d swap: %v", round, err)
		}
		wg.Wait()

		for i := 0; i < n; i++ {
			if results[i].err != nil {
				t.Fatalf("round %d request %d lost: %v", round, i, results[i].err)
			}
			if want := oldLabels[i%len(utts)]; results[i].label != want {
				t.Fatalf("round %d request %d admitted before swap: label %d, want old-model %d",
					round, i, results[i].label, want)
			}
		}

		// New submissions route to the new generation.
		post := reg.RunBatch("kws", "tenant-a", utts)
		for i, r := range post {
			if r.Err != nil {
				t.Fatalf("post-swap %d: %v", i, r.Err)
			}
			if r.Label != newLabels[i] {
				t.Fatalf("post-swap %d: label %d, want new-model %d", i, r.Label, newLabels[i])
			}
		}
		if v, ok := reg.ModelVersion("kws"); !ok || v != uint64(round)+2 {
			t.Fatalf("round %d: version %d ok=%v, want %d", round, v, ok, round+2)
		}

		reg.Close()
		if !settle(baseline) {
			t.Fatalf("round %d: %d goroutines alive, baseline %d — old shard set leaked",
				round, runtime.NumGoroutine(), baseline)
		}
	}
}

// TestRegistrySwapUnderLoad loops hot swaps under sustained concurrent
// one-shot and stream load: zero admitted requests lost, every one-shot
// label matches one of the two generations bit-exactly, streams either
// deliver or report ErrModelSwapped, and shard health is full strength
// after the storm.
func TestRegistrySwapUnderLoad(t *testing.T) {
	oldM, newM, utts, oldLabels, newLabels := registryFixture(t, 8)
	reg, signer := signedRegistry(t, oldM, RegistryConfig{
		Shards:        2,
		Server:        ServerConfig{Workers: 2, Queue: 4},
		DefaultTenant: TenantConfig{MaxQueue: 256},
	})
	defer reg.Close()

	stop := make(chan struct{})
	var swapErr error
	var swapsDone sync.WaitGroup
	swapsDone.Add(1)
	go func() {
		defer swapsDone.Done()
		models := [2]*tflm.Model{newM, oldM}
		for v := uint64(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			pkg, err := signer.Package("kws", v, models[v%2])
			if err != nil {
				swapErr = err
				return
			}
			if err := reg.Swap("kws", pkg); err != nil {
				swapErr = err
				return
			}
		}
	}()

	var lost, completed atomic.Uint64
	var wrong atomic.Uint64
	var loadWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			var inner sync.WaitGroup
			for k := 0; k < 200; k++ {
				i := (g + k) % len(utts)
				inner.Add(1)
				err := reg.Submit("kws", fmt.Sprintf("tenant-%d", g%2), utts[i], time.Time{}, func(r Result) {
					defer inner.Done()
					if r.Err != nil {
						lost.Add(1)
						return
					}
					completed.Add(1)
					if r.Label != oldLabels[i] && r.Label != newLabels[i] {
						wrong.Add(1)
					}
				})
				if err != nil {
					// Admission backpressure is allowed; losing an ADMITTED
					// request is not.
					inner.Done()
					if !errors.Is(err, ErrTenantBusy) {
						t.Errorf("submit: %v", err)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			inner.Wait()
		}(g)
	}

	// Stream load: keep a stream running across swaps; on ErrModelSwapped
	// reopen against the new generation.
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		chunk := utts[0][:4000]
		reopens := 0
		for k := 0; k < 300; k++ {
			st, err := reg.OpenStream("kws", "tenant-stream")
			if err != nil {
				t.Errorf("open stream: %v", err)
				return
			}
			var delivered atomic.Uint64
			st.OnResult(func(hop uint64, r Result) {
				if r.Err == nil {
					delivered.Add(1)
				}
			})
			for {
				if _, err := st.Submit(chunk); err != nil {
					if errors.Is(err, ErrModelSwapped) {
						reopens++
						break // expected: reopen on the new generation
					}
					t.Errorf("stream submit: %v", err)
					return
				}
				if st.Hops() > 8 {
					break
				}
			}
		}
		t.Logf("stream reopened %d times across swaps", reopens)
	}()

	loadWG.Wait()
	close(stop)
	swapsDone.Wait()
	if swapErr != nil {
		t.Fatalf("swap loop: %v", swapErr)
	}
	if n := lost.Load(); n != 0 {
		t.Fatalf("%d admitted requests lost under swap storm", n)
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d results matched neither generation bit-exactly", n)
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed")
	}
	if reg.Swaps() == 0 {
		t.Fatal("swap loop never completed a swap")
	}
	shards, workers, live := reg.ShardHealth("kws")
	if shards != 2 || workers == 0 || live != workers {
		t.Fatalf("shard health after storm: shards=%d live=%d/%d", shards, live, workers)
	}
	t.Logf("%d completed across %d swaps", completed.Load(), reg.Swaps())
}

// fakeEngine is a deterministic Engine double for fairness tests: one
// internal worker, a bounded queue, a fixed service time, and a constant
// label. OpenStream is unsupported.
type fakeEngine struct {
	service time.Duration
	jobs    chan fakeJob
	done    chan struct{}
	closed  chan struct{}
	mu      sync.Mutex
	shut    bool
}

type fakeJob struct {
	fn func(Result)
}

func newFakeEngine(queue int, service time.Duration) *fakeEngine {
	e := &fakeEngine{
		service: service,
		jobs:    make(chan fakeJob, queue),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
	go func() {
		defer close(e.done)
		for j := range e.jobs {
			if e.service > 0 {
				time.Sleep(e.service)
			}
			j.fn(Result{Label: 1})
		}
	}()
	return e
}

// SubmitFuncDeadline blocks while the queue is full (Engine contract).
func (e *fakeEngine) SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	select {
	case <-e.closed:
		return ErrServerClosed
	case e.jobs <- fakeJob{fn: fn}:
		return nil
	}
}

// TrySubmitFuncDeadline is the non-blocking form.
func (e *fakeEngine) TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	select {
	case <-e.closed:
		return ErrServerClosed
	case e.jobs <- fakeJob{fn: fn}:
		return nil
	default:
		return ErrQueueFull
	}
}

// OpenStream is unsupported on the fake.
func (e *fakeEngine) OpenStream() (*Stream, error) { return nil, errors.New("fake: no streams") }

// Workers reports the single fake worker.
func (e *fakeEngine) Workers() int { return 1 }

// LiveWorkers reports the single fake worker while running.
func (e *fakeEngine) LiveWorkers() int {
	select {
	case <-e.done:
		return 0
	default:
		return 1
	}
}

// Close drains queued jobs and stops the worker.
func (e *fakeEngine) Close() {
	e.mu.Lock()
	if !e.shut {
		e.shut = true
		close(e.closed)
		close(e.jobs)
	}
	e.mu.Unlock()
	<-e.done
}

// runFairness saturates a registry (fake engines, fixed service time) with
// two tenants at ~10:1 offered load and returns completions per tenant
// once total reaches target.
func runFairness(t *testing.T, weights map[string]TenantConfig, target int) map[string]int {
	t.Helper()
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(map[string]ModelConfig{"kws": {Model: model}}, RegistryConfig{
		Shards: 1,
		Engine: func(m *tflm.Model, cfg ServerConfig) (Engine, error) {
			return newFakeEngine(1, 300*time.Microsecond), nil
		},
		Tenants: weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var mu sync.Mutex
	counts := make(map[string]int)
	total := 0
	stop := make(chan struct{})
	var stopOnce sync.Once

	submitLoop := func(tenant string, pace time.Duration) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Submit("kws", tenant, nil, time.Time{}, func(r Result) {
				mu.Lock()
				counts[tenant]++
				total++
				if total >= target {
					stopOnce.Do(func() { close(stop) })
				}
				mu.Unlock()
			})
			if pace > 0 {
				time.Sleep(pace)
			}
		}
	}

	var wg sync.WaitGroup
	// Majority floods from 10 goroutines, minority offers from 1: a 10:1
	// offered-load ratio with both queues saturated.
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); submitLoop("big", 50*time.Microsecond) }()
	}
	wg.Add(1)
	go func() { defer wg.Done(); submitLoop("small", 50*time.Microsecond) }()
	wg.Wait()
	reg.Close() // drain admitted tail before reading counters

	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int, len(counts))
	for k, v := range counts {
		out[k] = v
	}
	return out
}

// TestRegistryFairnessEqualWeights: two tenants at 10:1 offered load with
// equal weights must each complete ~half of the work — the minority tenant
// within 20% of its 50% share (the ISSUE acceptance bound).
func TestRegistryFairnessEqualWeights(t *testing.T) {
	counts := runFairness(t, map[string]TenantConfig{
		"big":   {Weight: 1, MaxQueue: 64},
		"small": {Weight: 1, MaxQueue: 64},
	}, 1000)
	total := counts["big"] + counts["small"]
	share := float64(counts["small"]) / float64(total)
	t.Logf("equal weights: big=%d small=%d (small share %.2f)", counts["big"], counts["small"], share)
	if share < 0.5*0.8 {
		t.Fatalf("minority tenant got %.2f of completions, want >= %.2f (80%% of its 0.5 share)", share, 0.5*0.8)
	}
}

// TestRegistryFairnessWeighted: with weights 3:1 the DRR shares must track
// the configured ratio, minority within 20% of its 25% share.
func TestRegistryFairnessWeighted(t *testing.T) {
	counts := runFairness(t, map[string]TenantConfig{
		"big":   {Weight: 3, MaxQueue: 64},
		"small": {Weight: 1, MaxQueue: 64},
	}, 1000)
	total := counts["big"] + counts["small"]
	share := float64(counts["small"]) / float64(total)
	t.Logf("weights 3:1: big=%d small=%d (small share %.2f)", counts["big"], counts["small"], share)
	if share < 0.25*0.8 {
		t.Fatalf("minority tenant got %.2f of completions, want >= %.2f (80%% of its 0.25 share)", share, 0.25*0.8)
	}
	// The majority must also benefit from its larger weight: strictly more
	// than an equal split.
	if counts["big"] <= counts["small"] {
		t.Fatalf("weight-3 tenant (%d) did not out-complete weight-1 tenant (%d)", counts["big"], counts["small"])
	}
}

// TestRegistryAdmission covers the admission edge cases: per-tenant BUSY at
// the queue cap with counters, unknown model, and closed registry.
func TestRegistryAdmission(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	reg, err := NewRegistry(map[string]ModelConfig{"kws": {Model: model}}, RegistryConfig{
		Engine: func(m *tflm.Model, cfg ServerConfig) (Engine, error) {
			// Stall the engine behind a gate so tenant queues actually fill.
			return &stalledEngine{fakeEngine: newFakeEngine(1, 0), gate: gate}, nil
		},
		Tenants: map[string]TenantConfig{"t": {Weight: 1, MaxQueue: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := reg.Submit("nope", "t", nil, time.Time{}, func(Result) {}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := reg.OpenStream("nope", "t"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model stream: %v", err)
	}

	// Fill: engine accepts one job and stalls; queue cap 4. The dispatcher
	// may hold one job in flight, so admit until BUSY appears.
	var done sync.WaitGroup
	busy := 0
	admitted := 0
	for i := 0; i < 32; i++ {
		done.Add(1)
		err := reg.Submit("kws", "t", nil, time.Time{}, func(Result) { done.Done() })
		if err != nil {
			done.Done()
			if !errors.Is(err, ErrTenantBusy) {
				t.Fatalf("submit %d: %v", i, err)
			}
			busy++
		} else {
			admitted++
		}
	}
	if busy == 0 {
		t.Fatal("queue cap 4 never produced ErrTenantBusy over 32 submissions")
	}
	c := reg.TenantCounters("t")
	if c.Accepted != uint64(admitted) || c.Busy != uint64(busy) {
		t.Fatalf("counters %+v, want accepted=%d busy=%d", c, admitted, busy)
	}
	close(gate)
	done.Wait()
	// The dispatched counter increments on the dispatcher goroutine just
	// after the engine accepts the job, so it can trail the last callback
	// by an instant — poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c := reg.TenantCounters("t")
		if c.Dispatched == uint64(admitted) && c.Shed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after drain: %+v, want dispatched=%d shed=0", c, admitted)
		}
		time.Sleep(time.Millisecond)
	}

	reg.Close()
	if err := reg.Submit("kws", "t", nil, time.Time{}, func(Result) {}); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("closed registry: %v", err)
	}
	if _, err := reg.OpenStream("kws", "t"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("closed registry stream: %v", err)
	}
	if got := reg.Tenants(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tenants: %v", got)
	}
}

// stalledEngine wraps fakeEngine but blocks job completion behind a gate,
// keeping the registry's tenant queues backlogged.
type stalledEngine struct {
	*fakeEngine
	gate <-chan struct{}
}

// SubmitFuncDeadline defers the callback until the gate opens.
func (e *stalledEngine) SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	return e.fakeEngine.SubmitFuncDeadline(samples, deadline, func(r Result) { <-e.gate; fn(r) })
}

// TrySubmitFuncDeadline defers the callback until the gate opens.
func (e *stalledEngine) TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	return e.fakeEngine.TrySubmitFuncDeadline(samples, deadline, func(r Result) { <-e.gate; fn(r) })
}

// TestRegistrySwapRejected covers the provenance gate: wrong signer,
// tampered payload, rollback version, mismatched model id, and swap on a
// model with no pinned vendor key all leave serving state untouched.
func TestRegistrySwapRejected(t *testing.T) {
	oldM, newM, utts, oldLabels, _ := registryFixture(t, 4)
	reg, signer := signedRegistry(t, oldM, RegistryConfig{Server: ServerConfig{Workers: 1}})
	defer reg.Close()

	good, err := signer.Package("kws", 2, newM)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong signer.
	mallory, err := NewSwapSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := mallory.Package("kws", 2, newM)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("kws", forged); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("forged signature accepted: %v", err)
	}

	// Tampered blob (signature over original).
	tampered := *good
	tampered.Blob = append([]byte(nil), good.Blob...)
	tampered.Blob[len(tampered.Blob)-1] ^= 1
	if err := reg.Swap("kws", &tampered); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("tampered blob accepted: %v", err)
	}

	// Rollback: version must strictly increase.
	stale, err := signer.Package("kws", 1, newM)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("kws", stale); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("rollback accepted: %v", err)
	}

	// Mismatched model id.
	misdirected, err := signer.Package("other", 2, newM)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("kws", misdirected); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("mismatched model id accepted: %v", err)
	}
	if err := reg.Swap("missing", good); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}

	// Rejections left the old generation serving.
	if v, _ := reg.ModelVersion("kws"); v != 1 {
		t.Fatalf("version moved to %d after rejected swaps", v)
	}
	res := reg.RunBatch("kws", "t", utts)
	for i, r := range res {
		if r.Err != nil || r.Label != oldLabels[i] {
			t.Fatalf("utterance %d after rejected swaps: label %d err %v, want old-model %d",
				i, r.Label, r.Err, oldLabels[i])
		}
	}

	// And the genuine package still lands.
	if err := reg.Swap("kws", good); err != nil {
		t.Fatalf("valid swap after rejections: %v", err)
	}

	// A registry without a pinned vendor key refuses swaps outright.
	unpinned, err := NewRegistry(map[string]ModelConfig{"kws": {Model: oldM}},
		RegistryConfig{Server: ServerConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer unpinned.Close()
	if err := unpinned.Swap("kws", good); !errors.Is(err, ErrSwapRejected) {
		t.Fatalf("swap without pinned key: %v", err)
	}
}

// TestRegistryMultiModelRouting: two models served side by side classify
// with their own weights, and swapping one leaves the other untouched.
func TestRegistryMultiModelRouting(t *testing.T) {
	aM, bM, utts, aLabels, bLabels := registryFixture(t, 6)
	signer, err := NewSwapSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(map[string]ModelConfig{
		"a": {Model: aM, VendorPub: signer.VendorPub(), Key: signer.Key()},
		"b": {Model: bM},
	}, RegistryConfig{Server: ServerConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if got := reg.Models(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("models: %v", got)
	}
	resA := reg.RunBatch("a", "t", utts)
	resB := reg.RunBatch("b", "t", utts)
	for i := range utts {
		if resA[i].Err != nil || resA[i].Label != aLabels[i] {
			t.Fatalf("model a utterance %d: %+v want %d", i, resA[i], aLabels[i])
		}
		if resB[i].Err != nil || resB[i].Label != bLabels[i] {
			t.Fatalf("model b utterance %d: %+v want %d", i, resB[i], bLabels[i])
		}
	}

	// Swap a -> b's weights; b unchanged.
	pkg, err := signer.Package("a", 5, bM)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("a", pkg); err != nil {
		t.Fatal(err)
	}
	resA = reg.RunBatch("a", "t", utts)
	resB = reg.RunBatch("b", "t", utts)
	for i := range utts {
		if resA[i].Label != bLabels[i] {
			t.Fatalf("model a post-swap utterance %d: %d want %d", i, resA[i].Label, bLabels[i])
		}
		if resB[i].Label != bLabels[i] {
			t.Fatalf("model b post-swap utterance %d: %d want %d", i, resB[i].Label, bLabels[i])
		}
	}
	if vA, _ := reg.ModelVersion("a"); vA != 5 {
		t.Fatalf("model a version %d, want 5", vA)
	}
	if vB, _ := reg.ModelVersion("b"); vB != 1 {
		t.Fatalf("model b version %d, want 1", vB)
	}
}

// TestRegistryStreamSwapped: a stream bound to a retired generation
// delivers its accepted hops, then reports ErrModelSwapped on the next
// submit, and Swapped() flips.
func TestRegistryStreamSwapped(t *testing.T) {
	oldM, newM, utts, _, _ := registryFixture(t, 2)
	reg, signer := signedRegistry(t, oldM, RegistryConfig{Server: ServerConfig{Workers: 1}})
	defer reg.Close()

	st, err := reg.OpenStream("kws", "t")
	if err != nil {
		t.Fatal(err)
	}
	var hops atomic.Uint64
	st.OnResult(func(hop uint64, r Result) {
		if r.Err == nil {
			hops.Add(1)
		}
	})
	if _, err := st.Submit(utts[0][:8000]); err != nil {
		t.Fatal(err)
	}
	if st.Swapped() {
		t.Fatal("stream reports swapped before any swap")
	}

	pkg, err := signer.Package("kws", 2, newM)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("kws", pkg); err != nil {
		t.Fatal(err)
	}
	if !st.Swapped() {
		t.Fatal("stream does not report swapped after swap")
	}
	// Accepted hops delivered (Swap drained the old engines).
	if st.Hops() > 0 && hops.Load() != st.Hops() {
		t.Fatalf("delivered %d of %d accepted hops", hops.Load(), st.Hops())
	}
	if _, err := st.Submit(utts[0][:8000]); !errors.Is(err, ErrModelSwapped) {
		t.Fatalf("submit on retired generation: %v, want ErrModelSwapped", err)
	}
}
