package core

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func pipelineFixture(t testing.TB, n int) (*tflm.Model, [][]int16, []int) {
	t.Helper()
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		ex := gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0)
		utts[i] = ex.Samples
		labels[i] = ex.Label
	}
	return model, utts, labels
}

// serialResults classifies the batch on a single interpreter, the ground
// truth the concurrent pipeline must reproduce utterance for utterance.
func serialResults(t testing.TB, model *tflm.Model, utts [][]int16) []int {
	t.Helper()
	ip, err := tflm.NewInterpreter(model.Clone())
	if err != nil {
		t.Fatal(err)
	}
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(utts))
	for i, u := range utts {
		fp := fe.Extract(u)
		in := ip.Input(0)
		for j, f := range fp {
			in.I8[j] = int8(int32(f) - 128)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
		out[i] = tflm.Argmax(ip.Output(0))
	}
	return out
}

func TestPipelineMatchesSerial(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 24)
	want := serialResults(t, model, utts)
	for _, workers := range []int{1, 2, 4} {
		p, err := NewPipeline(model, PipelineConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		results := p.RunBatch(utts)
		if len(results) != len(utts) {
			t.Fatalf("got %d results for %d utterances", len(results), len(utts))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d utterance %d: %v", workers, i, r.Err)
			}
			if r.Label != want[i] {
				t.Fatalf("workers=%d utterance %d: label %d, want %d", workers, i, r.Label, want[i])
			}
			if r.Probs != nil {
				t.Fatalf("workers=%d utterance %d: probs present without WithProbs", workers, i)
			}
		}
	}
}

func TestPipelineWithProbs(t *testing.T) {
	model, utts, _ := pipelineFixture(t, 6)
	p, err := NewPipeline(model, PipelineConfig{Workers: 2, WithProbs: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range p.RunBatch(utts) {
		if r.Err != nil {
			t.Fatalf("utterance %d: %v", i, r.Err)
		}
		if len(r.Probs) != speechcmd.NumLabels {
			t.Fatalf("utterance %d: %d probs, want %d", i, len(r.Probs), speechcmd.NumLabels)
		}
		best, bestIdx := -1.0, -1
		for c, p := range r.Probs {
			if p > best {
				best, bestIdx = p, c
			}
		}
		if bestIdx != r.Label {
			t.Fatalf("utterance %d: label %d but probs argmax %d", i, r.Label, bestIdx)
		}
	}
}

func TestPipelineEmptyBatchAndDefaults(t *testing.T) {
	model, _, _ := pipelineFixture(t, 0)
	p, err := NewPipeline(model, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() < 1 {
		t.Fatalf("default pool size %d", p.Workers())
	}
	if res := p.RunBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestPipelineRejectsIncompatibleModel(t *testing.T) {
	model, _, _ := pipelineFixture(t, 0)
	small := dsp.DefaultFrontend()
	small.NumFrames = 7 // fingerprint no longer matches the model input
	if _, err := NewPipeline(model, PipelineConfig{Workers: 1, Frontend: small}); err == nil {
		t.Fatal("expected incompatible-fingerprint error")
	}
}
