package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dsp"
	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/sanctuary"
	"repro/internal/tflm"
)

// Marshal serializes a model package for untrusted flash:
// 8-byte version followed by the envelope.
func (p *ModelPackage) Marshal() []byte {
	out := make([]byte, 8+len(p.Blob))
	binary.LittleEndian.PutUint64(out, p.Version)
	copy(out[8:], p.Blob)
	return out
}

// UnmarshalModelPackage parses the flash blob. The minimum legal package is
// the 8-byte version header alone (an empty blob round-trips through
// Marshal).
func UnmarshalModelPackage(data []byte) (*ModelPackage, error) {
	if len(data) < 8 {
		return nil, errors.New("core: truncated model package")
	}
	return &ModelPackage{
		Version: binary.LittleEndian.Uint64(data),
		Blob:    append([]byte(nil), data[8:]...),
	}, nil
}

// KWSApp is the SANCTUARY App: the keyword-spotting service running inside
// the enclave. Its interpreter and decrypted model exist only while the
// enclave is alive; the commodity OS sees ciphertext and class labels.
type KWSApp struct {
	dev       *Device
	enclave   *sanctuary.Enclave
	fe        *dsp.Frontend
	interp    *tflm.Interpreter
	version   uint64
	vendorPub []byte // pinned in the enclave image
	rng       io.Reader
	// pendingNonce is the self-generated nonce of an in-flight key
	// request; responses must echo it.
	pendingNonce []byte
	// modelOffset is where the plaintext model bytes live inside the
	// enclave-private region (after the image), so that memory isolation
	// and teardown scrubbing measurably cover them.
	modelOffset uint64
	modelLen    int
	// Operation-phase scratch, owned by the app so the always-on query path
	// performs no per-query heap allocation: the capture buffer, the
	// fingerprint, the dequantized probabilities and the result shell that
	// Query hands out.
	capBuf    []int16
	fpScratch []uint8
	probs     []float64
	res       QueryResult
	// batchPar is the host-side shard parallelism QueryBatch's stacked
	// InvokeBatch plans with (0/1 = serial). Purely a host optimization:
	// the simulated enclave core is still charged every utterance's cycles.
	batchPar int
}

// SetBatchParallel sets the host-side parallelism of QueryBatch's stacked
// classification (tflm.PlanBatchParallel; p <= 1 keeps the serial plan).
// Takes effect at the next Initialize, which is when the plan is built.
func (a *KWSApp) SetBatchParallel(p int) { a.batchPar = p }

// LaunchEnclave performs SANCTUARY setup+boot for the OMG image with the
// vendor key pinned (preparation phase, first half). rng drives the
// enclave's protocol nonces (nil = crypto/rand).
func LaunchEnclave(dev *Device, vendorPub []byte, rng io.Reader) (*KWSApp, error) {
	img := BuildImage(vendorPub)
	e, err := dev.Sanctuary.Setup(sanctuary.Config{
		Image:        img,
		PrivateSize:  EnclavePrivateSize,
		SharedSWSize: EnclaveSharedSWSize,
		AllowMic:     true,
	})
	if err != nil {
		return nil, err
	}
	if err := e.Boot(); err != nil {
		return nil, err
	}
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		return nil, err
	}
	return &KWSApp{
		dev:         dev,
		enclave:     e,
		fe:          fe,
		vendorPub:   append([]byte(nil), vendorPub...),
		rng:         rng,
		modelOffset: uint64(len(img.Code)),
	}, nil
}

// Enclave exposes the underlying enclave (tests and lifecycle experiments).
func (a *KWSApp) Enclave() *sanctuary.Enclave { return a.enclave }

// Attest produces an attestation report for a verifier nonce, initiated
// from inside the enclave (§V steps 1–2).
func (a *KWSApp) Attest(nonce []byte) (*omgcrypto.AttestationReport, []*omgcrypto.Certificate, error) {
	var report *omgcrypto.AttestationReport
	var chain []*omgcrypto.Certificate
	err := a.enclave.Run(func(env *sanctuary.Env) error {
		var err error
		report, chain, err = env.Attest(nonce)
		return err
	})
	return report, chain, err
}

// StoreModelPackage parks the encrypted model on untrusted flash
// (§V step 4). Only ciphertext leaves the enclave.
func (a *KWSApp) StoreModelPackage(pkg *ModelPackage) error {
	return a.enclave.Run(func(env *sanctuary.Env) error {
		env.StoreBlob(ModelBlobName, pkg.Marshal())
		return nil
	})
}

// StoredVersion reads the version of the locally cached encrypted model,
// which the enclave requests a key for during initialization.
func (a *KWSApp) StoredVersion() (uint64, error) {
	var version uint64
	err := a.enclave.Run(func(env *sanctuary.Env) error {
		data, ok := env.LoadBlob(ModelBlobName)
		if !ok {
			return errors.New("core: no model package on flash")
		}
		pkg, err := UnmarshalModelPackage(data)
		if err != nil {
			return err
		}
		version = pkg.Version
		return nil
	})
	return version, err
}

// RequestKey begins phase II from inside the enclave: it generates a fresh
// nonce, attests with it, and emits the request the OS relays to the
// vendor. The nonce is remembered so the response cannot be replayed.
func (a *KWSApp) RequestKey() (*KeyRequest, error) {
	version, err := a.StoredVersion()
	if err != nil {
		return nil, err
	}
	nonce, err := omgcrypto.RandomBytes(a.rng, 16)
	if err != nil {
		return nil, err
	}
	report, chain, err := a.Attest(nonce)
	if err != nil {
		return nil, err
	}
	a.pendingNonce = nonce
	return &KeyRequest{Report: report, Chain: chain, Nonce: nonce, Version: version}, nil
}

// Initialize runs phase II inside the enclave (§V step 6): unwrap KU with
// the enclave key, load the ciphertext from flash, decrypt it bound to the
// version, decode the model, and stand up the interpreter. The plaintext
// model bytes are written into enclave-private memory so that isolation
// and scrub behaviour measurably cover them.
func (a *KWSApp) Initialize(resp *KeyResponse) error {
	return a.enclave.Run(func(env *sanctuary.Env) error {
		// Freshness and authenticity first: the response must echo the
		// pending nonce and verify under the pinned vendor key.
		if a.pendingNonce == nil {
			return errors.New("core: no key request in flight")
		}
		if !bytes.Equal(resp.Nonce, a.pendingNonce) {
			return errors.New("core: key response nonce mismatch (replay?)")
		}
		if err := omgcrypto.Verify(a.vendorPub, keyResponseTBS(resp.Nonce, resp.Version, resp.WrappedKU), resp.VendorSig); err != nil {
			return fmt.Errorf("core: key response signature: %w", err)
		}
		env.Core().Charge(hw.CyclesPerRSA2048Verify)
		a.pendingNonce = nil
		data, ok := env.LoadBlob(ModelBlobName)
		if !ok {
			return errors.New("core: no model package on flash")
		}
		pkg, err := UnmarshalModelPackage(data)
		if err != nil {
			return err
		}
		if pkg.Version != resp.Version {
			return fmt.Errorf("core: stored model v%d but key is for v%d", pkg.Version, resp.Version)
		}
		ku, err := env.Identity().UnwrapKey(resp.WrappedKU)
		if err != nil {
			return fmt.Errorf("core: unwrapping KU: %w", err)
		}
		env.Core().Charge(hw.CyclesPerRSA2048Sign) // private-key operation
		envlp, err := omgcrypto.UnmarshalEnvelope(pkg.Blob)
		if err != nil {
			return err
		}
		plain, err := omgcrypto.Open(ku, envlp, omgcrypto.ModelAAD(pkg.Version))
		if err != nil {
			return fmt.Errorf("core: decrypting model: %w", err)
		}
		env.Core().Charge(uint64(len(pkg.Blob)) * hw.CyclesPerByteAES)
		if a.modelOffset+uint64(len(plain)) > a.enclave.PrivSize() {
			return fmt.Errorf("core: model (%d bytes) exceeds enclave memory", len(plain))
		}
		if err := env.WritePriv(a.modelOffset, plain); err != nil {
			return err
		}
		model, err := tflm.Decode(plain)
		if err != nil {
			return fmt.Errorf("core: decoding model: %w", err)
		}
		interp, err := tflm.NewInterpreter(model)
		if err != nil {
			return err
		}
		interp.SetMeter(env.Core())
		// Plan the stacked-utterance path for QueryBatch: capacity is the
		// number of utterances one mic SMC round trip deposits in the
		// shared-SW window, the natural batch unit of the enclave serving
		// loop. Models the batched engine cannot plan (multi-output,
		// non-int8 I/O) simply keep the serial per-utterance path —
		// QueryBatch checks BatchCapacity before staging.
		if perCall := a.utterancesPerSMC(); perCall > 1 {
			par := a.batchPar
			if par < 1 {
				par = 1
			}
			_ = interp.PlanBatchParallel(perCall, par)
		}
		if a.interp != nil {
			// Re-initialization (e.g. a model update) replaces the
			// interpreter; retire the old one's batch shard workers
			// deterministically instead of waiting on a GC cleanup.
			a.interp.ReleaseBatch()
		}
		a.interp = interp
		a.version = pkg.Version
		a.modelLen = len(plain)
		return nil
	})
}

// utterancesPerSMC returns how many whole utterances fit in the enclave's
// shared secure-world window — the batch granularity of QueryBatch's mic
// capture and of its stacked InvokeBatch.
func (a *KWSApp) utterancesPerSMC() int {
	perCall := int(a.enclave.SWSize()/2) / a.fe.Config().SampleRate
	if perCall < 1 {
		perCall = 1
	}
	return perCall
}

// Ready reports whether the app holds a decrypted model.
func (a *KWSApp) Ready() bool { return a.interp != nil }

// Version returns the decrypted model's version (0 before Initialize).
func (a *KWSApp) Version() uint64 { return a.version }

// QueryResult is what leaves the enclave in step 8.
type QueryResult struct {
	// Label is the argmax class of the classified utterance.
	Label int
	// Probs are the dequantized class probabilities (the "output
	// presented to the user or made available to other applications").
	Probs []float64
}

// Query runs one operation-phase inference (§V steps 7–8): capture audio
// from the secure microphone, extract the fingerprint, and invoke the
// model. All compute is charged to the enclave core.
//
// The hot path runs entirely in app-owned scratch (capture buffer,
// fingerprint, probabilities, the QueryResult itself), so steady-state
// queries do not grow the enclave heap. Consequently the returned result —
// pointer, Label and Probs alike — is only valid until the next Query on
// this app; copy what must outlive it. QueryBatch results own their
// storage.
func (a *KWSApp) Query() (*QueryResult, error) {
	if a.interp == nil {
		return nil, errors.New("core: enclave not initialized")
	}
	err := a.enclave.Run(func(env *sanctuary.Env) error {
		// Capture a full one-second window; the frontend consumes the
		// leading UtteranceSamples() of it. Draining the whole second keeps
		// consecutive utterances aligned in the FIFO.
		samples, err := env.CaptureMicInto(a.capBuf, a.fe.Config().SampleRate)
		if err != nil {
			return err
		}
		a.capBuf = samples
		a.fpScratch = a.fe.ExtractInto(a.fpScratch, samples)
		env.Core().Charge(a.fe.Cycles())
		if a.probs, err = a.infer(a.fpScratch, a.probs); err != nil {
			return err
		}
		a.res = QueryResult{Label: a.lastLabel(), Probs: a.probs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &a.res, nil
}

// infer quantizes a fingerprint into the interpreter input, invokes the
// model, and dequantizes the output into probs (grown only when needed).
// The caller reads the label via lastLabel.
func (a *KWSApp) infer(fp []uint8, probs []float64) ([]float64, error) {
	in := a.interp.Input(0)
	for i, f := range fp {
		in.I8[i] = int8(int32(f) - 128)
	}
	if err := a.interp.Invoke(); err != nil {
		return probs, err
	}
	out := a.interp.Output(0)
	if cap(probs) < out.NumElements() {
		probs = make([]float64, out.NumElements())
	}
	probs = probs[:out.NumElements()]
	for i, q := range out.I8 {
		probs[i] = out.Quant.Dequantize(q)
	}
	return probs, nil
}

// lastLabel returns the argmax of the most recent inference.
func (a *KWSApp) lastLabel() int { return tflm.Argmax(a.interp.Output(0)) }

// QueryBatch runs n operation-phase inferences inside a single enclave Run,
// amortizing the per-query enclave overhead that dominates the Table-I OMG
// column: microphone capture batches as many utterances per SMC round trip
// as the shared-SW window holds (one world switch per window-full instead
// of per utterance), each window-full is classified through one stacked
// tflm.InvokeBatch call (planned at Initialize), and all per-utterance
// state lives in app-owned scratch plus one flat probability slab for the
// whole batch. The n utterances must already be queued in the microphone
// FIFO; missing audio classifies as silence, exactly as in Query. Unlike
// Query's, the returned results own their probability storage.
func (a *KWSApp) QueryBatch(n int) ([]QueryResult, error) {
	if a.interp == nil {
		return nil, errors.New("core: enclave not initialized")
	}
	if n <= 0 {
		return nil, nil
	}
	rate := a.fe.Config().SampleRate
	perCall := a.utterancesPerSMC()
	classes := a.interp.Output(0).NumElements()
	outQ := a.interp.Output(0).Quant
	results := make([]QueryResult, n)
	flat := make([]float64, n*classes)
	err := a.enclave.Run(func(env *sanctuary.Env) error {
		for k := 0; k < n; {
			// One SMC round trip deposits up to perCall utterances in the
			// shared window.
			m := min(perCall, n-k)
			got, err := env.CaptureMicBulk(m * rate)
			if err != nil {
				return err
			}
			batched := m > 1 && a.interp.BatchCapacity() >= m
			for j := 0; j < m; j++ {
				take := min(rate, max(0, got-j*rate))
				utt, err := env.ReadMicWindow(a.capBuf, j*rate, take)
				if err != nil {
					return err
				}
				a.capBuf = utt
				a.fpScratch = a.fe.ExtractInto(a.fpScratch, utt)
				env.Core().Charge(a.fe.Cycles())
				if !batched {
					probs, err := a.infer(a.fpScratch, flat[(k+j)*classes:(k+j)*classes:(k+j+1)*classes])
					if err != nil {
						return err
					}
					results[k+j] = QueryResult{Label: a.lastLabel(), Probs: probs}
					continue
				}
				in := a.interp.BatchInput(j)
				for i, f := range a.fpScratch {
					in[i] = int8(int32(f) - 128)
				}
			}
			if batched {
				// The whole window-full classifies in one stacked pass over
				// the graph; per-utterance outputs are then dequantized into
				// each result's slice of the flat probability slab.
				if err := a.interp.InvokeBatch(m); err != nil {
					return err
				}
				for j := 0; j < m; j++ {
					out := a.interp.BatchOutput(j)
					probs := flat[(k+j)*classes : (k+j+1)*classes]
					for i, q := range out {
						probs[i] = outQ.Dequantize(q)
					}
					results[k+j] = QueryResult{Label: tflm.ArgmaxI8(out), Probs: probs}
				}
			}
			k += m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CaptureOnly pulls one utterance through the secure microphone path
// without running the frontend or the model; the E4 experiment uses it to
// isolate the sensor-input overhead.
func (a *KWSApp) CaptureOnly() (int, error) {
	var n int
	err := a.enclave.Run(func(env *sanctuary.Env) error {
		samples, err := env.CaptureMic(a.fe.Config().SampleRate)
		if err != nil {
			return err
		}
		n = len(samples)
		return nil
	})
	return n, err
}

// Suspend parks the enclave between queries (operation-phase core
// reallocation, §V).
func (a *KWSApp) Suspend() error { return a.enclave.Suspend() }

// Resume reactivates a suspended enclave; the interpreter keeps metering
// the (possibly new) core.
func (a *KWSApp) Resume() error {
	if err := a.enclave.Resume(); err != nil {
		return err
	}
	if a.interp != nil {
		a.interp.SetMeter(a.enclave.Core())
	}
	return nil
}

// Teardown destroys the enclave; SANCTUARY scrubs the private region,
// including the plaintext model bytes.
func (a *KWSApp) Teardown() error {
	if a.interp != nil {
		a.interp.ReleaseBatch()
		a.interp = nil
	}
	return a.enclave.Teardown()
}
