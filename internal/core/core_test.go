package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/sanctuary"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// sanctuaryConfigFor mirrors LaunchEnclave's config for hand-loaded
// (tampered) images.
func sanctuaryConfigFor(img sanctuary.Image) sanctuary.Config {
	return sanctuary.Config{Image: img, PrivateSize: EnclavePrivateSize, AllowMic: true}
}

// Long-lived RSA identities, generated once for the whole package.
var (
	idOnce   sync.Once
	rootID   *omgcrypto.Identity
	vendorID *omgcrypto.Identity
)

func identities(t *testing.T) (*omgcrypto.Identity, *omgcrypto.Identity) {
	t.Helper()
	idOnce.Do(func() {
		rng := omgcrypto.NewDRBG("core-test-ids")
		var err error
		if rootID, err = omgcrypto.NewIdentity(rng, "device-vendor"); err != nil {
			t.Fatal(err)
		}
		if vendorID, err = omgcrypto.NewIdentity(rng, "acme-models"); err != nil {
			t.Fatal(err)
		}
	})
	return rootID, vendorID
}

func newTestDevice(t *testing.T, seed string) *Device {
	t.Helper()
	root, _ := identities(t)
	dev, err := NewDevice(DeviceConfig{
		Root:           root,
		Rand:           omgcrypto.NewDRBG("device-" + seed),
		EnclaveKeyBits: 1024,
		SoC:            hw.Config{BigCores: 2, LittleCores: 2, DRAMSize: 128 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// testTinyConv builds a paper-shaped tiny_conv with deterministic random
// weights (seeded by version); protocol tests need no trained model.
func testTinyConv(t *testing.T, version uint64) *tflm.Model {
	t.Helper()
	m, err := tflm.BuildRandomTinyConv(1, int64(version)+100)
	if err != nil {
		t.Fatal(err)
	}
	m.Version = version
	return m
}

func newTestVendor(t *testing.T, version uint64) *Vendor {
	t.Helper()
	root, vid := identities(t)
	v, err := NewVendor(omgcrypto.NewDRBG("vendor-rng"), root.Public(), vid, testTinyConv(t, version), version)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newTestSession(t *testing.T, seed string) *Session {
	t.Helper()
	root, _ := identities(t)
	dev := newTestDevice(t, seed)
	vendor := newTestVendor(t, 1)
	user, err := NewUser(root.Public(), vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(dev, vendor, user, omgcrypto.NewDRBG("session-"+seed))
}

func speak(dev *Device, word string, take int) {
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	dev.Speak(gen.Utterance(word, 7, take))
}

// TestQueryBatchMatchesQuery: a batch of n queries inside one enclave Run
// must classify exactly like n individual queries over the same audio, and
// each batch result must own its probability storage (unlike Query, whose
// scratch is reused).
func TestQueryBatchMatchesQuery(t *testing.T) {
	s := newTestSession(t, "qbatch")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	words := []string{"yes", "no", "stop", "go", "left"}
	// Serial ground truth.
	wantLabels := make([]int, len(words))
	wantProbs := make([][]float64, len(words))
	for i, w := range words {
		speak(s.Device, w, 0)
		res, err := s.Query()
		if err != nil {
			t.Fatal(err)
		}
		wantLabels[i] = res.Label
		wantProbs[i] = append([]float64(nil), res.Probs...)
	}
	// Batched: queue all utterances, one QueryBatch.
	for _, w := range words {
		speak(s.Device, w, 0)
	}
	results, err := s.App.QueryBatch(len(words))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(words) {
		t.Fatalf("%d results for %d queries", len(results), len(words))
	}
	for i, r := range results {
		if r.Label != wantLabels[i] {
			t.Fatalf("utterance %d: batch label %d, serial label %d", i, r.Label, wantLabels[i])
		}
		for c := range r.Probs {
			if r.Probs[c] != wantProbs[i][c] {
				t.Fatalf("utterance %d class %d: batch prob %v, serial %v", i, c, r.Probs[c], wantProbs[i][c])
			}
		}
		if i > 0 && &r.Probs[0] == &results[i-1].Probs[0] {
			t.Fatalf("utterance %d aliases the previous result's probabilities", i)
		}
	}
	// Degenerate sizes.
	if res, err := s.App.QueryBatch(0); err != nil || res != nil {
		t.Fatalf("QueryBatch(0) = %v, %v", res, err)
	}
	// Batches larger than one shared-window capture (several SMC round
	// trips) still classify correctly; absent audio classifies as silence,
	// like Query.
	big := 2*int(s.App.Enclave().SWSize()/2)/16000 + 1
	for i := 0; i < big-1; i++ {
		speak(s.Device, "on", 0)
	}
	bigRes, err := s.App.QueryBatch(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < big-2; i++ {
		if bigRes[i].Label != bigRes[0].Label {
			t.Fatalf("multi-window batch utterance %d: label %d, want %d", i, bigRes[i].Label, bigRes[0].Label)
		}
	}
}

// TestQueryBatchRequiresInit mirrors Query's lifecycle guard.
func TestQueryBatchRequiresInit(t *testing.T) {
	s := newTestSession(t, "qbatch-noinit")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.App.QueryBatch(2); err == nil {
		t.Fatal("QueryBatch before Initialize succeeded")
	}
}

func TestFullProtocolEndToEnd(t *testing.T) {
	s := newTestSession(t, "e2e")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	// The user accepted the enclave.
	if len(s.User.VerifiedEnclaveKey()) == 0 {
		t.Fatal("user did not record the verified enclave key")
	}
	// The flash holds ciphertext only: no OMGM magic anywhere in the blob.
	blob, ok := s.Device.SoC.Flash().Load(ModelBlobName)
	if !ok {
		t.Fatal("no model package on flash")
	}
	if bytes.Contains(blob, []byte("OMGM")) {
		t.Fatal("plaintext model material on untrusted flash")
	}

	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	if !s.App.Ready() || s.App.Version() != 1 {
		t.Fatal("app not initialized to v1")
	}
	// The decrypted model sits in enclave-private DRAM (physically present,
	// architecturally unreachable).
	priv := s.App.Enclave().PrivBase()
	raw := make([]byte, 4)
	s.Device.SoC.Mem().Read(priv+hw.PhysAddr(s.App.modelOffset), raw)
	if !bytes.Equal(raw, []byte("OMGM")) {
		t.Fatal("plaintext model not at expected enclave offset")
	}
	if err := s.Device.SoC.Read(s.Device.Sanctuary.OSCore(), priv+hw.PhysAddr(s.App.modelOffset), raw); err == nil {
		t.Fatal("commodity OS read the decrypted model")
	}

	// Operation phase: speak and classify.
	speak(s.Device, "yes", 0)
	res, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Label < 0 || res.Label >= 12 {
		t.Fatalf("label %d out of range", res.Label)
	}
	if len(res.Probs) != 12 {
		t.Fatalf("probs length %d", len(res.Probs))
	}
	// Same audio, same answer (determinism).
	speak(s.Device, "yes", 0)
	res2, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Label != res.Label {
		t.Fatal("same audio classified differently")
	}

	// Teardown scrubs the plaintext model from DRAM.
	if err := s.App.Teardown(); err != nil {
		t.Fatal(err)
	}
	s.Device.SoC.Mem().Read(priv+hw.PhysAddr(s.App.modelOffset), raw)
	if bytes.Equal(raw, []byte("OMGM")) {
		t.Fatal("plaintext model survived teardown")
	}
}

func TestStepsSkippableAfterFirstProvision(t *testing.T) {
	// Paper, Fig. 2: "Once the encrypted model is stored locally, steps in
	// gray [3-4] are optional until a model update." A relaunched enclave
	// must be able to initialize from the stored ciphertext alone.
	s := newTestSession(t, "skip")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	if err := s.App.Teardown(); err != nil {
		t.Fatal(err)
	}
	// Relaunch: same image, same device → same enclave identity.
	app, err := LaunchEnclave(s.Device, s.Vendor.Public(), omgcrypto.NewDRBG("relaunch"))
	if err != nil {
		t.Fatal(err)
	}
	s.App = app
	if err := s.Initialize(); err != nil {
		t.Fatalf("initialization from cached ciphertext failed: %v", err)
	}
	speak(s.Device, "go", 1)
	if _, err := s.Query(); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedImageRejected(t *testing.T) {
	root, _ := identities(t)
	dev := newTestDevice(t, "tamper")
	vendor := newTestVendor(t, 1)
	user, err := NewUser(root.Public(), vendor.Public())
	if err != nil {
		t.Fatal(err)
	}
	// A malicious OS loads a modified image (e.g. one that exfiltrates the
	// model). Setup succeeds — but the measurement differs.
	img := BuildImage(vendor.Public())
	img.Code[777] ^= 1
	e, err := dev.Sanctuary.Setup(sanctuaryConfigFor(img))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	nonce := []byte("tamper-nonce")
	report, chain, err := dev.Sanctuary.Attest(img.Name, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := user.VerifyEnclave(report, chain, nonce); err == nil {
		t.Fatal("user accepted a tampered enclave")
	}
	if _, err := vendor.ProvisionModel(report, chain, nonce); err == nil {
		t.Fatal("vendor provisioned to a tampered enclave")
	}
}

func TestLicenseRevocation(t *testing.T) {
	s := newTestSession(t, "revoke")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	// Vendor revokes after provisioning (e.g. expired subscription).
	s.Vendor.Revoke(s.User.VerifiedEnclaveKey())
	if err := s.Initialize(); err == nil {
		t.Fatal("revoked enclave received KU")
	}
	// The enclave cannot decrypt without KU; the ciphertext is inert.
	if s.App.Ready() {
		t.Fatal("app initialized without a key")
	}
	// Reinstating restores service.
	s.Vendor.Reinstate(s.User.VerifiedEnclaveKey())
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackAndReplayFail(t *testing.T) {
	s := newTestSession(t, "rollback")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	// Capture the v1 artifacts the attacker will replay.
	oldBlob, _ := s.Device.SoC.Flash().Load(ModelBlobName)
	req1, err := s.App.RequestKey()
	if err != nil {
		t.Fatal(err)
	}
	resp1, err := s.Vendor.IssueKey(req1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.App.Initialize(resp1); err != nil {
		t.Fatal(err)
	}

	// Vendor ships v2; the enclave re-provisions (steps 3–4 run again).
	if err := s.Vendor.UpdateModel(testTinyConv(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	nonce, _ := omgcrypto.RandomBytes(omgcrypto.NewDRBG("v2"), 16)
	report, chain, err := s.App.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := s.Vendor.ProvisionModel(report, chain, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.App.StoreModelPackage(pkg2); err != nil {
		t.Fatal(err)
	}

	// Attack (a): the OS restores the old v1 ciphertext and asks for a key —
	// the vendor refuses to license the superseded version.
	s.Device.SoC.Flash().Store(ModelBlobName, oldBlob)
	reqOld, err := s.App.RequestKey()
	if err != nil {
		t.Fatal(err)
	}
	if reqOld.Version != 1 {
		t.Fatalf("stored version = %d", reqOld.Version)
	}
	if _, err := s.Vendor.IssueKey(reqOld); err == nil {
		t.Fatal("vendor issued a key for a superseded version")
	}

	// Attack (b): replay the captured v1 response — the nonce no longer
	// matches the in-flight request.
	if err := s.App.Initialize(resp1); err == nil {
		t.Fatal("replayed key response accepted")
	}

	// Attack (c): v2 key against the stale v1 blob fails the version
	// binding.
	req2, err := s.App.RequestKey()
	if err != nil {
		t.Fatal(err)
	}
	req2.Version = 2 // attacker forges the request version to get a v2 key
	resp2, err := s.Vendor.IssueKey(req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.App.Initialize(resp2); err == nil {
		t.Fatal("v2 key decrypted the v1 blob")
	}

	// Honest path: restore the v2 blob; initialization succeeds.
	if err := s.App.StoreModelPackage(pkg2); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	if s.App.Version() != 2 {
		t.Fatalf("running version %d, want 2", s.App.Version())
	}
}

func TestCiphertextNotTransferableAcrossDevices(t *testing.T) {
	// Device A gets provisioned; its ciphertext is copied to device B.
	sA := newTestSession(t, "devA")
	if err := sA.Prepare(sA.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	stolen, _ := sA.Device.SoC.Flash().Load(ModelBlobName)

	devB := newTestDevice(t, "devB")
	appB, err := LaunchEnclave(devB, sA.Vendor.Public(), omgcrypto.NewDRBG("appB"))
	if err != nil {
		t.Fatal(err)
	}
	devB.SoC.Flash().Store(ModelBlobName, stolen)
	// B's enclave is genuine, so the vendor happily issues it a key — but
	// that key is derived from B's PK and cannot open A's ciphertext.
	reqB, err := appB.RequestKey()
	if err != nil {
		t.Fatal(err)
	}
	respB, err := sA.Vendor.IssueKey(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if err := appB.Initialize(respB); err == nil {
		t.Fatal("device B decrypted device A's ciphertext")
	}
}

func TestInitializeRequiresRequest(t *testing.T) {
	s := newTestSession(t, "noreq")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	req, err := s.App.RequestKey()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Vendor.IssueKey(req)
	if err != nil {
		t.Fatal(err)
	}
	// Forged signature is refused.
	forged := *resp
	forged.VendorSig = append([]byte(nil), resp.VendorSig...)
	forged.VendorSig[0] ^= 1
	if err := s.App.Initialize(&forged); err == nil {
		t.Fatal("forged vendor signature accepted")
	}
	// Honest response still works (nonce still pending).
	if err := s.App.Initialize(resp); err != nil {
		t.Fatal(err)
	}
	// Re-delivery after consumption is refused.
	if err := s.App.Initialize(resp); err == nil {
		t.Fatal("consumed key response accepted twice")
	}
}

func TestQueryBeforeInitializeFails(t *testing.T) {
	s := newTestSession(t, "early")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	speak(s.Device, "no", 0)
	if _, err := s.Query(); err == nil {
		t.Fatal("query answered before initialization")
	}
}

func TestSuspendResumeAcrossQueries(t *testing.T) {
	s := newTestSession(t, "susres")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	speak(s.Device, "stop", 0)
	res1, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.App.Suspend(); err != nil {
		t.Fatal(err)
	}
	// Memory stays locked while suspended.
	if err := s.Device.SoC.Read(s.Device.Sanctuary.OSCore(), s.App.Enclave().PrivBase(), make([]byte, 4)); err == nil {
		t.Fatal("OS read enclave memory during suspend")
	}
	if err := s.App.Resume(); err != nil {
		t.Fatal(err)
	}
	speak(s.Device, "stop", 0)
	res2, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Label != res2.Label {
		t.Fatal("prediction changed across suspend/resume")
	}
}

// TestProtectedMatchesPlainBaseline is the Table I accuracy mechanism: the
// protected and unprotected deployments run the identical interpreter, so
// their predictions must agree utterance for utterance.
func TestProtectedMatchesPlainBaseline(t *testing.T) {
	s := newTestSession(t, "parity")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}

	// Plain deployment on a separate simulated device (mic normal-world).
	plainSoC := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 16 << 20})
	plain, err := NewPlainRunner(plainSoC, 0, testTinyConv(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	words := []string{"yes", "no", "up", "down", "left"}
	for i, w := range words {
		utt := gen.Utterance(w, 11, i)
		s.Device.Speak(utt)
		protected, err := s.Query()
		if err != nil {
			t.Fatal(err)
		}
		plainSoC.Microphone().Feed(utt)
		unprotected, err := plain.Query()
		if err != nil {
			t.Fatal(err)
		}
		if protected.Label != unprotected.Label {
			t.Fatalf("word %q: protected=%d plain=%d", w, protected.Label, unprotected.Label)
		}
	}
}

// TestOMGOverheadIsSmall pre-validates the Table I runtime shape: the
// per-query cost with OMG must exceed the plain baseline only by the world
// switch and IPC copies — single-digit percent, not multiples.
func TestOMGOverheadIsSmall(t *testing.T) {
	s := newTestSession(t, "overhead")
	if err := s.Prepare(s.Vendor.Public()); err != nil {
		t.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	plainSoC := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 16 << 20})
	plain, err := NewPlainRunner(plainSoC, 0, testTinyConv(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utt := gen.Utterance("right", 3, 0)

	s.Device.Speak(utt)
	encCore := s.App.Enclave().Core()
	encCore.ResetCycles()
	if _, err := s.Query(); err != nil {
		t.Fatal(err)
	}
	protectedTime := encCore.Elapsed()

	plainSoC.Microphone().Feed(utt)
	plain.Core().ResetCycles()
	if _, err := plain.Query(); err != nil {
		t.Fatal(err)
	}
	plainTime := plain.Core().Elapsed()

	if protectedTime <= plainTime {
		t.Fatalf("OMG (%v) not slower than plain (%v)?", protectedTime, plainTime)
	}
	overhead := float64(protectedTime-plainTime) / float64(plainTime)
	if overhead > 0.20 {
		t.Fatalf("OMG overhead %.1f%% too large (paper: ~2%%)", overhead*100)
	}
	t.Logf("plain %v, OMG %v, overhead %.1f%%", plainTime, protectedTime, overhead*100)
}

func TestVendorValidation(t *testing.T) {
	root, vid := identities(t)
	if _, err := NewVendor(omgcrypto.NewDRBG("v"), root.Public(), vid, testTinyConv(t, 1), 0); err == nil {
		t.Fatal("version 0 accepted")
	}
	v := newTestVendor(t, 3)
	if err := v.UpdateModel(testTinyConv(t, 2), 2); err == nil {
		t.Fatal("version decrease accepted")
	}
}

func TestModelPackageMarshal(t *testing.T) {
	pkg := &ModelPackage{Version: 7, Blob: []byte{1, 2, 3}}
	got, err := UnmarshalModelPackage(pkg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || !bytes.Equal(got.Blob, pkg.Blob) {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalModelPackage([]byte{1, 2}); err == nil {
		t.Fatal("truncated package parsed")
	}
	// A legal 8-byte package — version header with an empty blob — must
	// round-trip; the pre-fix parser rejected its own Marshal output.
	empty := &ModelPackage{Version: 42}
	if n := len(empty.Marshal()); n != 8 {
		t.Fatalf("empty-blob package marshals to %d bytes, want 8", n)
	}
	got, err = UnmarshalModelPackage(empty.Marshal())
	if err != nil {
		t.Fatalf("empty-blob package rejected: %v", err)
	}
	if got.Version != 42 || len(got.Blob) != 0 {
		t.Fatalf("empty-blob round trip: version %d, blob %d bytes", got.Version, len(got.Blob))
	}
	// 7 bytes is still truncated.
	if _, err := UnmarshalModelPackage(empty.Marshal()[:7]); err == nil {
		t.Fatal("7-byte package parsed")
	}
}
