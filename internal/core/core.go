// Package core implements OFFLINE MODEL GUARD itself (§V): the three-phase
// protocol between the user U, the vendor V, and a SANCTUARY enclave on
// U's device that lets an encrypted, licensed ML model run on private
// microphone input with neither party learning the other's secrets.
//
//	Phase I  (preparation): the enclave is loaded and attested to both
//	         parties; V provisions the model encrypted under
//	         KU = KDF(PK, n) and the enclave parks the ciphertext in
//	         untrusted flash.
//	Phase II (initialization): V checks the license and wraps KU to the
//	         enclave key; the enclave decrypts the model into its
//	         two-way-isolated memory.
//	Phase III (operation): the enclave captures microphone audio through
//	         the secure world, runs the fingerprint frontend and the
//	         tiny_conv interpreter, and emits only the transcription.
//
// Everything observable by the commodity OS is ciphertext or isolated
// behind the TZASC; the package's tests exercise each attack the paper's
// adversary model permits.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/omgcrypto"
	"repro/internal/sanctuary"
)

// ImageName is the name of the OMG keyword-spotting enclave image.
const ImageName = "omg-kws"

// BuildImage constructs the open-source enclave image: the SANCTUARY
// Library plus the OMG application code with the vendor's public key
// pinned. The bytes are canonical, so user and vendor can compute the
// expected measurement independently ("the enclave code can be open
// source … distributed by the device manufacturer", §V).
func BuildImage(vendorPub []byte) sanctuary.Image {
	var buf bytes.Buffer
	buf.WriteString("OMG-KWS-ENCLAVE v1\n")
	buf.WriteString("frontend: 16kHz 30ms/20ms 512-FFT 49x43 fingerprint\n")
	buf.WriteString("engine: tflm int8 tiny_conv\n")
	buf.WriteString("vendor-key-pin:")
	buf.Write(vendorPub)
	// Pad with a deterministic pattern to a realistic code size (SL +
	// TFLM runtime ≈ 256 KiB) so measurement covers a plausibly sized
	// image.
	pad := make([]byte, 256<<10-buf.Len())
	for i := range pad {
		pad[i] = byte(i * 31)
	}
	buf.Write(pad)
	return sanctuary.Image{Name: ImageName, Code: buf.Bytes()}
}

// EnclavePrivateSize is the two-way isolated region size: image plus model
// plus tensor arena headroom.
const EnclavePrivateSize = 1 << 20

// EnclaveSharedSWSize is the secure-world shared window, the sole knob for
// how many utterances QueryBatch pulls per SMC round trip (window/2 bytes
// of 16 kHz PCM16 → two seconds here). Larger windows would amortize more
// world switches, but the deposit must stay cache-resident between the
// secure world writing it and the enclave decoding it utterance by
// utterance, and 64 KiB is where that trade measured best.
const EnclaveSharedSWSize = 64 << 10

// ExpectedMeasurement computes the measurement verifiers demand for the
// pinned image.
func ExpectedMeasurement(vendorPub []byte) (omgcrypto.Measurement, error) {
	return sanctuary.ExpectedMeasurement(BuildImage(vendorPub), EnclavePrivateSize)
}

// ModelBlobName is the flash key under which the encrypted model is parked.
const ModelBlobName = "omg/model.enc"

// ModelPackage is the encrypted model the vendor provisions in step 3.
// Everything here is safe to store on untrusted flash.
type ModelPackage struct {
	// Version is the model version the license mechanism pins.
	Version uint64
	// Blob is the serialized omgcrypto.Envelope over the OMGM bytes.
	Blob []byte
}

// KeyRequest is the enclave's initialization-phase request: a fresh
// attestation whose nonce the enclave itself generated, so that the
// response cannot be replayed across sessions.
type KeyRequest struct {
	// Report attests the enclave's measurement and key.
	Report *omgcrypto.AttestationReport
	// Chain certifies the platform key that signed the report.
	Chain []*omgcrypto.Certificate
	// Nonce is enclave-generated freshness the response must echo.
	Nonce []byte
	// Version is the version of the locally stored model ciphertext.
	Version uint64
}

// KeyResponse is the vendor's initialization-phase message (step 5): KU
// wrapped to the attested enclave key, bound to a model version and to the
// request nonce, signed by the vendor key that is pinned in the enclave
// image. The signature + nonce binding is what makes withholding KU an
// effective license/rollback mechanism even against a replaying OS.
type KeyResponse struct {
	// Version is the model version KU unlocks.
	Version uint64
	// WrappedKU is the model key encrypted to the attested enclave key.
	WrappedKU []byte
	// Nonce echoes the request nonce (replay protection).
	Nonce []byte
	// VendorSig signs the canonical TBS encoding under the pinned key.
	VendorSig []byte
}

// keyResponseTBS is the canonical signed encoding.
func keyResponseTBS(nonce []byte, version uint64, wrapped []byte) []byte {
	out := make([]byte, 0, len("omg-key-response")+len(nonce)+8+len(wrapped))
	out = append(out, "omg-key-response"...)
	out = append(out, nonce...)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], version)
	out = append(out, v[:]...)
	out = append(out, wrapped...)
	return out
}

// User is U: she owns the device and the voice data, picks attestation
// nonces, and accepts output only from an enclave she verified.
type User struct {
	rootPub    []byte
	expected   omgcrypto.Measurement
	verifiedPK []byte
}

// NewUser creates a verifier trusting the device vendor root and the public
// enclave image.
func NewUser(rootPub, vendorPub []byte) (*User, error) {
	m, err := ExpectedMeasurement(vendorPub)
	if err != nil {
		return nil, err
	}
	return &User{rootPub: rootPub, expected: m}, nil
}

// VerifyEnclave checks an attestation report against the user's trust
// anchor and expected measurement (step 1). On success the user remembers
// the enclave key as the endpoint she will accept output from.
func (u *User) VerifyEnclave(report *omgcrypto.AttestationReport, chain []*omgcrypto.Certificate, nonce []byte) error {
	pk, err := omgcrypto.VerifyReport(report, chain, u.rootPub, u.expected, nonce)
	if err != nil {
		return fmt.Errorf("core: user attestation: %w", err)
	}
	u.verifiedPK = pk
	return nil
}

// VerifiedEnclaveKey returns the enclave key accepted in VerifyEnclave.
func (u *User) VerifiedEnclaveKey() []byte { return u.verifiedPK }
