package core

import (
	"fmt"
	"io"

	"repro/internal/omgcrypto"
)

// Session wires user, vendor, device and enclave app through the three OMG
// phases. The vendor connection exists only during preparation and
// initialization; the operation phase is fully offline.
type Session struct {
	// Device is U's simulated phone (SoC, TrustZone firmware, SANCTUARY).
	Device *Device
	// Vendor is V's side of the protocol: model provisioning and licensing.
	Vendor *Vendor
	// User is U's verifier state: trust anchor and accepted enclave key.
	User *User
	// App is the enclave application; nil until Prepare launches it.
	App *KWSApp
	rng io.Reader
}

// NewSession creates a session over an already-booted device.
func NewSession(dev *Device, vendor *Vendor, user *User, rng io.Reader) *Session {
	return &Session{Device: dev, Vendor: vendor, User: user, rng: rng}
}

// Prepare runs phase I (§V steps 1–4): launch and attest the enclave to
// user and vendor, receive the encrypted model, park it on flash.
func (s *Session) Prepare(vendorPub []byte) error {
	app, err := LaunchEnclave(s.Device, vendorPub, s.rng)
	if err != nil {
		return fmt.Errorf("core: preparation: %w", err)
	}
	s.App = app

	// Step 1: attestation to the user via secure output.
	userNonce, err := omgcrypto.RandomBytes(s.rng, 16)
	if err != nil {
		return err
	}
	report, chain, err := app.Attest(userNonce)
	if err != nil {
		return err
	}
	if err := s.User.VerifyEnclave(report, chain, userNonce); err != nil {
		return err
	}

	// Step 2: attestation to the vendor over the enclave's secure channel.
	vendorNonce, err := omgcrypto.RandomBytes(s.rng, 16)
	if err != nil {
		return err
	}
	report, chain, err = app.Attest(vendorNonce)
	if err != nil {
		return err
	}
	// Steps 3–4: encrypted model provisioning and local storage.
	pkg, err := s.Vendor.ProvisionModel(report, chain, vendorNonce)
	if err != nil {
		return err
	}
	return app.StoreModelPackage(pkg)
}

// Initialize runs phase II (§V steps 5–6): the enclave emits a fresh key
// request, the vendor checks the license and answers with the wrapped,
// signed KU, and the enclave decrypts the model.
func (s *Session) Initialize() error {
	if s.App == nil {
		return fmt.Errorf("core: initialize before prepare")
	}
	req, err := s.App.RequestKey()
	if err != nil {
		return err
	}
	resp, err := s.Vendor.IssueKey(req)
	if err != nil {
		return err
	}
	return s.App.Initialize(resp)
}

// Query runs one offline operation-phase inference over whatever the user
// spoke into the microphone.
func (s *Session) Query() (*QueryResult, error) {
	if s.App == nil {
		return nil, fmt.Errorf("core: query before prepare")
	}
	return s.App.Query()
}
