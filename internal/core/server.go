// Persistent inference service: the streaming successor to the spawn-per-call
// batch pipeline. A Server owns long-lived worker goroutines — each with a
// private interpreter over a weight-sharing model clone, a private DSP
// frontend and private scratch, exactly the pipeWorker state — fed by a
// buffered submission queue. Submissions are utterances (Submit, the worker
// runs extract+invoke) or continuous audio (SubmitStream over an open
// Stream, whose incremental dsp.Streamer pays one FFT per hop and submits a
// fingerprint-only job per completed window). Results are delivered through
// per-submission tickets in submission order; the queue's bounded capacity
// is the backpressure mechanism.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsp"
	"repro/internal/tflm"
)

// ErrServerClosed is returned by submissions after Close. The contract is
// deterministic: once Close has been called, every submission path — Submit,
// TrySubmit, SubmitFunc, TrySubmitFunc, SubmitStream, RunBatch (per
// utterance) — reports this error and never panics, regardless of how the
// call races Close (sends hold a read-lock over the closed flag for the full
// channel send, so the queue cannot close under them).
var ErrServerClosed = errors.New("core: server closed")

// ErrQueueFull is returned by TrySubmit when the submission queue is at
// capacity — the caller is being backpressured.
var ErrQueueFull = errors.New("core: submission queue full")

// ErrDeadlineExceeded completes a submission whose queue deadline passed
// before a worker dequeued it: the work is shed at dequeue — load-shedding —
// instead of wasting a worker on a result the caller has already given up
// on. The submission still completes exactly once (ticket resolves, callback
// fires) with this error as its Result.Err.
var ErrDeadlineExceeded = errors.New("core: queue deadline exceeded")

// ErrWorkerPanic is the error class a recovered inference panic completes
// its submission with (wrapped with the panic value). The panicking worker
// recovers, reports the failure through the job's normal completion path,
// and re-arms for the next job — the pool never shrinks.
var ErrWorkerPanic = errors.New("core: inference panicked")

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Queue is the submission-queue depth; <= 0 means 2×Workers. A full
	// queue blocks Submit and fails TrySubmit, bounding the memory a burst
	// of submissions can pin.
	Queue int
	// MaxBatch caps how many queued utterances a worker drains into one
	// planned tflm.InvokeBatch call when the queue is backed up (≥ 2
	// pending). <= 0 means the default of 8; 1 disables batched draining.
	MaxBatch int
	// BatchParallel is the intra-batch shard parallelism of each worker's
	// planned InvokeBatch (tflm.PlanBatchParallel). <= 0 means 1 — serial —
	// because the pool already runs one worker per core; raising it only
	// helps low-latency setups with fewer workers than cores that still
	// want a drained batch classified across several cores.
	BatchParallel int
	// Frontend configures feature extraction; the zero value means
	// dsp.DefaultFrontend().
	Frontend dsp.FrontendConfig
	// WithProbs requests dequantized class probabilities in each Result
	// (one allocation per utterance); when false only labels are produced.
	WithProbs bool
}

// defaultMaxBatch is the queue-drain batching depth when the config leaves
// MaxBatch unset.
const defaultMaxBatch = 8

// job is one unit of work on the queue. Exactly one of samples/fp describes
// the input; the worker writes *res and then signals completion — through
// done (ticket path) or by invoking cb (callback path) — so a batch can
// share one results slice and one completion channel.
type job struct {
	samples []int16
	fp      []uint8      // precomputed fingerprint (stream path)
	recycle chan []uint8 // fingerprint freelist to return fp to (may be nil)
	res     *Result
	done    chan<- struct{}
	cb      *cbTicket // callback-path completion (done is nil when set)
	// deadline, when nonzero, is the queue deadline: a worker that dequeues
	// the job after it completes the job with ErrDeadlineExceeded without
	// running inference.
	deadline time.Time
}

// cbTicket is the callback-path counterpart of Pending: the worker writes
// res, then either invokes fn directly (SubmitFunc) or hands the ticket to
// its stream's sequencer for in-hop-order delivery. Tickets recycle through
// cbPool, so the steady-state callback submission path allocates nothing.
type cbTicket struct {
	res Result
	fn  func(Result)
	seq uint64       // per-stream hop sequence (sequencer path)
	sq  *seqDelivery // non-nil routes completion through the stream sequencer
}

// cbPool recycles callback tickets across submissions.
var cbPool = sync.Pool{New: func() any { return new(cbTicket) }}

// newCbTicket draws a recycled callback ticket and resets it.
func newCbTicket(fn func(Result)) *cbTicket {
	t := cbPool.Get().(*cbTicket)
	t.res = Result{}
	t.fn = fn
	t.seq = 0
	t.sq = nil
	return t
}

// complete delivers a finished callback job: sequenced streams reorder
// through their seqDelivery, plain submissions fire immediately. The ticket
// returns to the pool either way; the Result passed to fn (including Probs)
// is only valid for the duration of the callback.
func (t *cbTicket) complete() {
	if t.sq != nil {
		t.sq.complete(t)
		return
	}
	fn, res := t.fn, t.res
	cbPool.Put(t)
	fn(res)
}

// seqDelivery serializes one stream's result callbacks into hop order: the
// pool's workers complete hops out of order, so each finished ticket parks
// in pending until every earlier hop has fired. Callbacks run under the
// sequencer lock — one at a time per stream, in submission order — on
// whichever worker goroutine completed the next-due hop.
type seqDelivery struct {
	mu      sync.Mutex
	fn      func(hop uint64, r Result)
	next    uint64               // next hop sequence to deliver
	pending map[uint64]*cbTicket // finished hops waiting on earlier ones
}

// complete files one finished hop and fires every consecutively ready
// callback starting at next.
func (q *seqDelivery) complete(t *cbTicket) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.seq != q.next {
		q.pending[t.seq] = t
		return
	}
	for t != nil {
		q.fn(t.seq, t.res)
		q.next++
		nt, ok := q.pending[q.next]
		if ok {
			delete(q.pending, q.next)
		}
		cbPool.Put(t)
		t = nt
	}
}

// Server is the persistent serving layer. Construct with NewServer, submit
// with Submit/TrySubmit/SubmitStream/RunBatch, and Close when done: Close
// drains all queued work, then stops the workers.
type Server struct {
	workers   []*pipeWorker
	feCfg     dsp.FrontendConfig
	withProbs bool
	jobs      chan job

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	wg     sync.WaitGroup
	live   atomic.Int32 // running worker goroutines, for leak assertions

	panics     atomic.Uint64 // recovered worker panics (Panics)
	shed       atomic.Uint64 // jobs shed at dequeue past their deadline (Shed)
	panicQueue atomic.Int64  // pending injected panics (InjectPanic chaos hook)
}

// NewServer builds the worker pool over clones of model (constant weight
// tensors are shared, activations are private per worker) and starts its
// goroutines.
func NewServer(model *tflm.Model, cfg ServerConfig) (*Server, error) {
	s, err := newServer(model, cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newServer is NewServer without starting the workers; tests use it to fill
// the queue deterministically before any draining begins.
func newServer(model *tflm.Model, cfg ServerConfig) (*Server, error) {
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	feCfg := cfg.Frontend
	if feCfg == (dsp.FrontendConfig{}) {
		feCfg = dsp.DefaultFrontend()
	}
	queue := cfg.Queue
	if queue <= 0 {
		queue = 2 * n
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	s := &Server{
		feCfg:     feCfg,
		withProbs: cfg.WithProbs,
		jobs:      make(chan job, queue),
	}
	for i := 0; i < n; i++ {
		w, err := newPipeWorker(model, feCfg, maxBatch, cfg.BatchParallel)
		if err != nil {
			return nil, fmt.Errorf("core: server worker %d: %w", i, err)
		}
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// start launches one goroutine per worker. Each loops on the shared queue
// until Close closes it, so no per-call goroutine spawn or WaitGroup churn
// remains on the serving path. When the queue is backed up a worker drains
// up to its planned batch capacity and classifies the whole batch through
// one tflm.InvokeBatch call; a lone job keeps the single-utterance path.
//
// Fault isolation: inference runs under a recover guard — a panic (model
// bug, hostile input, injected chaos) completes the affected job(s) with
// ErrWorkerPanic through the normal completion path and the worker loops on,
// so the pool never shrinks and no accepted submission is lost. Jobs whose
// queue deadline passed are shed at dequeue with ErrDeadlineExceeded before
// any inference work is spent on them.
func (s *Server) start() {
	for _, w := range s.workers {
		s.wg.Add(1)
		s.live.Add(1)
		go func(w *pipeWorker) {
			defer s.wg.Done()
			defer s.live.Add(-1)
			// guard runs fn with panic isolation: a recovered panic is
			// returned as an ErrWorkerPanic for the caller to write into the
			// affected results. The injected-panic hook fires inside the
			// guard so chaos tests exercise the real recovery path.
			guard := func(fn func()) (err error) {
				defer func() {
					if r := recover(); r != nil {
						s.panics.Add(1)
						err = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
					}
				}()
				if s.takeInjectedPanic() {
					panic("injected chaos panic (Server.InjectPanic)")
				}
				fn()
				return nil
			}
			runOne := func(j job) {
				err := guard(func() {
					if j.fp != nil {
						*j.res = w.runFingerprint(j.fp, s.withProbs)
					} else {
						*j.res = w.run(j.samples, s.withProbs)
					}
				})
				if err != nil {
					*j.res = Result{Label: -1, Err: err}
				}
			}
			finish := func(j job) {
				// A panicking completion callback must not take down the
				// worker (or strand the rest of a drained batch): callbacks
				// are documented not to panic, but a hostile one is isolated
				// like a panicking inference.
				defer func() {
					if r := recover(); r != nil {
						s.panics.Add(1)
					}
				}()
				if j.fp != nil && j.recycle != nil {
					select {
					case j.recycle <- j.fp:
					default:
					}
				}
				if j.cb != nil {
					j.cb.complete()
					return
				}
				j.done <- struct{}{}
			}
			// shed completes an expired job without running it; reports
			// whether the job was shed.
			shed := func(j job) bool {
				if j.deadline.IsZero() || !time.Now().After(j.deadline) {
					return false
				}
				s.shed.Add(1)
				*j.res = Result{Label: -1, Err: ErrDeadlineExceeded}
				finish(j)
				return true
			}
			for j := range s.jobs {
				if shed(j) {
					continue
				}
				if cap(w.batch) <= 1 {
					// Batched draining disabled (or unplannable model):
					// classify in place.
					runOne(j)
					finish(j)
					continue
				}
				batch := w.batch[:0]
				batch = append(batch, j)
				// Drain at most a fair share of the visible backlog: with
				// several workers, grabbing the whole queue into one batch
				// would serialize work the pool could run concurrently, so
				// each drain leaves (workers-1)/workers of the backlog for
				// the others. A deep backlog still fills whole batches.
				limit := 1 + (len(s.jobs)+len(s.workers)-1)/len(s.workers)
				if limit > cap(w.batch) {
					limit = cap(w.batch)
				}
			drain:
				for len(batch) < limit {
					select {
					case j2, ok := <-s.jobs:
						if !ok {
							break drain
						}
						if shed(j2) {
							continue
						}
						batch = append(batch, j2)
					default:
						break drain
					}
				}
				if len(batch) == 1 {
					runOne(batch[0])
				} else if err := guard(func() { w.runJobs(batch, s.withProbs) }); err != nil {
					// The batch died mid-InvokeBatch: no per-job result is
					// trustworthy, so every job in it reports the panic.
					for i := range batch {
						*batch[i].res = Result{Label: -1, Err: err}
					}
				}
				for i := range batch {
					finish(batch[i])
				}
			}
		}(w)
	}
}

// takeInjectedPanic consumes one pending injected panic, if any.
func (s *Server) takeInjectedPanic() bool {
	for {
		n := s.panicQueue.Load()
		if n <= 0 {
			return false
		}
		if s.panicQueue.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// InjectPanic arms the chaos hook: the next job any worker dequeues panics
// mid-inference. The panic is recovered by the worker's guard — the job
// completes with ErrWorkerPanic and the pool stays at full strength — which
// is exactly what the fault-matrix tests assert. Calling n times arms n
// panics. Safe for concurrent use; a no-op burden on the serving path (one
// atomic load per job).
func (s *Server) InjectPanic() { s.panicQueue.Add(1) }

// Panics returns how many worker panics have been recovered over the
// server's lifetime (inference panics and panicking completion callbacks,
// including injected ones) — an observability counter for health checks and
// chaos tests.
func (s *Server) Panics() uint64 { return s.panics.Load() }

// Shed returns how many submissions were shed at dequeue because their
// queue deadline had passed.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Workers returns the pool size.
func (s *Server) Workers() int { return len(s.workers) }

// QueueDepth returns the submission-queue capacity.
func (s *Server) QueueDepth() int { return cap(s.jobs) }

// LiveWorkers returns the number of worker goroutines currently running: 0
// after Close returns, Workers() while the server is healthy. Because
// workers recover panics and re-arm, a healthy server's LiveWorkers never
// drops below Workers — health checks and the fault-matrix tests assert
// exactly that.
func (s *Server) LiveWorkers() int { return int(s.live.Load()) }

// liveWorkers is the historical unexported spelling kept for the package's
// own leak assertions.
func (s *Server) liveWorkers() int { return s.LiveWorkers() }

// send enqueues a job unless the server is closed. With block=false a full
// queue returns ErrQueueFull instead of waiting.
func (s *Server) send(j job, block bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrServerClosed
	}
	if block {
		s.jobs <- j
		return nil
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Pending is a submission ticket. Wait blocks until the worker has produced
// the result and may be called repeatedly; waiting tickets in submission
// order yields results in submission order. A caller that is done with a
// ticket may Release it back to the shared freelist, making the steady-state
// submission path allocation-free.
type Pending struct {
	res      Result
	done     chan struct{}
	received bool
}

// pendingPool recycles tickets (struct + completion channel) across
// submissions; Submit/TrySubmit/SubmitStream draw from it and Release
// returns to it.
var pendingPool = sync.Pool{New: func() any {
	return &Pending{done: make(chan struct{}, 1)}
}}

// newPending draws a recycled ticket and resets it for a fresh submission.
func newPending() *Pending {
	p := pendingPool.Get().(*Pending)
	p.res = Result{}
	p.received = false
	return p
}

// Wait returns the submission's result, blocking until it is ready.
func (p *Pending) Wait() Result {
	if !p.received {
		<-p.done
		p.received = true
	}
	return p.res
}

// Release waits for the result if necessary and returns the ticket to the
// freelist. The ticket — and the Result (including Probs) obtained from its
// Wait — must not be used afterwards. Release is optional: an un-released
// ticket is simply garbage collected.
func (p *Pending) Release() {
	p.Wait() // the worker's completion signal must be consumed before reuse
	pendingPool.Put(p)
}

// Submit enqueues one utterance, blocking while the queue is full, and
// returns its ticket. After Close it returns ErrServerClosed (never
// panics); see ErrServerClosed for the full after-Close contract.
func (s *Server) Submit(samples []int16) (*Pending, error) {
	return s.SubmitDeadline(samples, time.Time{})
}

// SubmitDeadline is Submit with a queue deadline: if no worker has dequeued
// the submission by deadline, it is shed at dequeue and its ticket resolves
// with ErrDeadlineExceeded instead of occupying a worker. A zero deadline
// means no deadline. The deadline bounds queue wait only — inference that
// has already started is never abandoned.
func (s *Server) SubmitDeadline(samples []int16, deadline time.Time) (*Pending, error) {
	p := newPending()
	if err := s.send(job{samples: samples, res: &p.res, done: p.done, deadline: deadline}, true); err != nil {
		pendingPool.Put(p)
		return nil, err
	}
	return p, nil
}

// TrySubmit is Submit that fails with ErrQueueFull instead of blocking when
// the queue is at capacity.
func (s *Server) TrySubmit(samples []int16) (*Pending, error) {
	p := newPending()
	if err := s.send(job{samples: samples, res: &p.res, done: p.done}, false); err != nil {
		pendingPool.Put(p)
		return nil, err
	}
	return p, nil
}

// SubmitFunc enqueues one utterance, blocking while the queue is full, and
// invokes fn exactly once with the result when a worker completes it. The
// callback runs on a worker goroutine: it must not block for long (it stalls
// that worker) and must not submit back into the same server (a full queue
// would deadlock the pool). The Result — including Probs — is only valid for
// the duration of the callback; copy what outlives it. Unlike ticket
// submissions there is nothing to Release: the completion state recycles
// internally, so the steady-state SubmitFunc path is allocation-free.
func (s *Server) SubmitFunc(samples []int16, fn func(Result)) error {
	t := newCbTicket(fn)
	if err := s.send(job{samples: samples, res: &t.res, cb: t}, true); err != nil {
		cbPool.Put(t)
		return err
	}
	return nil
}

// SubmitFuncDeadline is SubmitFunc with a queue deadline (see
// SubmitDeadline): it blocks while the queue is full, and a submission
// still queued past deadline is shed at dequeue with ErrDeadlineExceeded.
// This is the Registry dispatcher's submission path — fairness is decided
// upstream by the admission layer, so backpressure here is blocking, not
// BUSY.
func (s *Server) SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	t := newCbTicket(fn)
	if err := s.send(job{samples: samples, res: &t.res, cb: t, deadline: deadline}, true); err != nil {
		cbPool.Put(t)
		return err
	}
	return nil
}

// TrySubmitFunc is SubmitFunc that fails with ErrQueueFull instead of
// blocking when the queue is at capacity — the callback-path face of
// backpressure (network front ends map it to an explicit BUSY reply).
func (s *Server) TrySubmitFunc(samples []int16, fn func(Result)) error {
	return s.TrySubmitFuncDeadline(samples, time.Time{}, fn)
}

// TrySubmitFuncDeadline is TrySubmitFunc with a queue deadline (see
// SubmitDeadline): a submission still queued past deadline is shed at
// dequeue and fn fires with a Result whose Err is ErrDeadlineExceeded. This
// is the network front end's load-shedding path — stale requests stop
// costing workers the moment the queue backs up past their patience.
func (s *Server) TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(Result)) error {
	t := newCbTicket(fn)
	if err := s.send(job{samples: samples, res: &t.res, cb: t, deadline: deadline}, false); err != nil {
		cbPool.Put(t)
		return err
	}
	return nil
}

// RunBatch classifies every utterance and returns one Result per input, in
// order — the Pipeline compatibility surface. The batch shares one results
// slice and one completion channel, so the per-utterance hot path allocates
// nothing beyond optional probabilities.
func (s *Server) RunBatch(utts [][]int16) []Result {
	results := make([]Result, len(utts))
	done := make(chan struct{}, len(utts))
	submitted := 0
	for i := range utts {
		if err := s.send(job{samples: utts[i], res: &results[i], done: done}, true); err != nil {
			results[i] = Result{Label: -1, Err: err}
			continue
		}
		submitted++
	}
	for ; submitted > 0; submitted-- {
		<-done
	}
	return results
}

// Close marks the server closed, drains all queued work, and waits for the
// workers to exit. The drain contract: every submission accepted before
// Close completes — tickets obtained before Close all resolve, and every
// accepted callback (SubmitFunc, OnResult streams) has fired by the time
// Close returns. Work never accepted (a send that observed the closed flag)
// reports ErrServerClosed to its submitter instead; no accepted callback is
// silently dropped. A SubmitStream racing Close either gets its remaining
// hops in before the flag flips (they drain) or gets ErrServerClosed for
// the rest of the chunk — it never deadlocks, because sends hold the
// read-lock for the full channel send, so the queue cannot close under a
// blocked sender while the still-running workers drain it. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
	// Retire any interpreter-level batch shard workers deterministically
	// (they would otherwise linger until a GC cleanup collects the workers'
	// interpreters).
	for _, w := range s.workers {
		w.ip.ReleaseBatch()
	}
}

// streamScratchSlack is how many fingerprint buffers a Stream owns beyond
// the server's queue depth: enough to keep the queue full while one
// fingerprint is being assembled and others are on workers.
func (s *Server) streamScratch() int { return cap(s.jobs) + len(s.workers) + 1 }

// Stream is one continuous audio source multiplexed onto a Server: it owns
// an incremental dsp.Streamer (one FFT per hop) and a fixed pool of
// fingerprint buffers that recycle through the workers, so steady-state
// streaming allocates only the returned tickets. A Stream is not
// goroutine-safe — it models a single microphone; open one per source.
type Stream struct {
	srv  *Server
	st   *dsp.Streamer
	free chan []uint8
	// Callback delivery (OnResult): hops carries the next hop sequence to
	// assign and sq reorders worker completions back into hop order.
	hops uint64
	sq   *seqDelivery
}

// OpenStream creates a stream over a private frontend with the server's
// geometry.
func (s *Server) OpenStream() (*Stream, error) {
	fe, err := dsp.NewFrontend(s.feCfg)
	if err != nil {
		return nil, err
	}
	st := &Stream{
		srv:  s,
		st:   dsp.NewStreamer(fe),
		free: make(chan []uint8, s.streamScratch()),
	}
	for i := 0; i < cap(st.free); i++ {
		st.free <- make([]uint8, s.feCfg.FingerprintLen())
	}
	return st, nil
}

// Streamer exposes the underlying incremental extractor (warm-up state,
// frame accounting).
func (st *Stream) Streamer() *dsp.Streamer { return st.st }

// Hops returns how many inference hops SubmitStream has submitted for this
// stream so far — the difference across a SubmitStream call is how many
// hops that call accepted. Like all Stream methods it is single-goroutine
// state; concurrent callbacks do not change it.
func (st *Stream) Hops() uint64 { return st.hops }

// OnResult switches the stream from ticket polling to callback delivery:
// every subsequent SubmitStream call submits its hops as callback jobs and
// returns no tickets, and fn is invoked once per hop with the hop's sequence
// number (0-based, counting every inference hop submitted since OpenStream)
// and its Result. Callbacks for
// one stream fire strictly in hop order, serialized, even though the pool's
// workers complete them out of order; hops of different streams are
// unordered relative to each other. fn runs on worker goroutines under the
// stream's delivery lock — it must not block for long and must not submit
// back into the same server. The Result (including Probs) is valid only for
// the duration of the callback.
//
// Drain contract: Server.Close processes every hop accepted before it, so
// after Close returns every accepted hop's callback has fired. A fn of nil
// panics; OnResult must be called before the first SubmitStream whose
// callbacks it should receive and cannot be un-set (the stream is
// single-goroutine state, so "before the next SubmitStream" is well
// defined).
func (st *Stream) OnResult(fn func(hop uint64, r Result)) {
	if fn == nil {
		panic("core: Stream.OnResult(nil)")
	}
	st.sq = &seqDelivery{fn: fn, next: st.hops, pending: make(map[uint64]*cbTicket)}
}

// Submit advances the stream by chunk on the server that opened it — the
// method form of Server.SubmitStream, so holders of a Stream obtained
// through the Engine interface can submit without naming the concrete
// server (Registry shards are parameterized over Engine).
func (st *Stream) Submit(chunk []int16) ([]*Pending, error) {
	return st.srv.SubmitStream(st, chunk)
}

// SubmitStream advances the stream by chunk and submits one inference per
// newly completed hop once the stream is warm (a full fingerprint window
// observed), returning the tickets in hop order — or, after Stream.OnResult,
// no tickets: each hop's result is then delivered through the stream's
// callback in hop order. When all of the stream's fingerprint buffers are in
// flight it waits for a worker to recycle one — the streaming face of queue
// backpressure. On error (ErrServerClosed mid-chunk) the already submitted
// hops are unaffected — their tickets are returned/callbacks still fire —
// and the remainder of the chunk is dropped; SubmitStream never leaves a
// hop half-submitted.
func (s *Server) SubmitStream(st *Stream, chunk []int16) ([]*Pending, error) {
	if st.srv != s {
		return nil, errors.New("core: stream belongs to a different server")
	}
	var tickets []*Pending
	for len(chunk) > 0 {
		n := min(st.st.NeedSamples(), len(chunk))
		completed := st.st.Push(chunk[:n])
		chunk = chunk[n:]
		if completed == 0 || !st.st.Ready() {
			continue
		}
		fp := st.st.Fingerprint(<-st.free)
		if st.sq != nil {
			t := newCbTicket(nil)
			t.seq, t.sq = st.hops, st.sq
			if err := s.send(job{fp: fp, recycle: st.free, res: &t.res, cb: t}, true); err != nil {
				st.free <- fp
				cbPool.Put(t)
				return tickets, err
			}
			st.hops++
			continue
		}
		p := newPending()
		if err := s.send(job{fp: fp, recycle: st.free, res: &p.res, done: p.done}, true); err != nil {
			st.free <- fp
			pendingPool.Put(p)
			return tickets, err
		}
		st.hops++
		tickets = append(tickets, p)
	}
	return tickets, nil
}
