package netfront_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// testFixture builds a model, utterances, and their direct-path (in-process
// core.Server) labels — the ground truth every wire round trip must match
// bit-exactly.
func testFixture(t testing.TB, n int) (*tflm.Model, [][]int16, []int) {
	t.Helper()
	model, err := tflm.BuildRandomTinyConv(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, n)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	labels := make([]int, n)
	for i, u := range utts {
		p, err := srv.Submit(u)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		labels[i] = r.Label
		p.Release()
	}
	return model, utts, labels
}

// startFrontEnd stands up a core.Server + FrontEnd on a fresh listener and
// returns the dial address. Cleanup closes front end then server.
func startFrontEnd(t testing.TB, model *tflm.Model, cfg core.ServerConfig, network string) string {
	t.Helper()
	srv, err := core.NewServer(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var addr string
	switch network {
	case "tcp":
		addr = "127.0.0.1:0"
	case "unix":
		addr = filepath.Join(t.TempDir(), "omg.sock")
	default:
		t.Fatalf("unsupported network %q", network)
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	t.Cleanup(func() {
		fe.Close()
		srv.Close()
	})
	return l.Addr().String()
}

// TestNetRoundTripOneShot: one-shot classifications over loopback TCP must
// match the direct in-process path label for label.
func TestNetRoundTripOneShot(t *testing.T) {
	model, utts, want := testFixture(t, 8)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 2}, "tcp")
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, u := range utts {
		label, err := c.Classify(u)
		if err != nil {
			t.Fatalf("utterance %d: %v", i, err)
		}
		if label != want[i] {
			t.Fatalf("utterance %d: wire label %d, direct label %d", i, label, want[i])
		}
	}
}

// TestNetRoundTripStream: a 10-hop stream over a Unix socket must deliver
// callbacks strictly in hop order with labels identical to the direct
// in-process stream over the same signal.
func TestNetRoundTripStream(t *testing.T) {
	model, utts, _ := testFixture(t, 2)
	cfg := dsp.DefaultFrontend()
	// A signal with exactly 10 hops past warm-up: one full window plus 10
	// strides.
	signal := make([]int16, 0, cfg.UtteranceSamples()+10*cfg.StrideSamples)
	for len(signal) < cap(signal) {
		for _, u := range utts {
			need := cap(signal) - len(signal)
			if need > len(u) {
				need = len(u)
			}
			signal = append(signal, u[:need]...)
		}
	}

	// Direct path ground truth.
	direct, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := direct.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	tickets, err := direct.SubmitStream(ds, signal)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tickets {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want = append(want, r.Label)
		p.Release()
	}
	direct.Close()
	if len(want) != 11 { // warm-up window hop + 10 steady-state hops
		t.Fatalf("fixture signal produced %d hops, want 11", len(want))
	}

	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 4}, "unix")
	c, err := client.Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	var got []int
	var order []uint64
	s, err := c.OpenStream(func(hop uint64, label int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("hop %d: %v", hop, err)
		}
		got = append(got, label)
		order = append(order, hop)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uneven chunking exercises reassembly through the wire and the
	// streamer.
	for off, step := 0, 0; off < len(signal); off += step {
		step = 999
		if off+step > len(signal) {
			step = len(signal) - off
		}
		if err := s.Send(signal[off : off+step]); err != nil {
			t.Fatal(err)
		}
	}
	hops, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hops != uint64(len(want)) {
		t.Fatalf("stream closed after %d hops, want %d", hops, len(want))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("%d callbacks before StreamClosed, want %d (flush contract)", len(got), len(want))
	}
	for i := range got {
		if order[i] != uint64(i) {
			t.Fatalf("callback %d carried hop %d — out of order", i, order[i])
		}
		if got[i] != want[i] {
			t.Fatalf("hop %d: wire label %d, direct label %d", i, got[i], want[i])
		}
	}
}

// TestNetRoundTripBatch: a whole batch over the wire must match direct
// RunBatch results in order.
func TestNetRoundTripBatch(t *testing.T) {
	model, utts, want := testFixture(t, 10)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 2}, "tcp")
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels, err := c.ClassifyBatch(utts)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(want) {
		t.Fatalf("%d batch labels, want %d", len(labels), len(want))
	}
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("utterance %d: wire label %d, direct label %d", i, labels[i], want[i])
		}
	}
	// Empty batch round-trips as an empty result.
	empty, err := c.ClassifyBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty batch returned %d labels", len(empty))
	}
}

// TestNetBusy: with the worker deliberately stalled and the queue full, a
// one-shot request must come back as an explicit BUSY reply (the wire face
// of ErrQueueFull), not block, and the connection must keep working
// afterwards.
func TestNetBusy(t *testing.T) {
	model, utts, want := testFixture(t, 2)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1, Queue: 1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	defer fe.Close()
	c, err := client.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stall the single worker inside a callback, then fill the queue slot.
	entered := make(chan struct{})
	release := make(chan struct{})
	if err := srv.SubmitFunc(utts[0], func(core.Result) {
		close(entered)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, err := srv.Submit(utts[0])
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Classify(utts[1]); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("classify against a full queue: err = %v, want ErrBusy", err)
	}

	close(release)
	queued.Release()
	label, err := c.Classify(utts[1])
	if err != nil {
		t.Fatalf("classify after backpressure cleared: %v", err)
	}
	if label != want[1] {
		t.Fatalf("label %d after BUSY, want %d", label, want[1])
	}
}

// TestNetMixedConcurrentConnections is the -race target: N connections in
// parallel, each interleaving one-shots, a stream, and a batch against one
// shared server, every result checked against the direct path.
func TestNetMixedConcurrentConnections(t *testing.T) {
	model, utts, want := testFixture(t, 6)
	cfg := dsp.DefaultFrontend()
	var signal []int16
	for _, u := range utts[:2] {
		signal = append(signal, u...)
	}
	// Direct-path stream ground truth.
	direct, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dstm, err := direct.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var streamWant []int
	tickets, err := direct.SubmitStream(dstm, signal)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tickets {
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		streamWant = append(streamWant, r.Label)
		p.Release()
	}
	direct.Close()
	_ = cfg

	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 4, Queue: 16}, "tcp")
	const conns = 6
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for round := 0; round < 3; round++ {
				switch (g + round) % 3 {
				case 0: // one-shots
					for i, u := range utts {
						label, err := c.Classify(u)
						if errors.Is(err, client.ErrBusy) {
							continue // backpressure is a legal outcome
						}
						if err != nil {
							errs <- err
							return
						}
						if label != want[i] {
							errs <- fmt.Errorf("conn %d: one-shot %d label %d, want %d", g, i, label, want[i])
							return
						}
					}
				case 1: // stream
					var mu sync.Mutex
					var got []int
					s, err := c.OpenStream(func(hop uint64, label int, err error) {
						mu.Lock()
						defer mu.Unlock()
						if err == nil {
							got = append(got, label)
						}
					})
					if err != nil {
						errs <- err
						return
					}
					for off := 0; off < len(signal); off += 1000 {
						end := min(off+1000, len(signal))
						if err := s.Send(signal[off:end]); err != nil {
							errs <- err
							return
						}
					}
					if _, err := s.Close(); err != nil {
						errs <- err
						return
					}
					mu.Lock()
					ok := len(got) == len(streamWant)
					for i := 0; ok && i < len(got); i++ {
						ok = got[i] == streamWant[i]
					}
					mu.Unlock()
					if !ok {
						errs <- fmt.Errorf("conn %d: stream results diverged from direct path", g)
						return
					}
				case 2: // batch
					labels, err := c.ClassifyBatch(utts)
					if err != nil {
						errs <- err
						return
					}
					for i := range labels {
						if labels[i] != want[i] {
							errs <- fmt.Errorf("conn %d: batch %d label %d, want %d", g, i, labels[i], want[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNetStreamErrors: protocol-level stream misuse is reported per request
// without killing the connection.
func TestNetStreamErrors(t *testing.T) {
	model, utts, want := testFixture(t, 1)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 1}, "tcp")
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Double-open of the same id: the client allocates unique ids, so drive
	// the raw frames via a second stream opened after closing the first with
	// pending state — instead exercise the simpler contract: chunk for an
	// unopened stream id comes back as a RemoteError on that stream's
	// callback path, and one-shots still work afterwards.
	s, err := c.OpenStream(func(hop uint64, label int, err error) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream is closed server-side; a further Send must surface
	// ErrClosed locally.
	if err := s.Send(utts[0][:100]); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("send on closed stream: err = %v, want ErrClosed", err)
	}
	label, err := c.Classify(utts[0])
	if err != nil || label != want[0] {
		t.Fatalf("one-shot after stream close: label %d err %v, want %d", label, err, want[0])
	}
}

// rawConn is a test helper speaking raw frames at a front end — the
// hostile-input tests need byte-level control the client never exposes.
type rawConn struct {
	t  *testing.T
	nc net.Conn
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) write(typ byte, body []byte) {
	r.t.Helper()
	out := netfront.AppendFrameHeader(nil, typ, len(body))
	if _, err := r.nc.Write(append(out, body...)); err != nil {
		r.t.Fatalf("raw write: %v", err)
	}
}

// read returns the next frame, or an error once the server closed the conn.
func (r *rawConn) read() (byte, []byte, error) {
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [netfront.HeaderLen]byte
	return netfront.ReadFrame(r.nc, &hdr, nil, netfront.DefaultMaxBody)
}

func le32(vs ...uint32) []byte {
	var b []byte
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// TestHostileFrames drives byte-level hostile inputs beyond the fuzz
// corpus at a live front end, table-driven: inputs that break framing must
// close the connection (no resync in a length-prefixed stream), while
// protocol misuse scoped to one request must answer a structured
// CodeBadRequest error and leave the connection serving.
func TestHostileFrames(t *testing.T) {
	model, utts, want := testFixture(t, 1)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 1}, "tcp")
	cases := []struct {
		name string
		typ  byte
		body []byte
		// wantClose: the conn must die without a reply. Otherwise the reply
		// must be FrameError carrying wantCode.
		wantClose bool
		wantCode  uint16
	}{
		{"oversize declared batch count", netfront.FrameBatch,
			le32(1, 1<<30), true, 0},
		{"batch count beyond body", netfront.FrameBatch,
			le32(1, 3, 0), true, 0},
		{"utterance with odd sample payload", netfront.FrameUtterance,
			append(le32(1), 0xAB), true, 0},
		{"unknown frame type", 0x7F, le32(1), true, 0},
		{"truncated id", netfront.FrameUtterance, []byte{1, 2}, true, 0},
		{"chunk for unopened stream", netfront.FrameStreamChunk,
			append(le32(99), netfront.AppendSamples(nil, utts[0][:4])...), false, netfront.CodeBadRequest},
		{"close of unopened stream", netfront.FrameStreamClose,
			le32(98), false, netfront.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rawDial(t, addr)
			r.write(tc.typ, tc.body)
			typ, body, err := r.read()
			if tc.wantClose {
				if err == nil {
					t.Fatalf("server replied %#x to a framing-level attack, want closed conn", typ)
				}
				return
			}
			if err != nil || typ != netfront.FrameError {
				t.Fatalf("typ=%#x err=%v, want FrameError", typ, err)
			}
			we, err := netfront.DecodeWireError(body[4:])
			if err != nil {
				t.Fatal(err)
			}
			if we.Code != tc.wantCode {
				t.Fatalf("code %d, want %d", we.Code, tc.wantCode)
			}
			// Request-scoped failure: the same conn still classifies.
			r.write(netfront.FrameUtterance, append(le32(5), netfront.AppendSamples(nil, utts[0])...))
			typ, body, err = r.read()
			if err != nil || typ != netfront.FrameResult {
				t.Fatalf("conn dead after request-scoped error: typ=%#x err=%v", typ, err)
			}
			if id := binary.LittleEndian.Uint32(body[0:4]); id != 5 {
				t.Fatalf("reply id %d, want 5", id)
			}
			if label := int32(binary.LittleEndian.Uint32(body[4:8])); int(label) != want[0] {
				t.Fatalf("label %d, want %d", label, want[0])
			}
		})
	}
}

// TestStreamChunkAfterClosed pins the stream lifecycle edge: once the
// server has acknowledged FrameStreamClose with FrameStreamClosed, the id
// is dead — a further chunk on it is protocol misuse answered with
// CodeBadRequest, not a crash and not a silent re-open.
func TestStreamChunkAfterClosed(t *testing.T) {
	model, utts, _ := testFixture(t, 1)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 1}, "tcp")
	r := rawDial(t, addr)
	r.write(netfront.FrameStreamOpen, le32(4))
	r.write(netfront.FrameStreamClose, le32(4))
	typ, _, err := r.read()
	if err != nil || typ != netfront.FrameStreamClosed {
		t.Fatalf("typ=%#x err=%v, want FrameStreamClosed", typ, err)
	}
	r.write(netfront.FrameStreamChunk, append(le32(4), netfront.AppendSamples(nil, utts[0][:8])...))
	typ, body, err := r.read()
	if err != nil || typ != netfront.FrameError {
		t.Fatalf("typ=%#x err=%v, want FrameError", typ, err)
	}
	we, err := netfront.DecodeWireError(body[4:])
	if err != nil || we.Code != netfront.CodeBadRequest {
		t.Fatalf("code=%d err=%v, want CodeBadRequest", we.Code, err)
	}
}

// TestInterleavedIDsOneConn pins response routing: requests with ids
// written out of order on one connection must each get their own reply,
// matched by id, regardless of arrival order.
func TestInterleavedIDsOneConn(t *testing.T) {
	model, utts, want := testFixture(t, 3)
	addr := startFrontEnd(t, model, core.ServerConfig{Workers: 2, Queue: 8}, "tcp")
	r := rawDial(t, addr)
	ids := []uint32{7, 2, 9}
	for i, id := range ids {
		r.write(netfront.FrameUtterance, append(le32(id), netfront.AppendSamples(nil, utts[i])...))
	}
	got := map[uint32]int32{}
	for range ids {
		typ, body, err := r.read()
		if err != nil || typ != netfront.FrameResult {
			t.Fatalf("typ=%#x err=%v", typ, err)
		}
		got[binary.LittleEndian.Uint32(body[0:4])] = int32(binary.LittleEndian.Uint32(body[4:8]))
	}
	for i, id := range ids {
		label, ok := got[id]
		if !ok {
			t.Fatalf("no reply for id %d", id)
		}
		if int(label) != want[i] {
			t.Fatalf("id %d: label %d, want %d", id, label, want[i])
		}
	}
}

// TestNetMaxStreams pins the per-connection stream cap: opens beyond
// Config.MaxStreams answer CodeLimitExceeded, and closing a stream frees
// its slot.
func TestNetMaxStreams(t *testing.T) {
	model, _, _ := testFixture(t, 1)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{MaxStreams: 2})
	go fe.Serve(l)
	defer fe.Close()
	r := rawDial(t, l.Addr().String())
	r.write(netfront.FrameStreamOpen, le32(1))
	r.write(netfront.FrameStreamOpen, le32(2))
	r.write(netfront.FrameStreamOpen, le32(3))
	typ, body, err := r.read()
	if err != nil || typ != netfront.FrameError {
		t.Fatalf("typ=%#x err=%v, want FrameError for the over-cap open", typ, err)
	}
	if id := binary.LittleEndian.Uint32(body[0:4]); id != 3 {
		t.Fatalf("error for id %d, want 3", id)
	}
	we, err := netfront.DecodeWireError(body[4:])
	if err != nil || we.Code != netfront.CodeLimitExceeded {
		t.Fatalf("code=%d err=%v, want CodeLimitExceeded", we.Code, err)
	}
	// Closing one stream frees its slot.
	r.write(netfront.FrameStreamClose, le32(1))
	typ, _, err = r.read()
	if err != nil || typ != netfront.FrameStreamClosed {
		t.Fatalf("typ=%#x err=%v, want FrameStreamClosed", typ, err)
	}
	r.write(netfront.FrameStreamOpen, le32(4))
	r.write(netfront.FrameStreamClose, le32(4))
	typ, body, err = r.read()
	if err != nil || typ != netfront.FrameStreamClosed || binary.LittleEndian.Uint32(body[0:4]) != 4 {
		t.Fatalf("typ=%#x err=%v, want stream 4 accepted after a slot freed", typ, err)
	}
}

// TestShutdownDrains pins the graceful-drain contract: Shutdown stops the
// accept loop, waits for quiet connections, and returns within the grace
// period; a busy-forever connection is force-closed with ErrDrainTimeout.
func TestShutdownDrains(t *testing.T) {
	model, utts, want := testFixture(t, 1)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- fe.Serve(l) }()
	c, err := client.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if label, err := c.Classify(utts[0]); err != nil || label != want[0] {
		t.Fatalf("pre-drain classify: label=%d err=%v", label, err)
	}
	if err := fe.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown of an idle front end: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, netfront.ErrFrontEndClosed) {
			t.Fatalf("Serve returned %v, want ErrFrontEndClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New dials are refused once draining.
	if nc, err := net.Dial("tcp", l.Addr().String()); err == nil {
		// The TCP connect may succeed before the closed listener is
		// observed; the conn must then be unserved (EOF on read).
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		var b [1]byte
		if _, err := nc.Read(b[:]); err == nil {
			t.Fatal("post-drain connection was served")
		}
		nc.Close()
	}
}

// TestShutdownForceClosesStuckConn pins the other half of the contract: a
// connection that never goes quiet is force-closed when the grace expires
// and Shutdown reports ErrDrainTimeout.
func TestShutdownForceClosesStuckConn(t *testing.T) {
	model, _, _ := testFixture(t, 1)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	r := rawDial(t, l.Addr().String())
	// An open stream keeps the conn non-quiet for the whole grace period.
	r.write(netfront.FrameStreamOpen, le32(1))
	// Give the server a moment to register the stream.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	err = fe.Shutdown(200 * time.Millisecond)
	if !errors.Is(err, netfront.ErrDrainTimeout) {
		t.Fatalf("Shutdown = %v, want ErrDrainTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v past its 200ms grace", elapsed)
	}
	// The stuck conn was force-closed.
	if _, _, err := r.read(); err == nil {
		t.Fatal("stuck connection still served after forced drain")
	}
}
