package netfront_test

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/netfront/faultconn"
	"repro/internal/tflm"
)

// TestServerSurvivesFaultMatrix is the chaos gate (ISSUE 6 acceptance, run
// under -race by `make chaos`): for every canonical fault profile —
// latency spikes, partial writes, mid-frame resets, stalls, bit
// corruption — a client speaking through a faulted connection must never
// take the server down. Per profile round it asserts that
//
//   - the server keeps serving a concurrent healthy connection with
//     bit-exact labels,
//   - every submission the server accepts completes exactly once (counted
//     through the direct SubmitFunc path),
//   - an injected worker panic mid-round is survived with the pool at full
//     strength after, and
//   - goroutine count returns to baseline once the round's clients are
//     gone — no leaked read loops, workers, or timers.
func TestServerSurvivesFaultMatrix(t *testing.T) {
	model, utts, want := testFixture(t, 4)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 2, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A short read-idle timeout keeps corrupted length prefixes (the server
	// parks waiting for a body that never comes) from stalling the round.
	fe := netfront.NewFrontEnd(srv, netfront.Config{ReadIdleTimeout: 750 * time.Millisecond})
	go fe.Serve(l)
	defer fe.Close()
	addr := l.Addr().String()

	settle := func() int {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		return runtime.NumGoroutine()
	}
	baseline := settle()

	for _, p := range faultconn.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if p.SwapStorm {
				runSwapStormRound(t, p, model, utts, want, settle)
				return
			}
			if p.PanicStorm {
				runPanicStormRound(t, p, model, utts, want, settle)
				return
			}
			panicsBefore := srv.Panics()
			srv.InjectPanic() // consumed by whichever submission runs next

			faulted, err := client.DialOptions("tcp", addr, client.Options{
				Redial:    true,
				RedialMax: 8,
				Retry:     client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
				Seed:      p.Seed,
				DialFunc: func(network, a string) (net.Conn, error) {
					nc, err := net.DialTimeout(network, a, 2*time.Second)
					if err != nil {
						return nil, err
					}
					fc, _ := faultconn.New(nc, p)
					return fc, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			healthy, err := client.DialOptions("tcp", addr, client.Options{
				// The injected panic may land on this connection's request;
				// CodePanic is retryable, so a retry policy absorbs it.
				Retry: client.RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 8 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			var faultedOK atomic.Int32

			// Faulted traffic: failures are expected (that is the point),
			// but every failure must be a structured, known error — and the
			// server must shrug it all off.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 12; i++ {
					label, err := faulted.ClassifyDeadline(utts[i%len(utts)], time.Now().Add(3*time.Second))
					if err == nil && label >= 0 {
						faultedOK.Add(1)
					}
				}
			}()

			// Healthy traffic, concurrently: bit-exact labels throughout.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					label, err := healthy.Classify(utts[i%len(utts)])
					if err != nil {
						t.Errorf("healthy classify %d during %q faults: %v", i, p.Name, err)
						return
					}
					if label != want[i%len(utts)] {
						t.Errorf("healthy classify %d during %q faults: label %d, want %d",
							i, p.Name, label, want[i%len(utts)])
						return
					}
				}
			}()

			// Exactly-once: submissions accepted through the direct path
			// complete precisely one callback each, faults notwithstanding.
			const direct = 8
			var completions atomic.Int32
			done := make(chan struct{})
			for i := 0; i < direct; i++ {
				if err := srv.SubmitFunc(utts[i%len(utts)], func(core.Result) {
					if completions.Add(1) == direct {
						close(done)
					}
				}); err != nil {
					t.Fatalf("direct submit %d: %v", i, err)
				}
			}
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("direct submissions incomplete: %d of %d", completions.Load(), direct)
			}

			wg.Wait()
			time.Sleep(30 * time.Millisecond) // room for a duplicate to surface
			if n := completions.Load(); n != direct {
				t.Fatalf("accepted submissions completed %d times, want exactly %d", n, direct)
			}

			// The injected panic was consumed somewhere above; the pool must
			// be at full strength regardless.
			if srv.Panics() != panicsBefore+1 {
				// Not fatal: heavy fault rounds can starve the injection
				// until the next round's traffic. But the pool must be full
				// either way.
				t.Logf("injected panic not yet consumed in round %q", p.Name)
			}
			if live, workers := srv.LiveWorkers(), srv.Workers(); live != workers {
				t.Fatalf("worker pool shrank under %q faults: %d live of %d", p.Name, live, workers)
			}

			faulted.Close()
			healthy.Close()

			// Goroutines return to baseline once the round's conns unwind.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if n := settle(); n <= baseline+2 || time.Now().After(deadline) {
					if n > baseline+2 {
						t.Fatalf("goroutine leak under %q faults: %d, baseline %d", p.Name, n, baseline)
					}
					break
				}
			}
		})
	}

	// The matrix done, the server is still a working server (the swap-storm
	// round ran against its own registry and listener, leaving this server
	// untouched — which is itself part of the check).
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, u := range utts {
		label, err := c.Classify(u)
		if err != nil && errors.Is(err, client.ErrBusy) {
			label, err = c.Classify(u)
		}
		if err != nil || label != want[i] {
			t.Fatalf("post-matrix classify %d: label=%d err=%v, want %d", i, label, err, want[i])
		}
	}
}

// runSwapStormRound is the swap + fault overlap round of the chaos gate: a
// registry-backed front end serves faulted and healthy wire traffic while a
// background loop hot-swaps the model continuously. The swap loop re-signs
// the SAME weights at increasing versions, so every generation classifies
// bit-exactly — any label drift means a request straddled a swap wrongly.
// Asserted per round:
//
//   - healthy wire traffic stays bit-exact through back-to-back swaps (the
//     client retry policy absorbs CodeModelSwapped via its retry-after hint),
//   - every submission the registry admits completes exactly once, swaps
//     and transport faults notwithstanding,
//   - at least one swap actually landed during the traffic and the shard
//     set finishes at full worker strength (with a panic injected mid-round),
//   - closing clients, front end, and registry returns the goroutine count
//     to the round's own baseline.
func runSwapStormRound(t *testing.T, p faultconn.Profile, model *tflm.Model, utts [][]int16, want []int, settle func() int) {
	baseline := settle()

	signer, err := core.NewSwapSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"kws": {Model: model, Version: 1, VendorPub: signer.VendorPub(), Key: signer.Key()},
	}, core.RegistryConfig{
		Shards:        2,
		Server:        core.ServerConfig{Workers: 2, Queue: 8},
		DefaultTenant: core.TenantConfig{MaxQueue: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEndRegistry(reg, netfront.Config{ReadIdleTimeout: 750 * time.Millisecond})
	go fe.Serve(l)
	addr := l.Addr().String()

	reg.InjectPanic("kws") // consumed by whichever submission runs next

	// The storm: swap as fast as the registry drains, each generation the
	// same weights under a fresh version and signature.
	stopSwaps := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for v := uint64(2); ; v++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			pkg, err := signer.Package("kws", v, model)
			if err != nil {
				t.Errorf("swap-storm package v%d: %v", v, err)
				return
			}
			if err := reg.Swap("kws", pkg); err != nil {
				t.Errorf("swap-storm swap v%d: %v", v, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	faulted, err := client.DialOptions("tcp", addr, client.Options{
		Tenant:    "chaos",
		Redial:    true,
		RedialMax: 8,
		Retry:     client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
		Seed:      p.Seed,
		DialFunc: func(network, a string) (net.Conn, error) {
			nc, err := net.DialTimeout(network, a, 2*time.Second)
			if err != nil {
				return nil, err
			}
			fc, _ := faultconn.New(nc, p)
			return fc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := client.DialOptions("tcp", addr, client.Options{
		Tenant: "steady",
		Retry:  client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var faultedOK atomic.Int32

	// Faulted traffic through the storm: failures are fine, but anything
	// that succeeds must carry a valid label.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			label, err := faulted.ClassifyDeadline(utts[i%len(utts)], time.Now().Add(3*time.Second))
			if err == nil && label >= 0 {
				faultedOK.Add(1)
			}
		}
	}()

	// Healthy traffic rides through every swap bit-exactly: the swap error
	// is retryable (it carries a retry-after hint), so no failure may leak.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			label, err := healthy.Classify(utts[i%len(utts)])
			if err != nil {
				t.Errorf("healthy classify %d during swap storm: %v", i, err)
				return
			}
			if label != want[i%len(utts)] {
				t.Errorf("healthy classify %d during swap storm: label %d, want %d",
					i, label, want[i%len(utts)])
				return
			}
		}
	}()

	// Exactly-once through the registry's direct path: jobs admitted here
	// straddle swap cutover flushes and must complete precisely once each.
	const direct = 8
	var completions atomic.Int32
	done := make(chan struct{})
	for i := 0; i < direct; i++ {
		if err := reg.Submit("kws", "", utts[i%len(utts)], time.Time{}, func(core.Result) {
			if completions.Add(1) == direct {
				close(done)
			}
		}); err != nil {
			t.Fatalf("direct submit %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("direct submissions incomplete through swap storm: %d of %d", completions.Load(), direct)
	}

	wg.Wait()
	time.Sleep(30 * time.Millisecond) // room for a duplicate to surface
	if n := completions.Load(); n != direct {
		t.Fatalf("accepted submissions completed %d times, want exactly %d", n, direct)
	}

	close(stopSwaps)
	swapWG.Wait()

	if reg.Swaps() == 0 {
		t.Fatal("swap storm landed zero swaps during the traffic")
	}
	if _, workers, live := reg.ShardHealth("kws"); live != workers {
		t.Fatalf("shard workers shrank under swap storm: %d live of %d", live, workers)
	}

	faulted.Close()
	healthy.Close()
	fe.Close()
	reg.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := settle(); n <= baseline+2 || time.Now().After(deadline) {
			if n > baseline+2 {
				t.Fatalf("goroutine leak after swap storm: %d, baseline %d", n, baseline)
			}
			break
		}
	}
}

// runPanicStormRound is the self-healing round of the chaos gate (ISSUE 9
// acceptance): a registry-backed front end serves faulted and healthy wire
// traffic while a background storm repeatedly kills shard 0's workers with
// injected panics, driving its circuit breaker open over and over. Asserted
// per round:
//
//   - healthy wire traffic stays bit-exact throughout — panicked attempts
//     surface retryable CodePanic and land on the surviving shard,
//   - every submission the registry admits completes exactly once (the
//     breaker sheds only at admission, never admitted work),
//   - the storm really tripped a breaker at least once (Registry.Health),
//   - after the storm stops, the supervisor rebuilds back to full shard
//     strength: every breaker closed, every worker live,
//   - tearing everything down returns the goroutine count to the round's
//     own baseline.
func runPanicStormRound(t *testing.T, p faultconn.Profile, model *tflm.Model, utts [][]int16, want []int, settle func() int) {
	baseline := settle()

	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"kws": {Model: model, Version: 1},
	}, core.RegistryConfig{
		Shards:        2,
		Server:        core.ServerConfig{Workers: 2, Queue: 8},
		DefaultTenant: core.TenantConfig{MaxQueue: 256},
		Breaker: core.BreakerConfig{
			Threshold:    2,
			Cooldown:     2 * time.Millisecond,
			CooldownMax:  20 * time.Millisecond,
			RebuildAfter: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEndRegistry(reg, netfront.Config{ReadIdleTimeout: 750 * time.Millisecond})
	go fe.Serve(l)
	addr := l.Addr().String()

	// The storm: keep shard 0's next submission booby-trapped so its worker
	// panics again and again — consecutive hard failures trip the breaker,
	// and persistent trips force supervisor rebuilds mid-traffic.
	stopStorm := make(chan struct{})
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for {
			select {
			case <-stopStorm:
				return
			default:
			}
			reg.InjectPanicShard("kws", 0)
			time.Sleep(time.Millisecond)
		}
	}()

	faulted, err := client.DialOptions("tcp", addr, client.Options{
		Tenant:    "chaos",
		Redial:    true,
		RedialMax: 8,
		Retry:     client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
		Seed:      p.Seed,
		DialFunc: func(network, a string) (net.Conn, error) {
			nc, err := net.DialTimeout(network, a, 2*time.Second)
			if err != nil {
				return nil, err
			}
			fc, _ := faultconn.New(nc, p)
			return fc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The healthy connection also hedges: a request parked behind the dying
	// shard is answered by its duplicate on the survivor — the hedging
	// contract exercised under real faults.
	healthy, err := client.DialOptions("tcp", addr, client.Options{
		Tenant: "steady",
		Retry:  client.RetryPolicy{Attempts: 12, Base: time.Millisecond, Max: 8 * time.Millisecond},
		Hedge:  client.HedgePolicy{Delay: 25 * time.Millisecond, Max: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var faultedOK atomic.Int32

	// Faulted traffic through the storm: failures are fine, but anything
	// that succeeds must carry a valid label.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			label, err := faulted.ClassifyDeadline(utts[i%len(utts)], time.Now().Add(3*time.Second))
			if err == nil && label >= 0 {
				faultedOK.Add(1)
			}
		}
	}()

	// Healthy traffic rides through the panics bit-exactly: CodePanic is
	// retryable, the tripped shard leaves rotation, the survivor answers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			label, err := healthy.Classify(utts[i%len(utts)])
			if err != nil {
				t.Errorf("healthy classify %d during panic storm: %v", i, err)
				return
			}
			if label != want[i%len(utts)] {
				t.Errorf("healthy classify %d during panic storm: label %d, want %d",
					i, label, want[i%len(utts)])
				return
			}
		}
	}()

	// Exactly-once through the registry's direct path: jobs admitted here
	// may land on the panicking shard (their callback then reports the
	// panic error) but each must complete precisely once — the breaker is
	// never allowed to drop admitted work.
	const direct = 8
	var completions atomic.Int32
	done := make(chan struct{})
	for i := 0; i < direct; i++ {
		if err := reg.Submit("kws", "", utts[i%len(utts)], time.Time{}, func(core.Result) {
			if completions.Add(1) == direct {
				close(done)
			}
		}); err != nil {
			t.Fatalf("direct submit %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("direct submissions incomplete through panic storm: %d of %d", completions.Load(), direct)
	}

	wg.Wait()
	time.Sleep(30 * time.Millisecond) // room for a duplicate to surface
	if n := completions.Load(); n != direct {
		t.Fatalf("accepted submissions completed %d times, want exactly %d", n, direct)
	}

	close(stopStorm)
	stormWG.Wait()

	trips := uint64(0)
	for _, mh := range reg.Health() {
		for _, sh := range mh.Shards {
			trips += sh.Trips
		}
	}
	if trips == 0 {
		t.Fatal("panic storm never tripped a breaker")
	}

	// Self-healing: with the storm gone, the registry must return to full
	// shard strength — supervisor rebuilds plus half-open probes reclose
	// every breaker. Probes ride real submissions, so the poll keeps a
	// trickle of traffic flowing (exactly what production recovery looks
	// like: the breaker half-opens, the next request is the probe).
	recoverDeadline := time.Now().Add(10 * time.Second)
	for {
		probeDone := make(chan struct{})
		if err := reg.Submit("kws", "", utts[0], time.Time{}, func(core.Result) {
			close(probeDone)
		}); err == nil {
			<-probeDone
		}
		recovered := true
		for _, mh := range reg.Health() {
			for _, sh := range mh.Shards {
				if sh.State != core.BreakerClosed || sh.Live != sh.Workers {
					recovered = false
				}
			}
		}
		if recovered {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("registry never recovered to full shard strength: %+v", reg.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}

	faulted.Close()
	healthy.Close()
	fe.Close()
	reg.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := settle(); n <= baseline+2 || time.Now().After(deadline) {
			if n > baseline+2 {
				t.Fatalf("goroutine leak after panic storm: %d, baseline %d", n, baseline)
			}
			break
		}
	}
}
