package netfront_test

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/netfront/faultconn"
)

// TestServerSurvivesFaultMatrix is the chaos gate (ISSUE 6 acceptance, run
// under -race by `make chaos`): for every canonical fault profile —
// latency spikes, partial writes, mid-frame resets, stalls, bit
// corruption — a client speaking through a faulted connection must never
// take the server down. Per profile round it asserts that
//
//   - the server keeps serving a concurrent healthy connection with
//     bit-exact labels,
//   - every submission the server accepts completes exactly once (counted
//     through the direct SubmitFunc path),
//   - an injected worker panic mid-round is survived with the pool at full
//     strength after, and
//   - goroutine count returns to baseline once the round's clients are
//     gone — no leaked read loops, workers, or timers.
func TestServerSurvivesFaultMatrix(t *testing.T) {
	model, utts, want := testFixture(t, 4)
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 2, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A short read-idle timeout keeps corrupted length prefixes (the server
	// parks waiting for a body that never comes) from stalling the round.
	fe := netfront.NewFrontEnd(srv, netfront.Config{ReadIdleTimeout: 750 * time.Millisecond})
	go fe.Serve(l)
	defer fe.Close()
	addr := l.Addr().String()

	settle := func() int {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		return runtime.NumGoroutine()
	}
	baseline := settle()

	for _, p := range faultconn.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			panicsBefore := srv.Panics()
			srv.InjectPanic() // consumed by whichever submission runs next

			faulted, err := client.DialOptions("tcp", addr, client.Options{
				Redial:    true,
				RedialMax: 8,
				Retry:     client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
				Seed:      p.Seed,
				DialFunc: func(network, a string) (net.Conn, error) {
					nc, err := net.DialTimeout(network, a, 2*time.Second)
					if err != nil {
						return nil, err
					}
					fc, _ := faultconn.New(nc, p)
					return fc, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			healthy, err := client.DialOptions("tcp", addr, client.Options{
				// The injected panic may land on this connection's request;
				// CodePanic is retryable, so a retry policy absorbs it.
				Retry: client.RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 8 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			var faultedOK atomic.Int32

			// Faulted traffic: failures are expected (that is the point),
			// but every failure must be a structured, known error — and the
			// server must shrug it all off.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 12; i++ {
					label, err := faulted.ClassifyDeadline(utts[i%len(utts)], time.Now().Add(3*time.Second))
					if err == nil && label >= 0 {
						faultedOK.Add(1)
					}
				}
			}()

			// Healthy traffic, concurrently: bit-exact labels throughout.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					label, err := healthy.Classify(utts[i%len(utts)])
					if err != nil {
						t.Errorf("healthy classify %d during %q faults: %v", i, p.Name, err)
						return
					}
					if label != want[i%len(utts)] {
						t.Errorf("healthy classify %d during %q faults: label %d, want %d",
							i, p.Name, label, want[i%len(utts)])
						return
					}
				}
			}()

			// Exactly-once: submissions accepted through the direct path
			// complete precisely one callback each, faults notwithstanding.
			const direct = 8
			var completions atomic.Int32
			done := make(chan struct{})
			for i := 0; i < direct; i++ {
				if err := srv.SubmitFunc(utts[i%len(utts)], func(core.Result) {
					if completions.Add(1) == direct {
						close(done)
					}
				}); err != nil {
					t.Fatalf("direct submit %d: %v", i, err)
				}
			}
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("direct submissions incomplete: %d of %d", completions.Load(), direct)
			}

			wg.Wait()
			time.Sleep(30 * time.Millisecond) // room for a duplicate to surface
			if n := completions.Load(); n != direct {
				t.Fatalf("accepted submissions completed %d times, want exactly %d", n, direct)
			}

			// The injected panic was consumed somewhere above; the pool must
			// be at full strength regardless.
			if srv.Panics() != panicsBefore+1 {
				// Not fatal: heavy fault rounds can starve the injection
				// until the next round's traffic. But the pool must be full
				// either way.
				t.Logf("injected panic not yet consumed in round %q", p.Name)
			}
			if live, workers := srv.LiveWorkers(), srv.Workers(); live != workers {
				t.Fatalf("worker pool shrank under %q faults: %d live of %d", p.Name, live, workers)
			}

			faulted.Close()
			healthy.Close()

			// Goroutines return to baseline once the round's conns unwind.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if n := settle(); n <= baseline+2 || time.Now().After(deadline) {
					if n > baseline+2 {
						t.Fatalf("goroutine leak under %q faults: %d, baseline %d", p.Name, n, baseline)
					}
					break
				}
			}
		})
	}

	// The matrix done, the server is still a working server.
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, u := range utts {
		label, err := c.Classify(u)
		if err != nil && errors.Is(err, client.ErrBusy) {
			label, err = c.Classify(u)
		}
		if err != nil || label != want[i] {
			t.Fatalf("post-matrix classify %d: label=%d err=%v, want %d", i, label, err, want[i])
		}
	}
}
