// Package faultconn is the chaos-injection harness for the netfront edge:
// a deterministic, seed-driven net.Conn wrapper that injects the failure
// modes of a hostile or flaky network — latency spikes, partial writes,
// mid-frame connection resets, stalls, and bit-corrupted frames — into an
// otherwise healthy connection.
//
// Faults are injected on the write path (the data this endpoint sends),
// which exercises both directions of a protocol: wrap the client side of a
// connection and the server receives corrupted, truncated, or late frames;
// the client in turn experiences resets and stalls on its own sends. Every
// decision is drawn from a private rand.Rand seeded by Profile.Seed, so a
// given (profile, traffic) pair replays the same fault schedule — chaos
// tests stay reproducible and debuggable.
//
// The wrapper is used by TestServerSurvivesFaultMatrix (package netfront)
// via client Options.DialFunc, and is exported so integration harnesses can
// aim the same faults at real deployments.
package faultconn

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes one fault mix. Probabilities are per-Write, in [0, 1];
// zero-value fields inject nothing, so the zero Profile is a transparent
// wrapper. Faults compose: a single Write may be delayed, truncated, and
// corrupted when several draws fire.
type Profile struct {
	// Name labels the profile in test output.
	Name string
	// Seed drives the deterministic fault schedule; 0 means 1.
	Seed int64

	// LatencyProb is the chance a Write is delayed by a uniform draw from
	// (0, LatencyMax].
	LatencyProb float64
	// LatencyMax bounds an injected delay; <= 0 with LatencyProb > 0 means
	// 5ms.
	LatencyMax time.Duration

	// PartialWriteProb is the chance a Write sends only a prefix (at least
	// one byte) to the peer and reports io.ErrShortWrite with the short
	// count — the peer sees a truncated, never-completed frame.
	PartialWriteProb float64

	// StallProb is the chance a Write first stalls for Stall — long enough
	// to trip read-idle deadlines when configured aggressively.
	StallProb float64
	// Stall is the injected stall length; <= 0 with StallProb > 0 means
	// 20ms.
	Stall time.Duration

	// ResetProb is the chance a Write closes the connection mid-frame
	// instead of sending, surfacing as a peer reset / unexpected EOF.
	ResetProb float64

	// CorruptProb is the chance a Write flips one random bit of the
	// payload before sending — frames that parse wrong or not at all.
	CorruptProb float64

	// SwapStorm asks the harness to loop hot model swaps (core.Registry
	// Swap) behind the server while this profile's faults fire — the
	// swap + fault overlap round of the chaos gate. The Conn itself
	// injects nothing extra for it; the flag is directions to the test
	// driving the matrix (TestServerSurvivesFaultMatrix).
	SwapStorm bool

	// PanicStorm asks the harness to repeatedly kill one registry shard
	// (core.Registry InjectPanicShard) while this profile's transport
	// faults fire — the self-healing round of the chaos gate: the shard's
	// breaker must trip, traffic must keep serving bit-exactly on the
	// survivors, and the supervisor must rebuild back to full strength
	// once the storm stops. Like SwapStorm, the Conn itself injects
	// nothing extra for it.
	PanicStorm bool
}

// Stats counts the faults a Conn actually injected, one counter per fault
// class. Read them after the traffic to assert a profile really exercised
// its fault (a probability can otherwise silently round to never).
type Stats struct {
	// Latencies counts injected delays.
	Latencies atomic.Uint64
	// Partials counts truncated writes.
	Partials atomic.Uint64
	// Stalls counts injected stalls.
	Stalls atomic.Uint64
	// Resets counts injected mid-frame closes.
	Resets atomic.Uint64
	// Corruptions counts bit flips.
	Corruptions atomic.Uint64
}

// Profiles returns the canonical fault matrix — one profile per fault
// class plus a mixed profile — with fixed seeds. TestServerSurvivesFaultMatrix
// runs every entry; integration harnesses can reuse the same matrix.
func Profiles() []Profile {
	return []Profile{
		{Name: "latency", Seed: 11, LatencyProb: 0.5, LatencyMax: 2 * time.Millisecond},
		{Name: "partial-write", Seed: 12, PartialWriteProb: 0.25},
		{Name: "reset", Seed: 13, ResetProb: 0.08},
		{Name: "stall", Seed: 14, StallProb: 0.15, Stall: 10 * time.Millisecond},
		{Name: "corrupt", Seed: 15, CorruptProb: 0.25},
		{
			Name: "mixed", Seed: 16,
			LatencyProb: 0.2, LatencyMax: time.Millisecond,
			PartialWriteProb: 0.05, ResetProb: 0.03, CorruptProb: 0.05,
		},
		{
			Name: "swap-storm", Seed: 17,
			LatencyProb: 0.2, LatencyMax: time.Millisecond,
			PartialWriteProb: 0.05, ResetProb: 0.03, CorruptProb: 0.05,
			SwapStorm: true,
		},
		{
			Name: "panic-storm", Seed: 18,
			LatencyProb: 0.2, LatencyMax: time.Millisecond,
			PartialWriteProb: 0.05, ResetProb: 0.03, CorruptProb: 0.05,
			PanicStorm: true,
		},
	}
}

// Conn wraps a net.Conn with fault injection per its Profile. Reads pass
// through untouched; Writes may be delayed, truncated, corrupted, or turn
// into a connection reset. Safe for the usual net.Conn concurrency (one
// reader, one writer, Close from anywhere).
type Conn struct {
	net.Conn
	profile Profile
	stats   *Stats

	mu  sync.Mutex // rand.Rand is not goroutine-safe
	rng *rand.Rand
}

// New wraps nc with fault injection driven by p. The returned Stats is
// shared with the Conn and updated as faults fire.
func New(nc net.Conn, p Profile) (*Conn, *Stats) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	if p.LatencyProb > 0 && p.LatencyMax <= 0 {
		p.LatencyMax = 5 * time.Millisecond
	}
	if p.StallProb > 0 && p.Stall <= 0 {
		p.Stall = 20 * time.Millisecond
	}
	s := &Stats{}
	return &Conn{Conn: nc, profile: p, stats: s, rng: rand.New(rand.NewSource(seed))}, s
}

// draw runs one probability check and, when it fires, returns a uniform
// int64 in [0, n) for the fault's parameter (n <= 0 returns 0).
func (c *Conn) draw(prob float64, n int64) (bool, int64) {
	if prob <= 0 {
		return false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= prob {
		return false, 0
	}
	if n <= 0 {
		return true, 0
	}
	return true, c.rng.Int63n(n)
}

// Write injects the profile's faults, then forwards to the wrapped conn.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.profile
	if ok, d := c.draw(p.LatencyProb, int64(p.LatencyMax)); ok {
		c.stats.Latencies.Add(1)
		time.Sleep(time.Duration(d) + 1)
	}
	if ok, _ := c.draw(p.StallProb, 0); ok {
		c.stats.Stalls.Add(1)
		time.Sleep(p.Stall)
	}
	if ok, _ := c.draw(p.ResetProb, 0); ok {
		c.stats.Resets.Add(1)
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if len(b) > 0 {
		if ok, bit := c.draw(p.CorruptProb, int64(len(b))*8); ok {
			c.stats.Corruptions.Add(1)
			// Corrupt a copy: the caller owns b and may retry it.
			cp := make([]byte, len(b))
			copy(cp, b)
			cp[bit/8] ^= 1 << (bit % 8)
			b = cp
		}
		if ok, keep := c.draw(p.PartialWriteProb, int64(len(b))); ok && int(keep)+1 < len(b) {
			c.stats.Partials.Add(1)
			n, err := c.Conn.Write(b[:keep+1])
			if err != nil {
				return n, err
			}
			return n, io.ErrShortWrite
		}
	}
	return c.Conn.Write(b)
}
