package faultconn

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// memConn is a net.Conn double that records writes and counts closes.
type memConn struct {
	buf    bytes.Buffer
	closed int
}

func (m *memConn) Read(b []byte) (int, error)       { return 0, nil }
func (m *memConn) Write(b []byte) (int, error)      { return m.buf.Write(b) }
func (m *memConn) Close() error                     { m.closed++; return nil }
func (m *memConn) LocalAddr() net.Addr              { return nil }
func (m *memConn) RemoteAddr() net.Addr             { return nil }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// run pushes a fixed traffic pattern through a freshly seeded Conn and
// returns the bytes that reached the "peer" plus the fault counts.
func run(t *testing.T, p Profile) ([]byte, [5]uint64) {
	t.Helper()
	m := &memConn{}
	fc, st := New(m, p)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 200; i++ {
		fc.Write(payload)
	}
	return m.buf.Bytes(), [5]uint64{
		st.Latencies.Load(), st.Partials.Load(), st.Stalls.Load(),
		st.Resets.Load(), st.Corruptions.Load(),
	}
}

// TestDeterministicSchedule pins the harness's core promise: the same seed
// and traffic replay the same fault schedule, byte for byte — failed chaos
// runs are reproducible.
func TestDeterministicSchedule(t *testing.T) {
	p := Profile{
		Name: "det", Seed: 42,
		LatencyProb: 0.3, LatencyMax: time.Microsecond,
		PartialWriteProb: 0.2, CorruptProb: 0.3,
	}
	b1, s1 := run(t, p)
	b2, s2 := run(t, p)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different wire bytes (%d vs %d)", len(b1), len(b2))
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different fault counts: %v vs %v", s1, s2)
	}
	if s1[1] == 0 || s1[4] == 0 {
		t.Fatalf("profile injected no partials/corruptions: %v", s1)
	}
	_, s3 := run(t, Profile{Name: "det2", Seed: 43, PartialWriteProb: 0.2, CorruptProb: 0.3})
	if s3 == s2 {
		t.Fatal("different seeds produced identical fault counts (suspicious)")
	}
}

// TestZeroProfileIsTransparent pins that the zero Profile forwards
// everything untouched — the wrapper itself must not perturb traffic.
func TestZeroProfileIsTransparent(t *testing.T) {
	b, st := run(t, Profile{Name: "zero"})
	if len(b) != 200*64 {
		t.Fatalf("%d bytes reached the peer, want %d", len(b), 200*64)
	}
	for i, v := range b {
		if v != byte(i%64) {
			t.Fatalf("byte %d corrupted: %d", i, v)
		}
	}
	if st != ([5]uint64{}) {
		t.Fatalf("zero profile injected faults: %v", st)
	}
}

// TestResetClosesConn pins that an injected reset really closes the
// underlying conn and fails the write.
func TestResetClosesConn(t *testing.T) {
	m := &memConn{}
	fc, st := New(m, Profile{Name: "reset", Seed: 7, ResetProb: 1})
	if _, err := fc.Write([]byte{1, 2, 3}); err == nil {
		t.Fatal("reset write reported success")
	}
	if m.closed == 0 {
		t.Fatal("reset did not close the underlying conn")
	}
	if st.Resets.Load() != 1 {
		t.Fatalf("Resets=%d, want 1", st.Resets.Load())
	}
}

// TestProfilesCoverEveryFaultClass pins that the canonical matrix has a
// profile exercising each fault class.
func TestProfilesCoverEveryFaultClass(t *testing.T) {
	var lat, part, stall, reset, corrupt, swap, panicStorm bool
	for _, p := range Profiles() {
		lat = lat || p.LatencyProb > 0
		part = part || p.PartialWriteProb > 0
		stall = stall || p.StallProb > 0
		reset = reset || p.ResetProb > 0
		corrupt = corrupt || p.CorruptProb > 0
		// The storm entries must also inject transport faults: those rounds
		// exist to overlap swaps/panics WITH faults, not to test either alone.
		swap = swap || (p.SwapStorm && (p.LatencyProb > 0 || p.ResetProb > 0 || p.CorruptProb > 0))
		panicStorm = panicStorm || (p.PanicStorm && (p.LatencyProb > 0 || p.ResetProb > 0 || p.CorruptProb > 0))
	}
	if !(lat && part && stall && reset && corrupt && swap && panicStorm) {
		t.Fatalf("matrix misses a fault class: latency=%v partial=%v stall=%v reset=%v corrupt=%v swap-storm=%v panic-storm=%v",
			lat, part, stall, reset, corrupt, swap, panicStorm)
	}
}
