package netfront

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config parameterizes a FrontEnd.
type Config struct {
	// MaxBody caps a received frame's body; <= 0 means DefaultMaxBody. A
	// frame declaring more closes its connection.
	MaxBody int
	// WriteTimeout bounds every response write; <= 0 means
	// DefaultWriteTimeout. Completion callbacks run on core.Server worker
	// goroutines, so a peer that stops reading would otherwise park workers
	// in socket writes until the whole pool wedges — on timeout the
	// connection is closed instead and the slow peer pays, not the pool.
	WriteTimeout time.Duration
	// ReadIdleTimeout bounds how long a connection may go without
	// completing a frame before it is closed: the read-side twin of
	// WriteTimeout, covering both silent peers (idle-connection reaping)
	// and peers that trickle a frame byte-by-byte (a slowloris cannot pin
	// the handler goroutine forever). 0 means DefaultReadIdleTimeout;
	// negative disables the deadline.
	ReadIdleTimeout time.Duration
	// MaxStreams caps concurrently open streams per connection, so one
	// peer cannot exhaust the box with per-stream state (each open stream
	// pins a dsp.Streamer plus a fingerprint-buffer pool). Opening beyond
	// the cap is a per-request CodeLimitExceeded error, not a connection
	// error. <= 0 means DefaultMaxStreams.
	MaxStreams int
	// QueueDeadline, when positive, is applied to every one-shot request
	// as a core queue deadline: a request still queued after this long is
	// shed with CodeDeadlineExceeded instead of occupying a worker — the
	// load-shedding face of backpressure for latency-sensitive callers.
	QueueDeadline time.Duration
	// BusyRetryAfter is the retry hint carried by BUSY and other transient
	// failures; <= 0 means DefaultBusyRetryAfter.
	BusyRetryAfter time.Duration
	// DefaultModel is the model id served to connections that never send a
	// FrameHello (or hello with an empty model name). Only meaningful for
	// a registry front end (NewFrontEndRegistry); empty means the
	// registry's sole model when it serves exactly one, otherwise requests
	// without a hello-bound model fail with CodeBadRequest.
	DefaultModel string
}

// DefaultWriteTimeout is the response-write bound when Config.WriteTimeout
// is unset: generous for any live peer, finite for a stalled one.
const DefaultWriteTimeout = 30 * time.Second

// DefaultReadIdleTimeout is the between-frame read bound when
// Config.ReadIdleTimeout is unset: generous for any live client (streams
// send continuously, one-shot callers several orders of magnitude faster),
// finite for an abandoned socket.
const DefaultReadIdleTimeout = 5 * time.Minute

// DefaultMaxStreams is the per-connection open-stream cap when
// Config.MaxStreams is unset.
const DefaultMaxStreams = 64

// DefaultBusyRetryAfter is the BUSY retry hint when Config.BusyRetryAfter
// is unset: long enough for a queue slot to open at typical service rates,
// short enough not to idle a loaded client.
const DefaultBusyRetryAfter = 5 * time.Millisecond

// backend abstracts what a FrontEnd serves: a single core.Server
// (NewFrontEnd, (model, tenant) ignored) or a multi-model multi-tenant
// core.Registry (NewFrontEndRegistry). The conn handlers speak only this
// interface, so routing and admission live behind it.
type backend interface {
	// submit enqueues one one-shot classification without blocking the
	// read loop; backpressure surfaces as core.ErrQueueFull /
	// core.ErrTenantBusy.
	submit(model, tenant string, samples []int16, deadline time.Time, fn func(core.Result)) error
	// openStream opens a stream routed by (model, tenant).
	openStream(model, tenant string) (backendStream, error)
	// runBatch classifies a whole batch synchronously.
	runBatch(model, tenant string, utts [][]int16) []core.Result
	// resolveModel validates a hello-supplied model name ("" = default)
	// and returns the bound name plus its current version.
	resolveModel(model string) (bound string, version uint64, err error)
	// health returns the backend's per-model, per-shard health snapshot
	// (the FrameHealth admin query).
	health() []core.ModelHealth
}

// backendStream is the stream face of a backend: what connStream needs
// from core.Stream / core.RegistryStream.
type backendStream interface {
	// OnResult switches the stream to in-hop-order callback delivery.
	OnResult(fn func(hop uint64, r core.Result))
	// Hops returns how many inference hops have been submitted.
	Hops() uint64
	// Submit advances the stream by one audio chunk.
	Submit(chunk []int16) ([]*core.Pending, error)
}

// serverBackend adapts one core.Server: the single-model single-queue
// serving shape netfront launched with. model and tenant are accepted and
// ignored (a hello naming a non-empty model is rejected at resolveModel).
type serverBackend struct {
	srv *core.Server
}

func (b serverBackend) submit(model, tenant string, samples []int16, deadline time.Time, fn func(core.Result)) error {
	return b.srv.TrySubmitFuncDeadline(samples, deadline, fn)
}

func (b serverBackend) openStream(model, tenant string) (backendStream, error) {
	return b.srv.OpenStream()
}

func (b serverBackend) runBatch(model, tenant string, utts [][]int16) []core.Result {
	return b.srv.RunBatch(utts)
}

func (b serverBackend) resolveModel(model string) (string, uint64, error) {
	if model != "" {
		return "", 0, core.ErrUnknownModel
	}
	return "", 0, nil
}

func (b serverBackend) health() []core.ModelHealth {
	// A bare server has no breakers; synthesize one always-closed pseudo
	// shard so the admin query still reports worker liveness.
	return []core.ModelHealth{{
		Shards: []core.ShardStatus{{
			State:   core.BreakerClosed,
			Workers: b.srv.Workers(),
			Live:    b.srv.LiveWorkers(),
		}},
	}}
}

// registryBackend adapts a core.Registry: hello-bound (model, tenant)
// select the registry entry and the admission queue.
type registryBackend struct {
	reg *core.Registry
	def string // default model for connections that never bind one
}

func (b registryBackend) bound(model string) string {
	if model == "" {
		return b.def
	}
	return model
}

func (b registryBackend) submit(model, tenant string, samples []int16, deadline time.Time, fn func(core.Result)) error {
	return b.reg.Submit(b.bound(model), tenant, samples, deadline, fn)
}

func (b registryBackend) openStream(model, tenant string) (backendStream, error) {
	return b.reg.OpenStream(b.bound(model), tenant)
}

func (b registryBackend) runBatch(model, tenant string, utts [][]int16) []core.Result {
	return b.reg.RunBatch(b.bound(model), tenant, utts)
}

func (b registryBackend) resolveModel(model string) (string, uint64, error) {
	model = b.bound(model)
	v, ok := b.reg.ModelVersion(model)
	if !ok {
		return "", 0, core.ErrUnknownModel
	}
	return model, v, nil
}

func (b registryBackend) health() []core.ModelHealth { return b.reg.Health() }

// FrontEnd serves the netfront wire protocol over any net.Listener,
// multiplexing every connection onto one shared inference backend — a
// single core.Server (NewFrontEnd) or a multi-model core.Registry
// (NewFrontEndRegistry). Run Serve per listener (each blocks, like
// http.Serve), and Close to stop: Close closes the listeners and
// connections but not the backend, whose lifetime belongs to the caller.
type FrontEnd struct {
	be  backend
	cfg Config

	draining atomic.Bool // Shutdown in progress: stop accepting new streams

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewFrontEnd wraps one core.Server; the zero Config is ready to use.
// Connections get exactly the single-model semantics of wire protocol v2;
// a FrameHello naming a non-empty model is rejected with CodeBadRequest.
func NewFrontEnd(srv *core.Server, cfg Config) *FrontEnd {
	return newFrontEnd(serverBackend{srv: srv}, cfg)
}

// NewFrontEndRegistry wraps a core.Registry: connections route by their
// hello-bound (model, tenant), admission control is the registry's
// per-tenant weighted fair queueing, and hot swaps surface as
// CodeModelSwapped stream errors with a retry hint. Connections that never
// send a hello serve Config.DefaultModel (or the registry's sole model)
// under the default tenant ("").
func NewFrontEndRegistry(reg *core.Registry, cfg Config) *FrontEnd {
	def := cfg.DefaultModel
	if def == "" {
		if ids := reg.Models(); len(ids) == 1 {
			def = ids[0]
		}
	}
	return newFrontEnd(registryBackend{reg: reg, def: def}, cfg)
}

func newFrontEnd(be backend, cfg Config) *FrontEnd {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.ReadIdleTimeout == 0 {
		cfg.ReadIdleTimeout = DefaultReadIdleTimeout
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = DefaultMaxStreams
	}
	if cfg.BusyRetryAfter <= 0 {
		cfg.BusyRetryAfter = DefaultBusyRetryAfter
	}
	return &FrontEnd{
		be:    be,
		cfg:   cfg,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*conn]struct{}),
	}
}

// ErrFrontEndClosed is returned by Serve after Close.
var ErrFrontEndClosed = errors.New("netfront: front end closed")

// Serve accepts connections on l until l fails or the front end is closed,
// handling each connection on its own goroutine. It always returns a
// non-nil error: ErrFrontEndClosed after Close, the accept error otherwise.
// Serve may be called concurrently for several listeners (e.g. one TCP, one
// Unix socket) sharing the same core server.
func (f *FrontEnd) Serve(l net.Listener) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		l.Close()
		return ErrFrontEndClosed
	}
	f.lns[l] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.lns, l)
		f.mu.Unlock()
		l.Close()
	}()
	var backoff time.Duration
	for {
		nc, err := l.Accept()
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed || f.draining.Load() {
				return ErrFrontEndClosed
			}
			// Transient accept failures (EMFILE under connection load,
			// ECONNABORTED) must not kill the listener for good: back off
			// and retry, as net/http does. Temporary is deprecated but
			// remains the only signal the net package offers for this.
			//nolint:staticcheck
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		c := newConn(f, nc)
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			nc.Close()
			return ErrFrontEndClosed
		}
		f.conns[c] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			c.serve()
			f.mu.Lock()
			delete(f.conns, c)
			f.mu.Unlock()
		}()
	}
}

// Close stops the front end: listeners close (their Serve calls return),
// open connections close, and Close waits for every connection handler to
// exit. In-flight submissions still complete on the core server — their
// response writes fail harmlessly against the closed sockets. Idempotent.
func (f *FrontEnd) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for l := range f.lns {
		l.Close()
	}
	for c := range f.conns {
		c.nc.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// ErrDrainTimeout is returned by Shutdown when the grace period expired
// with connections still busy; those connections were force-closed.
var ErrDrainTimeout = errors.New("netfront: drain deadline exceeded")

// Shutdown is the graceful form of Close: it stops accepting new
// connections and new stream opens immediately, then lets existing
// connections finish what they are doing — in-flight one-shots and batches
// complete, open streams keep classifying until their peers close them —
// closing each connection as it goes quiet. Connections still busy when the
// grace period expires are force-closed and Shutdown returns
// ErrDrainTimeout; a clean drain returns nil. Either way, when Shutdown
// returns every connection handler has exited and later Serve calls return
// ErrFrontEndClosed. The core.Server is left to its owner (close it after
// Shutdown so drained submissions complete first). Concurrent with and
// idempotent against Close.
func (f *FrontEnd) Shutdown(grace time.Duration) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.draining.Store(true)
	for l := range f.lns {
		l.Close()
	}
	f.mu.Unlock()

	deadline := time.Now().Add(grace)
	drained := false
	for {
		f.mu.Lock()
		for c := range f.conns {
			if c.quiet() {
				// Closing the socket makes the conn's read loop exit and
				// deregister itself. A request racing this close sees a
				// dropped connection and must retry elsewhere — the
				// documented drain contract.
				c.nc.Close()
			}
		}
		n := len(f.conns)
		f.mu.Unlock()
		if n == 0 {
			drained = true
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.Close()
	if !drained {
		return ErrDrainTimeout
	}
	return nil
}

// reqCtx is the pooled per-request state of the one-shot path: the sample
// buffer handed to the core server and the pre-bound completion callback
// that writes the response. Pooling both (and binding fn exactly once, at
// construction) is what makes the connection's steady-state
// read→decode→submit path allocation-free.
type reqCtx struct {
	c     *conn
	reqID uint32
	buf   []int16
	fn    func(core.Result)
}

// complete is the reqCtx's core.Server callback: write the response, then
// recycle the context. The in-flight decrement balances handleUtterance's
// increment — it must run exactly once per accepted submission, which the
// core server's exactly-once completion contract guarantees.
func (rc *reqCtx) complete(r core.Result) {
	if r.Err != nil {
		rc.c.writeError(rc.reqID, r.Err)
	} else {
		rc.c.writeResult(FrameResult, rc.reqID, int32(r.Label))
	}
	rc.c.inflight.Add(-1)
	rc.c.putReq(rc)
}

// connStream is one open stream multiplexed on a connection: the underlying
// core stream plus the flush accounting that lets FrameStreamClose wait for
// every submitted hop's result to reach the wire before acknowledging.
type connStream struct {
	st        backendStream
	buf       []int16 // chunk decode scratch (Submit does not retain it)
	submitted uint64  // hops handed to the core server (read-loop owned)
	delivered atomic.Uint64
	flush     chan struct{} // cap 1: callback → closer wakeup
}

// conn is one protocol connection. The read loop (serve) owns hdr/body and
// the decode scratch; response writes — from the read loop and from worker
// callbacks — serialize on wmu and build frames in wbuf.
type conn struct {
	fe *FrontEnd
	nc net.Conn

	hdr     [HeaderLen]byte
	body    []byte
	streams map[uint32]*connStream
	reqFree chan *reqCtx

	// Hello binding (read-loop owned): the tenant whose admission queue
	// this connection's requests join, and the model they route to.
	// Zero values mean the backend's defaults (v2 behavior).
	tenant string
	model  string

	// Drain accounting (Shutdown): inflight counts accepted one-shot
	// submissions and in-progress batches whose responses have not been
	// written; nstreams mirrors len(streams) for goroutine-safe reads.
	inflight atomic.Int64
	nstreams atomic.Int32

	wmu  sync.Mutex
	wbuf []byte
}

// quiet reports whether the connection has no in-flight work and no open
// streams — the drain condition. Approximate by construction: a frame
// arriving between the check and the close loses the race and sees a
// dropped connection, which drain semantics allow.
func (c *conn) quiet() bool {
	return c.inflight.Load() == 0 && c.nstreams.Load() == 0
}

// reqPoolDepth bounds how many idle one-shot request contexts a connection
// keeps. Beyond it (more outstanding requests than the pool) contexts are
// allocated and dropped — correctness is unaffected, only allocation rate.
const reqPoolDepth = 64

func newConn(f *FrontEnd, nc net.Conn) *conn {
	return &conn{
		fe:      f,
		nc:      nc,
		streams: make(map[uint32]*connStream),
		reqFree: make(chan *reqCtx, reqPoolDepth),
	}
}

// getReq draws a pooled request context (allocating and binding its
// callback only on pool miss).
func (c *conn) getReq() *reqCtx {
	select {
	case rc := <-c.reqFree:
		return rc
	default:
		rc := &reqCtx{c: c}
		rc.fn = rc.complete
		return rc
	}
}

// putReq recycles a request context, dropping it when the pool is full.
func (c *conn) putReq(rc *reqCtx) {
	select {
	case c.reqFree <- rc:
	default:
	}
}

// serve is the connection's read loop: read one frame, decode, submit,
// repeat. It returns when the peer closes, a frame is malformed or
// oversized, or the front end shuts the socket. Stream results and one-shot
// results are written asynchronously by core worker callbacks; only BUSY,
// batch and stream-control replies are written from this loop.
func (c *conn) serve() {
	defer c.nc.Close()
	for {
		// The idle deadline covers the whole frame read: a silent peer is
		// reaped, and a peer trickling one frame byte-by-byte cannot hold
		// the handler past the deadline either.
		if d := c.fe.cfg.ReadIdleTimeout; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d))
		}
		typ, body, err := ReadFrame(c.nc, &c.hdr, c.body, c.fe.cfg.MaxBody)
		c.body = body[:cap(body)]
		if err != nil {
			// io.EOF between frames is the clean shutdown; everything else
			// (including a partial frame) just ends the connection — there
			// is no resync in a length-prefixed stream.
			return
		}
		switch typ {
		case FrameUtterance:
			if !c.handleUtterance(body) {
				return
			}
		case FrameStreamOpen:
			if !c.handleStreamOpen(body) {
				return
			}
		case FrameStreamChunk:
			if !c.handleStreamChunk(body) {
				return
			}
		case FrameStreamClose:
			if !c.handleStreamClose(body) {
				return
			}
		case FrameBatch:
			if !c.handleBatch(body) {
				return
			}
		case FrameHello:
			if !c.handleHello(body) {
				return
			}
		case FrameHealth:
			if !c.handleHealth(body) {
				return
			}
		default:
			return // unknown frame type: protocol error
		}
	}
}

// handleUtterance submits a one-shot classification. A full queue is
// reported as FrameBusy (with the retry-after hint) instead of blocking the
// read loop — the wire face of core.ErrQueueFull backpressure. When
// Config.QueueDeadline is set the submission carries it as a core queue
// deadline, so requests a loaded server cannot start in time are shed with
// CodeDeadlineExceeded instead of occupying a worker late.
func (c *conn) handleUtterance(body []byte) bool {
	reqID, rest, err := DecodeID(body)
	if err != nil {
		return false
	}
	rc := c.getReq()
	rc.reqID = reqID
	if rc.buf, err = DecodeSamples(rc.buf, rest); err != nil {
		c.putReq(rc)
		return false
	}
	var deadline time.Time
	if d := c.fe.cfg.QueueDeadline; d > 0 {
		deadline = time.Now().Add(d)
	}
	c.inflight.Add(1)
	switch err := c.fe.be.submit(c.model, c.tenant, rc.buf, deadline, rc.fn); {
	case err == nil:
		return true
	case errors.Is(err, core.ErrQueueFull), errors.Is(err, core.ErrTenantBusy):
		c.inflight.Add(-1)
		c.writeBusy(reqID, c.hintFor(err))
		c.putReq(rc)
		return true
	default:
		c.inflight.Add(-1)
		c.writeError(reqID, err)
		c.putReq(rc)
		return true
	}
}

// handleStreamOpen opens a stream under the peer's id. Reusing a live id,
// exceeding the per-connection stream cap, and opening during drain are
// per-request errors, not connection errors.
func (c *conn) handleStreamOpen(body []byte) bool {
	id, rest, err := DecodeID(body)
	if err != nil || len(rest) != 0 {
		return false
	}
	if _, live := c.streams[id]; live {
		c.writeErrorCode(id, CodeBadRequest, 0, "netfront: stream id already open")
		return true
	}
	if len(c.streams) >= c.fe.cfg.MaxStreams {
		c.writeErrorCode(id, CodeLimitExceeded, 0, "netfront: per-connection stream limit reached")
		return true
	}
	if c.fe.draining.Load() {
		c.writeErrorCode(id, CodeUnavailable, 0, "netfront: server draining")
		return true
	}
	st, err := c.fe.be.openStream(c.model, c.tenant)
	if err != nil {
		c.writeError(id, err)
		return true
	}
	cs := &connStream{st: st, flush: make(chan struct{}, 1)}
	st.OnResult(func(hop uint64, r core.Result) {
		if r.Err != nil {
			c.writeStreamError(id, hop, r.Err)
		} else {
			c.writeStreamResult(id, hop, int32(r.Label))
		}
		cs.delivered.Add(1)
		select {
		case cs.flush <- struct{}{}:
		default:
		}
	})
	c.streams[id] = cs
	c.nstreams.Store(int32(len(c.streams)))
	return true
}

// handleStreamChunk advances a stream. Unlike one-shot requests the submit
// may block — on the stream's fingerprint pool or the submission queue —
// which is the per-stream flow control: the peer cannot outrun its own
// results by more than the stream's buffer budget.
func (c *conn) handleStreamChunk(body []byte) bool {
	id, rest, err := DecodeID(body)
	if err != nil {
		return false
	}
	cs, ok := c.streams[id]
	if !ok {
		c.writeErrorCode(id, CodeBadRequest, 0, "netfront: chunk for unopened stream")
		return true
	}
	if cs.buf, err = DecodeSamples(cs.buf, rest); err != nil {
		return false
	}
	before := cs.st.Hops()
	_, err = cs.st.Submit(cs.buf)
	cs.submitted += cs.st.Hops() - before
	if err != nil {
		c.writeError(id, err)
	}
	return true
}

// handleStreamClose flushes and closes a stream: it waits until every
// submitted hop's callback has written its result, then acknowledges with
// the total hop count so the peer knows exactly how many results to expect.
func (c *conn) handleStreamClose(body []byte) bool {
	id, rest, err := DecodeID(body)
	if err != nil || len(rest) != 0 {
		return false
	}
	cs, ok := c.streams[id]
	if !ok {
		c.writeErrorCode(id, CodeBadRequest, 0, "netfront: close for unopened stream")
		return true
	}
	for cs.delivered.Load() < cs.submitted {
		<-cs.flush
	}
	delete(c.streams, id)
	c.nstreams.Store(int32(len(c.streams)))
	c.writeResult64(FrameStreamClosed, id, cs.submitted)
	return true
}

// handleBatch classifies a whole batch synchronously: the read loop blocks
// until the batch completes, which is the batch face of backpressure (a
// batch peer has nothing to pipeline behind its own batch anyway).
func (c *conn) handleBatch(body []byte) bool {
	reqID, utts, err := DecodeBatch(body)
	if err != nil {
		return false
	}
	c.inflight.Add(1)
	results := c.fe.be.runBatch(c.model, c.tenant, utts)
	c.writeBatchResult(reqID, results)
	c.inflight.Add(-1)
	return true
}

// handleHello binds the connection to a (tenant, model) pair: later
// requests join that tenant's admission queue and route to that model. An
// unknown model is a per-request CodeBadRequest (the connection stays
// usable under its previous binding); success is acknowledged with the
// model's current version. A malformed hello closes the connection like
// any other unparseable frame.
func (c *conn) handleHello(body []byte) bool {
	id, tenant, model, err := DecodeHello(body)
	if err != nil {
		return false
	}
	bound, version, err := c.fe.be.resolveModel(model)
	if err != nil {
		c.writeError(id, err)
		return true
	}
	c.tenant = tenant
	c.model = bound
	c.writeResult64(FrameHelloAck, id, version)
	return true
}

// handleHealth answers the FrameHealth admin query with a FrameHealthAck
// carrying the backend's per-model, per-shard health snapshot. An admin
// path, not a hot path — the snapshot allocates.
func (c *conn) handleHealth(body []byte) bool {
	id, rest, err := DecodeID(body)
	if err != nil || len(rest) != 0 {
		return false
	}
	c.writeFrame(FrameHealthAck, AppendHealthAck(nil, id, c.fe.be.health()))
	return true
}

// send writes the assembled wbuf under a deadline; callers hold wmu. A
// failed or timed-out write closes the socket so every later write — and
// the read loop — fails fast instead of parking worker goroutines: workers
// must never be hostage to a peer that stopped reading.
func (c *conn) send() {
	c.nc.SetWriteDeadline(time.Now().Add(c.fe.cfg.WriteTimeout))
	if _, err := c.nc.Write(c.wbuf); err != nil {
		c.nc.Close()
	}
}

// writeFrame sends one frame built from payload under the write lock.
func (c *conn) writeFrame(typ byte, payload []byte) {
	c.wmu.Lock()
	c.wbuf = AppendFrameHeader(c.wbuf[:0], typ, len(payload))
	c.wbuf = append(c.wbuf, payload...)
	c.send()
	c.wmu.Unlock()
}

// writeBusy sends a FrameBusy carrying the given retry-after hint —
// computed from the backend's measured backlog when available, the
// configured constant otherwise.
func (c *conn) writeBusy(id uint32, retryAfter time.Duration) {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[0:4], id)
	binary.LittleEndian.PutUint32(p[4:8], uint32(retryAfter/time.Millisecond))
	c.writeFrame(FrameBusy, p[:])
}

// hintFor extracts the computed retry-after a core admission error carries
// (*core.TenantBusyError, *core.OverloadError), falling back to the
// configured BusyRetryAfter constant — the pre-self-healing behavior.
func (c *conn) hintFor(err error) time.Duration {
	var tb *core.TenantBusyError
	if errors.As(err, &tb) && tb.RetryAfter > 0 {
		return tb.RetryAfter
	}
	var oe *core.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		return oe.RetryAfter
	}
	return c.fe.cfg.BusyRetryAfter
}

// writeResult sends an id + int32 frame (FrameResult).
func (c *conn) writeResult(typ byte, id uint32, v int32) {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[0:4], id)
	binary.LittleEndian.PutUint32(p[4:8], uint32(v))
	c.writeFrame(typ, p[:])
}

// writeResult64 sends an id + uint64 frame (FrameStreamClosed).
func (c *conn) writeResult64(typ byte, id uint32, v uint64) {
	var p [12]byte
	binary.LittleEndian.PutUint32(p[0:4], id)
	binary.LittleEndian.PutUint64(p[4:12], v)
	c.writeFrame(typ, p[:])
}

// writeStreamResult sends one hop's result (FrameStreamResult).
func (c *conn) writeStreamResult(id uint32, hop uint64, label int32) {
	var p [16]byte
	binary.LittleEndian.PutUint32(p[0:4], id)
	binary.LittleEndian.PutUint64(p[4:12], hop)
	binary.LittleEndian.PutUint32(p[12:16], uint32(label))
	c.writeFrame(FrameStreamResult, p[:])
}

// codeFor maps a core-layer error onto its wire code and retry hint:
// transient failures (backpressure, shedding, a recovered panic) carry the
// configured retry-after so clients back off instead of hammering; terminal
// ones carry zero.
func (c *conn) codeFor(err error) (code uint16, retryAfter time.Duration) {
	switch {
	case errors.Is(err, core.ErrQueueFull):
		return CodeBusy, c.fe.cfg.BusyRetryAfter
	case errors.Is(err, core.ErrDeadlineExceeded):
		return CodeDeadlineExceeded, c.fe.cfg.BusyRetryAfter
	case errors.Is(err, core.ErrWorkerPanic):
		return CodePanic, c.fe.cfg.BusyRetryAfter
	case errors.Is(err, core.ErrTenantBusy):
		return CodeBusy, c.hintFor(err)
	case errors.Is(err, core.ErrOverloaded):
		// The queue-delay controller shed this tenant for exceeding its
		// fair share: unavailable *to this tenant right now*, retryable
		// after the computed backlog-drain hint.
		return CodeUnavailable, c.hintFor(err)
	case errors.Is(err, core.ErrModelSwapped):
		// The generation this request was bound to is gone but its
		// successor is live: worth retrying after the hint.
		return CodeModelSwapped, c.fe.cfg.BusyRetryAfter
	case errors.Is(err, core.ErrUnknownModel):
		return CodeBadRequest, 0
	case errors.Is(err, core.ErrServerClosed), errors.Is(err, core.ErrRegistryClosed):
		return CodeUnavailable, 0
	default:
		return CodeInternal, 0
	}
}

// writeError sends a FrameError for err, classified via codeFor.
func (c *conn) writeError(id uint32, err error) {
	code, retry := c.codeFor(err)
	c.writeErrorCode(id, code, retry, err.Error())
}

// writeErrorCode sends a FrameError with an explicit structured payload.
func (c *conn) writeErrorCode(id uint32, code uint16, retryAfter time.Duration, msg string) {
	c.wmu.Lock()
	c.wbuf = AppendFrameHeader(c.wbuf[:0], FrameError, 4+wireErrLen+len(msg))
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, id)
	c.wbuf = AppendWireError(c.wbuf, WireError{Code: code, RetryAfter: retryAfter, Msg: msg})
	c.send()
	c.wmu.Unlock()
}

// writeStreamError sends a FrameStreamError: a per-hop failure that keeps
// its hop number, so the peer can tell exactly which result is missing
// from the hop sequence. The payload is structured like FrameError.
func (c *conn) writeStreamError(id uint32, hop uint64, err error) {
	code, retry := c.codeFor(err)
	msg := err.Error()
	c.wmu.Lock()
	c.wbuf = AppendFrameHeader(c.wbuf[:0], FrameStreamError, 12+wireErrLen+len(msg))
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, id)
	c.wbuf = binary.LittleEndian.AppendUint64(c.wbuf, hop)
	c.wbuf = AppendWireError(c.wbuf, WireError{Code: code, RetryAfter: retry, Msg: msg})
	c.send()
	c.wmu.Unlock()
}

// writeBatchResult sends a FrameBatchResult; errored utterances report
// label -1 (the protocol keeps batch results fixed-size; per-utterance error
// text is a one-shot-path affordance).
func (c *conn) writeBatchResult(id uint32, results []core.Result) {
	c.wmu.Lock()
	c.wbuf = AppendFrameHeader(c.wbuf[:0], FrameBatchResult, 8+4*len(results))
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, id)
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, uint32(len(results)))
	for i := range results {
		label := int32(results[i].Label)
		if results[i].Err != nil {
			label = -1
		}
		c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, uint32(label))
	}
	c.send()
	c.wmu.Unlock()
}
