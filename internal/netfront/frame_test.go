package netfront

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// TestReadFrameErrors pins the reader's failure modes: clean EOF only at a
// frame boundary, ErrUnexpectedEOF inside a header or body, and
// ErrFrameTooLarge for a declared length beyond the cap.
func TestReadFrameErrors(t *testing.T) {
	var hdr [HeaderLen]byte
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated header", []byte{1, 0}, io.ErrUnexpectedEOF},
		{"truncated body", append(AppendFrameHeader(nil, FrameUtterance, 8), 1, 2), io.ErrUnexpectedEOF},
		{"oversize length", AppendFrameHeader(nil, FrameUtterance, 1<<30), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		_, _, err := ReadFrame(bytes.NewReader(tc.in), &hdr, nil, DefaultMaxBody)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Zero-length body is legal framing (some types reject it at decode).
	typ, body, err := ReadFrame(bytes.NewReader(AppendFrameHeader(nil, FrameStreamClose, 0)), &hdr, nil, DefaultMaxBody)
	if err != nil || typ != FrameStreamClose || len(body) != 0 {
		t.Errorf("zero-length body: typ=%#x body=%d err=%v", typ, len(body), err)
	}
}

// TestDecodeMalformed pins the decoder rejections the fuzz corpus seeds.
func TestDecodeMalformed(t *testing.T) {
	if _, _, err := DecodeID(nil); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("DecodeID(nil): %v", err)
	}
	if _, _, err := DecodeID([]byte{1, 2, 3}); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("DecodeID(3 bytes): %v", err)
	}
	if _, err := DecodeSamples(nil, []byte{1, 2, 3}); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("DecodeSamples(odd): %v", err)
	}
	bad := [][]byte{
		{1, 0, 0, 0},                         // id only, no count
		{1, 0, 0, 0, 255, 255, 255, 255},     // absurd count
		{1, 0, 0, 0, 1, 0, 0, 0},             // count 1, no utterance length
		{1, 0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0}, // utterance longer than body
		append([]byte{1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 7, 0}, 0xEE), // trailing byte
	}
	for i, b := range bad {
		if _, _, err := DecodeBatch(b); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("DecodeBatch case %d: err = %v, want ErrMalformedFrame", i, err)
		}
	}
	// Round trip of a well-formed batch body.
	want := [][]int16{{1, -2, 3}, {}, {-32768, 32767}}
	body := []byte{42, 0, 0, 0, 3, 0, 0, 0}
	for _, u := range want {
		body = append(body, byte(len(u)), 0, 0, 0)
		body = AppendSamples(body, u)
	}
	id, utts, err := DecodeBatch(body)
	if err != nil || id != 42 || len(utts) != len(want) {
		t.Fatalf("DecodeBatch round trip: id=%d n=%d err=%v", id, len(utts), err)
	}
	for i := range want {
		if len(utts[i]) != len(want[i]) {
			t.Fatalf("utterance %d: %d samples, want %d", i, len(utts[i]), len(want[i]))
		}
		for j := range want[i] {
			if utts[i][j] != want[i][j] {
				t.Fatalf("utterance %d sample %d: %d, want %d", i, j, utts[i][j], want[i][j])
			}
		}
	}
}

// sinkConn is a net.Conn whose writes are counted and discarded; reads
// block. It lets the connection handler run without a real socket.
type sinkConn struct {
	wrote chan int
}

func (s *sinkConn) Read(b []byte) (int, error)       { select {} }
func (s *sinkConn) Write(b []byte) (int, error)      { s.wrote <- len(b); return len(b), nil }
func (s *sinkConn) Close() error                     { return nil }
func (s *sinkConn) LocalAddr() net.Addr              { return nil }
func (s *sinkConn) RemoteAddr() net.Addr             { return nil }
func (s *sinkConn) SetDeadline(time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// TestConnSubmitPathAllocFree is the ISSUE acceptance bar for the serving
// edge: the per-connection steady-state path — decode an utterance frame,
// submit it, classify it, write the response — must allocate nothing. It
// drives the connection handler directly over a write-counting fake socket
// so AllocsPerRun sees the whole round trip (AllocsPerRun counts mallocs
// process-wide, so the worker-side path is covered too).
func TestConnSubmitPathAllocFree(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fe := NewFrontEnd(srv, Config{})
	sink := &sinkConn{wrote: make(chan int, 4)}
	c := newConn(fe, sink)

	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utt := gen.Example(0, 0, 0).Samples
	body := binaryLEUint32(nil, 9) // request id
	body = AppendSamples(body, utt)

	roundTrip := func() {
		if !c.handleUtterance(body) {
			t.Fatal("handleUtterance rejected a well-formed frame")
		}
		<-sink.wrote // response written: request context recycled
	}
	for i := 0; i < 16; i++ { // warm the ticket and context pools
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs > 0 {
		t.Fatalf("steady-state submit path allocates %.1f objects/op, want 0", allocs)
	}
}

// binaryLEUint32 appends v little-endian (test helper; the non-test path
// uses encoding/binary directly).
func binaryLEUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// capConn is a net.Conn that records writes (for wire-format assertions).
type capConn struct {
	sinkConn
	buf bytes.Buffer
}

func (c *capConn) Write(b []byte) (int, error) { return c.buf.Write(b) }

// TestStreamErrorWireFormat pins FrameStreamError's v2 encoding: a per-hop
// failure must carry its stream id, its hop number, and a structured
// wire-error (code, retry hint, message), so the peer can tell exactly
// which slot of the hop sequence has no label and whether retrying helps.
func TestStreamErrorWireFormat(t *testing.T) {
	cc := &capConn{}
	c := newConn(NewFrontEnd(nil, Config{}), cc)
	c.writeStreamError(7, 42, errors.New("hop went sideways"))
	var hdr [HeaderLen]byte
	typ, body, err := ReadFrame(&cc.buf, &hdr, nil, DefaultMaxBody)
	if err != nil || typ != FrameStreamError {
		t.Fatalf("typ=%#x err=%v", typ, err)
	}
	if len(body) < 12+wireErrLen {
		t.Fatalf("%d-byte body", len(body))
	}
	id, rest, err := DecodeID(body)
	if err != nil || id != 7 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	hop := uint64(rest[0]) | uint64(rest[1])<<8 | uint64(rest[2])<<16 | uint64(rest[3])<<24 |
		uint64(rest[4])<<32 | uint64(rest[5])<<40 | uint64(rest[6])<<48 | uint64(rest[7])<<56
	if hop != 42 {
		t.Fatalf("hop=%d, want 42", hop)
	}
	we, err := DecodeWireError(rest[8:])
	if err != nil {
		t.Fatalf("DecodeWireError: %v", err)
	}
	if we.Code != CodeInternal {
		t.Fatalf("code=%d, want CodeInternal", we.Code)
	}
	if we.Msg != "hop went sideways" {
		t.Fatalf("message %q", we.Msg)
	}
}

// TestWireErrorRoundTrip pins the wire-error payload encoding itself.
func TestWireErrorRoundTrip(t *testing.T) {
	in := WireError{Code: CodeDeadlineExceeded, RetryAfter: 7 * time.Millisecond, Msg: "shed"}
	b := AppendWireError(nil, in)
	if len(b) != wireErrLen+len(in.Msg) {
		t.Fatalf("%d bytes, want %d", len(b), wireErrLen+len(in.Msg))
	}
	out, err := DecodeWireError(b)
	if err != nil {
		t.Fatalf("DecodeWireError: %v", err)
	}
	if out != in {
		t.Fatalf("round trip %+v, want %+v", out, in)
	}
	if _, err := DecodeWireError(b[:wireErrLen-1]); err == nil {
		t.Fatal("truncated wire error decoded without error")
	}
}

// TestHealthAckRoundTrip pins the FrameHealthAck codec: a multi-model,
// multi-shard snapshot survives encode/decode, and truncated or
// trailing-garbage bodies are rejected rather than misparsed.
func TestHealthAckRoundTrip(t *testing.T) {
	in := []core.ModelHealth{
		{Model: "kws", Version: 3, Shards: []core.ShardStatus{
			{Shard: 0, State: core.BreakerClosed, Gen: 1, FailureRate: 0.5, Workers: 2, Live: 2},
			{Shard: 1, State: core.BreakerHalfOpen, ConsecutiveFailures: 4, FailureRate: 1, Trips: 2, Rebuilds: 1, Workers: 2, Live: 0},
		}},
		{Model: "vad", Version: 9, Shards: []core.ShardStatus{
			{Shard: 0, State: core.BreakerOpen, Trips: 1, Workers: 1, Live: 1},
		}},
	}
	b := AppendHealthAck(nil, 42, in)
	id, out, err := DecodeHealthAck(b)
	if err != nil {
		t.Fatalf("DecodeHealthAck: %v", err)
	}
	if id != 42 || len(out) != 2 {
		t.Fatalf("id=%d models=%d, want 42/2", id, len(out))
	}
	for m := range in {
		if out[m].Model != in[m].Model || out[m].Version != in[m].Version || len(out[m].Shards) != len(in[m].Shards) {
			t.Fatalf("model %d header mangled: %+v want %+v", m, out[m], in[m])
		}
		for s := range in[m].Shards {
			got, want := out[m].Shards[s], in[m].Shards[s]
			if got.Shard != s || got.State != want.State || got.Gen != want.Gen ||
				got.ConsecutiveFailures != want.ConsecutiveFailures || got.Trips != want.Trips ||
				got.Rebuilds != want.Rebuilds || got.Workers != want.Workers || got.Live != want.Live {
				t.Fatalf("model %d shard %d mangled: %+v want %+v", m, s, got, want)
			}
			if d := got.FailureRate - want.FailureRate; d > 0.001 || d < -0.001 {
				t.Fatalf("model %d shard %d rate %v, want ~%v", m, s, got.FailureRate, want.FailureRate)
			}
		}
	}
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := DecodeHealthAck(b[:cut]); err == nil {
			t.Fatalf("truncated health ack (%d of %d bytes) decoded without error", cut, len(b))
		}
	}
	if _, _, err := DecodeHealthAck(append(b, 0)); err == nil {
		t.Fatal("health ack with trailing garbage decoded without error")
	}
}
