package netfront_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/tflm"
)

// directLabels classifies utts on a throwaway single-worker server over
// model — the bit-exact ground truth for one generation.
func directLabels(t testing.TB, model *tflm.Model, utts [][]int16) []int {
	t.Helper()
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	labels := make([]int, len(utts))
	for i, u := range utts {
		p, err := srv.Submit(u)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		labels[i] = r.Label
		p.Release()
	}
	return labels
}

// startRegistryFrontEnd stands up a Registry-backed FrontEnd on loopback
// TCP and returns its address. Cleanup closes front end then registry.
func startRegistryFrontEnd(t testing.TB, reg *core.Registry, cfg netfront.Config) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe := netfront.NewFrontEndRegistry(reg, cfg)
	go fe.Serve(l)
	t.Cleanup(func() {
		fe.Close()
		reg.Close()
	})
	return l.Addr().String()
}

// TestRegistryFrontEndRouting: hello-bound connections route to their model
// on a two-model registry front end, the ack carries the model version, and
// an unknown model fails the dial with CodeBadRequest.
func TestRegistryFrontEndRouting(t *testing.T) {
	modelA, utts, wantA := testFixture(t, 6)
	modelB, err := tflm.BuildRandomTinyConv(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	wantB := directLabels(t, modelB, utts)

	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"a": {Model: modelA, Version: 10},
		"b": {Model: modelB, Version: 20},
	}, core.RegistryConfig{Server: core.ServerConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	addr := startRegistryFrontEnd(t, reg, netfront.Config{})

	for _, tc := range []struct {
		model   string
		want    []int
		version uint64
	}{{"a", wantA, 10}, {"b", wantB, 20}} {
		c, err := client.DialOptions("tcp", addr, client.Options{Tenant: "acme", Model: tc.model})
		if err != nil {
			t.Fatalf("dial model %s: %v", tc.model, err)
		}
		if v := c.ModelVersion(); v != tc.version {
			t.Fatalf("model %s: hello ack version %d, want %d", tc.model, v, tc.version)
		}
		for i, u := range utts {
			label, err := c.Classify(u)
			if err != nil || label != tc.want[i] {
				t.Fatalf("model %s utterance %d: label=%d err=%v, want %d", tc.model, i, label, err, tc.want[i])
			}
		}
		// Batches route through the same binding.
		labels, err := c.ClassifyBatch(utts)
		if err != nil {
			t.Fatalf("model %s batch: %v", tc.model, err)
		}
		for i := range labels {
			if labels[i] != tc.want[i] {
				t.Fatalf("model %s batch utterance %d: %d want %d", tc.model, i, labels[i], tc.want[i])
			}
		}
		c.Close()
	}

	// Unknown model: the dial itself fails with the structured code.
	if c, err := client.DialOptions("tcp", addr, client.Options{Model: "zzz"}); err == nil {
		c.Close()
		t.Fatal("dial with unknown model succeeded")
	} else {
		var re *client.RemoteError
		if !errors.As(err, &re) || re.Code != netfront.CodeBadRequest {
			t.Fatalf("unknown model: %v, want CodeBadRequest", err)
		}
	}

	// Two models means no default: a hello-less connection's requests fail
	// as bad requests rather than silently picking a model.
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Classify(utts[0]); err == nil {
		t.Fatal("hello-less classify on a two-model registry succeeded")
	}
}

// TestRegistryFrontEndSwapOverWire drives a hot swap under live wire load:
// one-shot clients (with retry) ride through the swap losing nothing, a
// stream bound to the old generation surfaces CodeModelSwapped with a
// retry-after hint, and a reopened stream works against the new generation.
func TestRegistryFrontEndSwapOverWire(t *testing.T) {
	modelA, utts, wantA := testFixture(t, 4)
	modelB, err := tflm.BuildRandomTinyConv(1, 77)
	if err != nil {
		t.Fatal(err)
	}
	wantB := directLabels(t, modelB, utts)

	signer, err := core.NewSwapSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"kws": {Model: modelA, VendorPub: signer.VendorPub(), Key: signer.Key()},
	}, core.RegistryConfig{Shards: 2, Server: core.ServerConfig{Workers: 2, Queue: 4}})
	if err != nil {
		t.Fatal(err)
	}
	addr := startRegistryFrontEnd(t, reg, netfront.Config{})

	c, err := client.DialOptions("tcp", addr, client.Options{
		Tenant: "acme",
		Retry:  client.RetryPolicy{Attempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Open a stream on the old generation and park it mid-life.
	var swappedErr atomic.Pointer[client.RemoteError]
	st, err := c.OpenStream(func(hop uint64, label int, err error) {
		var re *client.RemoteError
		if errors.As(err, &re) && re.Code == netfront.CodeModelSwapped {
			swappedErr.Store(re)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(utts[0][:4000]); err != nil {
		t.Fatal(err)
	}
	// Stream opens carry no ack, so flush the connection with a synchronous
	// round trip: its response proves the server processed the open (conn
	// frames are FIFO) — the stream really is bound to the old generation
	// before the swap runs.
	if _, err := c.Classify(utts[0]); err != nil {
		t.Fatal(err)
	}

	// Swap under concurrent one-shot load.
	var loadWG sync.WaitGroup
	stop := make(chan struct{})
	var failed atomic.Uint64
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := i % len(utts)
			label, err := c.Classify(utts[u])
			if err != nil {
				failed.Add(1)
				continue
			}
			if label != wantA[u] && label != wantB[u] {
				t.Errorf("classify matched neither generation: %d", label)
			}
		}
	}()

	pkg, err := signer.Package("kws", 2, modelB)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("kws", pkg); err != nil {
		t.Fatalf("swap: %v", err)
	}
	close(stop)
	loadWG.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d one-shot requests failed through the swap despite retry", n)
	}

	// Poke the old-generation stream until the swap error surfaces (the
	// chunk may land before the cutover is visible connection-side).
	deadline := time.Now().Add(5 * time.Second)
	for swappedErr.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("stream never surfaced CodeModelSwapped after the swap")
		}
		st.Send(utts[0][:4000])
		time.Sleep(5 * time.Millisecond)
	}
	re := swappedErr.Load()
	if re.RetryAfter <= 0 {
		t.Fatalf("CodeModelSwapped arrived without a retry-after hint: %+v", re)
	}

	// A fresh stream works against the new generation and classifies with
	// the new weights.
	var labels []int
	var mu sync.Mutex
	st2, err := c.OpenStream(func(hop uint64, label int, err error) {
		if err == nil {
			mu.Lock()
			labels = append(labels, label)
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Send(utts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Close(); err != nil {
		t.Fatalf("close reopened stream: %v", err)
	}
	mu.Lock()
	n := len(labels)
	mu.Unlock()
	if n == 0 {
		t.Fatal("reopened stream delivered no hops on the new generation")
	}
}

// TestRegistryFrontEndTenantBusy: a tenant at its queue cap gets BUSY with
// the retry hint over the wire, scoped to that tenant — the other tenant
// keeps classifying.
func TestRegistryFrontEndTenantBusy(t *testing.T) {
	model, utts, want := testFixture(t, 2)
	reg, err := core.NewRegistry(map[string]core.ModelConfig{"kws": {Model: model}}, core.RegistryConfig{
		Server: core.ServerConfig{Workers: 1, Queue: 1},
		Tenants: map[string]core.TenantConfig{
			"greedy": {Weight: 1, MaxQueue: 1},
			"calm":   {Weight: 1, MaxQueue: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startRegistryFrontEnd(t, reg, netfront.Config{})

	greedy, err := client.DialOptions("tcp", addr, client.Options{Tenant: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	defer greedy.Close()
	calm, err := client.DialOptions("tcp", addr, client.Options{Tenant: "calm"})
	if err != nil {
		t.Fatal(err)
	}
	defer calm.Close()

	// Hammer from the greedy tenant without retry until its 1-deep queue
	// reports BUSY; the calm tenant must stay unaffected throughout.
	var sawBusy atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := greedy.Classify(utts[0]); errors.Is(err, client.ErrBusy) {
				sawBusy.Store(true)
			}
		}()
	}
	wg.Wait()
	if !sawBusy.Load() {
		t.Fatal("greedy tenant with cap 1 never saw BUSY over 16 concurrent requests")
	}
	if label, err := calm.Classify(utts[1]); err != nil || label != want[1] {
		t.Fatalf("calm tenant during greedy flood: label=%d err=%v, want %d", label, err, want[1])
	}
	c := reg.TenantCounters("greedy")
	if c.Busy == 0 {
		t.Fatalf("greedy busy counter zero: %+v", c)
	}
}

// TestHealthOverWire pins the FrameHealth admin query end to end: a
// registry front end reports every model's real per-shard breaker state,
// and a single-server front end synthesizes one always-closed pseudo-shard
// so operators get a uniform answer from either backend.
func TestHealthOverWire(t *testing.T) {
	modelA, _, _ := testFixture(t, 1)
	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"a": {Model: modelA, Version: 10},
	}, core.RegistryConfig{Shards: 2, Server: core.ServerConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	addr := startRegistryFrontEnd(t, reg, netfront.Config{})
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	health, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(health) != 1 || health[0].Model != "a" || health[0].Version != 10 {
		t.Fatalf("health = %+v, want one model a@10", health)
	}
	if len(health[0].Shards) != 2 {
		t.Fatalf("%d shards reported, want 2", len(health[0].Shards))
	}
	for i, s := range health[0].Shards {
		if s.State != core.BreakerClosed || s.Workers != 2 || s.Live != 2 {
			t.Fatalf("shard %d: %+v, want closed with 2/2 workers", i, s)
		}
	}

	// Single-server front end: the same query answers with a pseudo-shard.
	modelB, _, _ := testFixture(t, 1)
	saddr := startFrontEnd(t, modelB, core.ServerConfig{Workers: 1}, "tcp")
	sc, err := client.Dial("tcp", saddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	shealth, err := sc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(shealth) != 1 || len(shealth[0].Shards) != 1 {
		t.Fatalf("single-server health = %+v, want one pseudo-shard", shealth)
	}
	if s := shealth[0].Shards[0]; s.State != core.BreakerClosed || s.Workers != 1 || s.Live != 1 {
		t.Fatalf("pseudo-shard %+v, want closed 1/1", s)
	}
}
