// Package client is the Go client for the netfront wire protocol: it dials
// an omg-serve front end over TCP or a Unix socket and exposes the three
// request kinds — one-shot classification, open streams with per-hop result
// callbacks, and whole batches — over a single multiplexed connection. All
// methods are safe for concurrent use; any number of requests and streams
// may be outstanding at once.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/netfront"
)

// ErrBusy reports that the server's submission queue was full when the
// request arrived — the wire form of core.ErrQueueFull backpressure. The
// request was not enqueued; retry later.
var ErrBusy = errors.New("client: server busy")

// ErrClosed is returned by requests after Close, or when the connection to
// the server was lost.
var ErrClosed = errors.New("client: connection closed")

// RemoteError is a per-request failure reported by the server.
type RemoteError struct {
	// Msg is the server's error text, verbatim from the FrameError body.
	Msg string
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return "client: server error: " + e.Msg }

// Frame types and encoding primitives are shared with package netfront —
// the protocol has exactly one definition.
const (
	frameUtterance    = netfront.FrameUtterance
	frameStreamOpen   = netfront.FrameStreamOpen
	frameStreamChunk  = netfront.FrameStreamChunk
	frameStreamClose  = netfront.FrameStreamClose
	frameBatch        = netfront.FrameBatch
	frameResult       = netfront.FrameResult
	frameStreamResult = netfront.FrameStreamResult
	frameBusy         = netfront.FrameBusy
	frameError        = netfront.FrameError
	frameBatchResult  = netfront.FrameBatchResult
	frameStreamClosed = netfront.FrameStreamClosed
	frameStreamError  = netfront.FrameStreamError
)

// NoHop is the hop value passed to a stream callback for a stream-level
// failure (a control-frame error that is not tied to any single hop); a
// per-hop failure arrives with its real hop number instead.
const NoHop = ^uint64(0)

// pendingReply is one in-flight request's reply slot.
type pendingReply struct {
	ch chan reply
}

// reply is one response frame, pre-parsed.
type reply struct {
	labels []int32 // one label (one-shot) or the batch's labels
	hops   uint64  // FrameStreamClosed payload
	err    error
}

// Client is one connection to a netfront server.
type Client struct {
	nc net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]*pendingReply
	streams map[uint32]*Stream
	err     error // terminal connection error, set once by the read loop
	done    chan struct{}
}

// Dial connects to a netfront server; network/addr are as in net.Dial
// ("tcp", "127.0.0.1:7071" or "unix", "/tmp/omg.sock").
func Dial(network, addr string) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		pending: make(map[uint32]*pendingReply),
		streams: make(map[uint32]*Stream),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection. Outstanding requests fail with
// ErrClosed; open streams stop receiving callbacks. Idempotent.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.done // read loop has failed every pending request
	return err
}

// fail terminates every pending request and stream with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, p := range c.pending {
		delete(c.pending, id)
		p.ch <- reply{err: c.err}
	}
	for id, s := range c.streams {
		delete(c.streams, id)
		close(s.closed)
	}
	c.mu.Unlock()
	close(c.done)
}

// readLoop dispatches response frames to their requests/streams until the
// connection dies.
func (c *Client) readLoop() {
	var hdr [netfront.HeaderLen]byte
	var body []byte
	rd := c.nc
	for {
		typ, b, err := netfront.ReadFrame(rd, &hdr, body, netfront.DefaultMaxBody)
		body = b[:cap(b)]
		if err != nil {
			c.fail(ErrClosed)
			return
		}
		switch typ {
		case frameResult:
			if len(b) != 8 {
				c.fail(fmt.Errorf("client: malformed result frame (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			label := int32(binary.LittleEndian.Uint32(b[4:8]))
			c.deliver(id, reply{labels: []int32{label}})
		case frameBusy:
			if len(b) != 4 {
				c.fail(fmt.Errorf("client: malformed busy frame (%d bytes)", len(b)))
				return
			}
			c.deliver(binary.LittleEndian.Uint32(b[0:4]), reply{err: ErrBusy})
		case frameError:
			if len(b) < 4 {
				c.fail(fmt.Errorf("client: malformed error frame (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			rerr := &RemoteError{Msg: string(b[4:])}
			// A FrameError may belong to a stream (a control failure,
			// delivered via its callback as NoHop) or to a pending
			// one-shot/batch request.
			c.mu.Lock()
			s := c.streams[id]
			c.mu.Unlock()
			if s != nil {
				s.fn(NoHop, -1, rerr)
			} else {
				c.deliver(id, reply{err: rerr})
			}
		case frameStreamError:
			if len(b) < 12 {
				c.fail(fmt.Errorf("client: malformed stream error (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hop := binary.LittleEndian.Uint64(b[4:12])
			rerr := &RemoteError{Msg: string(b[12:])}
			c.mu.Lock()
			s := c.streams[id]
			c.mu.Unlock()
			if s != nil {
				s.fn(hop, -1, rerr)
			}
		case frameBatchResult:
			if len(b) < 8 {
				c.fail(fmt.Errorf("client: malformed batch result (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			n := int(binary.LittleEndian.Uint32(b[4:8]))
			if len(b) != 8+4*n {
				c.fail(fmt.Errorf("client: batch result count %d does not match body", n))
				return
			}
			labels := make([]int32, n)
			for i := range labels {
				labels[i] = int32(binary.LittleEndian.Uint32(b[8+4*i:]))
			}
			c.deliver(id, reply{labels: labels})
		case frameStreamResult:
			if len(b) != 16 {
				c.fail(fmt.Errorf("client: malformed stream result (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hop := binary.LittleEndian.Uint64(b[4:12])
			label := int32(binary.LittleEndian.Uint32(b[12:16]))
			c.mu.Lock()
			s := c.streams[id]
			c.mu.Unlock()
			if s != nil {
				s.fn(hop, int(label), nil)
			}
		case frameStreamClosed:
			if len(b) != 12 {
				c.fail(fmt.Errorf("client: malformed stream-closed frame (%d bytes)", len(b)))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hops := binary.LittleEndian.Uint64(b[4:12])
			c.mu.Lock()
			s := c.streams[id]
			delete(c.streams, id)
			c.mu.Unlock()
			if s != nil {
				s.hops = hops
				close(s.closed)
			}
		default:
			c.fail(fmt.Errorf("client: unknown response frame 0x%02x", typ))
			return
		}
	}
}

// deliver hands a reply to its pending request, if still registered.
func (c *Client) deliver(id uint32, r reply) {
	c.mu.Lock()
	p := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if p != nil {
		p.ch <- r
	}
}

// register allocates a request id and its reply slot.
func (c *Client) register() (uint32, *pendingReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	id := c.nextID
	c.nextID++
	p := &pendingReply{ch: make(chan reply, 1)}
	c.pending[id] = p
	return id, p, nil
}

// writeFrame builds and sends one frame; payload is appended by fill.
func (c *Client) writeFrame(typ byte, bodyLen int, fill func([]byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = netfront.AppendFrameHeader(c.wbuf[:0], typ, bodyLen)
	c.wbuf = fill(c.wbuf)
	_, err := c.nc.Write(c.wbuf)
	return err
}

// Classify submits one utterance and blocks for its label. ErrBusy reports
// server backpressure (nothing was enqueued); a *RemoteError is a
// per-request server-side failure.
func (c *Client) Classify(samples []int16) (int, error) {
	id, p, err := c.register()
	if err != nil {
		return -1, err
	}
	err = c.writeFrame(frameUtterance, 4+2*len(samples), func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, id)
		return netfront.AppendSamples(b, samples)
	})
	if err != nil {
		return -1, err
	}
	r := <-p.ch
	if r.err != nil {
		return -1, r.err
	}
	return int(r.labels[0]), nil
}

// ClassifyBatch submits a whole batch and blocks for its labels, one per
// utterance in order; an utterance the server failed to classify reports
// label -1.
func (c *Client) ClassifyBatch(utts [][]int16) ([]int, error) {
	id, p, err := c.register()
	if err != nil {
		return nil, err
	}
	bodyLen := 8
	for _, u := range utts {
		bodyLen += 4 + 2*len(u)
	}
	err = c.writeFrame(frameBatch, bodyLen, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, id)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(utts)))
		for _, u := range utts {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(u)))
			b = netfront.AppendSamples(b, u)
		}
		return b
	})
	if err != nil {
		return nil, err
	}
	r := <-p.ch
	if r.err != nil {
		return nil, r.err
	}
	labels := make([]int, len(r.labels))
	for i, l := range r.labels {
		labels[i] = int(l)
	}
	return labels, nil
}

// Stream is one open audio stream. Send audio with Send; results arrive
// through the callback passed to OpenStream, in hop order. Close flushes.
type Stream struct {
	c      *Client
	id     uint32
	fn     func(hop uint64, label int, err error)
	closed chan struct{}
	hops   uint64
}

// OpenStream opens a stream on the connection. fn is invoked on the
// client's read goroutine once per completed hop, strictly in hop order —
// it must not block (it stalls every response on the connection) and must
// not call back into the client. A non-nil err in the callback reports a
// server-side failure: a per-hop failure carries its real hop number (that
// hop produced no label), a stream-level control failure carries NoHop.
func (c *Client) OpenStream(fn func(hop uint64, label int, err error)) (*Stream, error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return nil, c.err
	}
	id := c.nextID
	c.nextID++
	s := &Stream{c: c, id: id, fn: fn, closed: make(chan struct{})}
	c.streams[id] = s
	c.mu.Unlock()
	err := c.writeFrame(frameStreamOpen, 4, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, id)
	})
	if err != nil {
		c.mu.Lock()
		delete(c.streams, id)
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Send appends a chunk of audio to the stream. Results for hops the chunk
// completes arrive asynchronously through the stream callback.
func (s *Stream) Send(chunk []int16) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	return s.c.writeFrame(frameStreamChunk, 4+2*len(chunk), func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, s.id)
		return netfront.AppendSamples(b, chunk)
	})
}

// Close flushes the stream — it blocks until the server has delivered every
// outstanding hop's result (all callbacks have run) — and returns the total
// number of hops the stream classified.
func (s *Stream) Close() (uint64, error) {
	err := s.c.writeFrame(frameStreamClose, 4, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, s.id)
	})
	if err != nil {
		return 0, err
	}
	<-s.closed
	s.c.mu.Lock()
	err = s.c.err
	s.c.mu.Unlock()
	if err != nil {
		return s.hops, err
	}
	return s.hops, nil
}
