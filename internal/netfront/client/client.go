// Package client is the Go client for the netfront wire protocol: it dials
// an omg-serve front end over TCP or a Unix socket and exposes the three
// request kinds — one-shot classification, open streams with per-hop result
// callbacks, and whole batches — over a single multiplexed connection. All
// methods are safe for concurrent use; any number of requests and streams
// may be outstanding at once.
//
// # Failure semantics
//
// The client is built for a flaky edge. Dials are bounded
// (Options.DialTimeout), one-shot requests accept deadlines
// (ClassifyDeadline) and opt into retry with exponential backoff plus
// jitter on BUSY and transient transport failures (Options.Retry), and a
// dropped connection is redialed with backoff on the next request when
// Options.Redial is set. One-shot requests can additionally hedge
// (Options.Hedge): a duplicate attempt fires when the first is slow, the
// first reply wins, and the loser is silently discarded — at most 1+Max
// attempts per call, never for streams or batches. Server-side failures arrive as *RemoteError
// carrying the structured wire code and the server's retry-after hint.
// Streams are deliberately not resumed across a redial: a stream bound to a
// dead connection fails its callback once with ErrStreamBroken and its
// Close returns the same — the client never re-sends audio the server may
// already have classified, so a hop is never silently duplicated.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
)

// ErrBusy reports that the server's submission queue was full when the
// request arrived — the wire form of core.ErrQueueFull backpressure. The
// request was not enqueued; retry later. The concrete error is a *BusyError
// carrying the server's retry-after hint; errors.Is(err, ErrBusy) matches
// it.
var ErrBusy = errors.New("client: server busy")

// ErrClosed is returned by requests after Close, or when the connection to
// the server was lost. The connection-loss form is ErrConnLost, which wraps
// ErrClosed and is retryable.
var ErrClosed = errors.New("client: connection closed")

// ErrConnLost reports that the transport died under an in-flight request
// (peer reset, write failure, mid-frame EOF). It wraps ErrClosed; unlike a
// user-initiated Close it is transient, so the retry policy treats it as
// retryable and Options.Redial replaces the connection.
var ErrConnLost = fmt.Errorf("%w: connection lost", ErrClosed)

// ErrStreamBroken reports a stream whose connection died before the stream
// was cleanly closed. The stream's callback receives it exactly once (with
// NoHop) and Stream.Close returns it. The stream is never transparently
// resumed on a redialed connection — hops already submitted must not be
// replayed — so the caller decides whether to open a fresh stream.
var ErrStreamBroken = errors.New("client: stream broken")

// ErrDeadlineExceeded reports a request that missed its client-side
// deadline: no reply arrived in time. The request may still complete on the
// server; its late reply is discarded.
var ErrDeadlineExceeded = errors.New("client: deadline exceeded")

// BusyError is the concrete BUSY failure: errors.Is(err, ErrBusy) matches
// it, and RetryAfter carries the server's backoff hint from the wire.
type BusyError struct {
	// RetryAfter is the server's suggested wait before retrying.
	RetryAfter time.Duration
}

// Error returns the BUSY message.
func (e *BusyError) Error() string { return ErrBusy.Error() }

// Is matches ErrBusy, so callers keep writing errors.Is(err, ErrBusy).
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// RemoteError is a per-request failure reported by the server.
type RemoteError struct {
	// Code is the structured wire error code (netfront.Code* constants).
	Code uint16
	// RetryAfter is the server's transient-failure hint: nonzero means the
	// request is worth retrying after this long, zero means it is not.
	RetryAfter time.Duration
	// Msg is the server's error text, verbatim from the wire.
	Msg string
}

// Error returns the server's message with its code.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: server error (code %d): %s", e.Code, e.Msg)
}

// Retryable reports whether the server marked the failure transient.
func (e *RemoteError) Retryable() bool { return e.RetryAfter > 0 }

// Frame types and encoding primitives are shared with package netfront —
// the protocol has exactly one definition.
const (
	frameUtterance    = netfront.FrameUtterance
	frameStreamOpen   = netfront.FrameStreamOpen
	frameStreamChunk  = netfront.FrameStreamChunk
	frameStreamClose  = netfront.FrameStreamClose
	frameBatch        = netfront.FrameBatch
	frameResult       = netfront.FrameResult
	frameStreamResult = netfront.FrameStreamResult
	frameBusy         = netfront.FrameBusy
	frameError        = netfront.FrameError
	frameBatchResult  = netfront.FrameBatchResult
	frameStreamClosed = netfront.FrameStreamClosed
	frameStreamError  = netfront.FrameStreamError
	frameHello        = netfront.FrameHello
	frameHelloAck     = netfront.FrameHelloAck
	frameHealth       = netfront.FrameHealth
	frameHealthAck    = netfront.FrameHealthAck
)

// NoHop is the hop value passed to a stream callback for a stream-level
// failure (a control-frame error or broken connection that is not tied to
// any single hop); a per-hop failure arrives with its real hop number
// instead.
const NoHop = ^uint64(0)

// DefaultDialTimeout bounds Dial when Options.DialTimeout is unset: a
// serving edge must fail fast on an unreachable peer, not park the caller
// in an unbounded connect.
const DefaultDialTimeout = 10 * time.Second

// RetryPolicy is the opt-in one-shot retry behavior: Attempts extra tries
// after the first, exponential backoff with deterministic jitter, honoring
// any larger server retry-after hint.
type RetryPolicy struct {
	// Attempts is how many retries follow a failed first try; 0 disables
	// retry entirely.
	Attempts int
	// Base is the first backoff step; doubles per attempt. <= 0 means 2ms.
	Base time.Duration
	// Max caps the backoff step. <= 0 means 250ms.
	Max time.Duration
}

// withDefaults fills unset policy knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 250 * time.Millisecond
	}
	return p
}

// backoff returns the attempt'th wait (0-based): exponential from Base,
// capped at Max, jittered uniformly into [d/2, d] so synchronized clients
// desynchronize.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.Base << uint(attempt)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
}

// HedgePolicy opts one-shot requests into hedging: when an attempt has not
// completed within Delay, the client fires a duplicate of the same request
// on the same connection and takes whichever reply lands first, quietly
// discarding the loser. Hedging trades duplicate server work for tail
// latency — a request stuck behind a slow shard or a breaker probe is
// answered by a healthy one. It never applies to streams or batches, and a
// call issues at most 1+Max attempts in total.
type HedgePolicy struct {
	// Delay is how long an attempt may run before the next hedge fires;
	// <= 0 disables hedging entirely.
	Delay time.Duration
	// Max caps extra attempts beyond the first; <= 0 means 1.
	Max int
}

// withDefaults fills unset hedge knobs.
func (h HedgePolicy) withDefaults() HedgePolicy {
	if h.Max <= 0 {
		h.Max = 1
	}
	return h
}

// Options parameterizes DialOptions. The zero value matches Dial: bounded
// dial, no retry, no redial.
type Options struct {
	// DialTimeout bounds each dial (initial and redial); 0 means
	// DefaultDialTimeout, negative means unbounded.
	DialTimeout time.Duration
	// Retry is the one-shot retry policy (Classify/ClassifyDeadline).
	// Zero-value = no retries.
	Retry RetryPolicy
	// Redial makes the client replace a dropped connection with a fresh
	// dial (with backoff) on the next request, instead of failing every
	// later request with ErrConnLost. Streams on the dead connection still
	// break (ErrStreamBroken) — only one-shot/batch traffic migrates.
	Redial bool
	// RedialMax caps dial attempts per reconnection; <= 0 means 5.
	RedialMax int
	// Seed drives the deterministic jitter source; 0 means 1. Fixed seeds
	// keep chaos tests reproducible.
	Seed int64
	// DialFunc replaces the transport dial — the chaos-injection and test
	// hook (wrap the returned net.Conn in a faultconn.Conn to serve the
	// client a hostile network). nil means net.DialTimeout.
	DialFunc func(network, addr string) (net.Conn, error)
	// Tenant is the admission-control identity sent in the connection's
	// hello handshake (wire protocol v3): the server queues and
	// fair-shares this client's requests under it. Empty joins the default
	// tenant; with both Tenant and Model empty no hello is sent and the
	// connection behaves as a v2 peer.
	Tenant string
	// Model is the model id this connection's requests route to on a
	// multi-model server, bound by the hello handshake. Empty serves the
	// server's default model. A server that does not serve Model fails
	// the dial (and any redial) with *RemoteError CodeBadRequest.
	Model string
	// Hedge opts Classify/ClassifyDeadline into hedged requests: a
	// duplicate attempt after Hedge.Delay, first reply wins. Zero-value
	// (Delay == 0) disables hedging and keeps the single-attempt fast
	// path. Streams and batches never hedge — a replayed stream hop or
	// batch could double-classify audio.
	Hedge HedgePolicy
}

// pendingReply is one in-flight request's reply slot.
type pendingReply struct {
	ch chan reply
}

// reply is one response frame, pre-parsed.
type reply struct {
	labels []int32 // one label (one-shot) or the batch's labels
	hops   uint64  // FrameStreamClosed payload
	health []core.ModelHealth
	err    error
}

// Stats is a snapshot of a client's lifetime resilience counters — how
// hard the client had to work beyond one wire attempt per request. The SLO
// harness (internal/loadgen) folds these into its reports; they are also
// the cheap way to assert "no retries happened" in tests.
type Stats struct {
	// Retries counts one-shot wire attempts beyond the first
	// (Classify/ClassifyDeadline retry loop iterations).
	Retries uint64
	// Redials counts replacement connections successfully established
	// after transport loss (Options.Redial).
	Redials uint64
	// Hedges counts hedge attempts launched beyond each request's first
	// attempt (Options.Hedge).
	Hedges uint64
	// Busy counts BUSY frames received from the server, across all
	// requests and attempts.
	Busy uint64
}

// Client is one logical connection to a netfront server. Under
// Options.Redial it survives transport loss by replacing the underlying
// connection; without it the first transport loss fails all later requests.
type Client struct {
	network, addr string
	opts          Options

	rmu sync.Mutex // guards rng (jitter draws come from many goroutines)
	rng *rand.Rand

	mu     sync.Mutex
	cc     *clientConn // current transport generation; nil only before dial
	closed bool

	version atomic.Uint64 // model version from the latest hello ack

	statRetries atomic.Uint64
	statRedials atomic.Uint64
	statHedges  atomic.Uint64
	statBusy    atomic.Uint64
}

// Stats snapshots the client's resilience counters. Safe to call
// concurrently with requests; the fields are read independently, so the
// snapshot is per-counter consistent, not globally atomic.
func (c *Client) Stats() Stats {
	return Stats{
		Retries: c.statRetries.Load(),
		Redials: c.statRedials.Load(),
		Hedges:  c.statHedges.Load(),
		Busy:    c.statBusy.Load(),
	}
}

// clientConn is one transport generation: the socket, its read loop, and
// the request/stream registries bound to it. A new generation after redial
// starts empty — pending work of the dead generation fails, it does not
// migrate.
type clientConn struct {
	owner *Client
	nc    net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]*pendingReply
	streams map[uint32]*Stream
	err     error // terminal connection error, set once
	done    chan struct{}
}

// Dial connects to a netfront server with default Options; network/addr
// are as in net.Dial ("tcp", "127.0.0.1:7071" or "unix", "/tmp/omg.sock").
// The dial is bounded by DefaultDialTimeout.
func Dial(network, addr string) (*Client, error) {
	return DialOptions(network, addr, Options{})
}

// DialOptions connects with explicit resilience options. The initial dial
// is a single bounded attempt (an unreachable server fails fast, no silent
// retry loop); Redial governs later reconnection only.
func DialOptions(network, addr string, opts Options) (*Client, error) {
	if opts.DialTimeout == 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.RedialMax <= 0 {
		opts.RedialMax = 5
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{network: network, addr: addr, opts: opts, rng: rand.New(rand.NewSource(seed))}
	nc, err := c.dialRaw()
	if err != nil {
		return nil, err
	}
	c.cc = newClientConn(c, nc)
	if err := c.handshake(c.cc); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// handshake binds the generation to Options.Tenant/Model via FrameHello,
// bounded by the dial timeout. A no-op when neither option is set (v2
// behavior — servers predating the hello frame stay compatible).
func (c *Client) handshake(cc *clientConn) error {
	if c.opts.Tenant == "" && c.opts.Model == "" {
		return nil
	}
	id, p, err := cc.register()
	if err != nil {
		return err
	}
	bodyLen := 4 + 2 + len(c.opts.Tenant) + 2 + len(c.opts.Model)
	err = cc.writeFrame(frameHello, bodyLen, func(b []byte) []byte {
		return netfront.AppendHello(b, id, c.opts.Tenant, c.opts.Model)
	})
	if err != nil {
		cc.deregister(id)
		return err
	}
	var deadline time.Time
	if c.opts.DialTimeout > 0 {
		deadline = time.Now().Add(c.opts.DialTimeout)
	}
	r, err := cc.await(id, p, deadline)
	if err != nil {
		return err
	}
	c.version.Store(r.hops)
	return nil
}

// ModelVersion returns the served model's version from the most recent
// hello acknowledgement — zero before any handshake (no Tenant/Model set)
// or against a single-server backend.
func (c *Client) ModelVersion() uint64 { return c.version.Load() }

// dialRaw performs one bounded transport dial via DialFunc or net.
func (c *Client) dialRaw() (net.Conn, error) {
	if c.opts.DialFunc != nil {
		return c.opts.DialFunc(c.network, c.addr)
	}
	if c.opts.DialTimeout < 0 {
		return net.Dial(c.network, c.addr)
	}
	return net.DialTimeout(c.network, c.addr, c.opts.DialTimeout)
}

// newClientConn wraps an established socket and starts its read loop.
func newClientConn(c *Client, nc net.Conn) *clientConn {
	cc := &clientConn{
		owner:   c,
		nc:      nc,
		pending: make(map[uint32]*pendingReply),
		streams: make(map[uint32]*Stream),
		done:    make(chan struct{}),
	}
	go cc.readLoop()
	return cc
}

// jitter draws from the client's deterministic jitter source.
func (c *Client) jitter() *rand.Rand { return c.rng }

// backoffSleep applies the attempt'th backoff of pol, bounded by deadline;
// it reports false when the deadline would pass before the wait ends.
func (c *Client) backoffSleep(pol RetryPolicy, attempt int, deadline time.Time, floor time.Duration) bool {
	c.rmu.Lock()
	d := pol.backoff(attempt, c.rng)
	c.rmu.Unlock()
	if floor > d {
		d = floor
	}
	if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
		return false
	}
	time.Sleep(d)
	return true
}

// Close tears down the client. Outstanding requests fail with ErrClosed;
// open streams stop receiving callbacks; no redial follows. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		cc := c.cc
		c.mu.Unlock()
		if cc != nil {
			<-cc.done
		}
		return nil
	}
	c.closed = true
	cc := c.cc
	c.mu.Unlock()
	if cc == nil {
		return nil
	}
	err := cc.nc.Close()
	<-cc.done // read loop has failed every pending request
	return err
}

// conn returns a live transport generation, redialing with backoff when
// the current one is dead and Options.Redial allows. deadline bounds the
// whole acquisition.
func (c *Client) conn(deadline time.Time) (*clientConn, error) {
	pol := c.opts.Retry.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		cc := c.cc
		if cc != nil && cc.alive() {
			c.mu.Unlock()
			return cc, nil
		}
		if !c.opts.Redial {
			c.mu.Unlock()
			return nil, ErrConnLost
		}
		c.mu.Unlock()
		if attempt >= c.opts.RedialMax {
			if lastErr == nil {
				lastErr = ErrConnLost
			}
			return nil, lastErr
		}
		if attempt > 0 && !c.backoffSleep(pol, attempt-1, deadline, retryAfterHint(lastErr)) {
			return nil, ErrDeadlineExceeded
		}
		nc, err := c.dialRaw()
		if err != nil {
			lastErr = err
			continue
		}
		c.mu.Lock()
		switch {
		case c.closed:
			c.mu.Unlock()
			nc.Close()
			return nil, ErrClosed
		case c.cc != nil && c.cc.alive():
			// A concurrent caller won the redial race; ride its conn.
			c.mu.Unlock()
			nc.Close()
		default:
			cc := newClientConn(c, nc)
			c.cc = cc
			c.mu.Unlock()
			c.statRedials.Add(1)
			// Re-bind tenant/model on the fresh generation. A server
			// rejection (unknown model) is terminal — redialing cannot
			// fix it; a transport failure just feeds the redial loop.
			if err := c.handshake(cc); err != nil {
				var re *RemoteError
				if errors.As(err, &re) {
					return nil, err
				}
				lastErr = err
			}
		}
	}
}

// isClosed reports a user-initiated Close.
func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// alive reports whether the generation's transport is still usable.
func (cc *clientConn) alive() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err == nil
}

// kill closes the socket so the read loop observes the failure and fails
// the generation exactly once.
func (cc *clientConn) kill() { cc.nc.Close() }

// fail terminates the generation: every pending request gets err, every
// stream breaks (one ErrStreamBroken callback, then its closed channel).
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := make([]*pendingReply, 0, len(cc.pending))
	for id, p := range cc.pending {
		delete(cc.pending, id)
		pending = append(pending, p)
	}
	streams := make([]*Stream, 0, len(cc.streams))
	for id, s := range cc.streams {
		delete(cc.streams, id)
		streams = append(streams, s)
	}
	err = cc.err
	cc.mu.Unlock()
	for _, p := range pending {
		p.ch <- reply{err: err}
	}
	for _, s := range streams {
		s.err = ErrStreamBroken
		if s.fn != nil {
			s.fn(NoHop, -1, ErrStreamBroken)
		}
		close(s.closed)
	}
	close(cc.done)
}

// readLoop dispatches response frames to their requests/streams until the
// transport dies, then fails the generation (ErrClosed on user Close,
// ErrConnLost otherwise — the retryable flavor).
func (cc *clientConn) readLoop() {
	var hdr [netfront.HeaderLen]byte
	var body []byte
	for {
		typ, b, err := netfront.ReadFrame(cc.nc, &hdr, body, netfront.DefaultMaxBody)
		body = b[:cap(b)]
		if err != nil {
			if cc.owner.isClosed() {
				cc.fail(ErrClosed)
			} else {
				cc.fail(ErrConnLost)
			}
			return
		}
		switch typ {
		case frameResult:
			if len(b) != 8 {
				cc.failProto("malformed result frame", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			label := int32(binary.LittleEndian.Uint32(b[4:8]))
			cc.deliver(id, reply{labels: []int32{label}})
		case frameBusy:
			if len(b) != 8 {
				cc.failProto("malformed busy frame", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			retry := time.Duration(binary.LittleEndian.Uint32(b[4:8])) * time.Millisecond
			cc.owner.statBusy.Add(1)
			cc.deliver(id, reply{err: &BusyError{RetryAfter: retry}})
		case frameError:
			if len(b) < 4 {
				cc.failProto("malformed error frame", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			we, err := netfront.DecodeWireError(b[4:])
			if err != nil {
				cc.failProto("malformed wire error", len(b))
				return
			}
			rerr := &RemoteError{Code: we.Code, RetryAfter: we.RetryAfter, Msg: we.Msg}
			// A FrameError may belong to a stream (a control failure,
			// delivered via its callback as NoHop) or to a pending
			// one-shot/batch request.
			cc.mu.Lock()
			s := cc.streams[id]
			cc.mu.Unlock()
			if s != nil {
				s.fn(NoHop, -1, rerr)
			} else {
				cc.deliver(id, reply{err: rerr})
			}
		case frameStreamError:
			if len(b) < 12 {
				cc.failProto("malformed stream error", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hop := binary.LittleEndian.Uint64(b[4:12])
			we, err := netfront.DecodeWireError(b[12:])
			if err != nil {
				cc.failProto("malformed stream wire error", len(b))
				return
			}
			cc.mu.Lock()
			s := cc.streams[id]
			cc.mu.Unlock()
			if s != nil {
				s.fn(hop, -1, &RemoteError{Code: we.Code, RetryAfter: we.RetryAfter, Msg: we.Msg})
			}
		case frameBatchResult:
			if len(b) < 8 {
				cc.failProto("malformed batch result", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			n := int(binary.LittleEndian.Uint32(b[4:8]))
			if n < 0 || len(b) != 8+4*n {
				cc.failProto("batch result count does not match body", len(b))
				return
			}
			labels := make([]int32, n)
			for i := range labels {
				labels[i] = int32(binary.LittleEndian.Uint32(b[8+4*i:]))
			}
			cc.deliver(id, reply{labels: labels})
		case frameStreamResult:
			if len(b) != 16 {
				cc.failProto("malformed stream result", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hop := binary.LittleEndian.Uint64(b[4:12])
			label := int32(binary.LittleEndian.Uint32(b[12:16]))
			cc.mu.Lock()
			s := cc.streams[id]
			cc.mu.Unlock()
			if s != nil {
				s.fn(hop, int(label), nil)
			}
		case frameHelloAck:
			if len(b) != 12 {
				cc.failProto("malformed hello ack", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			version := binary.LittleEndian.Uint64(b[4:12])
			cc.deliver(id, reply{hops: version})
		case frameHealthAck:
			id, models, err := netfront.DecodeHealthAck(b)
			if err != nil {
				cc.failProto("malformed health ack", len(b))
				return
			}
			cc.deliver(id, reply{health: models})
		case frameStreamClosed:
			if len(b) != 12 {
				cc.failProto("malformed stream-closed frame", len(b))
				return
			}
			id := binary.LittleEndian.Uint32(b[0:4])
			hops := binary.LittleEndian.Uint64(b[4:12])
			cc.mu.Lock()
			s := cc.streams[id]
			delete(cc.streams, id)
			cc.mu.Unlock()
			if s != nil {
				s.hops = hops
				close(s.closed)
			}
		default:
			cc.failProto(fmt.Sprintf("unknown response frame 0x%02x", typ), len(b))
			return
		}
	}
}

// failProto fails the generation on a protocol violation by the server —
// the connection cannot resync, so it is dead.
func (cc *clientConn) failProto(what string, n int) {
	cc.nc.Close()
	cc.fail(fmt.Errorf("%w: %s (%d bytes)", ErrConnLost, what, n))
}

// deliver hands a reply to its pending request, if still registered (a
// request that timed out client-side deregisters itself; its late reply is
// dropped here).
func (cc *clientConn) deliver(id uint32, r reply) {
	cc.mu.Lock()
	p := cc.pending[id]
	delete(cc.pending, id)
	cc.mu.Unlock()
	if p != nil {
		p.ch <- r
	}
}

// register allocates a request id and its reply slot.
func (cc *clientConn) register() (uint32, *pendingReply, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return 0, nil, cc.err
	}
	id := cc.nextID
	cc.nextID++
	p := &pendingReply{ch: make(chan reply, 1)}
	cc.pending[id] = p
	return id, p, nil
}

// registerCh is register with a caller-supplied reply channel: hedged
// attempts of one call share a single channel so the first completion wins
// regardless of which attempt produced it. The channel must have capacity
// for every id that will share it — deliver and fail send without
// coordination.
func (cc *clientConn) registerCh(ch chan reply) (uint32, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return 0, cc.err
	}
	id := cc.nextID
	cc.nextID++
	cc.pending[id] = &pendingReply{ch: ch}
	return id, nil
}

// deregister abandons a pending request (client-side timeout): a reply
// arriving later is dropped by deliver.
func (cc *clientConn) deregister(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// writeFrame builds and sends one frame; payload is appended by fill. A
// write failure kills the generation (the socket is closed so the read
// loop fails every pending request) and reports ErrConnLost.
func (cc *clientConn) writeFrame(typ byte, bodyLen int, fill func([]byte) []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.wbuf = netfront.AppendFrameHeader(cc.wbuf[:0], typ, bodyLen)
	cc.wbuf = fill(cc.wbuf)
	if _, err := cc.nc.Write(cc.wbuf); err != nil {
		cc.kill()
		return fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return nil
}

// await blocks for the request's reply, bounded by deadline.
func (cc *clientConn) await(id uint32, p *pendingReply, deadline time.Time) (reply, error) {
	if deadline.IsZero() {
		r := <-p.ch
		return r, r.err
	}
	wait := time.Until(deadline)
	if wait <= 0 {
		cc.deregister(id)
		return reply{}, ErrDeadlineExceeded
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case r := <-p.ch:
		return r, r.err
	case <-t.C:
		cc.deregister(id)
		return reply{}, ErrDeadlineExceeded
	}
}

// classify runs one request attempt on this generation.
func (cc *clientConn) classify(samples []int16, deadline time.Time) (int, error) {
	id, p, err := cc.register()
	if err != nil {
		return -1, err
	}
	err = cc.writeFrame(frameUtterance, 4+2*len(samples), func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, id)
		return netfront.AppendSamples(b, samples)
	})
	if err != nil {
		cc.deregister(id)
		return -1, err
	}
	r, err := cc.await(id, p, deadline)
	if err != nil {
		return -1, err
	}
	return int(r.labels[0]), nil
}

// classifyHedged runs one logical request as up to 1+max wire attempts:
// the first immediately, each further one when the hedge delay elapses
// without a reply, or immediately when every outstanding attempt has
// already failed. All attempts share one buffered reply channel, so the
// first success wins no matter which attempt produced it; the losers are
// deregistered and their late replies dropped by deliver. The channel's
// capacity (1+max) covers the worst case of every attempt answering —
// deliver and fail never block. No goroutine is spawned per hedge: one
// timer drives the schedule.
func (cc *clientConn) classifyHedged(samples []int16, deadline time.Time, delay time.Duration, max int) (int, error) {
	ch := make(chan reply, 1+max)
	ids := make([]uint32, 0, 1+max)
	launch := func() error {
		id, err := cc.registerCh(ch)
		if err != nil {
			return err
		}
		err = cc.writeFrame(frameUtterance, 4+2*len(samples), func(b []byte) []byte {
			b = binary.LittleEndian.AppendUint32(b, id)
			return netfront.AppendSamples(b, samples)
		})
		if err != nil {
			cc.deregister(id)
			return err
		}
		if len(ids) > 0 {
			cc.owner.statHedges.Add(1)
		}
		ids = append(ids, id)
		return nil
	}
	abandon := func() {
		for _, id := range ids {
			cc.deregister(id)
		}
	}
	if err := launch(); err != nil {
		return -1, err
	}
	outstanding := 1
	var firstErr error
	hedger := time.NewTimer(delay)
	defer hedger.Stop()
	var deadlineC <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			abandon()
			return -1, ErrDeadlineExceeded
		}
		dt := time.NewTimer(wait)
		defer dt.Stop()
		deadlineC = dt.C
	}
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				// First success wins. Deregister the losers so their late
				// replies are dropped (the winner's id is already gone —
				// deliver removed it — so this is loser-only cleanup).
				abandon()
				return int(r.labels[0]), nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding > 0 {
				continue
			}
			// Every attempt so far failed: don't sit out the rest of the
			// hedge delay, spend remaining budget now or give up.
			if len(ids) >= 1+max || launch() != nil {
				return -1, firstErr
			}
			outstanding++
		case <-hedger.C:
			if len(ids) < 1+max {
				// A hedge whose write fails is a failed attempt: the
				// socket is dying, so the outstanding attempts are about
				// to fail through this same channel — no special path.
				if err := launch(); err == nil {
					outstanding++
				}
			}
			if len(ids) < 1+max {
				hedger.Reset(delay)
			}
		case <-deadlineC:
			abandon()
			return -1, ErrDeadlineExceeded
		}
	}
}

// retryable reports whether err is worth retrying: backpressure, transport
// loss, or a server failure whose code (plus retry-after hint) marks it
// transient. The policy is code-aware, not hint-only: backpressure codes
// (BUSY, deadline shed, recovered panic) are structurally transient and
// retry even without a hint, while CodeUnavailable and CodeModelSwapped
// retry exactly when the server attached a retry-after hint — a draining
// server hints zero (redialing now is pointless), a hot swap hints the
// backoff to the new generation.
func retryable(err error) bool {
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrConnLost) {
		return true
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	switch re.Code {
	case netfront.CodeBusy, netfront.CodeDeadlineExceeded, netfront.CodePanic:
		return true
	case netfront.CodeUnavailable, netfront.CodeModelSwapped:
		return re.RetryAfter > 0
	default:
		return re.Retryable()
	}
}

// retryAfterHint extracts the server's backoff hint, if any.
func retryAfterHint(err error) time.Duration {
	var be *BusyError
	if errors.As(err, &be) {
		return be.RetryAfter
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// Classify submits one utterance and blocks for its label, retrying per
// Options.Retry. ErrBusy reports server backpressure (nothing was
// enqueued); a *RemoteError is a per-request server-side failure.
func (c *Client) Classify(samples []int16) (int, error) {
	return c.ClassifyDeadline(samples, time.Time{})
}

// ClassifyDeadline is Classify bounded by a client-side deadline covering
// everything — queueing, inference, retries, and any redial. A zero
// deadline means unbounded. On timeout it returns ErrDeadlineExceeded and
// discards the late reply. Retries follow Options.Retry: exponential
// backoff with deterministic jitter, floored by the server's retry-after
// hint, on BUSY, transport loss and server failures flagged transient.
func (c *Client) ClassifyDeadline(samples []int16, deadline time.Time) (int, error) {
	pol := c.opts.Retry.withDefaults()
	hedge := c.opts.Hedge.withDefaults()
	for attempt := 0; ; attempt++ {
		cc, err := c.conn(deadline)
		if err != nil {
			return -1, err
		}
		var label int
		if hedge.Delay > 0 {
			label, err = cc.classifyHedged(samples, deadline, hedge.Delay, hedge.Max)
		} else {
			label, err = cc.classify(samples, deadline)
		}
		if err == nil {
			return label, nil
		}
		if attempt >= pol.Attempts || !retryable(err) || c.isClosed() {
			return -1, err
		}
		if !c.backoffSleep(pol, attempt, deadline, retryAfterHint(err)) {
			return -1, err
		}
		c.statRetries.Add(1)
	}
}

// Health queries the server's live shard-health snapshot (FrameHealth,
// wire v3): per model, the breaker state, generation, failure rate and
// rebuild count of every shard. Against a single-model server without a
// registry the reply is one synthesized always-closed pseudo-shard. Health
// does not retry; under Options.Redial it still migrates to a fresh
// connection when the old one died before the query.
func (c *Client) Health() ([]core.ModelHealth, error) {
	cc, err := c.conn(time.Time{})
	if err != nil {
		return nil, err
	}
	id, p, err := cc.register()
	if err != nil {
		return nil, err
	}
	err = cc.writeFrame(frameHealth, 4, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, id)
	})
	if err != nil {
		cc.deregister(id)
		return nil, err
	}
	r, err := cc.await(id, p, time.Time{})
	if err != nil {
		return nil, err
	}
	return r.health, nil
}

// ClassifyBatch submits a whole batch and blocks for its labels, one per
// utterance in order; an utterance the server failed to classify reports
// label -1. Batches do not retry (size their own policy around the call);
// under Options.Redial the submission itself still migrates to a fresh
// connection when the old one died before the attempt.
func (c *Client) ClassifyBatch(utts [][]int16) ([]int, error) {
	cc, err := c.conn(time.Time{})
	if err != nil {
		return nil, err
	}
	id, p, err := cc.register()
	if err != nil {
		return nil, err
	}
	bodyLen := 8
	for _, u := range utts {
		bodyLen += 4 + 2*len(u)
	}
	err = cc.writeFrame(frameBatch, bodyLen, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, id)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(utts)))
		for _, u := range utts {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(u)))
			b = netfront.AppendSamples(b, u)
		}
		return b
	})
	if err != nil {
		cc.deregister(id)
		return nil, err
	}
	r := <-p.ch
	if r.err != nil {
		return nil, r.err
	}
	labels := make([]int, len(r.labels))
	for i, l := range r.labels {
		labels[i] = int(l)
	}
	return labels, nil
}

// Stream is one open audio stream, bound to the transport generation that
// opened it. Send audio with Send; results arrive through the callback
// passed to OpenStream, in hop order. Close flushes. If the connection
// dies first, the callback fires once with ErrStreamBroken and Close
// returns it — the stream never migrates to a redialed connection.
type Stream struct {
	cc     *clientConn
	id     uint32
	fn     func(hop uint64, label int, err error)
	closed chan struct{}
	hops   uint64
	err    error // ErrStreamBroken when the conn died; set before closed closes
}

// OpenStream opens a stream on the connection. fn is invoked on the
// client's read goroutine once per completed hop, strictly in hop order —
// it must not block (it stalls every response on the connection) and must
// not call back into the client. A non-nil err in the callback reports a
// failure: a per-hop *RemoteError carries its real hop number (that hop
// produced no label), a stream-level failure carries NoHop — including the
// final ErrStreamBroken of a dead connection.
func (c *Client) OpenStream(fn func(hop uint64, label int, err error)) (*Stream, error) {
	cc, err := c.conn(time.Time{})
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return nil, cc.err
	}
	id := cc.nextID
	cc.nextID++
	s := &Stream{cc: cc, id: id, fn: fn, closed: make(chan struct{})}
	cc.streams[id] = s
	cc.mu.Unlock()
	err = cc.writeFrame(frameStreamOpen, 4, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, id)
	})
	if err != nil {
		cc.mu.Lock()
		delete(cc.streams, id)
		cc.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Send appends a chunk of audio to the stream. Results for hops the chunk
// completes arrive asynchronously through the stream callback. After the
// stream's connection died Send reports ErrStreamBroken; after a clean
// Close it reports ErrClosed.
func (s *Stream) Send(chunk []int16) error {
	select {
	case <-s.closed:
		if s.err != nil {
			return s.err
		}
		return ErrClosed
	default:
	}
	return s.cc.writeFrame(frameStreamChunk, 4+2*len(chunk), func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, s.id)
		return netfront.AppendSamples(b, chunk)
	})
}

// Close flushes the stream — it blocks until the server has delivered every
// outstanding hop's result (all callbacks have run) — and returns the total
// number of hops the stream classified. A stream whose connection died
// returns ErrStreamBroken with the hop count unknown (zero).
func (s *Stream) Close() (uint64, error) {
	err := s.cc.writeFrame(frameStreamClose, 4, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, s.id)
	})
	if err != nil {
		// The write failed, so the conn is dead or dying: the read loop's
		// fail() will break the stream; wait so Close's result is settled.
		<-s.closed
		if s.err != nil {
			return 0, s.err
		}
		return 0, err
	}
	<-s.closed
	if s.err != nil {
		return 0, s.err
	}
	return s.hops, nil
}
