package client

import (
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
)

// fakeServer is a scripted protocol peer: each accepted connection is
// handed to handle, which speaks raw frames — the client's failure paths
// get exercised without a model or a core.Server.
func fakeServer(t *testing.T, handle func(conn net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go handle(nc)
		}
	}()
	return l.Addr().String()
}

// readReq reads one request frame, failing the conn silently on error.
func readReq(nc net.Conn) (byte, []byte, bool) {
	var hdr [netfront.HeaderLen]byte
	typ, body, err := netfront.ReadFrame(nc, &hdr, nil, netfront.DefaultMaxBody)
	return typ, body, err == nil
}

// writeFrame sends one response frame.
func writeFrame(nc net.Conn, typ byte, body []byte) {
	out := netfront.AppendFrameHeader(nil, typ, len(body))
	nc.Write(append(out, body...))
}

// resultFrame builds a FrameResult body.
func resultFrame(id uint32, label int32) []byte {
	b := binary.LittleEndian.AppendUint32(nil, id)
	return binary.LittleEndian.AppendUint32(b, uint32(label))
}

// TestDialTimeoutNonListening pins the satellite fix: Dial against a
// non-listening address must fail, and fail within the configured timeout
// rather than hanging in an unbounded connect.
func TestDialTimeoutNonListening(t *testing.T) {
	// Reserve a port that is then closed: a local address with no listener
	// refuses or times out, never accepts.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	start := time.Now()
	c, err := DialOptions("tcp", addr, Options{DialTimeout: 250 * time.Millisecond})
	if err == nil {
		c.Close()
		t.Fatal("dial of a non-listening address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial failure took %v, not bounded by the 250ms timeout", elapsed)
	}
}

// TestRetryOnBusy pins the opt-in retry policy: BUSY with a retry-after
// hint is retried with backoff until the server accepts, while a client
// without retries surfaces ErrBusy (as a *BusyError carrying the hint).
func TestRetryOnBusy(t *testing.T) {
	var attempts atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			_, body, ok := readReq(nc)
			if !ok {
				return
			}
			id := binary.LittleEndian.Uint32(body[0:4])
			if attempts.Add(1) <= 2 {
				busy := binary.LittleEndian.AppendUint32(nil, id)
				busy = binary.LittleEndian.AppendUint32(busy, 1) // retry after 1ms
				writeFrame(nc, netfront.FrameBusy, busy)
				continue
			}
			writeFrame(nc, netfront.FrameResult, resultFrame(id, 7))
		}
	})

	// Without retries: the BusyError surfaces, errors.Is matches ErrBusy,
	// and the hint is preserved.
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Classify([]int16{1, 2, 3})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("no-retry busy: err = %v, want ErrBusy", err)
	}
	var be *BusyError
	if !errors.As(err, &be) || be.RetryAfter != time.Millisecond {
		t.Fatalf("busy error %#v lacks the 1ms retry-after hint", err)
	}
	c.Close()

	// With retries: two BUSYs then success.
	attempts.Store(0)
	c, err = DialOptions("tcp", addr, Options{
		Retry: RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, err := c.Classify([]int16{1, 2, 3})
	if err != nil || label != 7 {
		t.Fatalf("retried classify: label=%d err=%v, want 7", label, err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

// TestClientDeadline pins ClassifyDeadline: a server that never answers
// must not hang the caller past its deadline.
func TestClientDeadline(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		// Read requests, answer nothing.
		for {
			if _, _, ok := readReq(nc); !ok {
				nc.Close()
				return
			}
		}
	})
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.ClassifyDeadline([]int16{1}, time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// The timed-out request deregistered itself: a later request gets a
	// fresh id and the connection is still usable for registration.
	if c.cc == nil || !c.cc.alive() {
		t.Fatal("connection died after a client-side timeout")
	}
}

// TestRedialAfterConnLoss pins automatic redial: a connection the server
// drops mid-request fails that attempt with ErrConnLost (retryable), and
// the retry loop transparently redials and succeeds.
func TestRedialAfterConnLoss(t *testing.T) {
	var conns atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		if conns.Add(1) == 1 {
			// First connection: read the request, then hang up mid-exchange.
			readReq(nc)
			return
		}
		for {
			_, body, ok := readReq(nc)
			if !ok {
				return
			}
			id := binary.LittleEndian.Uint32(body[0:4])
			writeFrame(nc, netfront.FrameResult, resultFrame(id, 3))
		}
	})
	c, err := DialOptions("tcp", addr, Options{
		Redial: true,
		Retry:  RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, err := c.Classify([]int16{5})
	if err != nil || label != 3 {
		t.Fatalf("classify across conn loss: label=%d err=%v, want 3", label, err)
	}
	if n := conns.Load(); n < 2 {
		t.Fatalf("server saw %d connections, want a redial", n)
	}

	// Without Redial, a lost conn is terminal: every later request fails
	// with ErrConnLost, which still wraps ErrClosed.
	c2, err := DialOptions("tcp", addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.cc.kill()
	<-c2.cc.done
	_, err = c2.Classify([]int16{5})
	if !errors.Is(err, ErrConnLost) || !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrConnLost wrapping ErrClosed", err)
	}
}

// TestStreamBroken pins stream semantics across connection loss: the
// callback observes exactly one ErrStreamBroken (with NoHop), Close
// returns it, later Sends report it, and the stream is never resumed on a
// redialed connection.
func TestStreamBroken(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		// Accept the stream open, then drop the connection.
		readReq(nc)
		nc.Close()
	})
	broken := make(chan error, 4)
	c, err := DialOptions("tcp", addr, Options{Redial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.OpenStream(func(hop uint64, label int, err error) {
		if hop == NoHop {
			broken <- err
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-broken:
		if !errors.Is(err, ErrStreamBroken) {
			t.Fatalf("callback err = %v, want ErrStreamBroken", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream callback never observed the broken connection")
	}
	if _, err := s.Close(); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("Close: %v, want ErrStreamBroken", err)
	}
	if err := s.Send([]int16{1}); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("Send after break: %v, want ErrStreamBroken", err)
	}
	select {
	case err := <-broken:
		t.Fatalf("second stream-broken callback: %v", err)
	default:
	}
}

// TestRemoteErrorNotRetried pins that a non-retryable structured error
// (zero retry-after) fails immediately even under an aggressive retry
// policy, carrying its wire code.
func TestRemoteErrorNotRetried(t *testing.T) {
	var attempts atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			_, body, ok := readReq(nc)
			if !ok {
				return
			}
			attempts.Add(1)
			id := binary.LittleEndian.Uint32(body[0:4])
			out := binary.LittleEndian.AppendUint32(nil, id)
			out = netfront.AppendWireError(out, netfront.WireError{Code: netfront.CodeBadRequest, Msg: "nope"})
			writeFrame(nc, netfront.FrameError, out)
		}
	})
	c, err := DialOptions("tcp", addr, Options{
		Retry: RetryPolicy{Attempts: 5, Base: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Classify([]int16{1})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != netfront.CodeBadRequest || re.Retryable() {
		t.Fatalf("err = %v, want non-retryable CodeBadRequest RemoteError", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("non-retryable error was attempted %d times", n)
	}
}

// errorFrame builds a FrameError body carrying a structured wire error.
func errorFrame(id uint32, code uint16, retryAfter time.Duration, msg string) []byte {
	out := binary.LittleEndian.AppendUint32(nil, id)
	return netfront.AppendWireError(out, netfront.WireError{Code: code, RetryAfter: retryAfter, Msg: msg})
}

// TestRetryOnSwappedAndUnavailable pins the code-aware retry policy
// (ISSUE 8 satellite): CodeModelSwapped and CodeUnavailable carrying a
// retry-after hint are retried like BUSY; the same codes without a hint
// surface immediately.
func TestRetryOnSwappedAndUnavailable(t *testing.T) {
	for _, code := range []uint16{netfront.CodeModelSwapped, netfront.CodeUnavailable} {
		// With a hint: two failures then success must be absorbed.
		var attempts atomic.Int32
		addr := fakeServer(t, func(nc net.Conn) {
			defer nc.Close()
			for {
				_, body, ok := readReq(nc)
				if !ok {
					return
				}
				id := binary.LittleEndian.Uint32(body[0:4])
				if attempts.Add(1) <= 2 {
					writeFrame(nc, netfront.FrameError, errorFrame(id, code, time.Millisecond, "swapping"))
					continue
				}
				writeFrame(nc, netfront.FrameResult, resultFrame(id, 9))
			}
		})
		c, err := DialOptions("tcp", addr, Options{
			Retry: RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		label, err := c.Classify([]int16{1, 2})
		if err != nil || label != 9 {
			t.Fatalf("code %d with hint: label=%d err=%v, want retried success 9", code, label, err)
		}
		if n := attempts.Load(); n != 3 {
			t.Fatalf("code %d with hint: server saw %d attempts, want 3", code, n)
		}
		c.Close()

		// Without a hint: the same code must NOT be retried (a draining
		// server's unavailable is terminal for this connection).
		var bare atomic.Int32
		addr = fakeServer(t, func(nc net.Conn) {
			defer nc.Close()
			for {
				_, body, ok := readReq(nc)
				if !ok {
					return
				}
				bare.Add(1)
				id := binary.LittleEndian.Uint32(body[0:4])
				writeFrame(nc, netfront.FrameError, errorFrame(id, code, 0, "gone"))
			}
		})
		c, err = DialOptions("tcp", addr, Options{
			Retry: RetryPolicy{Attempts: 5, Base: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Classify([]int16{1, 2})
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != code {
			t.Fatalf("code %d without hint: err = %v, want RemoteError", code, err)
		}
		if n := bare.Load(); n != 1 {
			t.Fatalf("code %d without hint was attempted %d times, want 1", code, n)
		}
		c.Close()
	}
}

// TestHelloHandshake pins the v3 handshake: a client with Tenant/Model set
// sends FrameHello before any request, records the acked model version,
// re-binds on redial, and fails the dial outright when the server rejects
// the model.
func TestHelloHandshake(t *testing.T) {
	var hellos atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			typ, body, ok := readReq(nc)
			if !ok {
				return
			}
			switch typ {
			case netfront.FrameHello:
				id, tenant, model, err := netfront.DecodeHello(body)
				if err != nil || tenant != "acme" || model != "kws" {
					writeFrame(nc, netfront.FrameError, errorFrame(id, netfront.CodeBadRequest, 0, "bad hello"))
					return
				}
				hellos.Add(1)
				ack := binary.LittleEndian.AppendUint32(nil, id)
				ack = binary.LittleEndian.AppendUint64(ack, 42)
				writeFrame(nc, netfront.FrameHelloAck, ack)
			case netfront.FrameUtterance:
				id := binary.LittleEndian.Uint32(body[0:4])
				writeFrame(nc, netfront.FrameResult, resultFrame(id, 3))
			}
		}
	})

	c, err := DialOptions("tcp", addr, Options{Tenant: "acme", Model: "kws", Redial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ModelVersion(); v != 42 {
		t.Fatalf("model version %d after handshake, want 42", v)
	}
	if label, err := c.Classify([]int16{1}); err != nil || label != 3 {
		t.Fatalf("classify after handshake: label=%d err=%v", label, err)
	}
	if n := hellos.Load(); n != 1 {
		t.Fatalf("server saw %d hellos, want 1", n)
	}

	// Kill the transport: the next request must redial AND re-handshake.
	c.mu.Lock()
	c.cc.nc.Close()
	c.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if label, err := c.Classify([]int16{1}); err == nil && label == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("classify never recovered after transport loss")
		}
	}
	if n := hellos.Load(); n != 2 {
		t.Fatalf("server saw %d hellos after redial, want 2", n)
	}

	// A server that rejects the model fails the dial.
	if c, err := DialOptions("tcp", addr, Options{Tenant: "acme", Model: "wrong"}); err == nil {
		c.Close()
		t.Fatal("dial with rejected model succeeded")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != netfront.CodeBadRequest {
			t.Fatalf("rejected model: err = %v, want CodeBadRequest RemoteError", err)
		}
	}
}

// TestHedgedFirstReplyWins pins the hedging contract: when the first
// attempt stalls past Hedge.Delay a duplicate fires, the first reply to
// land wins, and the loser's late reply is silently dropped — the call
// delivers exactly one completion and the connection stays healthy for
// later requests.
func TestHedgedFirstReplyWins(t *testing.T) {
	var attempts atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		var stalled uint32
		for {
			_, body, ok := readReq(nc)
			if !ok {
				return
			}
			id := binary.LittleEndian.Uint32(body[0:4])
			switch attempts.Add(1) {
			case 1:
				// Stall the first attempt: no reply until the hedge won.
				stalled = id
			case 2:
				// The hedge: answer immediately, then release the stalled
				// first attempt with a DIFFERENT label — if the client ever
				// surfaced it, the winner assertion below would catch it.
				writeFrame(nc, netfront.FrameResult, resultFrame(id, 5))
				writeFrame(nc, netfront.FrameResult, resultFrame(stalled, 7))
			default:
				writeFrame(nc, netfront.FrameResult, resultFrame(id, 3))
			}
		}
	})
	c, err := DialOptions("tcp", addr, Options{
		Hedge: HedgePolicy{Delay: 10 * time.Millisecond, Max: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, err := c.Classify([]int16{1, 2, 3})
	if err != nil || label != 5 {
		t.Fatalf("hedged classify: label=%d err=%v, want the hedge's 5", label, err)
	}
	// The loser's late reply must have been dropped, not queued: a fresh
	// request gets a fresh answer.
	label, err = c.Classify([]int16{4})
	if err != nil || label != 3 {
		t.Fatalf("classify after hedge: label=%d err=%v, want 3", label, err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("server saw %d utterances, want 3 (two hedged + one plain)", n)
	}
}

// TestHedgedAttemptsBounded pins the hedge budget: a server that never
// answers sees at most 1+Max attempts for one call — the hedger stops
// firing once the budget is spent — and the call ends at its deadline.
func TestHedgedAttemptsBounded(t *testing.T) {
	var attempts atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			if _, _, ok := readReq(nc); !ok {
				return
			}
			attempts.Add(1)
		}
	})
	c, err := DialOptions("tcp", addr, Options{
		Hedge: HedgePolicy{Delay: 5 * time.Millisecond, Max: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ClassifyDeadline([]int16{1}, time.Now().Add(150*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want exactly 1+Max = 3", n)
	}
	if c.cc == nil || !c.cc.alive() {
		t.Fatal("connection died after an abandoned hedged call")
	}
}

// TestRetryFloorsOnServerHint pins the satellite fix: the server's computed
// retry-after hint floors the retry backoff even when it exceeds the
// policy's Max — a 75ms hint against a 2ms cap must still hold the client
// off for the full 75ms.
func TestRetryFloorsOnServerHint(t *testing.T) {
	const hintMillis = 75
	var attempts atomic.Int32
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			_, body, ok := readReq(nc)
			if !ok {
				return
			}
			id := binary.LittleEndian.Uint32(body[0:4])
			if attempts.Add(1) == 1 {
				busy := binary.LittleEndian.AppendUint32(nil, id)
				busy = binary.LittleEndian.AppendUint32(busy, hintMillis)
				writeFrame(nc, netfront.FrameBusy, busy)
				continue
			}
			writeFrame(nc, netfront.FrameResult, resultFrame(id, 4))
		}
	})
	c, err := DialOptions("tcp", addr, Options{
		Retry: RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	label, err := c.Classify([]int16{9})
	if err != nil || label != 4 {
		t.Fatalf("classify: label=%d err=%v, want 4", label, err)
	}
	if elapsed := time.Since(start); elapsed < hintMillis*time.Millisecond {
		t.Fatalf("retry waited only %v; the %dms server hint must floor the 2ms policy cap", elapsed, hintMillis)
	}
}

// TestClientHealthQuery pins the FrameHealth admin round trip: the typed
// snapshot crosses the wire losslessly.
func TestClientHealthQuery(t *testing.T) {
	want := []core.ModelHealth{{
		Model:   "kws",
		Version: 7,
		Shards: []core.ShardStatus{
			{Shard: 0, State: core.BreakerClosed, Gen: 2, FailureRate: 0.25, Rebuilds: 1, Workers: 4, Live: 4},
			{Shard: 1, State: core.BreakerOpen, ConsecutiveFailures: 9, FailureRate: 1, Trips: 3, Workers: 4, Live: 0},
		},
	}}
	addr := fakeServer(t, func(nc net.Conn) {
		defer nc.Close()
		for {
			typ, body, ok := readReq(nc)
			if !ok {
				return
			}
			if typ != netfront.FrameHealth || len(body) != 4 {
				t.Errorf("server saw frame 0x%02x (%d bytes), want FrameHealth", typ, len(body))
				return
			}
			id := binary.LittleEndian.Uint32(body[0:4])
			writeFrame(nc, netfront.FrameHealthAck, netfront.AppendHealthAck(nil, id, want))
		}
	})
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Model != "kws" || got[0].Version != 7 || len(got[0].Shards) != 2 {
		t.Fatalf("health snapshot mangled: %+v", got)
	}
	for i, s := range got[0].Shards {
		w := want[0].Shards[i]
		if s.State != w.State || s.Gen != w.Gen || s.ConsecutiveFailures != w.ConsecutiveFailures ||
			s.Trips != w.Trips || s.Rebuilds != w.Rebuilds || s.Workers != w.Workers || s.Live != w.Live {
			t.Fatalf("shard %d mangled: got %+v want %+v", i, s, w)
		}
		if d := s.FailureRate - w.FailureRate; d > 0.01 || d < -0.01 {
			t.Fatalf("shard %d failure rate %v, want ~%v", i, s.FailureRate, w.FailureRate)
		}
	}
}
