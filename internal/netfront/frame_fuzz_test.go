package netfront

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameDecode feeds arbitrary byte streams through the full receive
// path — frame reader, then the per-type body decoders — asserting the
// invariants a hostile peer must not be able to break: no panics, errors
// only from the documented set, decoded payloads bounded by the bytes that
// carried them, and the reader never over- or under-consuming the stream.
// The checked-in corpus (testdata/fuzz/FuzzFrameDecode) pins the regression
// cases: truncated header, truncated body, oversize length, zero-length
// body, odd sample payload, lying batch counts.
func FuzzFrameDecode(f *testing.F) {
	// Truncated header.
	f.Add([]byte{0x01, 0x00})
	// Zero-length body (legal framing).
	f.Add(AppendFrameHeader(nil, FrameStreamClose, 0))
	// Oversize declared length.
	f.Add(AppendFrameHeader(nil, FrameUtterance, 1<<30))
	// Truncated body.
	f.Add(append(AppendFrameHeader(nil, FrameUtterance, 100), 1, 2, 3))
	// Well-formed utterance frame.
	f.Add(append(AppendFrameHeader(nil, FrameUtterance, 8), 1, 0, 0, 0, 10, 0, 20, 0))
	// Odd sample payload.
	f.Add(append(AppendFrameHeader(nil, FrameStreamChunk, 7), 1, 0, 0, 0, 10, 0, 20))
	// Batch whose count lies about the body.
	f.Add(append(AppendFrameHeader(nil, FrameBatch, 8), 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF))
	// Well-formed two-utterance batch.
	batch := []byte{9, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0, 0}
	f.Add(append(AppendFrameHeader(nil, FrameBatch, len(batch)), batch...))

	const maxBody = 1 << 16 // small cap keeps the fuzzer fast
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var hdr [HeaderLen]byte
		var buf []byte
		for {
			before := rd.Len()
			typ, body, err := ReadFrame(rd, &hdr, buf, maxBody)
			buf = body[:cap(body)]
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("ReadFrame error outside the documented set: %v", err)
				}
				return
			}
			if consumed := before - rd.Len(); consumed != HeaderLen+len(body) {
				t.Fatalf("ReadFrame consumed %d bytes for a %d-byte frame", consumed, HeaderLen+len(body))
			}
			switch typ {
			case FrameUtterance, FrameStreamChunk:
				if _, rest, err := DecodeID(body); err == nil {
					if s, err := DecodeSamples(nil, rest); err == nil && len(s) != len(rest)/2 {
						t.Fatalf("%d samples from %d payload bytes", len(s), len(rest))
					}
				}
			case FrameBatch:
				if _, utts, err := DecodeBatch(body); err == nil {
					total := 0
					for _, u := range utts {
						total += 2 * len(u)
					}
					if total > len(body) {
						t.Fatalf("batch decoded %d sample bytes from a %d-byte body", total, len(body))
					}
				}
			case FrameStreamOpen, FrameStreamClose:
				DecodeID(body)
			}
		}
	})
}
