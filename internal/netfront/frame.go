// Package netfront is the network-facing serving edge over core.Server: a
// length-prefixed binary protocol spoken over TCP or Unix sockets that
// multiplexes one-shot utterances, open audio streams and whole batches from
// many connections onto one shared inference server. It is the "ML-as-a-
// service, deployed offline" boundary the paper frames in §V — the model
// and its license checks stay on the device, and this package is how
// external load reaches them.
//
// # Wire protocol (version 1)
//
// Every frame is a 5-byte header — uint32 little-endian body length, then
// one type byte — followed by the body. Multi-byte integers are little
// endian throughout; audio samples are PCM16. Request frames carry a
// caller-chosen 32-bit id (request id for one-shot/batch, stream id for
// stream frames) that the matching response echoes, so one connection can
// interleave any number of outstanding requests.
//
//	FrameUtterance    id | int16 samples...            one-shot classification
//	FrameStreamOpen   id                               open a continuous stream
//	FrameStreamChunk  id | int16 samples...            append audio to a stream
//	FrameStreamClose  id                               flush + close a stream
//	FrameBatch        id | n | n × (len | samples...)  classify a whole batch
//
//	FrameResult       id | int32 label                 one-shot result
//	FrameStreamResult id | uint64 hop | int32 label    one hop's result, in hop order
//	FrameBusy         id                               queue full — retry later
//	FrameError        id | utf-8 message               per-request/stream-control failure
//	FrameBatchResult  id | n | n × int32 label         batch results, in order
//	FrameStreamClosed id | uint64 hops                 stream flushed; total hops
//	FrameStreamError  id | uint64 hop | utf-8 message  one hop's failure, keeping its place
//
// Backpressure: a full core.Server queue surfaces as FrameBusy for one-shot
// requests (the connection's read loop never blocks on them); stream chunks
// instead block the submitting connection — per-stream flow control — and
// batches block the submitting connection until fully enqueued. A stream's
// results always arrive in hop order (core.Stream.OnResult sequencing);
// results of different requests are unordered relative to each other.
package netfront

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types. Requests have the high bit clear, responses set.
const (
	FrameUtterance    = 0x01
	FrameStreamOpen   = 0x02
	FrameStreamChunk  = 0x03
	FrameStreamClose  = 0x04
	FrameBatch        = 0x05
	FrameResult       = 0x81
	FrameStreamResult = 0x82
	FrameBusy         = 0x83
	FrameError        = 0x84
	FrameBatchResult  = 0x85
	FrameStreamClosed = 0x86
	FrameStreamError  = 0x87
)

// HeaderLen is the fixed frame-header size: uint32 body length + type byte.
const HeaderLen = 5

// DefaultMaxBody caps a frame body when Config.MaxBody is unset: 4 MiB
// holds a 64-utterance batch of one-second 16 kHz PCM16 audio with room to
// spare, while bounding what one connection can force the peer to buffer.
const DefaultMaxBody = 4 << 20

// ErrFrameTooLarge reports a frame whose declared body length exceeds the
// receiver's limit; the connection cannot resync and must close.
var ErrFrameTooLarge = errors.New("netfront: frame exceeds maximum body size")

// ErrMalformedFrame reports a frame body that does not parse under its
// declared type. The connection cannot tell payload from framing afterwards
// and must close.
var ErrMalformedFrame = errors.New("netfront: malformed frame")

// ReadFrame reads one frame from r: the fixed header into *hdr, then the
// body into buf (grown only when its capacity is insufficient — the reuse
// that keeps a connection's steady-state read path allocation-free). It
// returns the frame type and the body slice. io.EOF is returned unwrapped
// when the reader is exactly at end of stream; a partial header or body
// reports io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, hdr *[HeaderLen]byte, buf []byte, maxBody int) (typ byte, body []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n > maxBody {
		return 0, buf, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxBody)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, body, err
	}
	return hdr[4], body, nil
}

// AppendFrameHeader appends a frame header for a body of n bytes.
func AppendFrameHeader(dst []byte, typ byte, n int) []byte {
	var h [HeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(n))
	h[4] = typ
	return append(dst, h[:]...)
}

// DecodeID splits a body that starts with the 32-bit request/stream id,
// returning the id and the rest.
func DecodeID(body []byte) (id uint32, rest []byte, err error) {
	if len(body) < 4 {
		return 0, nil, fmt.Errorf("%w: %d-byte body, want id", ErrMalformedFrame, len(body))
	}
	return binary.LittleEndian.Uint32(body[0:4]), body[4:], nil
}

// DecodeSamples converts a PCM16 payload into dst, reusing dst's backing
// array when its capacity suffices. An odd byte count is malformed.
func DecodeSamples(dst []int16, b []byte) ([]int16, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("%w: odd sample payload (%d bytes)", ErrMalformedFrame, len(b))
	}
	n := len(b) / 2
	if cap(dst) < n {
		dst = make([]int16, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return dst, nil
}

// AppendSamples appends chunk as PCM16 bytes.
func AppendSamples(dst []byte, chunk []int16) []byte {
	for _, s := range chunk {
		dst = append(dst, byte(s), byte(uint16(s)>>8))
	}
	return dst
}

// DecodeBatch parses a FrameBatch body: id, then a count-prefixed sequence
// of length-prefixed utterances. The declared lengths must exactly cover the
// body. The returned utterances are freshly allocated (the core server holds
// them until their jobs complete, past the next read into the connection's
// frame buffer; a batch is not the steady-state hot path).
func DecodeBatch(body []byte) (id uint32, utts [][]int16, err error) {
	id, rest, err := DecodeID(body)
	if err != nil {
		return 0, nil, err
	}
	if len(rest) < 4 {
		return 0, nil, fmt.Errorf("%w: batch body lacks count", ErrMalformedFrame)
	}
	count := int(binary.LittleEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	// Each utterance costs at least its 4-byte length prefix, so an honest
	// count is bounded by the remaining bytes — reject absurd counts before
	// allocating for them.
	if count < 0 || count > len(rest)/4 {
		return 0, nil, fmt.Errorf("%w: batch count %d exceeds body", ErrMalformedFrame, count)
	}
	utts = make([][]int16, count)
	for i := range utts {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("%w: batch utterance %d lacks length", ErrMalformedFrame, i)
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		// Overflow-safe form (like the count check above): n*2 would wrap
		// on 32-bit ints for a hostile 2^30-sample declaration.
		if n < 0 || n > len(rest)/2 {
			return 0, nil, fmt.Errorf("%w: batch utterance %d declares %d samples beyond body", ErrMalformedFrame, i, n)
		}
		samples, err := DecodeSamples(make([]int16, 0, n), rest[:n*2])
		if err != nil {
			return 0, nil, err
		}
		utts[i] = samples
		rest = rest[n*2:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformedFrame, len(rest))
	}
	return id, utts, nil
}
