// Package netfront is the network-facing serving edge over core.Server: a
// length-prefixed binary protocol spoken over TCP or Unix sockets that
// multiplexes one-shot utterances, open audio streams and whole batches from
// many connections onto one shared inference server. It is the "ML-as-a-
// service, deployed offline" boundary the paper frames in §V — the model
// and its license checks stay on the device, and this package is how
// external load reaches them.
//
// # Wire protocol (version 3)
//
// Every frame is a 5-byte header — uint32 little-endian body length, then
// one type byte — followed by the body. Multi-byte integers are little
// endian throughout; audio samples are PCM16. Request frames carry a
// caller-chosen 32-bit id (request id for one-shot/batch, stream id for
// stream frames) that the matching response echoes, so one connection can
// interleave any number of outstanding requests.
//
//	FrameUtterance    id | int16 samples...            one-shot classification
//	FrameStreamOpen   id                               open a continuous stream
//	FrameStreamChunk  id | int16 samples...            append audio to a stream
//	FrameStreamClose  id                               flush + close a stream
//	FrameBatch        id | n | n × (len | samples...)  classify a whole batch
//	FrameHello        id | u16 len | tenant | u16 len | model
//	FrameHealth       id                               admin: health snapshot
//
//	FrameResult       id | int32 label                 one-shot result
//	FrameStreamResult id | uint64 hop | int32 label    one hop's result, in hop order
//	FrameBusy         id | uint32 retry-after-ms       queue full — retry after the hint
//	FrameError        id | wire-error                  per-request/stream-control failure
//	FrameBatchResult  id | n | n × int32 label         batch results, in order
//	FrameStreamClosed id | uint64 hops                 stream flushed; total hops
//	FrameStreamError  id | uint64 hop | wire-error     one hop's failure, keeping its place
//	FrameHelloAck     id | uint64 model-version        hello accepted
//	FrameHealthAck    id | health snapshot             see AppendHealthAck
//
// FrameHello (new in version 3, optional — a connection that never sends
// one behaves exactly like a version-2 peer) binds the connection to a
// tenant and a model: the tenant selects the admission-control queue and
// fair-share weight on a multi-tenant backend, and the model selects the
// registry entry every later request on the connection routes to (empty
// means the backend's default model). The server answers FrameHelloAck
// carrying the model's current version, or FrameError with CodeBadRequest
// when the named model is not served. A hello may be re-sent to re-bind.
//
// FrameHealth (new with the self-healing registry) is the admin query: the
// server answers FrameHealthAck carrying a per-model, per-shard snapshot of
// circuit-breaker state, failure scoring, trip/rebuild counts and worker
// liveness (core.ModelHealth). The body layout is documented on
// AppendHealthAck.
//
// where wire-error (version 2, replacing the bare version-1 error string) is
//
//	uint16 code | uint32 retry-after-ms | utf-8 message
//
// code is one of the Code* constants; a nonzero retry-after-ms is the
// server's hint that the failure is transient and worth retrying after that
// many milliseconds (BUSY, queue-deadline shedding, a recovered worker
// panic), while zero means retrying the same request is pointless (bad
// request, draining, internal failure).
//
// Backpressure: a full core.Server queue surfaces as FrameBusy for one-shot
// requests (the connection's read loop never blocks on them); stream chunks
// instead block the submitting connection — per-stream flow control — and
// batches block the submitting connection until fully enqueued. A stream's
// results always arrive in hop order (core.Stream.OnResult sequencing);
// results of different requests are unordered relative to each other.
//
// Resource caps (failure semantics, ARCHITECTURE.md): a frame body beyond
// the receiver's MaxBody, a frame that does not parse, or an unknown frame
// type closes the connection (a length-prefixed stream cannot resync);
// exceeding the per-connection open-stream cap is a per-request
// CodeLimitExceeded error, not a connection error; a connection idle beyond
// the server's read-idle timeout is closed.
package netfront

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// Frame types. Requests have the high bit clear, responses set.
const (
	FrameUtterance    = 0x01
	FrameStreamOpen   = 0x02
	FrameStreamChunk  = 0x03
	FrameStreamClose  = 0x04
	FrameBatch        = 0x05
	FrameHello        = 0x06
	FrameHealth       = 0x07
	FrameResult       = 0x81
	FrameStreamResult = 0x82
	FrameBusy         = 0x83
	FrameError        = 0x84
	FrameBatchResult  = 0x85
	FrameStreamClosed = 0x86
	FrameStreamError  = 0x87
	FrameHelloAck     = 0x88
	FrameHealthAck    = 0x89
)

// HeaderLen is the fixed frame-header size: uint32 body length + type byte.
const HeaderLen = 5

// Wire error codes (the uint16 code field of FrameError/FrameStreamError).
// Codes classify the failure so clients can build retry policy on structure
// instead of parsing error strings.
const (
	// CodeInternal is an unclassified server-side failure; not retryable.
	CodeInternal uint16 = 1
	// CodeBusy reports queue backpressure (also carried implicitly by
	// FrameBusy); retryable after the hint.
	CodeBusy uint16 = 2
	// CodeDeadlineExceeded reports that the request was shed because its
	// queue deadline passed before a worker picked it up; retryable.
	CodeDeadlineExceeded uint16 = 3
	// CodeUnavailable reports a server that cannot take the request: closed
	// or draining (retry-after zero — redial later), or shedding this
	// tenant under overload control (nonzero computed retry-after — back
	// off for the hint, then retry).
	CodeUnavailable uint16 = 4
	// CodeBadRequest reports protocol misuse scoped to one request (chunk
	// for an unopened stream, duplicate stream id); not retryable.
	CodeBadRequest uint16 = 5
	// CodeLimitExceeded reports a per-connection resource cap (open-stream
	// budget); not retryable until the caller releases resources.
	CodeLimitExceeded uint16 = 6
	// CodePanic reports an inference that panicked and was recovered; the
	// worker pool survived, so the request is retryable.
	CodePanic uint16 = 7
	// CodeModelSwapped reports a request bound to a model generation that a
	// hot swap retired mid-flight (a stream on the old interpreter, or a
	// submit that raced the cutover). Nothing was lost server-side; the
	// caller should reopen/retry against the new generation after the hint.
	CodeModelSwapped uint16 = 8
)

// wireErrLen is the fixed prefix of a wire-error payload: uint16 code +
// uint32 retry-after-ms, before the message bytes.
const wireErrLen = 6

// WireError is the decoded structured error payload of FrameError and
// FrameStreamError (wire protocol v2).
type WireError struct {
	// Code classifies the failure (Code* constants).
	Code uint16
	// RetryAfter is the server's transient-failure hint: nonzero means the
	// request may succeed if retried after this long, zero means retrying
	// is pointless. Millisecond granularity on the wire.
	RetryAfter time.Duration
	// Msg is the human-readable detail, optional.
	Msg string
}

// AppendWireError appends e's wire encoding: code, retry-after-ms, message.
func AppendWireError(dst []byte, e WireError) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, e.Code)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.RetryAfter/time.Millisecond))
	return append(dst, e.Msg...)
}

// DecodeWireError parses a wire-error payload (everything after the id —
// and, for FrameStreamError, the hop — of the frame body).
func DecodeWireError(b []byte) (WireError, error) {
	if len(b) < wireErrLen {
		return WireError{}, fmt.Errorf("%w: %d-byte wire error, want >= %d", ErrMalformedFrame, len(b), wireErrLen)
	}
	return WireError{
		Code:       binary.LittleEndian.Uint16(b[0:2]),
		RetryAfter: time.Duration(binary.LittleEndian.Uint32(b[2:6])) * time.Millisecond,
		Msg:        string(b[6:]),
	}, nil
}

// DefaultMaxBody caps a frame body when Config.MaxBody is unset: 4 MiB
// holds a 64-utterance batch of one-second 16 kHz PCM16 audio with room to
// spare, while bounding what one connection can force the peer to buffer.
const DefaultMaxBody = 4 << 20

// ErrFrameTooLarge reports a frame whose declared body length exceeds the
// receiver's limit; the connection cannot resync and must close.
var ErrFrameTooLarge = errors.New("netfront: frame exceeds maximum body size")

// ErrMalformedFrame reports a frame body that does not parse under its
// declared type. The connection cannot tell payload from framing afterwards
// and must close.
var ErrMalformedFrame = errors.New("netfront: malformed frame")

// ReadFrame reads one frame from r: the fixed header into *hdr, then the
// body into buf (grown only when its capacity is insufficient — the reuse
// that keeps a connection's steady-state read path allocation-free). It
// returns the frame type and the body slice. io.EOF is returned unwrapped
// when the reader is exactly at end of stream; a partial header or body
// reports io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, hdr *[HeaderLen]byte, buf []byte, maxBody int) (typ byte, body []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n > maxBody {
		return 0, buf, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxBody)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, body, err
	}
	return hdr[4], body, nil
}

// AppendFrameHeader appends a frame header for a body of n bytes.
func AppendFrameHeader(dst []byte, typ byte, n int) []byte {
	var h [HeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(n))
	h[4] = typ
	return append(dst, h[:]...)
}

// DecodeID splits a body that starts with the 32-bit request/stream id,
// returning the id and the rest.
func DecodeID(body []byte) (id uint32, rest []byte, err error) {
	if len(body) < 4 {
		return 0, nil, fmt.Errorf("%w: %d-byte body, want id", ErrMalformedFrame, len(body))
	}
	return binary.LittleEndian.Uint32(body[0:4]), body[4:], nil
}

// DecodeSamples converts a PCM16 payload into dst, reusing dst's backing
// array when its capacity suffices. An odd byte count is malformed.
func DecodeSamples(dst []int16, b []byte) ([]int16, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("%w: odd sample payload (%d bytes)", ErrMalformedFrame, len(b))
	}
	n := len(b) / 2
	if cap(dst) < n {
		dst = make([]int16, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return dst, nil
}

// AppendSamples appends chunk as PCM16 bytes.
func AppendSamples(dst []byte, chunk []int16) []byte {
	for _, s := range chunk {
		dst = append(dst, byte(s), byte(uint16(s)>>8))
	}
	return dst
}

// DecodeBatch parses a FrameBatch body: id, then a count-prefixed sequence
// of length-prefixed utterances. The declared lengths must exactly cover the
// body. The returned utterances are freshly allocated (the core server holds
// them until their jobs complete, past the next read into the connection's
// frame buffer; a batch is not the steady-state hot path).
func DecodeBatch(body []byte) (id uint32, utts [][]int16, err error) {
	id, rest, err := DecodeID(body)
	if err != nil {
		return 0, nil, err
	}
	if len(rest) < 4 {
		return 0, nil, fmt.Errorf("%w: batch body lacks count", ErrMalformedFrame)
	}
	count := int(binary.LittleEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	// Each utterance costs at least its 4-byte length prefix, so an honest
	// count is bounded by the remaining bytes — reject absurd counts before
	// allocating for them.
	if count < 0 || count > len(rest)/4 {
		return 0, nil, fmt.Errorf("%w: batch count %d exceeds body", ErrMalformedFrame, count)
	}
	utts = make([][]int16, count)
	for i := range utts {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("%w: batch utterance %d lacks length", ErrMalformedFrame, i)
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		// Overflow-safe form (like the count check above): n*2 would wrap
		// on 32-bit ints for a hostile 2^30-sample declaration.
		if n < 0 || n > len(rest)/2 {
			return 0, nil, fmt.Errorf("%w: batch utterance %d declares %d samples beyond body", ErrMalformedFrame, i, n)
		}
		samples, err := DecodeSamples(make([]int16, 0, n), rest[:n*2])
		if err != nil {
			return 0, nil, err
		}
		utts[i] = samples
		rest = rest[n*2:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformedFrame, len(rest))
	}
	return id, utts, nil
}

// MaxHelloName caps the tenant and model names a FrameHello may carry; a
// name is an identifier, not a payload.
const MaxHelloName = 256

// AppendHello appends a FrameHello body: id, then the length-prefixed
// tenant and model names.
func AppendHello(dst []byte, id uint32, tenant, model string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tenant)))
	dst = append(dst, tenant...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(model)))
	dst = append(dst, model...)
	return dst
}

// DecodeHello parses a FrameHello body into its id, tenant and model names,
// enforcing MaxHelloName and exact body coverage.
func DecodeHello(body []byte) (id uint32, tenant, model string, err error) {
	id, rest, err := DecodeID(body)
	if err != nil {
		return 0, "", "", err
	}
	next := func() (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("%w: hello name lacks length", ErrMalformedFrame)
		}
		n := int(binary.LittleEndian.Uint16(rest[0:2]))
		rest = rest[2:]
		if n > MaxHelloName {
			return "", fmt.Errorf("%w: hello name %d bytes, max %d", ErrMalformedFrame, n, MaxHelloName)
		}
		if n > len(rest) {
			return "", fmt.Errorf("%w: hello name %d bytes beyond body", ErrMalformedFrame, n)
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	if tenant, err = next(); err != nil {
		return 0, "", "", err
	}
	if model, err = next(); err != nil {
		return 0, "", "", err
	}
	if len(rest) != 0 {
		return 0, "", "", fmt.Errorf("%w: %d trailing bytes after hello", ErrMalformedFrame, len(rest))
	}
	return id, tenant, model, nil
}

// healthShardLen is the fixed wire size of one shard record in a
// FrameHealthAck body: u8 state | u32 gen | u32 consec | u32 rate-permille |
// u32 trips | u32 rebuilds | u16 workers | u16 live.
const healthShardLen = 1 + 4 + 4 + 4 + 4 + 4 + 2 + 2

// AppendHealthAck appends a FrameHealthAck body: id, u16 model count, then
// per model a length-prefixed name, u64 version, u16 shard count, and per
// shard the fixed healthShardLen record (breaker state byte, rebuild
// generation, consecutive failures, failure-rate in per-mille, trips,
// rebuilds, configured and live workers). Rates are quantized to per-mille
// on the wire; everything else round-trips exactly.
func AppendHealthAck(dst []byte, id uint32, health []core.ModelHealth) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(health)))
	for _, mh := range health {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(mh.Model)))
		dst = append(dst, mh.Model...)
		dst = binary.LittleEndian.AppendUint64(dst, mh.Version)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(mh.Shards)))
		for _, sh := range mh.Shards {
			dst = append(dst, byte(sh.State))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.Gen))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.ConsecutiveFailures))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.FailureRate*1000))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.Trips))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.Rebuilds))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(sh.Workers))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(sh.Live))
		}
	}
	return dst
}

// DecodeHealthAck parses a FrameHealthAck body into its id and the health
// snapshot, enforcing MaxHelloName on model names and exact body coverage.
func DecodeHealthAck(body []byte) (uint32, []core.ModelHealth, error) {
	id, rest, err := DecodeID(body)
	if err != nil {
		return 0, nil, err
	}
	if len(rest) < 2 {
		return 0, nil, fmt.Errorf("%w: health ack lacks model count", ErrMalformedFrame)
	}
	nm := int(binary.LittleEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	health := make([]core.ModelHealth, 0, nm)
	for m := 0; m < nm; m++ {
		if len(rest) < 2 {
			return 0, nil, fmt.Errorf("%w: health model lacks name length", ErrMalformedFrame)
		}
		n := int(binary.LittleEndian.Uint16(rest[0:2]))
		rest = rest[2:]
		if n > MaxHelloName {
			return 0, nil, fmt.Errorf("%w: health model name %d bytes, max %d", ErrMalformedFrame, n, MaxHelloName)
		}
		if len(rest) < n+8+2 {
			return 0, nil, fmt.Errorf("%w: truncated health model record", ErrMalformedFrame)
		}
		mh := core.ModelHealth{Model: string(rest[:n])}
		rest = rest[n:]
		mh.Version = binary.LittleEndian.Uint64(rest[0:8])
		ns := int(binary.LittleEndian.Uint16(rest[8:10]))
		rest = rest[10:]
		if len(rest) < ns*healthShardLen {
			return 0, nil, fmt.Errorf("%w: truncated health shard records", ErrMalformedFrame)
		}
		mh.Shards = make([]core.ShardStatus, ns)
		for s := 0; s < ns; s++ {
			mh.Shards[s] = core.ShardStatus{
				Shard:               s,
				State:               core.BreakerState(rest[0]),
				Gen:                 uint64(binary.LittleEndian.Uint32(rest[1:5])),
				ConsecutiveFailures: int(binary.LittleEndian.Uint32(rest[5:9])),
				FailureRate:         float64(binary.LittleEndian.Uint32(rest[9:13])) / 1000,
				Trips:               uint64(binary.LittleEndian.Uint32(rest[13:17])),
				Rebuilds:            uint64(binary.LittleEndian.Uint32(rest[17:21])),
				Workers:             int(binary.LittleEndian.Uint16(rest[21:23])),
				Live:                int(binary.LittleEndian.Uint16(rest[23:25])),
			}
			rest = rest[healthShardLen:]
		}
		health = append(health, mh)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after health ack", ErrMalformedFrame, len(rest))
	}
	return id, health, nil
}
