// Package speechcmd generates the substitute for the Speech Commands
// dataset [Warden 2018] the paper trains and evaluates on (§VI). The real
// corpus (105,000 one-second WAVs of 30 words) is not shippable inside an
// offline reproduction, so this package synthesizes a deterministic corpus
// with the same task structure:
//
//   - the 12-class problem of the paper: silence, unknown, "yes", "no",
//     "up", "down", "left", "right", "on", "off", "stop", "go";
//   - one-second 16 kHz PCM16 utterances, one word per file;
//   - per-speaker acoustic variation (pitch, tempo, brightness, level) so
//     that speaker-disjoint splits measure generalization, not memory;
//   - Warden-style hash-based train/validation/test splits keyed on the
//     speaker, mirroring the dataset's which_set() function.
//
// Every word has a fixed "formant signature" — a handful of frequency
// sweeps plus optional fricative noise — derived deterministically from the
// word string. Background noise and variation ranges are the difficulty
// knobs; the defaults are calibrated (see internal/train) so the paper's
// tiny_conv model lands near its 75 % test-accuracy operating point.
package speechcmd

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/audio"
)

// TargetWords are the ten keywords of the paper's 12-class task, in label
// order (labels 2..11).
var TargetWords = []string{"yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go"}

// UnknownWords is the filler vocabulary mapped to the "unknown" class,
// taken from the real dataset's auxiliary words.
var UnknownWords = []string{"bed", "bird", "cat", "dog", "happy", "house", "marvin", "sheila", "tree", "wow"}

// Labels of the 12-class problem.
const (
	LabelSilence = 0
	LabelUnknown = 1
	NumLabels    = 12
)

// LabelName returns the class name for a label index.
func LabelName(label int) string {
	switch {
	case label == LabelSilence:
		return "silence"
	case label == LabelUnknown:
		return "unknown"
	case label >= 2 && label < NumLabels:
		return TargetWords[label-2]
	default:
		return fmt.Sprintf("label%d", label)
	}
}

// LabelOf maps a word to its label (unknown-pool words map to
// LabelUnknown; "" and "silence" map to LabelSilence).
func LabelOf(word string) int {
	switch word {
	case "", "silence":
		return LabelSilence
	}
	for i, w := range TargetWords {
		if w == word {
			return i + 2
		}
	}
	return LabelUnknown
}

// Config controls corpus difficulty and reproducibility.
type Config struct {
	SampleRate int
	// Samples per utterance (1 s).
	UtteranceLen int
	// NoiseRMS is the background-noise amplitude (0..1 mixing scale).
	NoiseRMS float64
	// SpeakerVariation scales per-speaker pitch/tempo/brightness jitter
	// (0 = all speakers identical, 1 = strong variation).
	SpeakerVariation float64
	// Seed isolates independently generated corpora.
	Seed int64
}

// DefaultConfig returns the calibrated difficulty (see package comment).
func DefaultConfig() Config {
	return Config{
		SampleRate:       16000,
		UtteranceLen:     16000,
		NoiseRMS:         0.28,
		SpeakerVariation: 1.5,
		Seed:             1,
	}
}

// Generator produces utterances and datasets.
type Generator struct {
	cfg Config
}

// NewGenerator builds a generator from cfg (zero fields take defaults).
func NewGenerator(cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.SampleRate == 0 {
		cfg.SampleRate = def.SampleRate
	}
	if cfg.UtteranceLen == 0 {
		cfg.UtteranceLen = def.UtteranceLen
	}
	return &Generator{cfg: cfg}
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// segment is one formant-sweep component of a word signature.
type segment struct {
	start, dur float64 // seconds, relative to a 0.7 s word core
	f1a, f1b   float64 // first formant sweep (Hz)
	f2a, f2b   float64 // second formant sweep (Hz)
	amp        float64
	noise      float64 // fricative noise amplitude (0 = none)
}

// hashSeed derives a stable int64 from strings/ints.
func hashSeed(parts ...any) int64 {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return int64(binary.BigEndian.Uint64(h.Sum(nil)[:8]) & 0x7fffffffffffffff)
}

// signatureFor derives the word's fixed formant signature. The derivation
// is deterministic in the word string alone, so "yes" sounds like "yes" in
// every corpus.
func signatureFor(word string) []segment {
	r := rand.New(rand.NewSource(hashSeed("signature", word)))
	n := 2 + r.Intn(3) // 2–4 segments
	segs := make([]segment, n)
	t := 0.05 + 0.05*r.Float64()
	for i := range segs {
		dur := 0.12 + 0.18*r.Float64()
		f1 := 220 + 900*r.Float64()
		f2 := 1200 + 2400*r.Float64()
		segs[i] = segment{
			start: t,
			dur:   dur,
			f1a:   f1,
			f1b:   f1 * (0.75 + 0.5*r.Float64()),
			f2a:   f2,
			f2b:   f2 * (0.75 + 0.5*r.Float64()),
			amp:   0.5 + 0.3*r.Float64(),
			noise: 0,
		}
		if r.Float64() < 0.35 { // some words get a fricative burst
			segs[i].noise = 0.2 + 0.3*r.Float64()
		}
		t += dur * (0.75 + 0.35*r.Float64())
	}
	return segs
}

// speakerTraits is the per-speaker acoustic transform.
type speakerTraits struct {
	pitch      float64 // multiplies all formants
	tempo      float64 // multiplies all durations
	brightness float64 // multiplies second-formant energy
	level      float64 // overall gain
}

func (g *Generator) traitsFor(speaker int) speakerTraits {
	r := rand.New(rand.NewSource(hashSeed("speaker", g.cfg.Seed, speaker)))
	v := g.cfg.SpeakerVariation
	jitter := func(span float64) float64 { return 1 + v*span*(r.Float64()*2-1) }
	return speakerTraits{
		pitch:      jitter(0.22),
		tempo:      jitter(0.18),
		brightness: jitter(0.45),
		level:      jitter(0.35),
	}
}

// Utterance synthesizes one second of the given word spoken by speaker;
// take differentiates repeated recordings of the same (word, speaker).
// The word may be any target or unknown-pool word, or "silence".
func (g *Generator) Utterance(word string, speaker, take int) []int16 {
	cfg := g.cfg
	r := rand.New(rand.NewSource(hashSeed("utt", cfg.Seed, word, speaker, take)))
	buf := audio.NewBuffer(cfg.UtteranceLen)
	if word != "" && word != "silence" {
		tr := g.traitsFor(speaker)
		offset := 0.05 + 0.2*r.Float64() // word position within the second
		for _, s := range signatureFor(word) {
			start := offset + s.start*tr.tempo + 0.02*(r.Float64()*2-1)
			dur := s.dur * tr.tempo * (0.9 + 0.2*r.Float64())
			amp := s.amp * tr.level * (0.85 + 0.3*r.Float64())
			buf.AddSweep(cfg.SampleRate, start, dur, s.f1a*tr.pitch, s.f1b*tr.pitch, amp, 0.02)
			buf.AddSweep(cfg.SampleRate, start, dur, s.f2a*tr.pitch, s.f2b*tr.pitch, amp*0.6*tr.brightness, 0.02)
			if s.noise > 0 {
				buf.AddNoiseBurst(r, cfg.SampleRate, start, dur*0.6, s.noise*tr.level, 0.01)
			}
		}
	}
	buf.AddBackgroundNoise(r, cfg.NoiseRMS*(0.6+0.8*r.Float64()))
	return buf.ToPCM16(0.5)
}

// Example is one labelled utterance.
type Example struct {
	Samples []int16
	Label   int
	Word    string
	Speaker int
	Take    int
}

// Example synthesizes a labelled utterance for the given class label.
// For LabelUnknown, the concrete filler word is chosen deterministically
// from (speaker, take).
func (g *Generator) Example(label, speaker, take int) Example {
	word := ""
	switch {
	case label == LabelSilence:
		word = "silence"
	case label == LabelUnknown:
		r := rand.New(rand.NewSource(hashSeed("unk", g.cfg.Seed, speaker, take)))
		word = UnknownWords[r.Intn(len(UnknownWords))]
	default:
		word = TargetWords[label-2]
	}
	return Example{
		Samples: g.Utterance(word, speaker, take),
		Label:   label,
		Word:    word,
		Speaker: speaker,
		Take:    take,
	}
}
