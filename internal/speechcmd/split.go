package speechcmd

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Set identifies the partition an example belongs to.
type Set int

// Dataset partitions.
const (
	TrainSet Set = iota
	ValSet
	TestSet
)

// String names the set.
func (s Set) String() string {
	switch s {
	case TrainSet:
		return "train"
	case ValSet:
		return "validation"
	case TestSet:
		return "test"
	default:
		return fmt.Sprintf("Set(%d)", int(s))
	}
}

// WhichSet reproduces the Speech Commands dataset's which_set() assignment:
// the speaker identifier is hashed (SHA-1) to a stable percentage and
// bucketed into validation/test/train. Keying on the speaker keeps all
// recordings of one person in one partition, so evaluation measures
// speaker-independent accuracy, exactly as Warden's recipe does.
func WhichSet(speaker int, valPct, testPct int) Set {
	const maxPerClass = 134217727 // 2^27 - 1, as in the original implementation
	h := sha1.Sum([]byte(fmt.Sprintf("speaker-%d", speaker)))
	v := binary.BigEndian.Uint64(h[:8]) % (maxPerClass + 1)
	pct := float64(v) / maxPerClass * 100
	switch {
	case pct < float64(valPct):
		return ValSet
	case pct < float64(valPct+testPct):
		return TestSet
	default:
		return TrainSet
	}
}

// Dataset is a partitioned corpus.
type Dataset struct {
	Train, Val, Test []Example
}

// DatasetSpec sizes a synthesized corpus.
type DatasetSpec struct {
	// Speakers is the number of distinct synthetic speakers.
	Speakers int
	// TakesPerLabel is how many recordings each speaker contributes per
	// class.
	TakesPerLabel int
	// ValPct and TestPct set the split percentages (default 10/10).
	ValPct, TestPct int
}

// Generate synthesizes a full partitioned dataset. Examples are generated
// per (speaker, label, take) and routed to the speaker's partition.
func (g *Generator) Generate(spec DatasetSpec) *Dataset {
	if spec.ValPct == 0 && spec.TestPct == 0 {
		spec.ValPct, spec.TestPct = 10, 10
	}
	ds := &Dataset{}
	for speaker := 0; speaker < spec.Speakers; speaker++ {
		set := WhichSet(speaker, spec.ValPct, spec.TestPct)
		for label := 0; label < NumLabels; label++ {
			for take := 0; take < spec.TakesPerLabel; take++ {
				ex := g.Example(label, speaker, take)
				switch set {
				case ValSet:
					ds.Val = append(ds.Val, ex)
				case TestSet:
					ds.Test = append(ds.Test, ex)
				default:
					ds.Train = append(ds.Train, ex)
				}
			}
		}
	}
	return ds
}

// PaperTestSubset mirrors the paper's evaluation subset: "10 examples for
// each class, excluding the two rejection classes 'silence' and 'unknown'"
// (§VI) — 100 one-second utterances, drawn from test-partition speakers.
func (g *Generator) PaperTestSubset() []Example {
	var out []Example
	perClass := 10
	for label := 2; label < NumLabels; label++ {
		count := 0
		for speaker := 0; count < perClass; speaker++ {
			if speaker > 100000 {
				panic("speechcmd: ran out of speakers for test subset")
			}
			if WhichSet(speaker, 10, 10) != TestSet {
				continue
			}
			out = append(out, g.Example(label, speaker, 1000+count))
			count++
		}
	}
	return out
}
