package speechcmd

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/audio"
	"repro/internal/dsp"
)

func TestLabelMapping(t *testing.T) {
	if LabelOf("yes") != 2 || LabelOf("go") != 11 {
		t.Fatal("target word labels wrong")
	}
	if LabelOf("silence") != LabelSilence || LabelOf("") != LabelSilence {
		t.Fatal("silence label wrong")
	}
	if LabelOf("marvin") != LabelUnknown || LabelOf("gibberish") != LabelUnknown {
		t.Fatal("unknown label wrong")
	}
	for i := 0; i < NumLabels; i++ {
		if LabelName(i) == "" {
			t.Fatalf("label %d unnamed", i)
		}
		if LabelOf(LabelName(i)) != i {
			t.Fatalf("label %d (%s) does not round trip", i, LabelName(i))
		}
	}
	if len(TargetWords) != 10 {
		t.Fatalf("target words = %d", len(TargetWords))
	}
}

func TestUtteranceDeterministic(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	a := g.Utterance("yes", 3, 0)
	b := g.Utterance("yes", 3, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (word, speaker, take) produced different audio")
	}
	c := g.Utterance("yes", 3, 1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different takes produced identical audio")
	}
	d := g.Utterance("yes", 4, 0)
	if reflect.DeepEqual(a, d) {
		t.Fatal("different speakers produced identical audio")
	}
	if len(a) != 16000 {
		t.Fatalf("utterance length %d", len(a))
	}
}

func TestWordsAreLouderThanSilence(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	word := audio.RMS(g.Utterance("left", 1, 0))
	silence := audio.RMS(g.Utterance("silence", 1, 0))
	if word < 2*silence {
		t.Fatalf("word RMS %v vs silence RMS %v", word, silence)
	}
}

// TestWordsSpectrallyDistinct: fingerprints of different words must differ
// more than fingerprints of the same word across takes, otherwise the
// classification task is ill-posed.
func TestWordsSpectrallyDistinct(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b []uint8) float64 {
		var acc float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			acc += d * d
		}
		return math.Sqrt(acc / float64(len(a)))
	}
	// Average intra-word distance (same word, different takes) vs
	// inter-word distance (different words, same speaker/take) across
	// several words. Individual pairs may cross at the calibrated noise
	// level; the averages must not.
	words := []string{"yes", "no", "up", "down", "left"}
	var intra, inter float64
	var intraN, interN int
	for _, w := range words {
		for take := 0; take < 3; take++ {
			a := fe.Extract(g.Utterance(w, 1, take))
			b := fe.Extract(g.Utterance(w, 1, take+10))
			intra += dist(a, b)
			intraN++
			for _, w2 := range words {
				if w2 == w {
					continue
				}
				c := fe.Extract(g.Utterance(w2, 1, take))
				inter += dist(a, c)
				interN++
			}
		}
	}
	intra /= float64(intraN)
	inter /= float64(interN)
	if inter <= intra {
		t.Fatalf("mean inter-word distance %v not larger than intra-word %v", inter, intra)
	}
}

func TestWhichSetStableAndPartitioned(t *testing.T) {
	counts := map[Set]int{}
	for speaker := 0; speaker < 2000; speaker++ {
		s := WhichSet(speaker, 10, 10)
		if s != WhichSet(speaker, 10, 10) {
			t.Fatal("assignment not stable")
		}
		counts[s]++
	}
	// Roughly 10/10/80 with generous tolerance.
	if counts[ValSet] < 120 || counts[ValSet] > 280 {
		t.Fatalf("val count %d", counts[ValSet])
	}
	if counts[TestSet] < 120 || counts[TestSet] > 280 {
		t.Fatalf("test count %d", counts[TestSet])
	}
	if counts[TrainSet] < 1400 {
		t.Fatalf("train count %d", counts[TrainSet])
	}
	if TrainSet.String() != "train" || ValSet.String() != "validation" || TestSet.String() != "test" {
		t.Fatal("set names")
	}
}

func TestGenerateSpeakerDisjointSplits(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	ds := g.Generate(DatasetSpec{Speakers: 30, TakesPerLabel: 1})
	total := len(ds.Train) + len(ds.Val) + len(ds.Test)
	if total != 30*NumLabels {
		t.Fatalf("total examples %d", total)
	}
	seen := map[int]Set{}
	check := func(exs []Example, set Set) {
		for _, ex := range exs {
			if prev, ok := seen[ex.Speaker]; ok && prev != set {
				t.Fatalf("speaker %d appears in %v and %v", ex.Speaker, prev, set)
			}
			seen[ex.Speaker] = set
			if ex.Label < 0 || ex.Label >= NumLabels {
				t.Fatalf("label %d out of range", ex.Label)
			}
			if len(ex.Samples) != 16000 {
				t.Fatalf("sample length %d", len(ex.Samples))
			}
		}
	}
	check(ds.Train, TrainSet)
	check(ds.Val, ValSet)
	check(ds.Test, TestSet)
}

func TestPaperTestSubset(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	subset := g.PaperTestSubset()
	if len(subset) != 100 {
		t.Fatalf("subset size %d, want 100", len(subset))
	}
	perClass := map[int]int{}
	for _, ex := range subset {
		perClass[ex.Label]++
		if ex.Label == LabelSilence || ex.Label == LabelUnknown {
			t.Fatal("rejection class in paper subset")
		}
		if WhichSet(ex.Speaker, 10, 10) != TestSet {
			t.Fatal("subset speaker not from test partition")
		}
	}
	for label := 2; label < NumLabels; label++ {
		if perClass[label] != 10 {
			t.Fatalf("class %d has %d examples", label, perClass[label])
		}
	}
}

func TestExampleUnknownDrawsFiller(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	ex := g.Example(LabelUnknown, 5, 0)
	if ex.Label != LabelUnknown {
		t.Fatal("label")
	}
	found := false
	for _, w := range UnknownWords {
		if ex.Word == w {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown example used word %q", ex.Word)
	}
	// Deterministic pick.
	ex2 := g.Example(LabelUnknown, 5, 0)
	if ex.Word != ex2.Word {
		t.Fatal("unknown filler word not deterministic")
	}
}

func TestSeedIsolatesCorpora(t *testing.T) {
	a := NewGenerator(Config{Seed: 1, NoiseRMS: 0.05, SpeakerVariation: 1})
	b := NewGenerator(Config{Seed: 2, NoiseRMS: 0.05, SpeakerVariation: 1})
	if reflect.DeepEqual(a.Utterance("yes", 0, 0), b.Utterance("yes", 0, 0)) {
		t.Fatal("different corpus seeds produced identical audio")
	}
}
