package speechcmd

import (
	"reflect"
	"testing"

	"repro/internal/audio"
	"repro/internal/dsp"
)

// TestUtteranceSurvivesWAVRoundTrip: exporting an utterance to a WAV file
// and reading it back must be lossless, so fingerprints computed from
// exported files match the in-memory pipeline — the property that makes
// omg-train's -export-wav corpus equivalent to the synthetic one.
func TestUtteranceSurvivesWAVRoundTrip(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	for _, word := range []string{"yes", "go", "silence"} {
		utt := g.Utterance(word, 4, 2)
		blob := audio.EncodeWAV(utt, g.Config().SampleRate)
		decoded, rate, err := audio.DecodeWAV(blob)
		if err != nil {
			t.Fatalf("%s: %v", word, err)
		}
		if rate != g.Config().SampleRate {
			t.Fatalf("%s: rate %d", word, rate)
		}
		if !reflect.DeepEqual(decoded, utt) {
			t.Fatalf("%s: samples altered by WAV round trip", word)
		}
		a := fe.Extract(utt)
		b := fe.Extract(decoded)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: fingerprints differ after WAV round trip", word)
		}
	}
}
