// Package audio provides PCM16 WAV encoding/decoding — the container format
// of the Speech Commands dataset ("105,000 WAVE audio files", §VI) — plus
// deterministic synthesis primitives used to generate the substitute corpus.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EncodeWAV serializes mono PCM16 samples into a canonical RIFF/WAVE file.
func EncodeWAV(samples []int16, sampleRate int) []byte {
	dataLen := len(samples) * 2
	buf := make([]byte, 44+dataLen)
	copy(buf[0:4], "RIFF")
	binary.LittleEndian.PutUint32(buf[4:8], uint32(36+dataLen))
	copy(buf[8:12], "WAVE")
	copy(buf[12:16], "fmt ")
	binary.LittleEndian.PutUint32(buf[16:20], 16)                   // PCM chunk size
	binary.LittleEndian.PutUint16(buf[20:22], 1)                    // PCM format
	binary.LittleEndian.PutUint16(buf[22:24], 1)                    // mono
	binary.LittleEndian.PutUint32(buf[24:28], uint32(sampleRate))   // sample rate
	binary.LittleEndian.PutUint32(buf[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(buf[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(buf[34:36], 16)                   // bits per sample
	copy(buf[36:40], "data")
	binary.LittleEndian.PutUint32(buf[40:44], uint32(dataLen))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(buf[44+2*i:], uint16(s))
	}
	return buf
}

// DecodeWAV parses a mono PCM16 WAV file, tolerating extra chunks between
// "fmt " and "data" as real-world encoders emit.
func DecodeWAV(data []byte) (samples []int16, sampleRate int, err error) {
	if len(data) < 44 {
		return nil, 0, errors.New("audio: WAV too short")
	}
	if string(data[0:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return nil, 0, errors.New("audio: not a RIFF/WAVE file")
	}
	pos := 12
	var fmtSeen bool
	for pos+8 <= len(data) {
		id := string(data[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(data[pos+4 : pos+8]))
		body := pos + 8
		if size < 0 || body+size > len(data) {
			return nil, 0, errors.New("audio: truncated chunk")
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, 0, errors.New("audio: fmt chunk too small")
			}
			format := binary.LittleEndian.Uint16(data[body : body+2])
			channels := binary.LittleEndian.Uint16(data[body+2 : body+4])
			sampleRate = int(binary.LittleEndian.Uint32(data[body+4 : body+8]))
			bits := binary.LittleEndian.Uint16(data[body+14 : body+16])
			if format != 1 || channels != 1 || bits != 16 {
				return nil, 0, fmt.Errorf("audio: unsupported WAV (format %d, %d ch, %d bit)", format, channels, bits)
			}
			fmtSeen = true
		case "data":
			if !fmtSeen {
				return nil, 0, errors.New("audio: data chunk before fmt")
			}
			n := size / 2
			samples = make([]int16, n)
			for i := 0; i < n; i++ {
				samples[i] = int16(binary.LittleEndian.Uint16(data[body+2*i:]))
			}
			return samples, sampleRate, nil
		}
		pos = body + size
		if size%2 == 1 {
			pos++ // chunks are word-aligned
		}
	}
	return nil, 0, errors.New("audio: no data chunk")
}
