package audio

import (
	"math"
	"math/rand"
)

// Synthesis primitives for the substitute Speech Commands corpus. Everything
// is driven by an explicit *rand.Rand so corpora are reproducible from a
// seed.

// Buffer is a float64 mixing buffer later quantized to PCM16.
type Buffer []float64

// NewBuffer allocates a zeroed mixing buffer of n samples.
func NewBuffer(n int) Buffer { return make(Buffer, n) }

// AddSweep mixes a linear frequency sweep from f0 to f1 Hz spanning
// [start, start+dur) seconds, with amplitude amp and a raised-cosine
// attack/release of edge seconds. Formant trajectories of the synthetic
// words are built from these sweeps.
func (b Buffer) AddSweep(sampleRate int, start, dur, f0, f1, amp, edge float64) {
	if dur <= 0 {
		return
	}
	s0 := int(start * float64(sampleRate))
	n := int(dur * float64(sampleRate))
	phase := 0.0
	for i := 0; i < n; i++ {
		idx := s0 + i
		if idx < 0 || idx >= len(b) {
			continue
		}
		tt := float64(i) / float64(n) // 0..1 within the segment
		f := f0 + (f1-f0)*tt
		phase += 2 * math.Pi * f / float64(sampleRate)
		b[idx] += amp * envelope(tt, dur, edge) * math.Sin(phase)
	}
}

// AddNoiseBurst mixes shaped white noise (a crude fricative) into
// [start, start+dur) seconds.
func (b Buffer) AddNoiseBurst(r *rand.Rand, sampleRate int, start, dur, amp, edge float64) {
	if dur <= 0 {
		return
	}
	s0 := int(start * float64(sampleRate))
	n := int(dur * float64(sampleRate))
	prev := 0.0
	for i := 0; i < n; i++ {
		idx := s0 + i
		if idx < 0 || idx >= len(b) {
			continue
		}
		tt := float64(i) / float64(n)
		// High-pass-ish noise: difference of white noise samples.
		w := r.Float64()*2 - 1
		b[idx] += amp * envelope(tt, dur, edge) * (w - 0.5*prev)
		prev = w
	}
}

// AddBackgroundNoise mixes stationary noise over the whole buffer (room
// tone), the main difficulty knob of the synthetic task.
func (b Buffer) AddBackgroundNoise(r *rand.Rand, amp float64) {
	for i := range b {
		b[i] += amp * (r.Float64()*2 - 1)
	}
}

// envelope is a raised-cosine attack/release window: tt in [0,1] over a
// segment of dur seconds with edge seconds of fade at each end.
func envelope(tt, dur, edge float64) float64 {
	if edge <= 0 || dur <= 0 {
		return 1
	}
	e := edge / dur // fraction of the segment
	if e > 0.5 {
		e = 0.5
	}
	switch {
	case tt < e:
		return 0.5 - 0.5*math.Cos(math.Pi*tt/e)
	case tt > 1-e:
		return 0.5 - 0.5*math.Cos(math.Pi*(1-tt)/e)
	default:
		return 1
	}
}

// ToPCM16 quantizes the mixing buffer to int16 with the given gain and hard
// clipping, as a microphone ADC would.
func (b Buffer) ToPCM16(gain float64) []int16 {
	out := make([]int16, len(b))
	for i, v := range b {
		s := v * gain * 32767
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		out[i] = int16(s)
	}
	return out
}

// RMS returns the root-mean-square level of PCM16 samples (0..1 scale).
func RMS(samples []int16) float64 {
	if len(samples) == 0 {
		return 0
	}
	var acc float64
	for _, s := range samples {
		v := float64(s) / 32767
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(samples)))
}
