package audio

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWAVRoundTrip(t *testing.T) {
	samples := []int16{0, 1, -1, 32767, -32768, 1234, -4321}
	blob := EncodeWAV(samples, 16000)
	got, rate, err := DecodeWAV(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 16000 {
		t.Fatalf("rate = %d", rate)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatalf("samples mismatch: %v vs %v", got, samples)
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(raw []int16, rate uint16) bool {
		if rate == 0 {
			rate = 8000
		}
		got, r, err := DecodeWAV(EncodeWAV(raw, int(rate)))
		if err != nil || r != int(rate) {
			return false
		}
		if len(raw) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWAVDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("tiny"),
		append([]byte("RIFX"), make([]byte, 64)...),
		EncodeWAV([]int16{1, 2, 3}, 16000)[:20],
	}
	for i, c := range cases {
		if _, _, err := DecodeWAV(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Stereo / wrong format rejected.
	blob := EncodeWAV([]int16{1, 2, 3, 4}, 16000)
	blob[22] = 2 // channels = 2
	if _, _, err := DecodeWAV(blob); err == nil {
		t.Error("stereo accepted")
	}
}

func TestWAVDecodeSkipsExtraChunks(t *testing.T) {
	blob := EncodeWAV([]int16{5, 6, 7}, 16000)
	// Splice a LIST chunk between fmt and data.
	extra := append([]byte("LIST"), 4, 0, 0, 0, 'I', 'N', 'F', 'O')
	spliced := append(append(append([]byte{}, blob[:36]...), extra...), blob[36:]...)
	// Fix the RIFF size.
	spliced[4] = byte(len(spliced) - 8)
	got, _, err := DecodeWAV(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int16{5, 6, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestSweepProducesTone(t *testing.T) {
	b := NewBuffer(16000)
	b.AddSweep(16000, 0.1, 0.5, 440, 440, 0.8, 0.02)
	pcm := b.ToPCM16(1)
	// Energy concentrated in the sweep interval.
	head := RMS(pcm[:1000])
	mid := RMS(pcm[4000:8000])
	if head > 0.01 {
		t.Fatalf("energy before sweep: %v", head)
	}
	if mid < 0.2 {
		t.Fatalf("no energy in sweep: %v", mid)
	}
}

func TestNoiseAndClipping(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := NewBuffer(4000)
	b.AddBackgroundNoise(r, 0.1)
	if RMS(b.ToPCM16(1)) < 0.01 {
		t.Fatal("background noise missing")
	}
	// Gross overdrive clips instead of wrapping.
	loud := NewBuffer(100)
	loud.AddSweep(16000, 0, 0.01, 100, 100, 100, 0)
	pcm := loud.ToPCM16(1)
	for _, s := range pcm {
		if s > 32767 || s < -32768 {
			t.Fatal("sample out of range")
		}
	}
}

func TestNoiseBurstDeterministic(t *testing.T) {
	mk := func() []int16 {
		r := rand.New(rand.NewSource(42))
		b := NewBuffer(2000)
		b.AddNoiseBurst(r, 16000, 0.01, 0.1, 0.5, 0.01)
		return b.ToPCM16(1)
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("noise burst not reproducible from seed")
	}
}

func TestEnvelopeShape(t *testing.T) {
	if e := envelope(0, 1, 0.1); e != 0 {
		t.Fatalf("attack start = %v", e)
	}
	if e := envelope(0.5, 1, 0.1); e != 1 {
		t.Fatalf("sustain = %v", e)
	}
	if e := envelope(1, 1, 0.1); math.Abs(e) > 1e-9 {
		t.Fatalf("release end = %v", e)
	}
	if e := envelope(0.5, 1, 0); e != 1 {
		t.Fatalf("zero edge = %v", e)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil)")
	}
	full := make([]int16, 100)
	for i := range full {
		full[i] = 32767
	}
	if v := RMS(full); math.Abs(v-1) > 1e-6 {
		t.Fatalf("RMS(full) = %v", v)
	}
}
