package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/speechcmd"
)

func TestPaperTinyConvGeometry(t *testing.T) {
	cfg := PaperTinyConv()
	if cfg.OutH() != 25 || cfg.OutW() != 22 {
		t.Fatalf("conv output %dx%d, want 25x22", cfg.OutH(), cfg.OutW())
	}
	if cfg.FlatLen() != 4400 {
		t.Fatalf("flat length %d, want 4400", cfg.FlatLen())
	}
	m := NewTinyConv(cfg, rand.New(rand.NewSource(1)))
	// 640 conv + 8 bias + 52800 fc + 12 bias = 53460 parameters.
	if m.NumParams() != 53460 {
		t.Fatalf("params = %d, want 53460", m.NumParams())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := PaperTinyConv()
	bad.DropoutRate = 1.0
	if err := bad.validate(); err == nil {
		t.Fatal("dropout 1.0 accepted")
	}
	bad = PaperTinyConv()
	bad.StrideH = 0
	if err := bad.validate(); err == nil {
		t.Fatal("zero stride accepted")
	}
	bad = PaperTinyConv()
	bad.Filters = -1
	if err := bad.validate(); err == nil {
		t.Fatal("negative filters accepted")
	}
}

// TestGradientCheck verifies backward() against numerical differentiation
// on a tiny network — the canonical correctness test for hand-written
// backprop.
func TestGradientCheck(t *testing.T) {
	cfg := TinyConvConfig{
		InputH: 6, InputW: 5, Filters: 2,
		KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
		NumClasses: 3, DropoutRate: 0,
	}
	r := rand.New(rand.NewSource(2))
	m := NewTinyConv(cfg, r)
	x := make([]float32, cfg.InputH*cfg.InputW)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	label := 1

	analytic := newGrads(cfg)
	cache := m.Forward(x, false, nil)
	probs := Softmax(cache.logits)
	dLogits := append([]float32(nil), probs...)
	dLogits[label] -= 1
	m.backward(cache, dLogits, analytic)

	loss := func() float64 { return m.Loss(x, label) }
	const eps = 1e-3
	check := func(name string, w []float32, g []float32) {
		for _, idx := range []int{0, len(w) / 2, len(w) - 1} {
			orig := w[idx]
			w[idx] = orig + eps
			up := loss()
			w[idx] = orig - eps
			down := loss()
			w[idx] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-float64(g[idx])) > 1e-2*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: numeric %v vs analytic %v", name, idx, numeric, g[idx])
			}
		}
	}
	check("convW", m.ConvW, analytic.convW)
	check("convB", m.ConvB, analytic.convB)
	check("fcW", m.FCW, analytic.fcW)
	check("fcB", m.FCB, analytic.fcB)
}

func TestSoftmaxProperties(t *testing.T) {
	probs := Softmax([]float32{1, 2, 3, 4})
	var sum float64
	for i := 1; i < len(probs); i++ {
		if probs[i] <= probs[i-1] {
			t.Fatal("softmax not monotone")
		}
	}
	for _, p := range probs {
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// Stability under large logits.
	big := Softmax([]float32{1000, 1001})
	if math.IsNaN(float64(big[0])) || big[1] <= big[0] {
		t.Fatal("softmax unstable for large logits")
	}
}

// trainTinyTask fits a reduced network on a trivially separable 3-class
// synthetic problem: training must drive accuracy to ~100 %.
func TestFitLearnsSeparableTask(t *testing.T) {
	cfg := TinyConvConfig{
		InputH: 12, InputW: 10, Filters: 4,
		KernelH: 4, KernelW: 4, StrideH: 2, StrideW: 2,
		NumClasses: 3, DropoutRate: 0.1,
	}
	r := rand.New(rand.NewSource(3))
	mk := func(label int, jitter float64) Sample {
		f := make([]uint8, cfg.InputH*cfg.InputW)
		for i := range f {
			f[i] = uint8(10 + r.Intn(int(20+jitter*20)))
		}
		// Each class lights up a distinct band of rows.
		for row := label * 4; row < label*4+3; row++ {
			for col := 0; col < cfg.InputW; col++ {
				f[row*cfg.InputW+col] = uint8(200 + r.Intn(40))
			}
		}
		return Sample{Features: f, Label: label}
	}
	var trainSet, testSet []Sample
	for i := 0; i < 60; i++ {
		trainSet = append(trainSet, mk(i%3, 1))
	}
	for i := 0; i < 30; i++ {
		testSet = append(testSet, mk(i%3, 1))
	}
	m := NewTinyConv(cfg, r)
	err := Fit(m, trainSet, nil, TrainConfig{Epochs: 15, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := EvaluateFloat(m, testSet); acc < 0.95 {
		t.Fatalf("separable task accuracy %.2f, want ≥0.95", acc)
	}
}

func TestFitRejectsBadInputs(t *testing.T) {
	cfg := PaperTinyConv()
	m := NewTinyConv(cfg, rand.New(rand.NewSource(1)))
	if err := Fit(m, nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
	bad := []Sample{{Features: make([]uint8, 10), Label: 0}}
	if err := Fit(m, bad, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("wrong feature length accepted")
	}
	ok := []Sample{{Features: make([]uint8, 49*43), Label: 0}}
	if err := Fit(m, ok, nil, TrainConfig{Epochs: 0, BatchSize: 4}); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestNormalizeAndInt8AreConsistent(t *testing.T) {
	features := make([]uint8, 256)
	for i := range features {
		features[i] = uint8(i)
	}
	norm := Normalize(features)
	asInt8 := make([]int8, len(features))
	FeaturesToInt8(features, asInt8)
	q := InputQuant()
	for i := range features {
		fromQuant := q.Dequantize(asInt8[i])
		if math.Abs(fromQuant-float64(norm[i])) > 1e-9 {
			t.Fatalf("feature %d: float %v vs dequant %v", i, norm[i], fromQuant)
		}
	}
}

func TestQuantizeRequiresCalibration(t *testing.T) {
	m := NewTinyConv(PaperTinyConv(), rand.New(rand.NewSource(1)))
	if _, err := Quantize(m, nil, "x", 1); err == nil {
		t.Fatal("quantize without calibration accepted")
	}
}

// TestQuantizedModelAgreesWithFloat trains a small real task and checks the
// int8 conversion preserves predictions (the "accuracy with and without
// OMG protection is 75 %" row relies on quantization fidelity).
func TestQuantizedModelAgreesWithFloat(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline training in -short mode")
	}
	cfg := DefaultPipeline()
	cfg.Spec = speechcmd.DatasetSpec{Speakers: 20, TakesPerLabel: 1, ValPct: 15, TestPct: 25}
	cfg.Train.Epochs = 4
	res, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The agreement band allows for the frontend's documented fixed-point
	// tolerance: the real-input FFT rounds where the old full-size FFT
	// truncated, so individual fingerprint bytes (and hence the training
	// trajectory on this tiny corpus) shift by a least-significant step.
	if res.Agreement < 0.87 {
		t.Fatalf("float/int8 agreement %.2f, want ≥0.87", res.Agreement)
	}
	if math.Abs(res.FloatTestAcc-res.QuantTestAcc) > 0.15 {
		t.Fatalf("float acc %.2f vs quant acc %.2f diverge", res.FloatTestAcc, res.QuantTestAcc)
	}
	// The serialized model size must be in the paper's ballpark (~49 kB).
	if res.Model.WeightBytes() < 40_000 || res.Model.WeightBytes() > 70_000 {
		t.Fatalf("weight bytes = %d", res.Model.WeightBytes())
	}
}

// TestPipelineReachesPaperOperatingPoint is the accuracy calibration gate
// for Table I: the full pipeline must land in a band around the paper's
// 75 % on the 100-utterance evaluation subset.
func TestPipelineReachesPaperOperatingPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training in -short mode")
	}
	cfg := DefaultPipeline()
	res, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := speechcmd.NewGenerator(cfg.Corpus)
	fe, err := dsp.NewFrontend(cfg.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	subset := Featurize(gen.PaperTestSubset(), fe)
	acc, err := EvaluateQuantized(res.Model, subset)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("paper-subset accuracy: %.0f%% (paper: 75%%); float test acc %.2f, quant test acc %.2f",
		acc*100, res.FloatTestAcc, res.QuantTestAcc)
	if acc < 0.60 || acc > 0.92 {
		t.Fatalf("paper-subset accuracy %.0f%% outside the calibrated band [60%%, 92%%]", acc*100)
	}
}
