// Package train re-implements the paper's model pipeline (§VI): the
// tiny_conv keyword-spotting network is "first trained using TensorFlow and
// subsequently converted to a TensorFlow Lite and 'micro' model". Here the
// float32 network is trained with plain SGD + momentum and dropout, then
// post-training-quantized to an int8 tflm.Model, reproducing the
// TF → TFLite → micro conversion path end to end.
package train

import (
	"fmt"
	"math"
	"math/rand"
)

// TinyConvConfig describes the network: a single 2-D convolution ("8
// filters, 8×10, x and y stride of 2"), ReLU, dropout during training, and
// a fully connected layer onto the output labels.
type TinyConvConfig struct {
	InputH, InputW   int // fingerprint geometry (49 × 43)
	Filters          int
	KernelH, KernelW int
	StrideH, StrideW int
	NumClasses       int
	DropoutRate      float64
}

// PaperTinyConv returns the exact architecture of §VI.
func PaperTinyConv() TinyConvConfig {
	return TinyConvConfig{
		InputH: 49, InputW: 43,
		Filters: 8,
		KernelH: 10, KernelW: 8,
		StrideH: 2, StrideW: 2,
		NumClasses:  12,
		DropoutRate: 0.5,
	}
}

// OutH returns the convolution output height (SAME padding).
func (c TinyConvConfig) OutH() int { return (c.InputH + c.StrideH - 1) / c.StrideH }

// OutW returns the convolution output width (SAME padding).
func (c TinyConvConfig) OutW() int { return (c.InputW + c.StrideW - 1) / c.StrideW }

// FlatLen returns the flattened convolution output length.
func (c TinyConvConfig) FlatLen() int { return c.OutH() * c.OutW() * c.Filters }

func (c TinyConvConfig) padTop() int {
	total := (c.OutH()-1)*c.StrideH + c.KernelH - c.InputH
	if total < 0 {
		total = 0
	}
	return total / 2
}

func (c TinyConvConfig) padLeft() int {
	total := (c.OutW()-1)*c.StrideW + c.KernelW - c.InputW
	if total < 0 {
		total = 0
	}
	return total / 2
}

// TinyConv is the float32 network. Weight layouts match tflm: ConvW is
// OHWI [Filters, KernelH, KernelW, 1], FCW is [NumClasses, FlatLen].
type TinyConv struct {
	Cfg   TinyConvConfig
	ConvW []float32
	ConvB []float32
	FCW   []float32
	FCB   []float32
}

// NewTinyConv initializes a network with He-uniform weights.
func NewTinyConv(cfg TinyConvConfig, r *rand.Rand) *TinyConv {
	m := &TinyConv{
		Cfg:   cfg,
		ConvW: make([]float32, cfg.Filters*cfg.KernelH*cfg.KernelW),
		ConvB: make([]float32, cfg.Filters),
		FCW:   make([]float32, cfg.NumClasses*cfg.FlatLen()),
		FCB:   make([]float32, cfg.NumClasses),
	}
	convLimit := float32(math.Sqrt(6.0 / float64(cfg.KernelH*cfg.KernelW)))
	for i := range m.ConvW {
		m.ConvW[i] = (r.Float32()*2 - 1) * convLimit
	}
	fcLimit := float32(math.Sqrt(6.0 / float64(cfg.FlatLen())))
	for i := range m.FCW {
		m.FCW[i] = (r.Float32()*2 - 1) * fcLimit
	}
	return m
}

// NumParams returns the parameter count (the paper's ~53 k for tiny_conv).
func (m *TinyConv) NumParams() int {
	return len(m.ConvW) + len(m.ConvB) + len(m.FCW) + len(m.FCB)
}

// fwdCache holds the activations Backward needs.
type fwdCache struct {
	input   []float32
	convOut []float32 // post-ReLU, post-dropout
	mask    []float32 // dropout mask incl. inverted scaling (1/(1-p) or 0)
	logits  []float32
}

// Forward runs the network on one fingerprint (length InputH×InputW,
// already normalized to [-1, 1)). With dropout=true the conv output is
// masked using inverted dropout driven by r.
func (m *TinyConv) Forward(x []float32, dropout bool, r *rand.Rand) *fwdCache {
	cfg := m.Cfg
	outH, outW := cfg.OutH(), cfg.OutW()
	padT, padL := cfg.padTop(), cfg.padLeft()
	cache := &fwdCache{
		input:   x,
		convOut: make([]float32, cfg.FlatLen()),
		logits:  make([]float32, cfg.NumClasses),
	}
	// Convolution with fused ReLU.
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*cfg.StrideH - padT
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*cfg.StrideW - padL
			for f := 0; f < cfg.Filters; f++ {
				acc := m.ConvB[f]
				wBase := f * cfg.KernelH * cfg.KernelW
				for ky := 0; ky < cfg.KernelH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= cfg.InputH {
						continue
					}
					rowIn := iy * cfg.InputW
					rowW := wBase + ky*cfg.KernelW
					for kx := 0; kx < cfg.KernelW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= cfg.InputW {
							continue
						}
						acc += x[rowIn+ix] * m.ConvW[rowW+kx]
					}
				}
				if acc < 0 {
					acc = 0
				}
				cache.convOut[(oy*outW+ox)*cfg.Filters+f] = acc
			}
		}
	}
	// Dropout (inverted scaling keeps inference-time scale identical).
	if dropout && cfg.DropoutRate > 0 {
		cache.mask = make([]float32, len(cache.convOut))
		keep := 1 - cfg.DropoutRate
		scale := float32(1 / keep)
		for i := range cache.convOut {
			if r.Float64() < keep {
				cache.mask[i] = scale
				cache.convOut[i] *= scale
			} else {
				cache.mask[i] = 0
				cache.convOut[i] = 0
			}
		}
	}
	// Fully connected.
	flatLen := cfg.FlatLen()
	for o := 0; o < cfg.NumClasses; o++ {
		acc := m.FCB[o]
		wBase := o * flatLen
		for i := 0; i < flatLen; i++ {
			acc += cache.convOut[i] * m.FCW[wBase+i]
		}
		cache.logits[o] = acc
	}
	return cache
}

// Softmax converts logits to probabilities (numerically stabilized).
func Softmax(logits []float32) []float32 {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float32, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxV))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// grads accumulates parameter gradients for one batch.
type grads struct {
	convW, convB []float32
	fcW, fcB     []float32
}

func newGrads(cfg TinyConvConfig) *grads {
	return &grads{
		convW: make([]float32, cfg.Filters*cfg.KernelH*cfg.KernelW),
		convB: make([]float32, cfg.Filters),
		fcW:   make([]float32, cfg.NumClasses*cfg.FlatLen()),
		fcB:   make([]float32, cfg.NumClasses),
	}
}

// backward accumulates gradients for one example given dLogits =
// softmax(logits) − onehot(label).
func (m *TinyConv) backward(cache *fwdCache, dLogits []float32, g *grads) {
	cfg := m.Cfg
	flatLen := cfg.FlatLen()
	dFlat := make([]float32, flatLen)
	for o := 0; o < cfg.NumClasses; o++ {
		d := dLogits[o]
		g.fcB[o] += d
		wBase := o * flatLen
		for i := 0; i < flatLen; i++ {
			g.fcW[wBase+i] += d * cache.convOut[i]
			dFlat[i] += d * m.FCW[wBase+i]
		}
	}
	// Back through dropout and ReLU: convOut holds the post-ReLU (and
	// post-dropout) value, so convOut > 0 identifies surviving ReLU-active
	// units; the mask reapplies the inverted-dropout scale.
	for i := range dFlat {
		if cache.mask != nil {
			dFlat[i] *= cache.mask[i]
		}
		if cache.convOut[i] <= 0 {
			dFlat[i] = 0
		}
	}
	// Back through the convolution (weights and bias only; no dInput needed
	// for the first layer).
	outH, outW := cfg.OutH(), cfg.OutW()
	padT, padL := cfg.padTop(), cfg.padLeft()
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*cfg.StrideH - padT
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*cfg.StrideW - padL
			for f := 0; f < cfg.Filters; f++ {
				d := dFlat[(oy*outW+ox)*cfg.Filters+f]
				if d == 0 {
					continue
				}
				g.convB[f] += d
				wBase := f * cfg.KernelH * cfg.KernelW
				for ky := 0; ky < cfg.KernelH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= cfg.InputH {
						continue
					}
					rowIn := iy * cfg.InputW
					rowW := wBase + ky*cfg.KernelW
					for kx := 0; kx < cfg.KernelW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= cfg.InputW {
							continue
						}
						g.convW[rowW+kx] += d * cache.input[rowIn+ix]
					}
				}
			}
		}
	}
}

// Predict returns the argmax class for a normalized fingerprint.
func (m *TinyConv) Predict(x []float32) int {
	cache := m.Forward(x, false, nil)
	best := 0
	for i, v := range cache.logits {
		if v > cache.logits[best] {
			best = i
		}
	}
	return best
}

// Loss returns the cross-entropy of one example (diagnostics).
func (m *TinyConv) Loss(x []float32, label int) float64 {
	cache := m.Forward(x, false, nil)
	probs := Softmax(cache.logits)
	p := float64(probs[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

func (c TinyConvConfig) validate() error {
	if c.InputH <= 0 || c.InputW <= 0 || c.Filters <= 0 || c.NumClasses <= 0 {
		return fmt.Errorf("train: non-positive dimensions in %+v", c)
	}
	if c.KernelH <= 0 || c.KernelW <= 0 || c.StrideH <= 0 || c.StrideW <= 0 {
		return fmt.Errorf("train: non-positive kernel/stride in %+v", c)
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		return fmt.Errorf("train: dropout rate %v out of [0,1)", c.DropoutRate)
	}
	return nil
}
