package train

import (
	"fmt"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// PipelineConfig bundles the full §VI model pipeline: synthesize the
// corpus, featurize, train float, quantize to int8.
type PipelineConfig struct {
	Corpus   speechcmd.Config
	Spec     speechcmd.DatasetSpec
	Frontend dsp.FrontendConfig
	Train    TrainConfig
	Net      TinyConvConfig
	Version  uint64
}

// DefaultPipeline reproduces the paper's recipe at a corpus size that
// trains in seconds on a laptop while leaving enough test speakers for the
// 100-utterance evaluation subset.
func DefaultPipeline() PipelineConfig {
	return PipelineConfig{
		Corpus:   speechcmd.DefaultConfig(),
		Spec:     speechcmd.DatasetSpec{Speakers: 48, TakesPerLabel: 2},
		Frontend: dsp.DefaultFrontend(),
		Train:    DefaultTrainConfig(),
		Net:      PaperTinyConv(),
		Version:  1,
	}
}

// PipelineResult carries the artifacts and headline metrics.
type PipelineResult struct {
	Float *TinyConv
	Model *tflm.Model
	// Test-set accuracies (full 12-class test partition).
	FloatTestAcc float64
	QuantTestAcc float64
	// Agreement between float and quantized predictions on the test set.
	Agreement float64
	// Featurized partitions, for downstream experiments.
	TrainSamples, ValSamples, TestSamples []Sample
}

// RunPipeline executes the whole pipeline deterministically.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	gen := speechcmd.NewGenerator(cfg.Corpus)
	ds := gen.Generate(cfg.Spec)
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		return nil, fmt.Errorf("train: dataset spec %+v yields empty partitions (train %d, test %d)",
			cfg.Spec, len(ds.Train), len(ds.Test))
	}
	fe, err := dsp.NewFrontend(cfg.Frontend)
	if err != nil {
		return nil, err
	}
	res := &PipelineResult{
		TrainSamples: Featurize(ds.Train, fe),
		ValSamples:   Featurize(ds.Val, fe),
		TestSamples:  Featurize(ds.Test, fe),
	}

	model := NewTinyConv(cfg.Net, newRand(cfg.Train.Seed))
	if err := Fit(model, res.TrainSamples, res.ValSamples, cfg.Train); err != nil {
		return nil, err
	}
	res.Float = model
	res.FloatTestAcc = EvaluateFloat(model, res.TestSamples)

	quantized, err := Quantize(model, res.TrainSamples, "tiny_conv keyword spotter", cfg.Version)
	if err != nil {
		return nil, err
	}
	res.Model = quantized
	if res.QuantTestAcc, err = EvaluateQuantized(quantized, res.TestSamples); err != nil {
		return nil, err
	}
	if res.Agreement, err = AgreementRate(model, quantized, res.TestSamples); err != nil {
		return nil, err
	}
	return res, nil
}

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
