package train

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/speechcmd"
)

// Sample is a featurized training example: the 49×43 uint8 fingerprint and
// its class label.
type Sample struct {
	Features []uint8
	Label    int
}

// Featurize runs the fixed-point frontend over raw utterances, producing
// the samples both training and quantization calibration consume.
func Featurize(examples []speechcmd.Example, fe *dsp.Frontend) []Sample {
	out := make([]Sample, len(examples))
	for i, ex := range examples {
		out[i] = Sample{Features: fe.Extract(ex.Samples), Label: ex.Label}
	}
	return out
}

// Normalize maps uint8 features to the float training domain [-1, 1):
// x = (f − 128)/128. The inverse mapping is exactly representable by int8
// quantization with scale 1/128 and zero point 0, so converted models see
// bit-identical inputs.
func Normalize(features []uint8) []float32 {
	out := make([]float32, len(features))
	for i, f := range features {
		out[i] = (float32(f) - 128) / 128
	}
	return out
}

// TrainConfig controls the SGD loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LR is the initial learning rate; it decays linearly to LR/10 over the
	// epochs, a simplification of the recipe's two-stage schedule.
	LR       float64
	Momentum float64
	Seed     int64
	// Progress, when non-nil, receives one line per epoch.
	Progress func(epoch int, trainLoss float64, valAcc float64)
}

// DefaultTrainConfig mirrors the spirit of the TFLM example recipe at a
// budget that converges on the synthetic corpus.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 12, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1}
}

// Fit trains the model on train samples, optionally reporting validation
// accuracy per epoch.
func Fit(m *TinyConv, trainSamples, valSamples []Sample, cfg TrainConfig) error {
	if err := m.Cfg.validate(); err != nil {
		return err
	}
	if len(trainSamples) == 0 {
		return fmt.Errorf("train: empty training set")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return fmt.Errorf("train: non-positive epochs/batch size")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	// Pre-normalize features once.
	xs := make([][]float32, len(trainSamples))
	for i, s := range trainSamples {
		if len(s.Features) != m.Cfg.InputH*m.Cfg.InputW {
			return fmt.Errorf("train: sample %d has %d features, want %d", i, len(s.Features), m.Cfg.InputH*m.Cfg.InputW)
		}
		xs[i] = Normalize(s.Features)
	}
	vel := newGrads(m.Cfg)
	order := make([]int, len(trainSamples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - 0.9*float64(epoch)/float64(cfg.Epochs))
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g := newGrads(m.Cfg)
			for _, idx := range order[start:end] {
				s := trainSamples[idx]
				cache := m.Forward(xs[idx], true, r)
				probs := Softmax(cache.logits)
				epochLoss += lossOf(probs, s.Label)
				dLogits := make([]float32, len(probs))
				copy(dLogits, probs)
				dLogits[s.Label] -= 1
				m.backward(cache, dLogits, g)
			}
			applySGD(m, g, vel, lr/float64(end-start), cfg.Momentum)
		}
		if cfg.Progress != nil {
			valAcc := -1.0
			if len(valSamples) > 0 {
				valAcc = EvaluateFloat(m, valSamples)
			}
			cfg.Progress(epoch, epochLoss/float64(len(order)), valAcc)
		}
	}
	return nil
}

func lossOf(probs []float32, label int) float64 {
	p := float64(probs[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

func applySGD(m *TinyConv, g, vel *grads, lr, momentum float64) {
	update := func(w, gw, vw []float32) {
		for i := range w {
			vw[i] = float32(momentum)*vw[i] - float32(lr)*gw[i]
			w[i] += vw[i]
		}
	}
	update(m.ConvW, g.convW, vel.convW)
	update(m.ConvB, g.convB, vel.convB)
	update(m.FCW, g.fcW, vel.fcW)
	update(m.FCB, g.fcB, vel.fcB)
}

// EvaluateFloat returns top-1 accuracy of the float model on samples.
func EvaluateFloat(m *TinyConv, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(Normalize(s.Features)) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// ConfusionMatrix returns counts[actual][predicted] for the float model.
func ConfusionMatrix(m *TinyConv, samples []Sample) [][]int {
	n := m.Cfg.NumClasses
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for _, s := range samples {
		counts[s.Label][m.Predict(Normalize(s.Features))]++
	}
	return counts
}
