package train

import (
	"fmt"
	"math"

	"repro/internal/tflm"
)

// InputQuant is the int8 quantization of the fingerprint input tensor. It
// is the exact inverse of Normalize: q = f − 128, scale 1/128, zero point 0,
// so the quantized model consumes the frontend's uint8 features without any
// information loss.
func InputQuant() tflm.QuantParams {
	return tflm.QuantParams{Scale: 1.0 / 128.0, ZeroPoint: 0}
}

// FeaturesToInt8 converts frontend features to the model's int8 input.
func FeaturesToInt8(features []uint8, dst []int8) {
	for i, f := range features {
		dst[i] = int8(int32(f) - 128)
	}
}

// Quantize performs post-training quantization of the float network and
// emits the int8 tflm model — the "TensorFlow Lite and 'micro' model"
// conversion step of §VI. Activation ranges are calibrated by running the
// float network over the calibration samples.
func Quantize(m *TinyConv, calib []Sample, description string, version uint64) (*tflm.Model, error) {
	if err := m.Cfg.validate(); err != nil {
		return nil, err
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("train: quantization needs calibration samples")
	}
	cfg := m.Cfg

	// Calibrate activation ranges on the float model.
	var convMin, convMax, logitMin, logitMax float64
	for _, s := range calib {
		cache := m.Forward(Normalize(s.Features), false, nil)
		for _, v := range cache.convOut {
			convMin = math.Min(convMin, float64(v))
			convMax = math.Max(convMax, float64(v))
		}
		for _, v := range cache.logits {
			logitMin = math.Min(logitMin, float64(v))
			logitMax = math.Max(logitMax, float64(v))
		}
	}
	convQ := tflm.ChooseQuantParams(convMin, convMax)
	logitQ := tflm.ChooseQuantParams(logitMin, logitMax)
	inQ := InputQuant()

	b := tflm.NewBuilder(description, version)
	in := b.Tensor(&tflm.Tensor{Name: "fingerprint", Type: tflm.Int8,
		Shape: []int{1, cfg.InputH, cfg.InputW, 1}, Quant: &inQ})
	b.Input(in)

	// Convolution weights: symmetric int8.
	convW, convWQ := quantizeSymmetric("conv_w", []int{cfg.Filters, cfg.KernelH, cfg.KernelW, 1}, m.ConvW)
	convB := quantizeBias("conv_b", m.ConvB, inQ.Scale*convWQ.Scale)
	wi, bi := b.Const(convW), b.Const(convB)
	convOut := b.Tensor(&tflm.Tensor{Name: "conv_out", Type: tflm.Int8,
		Shape: []int{1, cfg.OutH(), cfg.OutW(), cfg.Filters}, Quant: &convQ})
	b.Node(tflm.OpConv2D, tflm.Conv2DParams{
		StrideH: cfg.StrideH, StrideW: cfg.StrideW,
		Padding: tflm.PaddingSame, Activation: tflm.ActReLU,
	}, []int{in, wi, bi}, []int{convOut})

	flat := b.Tensor(&tflm.Tensor{Name: "flat", Type: tflm.Int8,
		Shape: []int{1, cfg.FlatLen()}, Quant: &convQ})
	b.Node(tflm.OpReshape, tflm.ReshapeParams{NewShape: []int{1, cfg.FlatLen()}},
		[]int{convOut}, []int{flat})

	fcW, fcWQ := quantizeSymmetric("fc_w", []int{cfg.NumClasses, cfg.FlatLen()}, m.FCW)
	fcB := quantizeBias("fc_b", m.FCB, convQ.Scale*fcWQ.Scale)
	fwi, fbi := b.Const(fcW), b.Const(fcB)
	logits := b.Tensor(&tflm.Tensor{Name: "logits", Type: tflm.Int8,
		Shape: []int{1, cfg.NumClasses}, Quant: &logitQ})
	b.Node(tflm.OpFullyConnected, tflm.FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})

	probQ := tflm.SoftmaxOutputParams()
	probs := b.Tensor(&tflm.Tensor{Name: "probs", Type: tflm.Int8,
		Shape: []int{1, cfg.NumClasses}, Quant: &probQ})
	b.Node(tflm.OpSoftmax, tflm.SoftmaxParams{Beta: 1}, []int{logits}, []int{probs})
	b.Output(probs)

	return b.Build()
}

func quantizeSymmetric(name string, shape []int, w []float32) (*tflm.Tensor, tflm.QuantParams) {
	absMax := 0.0
	for _, v := range w {
		if a := math.Abs(float64(v)); a > absMax {
			absMax = a
		}
	}
	q := tflm.SymmetricWeightParams(absMax)
	t := &tflm.Tensor{Name: name, Type: tflm.Int8, Shape: shape, Quant: &q}
	t.Alloc()
	for i, v := range w {
		t.I8[i] = q.Quantize(float64(v))
	}
	return t, q
}

func quantizeBias(name string, b []float32, scale float64) *tflm.Tensor {
	t := &tflm.Tensor{Name: name, Type: tflm.Int32, Shape: []int{len(b)},
		Quant: &tflm.QuantParams{Scale: scale}}
	t.Alloc()
	for i, v := range b {
		t.I32[i] = int32(math.Round(float64(v) / scale))
	}
	return t
}

// EvaluateQuantized returns top-1 accuracy of an int8 model on samples.
func EvaluateQuantized(model *tflm.Model, samples []Sample) (float64, error) {
	ip, err := tflm.NewInterpreter(model)
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, s := range samples {
		FeaturesToInt8(s.Features, ip.Input(0).I8)
		if err := ip.Invoke(); err != nil {
			return 0, err
		}
		if tflm.Argmax(ip.Output(0)) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// AgreementRate measures how often the quantized model predicts the same
// class as the float model — the conversion-fidelity metric.
func AgreementRate(m *TinyConv, model *tflm.Model, samples []Sample) (float64, error) {
	ip, err := tflm.NewInterpreter(model)
	if err != nil {
		return 0, err
	}
	agree := 0
	for _, s := range samples {
		FeaturesToInt8(s.Features, ip.Input(0).I8)
		if err := ip.Invoke(); err != nil {
			return 0, err
		}
		if tflm.Argmax(ip.Output(0)) == m.Predict(Normalize(s.Features)) {
			agree++
		}
	}
	return float64(agree) / float64(len(samples)), nil
}
