package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/trustzone"
)

func init() {
	register(Experiment{ID: "E4", Title: "World-switch and secure sensor overhead", Run: runE4})
	register(Experiment{ID: "E5", Title: "Protocol phase costs (Fig. 2 flow)", Run: runE5})
	register(Experiment{ID: "E6", Title: "Enclave life-cycle costs", Run: runE6})
}

func msF(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func runE4(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	s, err := f.newSession("e4", 1)
	if err != nil {
		return nil, err
	}
	encCore := s.App.Enclave().Core()

	// Raw SMC round trip through a no-op secure service.
	s.Device.Monitor.Register("bench.noop", func(c *trustzone.SecureContext, req any) (any, error) { return nil, nil })
	encCore.ResetCycles()
	const switches = 16
	for i := 0; i < switches; i++ {
		if _, err := s.Device.Monitor.Call(encCore, "bench.noop", nil); err != nil {
			return nil, err
		}
	}
	perSwitch := encCore.Elapsed() / switches

	// Secure capture of one full utterance (SMC + FIFO + shared window).
	utt := f.Subset[0]
	s.Device.Speak(utt.Samples)
	encCore.ResetCycles()
	if _, err := s.App.CaptureOnly(); err != nil {
		return nil, err
	}
	captureTime := encCore.Elapsed()

	// Full query for context.
	s.Device.Speak(utt.Samples)
	encCore.ResetCycles()
	preSwitches := s.Device.Monitor.Switches()
	if _, err := s.Query(); err != nil {
		return nil, err
	}
	queryTime := encCore.Elapsed()
	switchesPerQuery := s.Device.Monitor.Switches() - preSwitches

	return &Table{
		ID:      "E4",
		Title:   "World switches and secure peripheral input",
		Claim:   "\"the switch from an SA to the secure world takes around 0.3 ms\"; sensor-read overhead \"negligible\"",
		Headers: []string{"Quantity", "Measured (simulated)"},
		Rows: [][]string{
			{"SMC round trip (SA → secure world → SA)", fmt.Sprintf("%.3f ms", msF(perSwitch))},
			{"secure capture of 1 s of audio", fmt.Sprintf("%.3f ms", msF(captureTime))},
			{"world switches per query", fmt.Sprintf("%d", switchesPerQuery)},
			{"full query (capture + frontend + inference)", fmt.Sprintf("%.3f ms", msF(queryTime))},
			{"capture share of query", fmt.Sprintf("%.1f %%", 100*float64(captureTime)/float64(queryTime))},
		},
	}, nil
}

func runE5(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	dev, err := f.newDevice("e5")
	if err != nil {
		return nil, err
	}
	vendor, err := core.NewVendor(omgcrypto.NewDRBG("e5-vendor"), f.Root.Public(), f.VendorID, cloneModel(f.Pipeline.Model), 1)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(f.Root.Public(), vendor.Public())
	if err != nil {
		return nil, err
	}
	s := core.NewSession(dev, vendor, user, omgcrypto.NewDRBG("e5-session"))

	elapsed := func() time.Duration { return dev.SoC.TotalBusy() }
	t0 := elapsed()
	if err := s.Prepare(vendor.Public()); err != nil {
		return nil, err
	}
	prepTime := elapsed() - t0

	t1 := elapsed()
	if err := s.Initialize(); err != nil {
		return nil, err
	}
	initTime := elapsed() - t1

	utt := f.Subset[0]
	s.Device.Speak(utt.Samples)
	t2 := elapsed()
	if _, err := s.Query(); err != nil {
		return nil, err
	}
	queryTime := elapsed() - t2

	// Re-initialization after relaunch: steps 3–4 skipped, no vendor
	// provisioning, just key delivery.
	if err := s.App.Teardown(); err != nil {
		return nil, err
	}
	app, err := core.LaunchEnclave(dev, vendor.Public(), omgcrypto.NewDRBG("e5-relaunch"))
	if err != nil {
		return nil, err
	}
	s.App = app
	t3 := elapsed()
	if err := s.Initialize(); err != nil {
		return nil, err
	}
	reinitTime := elapsed() - t3

	return &Table{
		ID:      "E5",
		Title:   "OMG phase costs on the simulated device",
		Claim:   "steps 3–4 \"can be omitted until the vendor's model is updated\"; repeated queries avoid preparation/initialization costs",
		Headers: []string{"Phase", "Simulated time", "Includes"},
		Rows: [][]string{
			{"I. preparation", fmt.Sprintf("%.1f ms", msF(prepTime)), "enclave setup+boot, measurement, key derivation, 2 attestations, model provisioning, flash write"},
			{"II. initialization", fmt.Sprintf("%.1f ms", msF(initTime)), "attestation, KU unwrap (RSA), AES-GCM decrypt, model decode, arena planning"},
			{"III. one query", fmt.Sprintf("%.2f ms", msF(queryTime)), "secure capture, frontend, tiny_conv inference"},
			{"re-init after relaunch (steps 3–4 skipped)", fmt.Sprintf("%.1f ms", msF(reinitTime)), "same as II; ciphertext already local"},
		},
	}, nil
}

func runE6(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	dev, err := f.newDevice("e6")
	if err != nil {
		return nil, err
	}
	vendor, err := core.NewVendor(omgcrypto.NewDRBG("e6-vendor"), f.Root.Public(), f.VendorID, cloneModel(f.Pipeline.Model), 1)
	if err != nil {
		return nil, err
	}
	elapsed := func() time.Duration { return dev.SoC.TotalBusy() }

	t0 := elapsed()
	app, err := core.LaunchEnclave(dev, vendor.Public(), omgcrypto.NewDRBG("e6-app"))
	if err != nil {
		return nil, err
	}
	launch := elapsed() - t0

	t1 := elapsed()
	if err := app.Suspend(); err != nil {
		return nil, err
	}
	suspend := elapsed() - t1

	t2 := elapsed()
	if err := app.Resume(); err != nil {
		return nil, err
	}
	resume := elapsed() - t2

	t3 := elapsed()
	if err := app.Teardown(); err != nil {
		return nil, err
	}
	teardown := elapsed() - t3

	return &Table{
		ID:      "E6",
		Title:   "SANCTUARY life-cycle transitions (§III-B steps 1–4)",
		Claim:   "qualitative: setup/boot dominated by core shutdown+boot and memory measurement; teardown scrubs and returns the core",
		Headers: []string{"Transition", "Simulated time", "Dominant costs"},
		Rows: [][]string{
			{"setup + boot", fmt.Sprintf("%.1f ms", msF(launch)), "core shutdown (2 ms), 1 MiB measurement, deterministic RSA keygen (120 ms model), SL core boot (25 ms)"},
			{"suspend", fmt.Sprintf("%.2f ms", msF(suspend)), "L1 invalidate, core handback (memory stays locked)"},
			{"resume", fmt.Sprintf("%.1f ms", msF(resume)), "core shutdown, TZASC rebind (SMC), core boot"},
			{"teardown", fmt.Sprintf("%.1f ms", msF(teardown)), "L1 invalidate, scrub 1 MiB + shared window, unlock, core handback"},
		},
	}, nil
}
