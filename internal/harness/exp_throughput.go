package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func init() {
	register(Experiment{ID: "E11", Title: "Host batch-inference throughput (pipeline scaling)", Run: runE11})
}

// runE11 measures the host-side serving path: core.Pipeline fanning a batch
// of utterances across worker pools of increasing size. The paper's device
// numbers are simulated elsewhere (E1/E2); this experiment characterizes
// how fast the reproduction itself can serve traffic — the im2col/GEMM
// kernels plus the zero-alloc DSP frontend under concurrency.
func runE11(ctx *Ctx) (*Table, error) {
	batch := 256
	if ctx.Quick {
		batch = 64
	}
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		return nil, err
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, batch)
	for i := range utts {
		ex := gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0)
		utts[i] = ex.Samples
	}

	var rows [][]string
	var base float64
	for _, workers := range []int{1, 2, 4} {
		p, err := core.NewPipeline(model, core.PipelineConfig{Workers: workers})
		if err != nil {
			return nil, err
		}
		// One warm-up pass settles lazy twiddle tables and scheduler state.
		p.RunBatch(utts[:min(len(utts), 8)])
		defer p.Close()
		ctx.Logf("E11: %d workers, batch %d", workers, batch)
		start := time.Now()
		results := p.RunBatch(utts)
		elapsed := time.Since(start)
		for i, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("E11 utterance %d: %w", i, r.Err)
			}
		}
		perSec := float64(batch) / elapsed.Seconds()
		if workers == 1 {
			base = perSec
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.1f ms", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.0f utt/s", perSec),
			fmt.Sprintf("%.2fx", perSec/base),
		})
	}
	return &Table{
		ID:      "E11",
		Title:   "Host batch-inference throughput (pipeline scaling)",
		Claim:   "(engine property, no paper counterpart: host-side serving throughput)",
		Headers: []string{"Workers", "Batch", "Wall time", "Throughput", "Speedup"},
		Rows:    rows,
		Notes:   []string{"per-worker interpreters share weight tensors via tflm.Model.Clone; frontends and scratch are private"},
	}, nil
}
