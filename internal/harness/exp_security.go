package harness

import (
	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/sanctuary"
)

func init() {
	register(Experiment{ID: "E9", Title: "License and rollback enforcement", Run: runE9})
}

// runE9 executes each §V security mechanism as a live attack and records
// whether the system fails closed.
func runE9(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	var rows [][]string
	record := func(attack string, blocked bool, detail string) {
		verdict := "BLOCKED"
		if !blocked {
			verdict = "!! NOT BLOCKED !!"
		}
		rows = append(rows, []string{attack, verdict, detail})
	}

	// 1. Revoked license.
	s, err := f.newSession("e9-revoke", 1)
	if err != nil {
		return nil, err
	}
	s.Vendor.Revoke(s.User.VerifiedEnclaveKey())
	req, err := s.App.RequestKey()
	if err != nil {
		return nil, err
	}
	_, err = s.Vendor.IssueKey(req)
	record("revoked device requests KU", err != nil, "vendor withholds the key; ciphertext stays inert")

	// 2. Rollback: old ciphertext after a model update.
	s2, err := f.newSession("e9-rollback", 1)
	if err != nil {
		return nil, err
	}
	oldBlob, _ := s2.Device.SoC.Flash().Load(core.ModelBlobName)
	if err := s2.Vendor.UpdateModel(cloneModel(f.Pipeline.Model), 2); err != nil {
		return nil, err
	}
	s2.Device.SoC.Flash().Store(core.ModelBlobName, oldBlob)
	reqOld, err := s2.App.RequestKey()
	if err != nil {
		return nil, err
	}
	_, err = s2.Vendor.IssueKey(reqOld)
	record("stale v1 ciphertext re-licensed after v2 ships", err != nil, "KU depends on the per-version nonce n; v1 keys are never reissued")

	// 3. Ciphertext transplant to another device.
	devB, err := f.newDevice("e9-transplant")
	if err != nil {
		return nil, err
	}
	appB, err := core.LaunchEnclave(devB, s.Vendor.Public(), omgcrypto.NewDRBG("e9-appB"))
	if err != nil {
		return nil, err
	}
	devB.SoC.Flash().Store(core.ModelBlobName, oldBlob)
	reqB, err := appB.RequestKey()
	if err != nil {
		return nil, err
	}
	s3, err := f.newSession("e9-freshvendor", 1)
	if err != nil {
		return nil, err
	}
	respB, err := s3.Vendor.IssueKey(reqB)
	if err != nil {
		return nil, err
	}
	err = appB.Initialize(respB)
	record("device A's ciphertext on device B", err != nil, "KU = KDF(PK, n) binds the ciphertext to device A's enclave key")

	// 4. Tampered enclave image.
	devT, err := f.newDevice("e9-tamper")
	if err != nil {
		return nil, err
	}
	img := core.BuildImage(s.Vendor.Public())
	img.Code[0] ^= 1
	e, err := devT.Sanctuary.Setup(sanctuary.Config{Image: img, PrivateSize: core.EnclavePrivateSize, AllowMic: true})
	if err != nil {
		return nil, err
	}
	if err := e.Boot(); err != nil {
		return nil, err
	}
	nonce := []byte("e9-tamper-nonce")
	report, chain, err := devT.Sanctuary.Attest(img.Name, nonce)
	if err != nil {
		return nil, err
	}
	_, err = s3.Vendor.ProvisionModel(report, chain, nonce)
	record("tampered enclave image attests to vendor", err != nil, "measurement mismatch; provisioning refused")

	// 5. Key-response replay.
	s4, err := f.newSession("e9-replay", 1)
	if err != nil {
		return nil, err
	}
	reqX, err := s4.App.RequestKey()
	if err != nil {
		return nil, err
	}
	respX, err := s4.Vendor.IssueKey(reqX)
	if err != nil {
		return nil, err
	}
	if err := s4.App.Initialize(respX); err != nil {
		return nil, err
	}
	err = s4.App.Initialize(respX)
	record("captured key response replayed", err != nil, "response is bound to the enclave's one-shot nonce")

	return &Table{
		ID:      "E9",
		Title:   "Live attack outcomes",
		Claim:   "license withdrawal makes decryption fail; KU's nonce binding prevents rollback (§V)",
		Headers: []string{"Attack", "Outcome", "Mechanism"},
		Rows:    rows,
	}, nil
}

func init() {
	register(Experiment{ID: "E10", Title: "Model scaling headroom", Run: runE10})
}
