package harness

import (
	"fmt"
	"time"

	"repro/internal/he"
	"repro/internal/intnet"
	"repro/internal/mpc"
	"repro/internal/omgcrypto"
)

func init() {
	register(Experiment{ID: "E7", Title: "OMG vs cryptographic baselines (HE, SMPC)", Run: runE7})
}

// heKeyBits selects the Paillier modulus: small enough to finish a live
// run, with projection to 2048 bits from a measured scaling factor.
func heKeyBits(quick bool) int {
	if quick {
		return 384
	}
	return 768
}

func runE7(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	// The shared integer view of the trained model.
	spec, err := intnet.FromModel(f.Pipeline.Model)
	if err != nil {
		return nil, err
	}
	features := f.SubsetFeats[0].Features

	// Reference point: Table I per-query times (plain & OMG).
	t1, err := runTable1(ctx)
	if err != nil {
		return nil, err
	}

	// --- Paillier HE baseline ---
	bits := heKeyBits(ctx.Quick)
	ctx.Logf("E7: generating %d-bit Paillier key", bits)
	sk, err := he.GenerateKey(omgcrypto.NewDRBG("e7-paillier"), bits)
	if err != nil {
		return nil, err
	}
	eng, err := he.NewEngine(sk, spec, omgcrypto.NewDRBG("e7-he"))
	if err != nil {
		return nil, err
	}
	ctx.Logf("E7: running HE inference (this is the slow part)")
	heStart := time.Now()
	heRep, err := eng.Infer(features)
	if err != nil {
		return nil, err
	}
	heTime := time.Since(heStart)
	// Project to 2048-bit keys: modexp scales ~cubically in the modulus.
	scale := cube(2048.0 / float64(bits))
	heProjected := time.Duration(float64(heTime) * scale)

	// --- 2PC MPC baseline ---
	proto, err := mpc.NewProtocol(spec, 7)
	if err != nil {
		return nil, err
	}
	mpcStart := time.Now()
	mpcRep, err := proto.Infer(features)
	if err != nil {
		return nil, err
	}
	mpcCompute := time.Since(mpcStart)

	mb := func(b int64) string { return fmt.Sprintf("%.2f MB", float64(b)/1e6) }
	rows := [][]string{
		{"plain (no protection)", fmt.Sprintf("%.1f ms", msF(t1.plainPerQuery)), "–", "–", "none"},
		{"OMG (SANCTUARY enclave)", fmt.Sprintf("%.1f ms", msF(t1.omgPerQuery)), "–", "–", "input + model + integrity"},
		{fmt.Sprintf("HE (Paillier %d-bit, measured)", bits), fmt.Sprintf("%.1f s", heTime.Seconds()), mb(heRep.BytesOnWire), fmt.Sprintf("%d", heRep.Rounds), "input privacy only"},
		{"HE (projected 2048-bit)", fmt.Sprintf("%.1f s", heProjected.Seconds()), mb(heRep.BytesOnWire * int64(2048/bits)), fmt.Sprintf("%d", heRep.Rounds), "input privacy only"},
		{"2PC (dealer-assisted, LAN)", fmt.Sprintf("%.1f ms + %.0f ms net", 1000*mpcCompute.Seconds(), msF(mpcRep.LANTime)), mb(mpcRep.BytesOnWire), fmt.Sprintf("%d", mpcRep.Rounds), "input + model"},
		{"2PC (dealer-assisted, WAN)", fmt.Sprintf("%.1f ms + %.0f ms net", 1000*mpcCompute.Seconds(), msF(mpcRep.WANTime)), mb(mpcRep.BytesOnWire), fmt.Sprintf("%d", mpcRep.Rounds), "input + model"},
	}
	speedupHE := heProjected.Seconds() / t1.omgPerQuery.Seconds()
	speedupMPC := (mpcRep.WANTime + mpcCompute).Seconds() / t1.omgPerQuery.Seconds()
	return &Table{
		ID:      "E7",
		Title:   "One tiny_conv inference under each protection mechanism",
		Claim:   "\"TEE architectures provide several orders of magnitude better performance\" (§II-B); SMPC is communication-bound (§I)",
		Headers: []string{"Mechanism", "Latency", "Traffic", "Rounds", "Protects"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("OMG beats projected 2048-bit HE by %.0fx and WAN 2PC by %.0fx on this workload", speedupHE, speedupMPC),
			"HE/2PC latencies combine measured host compute with the simulated link model; plain/OMG are simulated device times",
			fmt.Sprintf("2PC offline phase consumed %d ring elements and %d bit-triple words of correlated randomness", mpcRep.ArithTripleElems, mpcRep.BitTripleWords),
			"the interactive-HE ReLU additionally reveals post-conv activations to the key holder — weaker model privacy than OMG",
		},
	}, nil
}

func cube(x float64) float64 { return x * x * x }
