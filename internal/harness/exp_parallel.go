package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/tflm"
)

func init() {
	register(Experiment{ID: "E13", Title: "Multi-core InvokeBatch scaling (SWAR kernel + shard fan-out)", Run: runE13})
}

// runE13 sweeps the stacked-utterance interpreter across shard parallelism:
// for each (shards, batch) point, PlanBatchParallel sizes the shard
// contexts and repeated InvokeBatch calls measure host throughput over the
// persistent worker group. Shard counts above the host's GOMAXPROCS are
// skipped rather than reported as fake scaling; on a single-core host the
// whole sweep therefore collapses to the serial row plus a 2-shard row
// that measures pure fan-out overhead. The simulated-device economics are
// deliberately absent: metering charges b× the node cycles no matter how
// many host cores ran them.
func runE13(ctx *Ctx) (*Table, error) {
	batch := 16
	reps := 7
	if ctx.Quick {
		batch, reps = 8, 3
	}
	maxProcs := runtime.GOMAXPROCS(0)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		return nil, err
	}

	var rows [][]string
	var base float64
	for _, shards := range []int{1, 2, 4} {
		if shards > maxProcs && shards != 2 {
			// Keep one oversubscribed point (2 shards) so the fan-out
			// overhead on small hosts stays visible; skip the rest.
			continue
		}
		ip, err := tflm.NewInterpreter(model.Clone())
		if err != nil {
			return nil, err
		}
		if err := ip.PlanBatchParallel(batch, shards); err != nil {
			return nil, err
		}
		for j := 0; j < batch; j++ {
			row := ip.BatchInput(j)
			for i := range row {
				row[i] = int8((i + 31*j) % 251)
			}
		}
		// Warm-up settles worker parking and cache state.
		if err := ip.InvokeBatch(batch); err != nil {
			return nil, err
		}
		iters := 40
		if ctx.Quick {
			iters = 15
		}
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			for it := 0; it < iters; it++ {
				if err := ip.InvokeBatch(batch); err != nil {
					return nil, err
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		ip.ReleaseBatch()
		perSec := float64(batch*iters) / best.Seconds()
		if base == 0 {
			base = perSec
		}
		ctx.Logf("E13: %d shards, batch %d: %.0f utt/s", shards, batch, perSec)
		rows = append(rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.2f ms", best.Seconds()*1e3/float64(iters)),
			fmt.Sprintf("%.0f utt/s", perSec),
			fmt.Sprintf("%.2fx", perSec/base),
		})
	}
	return &Table{
		ID:      "E13",
		Title:   "Multi-core InvokeBatch scaling (SWAR kernel + shard fan-out)",
		Claim:   "(engine property, no paper counterpart: stacked classification scales with host cores)",
		Headers: []string{"Shards", "Batch", "Batch wall", "Throughput", "Speedup"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("host GOMAXPROCS=%d; shard counts beyond it are skipped, not simulated", maxProcs),
			"results bit-exact vs serial Invoke (randomized equivalence suite); metering charges b× node cycles regardless of shards",
		},
	}, nil
}
