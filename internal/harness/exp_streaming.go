package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func init() {
	register(Experiment{ID: "E12", Title: "Streaming serving: incremental DSP, persistent queue, enclave batching", Run: runE12})
}

// runE12 characterizes the streaming serving layer at its three tiers
// against their one-shot counterparts:
//
//   - dsp.Streamer vs full ExtractInto recomputation per 20 ms hop (the
//     ~NumFrames× frontend amortization),
//   - core.Server streamed hops vs RunBatch over the equivalent sliding
//     windows (persistent queue + incremental DSP under concurrency),
//   - KWSApp.QueryBatch vs serial Query (one enclave Run and batched mic
//     SMCs amortizing the per-query protected-path overhead of Table I).
//
// Wall times take the best of several repetitions; the enclave rows also
// report simulated device time, where the saved world switches show up.
func runE12(ctx *Ctx) (*Table, error) {
	hops := 400
	queries := 16
	reps := 5
	encReps := 9
	workers := 4
	if ctx.Quick {
		hops, reps, encReps, workers = 120, 3, 7, 2
	}
	feCfg := dsp.DefaultFrontend()
	utt := feCfg.UtteranceSamples()
	hop := feCfg.StrideSamples

	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	signal := make([]int16, 0, utt+hops*hop)
	for i := 0; len(signal) < utt+hops*hop; i++ {
		signal = append(signal, gen.Example(i%speechcmd.NumLabels, i, 0).Samples...)
	}

	// --- Tier 1: frontend, full recompute vs incremental streamer.
	fe, err := dsp.NewFrontend(feCfg)
	if err != nil {
		return nil, err
	}
	fp := make([]uint8, feCfg.FingerprintLen())
	fullPerHop := time.Duration(1<<62 - 1)
	streamPerHop := fullPerHop
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for h := 0; h < hops; h++ {
			fe.ExtractInto(fp, signal[h*hop:h*hop+utt])
		}
		fullPerHop = min(fullPerHop, time.Since(start)/time.Duration(hops))

		st := dsp.NewStreamer(fe)
		st.Push(signal[:utt]) // warm-up to steady state
		start = time.Now()
		for h := 0; h < hops; h++ {
			st.Push(signal[utt+h*hop : utt+(h+1)*hop])
			st.Fingerprint(fp)
		}
		streamPerHop = min(streamPerHop, time.Since(start)/time.Duration(hops))
	}
	ctx.Logf("E12: frontend %.1f µs/hop full, %.1f µs/hop streamed",
		us(fullPerHop), us(streamPerHop))

	// --- Tier 2: server, batch of sliding windows vs streamed hops.
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(model, core.ServerConfig{Workers: workers})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	windows := make([][]int16, hops)
	for h := range windows {
		windows[h] = signal[h*hop : h*hop+utt]
	}
	srv.RunBatch(windows[:min(len(windows), 2*workers)]) // warm-up
	batchPerUtt := time.Duration(1<<62 - 1)
	streamSrvPerHop := batchPerUtt
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for _, r := range srv.RunBatch(windows) {
			if r.Err != nil {
				return nil, fmt.Errorf("E12 batch: %w", r.Err)
			}
		}
		batchPerUtt = min(batchPerUtt, time.Since(start)/time.Duration(len(windows)))

		stream, err := srv.OpenStream()
		if err != nil {
			return nil, err
		}
		if _, err := srv.SubmitStream(stream, signal[:utt-hop]); err != nil {
			return nil, err
		}
		start = time.Now()
		delivered := 0
		var tail []*core.Pending
		for h := 0; h < hops; h++ {
			tickets, err := srv.SubmitStream(stream, signal[utt-hop+h*hop:utt+h*hop])
			if err != nil {
				return nil, err
			}
			tail = append(tail, tickets...)
			for len(tail) > workers { // keep the queue busy, collect the rest
				if r := tail[0].Wait(); r.Err != nil {
					return nil, r.Err
				}
				tail = tail[1:]
				delivered++
			}
		}
		for _, p := range tail {
			if r := p.Wait(); r.Err != nil {
				return nil, r.Err
			}
			delivered++
		}
		if delivered != hops {
			return nil, fmt.Errorf("E12 stream: %d results for %d hops", delivered, hops)
		}
		streamSrvPerHop = min(streamSrvPerHop, time.Since(start)/time.Duration(hops))
	}
	ctx.Logf("E12: server %.1f µs/utt batched, %.1f µs/hop streamed",
		us(batchPerUtt), us(streamSrvPerHop))

	// --- Tier 3: enclave path, serial Query vs QueryBatch. Each serving
	// mode gets its own session so the suspend/resume mode's core
	// reallocation (which can migrate the enclave to a LITTLE core) cannot
	// contaminate the other rows' simulated clocks.
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	serialWall, suspendWall, batchWall := maxDuration, maxDuration, maxDuration
	var serialSim, suspendSim, batchSim time.Duration

	sSerial, err := f.newSession("e12-serial", 1)
	if err != nil {
		return nil, err
	}
	sSuspend, err := f.newSession("e12-suspend", 1)
	if err != nil {
		return nil, err
	}
	sBatch, err := f.newSession("e12-batch", 1)
	if err != nil {
		return nil, err
	}

	// One timed pass of each serving mode; modes alternate order across
	// repetitions so cache warm-up bias cancels, and the best wall time per
	// mode is kept.
	runSerial := func() error {
		for q := 0; q < queries; q++ {
			sSerial.Device.Speak(f.Subset[q%len(f.Subset)].Samples)
		}
		encCore := sSerial.App.Enclave().Core()
		encCore.ResetCycles()
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := sSerial.Query(); err != nil {
				return fmt.Errorf("E12 serial query %d: %w", q, err)
			}
		}
		serialWall = min(serialWall, time.Since(start)/time.Duration(queries))
		serialSim = encCore.Elapsed() / time.Duration(queries)
		return nil
	}
	// The §V operation-phase pattern: "between queries the SANCTUARY core
	// can be reallocated to the commodity OS" — each query pays the
	// suspend/resume (power cycle + secure-world rebind) that keeps the
	// core available to the OS while the service idles. This is the
	// realistic always-on serial baseline QueryBatch amortizes away by
	// holding the enclave for the whole batch.
	runSuspend := func() error {
		for q := 0; q < queries; q++ {
			sSuspend.Device.Speak(f.Subset[q%len(f.Subset)].Samples)
		}
		sim := time.Duration(0)
		sSuspend.App.Enclave().Core().ResetCycles()
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := sSuspend.Query(); err != nil {
				return fmt.Errorf("E12 suspend query %d: %w", q, err)
			}
			sim += sSuspend.App.Enclave().Core().Elapsed()
			if err := sSuspend.App.Suspend(); err != nil {
				return err
			}
			if err := sSuspend.App.Resume(); err != nil {
				return err
			}
			// Resume may land on a different core; restart its clock.
			sSuspend.App.Enclave().Core().ResetCycles()
		}
		suspendWall = min(suspendWall, time.Since(start)/time.Duration(queries))
		suspendSim = sim / time.Duration(queries)
		return nil
	}
	runBatch := func() error {
		for q := 0; q < queries; q++ {
			sBatch.Device.Speak(f.Subset[q%len(f.Subset)].Samples)
		}
		encCore := sBatch.App.Enclave().Core()
		encCore.ResetCycles()
		start := time.Now()
		if _, err := sBatch.App.QueryBatch(queries); err != nil {
			return fmt.Errorf("E12 query batch: %w", err)
		}
		batchWall = min(batchWall, time.Since(start)/time.Duration(queries))
		batchSim = encCore.Elapsed() / time.Duration(queries)
		return nil
	}
	for rep := 0; rep < encReps; rep++ {
		modes := []func() error{runSerial, runSuspend, runBatch}
		for i := 0; i < len(modes); i++ {
			if err := modes[(i+rep)%len(modes)](); err != nil {
				return nil, err
			}
		}
	}
	ctx.Logf("E12: enclave %.2f / %.2f / %.2f ms/query serial / suspend-resume / batched (wall)",
		us(serialWall)/1000, us(suspendWall)/1000, us(batchWall)/1000)

	speed := func(base, opt time.Duration) string {
		return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
	}
	rows := [][]string{
		{"frontend: full recompute", fmt.Sprintf("%.1f µs/hop", us(fullPerHop)), "-", "-", "1.00x"},
		{"frontend: streamer (1 FFT/hop)", fmt.Sprintf("%.1f µs/hop", us(streamPerHop)), "-", "-", speed(fullPerHop, streamPerHop)},
		{fmt.Sprintf("server: RunBatch ×%d workers", workers), fmt.Sprintf("%.1f µs/utt", us(batchPerUtt)),
			"-", fmt.Sprintf("%.0f utt/s", perSec(batchPerUtt)), "1.00x"},
		{fmt.Sprintf("server: SubmitStream ×%d workers", workers), fmt.Sprintf("%.1f µs/hop", us(streamSrvPerHop)),
			"-", fmt.Sprintf("%.0f hop/s", perSec(streamSrvPerHop)), speed(batchPerUtt, streamSrvPerHop)},
		{fmt.Sprintf("enclave: %d × Query (core held)", queries), fmt.Sprintf("%.2f ms/query", us(serialWall)/1000),
			fmt.Sprintf("%.2f", us(serialSim)/1000), "-", "1.00x"},
		{fmt.Sprintf("enclave: %d × Query + §V core realloc", queries), fmt.Sprintf("%.2f ms/query", us(suspendWall)/1000),
			fmt.Sprintf("%.2f", us(suspendSim)/1000), "-", speed(serialWall, suspendWall)},
		{fmt.Sprintf("enclave: QueryBatch(%d)", queries), fmt.Sprintf("%.2f ms/query", us(batchWall)/1000),
			fmt.Sprintf("%.2f", us(batchSim)/1000), "-", speed(serialWall, batchWall)},
	}
	return &Table{
		ID:      "E12",
		Title:   "Streaming serving: incremental DSP, persistent queue, enclave batching",
		Claim:   "(engine property, no paper counterpart: steady-state streaming cost)",
		Headers: []string{"Path", "Per-op (wall)", "Sim ms/op", "Throughput", "Speedup"},
		Rows:    rows,
		Notes: []string{
			"frontend rows: one 20 ms hop; the streamer computes 1 FFT per hop vs 49 for full recomputation (bit-exact fingerprints)",
			"server rows: persistent worker queue; streamed hops reuse 48/49 frames so per-item cost drops below a full utterance",
			fmt.Sprintf("enclave rows: QueryBatch runs %d capture→extract→invoke iterations in one enclave Run, batching mic SMCs through the %d KiB shared window; the §V row suspends/resumes between queries (operation-phase core reallocation), the always-on pattern the batch amortizes away", queries, core.EnclaveSharedSWSize>>10),
			"wall times are best-of-reps with mode order rotated per rep; sim times are simulated enclave-core milliseconds per query",
		},
	}, nil
}

// maxDuration seeds best-of-reps minima.
const maxDuration = time.Duration(1<<62 - 1)

// us converts a duration to float microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// perSec converts a per-item duration to items per second.
func perSec(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(time.Second) / float64(d)
}
