// Package harness regenerates every table, figure and numeric claim of the
// paper's evaluation (§VI) plus the ablations DESIGN.md commits to. Each
// experiment produces a table with paper-reported values alongside measured
// ones; cmd/omg-bench renders them and EXPERIMENTS.md archives them.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // what the paper reports
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes a human-readable table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   paper: %s\n", t.Claim)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "*Paper:* %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Ctx carries run options into experiments.
type Ctx struct {
	// Quick shrinks workloads (fewer trials, smaller keys) for CI runs.
	Quick bool
	// Log receives progress lines (nil discards them).
	Log io.Writer
	fix *Fixture
}

// Logf writes a progress line if logging is enabled.
func (c *Ctx) Logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Experiment is a registered, reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Ctx) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Experiments returns all registered experiments in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

// idOrder sorts E1..E10 numerically, then F1, F2.
func idOrder(id string) int {
	var kind, n int
	if len(id) < 2 {
		return 1 << 20
	}
	switch id[0] {
	case 'E':
		kind = 0
	case 'F':
		kind = 1 << 10
	default:
		kind = 1 << 20
	}
	fmt.Sscanf(id[1:], "%d", &n)
	return kind + n
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// NewCtx creates a run context sharing one lazily-built fixture.
func NewCtx(quick bool, log io.Writer) *Ctx {
	return &Ctx{Quick: quick, Log: log, fix: &Fixture{}}
}
