package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/tflm"
)

// runE10 sweeps tiny_conv width to back the paper's outlook claim that the
// implementation "has no inherent memory limitations" and can host "more
// complex end-to-end systems". We scale the filter count and measure
// simulated inference latency, model size and arena footprint.
func runE10(ctx *Ctx) (*Table, error) {
	multipliers := []int{1, 2, 4, 8, 16}
	if ctx.Quick {
		multipliers = []int{1, 2, 4}
	}
	var rows [][]string
	var firstLatency float64
	for _, mul := range multipliers {
		model, err := tflm.BuildRandomTinyConv(mul, int64(mul)*77)
		if err != nil {
			return nil, err
		}
		interp, err := tflm.NewInterpreter(model)
		if err != nil {
			return nil, err
		}
		// Simulated latency on a 2.4 GHz core.
		cycles := tflm.InferenceCycles(model)
		latencyMS := float64(cycles) / 2.4e9 * 1e3
		if mul == multipliers[0] {
			firstLatency = latencyMS
		}
		blob, err := tflm.Encode(model)
		if err != nil {
			return nil, err
		}
		// Sanity: it actually runs.
		r := rand.New(rand.NewSource(int64(mul)))
		in := interp.Input(0)
		for i := range in.I8 {
			in.I8[i] = int8(r.Intn(255) - 128)
		}
		start := time.Now()
		if err := interp.Invoke(); err != nil {
			return nil, err
		}
		hostTime := time.Since(start)
		rows = append(rows, []string{
			fmt.Sprintf("%d× (%d filters)", mul, 8*mul),
			fmt.Sprintf("%.0f kB", float64(len(blob))/1000),
			fmt.Sprintf("%.0f kB", float64(interp.ArenaSize())/1000),
			fmt.Sprintf("%.1f ms", latencyMS),
			fmt.Sprintf("%.2fx", latencyMS/firstLatency),
			fmt.Sprintf("%.1f ms", float64(hostTime.Microseconds())/1000),
		})
	}
	return &Table{
		ID:      "E10",
		Title:   "tiny_conv width sweep inside the enclave memory budget",
		Claim:   "\"our implementation has no inherent memory limitations … allows to securely run more complex end-to-end systems\"",
		Headers: []string{"Width", "Model size", "Arena", "Simulated latency @2.4 GHz", "vs 1×", "Host eval time"},
		Rows:    rows,
		Notes: []string{
			"latency scales linearly with MACs; a 16× model (~850 kB) still fits the 1 MiB enclave region and stays well under real time",
			"Google's 80 MB all-neural recognizer would need a proportionally larger TZASC region — a configuration change, not an architectural limit",
		},
	}, nil
}
