package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/hw"
)

func init() {
	register(Experiment{ID: "E8", Title: "Cache side channel: prime+probe vs L2 exclusion", Run: runE8})
}

// runE8 mounts a classic prime+probe attack on the shared L2 against a
// victim whose memory accesses depend on a secret bit, with and without
// SANCTUARY's L2-exclusion defence (§III-B: "side-channel attacks that
// extract secrets from caches can be prevented easily since … the shared
// second level cache (L2) can be excluded from SANCTUARY memory").
func runE8(ctx *Ctx) (*Table, error) {
	trials := 400
	if ctx.Quick {
		trials = 100
	}
	accPlain, err := PrimeProbeTrials(trials, false)
	if err != nil {
		return nil, err
	}
	accProtected, err := PrimeProbeTrials(trials, true)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Prime+probe secret-bit recovery over %d trials", trials),
		Claim:   "with L1 core-exclusive and enclave memory excluded from L2, cache attacks are prevented",
		Headers: []string{"Victim configuration", "Attacker bit-recovery accuracy"},
		Rows: [][]string{
			{"unprotected (victim cached in shared L2)", fmt.Sprintf("%.1f %%", accPlain*100)},
			{"SANCTUARY (victim memory excluded from L2)", fmt.Sprintf("%.1f %%", accProtected*100)},
		},
		Notes: []string{
			"50 % = random guessing; the attacker probes the two cache sets the victim's secret-dependent buffers map to",
		},
	}, nil
}

// PrimeProbeTrials runs the attack and returns the attacker's accuracy.
func PrimeProbeTrials(trials int, exclude bool) (float64, error) {
	soc := hw.NewSoC(hw.Config{BigCores: 2, LittleCores: 0, DRAMSize: 64 << 20})
	victim := soc.Core(0)
	attacker := soc.Core(1)
	l2 := soc.L2()

	// Victim buffers: two addresses mapping to distinct L2 sets.
	bufA := hw.PhysAddr(1 << 20)
	bufB := bufA + hw.PhysAddr(l2.LineSize()*l2.Sets()/2) // different set, same tag region
	setA, setB := l2.SetOf(bufA), l2.SetOf(bufB)
	if setA == setB {
		return 0, fmt.Errorf("E8: buffers map to the same set")
	}
	if exclude {
		// SANCTUARY would exclude the whole enclave range; exclude both
		// victim buffers' lines.
		l2.Exclude(bufA, uint64(l2.LineSize()))
		l2.Exclude(bufB, uint64(l2.LineSize()))
	}

	// Attacker eviction sets: for each victim set, `ways` lines mapping to
	// it, placed far away in memory.
	evictionSet := func(set int) []hw.PhysAddr {
		var out []hw.PhysAddr
		base := hw.PhysAddr(32 << 20)
		for i := 0; len(out) < l2.Ways(); i++ {
			addr := base + hw.PhysAddr(i*l2.LineSize())
			if l2.SetOf(addr) == set {
				out = append(out, addr)
			}
		}
		return out
	}
	evA, evB := evictionSet(setA), evictionSet(setB)

	r := rand.New(rand.NewSource(1234))
	correct := 0
	buf := make([]byte, 4)
	for trial := 0; trial < trials; trial++ {
		secret := r.Intn(2)

		// Prime: attacker fills both monitored sets.
		for _, a := range append(append([]hw.PhysAddr{}, evA...), evB...) {
			if err := soc.Read(attacker, a, buf); err != nil {
				return 0, err
			}
		}
		// Victim accesses one buffer depending on the secret bit (e.g. a
		// weight-dependent lookup inside the model).
		target := bufA
		if secret == 1 {
			target = bufB
		}
		if err := soc.Read(victim, target, buf); err != nil {
			return 0, err
		}
		// Probe: attacker re-measures its eviction sets; a slow line means
		// the victim displaced it from that set.
		slow := func(set []hw.PhysAddr) int {
			total := 0
			for _, a := range set {
				cycles, err := soc.MeasureAccess(attacker, a, 4)
				if err != nil {
					return 0
				}
				if cycles > hw.L2HitCycles {
					total++
				}
			}
			return total
		}
		missA := slow(evA)
		missB := slow(evB)
		guess := 0
		switch {
		case missB > missA:
			guess = 1
		case missA == missB:
			guess = r.Intn(2) // no signal: flip a coin
		}
		if guess == secret {
			correct++
		}
		// Reset attacker L1 so the next trial measures L2 behaviour.
		attacker.L1().Flush()
		victim.L1().Flush()
	}
	return float64(correct) / float64(trials), nil
}
