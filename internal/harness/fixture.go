package harness

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
	"repro/internal/train"
)

// Fixture lazily builds the expensive shared artifacts: long-term
// identities, the trained+quantized model, and the featurized evaluation
// subset. One fixture serves all experiments of a Ctx.
type Fixture struct {
	once sync.Once
	err  error

	Root     *omgcrypto.Identity
	VendorID *omgcrypto.Identity
	Pipeline *train.PipelineResult
	// Subset is the paper's 100-utterance evaluation set (10 per keyword,
	// rejection classes excluded), raw audio plus features.
	Subset       []speechcmd.Example
	SubsetFeats  []train.Sample
	FrontendConf dsp.FrontendConfig
}

func (c *Ctx) fixture() (*Fixture, error) {
	f := c.fix
	f.once.Do(func() {
		c.Logf("fixture: generating identities")
		rng := omgcrypto.NewDRBG("harness-fixture")
		if f.Root, f.err = omgcrypto.NewIdentity(rng, "device-vendor"); f.err != nil {
			return
		}
		if f.VendorID, f.err = omgcrypto.NewIdentity(rng, "acme-models"); f.err != nil {
			return
		}
		cfg := train.DefaultPipeline()
		if c.Quick {
			// Smaller corpus and budget, but still enough to land a usable
			// operating point (the full config is used for EXPERIMENTS.md).
			cfg.Spec = speechcmd.DatasetSpec{Speakers: 32, TakesPerLabel: 2}
			cfg.Train.Epochs = 8
		}
		c.Logf("fixture: training tiny_conv (%d speakers, %d epochs)", cfg.Spec.Speakers, cfg.Train.Epochs)
		if f.Pipeline, f.err = train.RunPipeline(cfg); f.err != nil {
			return
		}
		c.Logf("fixture: float test acc %.2f, quantized %.2f", f.Pipeline.FloatTestAcc, f.Pipeline.QuantTestAcc)
		f.FrontendConf = cfg.Frontend
		gen := speechcmd.NewGenerator(cfg.Corpus)
		f.Subset = gen.PaperTestSubset()
		fe, err := dsp.NewFrontend(cfg.Frontend)
		if err != nil {
			f.err = err
			return
		}
		f.SubsetFeats = train.Featurize(f.Subset, fe)
	})
	return f, f.err
}

// newDevice builds a fresh simulated device sharing the fixture root.
func (f *Fixture) newDevice(seed string) (*core.Device, error) {
	return core.NewDevice(core.DeviceConfig{
		Root:           f.Root,
		Rand:           omgcrypto.NewDRBG("harness-device-" + seed),
		EnclaveKeyBits: 1024,
		SoC:            hw.Config{BigCores: 2, LittleCores: 2, DRAMSize: 256 << 20},
	})
}

// newSession stands up a complete OMG deployment (device, vendor with the
// trained model, user) and runs the preparation and initialization phases.
func (f *Fixture) newSession(seed string, version uint64) (*core.Session, error) {
	dev, err := f.newDevice(seed)
	if err != nil {
		return nil, err
	}
	model := cloneModel(f.Pipeline.Model)
	vendor, err := core.NewVendor(omgcrypto.NewDRBG("harness-vendor-"+seed), f.Root.Public(), f.VendorID, model, version)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(f.Root.Public(), vendor.Public())
	if err != nil {
		return nil, err
	}
	s := core.NewSession(dev, vendor, user, omgcrypto.NewDRBG("harness-session-"+seed))
	if err := s.Prepare(vendor.Public()); err != nil {
		return nil, fmt.Errorf("harness: prepare: %w", err)
	}
	if err := s.Initialize(); err != nil {
		return nil, fmt.Errorf("harness: initialize: %w", err)
	}
	return s, nil
}

// cloneModel gives an experiment its own activation tensors over shared
// immutable weights, so concurrent interpreters can't interfere.
func cloneModel(m *tflm.Model) *tflm.Model {
	return m.Clone()
}
