package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/omgcrypto"
)

func init() {
	register(Experiment{ID: "F1", Title: "Fig. 1: TrustZone/SANCTUARY architecture as configured", Run: runF1})
	register(Experiment{ID: "F2", Title: "Fig. 2: OMG protocol transcript (steps 1–8)", Run: runF2})
}

// runF1 renders the live platform configuration — worlds, TZASC regions and
// peripheral assignment — as the reproduction of the paper's architecture
// figure: instead of a diagram, the actual access-control state of a
// running deployment.
func runF1(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	s, err := f.newSession("f1", 1)
	if err != nil {
		return nil, err
	}
	soc := s.Device.SoC
	var rows [][]string
	for _, c := range soc.Cores() {
		role := "commodity OS (normal world)"
		if c == s.App.Enclave().Core() {
			role = "SANCTUARY App (normal world, TZASC-bound)"
		}
		state := "online"
		if !c.Online() {
			state = "offline"
		}
		rows = append(rows, []string{
			fmt.Sprintf("core %d @ %.1f GHz", c.ID(), float64(c.Hz())/1e9), role, state,
		})
	}
	for _, r := range soc.TZASC().Regions() {
		perm := describeAttr(r.Attr)
		rows = append(rows, []string{
			fmt.Sprintf("TZASC %q [%#x, +%d kB]", r.Name, uint64(r.Base), r.Size/1024), perm, "",
		})
	}
	rows = append(rows, []string{
		"microphone", fmt.Sprintf("assigned to %v world", soc.TZPC().WorldOf(hw.PeriphMicrophone)), "",
	})
	rows = append(rows, []string{
		"flash (model store)", "normal world, ciphertext only", "",
	})
	return &Table{
		ID:      "F1",
		Title:   "Live platform state during the operation phase",
		Claim:   "Fig. 1 shows normal world (OS + apps), secure world (trusted OS/apps), trusted firmware; SANCTUARY adds the core-bound enclave",
		Headers: []string{"Component", "Configuration", "State"},
		Rows:    rows,
	}, nil
}

func describeAttr(a hw.RegionAttr) string {
	perm := ""
	if a.NormalRead || a.NormalWrite {
		perm += "NS:rw "
	}
	if a.SecureRead || a.SecureWrite {
		perm += "S:rw "
	}
	if a.CoreLock != hw.AnyCore {
		perm += fmt.Sprintf("core-%d-only ", a.CoreLock)
	}
	if a.NoDMA {
		perm += "no-DMA"
	}
	if perm == "" {
		perm = "no access"
	}
	return perm
}

// runF2 replays the Fig. 2 message flow against live components, recording
// each numbered step with the actual artifact sizes.
func runF2(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	dev, err := f.newDevice("f2")
	if err != nil {
		return nil, err
	}
	vendor, err := core.NewVendor(omgcrypto.NewDRBG("f2-vendor"), f.Root.Public(), f.VendorID, cloneModel(f.Pipeline.Model), 1)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(f.Root.Public(), vendor.Public())
	if err != nil {
		return nil, err
	}
	rng := omgcrypto.NewDRBG("f2-rng")
	var rows [][]string
	step := func(n, actor, action, artifact string) {
		rows = append(rows, []string{n, actor, action, artifact})
	}

	app, err := core.LaunchEnclave(dev, vendor.Public(), rng)
	if err != nil {
		return nil, err
	}
	img := core.BuildImage(vendor.Public())
	m := app.Enclave().Measurement()
	step("–", "OS", "enclave init: load SL+SA, lock memory, measure, boot core",
		fmt.Sprintf("image %d kB, measurement %x…", len(img.Code)/1024, m[:4]))

	userNonce, _ := omgcrypto.RandomBytes(rng, 16)
	rep, chain, err := app.Attest(userNonce)
	if err != nil {
		return nil, err
	}
	if err := user.VerifyEnclave(rep, chain, userNonce); err != nil {
		return nil, err
	}
	step("1", "enclave → U", "attest(M, SK), PK via secure output",
		fmt.Sprintf("report sig %d B, chain of %d certs", len(rep.PlatformSig), len(chain)))

	vendorNonce, _ := omgcrypto.RandomBytes(rng, 16)
	rep2, chain2, err := app.Attest(vendorNonce)
	if err != nil {
		return nil, err
	}
	step("2", "enclave → V", "attest(M, SK), PK via secure channel",
		fmt.Sprintf("nonce %d B", len(vendorNonce)))

	pkg, err := vendor.ProvisionModel(rep2, chain2, vendorNonce)
	if err != nil {
		return nil, err
	}
	step("3", "V → enclave", "Enc(model, KU); KU ← KDF(PK, n)",
		fmt.Sprintf("ciphertext %d kB, version %d", len(pkg.Blob)/1024, pkg.Version))

	if err := app.StoreModelPackage(pkg); err != nil {
		return nil, err
	}
	step("4", "enclave → storage", "park Enc(model, KU) on untrusted flash",
		fmt.Sprintf("blob %d kB", (len(pkg.Blob)+8)/1024))

	req, err := app.RequestKey()
	if err != nil {
		return nil, err
	}
	resp, err := vendor.IssueKey(req)
	if err != nil {
		return nil, err
	}
	step("5", "V → enclave", "deliver KU (wrapped to PK, signed, nonce-bound)",
		fmt.Sprintf("wrapped KU %d B", len(resp.WrappedKU)))

	if err := app.Initialize(resp); err != nil {
		return nil, err
	}
	step("6", "enclave", "Dec(model); interpreter ready",
		fmt.Sprintf("model v%d in enclave-private memory", app.Version()))

	utt := f.Subset[0]
	dev.Speak(utt.Samples)
	res, err := app.Query()
	if err != nil {
		return nil, err
	}
	step("7", "mic → enclave", "secure voice input via secure world",
		fmt.Sprintf("%d samples through shared-SW window", len(utt.Samples)))
	step("8", "enclave → U", "output transcription",
		fmt.Sprintf("label %d (%s)", res.Label, labelName(res.Label)))

	return &Table{
		ID:      "F2",
		Title:   "Protocol transcript of a live run",
		Claim:   "Fig. 2 numbers the preparation (1–4), initialization (5–6) and operation (7–8) steps",
		Headers: []string{"Step", "Direction", "Action", "Artifact"},
		Rows:    rows,
	}, nil
}

func labelName(label int) string {
	names := []string{"silence", "unknown", "yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go"}
	if label >= 0 && label < len(names) {
		return names[label]
	}
	return "?"
}
