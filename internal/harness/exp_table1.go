package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/tflm"
)

func init() {
	register(Experiment{ID: "E1", Title: "Table I: accuracy and runtime with and without OMG", Run: runE1})
	register(Experiment{ID: "E2", Title: "Real-time factor", Run: runE2})
	register(Experiment{ID: "E3", Title: "Compressed model size", Run: runE3})
}

// table1Result carries E1 measurements into E2.
type table1Result struct {
	plainAcc, omgAcc           float64
	plainTotal, omgTotal       time.Duration
	utterances                 int
	audioSeconds               float64
	plainPerQuery, omgPerQuery time.Duration
}

func runTable1(ctx *Ctx) (*table1Result, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	// Protected deployment.
	s, err := f.newSession("table1", 1)
	if err != nil {
		return nil, err
	}
	// Unprotected deployment of the identical model on an identical core.
	plainSoC := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 64 << 20})
	plain, err := core.NewPlainRunner(plainSoC, 0, cloneModel(f.Pipeline.Model))
	if err != nil {
		return nil, err
	}

	res := &table1Result{utterances: len(f.Subset)}
	var plainCorrect, omgCorrect int
	encCore := s.App.Enclave().Core()
	for i, ex := range f.Subset {
		// OMG path.
		s.Device.Speak(ex.Samples)
		encCore.ResetCycles()
		got, err := s.Query()
		if err != nil {
			return nil, fmt.Errorf("E1 utterance %d (omg): %w", i, err)
		}
		res.omgTotal += encCore.Elapsed()
		if got.Label == ex.Label {
			omgCorrect++
		}
		// Plain path.
		plainSoC.Microphone().Feed(ex.Samples)
		plain.Core().ResetCycles()
		pGot, err := plain.Query()
		if err != nil {
			return nil, fmt.Errorf("E1 utterance %d (plain): %w", i, err)
		}
		res.plainTotal += plain.Core().Elapsed()
		if pGot.Label == ex.Label {
			plainCorrect++
		}
		res.audioSeconds += float64(len(ex.Samples)) / 16000
	}
	res.plainAcc = float64(plainCorrect) / float64(res.utterances)
	res.omgAcc = float64(omgCorrect) / float64(res.utterances)
	res.plainPerQuery = res.plainTotal / time.Duration(res.utterances)
	res.omgPerQuery = res.omgTotal / time.Duration(res.utterances)
	return res, nil
}

func runE1(ctx *Ctx) (*Table, error) {
	r, err := runTable1(ctx)
	if err != nil {
		return nil, err
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.0f ms", float64(d.Microseconds())/1000) }
	msq := func(d time.Duration) string { return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000) }
	return &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("Keyword recognition over the %d-utterance test subset", r.utterances),
		Claim:   "accuracy 75 % / 75 %; runtime 379 ms / 387 ms (plain / OMG)",
		Headers: []string{"Model", "Accuracy", "Runtime (total, simulated)", "Per query"},
		Rows: [][]string{
			{"TFLM \"micro\" (plain)", fmt.Sprintf("%.0f %%", r.plainAcc*100), ms(r.plainTotal), msq(r.plainPerQuery)},
			{"TFLM \"micro\" (OMG)", fmt.Sprintf("%.0f %%", r.omgAcc*100), ms(r.omgTotal), msq(r.omgPerQuery)},
		},
		Notes: []string{
			"accuracy is identical by construction: both rows run the same int8 interpreter on the same fingerprints",
			fmt.Sprintf("OMG overhead: %+.1f %% runtime (world switch + shared-buffer copies at query boundaries)",
				100*float64(r.omgTotal-r.plainTotal)/float64(r.plainTotal)),
			"our OMG row includes the secure-capture SMC; the paper excludes capture, which overlaps the 1 s recording in a live deployment",
		},
	}, nil
}

func runE2(ctx *Ctx) (*Table, error) {
	r, err := runTable1(ctx)
	if err != nil {
		return nil, err
	}
	rtfPlain := r.plainTotal.Seconds() / r.audioSeconds
	rtfOMG := r.omgTotal.Seconds() / r.audioSeconds
	return &Table{
		ID:      "E2",
		Title:   "Real-time factor over the test subset",
		Claim:   "\"the real-time factor is 0.004x\" (100 s of audio in ≈0.38 s)",
		Headers: []string{"Configuration", "Audio", "Processing (simulated)", "RTF"},
		Rows: [][]string{
			{"plain", fmt.Sprintf("%.0f s", r.audioSeconds), fmt.Sprintf("%.3f s", r.plainTotal.Seconds()), fmt.Sprintf("%.4fx", rtfPlain)},
			{"OMG", fmt.Sprintf("%.0f s", r.audioSeconds), fmt.Sprintf("%.3f s", r.omgTotal.Seconds()), fmt.Sprintf("%.4fx", rtfOMG)},
		},
	}, nil
}

func runE3(ctx *Ctx) (*Table, error) {
	f, err := ctx.fixture()
	if err != nil {
		return nil, err
	}
	model := f.Pipeline.Model
	blob, err := tflm.Encode(model)
	if err != nil {
		return nil, err
	}
	interp, err := tflm.NewInterpreter(cloneModel(model))
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:      "E3",
		Title:   "tiny_conv model footprint",
		Claim:   "\"The resulting compressed model is about 49 kB in size.\"",
		Headers: []string{"Quantity", "Measured"},
		Rows: [][]string{
			{"int8 weights + int32 biases", fmt.Sprintf("%.1f kB", float64(model.WeightBytes())/1000)},
			{"serialized OMGM file", fmt.Sprintf("%.1f kB", float64(len(blob))/1000)},
			{"parameters", fmt.Sprintf("%d", 640+8+52800+12)},
			{"activation arena (planned)", fmt.Sprintf("%.1f kB", float64(interp.ArenaSize())/1000)},
		},
		Notes: []string{"the OMGM container carries per-tensor names and quantization records, hence slightly above the raw weight bytes"},
	}, nil
}
