package harness

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func init() {
	register(Experiment{ID: "E14", Title: "Network serving edge (netfront over loopback)", Run: runE14})
}

// runE14 drives the wire-protocol serving stack the way external load
// would: one core.Server behind a netfront.FrontEnd on loopback TCP, swept
// over concurrent client connections firing one-shot classifications. The
// in-process Server throughput (E11's path, measured here at the same
// worker count) is the ceiling; the gap is the protocol's fixed
// per-utterance cost — framing, two socket hops, encode/decode — which is
// the honest price of having a service edge at all.
func runE14(ctx *Ctx) (*Table, error) {
	perConn := 64
	if ctx.Quick {
		perConn = 16
	}
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		return nil, err
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, 16)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}

	srv, err := core.NewServer(model, core.ServerConfig{Workers: 4, Queue: 64})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// In-process baseline: the same pool driven by direct Submit/Wait.
	baseline := func(total int) (float64, error) {
		tickets := make([]*core.Pending, 0, 16)
		start := time.Now()
		done := 0
		for done < total {
			burst := min(16, total-done)
			tickets = tickets[:0]
			for i := 0; i < burst; i++ {
				p, err := srv.Submit(utts[(done+i)%len(utts)])
				if err != nil {
					return 0, err
				}
				tickets = append(tickets, p)
			}
			for _, p := range tickets {
				if r := p.Wait(); r.Err != nil {
					return 0, r.Err
				}
				p.Release()
			}
			done += burst
		}
		return float64(total) / time.Since(start).Seconds(), nil
	}
	if _, err := baseline(16); err != nil { // warm-up
		return nil, err
	}
	basePerSec, err := baseline(4 * perConn)
	if err != nil {
		return nil, err
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	defer fe.Close()

	rows := [][]string{{
		"in-process", "-", fmt.Sprintf("%.0f utt/s", basePerSec), "1.00x",
	}}
	for _, conns := range []int{1, 4, 16} {
		clients := make([]*client.Client, conns)
		for i := range clients {
			if clients[i], err = client.Dial("tcp", l.Addr().String()); err != nil {
				return nil, err
			}
		}
		for _, c := range clients { // warm connection buffers
			if _, err := c.Classify(utts[0]); err != nil {
				return nil, err
			}
		}
		var wg sync.WaitGroup
		errCh := make(chan error, conns)
		start := time.Now()
		for ci, c := range clients {
			wg.Add(1)
			go func(c *client.Client, ci int) {
				defer wg.Done()
				for i := 0; i < perConn; i++ {
					_, err := c.Classify(utts[(ci+i)%len(utts)])
					for errors.Is(err, client.ErrBusy) {
						_, err = c.Classify(utts[(ci+i)%len(utts)])
					}
					if err != nil {
						errCh <- err
						return
					}
				}
			}(c, ci)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, c := range clients {
			c.Close()
		}
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		perSec := float64(conns*perConn) / elapsed.Seconds()
		ctx.Logf("E14: %d conns: %.0f utt/s (in-process %.0f)", conns, perSec, basePerSec)
		rows = append(rows, []string{
			fmt.Sprintf("%d conns", conns),
			fmt.Sprintf("%d", conns*perConn),
			fmt.Sprintf("%.0f utt/s", perSec),
			fmt.Sprintf("%.2fx", perSec/basePerSec),
		})
	}
	return &Table{
		ID:      "E14",
		Title:   "Network serving edge (netfront over loopback)",
		Claim:   "(engine property, no paper counterpart: the ML-as-a-service edge of §V driven by external connections)",
		Headers: []string{"Path", "Utterances", "Throughput", "vs in-process"},
		Rows:    rows,
		Notes: []string{
			"loopback TCP, one-shot requests: each utterance pays framing + two socket hops + decode; stream chunking amortizes this, one-shots bound it",
			"results are bit-exact with the direct path (netfront round-trip tests); BUSY replies are retried by the load generators",
		},
	}, nil
}
