package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick executes every registered experiment in quick
// mode against one shared fixture — the integration test of the whole
// reproduction stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments train a model; skipped in -short mode")
	}
	ctx := NewCtx(true, nil)
	exps := Experiments()
	if len(exps) != 16 { // E1..E14, F1, F2
		t.Fatalf("registered experiments = %d, want 16", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 || len(table.Headers) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Headers) {
					t.Fatalf("%s: row width %d != header width %d", e.ID, len(row), len(table.Headers))
				}
			}
			var buf bytes.Buffer
			table.Render(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("%s: render missing ID", e.ID)
			}
			if md := table.Markdown(); !strings.HasPrefix(md, "### ") {
				t.Fatalf("%s: bad markdown", e.ID)
			}
		})
	}
}

// TestTable1Shape validates the headline reproduction invariants: equal
// accuracy across plain/OMG and a small runtime overhead.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ctx := NewCtx(true, nil)
	r, err := runTable1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.plainAcc != r.omgAcc {
		t.Fatalf("accuracy differs: plain %.3f vs omg %.3f", r.plainAcc, r.omgAcc)
	}
	if r.omgAcc < 0.5 {
		t.Fatalf("accuracy %.2f implausibly low", r.omgAcc)
	}
	if r.omgTotal <= r.plainTotal {
		t.Fatal("OMG not slower than plain")
	}
	overhead := float64(r.omgTotal-r.plainTotal) / float64(r.plainTotal)
	if overhead > 0.2 {
		t.Fatalf("overhead %.1f%% too large", overhead*100)
	}
	// Per-query times in the low single-digit milliseconds, like the paper
	// (379 ms / 100 utterances ≈ 3.8 ms).
	if ms := float64(r.omgPerQuery.Microseconds()) / 1000; ms < 1 || ms > 20 {
		t.Fatalf("per-query %v outside plausible band", r.omgPerQuery)
	}
}

// TestE8SeparatesConfigs: the side-channel experiment must show high
// leakage without the defence and coin-flip accuracy with it.
func TestE8Separation(t *testing.T) {
	accPlain, err := PrimeProbeTrials(150, false)
	if err != nil {
		t.Fatal(err)
	}
	accProt, err := PrimeProbeTrials(150, true)
	if err != nil {
		t.Fatal(err)
	}
	if accPlain < 0.95 {
		t.Fatalf("unprotected prime+probe accuracy %.2f, want ≈1.0", accPlain)
	}
	if accProt < 0.3 || accProt > 0.7 {
		t.Fatalf("protected prime+probe accuracy %.2f, want ≈0.5", accProt)
	}
}

func TestRegistryOrdering(t *testing.T) {
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if idOrder(exps[i-1].ID) >= idOrder(exps[i].ID) {
			t.Fatalf("registry out of order: %s before %s", exps[i-1].ID, exps[i].ID)
		}
	}
	if _, ok := Lookup("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	// E1..E10 numeric ordering, not lexicographic.
	var ids []string
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	wantTail := []string{"E10", "E11", "E12", "E13", "E14", "F1", "F2"}
	for i, w := range wantTail {
		if ids[len(ids)-len(wantTail)+i] != w {
			t.Fatalf("tail ordering = %v", ids)
		}
	}
	// Check E2 comes right after E1.
	if ids[0] != "E1" || ids[1] != "E2" {
		t.Fatalf("head ordering = %v", ids)
	}
}
