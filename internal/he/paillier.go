// Package he implements the homomorphic-encryption baseline the OMG paper
// argues against (§II-A): Paillier additively homomorphic encryption and an
// encrypted-input inference protocol for the tiny_conv network. The paper's
// claim — "the computational overhead for HE when performing complex ML
// tasks is impractical for the given mobile scenario" — becomes experiment
// E7, which measures this baseline against the enclave.
//
// Paillier is chosen because linear layers (convolution, fully connected)
// need only ciphertext addition and plaintext scalar multiplication, the
// operations Paillier supports; nonlinear layers (ReLU) force an
// interactive round trip with the key holder, faithfully reproducing the
// structure of early HE inference systems such as CryptoNets-style hybrids.
package he

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/omgcrypto"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key (g = n+1 variant).
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // n²
}

// PrivateKey holds the decryption exponent λ = lcm(p−1, q−1) and the
// precomputed μ = L(g^λ mod n²)^−1 mod n.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int
	Mu     *big.Int
}

// GenerateKey creates a Paillier key pair with an n of the given bit size.
// Simulations use reduced sizes (512–1024 bits) for tractable benchmarks;
// E7 projects costs to 2048 bits from a measured modexp scaling factor.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("he: modulus %d bits too small", bits)
	}
	if rng == nil {
		rng = omgcrypto.Rand
	}
	p, err := randPrime(rng, bits/2)
	if err != nil {
		return nil, err
	}
	q, err := randPrime(rng, bits-bits/2)
	if err != nil {
		return nil, err
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("he: degenerate primes")
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, gcd)
	// g = n+1: L(g^λ mod n²) = λ mod n (for this g), so μ = λ⁻¹ mod n.
	mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
	if mu == nil {
		return nil, errors.New("he: lambda not invertible")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2},
		Lambda:    lambda,
		Mu:        mu,
	}, nil
}

// Encrypt encrypts m ∈ [0, N) as c = (1+n)^m · r^n mod n².
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*big.Int, error) {
	if rng == nil {
		rng = omgcrypto.Rand
	}
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("he: plaintext out of range")
	}
	r, err := randUnit(rng, pk.N)
	if err != nil {
		return nil, err
	}
	// (1+n)^m mod n² = 1 + m·n (binomial), cheaper than a modexp.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

// Decrypt recovers m = L(c^λ mod n²) · μ mod n.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, errors.New("he: ciphertext out of range")
	}
	u := new(big.Int).Exp(c, sk.Lambda, sk.N2)
	// L(u) = (u-1)/n
	u.Sub(u, one)
	u.Div(u, sk.N)
	u.Mul(u, sk.Mu)
	u.Mod(u, sk.N)
	return u, nil
}

// Add returns the ciphertext of m1+m2 (mod N): c1·c2 mod n².
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// MulPlain returns the ciphertext of k·m: c^k mod n². Negative k is
// handled via the modular inverse of c.
func (pk *PublicKey) MulPlain(c *big.Int, k int64) *big.Int {
	if k == 0 {
		// Fresh-looking encryption of zero without randomness: (1+n)^0 = 1.
		return big.NewInt(1)
	}
	base := c
	kk := k
	if k < 0 {
		base = new(big.Int).ModInverse(c, pk.N2)
		kk = -k
	}
	return new(big.Int).Exp(base, big.NewInt(kk), pk.N2)
}

// EncodeSigned maps a signed value into [0, N) (two's-complement style).
func (pk *PublicKey) EncodeSigned(v int64) *big.Int {
	b := big.NewInt(v)
	if v < 0 {
		b.Add(b, pk.N)
	}
	return b
}

// DecodeSigned maps a decrypted plaintext back to a signed value, assuming
// |v| < N/2.
func (pk *PublicKey) DecodeSigned(m *big.Int) int64 {
	half := new(big.Int).Rsh(pk.N, 1)
	if m.Cmp(half) > 0 {
		v := new(big.Int).Sub(m, pk.N)
		return v.Int64()
	}
	return m.Int64()
}

// CiphertextBytes returns the serialized size of one ciphertext (2·|n|),
// the unit of the communication accounting in E7.
func (pk *PublicKey) CiphertextBytes() int {
	return 2 * ((pk.N.BitLen() + 7) / 8)
}

func randPrime(rng io.Reader, bits int) (*big.Int, error) {
	for i := 0; i < 1000; i++ {
		p, err := randBits(rng, bits)
		if err != nil {
			return nil, err
		}
		p.SetBit(p, bits-1, 1) // full size
		p.SetBit(p, 0, 1)      // odd
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("he: prime search exhausted")
}

func randBits(rng io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	v := new(big.Int).SetBytes(buf)
	return v.Rsh(v, uint(len(buf)*8-bits)), nil
}

func randUnit(rng io.Reader, n *big.Int) (*big.Int, error) {
	for i := 0; i < 1000; i++ {
		r, err := randBits(rng, n.BitLen()-1)
		if err != nil {
			return nil, err
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("he: unit search exhausted")
}
