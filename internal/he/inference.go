package he

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/intnet"
)

// AddPlain folds a plaintext constant into a ciphertext:
// c · (1+n)^k = c · (1 + k·n) mod n².
func (pk *PublicKey) AddPlain(c *big.Int, k int64) *big.Int {
	kk := pk.EncodeSigned(k)
	gm := new(big.Int).Mul(kk, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	out := gm.Mul(gm, c)
	return out.Mod(out, pk.N2)
}

// Report tallies the work and traffic of one HE inference.
type Report struct {
	Encryptions int
	Decryptions int
	PlainMuls   int // ciphertext–plaintext multiplications (modexp)
	Adds        int // ciphertext–ciphertext additions (modmul)
	Rounds      int // client↔server interaction rounds
	BytesOnWire int64
	Prediction  int
}

// Engine evaluates the integer tiny_conv on encrypted inputs: the client
// holds the key pair and its fingerprint; the server holds the plaintext
// model. Linear layers run on ciphertexts server-side; ReLU requires a
// decrypt–apply–re-encrypt round trip through the client, as in early
// interactive HE inference systems. (The client thereby sees post-conv
// activations — the model-privacy weakness of this construction is part of
// why the paper's TEE approach wins; see DESIGN.md.)
type Engine struct {
	sk   *PrivateKey
	spec *intnet.Spec
	rng  io.Reader
}

// NewEngine builds an HE inference engine from a quantized tiny_conv model.
func NewEngine(sk *PrivateKey, spec *intnet.Spec, rng io.Reader) (*Engine, error) {
	if sk == nil || spec == nil {
		return nil, fmt.Errorf("he: nil key or spec")
	}
	// The plaintext space must hold the largest accumulator: conservatively
	// |acc| ≤ KH·KW·255·127 + |bias|, far below 2^40; require N ≥ 2^64.
	if sk.N.BitLen() < 64 {
		return nil, fmt.Errorf("he: modulus too small for accumulators")
	}
	return &Engine{sk: sk, spec: spec, rng: rng}, nil
}

// Infer runs one encrypted inference and returns the report.
func (e *Engine) Infer(features []uint8) (*Report, error) {
	s := e.spec
	pk := &e.sk.PublicKey
	rep := &Report{}
	ctBytes := int64(pk.CiphertextBytes())

	// Client: encrypt the fingerprint and ship it (round 1).
	x := s.InputFromFeatures(features)
	encX := make([]*big.Int, len(x))
	for i, v := range x {
		c, err := pk.Encrypt(e.rng, pk.EncodeSigned(v))
		if err != nil {
			return nil, err
		}
		encX[i] = c
		rep.Encryptions++
	}
	rep.Rounds++
	rep.BytesOnWire += int64(len(encX)) * ctBytes

	// Server: homomorphic convolution.
	encConv := make([]*big.Int, s.FlatLen)
	for oy := 0; oy < s.OutH; oy++ {
		iy0 := oy*s.SH - s.PadT
		for ox := 0; ox < s.OutW; ox++ {
			ix0 := ox*s.SW - s.PadL
			for f := 0; f < s.Filters; f++ {
				acc := pk.AddPlain(big.NewInt(1), s.ConvB[f]) // Enc(bias), deterministic zero-randomness form
				wBase := f * s.KH * s.KW
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.InH {
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.InW {
							continue
						}
						w := s.ConvW[wBase+ky*s.KW+kx]
						if w == 0 {
							continue
						}
						term := pk.MulPlain(encX[iy*s.InW+ix], w)
						acc = pk.Add(acc, term)
						rep.PlainMuls++
						rep.Adds++
					}
				}
				encConv[(oy*s.OutW+ox)*s.Filters+f] = acc
			}
		}
	}

	// ReLU round trip: server → client (ciphertexts), client decrypts,
	// applies ReLU, re-encrypts, client → server (round 2).
	rep.Rounds++
	rep.BytesOnWire += int64(len(encConv)) * ctBytes * 2
	encFlat := make([]*big.Int, len(encConv))
	for i, c := range encConv {
		m, err := e.sk.Decrypt(c)
		if err != nil {
			return nil, err
		}
		rep.Decryptions++
		v := pk.DecodeSigned(m)
		if v < 0 {
			v = 0
		}
		enc, err := pk.Encrypt(e.rng, pk.EncodeSigned(v))
		if err != nil {
			return nil, err
		}
		encFlat[i] = enc
		rep.Encryptions++
	}

	// Server: homomorphic fully connected layer; logits back to the client
	// (round 3).
	encLogits := make([]*big.Int, s.NumClasses)
	for o := 0; o < s.NumClasses; o++ {
		acc := pk.AddPlain(big.NewInt(1), s.FCB[o])
		wBase := o * s.FlatLen
		for i := 0; i < s.FlatLen; i++ {
			w := s.FCW[wBase+i]
			if w == 0 {
				continue
			}
			acc = pk.Add(acc, pk.MulPlain(encFlat[i], w))
			rep.PlainMuls++
			rep.Adds++
		}
		encLogits[o] = acc
	}
	rep.Rounds++
	rep.BytesOnWire += int64(len(encLogits)) * ctBytes

	// Client: decrypt logits, take the argmax.
	best := 0
	var bestV int64
	for o, c := range encLogits {
		m, err := e.sk.Decrypt(c)
		if err != nil {
			return nil, err
		}
		rep.Decryptions++
		v := pk.DecodeSigned(m)
		if o == 0 || v > bestV {
			best, bestV = o, v
		}
	}
	rep.Prediction = best
	return rep, nil
}
