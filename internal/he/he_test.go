package he

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/intnet"
	"repro/internal/omgcrypto"
	"repro/internal/tflm"
)

func testKey(t *testing.T, bits int) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(omgcrypto.NewDRBG("he-test"), bits)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t, 256)
	rng := omgcrypto.NewDRBG("rt")
	for _, v := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Encrypt(rng, big.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m.Int64() != v {
			t.Fatalf("round trip %d -> %d", v, m.Int64())
		}
	}
	if _, err := sk.Encrypt(rng, big.NewInt(-1)); err == nil {
		t.Fatal("negative raw plaintext accepted")
	}
	if _, err := sk.Encrypt(rng, sk.N); err == nil {
		t.Fatal("plaintext ≥ N accepted")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
}

func TestHomomorphicProperties(t *testing.T) {
	sk := testKey(t, 256)
	pk := &sk.PublicKey
	rng := omgcrypto.NewDRBG("hom")
	f := func(a, b int32, k int16) bool {
		ca, err := pk.Encrypt(rng, pk.EncodeSigned(int64(a)))
		if err != nil {
			return false
		}
		cb, err := pk.Encrypt(rng, pk.EncodeSigned(int64(b)))
		if err != nil {
			return false
		}
		// Enc(a)·Enc(b) = Enc(a+b)
		sum, err := sk.Decrypt(pk.Add(ca, cb))
		if err != nil || pk.DecodeSigned(sum) != int64(a)+int64(b) {
			return false
		}
		// Enc(a)^k = Enc(k·a)
		prod, err := sk.Decrypt(pk.MulPlain(ca, int64(k)))
		if err != nil || pk.DecodeSigned(prod) != int64(a)*int64(k) {
			return false
		}
		// AddPlain folds constants.
		ap, err := sk.Decrypt(pk.AddPlain(ca, int64(b)))
		if err != nil || pk.DecodeSigned(ap) != int64(a)+int64(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSignedEncoding(t *testing.T) {
	sk := testKey(t, 256)
	pk := &sk.PublicKey
	for _, v := range []int64{0, 1, -1, 12345, -98765, 1 << 30, -(1 << 30)} {
		if got := pk.DecodeSigned(pk.EncodeSigned(v)); got != v {
			t.Fatalf("signed encode/decode %d -> %d", v, got)
		}
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(omgcrypto.NewDRBG("x"), 64); err == nil {
		t.Fatal("64-bit modulus accepted")
	}
}

// smallModel builds a miniature quantized conv+fc model for end-to-end
// protocol tests.
func smallModel(t *testing.T) *tflm.Model {
	t.Helper()
	r := rand.New(rand.NewSource(21))
	b := tflm.NewBuilder("mini", 1)
	inQ := tflm.QuantParams{Scale: 1.0 / 128, ZeroPoint: 0}
	in := b.Tensor(&tflm.Tensor{Name: "in", Type: tflm.Int8, Shape: []int{1, 8, 7, 1}, Quant: &inQ})
	b.Input(in)
	wQ := tflm.SymmetricWeightParams(0.5)
	w := &tflm.Tensor{Name: "w", Type: tflm.Int8, Shape: []int{3, 3, 3, 1}, Quant: &wQ}
	w.Alloc()
	for i := range w.I8 {
		w.I8[i] = int8(r.Intn(200) - 100)
	}
	bias := &tflm.Tensor{Name: "b", Type: tflm.Int32, Shape: []int{3}, Quant: &tflm.QuantParams{Scale: inQ.Scale * wQ.Scale}}
	bias.Alloc()
	for i := range bias.I32 {
		bias.I32[i] = int32(r.Intn(100) - 50)
	}
	wi, bi := b.Const(w), b.Const(bias)
	convQ := tflm.QuantParams{Scale: 0.05, ZeroPoint: -128}
	convOut := b.Tensor(&tflm.Tensor{Name: "conv", Type: tflm.Int8, Shape: []int{1, 4, 4, 3}, Quant: &convQ})
	b.Node(tflm.OpConv2D, tflm.Conv2DParams{StrideH: 2, StrideW: 2, Padding: tflm.PaddingSame, Activation: tflm.ActReLU},
		[]int{in, wi, bi}, []int{convOut})
	flat := b.Tensor(&tflm.Tensor{Name: "flat", Type: tflm.Int8, Shape: []int{1, 48}, Quant: &convQ})
	b.Node(tflm.OpReshape, tflm.ReshapeParams{NewShape: []int{1, 48}}, []int{convOut}, []int{flat})
	fcWQ := tflm.SymmetricWeightParams(0.25)
	fcW := &tflm.Tensor{Name: "fcw", Type: tflm.Int8, Shape: []int{4, 48}, Quant: &fcWQ}
	fcW.Alloc()
	for i := range fcW.I8 {
		fcW.I8[i] = int8(r.Intn(200) - 100)
	}
	fcB := &tflm.Tensor{Name: "fcb", Type: tflm.Int32, Shape: []int{4}, Quant: &tflm.QuantParams{Scale: convQ.Scale * fcWQ.Scale}}
	fcB.Alloc()
	fwi, fbi := b.Const(fcW), b.Const(fcB)
	logitQ := tflm.QuantParams{Scale: 0.5, ZeroPoint: 0}
	logits := b.Tensor(&tflm.Tensor{Name: "logits", Type: tflm.Int8, Shape: []int{1, 4}, Quant: &logitQ})
	b.Node(tflm.OpFullyConnected, tflm.FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})
	b.Output(logits)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHEInferenceMatchesPlainReference(t *testing.T) {
	m := smallModel(t)
	spec, err := intnet.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	sk := testKey(t, 256)
	eng, err := NewEngine(sk, spec, omgcrypto.NewDRBG("inf"))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		features := make([]uint8, spec.InputLn)
		for i := range features {
			features[i] = uint8(r.Intn(256))
		}
		rep, err := eng.Infer(features)
		if err != nil {
			t.Fatal(err)
		}
		_, want := spec.Forward(spec.InputFromFeatures(features))
		if rep.Prediction != want {
			t.Fatalf("trial %d: HE predicted %d, plaintext %d", trial, rep.Prediction, want)
		}
		if rep.Rounds != 3 {
			t.Fatalf("rounds = %d", rep.Rounds)
		}
		if rep.Encryptions != spec.InputLn+spec.FlatLen {
			t.Fatalf("encryptions = %d", rep.Encryptions)
		}
		if rep.Decryptions != spec.FlatLen+spec.NumClasses {
			t.Fatalf("decryptions = %d", rep.Decryptions)
		}
		if rep.BytesOnWire <= 0 || rep.PlainMuls == 0 {
			t.Fatal("accounting empty")
		}
	}
}

func TestEngineRejectsSmallModulus(t *testing.T) {
	m := smallModel(t)
	spec, err := intnet.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// 128-bit key is generable but our engine demands ≥64-bit N; craft a
	// direct small key to hit the check.
	sk := testKey(t, 128)
	if sk.N.BitLen() >= 64 {
		// Still valid; just ensure constructor succeeds then.
		if _, err := NewEngine(sk, spec, nil); err != nil {
			t.Fatal(err)
		}
		return
	}
	if _, err := NewEngine(sk, spec, nil); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestIntnetSpecFromModel(t *testing.T) {
	m := smallModel(t)
	spec, err := intnet.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if spec.InH != 8 || spec.InW != 7 || spec.Filters != 3 || spec.NumClasses != 4 {
		t.Fatalf("spec geometry %+v", spec)
	}
	if spec.OutH != 4 || spec.OutW != 4 || spec.FlatLen != 48 {
		t.Fatalf("spec conv geometry %+v", spec)
	}
}
