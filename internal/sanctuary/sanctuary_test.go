package sanctuary

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/trustzone"
)

var (
	keysOnce sync.Once
	testKeys *trustzone.PlatformKeys
	testRoot *omgcrypto.Identity
)

func platformKeys(t *testing.T) (*trustzone.PlatformKeys, *omgcrypto.Identity) {
	t.Helper()
	keysOnce.Do(func() {
		rng := omgcrypto.NewDRBG("sanctuary-test")
		var err error
		testRoot, err = omgcrypto.NewIdentity(rng, "device-vendor")
		if err != nil {
			t.Fatal(err)
		}
		testKeys, err = trustzone.NewPlatformKeys(rng, testRoot, "hikey960")
		if err != nil {
			t.Fatal(err)
		}
	})
	return testKeys, testRoot
}

func testManager(t *testing.T) (*hw.SoC, *Manager, *omgcrypto.Identity) {
	t.Helper()
	keys, root := platformKeys(t)
	soc := hw.NewSoC(hw.Config{BigCores: 2, LittleCores: 2, DRAMSize: 128 << 20})
	mon := trustzone.NewMonitor(soc)
	sos, err := trustzone.BootSecureOS(soc, mon, trustzone.SecureOSConfig{
		Keys:           keys,
		Rand:           omgcrypto.NewDRBG("enclave-keys"),
		EnclaveKeyBits: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return soc, NewManager(soc, mon, sos, 0), root
}

func testImage(name string) Image {
	return Image{Name: name, Code: []byte("SL v1 || SA " + name)}
}

func smallConfig(name string, mic bool) Config {
	return Config{
		Image:        testImage(name),
		PrivateSize:  256 << 10,
		SharedSWSize: 64 << 10,
		AllowMic:     mic,
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	soc, mgr, root := testManager(t)
	e, err := mgr.Setup(smallConfig("kws", true))
	if err != nil {
		t.Fatal(err)
	}
	if e.State() != StateSetup {
		t.Fatalf("state after setup = %v", e.State())
	}
	// The enclave core was powered off during setup.
	if e.Core().Online() {
		t.Fatal("enclave core online before boot")
	}

	// Measurement matches what a remote verifier computes from the public
	// image.
	want, err := ExpectedMeasurement(testImage("kws"), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Measurement() != want {
		t.Fatal("platform measurement != expected measurement")
	}

	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateRunning || !e.Core().Online() {
		t.Fatal("boot did not bring the enclave up")
	}

	// Attestation through the OS relay verifies against the root.
	nonce := []byte("user-nonce")
	report, chain, err := mgr.Attest("kws", nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omgcrypto.VerifyReport(report, chain, root.Public(), want, nonce); err != nil {
		t.Fatal(err)
	}

	// SA code runs with a working Env.
	err = e.Run(func(env *Env) error {
		if env.Identity() == nil {
			t.Fatal("no identity inside enclave")
		}
		if err := env.WritePriv(0x1000, []byte("activations")); err != nil {
			return err
		}
		buf := make([]byte, 11)
		if err := env.ReadPriv(0x1000, buf); err != nil {
			return err
		}
		if string(buf) != "activations" {
			t.Fatal("private memory round trip failed")
		}
		// Enclave-initiated attestation (vendor channel).
		rep, ch, err := env.Attest([]byte("vendor-nonce"))
		if err != nil {
			return err
		}
		if _, err := omgcrypto.VerifyReport(rep, ch, root.Public(), want, []byte("vendor-nonce")); err != nil {
			t.Fatal(err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Teardown(); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateTornDown {
		t.Fatalf("state after teardown = %v", e.State())
	}
	// The core is back in the OS pool.
	if !soc.Core(1).Online() {
		t.Fatal("core not returned to the OS")
	}
}

func TestIsolationFromOSAndDMA(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("iso", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("KU and plaintext model")
	if err := e.Run(func(env *Env) error { return env.WritePriv(0, secret) }); err != nil {
		t.Fatal(err)
	}
	if err := soc.Read(mgr.OSCore(), e.PrivBase(), make([]byte, 8)); err == nil {
		t.Fatal("commodity OS read enclave memory")
	}
	if err := soc.Write(mgr.OSCore(), e.PrivBase(), []byte{0}); err == nil {
		t.Fatal("commodity OS wrote enclave memory")
	}
	if err := soc.DMARead(e.PrivBase(), make([]byte, 8)); err == nil {
		t.Fatal("DMA read enclave memory")
	}
	// Physical snooping of the simulated DRAM shows the data is really
	// there — only the access control stands between the OS and the secret.
	raw := make([]byte, len(secret))
	soc.Mem().Read(e.PrivBase(), raw)
	if !bytes.Equal(raw, secret) {
		t.Fatal("test plumbing: secret not in DRAM")
	}
}

func TestEnvBoundsChecks(t *testing.T) {
	_, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("bounds", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	err = e.Run(func(env *Env) error {
		if err := env.WritePriv(e.PrivSize()-4, make([]byte, 8)); err == nil {
			t.Fatal("out-of-region private write allowed")
		}
		if err := env.ReadPriv(e.PrivSize(), make([]byte, 1)); err == nil {
			t.Fatal("out-of-region private read allowed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMicCaptureThroughSecureWorld(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("mic", true))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	want := make([]int16, 320)
	for i := range want {
		want[i] = int16(i*37 - 5000)
	}
	soc.Microphone().Feed(want)
	err = e.Run(func(env *Env) error {
		before := env.Core().Cycles()
		got, err := env.CaptureMic(len(want))
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			t.Fatalf("captured %d samples, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sample %d = %d, want %d", i, got[i], want[i])
			}
		}
		// The capture must have paid at least one world switch.
		minCycles := uint64(hw.WorldSwitchTime.Nanoseconds()) * env.Core().Hz() / 1_000_000_000
		if env.Core().Cycles()-before < minCycles {
			t.Fatal("mic capture did not pay the world-switch cost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMicCaptureIntoReusesBuffer: the streaming capture path must decode
// into the caller's buffer (no reallocation when capacity suffices) and
// deliver the same samples as the allocating wrapper.
func TestMicCaptureIntoReusesBuffer(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("micinto", true))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	want := make([]int16, 480)
	for i := range want {
		want[i] = int16(i*13 - 3000)
	}
	err = e.Run(func(env *Env) error {
		buf := make([]int16, len(want))
		for round := 0; round < 3; round++ {
			soc.Microphone().Feed(want)
			got, err := env.CaptureMicInto(buf, len(want))
			if err != nil {
				return err
			}
			if len(got) != len(want) || &got[0] != &buf[0] {
				t.Fatalf("round %d: CaptureMicInto reallocated despite sufficient capacity", round)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: sample %d = %d, want %d", round, i, got[i], want[i])
				}
			}
		}
		// Undersized buffers are grown, not overrun.
		soc.Microphone().Feed(want)
		got, err := env.CaptureMicInto(make([]int16, 2), len(want))
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			t.Fatalf("undersized buf: %d samples, want %d", len(got), len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMicCaptureDeniedWithoutPermission(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("nomic", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	soc.Microphone().Feed(make([]int16, 16))
	err = e.Run(func(env *Env) error {
		if _, err := env.CaptureMic(16); err == nil {
			t.Fatal("mic capture without permission succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSuspendResumeKeepsMemoryLocked(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("susp", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	state := []byte("decrypted model stays resident")
	if err := e.Run(func(env *Env) error { return env.WritePriv(64, state) }); err != nil {
		t.Fatal(err)
	}
	oldCore := e.Core()
	if err := e.Suspend(); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateSuspended {
		t.Fatalf("state = %v", e.State())
	}
	if !oldCore.Online() {
		t.Fatal("suspended core not returned to the OS")
	}
	// Memory remains locked while suspended.
	if err := soc.Read(mgr.OSCore(), e.PrivBase()+64, make([]byte, 8)); err == nil {
		t.Fatal("OS read enclave memory during suspend")
	}
	// Busy the old core so resume picks a different one.
	oldCore.Charge(1 << 40)
	if err := e.Resume(); err != nil {
		t.Fatal(err)
	}
	if e.Core() == oldCore {
		t.Fatal("resume picked the busiest core")
	}
	// Old core lost access; new core sees the preserved state.
	if err := soc.Read(oldCore, e.PrivBase()+64, make([]byte, 8)); err == nil {
		t.Fatal("old core retains access after resume")
	}
	err = e.Run(func(env *Env) error {
		buf := make([]byte, len(state))
		if err := env.ReadPriv(64, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, state) {
			t.Fatal("enclave state lost across suspend/resume")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestTeardownScrubsMemory(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("scrub", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0x5A}, 1024)
	if err := e.Run(func(env *Env) error { return env.WritePriv(0, secret) }); err != nil {
		t.Fatal(err)
	}
	base := e.PrivBase()
	if err := e.Teardown(); err != nil {
		t.Fatal(err)
	}
	// Region is unlocked now; the OS reads only zeros.
	buf := make([]byte, len(secret))
	if err := soc.Read(mgr.OSCore(), base, buf); err != nil {
		t.Fatalf("memory still locked after teardown: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x survived scrub", i, b)
		}
	}
}

func TestStateMachineRejectsInvalidTransitions(t *testing.T) {
	_, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("fsm", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(env *Env) error { return nil }); err == nil {
		t.Fatal("ran before boot")
	}
	if err := e.Suspend(); err == nil {
		t.Fatal("suspended before boot")
	}
	if err := e.Resume(); err == nil {
		t.Fatal("resumed before boot")
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err == nil {
		t.Fatal("double boot")
	}
	if err := e.Resume(); err == nil {
		t.Fatal("resumed while running")
	}
	if err := e.Teardown(); err != nil {
		t.Fatal(err)
	}
	if err := e.Teardown(); err == nil {
		t.Fatal("double teardown")
	}
	if err := e.Run(func(env *Env) error { return nil }); err == nil {
		t.Fatal("ran after teardown")
	}
}

func TestBlobStorageRoundTrip(t *testing.T) {
	soc, mgr, _ := testManager(t)
	e, err := mgr.Setup(smallConfig("blob", false))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Boot(); err != nil {
		t.Fatal(err)
	}
	err = e.Run(func(env *Env) error {
		env.StoreBlob("model.enc", []byte("ciphertext"))
		got, ok := env.LoadBlob("model.enc")
		if !ok || !bytes.Equal(got, []byte("ciphertext")) {
			t.Fatal("blob round trip failed")
		}
		if _, ok := env.LoadBlob("missing"); ok {
			t.Fatal("loaded a missing blob")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The blob is on untrusted flash, visible to the OS (hence it must be
	// ciphertext).
	if _, ok := soc.Flash().Load("model.enc"); !ok {
		t.Fatal("blob not on flash")
	}
}

func TestExpectedMeasurementMatchesTamperedImageDetection(t *testing.T) {
	_, mgr, _ := testManager(t)
	img := testImage("genuine")
	e, err := mgr.Setup(Config{Image: img, PrivateSize: 128 << 10, SharedSWSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	good, err := ExpectedMeasurement(img, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Measurement() != good {
		t.Fatal("genuine image measurement mismatch")
	}
	tampered := Image{Name: img.Name, Code: append([]byte(nil), img.Code...)}
	tampered.Code[0] ^= 1
	bad, err := ExpectedMeasurement(tampered, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if bad == good {
		t.Fatal("tampered image has same measurement")
	}
	if _, err := ExpectedMeasurement(Image{Name: "big", Code: make([]byte, 1024)}, 512); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestSetupErrors(t *testing.T) {
	_, mgr, _ := testManager(t)
	if _, err := mgr.Setup(Config{}); err == nil {
		t.Fatal("unnamed image accepted")
	}
	if _, err := mgr.Setup(Config{Image: Image{Name: "big", Code: make([]byte, 2048)}, PrivateSize: 1024}); err == nil {
		t.Fatal("oversized image accepted")
	}
	if _, err := mgr.Setup(smallConfig("dup", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Setup(smallConfig("dup", false)); err == nil {
		t.Fatal("duplicate enclave accepted")
	}
}

func TestSetupExhaustsCores(t *testing.T) {
	_, mgr, _ := testManager(t) // 4 cores, core 0 is the OS
	for i := 0; i < 3; i++ {
		cfg := smallConfig(string(rune('a'+i)), false)
		if _, err := mgr.Setup(cfg); err != nil {
			t.Fatalf("enclave %d: %v", i, err)
		}
	}
	if _, err := mgr.Setup(smallConfig("one-too-many", false)); err == nil {
		t.Fatal("more enclaves than spare cores")
	}
}
