package sanctuary

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/trustzone"
)

// Enclave is a SANCTUARY App instance. Methods on Enclave model operations
// the commodity OS (Manager) performs on the enclave's behalf; code running
// *inside* the enclave acts through the Env passed to Run.
type Enclave struct {
	mgr         *Manager
	name        string
	cfg         Config
	core        *hw.Core
	privBase    hw.PhysAddr
	swBase      hw.PhysAddr
	measurement omgcrypto.Measurement
	cert        *omgcrypto.Certificate
	identity    *omgcrypto.Identity
	state       State
	// micScratch is the enclave-owned byte staging buffer for microphone
	// reads, grown on demand and reused so steady-state capture does not
	// allocate. The enclave is single-threaded, so no lock is needed.
	micScratch []byte
}

// Name returns the enclave's name (the image name).
func (e *Enclave) Name() string { return e.name }

// State returns the current life-cycle state.
func (e *Enclave) State() State { return e.state }

// Core returns the core the enclave is currently bound to.
func (e *Enclave) Core() *hw.Core { return e.core }

// Measurement returns the platform-computed measurement taken at setup.
func (e *Enclave) Measurement() omgcrypto.Measurement { return e.measurement }

// PrivBase returns the base of the enclave-private region (used by attack
// simulations in tests; the OS cannot successfully access it).
func (e *Enclave) PrivBase() hw.PhysAddr { return e.privBase }

// PrivSize returns the size of the enclave-private region.
func (e *Enclave) PrivSize() uint64 { return e.cfg.PrivateSize }

// SWSize returns the size of the window shared with the secure world, which
// bounds how much peripheral data one SMC round trip can deliver.
func (e *Enclave) SWSize() uint64 { return e.cfg.SharedSWSize }

// Boot performs life-cycle step 2: powers the dedicated core on with the
// SANCTUARY Library, which receives the enclave's certified identity from
// the secure world into enclave-private memory.
func (e *Enclave) Boot() error {
	if e.state != StateSetup {
		return fmt.Errorf("sanctuary: boot from state %v", e.state)
	}
	if err := e.core.PowerOn(); err != nil {
		return err
	}
	id, _, err := e.mgr.sos.EnclaveIdentity(e.name)
	if err != nil {
		return err
	}
	e.identity = id
	e.state = StateRunning
	return nil
}

// Run executes SA code on the enclave's core. The function receives an Env
// through which all memory, peripheral and OS interactions flow, so that
// every access is subject to the platform's checks and cycle accounting.
func (e *Enclave) Run(f func(env *Env) error) error {
	if e.state != StateRunning {
		return fmt.Errorf("sanctuary: run from state %v", e.state)
	}
	return f(&Env{enclave: e})
}

// Suspend hands the enclave's core back to the commodity OS while keeping
// its memory locked (§V: between queries "the SANCTUARY core can be
// reallocated to the commodity OS while the memory is still locked").
func (e *Enclave) Suspend() error {
	if e.state != StateRunning {
		return fmt.Errorf("sanctuary: suspend from state %v", e.state)
	}
	e.core.InvalidateL1()
	if err := e.core.PowerOff(e.mgr.osCore); err != nil {
		return err
	}
	if err := e.core.PowerOn(); err != nil { // core returns to the OS pool
		return err
	}
	e.state = StateSuspended
	return nil
}

// Resume re-allocates a (possibly different) core, rebinds the locked memory
// to it via the secure world, and continues execution.
func (e *Enclave) Resume() error {
	if e.state != StateSuspended {
		return fmt.Errorf("sanctuary: resume from state %v", e.state)
	}
	core, err := e.mgr.leastBusyCore()
	if err != nil {
		return err
	}
	if err := core.PowerOff(e.mgr.osCore); err != nil {
		return err
	}
	if _, err := e.mgr.mon.Call(e.mgr.osCore, trustzone.SvcEnclaveRebind, trustzone.RebindReq{
		Name: e.name, NewCore: core.ID(),
	}); err != nil {
		_ = core.PowerOn()
		return fmt.Errorf("sanctuary: rebind: %w", err)
	}
	if err := core.PowerOn(); err != nil {
		return err
	}
	e.core = core
	e.state = StateRunning
	return nil
}

// Teardown performs life-cycle step 4: the core is shut down, its L1 is
// invalidated, the SA memory is scrubbed and unlocked by the secure world,
// and the core is handed back to the commodity OS.
func (e *Enclave) Teardown() error {
	switch e.state {
	case StateRunning:
		e.core.InvalidateL1()
		if err := e.core.PowerOff(e.mgr.osCore); err != nil {
			return err
		}
	case StateSuspended:
		// Core already returned to the OS.
	default:
		return fmt.Errorf("sanctuary: teardown from state %v", e.state)
	}
	if _, err := e.mgr.mon.Call(e.mgr.osCore, trustzone.SvcEnclaveTeardown, trustzone.TeardownReq{Name: e.name}); err != nil {
		return fmt.Errorf("sanctuary: secure-world teardown: %w", err)
	}
	if e.state == StateRunning {
		if err := e.core.PowerOn(); err != nil { // hand the core back
			return err
		}
	}
	e.state = StateTornDown
	delete(e.mgr.enclaves, e.name)
	return nil
}

// Env is the execution environment of SA code: the SANCTUARY Library's
// system interface. All its operations run on the enclave's core and are
// charged and checked by the simulated platform.
type Env struct {
	enclave *Enclave
}

// Core returns the core the SA executes on.
func (env *Env) Core() *hw.Core { return env.enclave.core }

// Identity returns the enclave's private identity (PK/SK pair from §V).
// Only SA code can reach it; the Manager offers no accessor.
func (env *Env) Identity() *omgcrypto.Identity { return env.enclave.identity }

// WritePriv stores data at the given offset of the enclave-private region.
func (env *Env) WritePriv(off uint64, data []byte) error {
	e := env.enclave
	if off+uint64(len(data)) > e.cfg.PrivateSize {
		return fmt.Errorf("sanctuary: private write [%d,%d) outside region", off, off+uint64(len(data)))
	}
	e.core.Charge(uint64(len(data)) * hw.CyclesPerByteCopy)
	return e.mgr.soc.Write(e.core, e.privBase+hw.PhysAddr(off), data)
}

// ReadPriv loads len(buf) bytes from the given offset of the private region.
func (env *Env) ReadPriv(off uint64, buf []byte) error {
	e := env.enclave
	if off+uint64(len(buf)) > e.cfg.PrivateSize {
		return fmt.Errorf("sanctuary: private read [%d,%d) outside region", off, off+uint64(len(buf)))
	}
	e.core.Charge(uint64(len(buf)) * hw.CyclesPerByteCopy)
	return e.mgr.soc.Read(e.core, e.privBase+hw.PhysAddr(off), buf)
}

// SecureCall performs an SMC to a secure-world service from the SA's core,
// paying the world-switch cost.
func (env *Env) SecureCall(svc trustzone.ServiceID, req any) (any, error) {
	return env.enclave.mgr.mon.Call(env.enclave.core, svc, req)
}

// Attest obtains an attestation report bound to the caller-supplied nonce,
// as the enclave does when opening the secure channel to the vendor (§V
// step 2).
func (env *Env) Attest(nonce []byte) (*omgcrypto.AttestationReport, []*omgcrypto.Certificate, error) {
	resp, err := env.SecureCall(trustzone.SvcEnclaveAttest, trustzone.AttestReq{
		Name: env.enclave.name, Nonce: nonce,
	})
	if err != nil {
		return nil, nil, err
	}
	at := resp.(trustzone.AttestResp)
	return at.Report, at.Chain, nil
}

// CaptureMic pulls n PCM16 samples from the secure microphone through the
// secure world (§V step 7): one SMC round trip, after which the samples are
// read from the shared-SW window on the enclave's core.
func (env *Env) CaptureMic(n int) ([]int16, error) {
	return env.CaptureMicInto(nil, n)
}

// CaptureMicInto is CaptureMic decoding into caller-owned storage: buf is
// reused when its capacity suffices and reallocated otherwise, and the byte
// staging goes through an enclave-owned scratch buffer, so repeated captures
// (the always-on operation phase) perform no per-call heap allocation on the
// enclave side. It returns the decoded samples.
func (env *Env) CaptureMicInto(buf []int16, n int) ([]int16, error) {
	got, err := env.CaptureMicBulk(n)
	if err != nil {
		return nil, err
	}
	return env.ReadMicWindow(buf, 0, got)
}

// CaptureMicBulk performs the SMC round trip of CaptureMic without decoding:
// up to n samples are drained from the secure microphone into the shared-SW
// window and the deposited count is returned. Callers decode slices of the
// deposit with ReadMicWindow; requesting several utterances per call is how
// a batch amortizes the world switch.
func (env *Env) CaptureMicBulk(n int) (int, error) {
	e := env.enclave
	resp, err := env.SecureCall(trustzone.SvcPeriphRead, trustzone.PeriphReadReq{
		Name: e.name, Periph: hw.PeriphMicrophone, N: n,
	})
	if err != nil {
		return 0, err
	}
	return resp.(trustzone.PeriphReadResp).N, nil
}

// ReadMicWindow decodes n PCM16 samples starting at sample offset off of the
// shared-SW window into buf (reused when its capacity suffices), charging
// the copy to the enclave core. Reading utterance-sized slices keeps the
// working set small even when a bulk capture deposited far more.
func (env *Env) ReadMicWindow(buf []int16, off, n int) ([]int16, error) {
	e := env.enclave
	if n < 0 || off < 0 || uint64(off+n)*2 > e.cfg.SharedSWSize {
		return nil, fmt.Errorf("sanctuary: mic window read [%d,%d) outside shared window", off, off+n)
	}
	if need := n * 2; cap(e.micScratch) < need {
		e.micScratch = make([]byte, need)
	}
	raw := e.micScratch[:n*2]
	if err := e.mgr.soc.Read(e.core, e.swBase+hw.PhysAddr(off*2), raw); err != nil {
		return nil, fmt.Errorf("sanctuary: reading shared-SW window: %w", err)
	}
	e.core.Charge(uint64(len(raw)) * hw.CyclesPerByteCopy)
	if cap(buf) < n {
		buf = make([]int16, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = int16(uint16(raw[2*i]) | uint16(raw[2*i+1])<<8)
	}
	return buf, nil
}

// StoreBlob asks the commodity OS to persist a blob to untrusted flash
// (§V step 4: "the enclave then stores the model locally in unprotected
// storage"). The data crosses an OS IPC boundary, so both sides pay copy
// costs; the content must already be protected (encrypted) by the caller.
func (env *Env) StoreBlob(name string, data []byte) {
	e := env.enclave
	e.core.Charge(uint64(len(data)) * hw.CyclesPerByteCopy)
	e.mgr.osCore.Charge(uint64(len(data)) * hw.CyclesPerByteCopy)
	e.mgr.soc.Flash().Store(name, data)
}

// LoadBlob retrieves a blob from untrusted flash through the commodity OS.
func (env *Env) LoadBlob(name string) ([]byte, bool) {
	e := env.enclave
	data, ok := e.mgr.soc.Flash().Load(name)
	if ok {
		e.core.Charge(uint64(len(data)) * hw.CyclesPerByteCopy)
		e.mgr.osCore.Charge(uint64(len(data)) * hw.CyclesPerByteCopy)
	}
	return data, ok
}
