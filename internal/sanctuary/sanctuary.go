// Package sanctuary implements SANCTUARY-style user-space enclaves on the
// simulated TrustZone platform (§III-B of the OMG paper, after Brasser et
// al., NDSS 2019).
//
// A SANCTUARY App (SA) runs as a normal-world process on a temporarily
// dedicated CPU core whose memory is bound to that core by the TZASC,
// yielding strict two-way isolation: neither the commodity OS nor the secure
// world can touch SA memory, and the SA reaches OS services and secure-world
// services only through explicit shared buffers and SMC calls.
//
// The package implements the full life cycle from the paper:
//
//  1. Setup: memory is prepared by loading the SANCTUARY Library (SL) and
//     the SA, the TZASC is configured, and the least busy core is shut down.
//  2. Boot: the memory is attested and the core is booted with the SL.
//  3. Execution: the SA runs, optionally using commodity-OS services
//     (untrusted storage) and secure-world services (microphone).
//  4. Teardown: the core is shut down, L1 is invalidated, SA memory is
//     scrubbed and unlocked, and the core returns to the commodity OS.
//
// Between queries an enclave can Suspend (core handed back to the OS while
// its memory stays locked) and Resume on a possibly different core, the
// §V operation-phase optimization.
package sanctuary

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
	"repro/internal/trustzone"
)

// State is an enclave life-cycle state.
type State int

// Enclave life-cycle states, in forward order.
const (
	StateSetup State = iota
	StateRunning
	StateSuspended
	StateTornDown
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSetup:
		return "setup"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateTornDown:
		return "torn-down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Image is the binary loaded into an enclave: the SANCTUARY Library plus the
// SANCTUARY App. Its bytes are what the platform measures; OMG distributes
// this image in the open ("the enclave code can be open source", §V).
type Image struct {
	Name string
	Code []byte
}

// Config describes an enclave to set up.
type Config struct {
	Image Image
	// PrivateSize is the size of the two-way isolated region holding the SL,
	// SA and its heap. Default 4 MiB.
	PrivateSize uint64
	// SharedSWSize is the size of the window shared with the secure world
	// for peripheral data. Default 64 KiB.
	SharedSWSize uint64
	// AllowMic grants the SA access to the secure microphone.
	AllowMic bool
}

const (
	defaultPrivateSize  = 4 << 20
	defaultSharedSWSize = 64 << 10
	regionAlign         = 64 << 10
)

// Manager is the normal-world SANCTUARY driver: it allocates physical
// memory, loads images, and drives the secure world through enclave
// life-cycle transitions. It runs on the commodity OS core.
type Manager struct {
	soc      *hw.SoC
	mon      *trustzone.Monitor
	sos      *trustzone.SecureOS
	osCore   *hw.Core
	nextBase hw.PhysAddr
	enclaves map[string]*Enclave
}

// NewManager creates a SANCTUARY driver whose OS runs on core osCore.
// Physical memory from heapBase upward is managed by the driver's allocator.
func NewManager(soc *hw.SoC, mon *trustzone.Monitor, sos *trustzone.SecureOS, osCore int) *Manager {
	return &Manager{
		soc:      soc,
		mon:      mon,
		sos:      sos,
		osCore:   soc.Core(osCore),
		nextBase: 16 << 20, // leave the bottom 16 MiB to the "OS"
		enclaves: make(map[string]*Enclave),
	}
}

// OSCore returns the commodity-OS core.
func (m *Manager) OSCore() *hw.Core { return m.osCore }

func (m *Manager) alloc(size uint64) hw.PhysAddr {
	base := (uint64(m.nextBase) + regionAlign - 1) &^ uint64(regionAlign-1)
	m.nextBase = hw.PhysAddr(base + size)
	return hw.PhysAddr(base)
}

// leastBusyCore returns the online core with the fewest accumulated cycles,
// excluding the OS core ("the least busy CPU core is shut down", §III-B).
func (m *Manager) leastBusyCore() (*hw.Core, error) {
	var best *hw.Core
	for _, c := range m.soc.Cores() {
		if c == m.osCore || !c.Online() {
			continue
		}
		if best == nil || c.Cycles() < best.Cycles() {
			best = c
		}
	}
	if best == nil {
		return nil, errors.New("sanctuary: no spare online core")
	}
	return best, nil
}

// ExpectedMeasurement computes the measurement a verifier should expect for
// an image loaded into a private region of the given size: the hash covers
// the image followed by the zero-initialized remainder of the region.
func ExpectedMeasurement(img Image, privateSize uint64) (omgcrypto.Measurement, error) {
	if uint64(len(img.Code)) > privateSize {
		return omgcrypto.Measurement{}, fmt.Errorf("sanctuary: image (%d bytes) exceeds region (%d bytes)", len(img.Code), privateSize)
	}
	h := sha256.New()
	h.Write(img.Code)
	zeros := make([]byte, 4096)
	for pad := privateSize - uint64(len(img.Code)); pad > 0; {
		n := uint64(len(zeros))
		if n > pad {
			n = pad
		}
		h.Write(zeros[:n])
		pad -= n
	}
	var mOut omgcrypto.Measurement
	copy(mOut[:], h.Sum(nil))
	return mOut, nil
}

// Setup performs life-cycle step 1: allocates and loads the enclave memory,
// shuts down the least busy core, and asks the secure world to lock and
// measure the region and mint the enclave identity.
func (m *Manager) Setup(cfg Config) (*Enclave, error) {
	if cfg.Image.Name == "" {
		return nil, errors.New("sanctuary: image needs a name")
	}
	if _, dup := m.enclaves[cfg.Image.Name]; dup {
		return nil, fmt.Errorf("sanctuary: enclave %q already exists", cfg.Image.Name)
	}
	if cfg.PrivateSize == 0 {
		cfg.PrivateSize = defaultPrivateSize
	}
	if cfg.SharedSWSize == 0 {
		cfg.SharedSWSize = defaultSharedSWSize
	}
	if uint64(len(cfg.Image.Code)) > cfg.PrivateSize {
		return nil, fmt.Errorf("sanctuary: image (%d bytes) exceeds private region (%d bytes)", len(cfg.Image.Code), cfg.PrivateSize)
	}
	privBase := m.alloc(cfg.PrivateSize)
	swBase := m.alloc(cfg.SharedSWSize)

	// The commodity OS copies the image into the (still unlocked) region.
	if err := m.soc.Write(m.osCore, privBase, cfg.Image.Code); err != nil {
		return nil, fmt.Errorf("sanctuary: loading image: %w", err)
	}
	m.osCore.Charge(uint64(len(cfg.Image.Code)) * hw.CyclesPerByteCopy)

	core, err := m.leastBusyCore()
	if err != nil {
		return nil, err
	}
	if err := core.PowerOff(m.osCore); err != nil {
		return nil, err
	}

	resp, err := m.mon.Call(m.osCore, trustzone.SvcEnclaveCreate, trustzone.CreateReq{
		Name:     cfg.Image.Name,
		Base:     privBase,
		PrivSize: cfg.PrivateSize,
		SWBase:   swBase,
		SWSize:   cfg.SharedSWSize,
		Core:     core.ID(),
		AllowMic: cfg.AllowMic,
	})
	if err != nil {
		_ = core.PowerOn()
		return nil, fmt.Errorf("sanctuary: secure-world create: %w", err)
	}
	created := resp.(trustzone.CreateResp)

	e := &Enclave{
		mgr:         m,
		name:        cfg.Image.Name,
		cfg:         cfg,
		core:        core,
		privBase:    privBase,
		swBase:      swBase,
		measurement: created.Measurement,
		cert:        created.EnclaveCert,
		state:       StateSetup,
	}
	m.enclaves[e.name] = e
	return e, nil
}

// Attest obtains a platform-signed attestation report for the named enclave
// with the verifier's nonce. The commodity OS relays this on behalf of
// remote verifiers; the report's authenticity does not depend on the relay
// being honest.
func (m *Manager) Attest(name string, nonce []byte) (*omgcrypto.AttestationReport, []*omgcrypto.Certificate, error) {
	resp, err := m.mon.Call(m.osCore, trustzone.SvcEnclaveAttest, trustzone.AttestReq{Name: name, Nonce: nonce})
	if err != nil {
		return nil, nil, err
	}
	at := resp.(trustzone.AttestResp)
	return at.Report, at.Chain, nil
}
