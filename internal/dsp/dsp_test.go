package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference.
func naiveDFT(x []float64) (re, im []float64) {
	n := len(x)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			re[k] += x[t] * math.Cos(ang)
			im[k] += x[t] * math.Sin(ang)
		}
	}
	return re, im
}

func TestFFTFloatMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 8, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		wantRe, wantIm := naiveDFT(x)
		re := append([]float64(nil), x...)
		im := make([]float64, n)
		if err := FFTFloat(re, im); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if math.Abs(re[k]-wantRe[k]) > 1e-9*float64(n) || math.Abs(im[k]-wantIm[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got (%g,%g), want (%g,%g)", n, k, re[k], im[k], wantRe[k], wantIm[k])
			}
		}
	}
}

func TestFFTFloatKnownTransforms(t *testing.T) {
	// DC input: all energy in bin 0.
	re := []float64{1, 1, 1, 1}
	im := make([]float64, 4)
	if err := FFTFloat(re, im); err != nil {
		t.Fatal(err)
	}
	if math.Abs(re[0]-4) > 1e-12 || math.Abs(re[1]) > 1e-12 {
		t.Fatalf("DC transform: %v", re)
	}
	// Impulse: flat spectrum.
	re = []float64{1, 0, 0, 0}
	im = make([]float64, 4)
	if err := FFTFloat(re, im); err != nil {
		t.Fatal(err)
	}
	for k := range re {
		if math.Abs(re[k]-1) > 1e-12 || math.Abs(im[k]) > 1e-12 {
			t.Fatalf("impulse transform bin %d: (%g,%g)", k, re[k], im[k])
		}
	}
}

func TestFFTFloatParseval(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 128
	x := make([]float64, n)
	var timeEnergy float64
	for i := range x {
		x[i] = r.Float64()*2 - 1
		timeEnergy += x[i] * x[i]
	}
	re := append([]float64(nil), x...)
	im := make([]float64, n)
	if err := FFTFloat(re, im); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for k := 0; k < n; k++ {
		freqEnergy += re[k]*re[k] + im[k]*im[k]
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*float64(n) {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestFFTRejectsBadSizes(t *testing.T) {
	if err := FFTFloat(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if err := FFTFloat(make([]float64, 4), make([]float64, 2)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := FFTFixed(make([]int32, 0), make([]int32, 0)); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := FFTFixed(make([]int32, 6), make([]int32, 6)); err == nil {
		t.Fatal("non-power-of-two accepted (fixed)")
	}
}

// TestFFTFixedTracksFloat: the fixed-point FFT output (scaled by n) must
// approximate the float FFT within quantization error bounds.
func TestFFTFixedTracksFloat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 256, 512} {
		reF := make([]float64, n)
		imF := make([]float64, n)
		reI := make([]int32, n)
		imI := make([]int32, n)
		for i := 0; i < n; i++ {
			v := int32(r.Intn(32767) - 16384)
			reI[i] = v
			reF[i] = float64(v)
		}
		if err := FFTFloat(reF, imF); err != nil {
			t.Fatal(err)
		}
		if err := FFTFixed(reI, imI); err != nil {
			t.Fatal(err)
		}
		// Fixed output is scaled by 1/n. Tolerance: stage-scaling truncation
		// grows like log2(n); a few LSB per stage on 16k-magnitude values.
		tol := float64(n) // empirically ~log2(n) LSBs after rescale
		var worst float64
		for k := 0; k < n; k++ {
			gotRe := float64(reI[k]) * float64(n)
			gotIm := float64(imI[k]) * float64(n)
			dRe := math.Abs(gotRe - reF[k])
			dIm := math.Abs(gotIm - imF[k])
			if dRe > worst {
				worst = dRe
			}
			if dIm > worst {
				worst = dIm
			}
		}
		// Relative to the typical magnitude (~sqrt(n)*16384), the error must
		// be small.
		typical := math.Sqrt(float64(n)) * 16384
		if worst/typical > 0.02 {
			t.Fatalf("n=%d: worst error %.0f (%.2f%% of typical %0.f)", n, worst, 100*worst/typical, typical)
		}
		_ = tol
	}
}

// TestFFTFixedToneBin: a pure tone lands its energy in the right bin.
func TestFFTFixedToneBin(t *testing.T) {
	const n = 512
	const bin = 37
	re := make([]int32, n)
	im := make([]int32, n)
	for i := 0; i < n; i++ {
		re[i] = int32(16000 * math.Cos(2*math.Pi*float64(bin)*float64(i)/float64(n)))
	}
	if err := FFTFixed(re, im); err != nil {
		t.Fatal(err)
	}
	power := func(k int) int64 { return int64(re[k])*int64(re[k]) + int64(im[k])*int64(im[k]) }
	peak := power(bin)
	for k := 0; k < n/2; k++ {
		if k == bin {
			continue
		}
		if power(k) > peak/4 {
			t.Fatalf("bin %d power %d rivals tone bin %d power %d", k, power(k), bin, peak)
		}
	}
}

func TestFFTFixedLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 64
		a := make([]int32, n)
		b := make([]int32, n)
		sum := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i] = int32(r.Intn(8192) - 4096)
			b[i] = int32(r.Intn(8192) - 4096)
			sum[i] = a[i] + b[i]
		}
		ia, ib, is := make([]int32, n), make([]int32, n), make([]int32, n)
		if FFTFixed(a, ia) != nil || FFTFixed(b, ib) != nil || FFTFixed(sum, is) != nil {
			return false
		}
		// FFT(a)+FFT(b) ≈ FFT(a+b) within truncation noise.
		for k := 0; k < n; k++ {
			if d := int64(a[k] + b[k] - sum[k]); d > 8 || d < -8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// fixedWorstError runs one fixed-point transform of x and returns its worst
// absolute deviation (rescaled by n) from the float reference over bins
// 0..n/2-1 — the bins the frontend consumes.
func fixedWorstError(t *testing.T, x []int32, rfft bool) float64 {
	t.Helper()
	n := len(x)
	reF := make([]float64, n)
	imF := make([]float64, n)
	for i, v := range x {
		reF[i] = float64(v)
	}
	if err := FFTFloat(reF, imF); err != nil {
		t.Fatal(err)
	}
	var re, im []int32
	if rfft {
		re = make([]int32, n/2)
		im = make([]int32, n/2)
		if err := RFFTFixed(x, re, im); err != nil {
			t.Fatal(err)
		}
	} else {
		re = append([]int32(nil), x...)
		im = make([]int32, n)
		if err := FFTFixed(re, im); err != nil {
			t.Fatal(err)
		}
	}
	var worst float64
	for k := 0; k < n/2; k++ {
		if d := math.Abs(float64(re[k])*float64(n) - reF[k]); d > worst {
			worst = d
		}
		if d := math.Abs(float64(im[k])*float64(n) - imF[k]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestRFFTFixedTracksFloat: the real-input FFT must approximate the float
// reference at least as tightly as the full-size complex FFTFixed it
// replaces — the packed transform drops one truncating butterfly stage and
// the split post-pass rounds, so randomized inputs should never show a
// larger worst-case error. A small slack absorbs ties on the last LSB.
func TestRFFTFixedTracksFloat(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{8, 64, 256, 512} {
		for trial := 0; trial < 25; trial++ {
			x := make([]int32, n)
			for i := range x {
				x[i] = int32(r.Intn(32768) - 16384)
			}
			rErr := fixedWorstError(t, x, true)
			cErr := fixedWorstError(t, x, false)
			if rErr > cErr+float64(n) {
				t.Fatalf("n=%d trial %d: rfft worst error %.0f exceeds complex-FFT bound %.0f", n, trial, rErr, cErr)
			}
			typical := math.Sqrt(float64(n)) * 16384
			if rErr/typical > 0.02 {
				t.Fatalf("n=%d trial %d: rfft worst error %.0f (%.2f%% of typical)", n, trial, rErr, 100*rErr/typical)
			}
		}
	}
}

// TestRFFTFixedToneBin: the real FFT localizes a pure tone exactly like the
// complex path (the frontend's feature-column mapping depends on it).
func TestRFFTFixedToneBin(t *testing.T) {
	const n = 512
	const bin = 37
	x := make([]int32, n)
	for i := 0; i < n; i++ {
		x[i] = int32(16000 * math.Cos(2*math.Pi*float64(bin)*float64(i)/float64(n)))
	}
	re := make([]int32, n/2)
	im := make([]int32, n/2)
	if err := RFFTFixed(x, re, im); err != nil {
		t.Fatal(err)
	}
	power := func(k int) int64 { return int64(re[k])*int64(re[k]) + int64(im[k])*int64(im[k]) }
	peak := power(bin)
	for k := 0; k < n/2; k++ {
		if k == bin {
			continue
		}
		if power(k) > peak/4 {
			t.Fatalf("bin %d power %d rivals tone bin %d power %d", k, power(k), bin, peak)
		}
	}
}

func TestRFFTFixedRejectsBadSizes(t *testing.T) {
	if err := RFFTFixed(make([]int32, 6), make([]int32, 3), make([]int32, 3)); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if err := RFFTFixed(nil, nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := RFFTFixed(make([]int32, 8), make([]int32, 3), make([]int32, 4)); err == nil {
		t.Fatal("undersized output accepted")
	}
}

func TestDefaultFrontendGeometryMatchesPaper(t *testing.T) {
	cfg := DefaultFrontend()
	if cfg.NumFeatures() != 43 {
		t.Fatalf("features per frame = %d, want 43", cfg.NumFeatures())
	}
	if cfg.FingerprintLen() != 49*43 {
		t.Fatalf("fingerprint length = %d, want %d", cfg.FingerprintLen(), 49*43)
	}
	if got := cfg.UtteranceSamples(); got != 15840 {
		t.Fatalf("utterance samples = %d (must fit in 1 s of 16 kHz audio)", got)
	}
}

func TestFrontendExtract(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	// Silence produces near-zero features.
	silence := make([]int16, 16000)
	fp := fe.Extract(silence)
	if len(fp) != 49*43 {
		t.Fatalf("fingerprint length %d", len(fp))
	}
	for i, v := range fp {
		if v != 0 {
			t.Fatalf("silence feature %d = %d", i, v)
		}
	}
	// A loud 1 kHz tone produces energy in the right feature column:
	// 1000 Hz / (16000/512) = bin 32 → feature 32/6 = 5.
	tone := make([]int16, 16000)
	for i := range tone {
		tone[i] = int16(12000 * math.Sin(2*math.Pi*1000*float64(i)/16000))
	}
	fp = fe.Extract(tone)
	features := 43
	var colEnergy [43]int
	for f := 0; f < 49; f++ {
		for c := 0; c < features; c++ {
			colEnergy[c] += int(fp[f*features+c])
		}
	}
	best := 0
	for c := range colEnergy {
		if colEnergy[c] > colEnergy[best] {
			best = c
		}
	}
	if best != 5 {
		t.Fatalf("tone energy in feature column %d, want 5", best)
	}
	// Short input is zero-padded, not a crash; output deterministic.
	short := fe.Extract(tone[:1000])
	short2 := fe.Extract(tone[:1000])
	for i := range short {
		if short[i] != short2[i] {
			t.Fatal("non-deterministic extraction")
		}
	}
}

func TestFrontendConfigValidation(t *testing.T) {
	bad := DefaultFrontend()
	bad.FFTSize = 500
	if _, err := NewFrontend(bad); err == nil {
		t.Fatal("non-power-of-two FFT accepted")
	}
	bad = DefaultFrontend()
	bad.WindowSamples = 1024
	if _, err := NewFrontend(bad); err == nil {
		t.Fatal("window larger than FFT accepted")
	}
	bad = DefaultFrontend()
	bad.NumBins = 512
	if _, err := NewFrontend(bad); err == nil {
		t.Fatal("too many bins accepted")
	}
	bad = DefaultFrontend()
	bad.AvgWidth = 0
	if _, err := NewFrontend(bad); err == nil {
		t.Fatal("zero averaging width accepted")
	}
}

func TestLogCompress(t *testing.T) {
	if logCompress(0) != 0 {
		t.Fatal("logCompress(0) != 0")
	}
	if logCompress(1<<62) != 255 {
		t.Fatal("huge power does not saturate")
	}
	prev := uint8(0)
	for p := uint64(1); p < 1<<40; p *= 4 {
		v := logCompress(p)
		if v < prev {
			t.Fatal("logCompress not monotone")
		}
		prev = v
	}
}

func TestFrontendCycles(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	c := fe.Cycles()
	// 49 frames × (1024 packed butterflies × 14 + 256-bin split post-pass +
	// bins + window) ≈ 0.9M cycles: sub-millisecond at 2.4 GHz, consistent
	// with the real-time claim, and roughly half the pre-rfft 1.7M model.
	if c < 500_000 || c > 2_500_000 {
		t.Fatalf("frontend cycles = %d, outside plausible band", c)
	}
	if ButterflyCount(512) != 256*9 {
		t.Fatalf("butterfly count = %d", ButterflyCount(512))
	}
	if ButterflyCount(1) != 0 {
		t.Fatal("butterfly count of size-1 FFT")
	}
}

func TestRFFTFixedRejectsSizeOne(t *testing.T) {
	if err := RFFTFixed(make([]int32, 1), make([]int32, 1), make([]int32, 1)); err == nil {
		t.Fatal("size-1 real FFT accepted")
	}
}
