package dsp

// Streamer is the incremental face of a Frontend for always-on audio: where
// ExtractInto recomputes all NumFrames FFT frames of a one-second window,
// a Streamer consumes the stream hop by hop, runs exactly one FFT per newly
// completed hop, and assembles the current fingerprint by rotating a ring of
// cached per-frame feature rows. In steady state one 20 ms hop therefore
// costs 1/NumFrames of a full extraction (~49× less frontend work with the
// paper geometry) and performs no heap allocation.
//
// The per-frame kernel is Frontend.frameInto — the same code ExtractInto
// runs — so a streamed fingerprint is bit-exact against full recomputation
// over the same samples (TestStreamerMatchesFullRecompute).
//
// A Streamer is single-goroutine state, like the Frontend it wraps; give
// each concurrent audio source its own.
type Streamer struct {
	fe *Frontend
	// win assembles the current analysis window: WindowSamples of PCM16.
	// After a frame is computed the window-stride overlap slides to the
	// front; with StrideSamples > WindowSamples (gapped geometries) skip
	// counts samples to discard before the next window starts.
	win  []int16
	fill int
	skip int
	// ring holds the feature rows of the last NumFrames completed frames,
	// frame-major; next is the slot the next frame lands in, which is also
	// the oldest row of the current fingerprint.
	ring   []uint8
	next   int
	frames int
}

// NewStreamer builds a streamer over fe. The streamer shares fe's FFT
// scratch, so fe must not be used concurrently with it.
func NewStreamer(fe *Frontend) *Streamer {
	cfg := fe.cfg
	return &Streamer{
		fe:   fe,
		win:  make([]int16, cfg.WindowSamples),
		ring: make([]uint8, cfg.FingerprintLen()),
	}
}

// Frontend returns the wrapped frontend.
func (s *Streamer) Frontend() *Frontend { return s.fe }

// Frames returns the total number of completed frames since construction or
// the last Reset.
func (s *Streamer) Frames() int { return s.frames }

// Ready reports whether a full fingerprint window (NumFrames frames) has
// been accumulated.
func (s *Streamer) Ready() bool { return s.frames >= s.fe.cfg.NumFrames }

// NeedSamples returns how many more samples must be pushed before the next
// frame completes.
func (s *Streamer) NeedSamples() int {
	return s.skip + s.fe.cfg.WindowSamples - s.fill
}

// Reset discards all buffered samples and cached frames.
func (s *Streamer) Reset() {
	s.fill, s.skip, s.next, s.frames = 0, 0, 0, 0
	for i := range s.ring {
		s.ring[i] = 0
	}
}

// Push consumes a chunk of the sample stream, computing one FFT frame per
// completed analysis window, and returns the number of frames completed by
// this chunk. Chunks may be of any size; Push is allocation-free.
func (s *Streamer) Push(samples []int16) int {
	cfg := s.fe.cfg
	features := cfg.NumFeatures()
	done := 0
	for len(samples) > 0 {
		if s.skip > 0 {
			d := min(s.skip, len(samples))
			s.skip -= d
			samples = samples[d:]
			continue
		}
		n := copy(s.win[s.fill:], samples)
		s.fill += n
		samples = samples[n:]
		if s.fill < cfg.WindowSamples {
			break
		}
		s.fe.frameInto(s.ring[s.next*features:(s.next+1)*features], s.win, 0)
		s.next++
		if s.next == cfg.NumFrames {
			s.next = 0
		}
		s.frames++
		done++
		if keep := cfg.WindowSamples - cfg.StrideSamples; keep > 0 {
			copy(s.win[:keep], s.win[cfg.StrideSamples:])
			s.fill = keep
		} else {
			s.fill = 0
			s.skip = -keep
		}
	}
	return done
}

// Fingerprint assembles the fingerprint of the most recent NumFrames frames
// into dst (reallocated only when its capacity is insufficient, as in
// ExtractInto) and returns it. It returns nil until Ready: the streamer
// never fabricates frames it has not observed. The result is identical to
// ExtractInto over the UtteranceSamples() window ending at the last
// completed frame.
func (s *Streamer) Fingerprint(dst []uint8) []uint8 {
	cfg := s.fe.cfg
	if s.frames < cfg.NumFrames {
		return nil
	}
	if n := cfg.FingerprintLen(); cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]uint8, n)
	}
	// The slot about to be overwritten (next) holds the oldest live frame.
	head := s.next * cfg.NumFeatures()
	n := copy(dst, s.ring[head:])
	copy(dst[n:], s.ring[:head])
	return dst
}

// HopCycles returns the simulated-core cost of one steady-state hop: the
// window multiply, a single FFT, and the bin post-processing — the
// per-frame share of Frontend.Cycles.
func (f *Frontend) HopCycles() uint64 {
	return f.Cycles() / uint64(f.cfg.NumFrames)
}
