package dsp

import (
	"bytes"
	"math/rand"
	"testing"
)

// streamerConfigs are the geometries the randomized equivalence test
// exercises: the paper frontend, a small overlapping window, and a gapped
// geometry (stride > window) that exercises the inter-window skip path.
func streamerConfigs() []FrontendConfig {
	return []FrontendConfig{
		DefaultFrontend(),
		{SampleRate: 4000, WindowSamples: 48, StrideSamples: 32, FFTSize: 64, NumBins: 32, AvgWidth: 5, NumFrames: 5},
		{SampleRate: 4000, WindowSamples: 32, StrideSamples: 48, FFTSize: 32, NumBins: 16, AvgWidth: 3, NumFrames: 4},
	}
}

// TestStreamerMatchesFullRecompute is the PR-1 equivalence rule applied to
// the streamer: after every completed frame, the rotated fingerprint must be
// bit-exact against a full ExtractInto recomputation of the sample window
// ending at that frame, for arbitrary chunkings of the input stream.
func TestStreamerMatchesFullRecompute(t *testing.T) {
	for ci, cfg := range streamerConfigs() {
		fe, err := NewFrontend(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := NewStreamer(fe)
		r := rand.New(rand.NewSource(int64(100 + ci)))
		utt := cfg.UtteranceSamples()
		var history []int16
		dst := make([]uint8, cfg.FingerprintLen())
		full := make([]uint8, cfg.FingerprintLen())
		checks := 0
		// Enough stream to pass warm-up and then slide well past one ring
		// revolution.
		for len(history) < 3*utt {
			chunk := randUtterance(r, 1+r.Intn(2*cfg.StrideSamples))
			history = append(history, chunk...)
			st.Push(chunk)
			if !st.Ready() {
				if st.Fingerprint(dst) != nil {
					t.Fatalf("config %d: fingerprint before ready", ci)
				}
				continue
			}
			start := (st.Frames() - cfg.NumFrames) * cfg.StrideSamples
			want := fe.ExtractInto(full, history[start:start+utt])
			got := st.Fingerprint(dst)
			if !bytes.Equal(got, want) {
				t.Fatalf("config %d: fingerprint diverges from full recomputation at frame %d", ci, st.Frames())
			}
			checks++
		}
		if checks == 0 {
			t.Fatalf("config %d: equivalence never checked", ci)
		}
	}
}

// TestStreamerFrameAccounting: frame completion must track the closed-form
// count floor((S-window)/stride)+1 for S pushed samples.
func TestStreamerFrameAccounting(t *testing.T) {
	cfg := DefaultFrontend()
	fe, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamer(fe)
	r := rand.New(rand.NewSource(7))
	pushed := 0
	for pushed < 4*cfg.UtteranceSamples() {
		chunk := randUtterance(r, 1+r.Intn(997))
		got := st.Push(chunk)
		pushed += len(chunk)
		want := 0
		if pushed >= cfg.WindowSamples {
			want = (pushed-cfg.WindowSamples)/cfg.StrideSamples + 1
		}
		if st.Frames() != want {
			t.Fatalf("after %d samples: %d frames, want %d", pushed, st.Frames(), want)
		}
		if got < 0 || st.NeedSamples() <= 0 || st.NeedSamples() > cfg.WindowSamples+cfg.StrideSamples {
			t.Fatalf("after %d samples: implausible Push return %d / NeedSamples %d", pushed, got, st.NeedSamples())
		}
	}
}

// TestStreamerNeedSamples: pushing exactly NeedSamples completes exactly one
// frame, the invariant Server.SubmitStream relies on for per-hop submission.
func TestStreamerNeedSamples(t *testing.T) {
	for ci, cfg := range streamerConfigs() {
		fe, err := NewFrontend(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := NewStreamer(fe)
		r := rand.New(rand.NewSource(int64(ci)))
		for i := 0; i < 2*cfg.NumFrames+3; i++ {
			n := st.NeedSamples()
			if done := st.Push(randUtterance(r, n)); done != 1 {
				t.Fatalf("config %d step %d: Push(NeedSamples=%d) completed %d frames, want 1", ci, i, n, done)
			}
		}
	}
}

// TestStreamerReset: a reset streamer replays the stream from scratch.
func TestStreamerReset(t *testing.T) {
	cfg := DefaultFrontend()
	fe, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamer(fe)
	r := rand.New(rand.NewSource(11))
	stream := randUtterance(r, cfg.UtteranceSamples()+3*cfg.StrideSamples)
	st.Push(stream)
	first := st.Fingerprint(nil)
	if first == nil {
		t.Fatal("not ready after full utterance")
	}
	st.Reset()
	if st.Frames() != 0 || st.Ready() {
		t.Fatal("reset did not clear frame state")
	}
	if st.Fingerprint(nil) != nil {
		t.Fatal("fingerprint available right after reset")
	}
	st.Push(stream)
	if !bytes.Equal(st.Fingerprint(nil), first) {
		t.Fatal("replay after reset diverged")
	}
}

// TestStreamerSteadyStateZeroAlloc is the ISSUE acceptance criterion: in
// steady state, one hop of Push plus the Fingerprint assembly performs no
// heap allocation.
func TestStreamerSteadyStateZeroAlloc(t *testing.T) {
	cfg := DefaultFrontend()
	fe, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStreamer(fe)
	r := rand.New(rand.NewSource(13))
	st.Push(randUtterance(r, cfg.UtteranceSamples()))
	hop := randUtterance(r, cfg.StrideSamples)
	dst := make([]uint8, cfg.FingerprintLen())
	allocs := testing.AllocsPerRun(10, func() {
		st.Push(hop)
		st.Fingerprint(dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state hop allocates %v times per run, want 0", allocs)
	}
}

// TestHopCycles: the steady-state hop must be modeled at the per-frame share
// of a full extraction.
func TestHopCycles(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fe.HopCycles(), fe.Cycles()/uint64(fe.Config().NumFrames); got != want {
		t.Fatalf("HopCycles = %d, want %d", got, want)
	}
}
