// Package dsp implements the audio feature frontend of the paper's keyword
// spotter (§VI): "Features are computed using a 256 bin fixed point FFT
// across 30 ms windows (20 ms shift), averaging 6 neighboring bins,
// resulting in 43 values per frame. The 49 frames for each recording are
// concatenated, forming a fixed 49 × 43 compressed spectrogram
// ('fingerprint') per utterance."
//
// The package provides a fixed-point radix-2 FFT (the kind that runs on
// microcontrollers without an FPU), a real-input variant that packs the
// samples into a half-size complex FFT plus a split post-pass (the hot-path
// kernel — the audio frames are real, so half the butterflies of a full
// complex transform are wasted on a zero imaginary part), a float64
// reference FFT used to bound their error in tests, and the fingerprint
// extractor.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTFloat computes the in-place radix-2 decimation-in-time FFT of the
// complex sequence (re, im). len(re) must be a power of two. It is the
// reference implementation for testing the fixed-point path.
func FFTFloat(re, im []float64) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("dsp: re/im length mismatch %d/%d", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", n)
	}
	bitReverse(re, im)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := step * float64(k)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i, j := start+k, start+k+half
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
			}
		}
	}
	return nil
}

// bitReverse performs the in-place bit-reversal reorder shared by every FFT
// in this package; the element type only has to be swappable.
func bitReverse[T int32 | float64](re, im []T) {
	n := len(re)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// bitReversePerm is bitReverse driven by a precomputed permutation table, so
// the hot loop performs no bits.Reverse64 work. The swap targets are
// data-dependent (the permutation itself), so its bounds checks are
// irreducible; the function is kept out of line so they stay attributed here
// and the fftFixed stage sweep remains clean under make bce-check.
//
//go:noinline
func bitReversePerm(re, im []int32, perm []int32) {
	for i, j := range perm {
		if int(j) > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// twiddle tables for the fixed-point FFTs, Q15, cached per size, along with
// the bit-reversal permutation of that size. The cache is a sync.Map so
// concurrent FFTs (one per pipeline worker) hit a lock-free read path;
// frontends additionally pin their tables at construction and bypass the
// cache entirely.
var twCache sync.Map // int → *twiddles

type twiddles struct {
	cos []int32 // Q15
	sin []int32 // Q15
	// perm[i] is the bit-reversed index of i, precomputed so the per-call
	// reorder is a table walk instead of bits.Reverse64 arithmetic.
	perm []int32
	// stageCos/stageSin[s] are the contiguous per-stage twiddle tables of
	// butterfly stage size 8<<s (the generic stages of fftFixed): entry k is
	// cos/sin[k·(n/size)]. Walking them at stride 1 replaces the mul-indexed
	// strided reads of the shared table — sequential loads the prove pass
	// can bound, and better locality for the small early stages.
	stageCos [][]int32
	stageSin [][]int32
}

func computeTwiddles(n int) *twiddles {
	tw := &twiddles{cos: make([]int32, n/2), sin: make([]int32, n/2), perm: make([]int32, n)}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw.cos[k] = int32(math.Round(math.Cos(ang) * 32767))
		tw.sin[k] = int32(math.Round(math.Sin(ang) * 32767))
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range tw.perm {
		tw.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	for size := 8; size <= n; size <<= 1 {
		half, stride := size/2, n/size
		cos, sin := make([]int32, half), make([]int32, half)
		for k := 0; k < half; k++ {
			cos[k], sin[k] = tw.cos[k*stride], tw.sin[k*stride]
		}
		tw.stageCos = append(tw.stageCos, cos)
		tw.stageSin = append(tw.stageSin, sin)
	}
	return tw
}

func twiddlesFor(n int) *twiddles {
	if v, ok := twCache.Load(n); ok {
		return v.(*twiddles)
	}
	v, _ := twCache.LoadOrStore(n, computeTwiddles(n))
	return v.(*twiddles)
}

// FFTFixed computes an in-place fixed-point radix-2 FFT. Inputs are Q15-ish
// int32 values (|x| ≤ 32767 recommended); every butterfly stage scales by
// 1/2 so intermediate values never overflow, for a total output scaling of
// 1/n relative to the mathematical DFT. This mirrors the scaling scheme of
// the CMSIS/KissFFT fixed-point transforms that TFLM's micro_features use.
func FFTFixed(re, im []int32) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("dsp: re/im length mismatch %d/%d", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", n)
	}
	fftFixed(re, im, twiddlesFor(n))
	return nil
}

// fftFixed is the FFTFixed core with a caller-provided twiddle table; the
// frontend precomputes its table once so the hot loop never touches the
// shared cache.
func fftFixed(re, im []int32, tw *twiddles) {
	n := len(re)
	if len(im) < n {
		panic("dsp: fftFixed im shorter than re")
	}
	bitReversePerm(re, im, tw.perm)
	// The first two stages use only the twiddles 1 and -i, which are exact
	// in any fixed-point format — specializing them skips the Q15 rounding
	// multiplies (and their 1-LSB error) on a quarter of all butterflies.
	// Both walk the arrays by reslicing fixed-size blocks so every access is
	// provably in range (make bce-check).
	for rr, ii := re, im; len(rr) >= 2 && len(ii) >= 2; rr, ii = rr[2:], ii[2:] {
		ar, ai := rr[0]>>1, ii[0]>>1
		br, bi := rr[1]>>1, ii[1]>>1
		rr[0], ii[0] = ar+br, ai+bi
		rr[1], ii[1] = ar-br, ai-bi
	}
	for rr, ii := re, im; len(rr) >= 4 && len(ii) >= 4; rr, ii = rr[4:], ii[4:] {
		ar, ai := rr[0]>>1, ii[0]>>1
		br, bi := rr[2]>>1, ii[2]>>1
		rr[0], ii[0] = ar+br, ai+bi
		rr[2], ii[2] = ar-br, ai-bi
		// k = 1: W = -i rotates (br, bi) to (bi, -br).
		ar, ai = rr[1]>>1, ii[1]>>1
		br, bi = rr[3]>>1, ii[3]>>1
		rr[1], ii[1] = ar+bi, ai-br
		rr[3], ii[3] = ar-bi, ai+br
	}
	// Generic stages, driven by the per-stage contiguous twiddle tables:
	// stage s has butterfly size 2·len(stageCos[s]), so every block bound
	// derives from slice lengths (half = len(cw), size = half+half) — terms
	// the prove pass can order without overflow caveats. Each block is split
	// into lower/upper half-slices walked by one index k, and the blocks
	// themselves advance by reslicing; the whole sweep carries no bounds
	// checks (make bce-check).
	sc, ss := tw.stageCos, tw.stageSin
	for s := 0; s < len(sc) && s < len(ss); s++ {
		cw, sw := sc[s], ss[s]
		half := len(cw)
		if half == 0 || half > n>>1 || len(sw) != half {
			break
		}
		rr, ii := re, im
		for len(rr) >= half && len(ii) >= half {
			al, bl := rr[:half], ii[:half]
			rr, ii = rr[half:], ii[half:]
			if len(rr) < half || len(ii) < half {
				break
			}
			ah, bh := rr[:half], ii[:half]
			rr, ii = rr[half:], ii[half:]
			for k := 0; k < len(al) && k < len(ah) && k < len(bl) && k < len(bh) && k < len(cw) && k < len(sw); k++ {
				wr := cw[k]
				wi := sw[k]
				// Complex multiply in Q15 with rounding.
				tr := int32((int64(wr)*int64(ah[k]) - int64(wi)*int64(bh[k]) + 16384) >> 15)
				ti := int32((int64(wr)*int64(bh[k]) + int64(wi)*int64(ah[k]) + 16384) >> 15)
				// Stage scaling by 1/2 keeps magnitudes bounded.
				ai := al[k] >> 1
				bi := bl[k] >> 1
				tr >>= 1
				ti >>= 1
				ah[k] = ai - tr
				bh[k] = bi - ti
				al[k] = ai + tr
				bl[k] = bi + ti
			}
		}
	}
}

// RFFTFixed computes spectrum bins 0..n/2-1 of the real sequence x
// (len n, a power of two ≥ 2) with the same 1/n output scaling as an
// n-point FFTFixed, writing into re/im (each at least n/2 long, resliced
// to exactly n/2). It packs x into an n/2-point complex FFT (even samples
// real, odd samples imaginary) and unzips the half-spectra in a split
// post-pass — about half the butterflies and twiddle loads of the full
// complex transform. Bin n/2 (the Nyquist bin) is not emitted; the
// frontend's NumBins ≤ n/2 bins never read it.
func RFFTFixed(x []int32, re, im []int32) error {
	n := len(x)
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: real-FFT size %d not a power of two ≥ 2", n)
	}
	m := n / 2
	if len(re) < m || len(im) < m {
		return fmt.Errorf("dsp: rfft output length %d/%d below %d", len(re), len(im), m)
	}
	re, im = re[:m], im[:m]
	for i := 0; i < m; i++ {
		re[i] = x[2*i]
		im[i] = x[2*i+1]
	}
	rfftFixed(re, im, twiddlesFor(m), twiddlesFor(n))
	return nil
}

// rfftFixed is the real-FFT core over already packed data: re/im hold the
// m = n/2 even/odd samples, half is the m-point twiddle table, full the
// n-point table whose first m entries supply the post-pass rotations. On
// return re/im hold spectrum bins 0..m-1 of the length-n real transform.
//
// Scaling scheme: the packed m-point fftFixed scales by 1/m; the split
// post-pass X[k] = (E[k] + W_n^k·O[k]) halves once more with rounding, for
// a total 1/n — bit-compatible in scale with the full-size FFTFixed path
// it replaces, so fingerprint features stay within the fixed-point
// tolerance documented in the frontend.
func rfftFixed(re, im []int32, half, full *twiddles) {
	m := len(re)
	if m == 0 || len(im) != m || len(full.cos) < m || len(full.sin) < m {
		panic("dsp: rfftFixed operand lengths")
	}
	im = im[:m]
	cos, sin := full.cos[:m], full.sin[:m]
	fftFixed(re, im, half)
	// Unzip pairs (k, m-k): both X[k] and X[m-k] are formed from Z[k] and
	// Z[m-k], so each pair is loaded once and written back in place.
	//   E[k] = (Z[k] + conj(Z[m-k]))/2   (spectrum of even samples)
	//   O[k] = (Z[k] - conj(Z[m-k]))/2i  (spectrum of odd samples)
	//   X[k] = E[k] + W_n^k·O[k],  W_n = e^{-2πi/n}
	// The /2 of E and O and the rotation are fused into one rounded >>17
	// (15 bits of Q15 plus the factor 4 from using doubled E2/O2 terms,
	// halved once more for the 1/n output scale). The dual k/j induction
	// with the explicit j < m condition (1 ≤ k < j < m) is what lets the
	// prove pass cover every access (make bce-check).
	const rnd = 1 << 16
	for k, j := 1, m-1; k < j && j < m; k, j = k+1, j-1 {
		zrk, zik := int64(re[k]), int64(im[k])
		zrj, zij := int64(re[j]), int64(im[j])
		er2 := zrk + zrj                       // 2·Re E[k]
		ei2 := zik - zij                       // 2·Im E[k]
		or2 := zik + zij                       // 2·Re O[k]
		oi2 := zrj - zrk                       // 2·Im O[k]
		cw, sw := int64(cos[k]), int64(sin[k]) // W_n^k in Q15
		p1 := cw*or2 - sw*oi2
		p2 := cw*oi2 + sw*or2
		re[k] = int32((er2<<15 + p1 + rnd) >> 17)
		im[k] = int32((ei2<<15 + p2 + rnd) >> 17)
		re[j] = int32((er2<<15 - p1 + rnd) >> 17)
		im[j] = int32((-ei2<<15 + p2 + rnd) >> 17)
	}
	// Self-paired bins. k = 0: X[0] = Re Z[0] + Im Z[0] (E and O are both
	// real there), halved for the output scale. k = m/2: W_n^{m/2} = -i, so
	// X[m/2] = Re Z[m/2] - i·Im Z[m/2], halved — both exact, no Q15 twiddle.
	zr0, zi0 := int64(re[0]), int64(im[0])
	re[0] = int32((zr0 + zi0 + 1) >> 1)
	im[0] = 0
	if h := m / 2; h > 0 && h < m {
		re[h] = int32((int64(re[h]) + 1) >> 1)
		im[h] = int32((-int64(im[h]) + 1) >> 1)
	}
}

// rfftPowerFixed is rfftFixed fused with the spectral power computation:
// instead of writing spectrum bins back into re/im, it writes pow[k] =
// Re(X[k])² + Im(X[k])² for every bin, squaring each unzipped value while it
// is still in registers. The arithmetic producing each Re/Im is kept in
// lockstep with rfftFixed term for term (TestRFFTPowerMatchesRFFT pins
// this), so the powers are bit-identical to squaring rfftFixed's output —
// the fusion only skips the spectrum store and re-load. re/im are left
// holding the packed half-size FFT (scratch, not a spectrum).
func rfftPowerFixed(re, im []int32, half, full *twiddles, pow []uint64) {
	m := len(re)
	if m == 0 || len(im) != m || len(pow) < m || len(full.cos) < m || len(full.sin) < m {
		panic("dsp: rfftPowerFixed operand lengths")
	}
	im = im[:m]
	pow = pow[:m]
	cos, sin := full.cos[:m], full.sin[:m]
	fftFixed(re, im, half)
	const rnd = 1 << 16
	for k, j := 1, m-1; k < j && j < m; k, j = k+1, j-1 {
		zrk, zik := int64(re[k]), int64(im[k])
		zrj, zij := int64(re[j]), int64(im[j])
		er2 := zrk + zrj
		ei2 := zik - zij
		or2 := zik + zij
		oi2 := zrj - zrk
		cw, sw := int64(cos[k]), int64(sin[k])
		p1 := cw*or2 - sw*oi2
		p2 := cw*oi2 + sw*or2
		xr := int64(int32((er2<<15 + p1 + rnd) >> 17))
		xi := int64(int32((ei2<<15 + p2 + rnd) >> 17))
		yr := int64(int32((er2<<15 - p1 + rnd) >> 17))
		yi := int64(int32((-ei2<<15 + p2 + rnd) >> 17))
		pow[k] = uint64(xr*xr + xi*xi)
		pow[j] = uint64(yr*yr + yi*yi)
	}
	zr0, zi0 := int64(re[0]), int64(im[0])
	x0 := int64(int32((zr0 + zi0 + 1) >> 1))
	pow[0] = uint64(x0 * x0)
	if h := m / 2; h > 0 && h < m {
		xr := int64(int32((int64(re[h]) + 1) >> 1))
		xi := int64(int32((-int64(im[h]) + 1) >> 1))
		pow[h] = uint64(xr*xr + xi*xi)
	}
}

// ButterflyCount returns the number of butterflies an n-point FFT executes,
// for cycle-cost accounting.
func ButterflyCount(n int) uint64 {
	if n <= 1 {
		return 0
	}
	return uint64(n/2) * uint64(bits.TrailingZeros(uint(n)))
}
