// Package dsp implements the audio feature frontend of the paper's keyword
// spotter (§VI): "Features are computed using a 256 bin fixed point FFT
// across 30 ms windows (20 ms shift), averaging 6 neighboring bins,
// resulting in 43 values per frame. The 49 frames for each recording are
// concatenated, forming a fixed 49 × 43 compressed spectrogram
// ('fingerprint') per utterance."
//
// The package provides a fixed-point radix-2 FFT (the kind that runs on
// microcontrollers without an FPU), a float64 reference FFT used to bound
// its error in tests, and the fingerprint extractor.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTFloat computes the in-place radix-2 decimation-in-time FFT of the
// complex sequence (re, im). len(re) must be a power of two. It is the
// reference implementation for testing the fixed-point path.
func FFTFloat(re, im []float64) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("dsp: re/im length mismatch %d/%d", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", n)
	}
	bitReverseF(re, im)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := step * float64(k)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i, j := start+k, start+k+half
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
			}
		}
	}
	return nil
}

func bitReverseF(re, im []float64) {
	n := len(re)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// twiddle tables for the fixed-point FFT, Q15, cached per size. The cache
// is a sync.Map so concurrent FFTs (one per pipeline worker) hit a
// lock-free read path; frontends additionally pin their table at
// construction and bypass the cache entirely.
var twCache sync.Map // int → *twiddles

type twiddles struct {
	cos []int32 // Q15
	sin []int32 // Q15
}

func computeTwiddles(n int) *twiddles {
	tw := &twiddles{cos: make([]int32, n/2), sin: make([]int32, n/2)}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw.cos[k] = int32(math.Round(math.Cos(ang) * 32767))
		tw.sin[k] = int32(math.Round(math.Sin(ang) * 32767))
	}
	return tw
}

func twiddlesFor(n int) *twiddles {
	if v, ok := twCache.Load(n); ok {
		return v.(*twiddles)
	}
	v, _ := twCache.LoadOrStore(n, computeTwiddles(n))
	return v.(*twiddles)
}

// FFTFixed computes an in-place fixed-point radix-2 FFT. Inputs are Q15-ish
// int32 values (|x| ≤ 32767 recommended); every butterfly stage scales by
// 1/2 so intermediate values never overflow, for a total output scaling of
// 1/n relative to the mathematical DFT. This mirrors the scaling scheme of
// the CMSIS/KissFFT fixed-point transforms that TFLM's micro_features use.
func FFTFixed(re, im []int32) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("dsp: re/im length mismatch %d/%d", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", n)
	}
	fftFixed(re, im, twiddlesFor(n))
	return nil
}

// fftFixed is the FFTFixed core with a caller-provided twiddle table; the
// frontend precomputes its table once so the hot loop never touches the
// shared cache.
func fftFixed(re, im []int32, tw *twiddles) {
	n := len(re)
	bitReverseI(re, im)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wr := tw.cos[k*stride]
				wi := tw.sin[k*stride]
				i, j := start+k, start+k+half
				// Complex multiply in Q15 with rounding.
				tr := int32((int64(wr)*int64(re[j]) - int64(wi)*int64(im[j]) + 16384) >> 15)
				ti := int32((int64(wr)*int64(im[j]) + int64(wi)*int64(re[j]) + 16384) >> 15)
				// Stage scaling by 1/2 keeps magnitudes bounded.
				ai := re[i] >> 1
				bi := im[i] >> 1
				tr >>= 1
				ti >>= 1
				re[j] = ai - tr
				im[j] = bi - ti
				re[i] = ai + tr
				im[i] = bi + ti
			}
		}
	}
}

func bitReverseI(re, im []int32) {
	n := len(re)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// ButterflyCount returns the number of butterflies an n-point FFT executes,
// for cycle-cost accounting.
func ButterflyCount(n int) uint64 {
	if n <= 1 {
		return 0
	}
	return uint64(n/2) * uint64(bits.TrailingZeros(uint(n)))
}
