package dsp

import (
	"math/rand"
	"testing"
)

func randUtterance(r *rand.Rand, n int) []int16 {
	s := make([]int16, n)
	for i := range s {
		s[i] = int16(r.Intn(65536) - 32768)
	}
	return s
}

// TestExtractIntoMatchesExtract: the zero-alloc path must produce the same
// fingerprint as the allocating convenience wrapper, including for short
// (zero-padded) and long (truncated) inputs.
func TestExtractIntoMatchesExtract(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 100, fe.Config().UtteranceSamples() / 2, fe.Config().UtteranceSamples(), fe.Config().SampleRate} {
		samples := randUtterance(r, n)
		want := fe.Extract(samples)
		dst := make([]uint8, fe.Config().FingerprintLen())
		got := fe.ExtractInto(dst, samples)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d != %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: feature %d: %d != %d", n, i, got[i], want[i])
			}
		}
		// dst ownership: the returned slice must alias the provided buffer.
		if &got[0] != &dst[0] {
			t.Fatalf("n=%d: ExtractInto reallocated despite sufficient capacity", n)
		}
	}
}

// TestExtractIntoUndersizedDst: a too-small buffer is grown, not overrun.
func TestExtractIntoUndersizedDst(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	samples := randUtterance(rand.New(rand.NewSource(1)), fe.Config().UtteranceSamples())
	got := fe.ExtractInto(make([]uint8, 3), samples)
	if len(got) != fe.Config().FingerprintLen() {
		t.Fatalf("length %d, want %d", len(got), fe.Config().FingerprintLen())
	}
}

// TestExtractIntoZeroAlloc is the ISSUE acceptance criterion: extraction
// into a reused buffer performs no heap allocations.
func TestExtractIntoZeroAlloc(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	samples := randUtterance(rand.New(rand.NewSource(2)), fe.Config().UtteranceSamples())
	dst := make([]uint8, fe.Config().FingerprintLen())
	allocs := testing.AllocsPerRun(10, func() {
		fe.ExtractInto(dst, samples)
	})
	if allocs != 0 {
		t.Fatalf("ExtractInto allocates %v times per run, want 0", allocs)
	}
}

// TestExtractAllocsExactlyOnce: the convenience wrapper may allocate only
// its result slice.
func TestExtractAllocsExactlyOnce(t *testing.T) {
	fe, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	samples := randUtterance(rand.New(rand.NewSource(3)), fe.Config().UtteranceSamples())
	allocs := testing.AllocsPerRun(10, func() {
		fe.Extract(samples)
	})
	if allocs != 1 {
		t.Fatalf("Extract allocates %v times per run, want exactly 1 (the result)", allocs)
	}
}
