package dsp

import (
	"fmt"
	"math"

	"repro/internal/hw"
)

// FrontendConfig describes the fingerprint extractor. DefaultFrontend
// matches the paper exactly.
type FrontendConfig struct {
	SampleRate    int // Hz
	WindowSamples int // samples per analysis window (30 ms)
	StrideSamples int // hop between windows (20 ms)
	FFTSize       int // power of two ≥ WindowSamples
	NumBins       int // spectrum bins consumed (256)
	AvgWidth      int // neighboring bins averaged per feature (6)
	NumFrames     int // frames per utterance (49)
}

// DefaultFrontend returns the paper's configuration: 16 kHz audio, 30 ms
// windows with 20 ms shift, 512-point fixed-point FFT (256 usable bins),
// 6-bin averaging → 43 features, 49 frames.
func DefaultFrontend() FrontendConfig {
	return FrontendConfig{
		SampleRate:    16000,
		WindowSamples: 480,
		StrideSamples: 320,
		FFTSize:       512,
		NumBins:       256,
		AvgWidth:      6,
		NumFrames:     49,
	}
}

// NumFeatures returns features per frame (ceil(NumBins/AvgWidth): 43).
func (c FrontendConfig) NumFeatures() int {
	return (c.NumBins + c.AvgWidth - 1) / c.AvgWidth
}

// FingerprintLen returns the flattened fingerprint length (49×43 = 2107).
func (c FrontendConfig) FingerprintLen() int {
	return c.NumFrames * c.NumFeatures()
}

// UtteranceSamples returns the number of samples consumed per utterance.
func (c FrontendConfig) UtteranceSamples() int {
	return (c.NumFrames-1)*c.StrideSamples + c.WindowSamples
}

func (c FrontendConfig) validate() error {
	if c.FFTSize <= 0 || c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", c.FFTSize)
	}
	if c.WindowSamples > c.FFTSize {
		return fmt.Errorf("dsp: window %d exceeds FFT size %d", c.WindowSamples, c.FFTSize)
	}
	if c.NumBins > c.FFTSize/2 {
		return fmt.Errorf("dsp: %d bins exceed FFT capacity %d", c.NumBins, c.FFTSize/2)
	}
	if c.AvgWidth <= 0 || c.StrideSamples <= 0 || c.NumFrames <= 0 {
		return fmt.Errorf("dsp: non-positive frontend geometry")
	}
	return nil
}

// Frontend extracts uint8 spectrogram fingerprints from PCM16 audio with
// fixed-point arithmetic throughout, as a microcontroller build would.
type Frontend struct {
	cfg    FrontendConfig
	window []int32 // Q15 Hann window
	re, im []int32 // scratch
}

// NewFrontend builds a frontend; nil-safe defaults come from
// DefaultFrontend.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Frontend{
		cfg:    cfg,
		window: make([]int32, cfg.WindowSamples),
		re:     make([]int32, cfg.FFTSize),
		im:     make([]int32, cfg.FFTSize),
	}
	for i := range f.window {
		// Hann window in Q15.
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(cfg.WindowSamples-1))
		f.window[i] = int32(math.Round(w * 32767))
	}
	return f, nil
}

// Config returns the frontend configuration.
func (f *Frontend) Config() FrontendConfig { return f.cfg }

// Extract computes the fingerprint of a 1 s utterance. Input shorter than
// UtteranceSamples is zero-padded; longer input is truncated. The returned
// slice has FingerprintLen() elements in frame-major order.
func (f *Frontend) Extract(samples []int16) []uint8 {
	cfg := f.cfg
	features := cfg.NumFeatures()
	out := make([]uint8, cfg.FingerprintLen())
	for frame := 0; frame < cfg.NumFrames; frame++ {
		start := frame * cfg.StrideSamples
		// Windowed, zero-padded frame in Q15.
		for i := 0; i < cfg.FFTSize; i++ {
			f.im[i] = 0
			if i < cfg.WindowSamples && start+i < len(samples) {
				f.re[i] = int32((int64(samples[start+i]) * int64(f.window[i]) / 2) >> 15)
			} else {
				f.re[i] = 0
			}
		}
		// The fixed-point FFT cannot fail here: size was validated.
		if err := FFTFixed(f.re, f.im); err != nil {
			panic("dsp: " + err.Error())
		}
		for feat := 0; feat < features; feat++ {
			lo := feat * cfg.AvgWidth
			hi := lo + cfg.AvgWidth
			if hi > cfg.NumBins {
				hi = cfg.NumBins
			}
			var acc uint64
			for bin := lo; bin < hi; bin++ {
				r := int64(f.re[bin])
				i := int64(f.im[bin])
				acc += uint64(r*r + i*i)
			}
			avg := acc / uint64(hi-lo)
			out[frame*features+feat] = logCompress(avg)
		}
	}
	return out
}

// logCompress maps an averaged power value to a uint8 feature:
// min(255, round(8·log2(1+p))). The factor 8 spreads the fixed-point power
// range (≈2^31 max) over the full byte, the same role as TFLM's log-scale
// stage.
func logCompress(p uint64) uint8 {
	v := 8 * math.Log2(1+float64(p))
	if v > 255 {
		return 255
	}
	return uint8(math.Round(v))
}

// Cycles returns the cost of one full fingerprint extraction on a simulated
// core: window multiplies, FFT butterflies, and bin post-processing.
func (f *Frontend) Cycles() uint64 {
	cfg := f.cfg
	perFrame := uint64(cfg.WindowSamples)*2 + // window multiply + load
		ButterflyCount(cfg.FFTSize)*hw.CyclesPerButterfly +
		uint64(cfg.NumBins)*hw.CyclesPerFeatureBin
	return perFrame * uint64(cfg.NumFrames)
}
