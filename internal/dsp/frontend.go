package dsp

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hw"
)

// FrontendConfig describes the fingerprint extractor. DefaultFrontend
// matches the paper exactly.
type FrontendConfig struct {
	SampleRate    int // Hz
	WindowSamples int // samples per analysis window (30 ms)
	StrideSamples int // hop between windows (20 ms)
	FFTSize       int // power of two ≥ WindowSamples
	NumBins       int // spectrum bins consumed (256)
	AvgWidth      int // neighboring bins averaged per feature (6)
	NumFrames     int // frames per utterance (49)
}

// DefaultFrontend returns the paper's configuration: 16 kHz audio, 30 ms
// windows with 20 ms shift, 512-point fixed-point FFT (256 usable bins),
// 6-bin averaging → 43 features, 49 frames.
func DefaultFrontend() FrontendConfig {
	return FrontendConfig{
		SampleRate:    16000,
		WindowSamples: 480,
		StrideSamples: 320,
		FFTSize:       512,
		NumBins:       256,
		AvgWidth:      6,
		NumFrames:     49,
	}
}

// NumFeatures returns features per frame (ceil(NumBins/AvgWidth): 43).
func (c FrontendConfig) NumFeatures() int {
	return (c.NumBins + c.AvgWidth - 1) / c.AvgWidth
}

// FingerprintLen returns the flattened fingerprint length (49×43 = 2107).
func (c FrontendConfig) FingerprintLen() int {
	return c.NumFrames * c.NumFeatures()
}

// UtteranceSamples returns the number of samples consumed per utterance.
func (c FrontendConfig) UtteranceSamples() int {
	return (c.NumFrames-1)*c.StrideSamples + c.WindowSamples
}

func (c FrontendConfig) validate() error {
	if c.FFTSize <= 0 || c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("dsp: FFT size %d not a power of two", c.FFTSize)
	}
	if c.WindowSamples > c.FFTSize {
		return fmt.Errorf("dsp: window %d exceeds FFT size %d", c.WindowSamples, c.FFTSize)
	}
	if c.NumBins > c.FFTSize/2 {
		return fmt.Errorf("dsp: %d bins exceed FFT capacity %d", c.NumBins, c.FFTSize/2)
	}
	if c.AvgWidth <= 0 || c.StrideSamples <= 0 || c.NumFrames <= 0 || c.NumBins <= 0 {
		return fmt.Errorf("dsp: non-positive frontend geometry")
	}
	return nil
}

// Frontend extracts uint8 spectrogram fingerprints from PCM16 audio with
// fixed-point arithmetic throughout, as a microcontroller build would. All
// per-utterance state is preallocated at construction: the Q15 Hann window,
// the FFT scratch, the twiddle tables (with bit-reversal permutations) for
// the configured FFT size, and the feature bin sub-ranges of the
// log-compression stage. ExtractInto is therefore allocation-free; a
// frontend is cheap to keep per worker.
//
// The spectrum comes from the real-input FFT (rfftFixed): the FFTSize real
// samples run through an FFTSize/2-point complex FFT plus a split
// post-pass, halving the butterfly and twiddle-load count per frame versus
// the full complex transform the frontend originally used. The output
// scale (1/FFTSize) is unchanged, so feature values match the old path
// within the fixed-point rounding tolerance (the split post-pass rounds
// where the discarded butterfly stage truncated — individual fingerprint
// bytes may differ by a least-significant step, never more).
type Frontend struct {
	cfg    FrontendConfig
	window []int32  // Q15 Hann window
	re, im []int32  // packed even/odd scratch, FFTSize/2 each
	pow    []uint64 // fused per-bin spectral powers, FFTSize/2
	twHalf *twiddles
	twFull *twiddles
	// binLo/binHi are the precomputed [lo, hi) spectrum sub-range of each
	// feature (the final feature may cover fewer than AvgWidth bins).
	binLo, binHi []int
}

// NewFrontend builds a frontend; nil-safe defaults come from
// DefaultFrontend.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	features := cfg.NumFeatures()
	f := &Frontend{
		cfg:    cfg,
		window: make([]int32, cfg.WindowSamples),
		re:     make([]int32, cfg.FFTSize/2),
		im:     make([]int32, cfg.FFTSize/2),
		pow:    make([]uint64, cfg.FFTSize/2),
		twHalf: twiddlesFor(cfg.FFTSize / 2),
		twFull: twiddlesFor(cfg.FFTSize),
		binLo:  make([]int, features),
		binHi:  make([]int, features),
	}
	for i := range f.window {
		// Hann window in Q15.
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(cfg.WindowSamples-1))
		f.window[i] = int32(math.Round(w * 32767))
	}
	for feat := 0; feat < features; feat++ {
		lo := feat * cfg.AvgWidth
		hi := lo + cfg.AvgWidth
		if hi > cfg.NumBins {
			hi = cfg.NumBins
		}
		f.binLo[feat], f.binHi[feat] = lo, hi
	}
	return f, nil
}

// Config returns the frontend configuration.
func (f *Frontend) Config() FrontendConfig { return f.cfg }

// Extract computes the fingerprint of a 1 s utterance. Input shorter than
// UtteranceSamples is zero-padded; longer input is truncated. The returned
// slice has FingerprintLen() elements in frame-major order.
func (f *Frontend) Extract(samples []int16) []uint8 {
	return f.ExtractInto(make([]uint8, f.cfg.FingerprintLen()), samples)
}

// ExtractInto is Extract writing into caller-owned storage: dst is resliced
// to FingerprintLen() when its capacity suffices (the zero-allocation hot
// path) and reallocated otherwise. It returns the fingerprint slice.
func (f *Frontend) ExtractInto(dst []uint8, samples []int16) []uint8 {
	cfg := f.cfg
	features := cfg.NumFeatures()
	if n := cfg.FingerprintLen(); cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]uint8, n)
	}
	for frame := 0; frame < cfg.NumFrames; frame++ {
		f.frameInto(dst[frame*features:(frame+1)*features], samples, frame*cfg.StrideSamples)
	}
	return dst
}

// frameInto computes the NumFeatures() feature values of the single analysis
// window starting at sample offset start, writing them into dst. Samples
// beyond len(samples) are treated as zeros (the utterance-tail padding).
// This is the shared per-frame kernel of ExtractInto and Streamer.Push, so
// streamed fingerprints are bit-exact against full recomputation.
func (f *Frontend) frameInto(dst []uint8, samples []int16, start int) {
	cfg := f.cfg
	// Windowed frame in Q15, packed straight into the real-FFT layout:
	// even samples into the real scratch, odd samples into the imaginary
	// scratch, each at half its sample index. The window multiply covers
	// the samples actually present; the packed tails (zero padding up to
	// FFTSize) are cleared with branch-free memclr loops.
	n := cfg.WindowSamples
	if rem := len(samples) - start; rem < n {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	for i := 0; i+1 < n; i += 2 {
		f.re[i>>1] = int32((int64(samples[start+i]) * int64(f.window[i]) / 2) >> 15)
		f.im[i>>1] = int32((int64(samples[start+i+1]) * int64(f.window[i+1]) / 2) >> 15)
	}
	if n&1 == 1 {
		f.re[n>>1] = int32((int64(samples[start+n-1]) * int64(f.window[n-1]) / 2) >> 15)
		f.im[n>>1] = 0
	}
	half := (n + 1) / 2
	for i := range f.re[half:] {
		f.re[half+i] = 0
	}
	half = n / 2
	for i := range f.im[half:] {
		f.im[half+i] = 0
	}
	// Fused post-pass: the real-FFT unzip squares each spectrum bin while
	// it is in registers (rfftPowerFixed), so the bin-averaging loop below
	// reads one power array instead of re-loading two spectrum arrays, and
	// log compression runs on the integer threshold LUT — no float math on
	// the hot path. Both halves are bit-exact with the unfused pipeline
	// (TestFrontendFusedEquivalence): the powers are the same squares, and
	// logCompressFixed equals logCompress on every uint64 by construction.
	rfftPowerFixed(f.re, f.im, f.twHalf, f.twFull, f.pow)
	pw := f.pow
	for feat := range f.binLo {
		lo, hi := f.binLo[feat], f.binHi[feat]
		var acc uint64
		if lo > hi || hi > len(pw) {
			continue
		}
		for _, p := range pw[lo:hi] {
			acc += p
		}
		avg := acc / uint64(hi-lo)
		dst[feat] = logCompressFixed(avg)
	}
}

// logCompress maps an averaged power value to a uint8 feature:
// min(255, round(8·log2(1+p))). The factor 8 spreads the fixed-point power
// range (≈2^31 max) over the full byte, the same role as TFLM's log-scale
// stage. This float form is the reference; the hot path uses
// logCompressFixed, which is exactly equal on every input by construction.
func logCompress(p uint64) uint8 {
	v := 8 * math.Log2(1+float64(p))
	if v > 255 {
		return 255
	}
	return uint8(math.Round(v))
}

// logThresholds[v] is the smallest power p with logCompress(p) ≥ v+1 (and
// MaxUint64 for v = 255, which is never exceeded). Built once by binary
// search against the float reference itself, so logCompressFixed inherits
// its exact rounding behavior — including any float64 quirks at the
// boundaries — rather than re-deriving the cut points analytically.
var logThresholds = func() *[256]uint64 {
	var t [256]uint64
	for v := 0; v < 255; v++ {
		// Invariant: logCompress(lo) ≤ v < logCompress(hi).
		lo, hi := uint64(0), uint64(1)<<40
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if logCompress(mid) <= uint8(v) {
				lo = mid
			} else {
				hi = mid
			}
		}
		t[v] = hi
	}
	t[255] = math.MaxUint64
	return &t
}()

// logCompressFixed is logCompress as an integer threshold lookup: the bit
// length of p brackets 8·log2(1+p) to within a few steps, and a short walk
// over logThresholds lands on the exact byte. No floating point, ≤ 9
// comparisons, bit-identical to the reference on every uint64.
func logCompressFixed(p uint64) uint8 {
	v := 8 * (bits.Len64(p) - 1)
	if v < 0 {
		v = 0
	} else if v > 255 {
		v = 255
	}
	// The uint8 index casts are provably lossless (v is bracket-clamped to
	// [0,255]) and make every table access in-bounds by type alone, so the
	// walk carries no bounds checks (make bce-check).
	for v > 0 && p < logThresholds[uint8(v-1)] {
		v--
	}
	for v < 255 && p >= logThresholds[uint8(v)] {
		v++
	}
	return uint8(v)
}

// Cycles returns the cost of one full fingerprint extraction on a simulated
// core: window multiplies, the butterflies of the packed FFTSize/2-point
// FFT, the real-FFT split post-pass over the FFTSize/2 spectrum bins, and
// bin post-processing.
func (f *Frontend) Cycles() uint64 {
	cfg := f.cfg
	perFrame := uint64(cfg.WindowSamples)*2 + // window multiply + load
		ButterflyCount(cfg.FFTSize/2)*hw.CyclesPerButterfly +
		uint64(cfg.FFTSize/2)*hw.CyclesPerRFFTPostBin +
		uint64(cfg.NumBins)*hw.CyclesPerFeatureBin
	return perFrame * uint64(cfg.NumFrames)
}
