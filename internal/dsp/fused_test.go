package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestRFFTPowerMatchesRFFT: the fused power post-pass must be bit-identical
// to running rfftFixed and squaring its spectrum — the fusion only skips the
// spectrum store/re-load, never the arithmetic. Randomized Q15-range inputs
// over every packed size the frontend could configure.
func TestRFFTPowerMatchesRFFT(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for _, m := range []int{2, 4, 8, 16, 64, 256, 512} {
		half, full := twiddlesFor(m), twiddlesFor(2*m)
		for trial := 0; trial < 20; trial++ {
			re := make([]int32, m)
			im := make([]int32, m)
			for i := range re {
				re[i] = int32(r.Intn(65535) - 32767)
				im[i] = int32(r.Intn(65535) - 32767)
			}
			re2 := append([]int32(nil), re...)
			im2 := append([]int32(nil), im...)
			rfftFixed(re2, im2, half, full)
			pow := make([]uint64, m)
			rfftPowerFixed(re, im, half, full, pow)
			for k := 0; k < m; k++ {
				xr, xi := int64(re2[k]), int64(im2[k])
				want := uint64(xr*xr + xi*xi)
				if pow[k] != want {
					t.Fatalf("m=%d trial=%d bin %d: fused power %d != squared spectrum %d",
						m, trial, k, pow[k], want)
				}
			}
		}
	}
}

// TestLogCompressFixedMatches: the integer threshold walk must equal the
// float reference on every input class — randomized values across all
// magnitudes, every threshold boundary ±1, and the extremes.
func TestLogCompressFixedMatches(t *testing.T) {
	check := func(p uint64) {
		t.Helper()
		if got, want := logCompressFixed(p), logCompress(p); got != want {
			t.Fatalf("logCompressFixed(%d) = %d, want %d", p, got, want)
		}
	}
	check(0)
	check(1)
	check(math.MaxUint64)
	for v := 0; v < 256; v++ {
		th := logThresholds[v]
		if th > 0 {
			check(th - 1)
		}
		check(th)
		if th < math.MaxUint64 {
			check(th + 1)
		}
	}
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20000; trial++ {
		check(r.Uint64() >> uint(r.Intn(64)))
	}
}

// unfusedFrame recomputes one analysis frame the pre-fusion way — window
// pack, rfftFixed spectrum, square/average in integers, float logCompress —
// as the reference for TestFrontendFusedEquivalence.
func unfusedFrame(f *Frontend, dst []uint8, samples []int16, start int) {
	cfg := f.cfg
	re := make([]int32, cfg.FFTSize/2)
	im := make([]int32, cfg.FFTSize/2)
	n := cfg.WindowSamples
	if rem := len(samples) - start; rem < n {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	for i := 0; i < n; i++ {
		w := int32((int64(samples[start+i]) * int64(f.window[i]) / 2) >> 15)
		if i&1 == 0 {
			re[i>>1] = w
		} else {
			im[i>>1] = w
		}
	}
	rfftFixed(re, im, f.twHalf, f.twFull)
	for feat := range f.binLo {
		lo, hi := f.binLo[feat], f.binHi[feat]
		var acc uint64
		for k := lo; k < hi; k++ {
			xr, xi := int64(re[k]), int64(im[k])
			acc += uint64(xr*xr + xi*xi)
		}
		dst[feat] = logCompress(acc / uint64(hi-lo))
	}
}

// TestFrontendFusedEquivalence: the fused frontend hot path (rfftPowerFixed
// + logCompressFixed) must produce byte-identical fingerprints to the
// unfused pipeline it replaced, across randomized utterances including
// short (zero-padded) and empty input.
func TestFrontendFusedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	f, err := NewFrontend(DefaultFrontend())
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	features := cfg.NumFeatures()
	lengths := []int{0, 1, cfg.WindowSamples - 1, cfg.WindowSamples,
		cfg.UtteranceSamples() / 2, cfg.UtteranceSamples() - 1, cfg.UtteranceSamples()}
	for trial, n := range lengths {
		samples := make([]int16, n)
		for i := range samples {
			samples[i] = int16(r.Intn(65536) - 32768)
		}
		got := f.Extract(samples)
		want := make([]uint8, features)
		for frame := 0; frame < cfg.NumFrames; frame++ {
			unfusedFrame(f, want, samples, frame*cfg.StrideSamples)
			for feat := 0; feat < features; feat++ {
				if got[frame*features+feat] != want[feat] {
					t.Fatalf("len=%d trial=%d frame=%d feat=%d: fused %d != unfused %d",
						n, trial, frame, feat, got[frame*features+feat], want[feat])
				}
			}
		}
	}
}
