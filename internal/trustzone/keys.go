package trustzone

import (
	"io"

	"repro/internal/omgcrypto"
)

// PlatformKeys holds the device's attestation key material: the platform
// identity and its certificate issued by the device vendor's root, "a
// certificate hierarchy similar to SSL certificates" (§V).
type PlatformKeys struct {
	Platform     *omgcrypto.Identity
	PlatformCert *omgcrypto.Certificate
	RootCert     *omgcrypto.Certificate
}

// NewPlatformKeys provisions a platform identity certified by root, as the
// device vendor does in the factory.
func NewPlatformKeys(rng io.Reader, root *omgcrypto.Identity, deviceName string) (*PlatformKeys, error) {
	platform, err := omgcrypto.NewIdentity(rng, deviceName+"/platform")
	if err != nil {
		return nil, err
	}
	platformCert, err := omgcrypto.IssueCertificate(root, platform.Subject, platform.Public())
	if err != nil {
		return nil, err
	}
	rootCert, err := omgcrypto.SelfSign(root)
	if err != nil {
		return nil, err
	}
	return &PlatformKeys{Platform: platform, PlatformCert: platformCert, RootCert: rootCert}, nil
}

// Chain returns the certificate chain a verifier needs alongside an
// attestation report: platform cert then root cert.
func (k *PlatformKeys) Chain() []*omgcrypto.Certificate {
	return []*omgcrypto.Certificate{k.PlatformCert, k.RootCert}
}
