// Package trustzone implements the TrustZone firmware layer of the simulated
// platform (Fig. 1 of the paper): a secure monitor that dispatches SMC calls
// from the normal world into secure-world services, and a small trusted OS
// hosting the trusted applications OMG relies on — the platform keystore and
// the secure peripheral driver — plus the SANCTUARY support service that
// programs the TZASC on behalf of enclaves.
package trustzone

import (
	"fmt"

	"repro/internal/hw"
)

// ServiceID names a secure-world service reachable via SMC.
type ServiceID string

// Handler processes one secure-world call. It runs with the calling core
// switched to the secure state; req and the response are arbitrary values
// (register/shared-memory marshalling is abstracted away, its cost being
// dominated by the world switch itself).
type Handler func(ctx *SecureContext, req any) (any, error)

// SecureContext is the execution context of a secure-world handler.
type SecureContext struct {
	Core *hw.Core
	SoC  *hw.SoC
}

// Monitor is the secure monitor (EL3 firmware): the only component that
// switches cores between worlds. Every call charges the measured SANCTUARY
// world-switch cost to the calling core.
type Monitor struct {
	soc      *hw.SoC
	services map[ServiceID]Handler
	// switches counts completed SMC round trips, for experiments.
	switches uint64
}

// NewMonitor installs a monitor on the SoC.
func NewMonitor(soc *hw.SoC) *Monitor {
	return &Monitor{soc: soc, services: make(map[ServiceID]Handler)}
}

// Register installs a secure-world service. Registration models flashing the
// trusted OS image; it is not reachable from simulated normal-world code.
func (m *Monitor) Register(id ServiceID, h Handler) {
	m.services[id] = h
}

// Switches returns the number of completed SMC round trips.
func (m *Monitor) Switches() uint64 { return m.switches }

// Call performs an SMC from core into the named service and returns to the
// caller's original world. The full round trip costs hw.WorldSwitchTime
// (≈0.3 ms, §VI), split evenly between entry and exit.
func (m *Monitor) Call(core *hw.Core, id ServiceID, req any) (any, error) {
	if !core.Online() {
		return nil, fmt.Errorf("trustzone: SMC from offline core %d", core.ID())
	}
	h, ok := m.services[id]
	if !ok {
		return nil, fmt.Errorf("trustzone: unknown service %q", id)
	}
	prev := core.World()
	core.ChargeDuration(hw.WorldSwitchTime / 2)
	core.SetWorld(hw.SecureWorld)
	resp, err := h(&SecureContext{Core: core, SoC: m.soc}, req)
	core.SetWorld(prev)
	core.ChargeDuration(hw.WorldSwitchTime / 2)
	m.switches++
	return resp, err
}
