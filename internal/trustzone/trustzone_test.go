package trustzone

import (
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
)

// Platform keys are expensive to generate (RSA-2048); share one set.
var (
	keysOnce sync.Once
	testKeys *PlatformKeys
	testRoot *omgcrypto.Identity
)

func platformKeys(t *testing.T) (*PlatformKeys, *omgcrypto.Identity) {
	t.Helper()
	keysOnce.Do(func() {
		rng := omgcrypto.NewDRBG("trustzone-test")
		var err error
		testRoot, err = omgcrypto.NewIdentity(rng, "device-vendor")
		if err != nil {
			t.Fatal(err)
		}
		testKeys, err = NewPlatformKeys(rng, testRoot, "hikey960")
		if err != nil {
			t.Fatal(err)
		}
	})
	return testKeys, testRoot
}

func testPlatform(t *testing.T) (*hw.SoC, *Monitor, *SecureOS, *omgcrypto.Identity) {
	t.Helper()
	keys, root := platformKeys(t)
	soc := hw.NewSoC(hw.Config{BigCores: 2, LittleCores: 2, DRAMSize: 64 << 20})
	mon := NewMonitor(soc)
	sos, err := BootSecureOS(soc, mon, SecureOSConfig{
		Keys:           keys,
		Rand:           omgcrypto.NewDRBG("enclave-keys"),
		EnclaveKeyBits: 1024, // keep the suite fast; cost model is unaffected
	})
	if err != nil {
		t.Fatal(err)
	}
	return soc, mon, sos, root
}

func TestMonitorUnknownService(t *testing.T) {
	soc := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 1 << 20})
	mon := NewMonitor(soc)
	if _, err := mon.Call(soc.Core(0), "nope", nil); err == nil {
		t.Fatal("unknown service call succeeded")
	}
}

func TestMonitorWorldSwitchSemantics(t *testing.T) {
	soc := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 1 << 20})
	mon := NewMonitor(soc)
	core := soc.Core(0)
	var sawWorld hw.World
	mon.Register("echo", func(ctx *SecureContext, req any) (any, error) {
		sawWorld = ctx.Core.World()
		return req, nil
	})
	core.ResetCycles()
	resp, err := mon.Call(core, "echo", 42)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 42 {
		t.Fatalf("resp = %v", resp)
	}
	if sawWorld != hw.SecureWorld {
		t.Fatal("handler did not run in the secure world")
	}
	if core.World() != hw.NormalWorld {
		t.Fatal("world not restored after call")
	}
	// One round trip costs ~0.3 ms = 720k cycles at 2.4 GHz.
	want := uint64(hw.WorldSwitchTime.Nanoseconds()) * core.Hz() / 1_000_000_000
	if got := core.Cycles(); got != want {
		t.Fatalf("switch cost = %d cycles, want %d", got, want)
	}
	if mon.Switches() != 1 {
		t.Fatalf("switches = %d", mon.Switches())
	}
}

func TestMonitorOfflineCoreCannotCall(t *testing.T) {
	soc := hw.NewSoC(hw.Config{BigCores: 2, LittleCores: 0, DRAMSize: 1 << 20})
	mon := NewMonitor(soc)
	mon.Register("noop", func(ctx *SecureContext, req any) (any, error) { return nil, nil })
	if err := soc.Core(1).PowerOff(soc.Core(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Call(soc.Core(1), "noop", nil); err == nil {
		t.Fatal("offline core issued an SMC")
	}
}

func TestSecureOSBootAssignsMicrophone(t *testing.T) {
	soc, _, _, _ := testPlatform(t)
	if got := soc.TZPC().WorldOf(hw.PeriphMicrophone); got != hw.SecureWorld {
		t.Fatalf("microphone assigned to %v", got)
	}
	soc.Microphone().Feed(make([]int16, 16))
	if _, err := soc.ReadMic(soc.Core(0), 16); err == nil {
		t.Fatal("normal world read the secure microphone")
	}
}

func createTestEnclave(t *testing.T, soc *hw.SoC, mon *Monitor, name string, allowMic bool) CreateResp {
	t.Helper()
	image := []byte("SL+" + name)
	if err := soc.Write(soc.Core(0), 0x100000, image); err != nil {
		t.Fatal(err)
	}
	resp, err := mon.Call(soc.Core(0), SvcEnclaveCreate, CreateReq{
		Name: name, Base: 0x100000, PrivSize: 0x20000,
		SWBase: 0x200000, SWSize: 0x10000,
		Core: 1, AllowMic: allowMic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.(CreateResp)
}

func TestEnclaveCreateLocksAndMeasures(t *testing.T) {
	soc, mon, _, root := testPlatform(t)
	created := createTestEnclave(t, soc, mon, "kws", true)

	// The enclave certificate chains to the device-vendor root.
	chain := []*omgcrypto.Certificate{created.EnclaveCert, testKeys.PlatformCert, testKeys.RootCert}
	if _, err := omgcrypto.VerifyChain(chain, root.Public()); err != nil {
		t.Fatalf("enclave certificate chain: %v", err)
	}

	// Private memory is now core-locked: OS core and secure world both fail.
	if err := soc.Read(soc.Core(0), 0x100000, make([]byte, 4)); err == nil {
		t.Fatal("OS core read locked enclave memory")
	}
	if err := soc.Read(soc.Core(1), 0x100000, make([]byte, 4)); err != nil {
		t.Fatalf("enclave core read its own memory: %v", err)
	}
	soc.Core(1).SetWorld(hw.SecureWorld)
	if err := soc.Read(soc.Core(1), 0x100000, make([]byte, 4)); err == nil {
		t.Fatal("secure world read enclave memory (two-way isolation broken)")
	}
	soc.Core(1).SetWorld(hw.NormalWorld)

	// Enclave memory bypasses the shared L2.
	if !soc.L2().Bypasses(0x100000) || !soc.L2().Bypasses(0x200000) {
		t.Fatal("enclave ranges not excluded from L2")
	}

	// Duplicate names are refused.
	if _, err := mon.Call(soc.Core(0), SvcEnclaveCreate, CreateReq{
		Name: "kws", Base: 0x300000, PrivSize: 0x1000, SWBase: 0x400000, SWSize: 0x1000, Core: 2,
	}); err == nil {
		t.Fatal("duplicate enclave created")
	}
}

func TestEnclaveAttestReportVerifies(t *testing.T) {
	soc, mon, _, root := testPlatform(t)
	created := createTestEnclave(t, soc, mon, "kws", false)
	nonce := []byte("verifier-nonce")
	resp, err := mon.Call(soc.Core(0), SvcEnclaveAttest, AttestReq{Name: "kws", Nonce: nonce})
	if err != nil {
		t.Fatal(err)
	}
	at := resp.(AttestResp)
	pub, err := omgcrypto.VerifyReport(at.Report, at.Chain, root.Public(), created.Measurement, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub) == 0 {
		t.Fatal("no enclave key in report")
	}
	if _, err := mon.Call(soc.Core(0), SvcEnclaveAttest, AttestReq{Name: "ghost"}); err == nil {
		t.Fatal("attested unknown enclave")
	}
}

func TestPeriphReadPermissions(t *testing.T) {
	soc, mon, _, _ := testPlatform(t)
	createTestEnclave(t, soc, mon, "kws", true)
	soc.Microphone().Feed(make([]int16, 256))

	// From the wrong core: refused.
	if _, err := mon.Call(soc.Core(0), SvcPeriphRead, PeriphReadReq{Name: "kws", Periph: hw.PeriphMicrophone, N: 16}); err == nil {
		t.Fatal("peripheral read from non-enclave core succeeded")
	}
	// From the enclave core: works, deposits samples in the shared window.
	resp, err := mon.Call(soc.Core(1), SvcPeriphRead, PeriphReadReq{Name: "kws", Periph: hw.PeriphMicrophone, N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(PeriphReadResp).N; got != 16 {
		t.Fatalf("deposited %d samples", got)
	}
	buf := make([]byte, 32)
	if err := soc.Read(soc.Core(1), 0x200000, buf); err != nil {
		t.Fatalf("enclave cannot read its shared-SW window: %v", err)
	}
	// Unknown peripheral and oversized requests are refused.
	if _, err := mon.Call(soc.Core(1), SvcPeriphRead, PeriphReadReq{Name: "kws", Periph: "camera", N: 1}); err == nil {
		t.Fatal("unknown peripheral read succeeded")
	}
	if _, err := mon.Call(soc.Core(1), SvcPeriphRead, PeriphReadReq{Name: "kws", Periph: hw.PeriphMicrophone, N: 1 << 20}); err == nil {
		t.Fatal("oversized read succeeded")
	}
}

func TestPeriphReadDeniedWithoutPermission(t *testing.T) {
	soc, mon, _, _ := testPlatform(t)
	createTestEnclave(t, soc, mon, "noaudio", false)
	soc.Microphone().Feed(make([]int16, 16))
	if _, err := mon.Call(soc.Core(1), SvcPeriphRead, PeriphReadReq{Name: "noaudio", Periph: hw.PeriphMicrophone, N: 8}); err == nil {
		t.Fatal("mic read without permission succeeded")
	}
}

func TestEnclaveTeardownScrubsAndUnlocks(t *testing.T) {
	soc, mon, _, _ := testPlatform(t)
	createTestEnclave(t, soc, mon, "kws", false)
	secret := []byte("decrypted model weights")
	if err := soc.Write(soc.Core(1), 0x100100, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Call(soc.Core(0), SvcEnclaveTeardown, TeardownReq{Name: "kws"}); err != nil {
		t.Fatal(err)
	}
	// Memory is unlocked again — and contains only zeros.
	buf := make([]byte, len(secret))
	if err := soc.Read(soc.Core(0), 0x100100, buf); err != nil {
		t.Fatalf("memory still locked after teardown: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x survived teardown scrub", i, b)
		}
	}
	if soc.L2().Bypasses(0x100000) {
		t.Fatal("L2 exclusion not removed at teardown")
	}
	if _, err := mon.Call(soc.Core(0), SvcEnclaveTeardown, TeardownReq{Name: "kws"}); err == nil {
		t.Fatal("double teardown succeeded")
	}
}

func TestEnclaveRebindMovesLock(t *testing.T) {
	soc, mon, _, _ := testPlatform(t)
	createTestEnclave(t, soc, mon, "kws", false)
	if _, err := mon.Call(soc.Core(0), SvcEnclaveRebind, RebindReq{Name: "kws", NewCore: 2}); err != nil {
		t.Fatal(err)
	}
	if err := soc.Read(soc.Core(1), 0x100000, make([]byte, 4)); err == nil {
		t.Fatal("old core still has access after rebind")
	}
	if err := soc.Read(soc.Core(2), 0x100000, make([]byte, 4)); err != nil {
		t.Fatalf("new core has no access after rebind: %v", err)
	}
}

func TestCreateRejectsBadRequests(t *testing.T) {
	soc, mon, _, _ := testPlatform(t)
	for _, svc := range []ServiceID{SvcEnclaveCreate, SvcEnclaveAttest, SvcEnclaveRebind, SvcEnclaveTeardown, SvcPeriphRead} {
		if _, err := mon.Call(soc.Core(0), svc, "not-a-request"); err == nil {
			t.Fatalf("service %q accepted a bad request type", svc)
		}
	}
	if _, err := mon.Call(soc.Core(0), SvcEnclaveCreate, CreateReq{Name: "z", Base: 0x100000, PrivSize: 0, SWSize: 0, Core: 1}); err == nil {
		t.Fatal("zero-size enclave created")
	}
}

func TestBootSecureOSRequiresKeys(t *testing.T) {
	soc := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 1 << 20})
	if _, err := BootSecureOS(soc, NewMonitor(soc), SecureOSConfig{}); err == nil {
		t.Fatal("secure OS booted without platform keys")
	}
}
