package trustzone

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/omgcrypto"
)

// Secure-world services installed by the trusted OS.
const (
	// SvcEnclaveCreate locks and measures an enclave's memory and creates
	// its certified identity. Caller: the commodity OS (SANCTUARY driver).
	SvcEnclaveCreate ServiceID = "sanctuary.create"
	// SvcEnclaveAttest produces a signed attestation report for a verifier
	// nonce. Caller: the commodity OS, relaying verifier requests.
	SvcEnclaveAttest ServiceID = "sanctuary.attest"
	// SvcEnclaveRebind moves a suspended enclave's memory lock to a new
	// core (operation-phase core reallocation, §V).
	SvcEnclaveRebind ServiceID = "sanctuary.rebind"
	// SvcEnclaveTeardown scrubs and unlocks enclave memory.
	SvcEnclaveTeardown ServiceID = "sanctuary.teardown"
	// SvcPeriphRead reads a secure peripheral on behalf of the calling
	// enclave, depositing data in its secure-shared buffer. Caller: the SA
	// itself, from its bound core.
	SvcPeriphRead ServiceID = "periph.read"
)

// CreateReq asks the secure world to set up an enclave whose image the OS
// already copied to [Base, Base+PrivSize).
type CreateReq struct {
	Name     string
	Base     hw.PhysAddr
	PrivSize uint64
	SWBase   hw.PhysAddr // shared with secure world, bound to Core
	SWSize   uint64
	Core     int // CPU core dedicated to the enclave
	AllowMic bool
}

// CreateResp returns the measured identity of the new enclave.
type CreateResp struct {
	Measurement omgcrypto.Measurement
	EnclaveCert *omgcrypto.Certificate
}

// AttestReq asks for a signed report with a verifier-chosen nonce.
type AttestReq struct {
	Name  string
	Nonce []byte
}

// AttestResp carries the report plus the platform chain.
type AttestResp struct {
	Report *omgcrypto.AttestationReport
	Chain  []*omgcrypto.Certificate
}

// RebindReq moves the enclave's core lock to NewCore.
type RebindReq struct {
	Name    string
	NewCore int
}

// TeardownReq scrubs and unlocks the named enclave's memory.
type TeardownReq struct {
	Name string
}

// PeriphReadReq asks the secure world to read N samples from a secure
// peripheral into the calling enclave's shared-SW buffer.
type PeriphReadReq struct {
	Name   string
	Periph hw.PeriphID
	N      int
}

// PeriphReadResp reports how many samples were deposited at the start of the
// enclave's shared-SW buffer.
type PeriphReadResp struct {
	N int
}

// enclaveRecord is the secure world's book-keeping for one enclave.
type enclaveRecord struct {
	name        string
	base        hw.PhysAddr
	privSize    uint64
	swBase      hw.PhysAddr
	swSize      uint64
	core        int
	allowMic    bool
	measurement omgcrypto.Measurement
	identity    *omgcrypto.Identity
	cert        *omgcrypto.Certificate
}

func (r *enclaveRecord) privRegionName() string { return "sa:" + r.name }
func (r *enclaveRecord) swRegionName() string   { return "sa-sw:" + r.name }

// SecureOS is the trusted OS running in the secure world. It owns the
// platform keys, programs the TZASC and TZPC, measures enclaves, signs
// attestation reports, and mediates secure peripheral access.
type SecureOS struct {
	soc     *hw.SoC
	mon     *Monitor
	keys    *PlatformKeys
	rng     io.Reader
	keyBits int
	// deviceSecret seeds per-enclave key derivation so that the same image
	// on the same device always receives the same identity ("this key pair
	// is derived from the platform certificate", §V). That stability is
	// what lets OMG skip re-provisioning (steps 3–4) across enclave
	// relaunches until the model is updated.
	deviceSecret []byte
	enclaves     map[string]*enclaveRecord
	// micSamples/micBytes are the peripheral driver's drain and encode
	// scratch, grown on demand and reused across SMCs so the always-on
	// capture path performs no per-call heap allocation. Secure-world
	// handlers are serialized by the monitor, so no lock is needed.
	micSamples []int16
	micBytes   []byte
}

// SecureOSConfig configures the trusted OS.
type SecureOSConfig struct {
	Keys *PlatformKeys
	// Rand seeds enclave key generation; nil means omgcrypto.Rand.
	Rand io.Reader
	// EnclaveKeyBits sets the RSA modulus size of per-enclave identities.
	// 0 means omgcrypto.IdentityKeySize (2048); simulations may lower it to
	// keep runs fast, which affects no measured quantity (key generation
	// cost is charged from the hw cost model, not wall time).
	EnclaveKeyBits int
}

// BootSecureOS installs the trusted OS on the monitor: registers all
// services and assigns the microphone to the secure world (§III-B: TrustZone
// allows to assign sensitive peripherals exclusively to the secure world).
func BootSecureOS(soc *hw.SoC, mon *Monitor, cfg SecureOSConfig) (*SecureOS, error) {
	if cfg.Keys == nil {
		return nil, errors.New("trustzone: secure OS requires platform keys")
	}
	os := &SecureOS{
		soc:      soc,
		mon:      mon,
		keys:     cfg.Keys,
		rng:      cfg.Rand,
		keyBits:  cfg.EnclaveKeyBits,
		enclaves: make(map[string]*enclaveRecord),
	}
	if os.keyBits == 0 {
		os.keyBits = omgcrypto.IdentityKeySize
	}
	secret, err := omgcrypto.RandomBytes(os.rng, 32)
	if err != nil {
		return nil, err
	}
	os.deviceSecret = secret
	if err := soc.TZPC().Assign(hw.SecureWorld, hw.PeriphMicrophone, hw.SecureWorld); err != nil {
		return nil, err
	}
	mon.Register(SvcEnclaveCreate, os.handleCreate)
	mon.Register(SvcEnclaveAttest, os.handleAttest)
	mon.Register(SvcEnclaveRebind, os.handleRebind)
	mon.Register(SvcEnclaveTeardown, os.handleTeardown)
	mon.Register(SvcPeriphRead, os.handlePeriphRead)
	return os, nil
}

// Keys exposes the platform certificate chain (public material only).
func (s *SecureOS) Keys() *PlatformKeys { return s.keys }

// EnclaveIdentity returns the private identity of a running enclave. Only
// the SANCTUARY Library calls this during enclave boot, modelling SANCTUARY
// provisioning the key pair it "assigns to this enclave" (§V) directly into
// enclave-private memory; the identity never transits OS-visible state.
func (s *SecureOS) EnclaveIdentity(name string) (*omgcrypto.Identity, *omgcrypto.Certificate, error) {
	rec, ok := s.enclaves[name]
	if !ok {
		return nil, nil, fmt.Errorf("trustzone: unknown enclave %q", name)
	}
	return rec.identity, rec.cert, nil
}

func (s *SecureOS) record(name string) (*enclaveRecord, error) {
	rec, ok := s.enclaves[name]
	if !ok {
		return nil, fmt.Errorf("trustzone: unknown enclave %q", name)
	}
	return rec, nil
}

func (s *SecureOS) handleCreate(ctx *SecureContext, req any) (any, error) {
	r, ok := req.(CreateReq)
	if !ok {
		return nil, fmt.Errorf("trustzone: create: bad request type %T", req)
	}
	if _, exists := s.enclaves[r.Name]; exists {
		return nil, fmt.Errorf("trustzone: enclave %q already exists", r.Name)
	}
	if r.PrivSize == 0 || r.SWSize == 0 {
		return nil, errors.New("trustzone: create: empty region")
	}
	tz := s.soc.TZASC()

	// Phase 1: lock the private range for measurement — secure-only, so the
	// OS can no longer flip bits after the hash is taken (TOCTOU defence).
	measureAttr := hw.RegionAttr{SecureRead: true, CoreLock: hw.AnyCore, NoDMA: true}
	if err := tz.Program(hw.SecureWorld, hw.Region{
		Name: "measure:" + r.Name, Base: r.Base, Size: r.PrivSize, Attr: measureAttr,
	}); err != nil {
		return nil, err
	}
	digest := sha256.New()
	buf := make([]byte, 4096)
	for off := uint64(0); off < r.PrivSize; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if off+n > r.PrivSize {
			n = r.PrivSize - off
		}
		if err := s.soc.Read(ctx.Core, r.Base+hw.PhysAddr(off), buf[:n]); err != nil {
			_ = tz.Unprogram(hw.SecureWorld, "measure:"+r.Name)
			return nil, fmt.Errorf("trustzone: measuring enclave: %w", err)
		}
		digest.Write(buf[:n])
	}
	ctx.Core.Charge(uint64(r.PrivSize) * hw.CyclesPerByteHash)
	var m omgcrypto.Measurement
	copy(m[:], digest.Sum(nil))
	if err := tz.Unprogram(hw.SecureWorld, "measure:"+r.Name); err != nil {
		return nil, err
	}

	// Phase 2: final two-way isolation. The enclave runs as a *normal-world*
	// process on its dedicated core; neither other cores nor the secure
	// world may touch its private memory afterwards.
	privAttr := hw.RegionAttr{NormalRead: true, NormalWrite: true, CoreLock: r.Core, NoDMA: true}
	if err := tz.Program(hw.SecureWorld, hw.Region{
		Name: "sa:" + r.Name, Base: r.Base, Size: r.PrivSize, Attr: privAttr,
	}); err != nil {
		return nil, err
	}
	// The shared-SW window is reachable from the enclave core in both
	// worlds: the SA reads/writes it in the normal world; the peripheral
	// service writes it in the secure world during SMC handling on the same
	// core.
	swAttr := hw.RegionAttr{
		NormalRead: true, NormalWrite: true,
		SecureRead: true, SecureWrite: true,
		CoreLock: r.Core, NoDMA: true,
	}
	if err := tz.Program(hw.SecureWorld, hw.Region{
		Name: "sa-sw:" + r.Name, Base: r.SWBase, Size: r.SWSize, Attr: swAttr,
	}); err != nil {
		_ = tz.Unprogram(hw.SecureWorld, "sa:"+r.Name)
		return nil, err
	}

	// SANCTUARY cache defence: enclave memory bypasses the shared L2 so
	// co-resident cores observe no enclave-driven evictions (§III-B).
	s.soc.L2().Exclude(r.Base, r.PrivSize)
	s.soc.L2().Exclude(r.SWBase, r.SWSize)

	// Assign the enclave its certified identity, derived deterministically
	// from the device secret and the measurement: relaunching the same
	// image yields the same key pair, so previously provisioned ciphertexts
	// stay usable.
	keySeed := omgcrypto.HKDF(s.deviceSecret, []byte("omg-enclave-key"), m[:], 32)
	key, err := omgcrypto.DeterministicRSAKey(keySeed, s.keyBits)
	if err != nil {
		return nil, fmt.Errorf("trustzone: enclave key generation: %w", err)
	}
	identity := &omgcrypto.Identity{Subject: "enclave/" + r.Name, Private: key}
	ctx.Core.ChargeDuration(hw.RSAKeygenTime)
	cert, err := omgcrypto.IssueCertificate(s.keys.Platform, identity.Subject, identity.Public())
	if err != nil {
		return nil, err
	}
	ctx.Core.Charge(hw.CyclesPerRSA2048Sign)

	s.enclaves[r.Name] = &enclaveRecord{
		name: r.Name, base: r.Base, privSize: r.PrivSize,
		swBase: r.SWBase, swSize: r.SWSize, core: r.Core,
		allowMic: r.AllowMic, measurement: m, identity: identity, cert: cert,
	}
	return CreateResp{Measurement: m, EnclaveCert: cert}, nil
}

func (s *SecureOS) handleAttest(ctx *SecureContext, req any) (any, error) {
	r, ok := req.(AttestReq)
	if !ok {
		return nil, fmt.Errorf("trustzone: attest: bad request type %T", req)
	}
	rec, err := s.record(r.Name)
	if err != nil {
		return nil, err
	}
	report, err := omgcrypto.SignReport(s.keys.Platform, rec.measurement, rec.identity.Public(), r.Nonce)
	if err != nil {
		return nil, err
	}
	ctx.Core.Charge(hw.CyclesPerRSA2048Sign)
	return AttestResp{Report: report, Chain: s.keys.Chain()}, nil
}

func (s *SecureOS) handleRebind(ctx *SecureContext, req any) (any, error) {
	r, ok := req.(RebindReq)
	if !ok {
		return nil, fmt.Errorf("trustzone: rebind: bad request type %T", req)
	}
	rec, err := s.record(r.Name)
	if err != nil {
		return nil, err
	}
	tz := s.soc.TZASC()
	if err := tz.Unprogram(hw.SecureWorld, rec.privRegionName()); err != nil {
		return nil, err
	}
	if err := tz.Unprogram(hw.SecureWorld, rec.swRegionName()); err != nil {
		return nil, err
	}
	rec.core = r.NewCore
	privAttr := hw.RegionAttr{NormalRead: true, NormalWrite: true, CoreLock: rec.core, NoDMA: true}
	if err := tz.Program(hw.SecureWorld, hw.Region{
		Name: rec.privRegionName(), Base: rec.base, Size: rec.privSize, Attr: privAttr,
	}); err != nil {
		return nil, err
	}
	swAttr := hw.RegionAttr{
		NormalRead: true, NormalWrite: true,
		SecureRead: true, SecureWrite: true,
		CoreLock: rec.core, NoDMA: true,
	}
	return nil, tz.Program(hw.SecureWorld, hw.Region{
		Name: rec.swRegionName(), Base: rec.swBase, Size: rec.swSize, Attr: swAttr,
	})
}

func (s *SecureOS) handleTeardown(ctx *SecureContext, req any) (any, error) {
	r, ok := req.(TeardownReq)
	if !ok {
		return nil, fmt.Errorf("trustzone: teardown: bad request type %T", req)
	}
	rec, err := s.record(r.Name)
	if err != nil {
		return nil, err
	}
	tz := s.soc.TZASC()
	// Scrub before unlock: retake the ranges as secure-only, zero them, then
	// drop the regions so the memory returns to the OS clean (§III-B step 4).
	for _, part := range []struct {
		name string
		base hw.PhysAddr
		size uint64
	}{
		{rec.privRegionName(), rec.base, rec.privSize},
		{rec.swRegionName(), rec.swBase, rec.swSize},
	} {
		if err := tz.Unprogram(hw.SecureWorld, part.name); err != nil {
			return nil, err
		}
		scrub := hw.RegionAttr{SecureRead: true, SecureWrite: true, CoreLock: hw.AnyCore, NoDMA: true}
		if err := tz.Program(hw.SecureWorld, hw.Region{Name: "scrub:" + part.name, Base: part.base, Size: part.size, Attr: scrub}); err != nil {
			return nil, err
		}
		s.soc.Mem().Zero(part.base, part.size)
		ctx.Core.Charge(part.size * hw.CyclesPerByteCopy)
		if err := tz.Unprogram(hw.SecureWorld, "scrub:"+part.name); err != nil {
			return nil, err
		}
		s.soc.L2().RemoveExclusion(part.base, part.size)
	}
	delete(s.enclaves, r.Name)
	return nil, nil
}

func (s *SecureOS) handlePeriphRead(ctx *SecureContext, req any) (any, error) {
	r, ok := req.(PeriphReadReq)
	if !ok {
		return nil, fmt.Errorf("trustzone: periph: bad request type %T", req)
	}
	rec, err := s.record(r.Name)
	if err != nil {
		return nil, err
	}
	// Only the enclave itself — identified by its bound core — may pull its
	// peripheral data ("After checking the permission rights of the SA",
	// §III-B).
	if ctx.Core.ID() != rec.core {
		return nil, fmt.Errorf("trustzone: periph read for %q from core %d, enclave bound to core %d",
			r.Name, ctx.Core.ID(), rec.core)
	}
	if r.Periph != hw.PeriphMicrophone {
		return nil, fmt.Errorf("trustzone: peripheral %q not available", r.Periph)
	}
	if !rec.allowMic {
		return nil, fmt.Errorf("trustzone: enclave %q lacks microphone permission", r.Name)
	}
	if uint64(r.N)*2 > rec.swSize {
		return nil, fmt.Errorf("trustzone: %d samples exceed shared buffer (%d bytes)", r.N, rec.swSize)
	}
	// Drain, encode and deposit in FIFO-burst-sized chunks through the
	// reused scratch: bulk reads (an enclave batching several utterances
	// per SMC) keep a cache-resident working set instead of staging the
	// whole transfer, so batched capture costs the same per byte as
	// utterance-sized capture.
	const micChunk = 8 << 10 // samples per chunk
	if cap(s.micSamples) < micChunk {
		s.micSamples = make([]int16, micChunk)
		s.micBytes = make([]byte, 2*micChunk)
	}
	got := 0
	for got < r.N {
		n := min(micChunk, r.N-got)
		moved, err := s.soc.ReadMicInto(ctx.Core, s.micSamples[:n])
		if err != nil {
			return nil, err
		}
		if moved == 0 {
			break
		}
		// Deposit PCM16 little-endian, packed from the window start.
		buf := s.micBytes[:moved*2]
		for i, v := range s.micSamples[:moved] {
			buf[2*i] = byte(uint16(v))
			buf[2*i+1] = byte(uint16(v) >> 8)
		}
		if err := s.soc.Write(ctx.Core, rec.swBase+hw.PhysAddr(got*2), buf); err != nil {
			return nil, fmt.Errorf("trustzone: depositing samples: %w", err)
		}
		got += moved
	}
	return PeriphReadResp{N: got}, nil
}
