package mpc

// BVec is an XOR-shared vector of 64-bit words: word[i] = P0[i] ^ P1[i].
// Each word packs the 64 bits of one ring element, so bitwise circuit
// evaluation (the GMW part of the protocol) is bit-sliced and cheap.
type BVec struct {
	P0, P1 []uint64
}

// NewBVec allocates a zero-shared boolean vector.
func NewBVec(n int) BVec {
	return BVec{P0: make([]uint64, n), P1: make([]uint64, n)}
}

// Len returns the vector length in words.
func (v BVec) Len() int { return len(v.P0) }

// Xor is the free XOR of shares (local).
func (v BVec) Xor(o BVec) BVec {
	out := NewBVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = v.P0[i] ^ o.P0[i]
		out.P1[i] = v.P1[i] ^ o.P1[i]
	}
	return out
}

// Shl shifts every shared word left by k bits (local).
func (v BVec) Shl(k uint) BVec {
	out := NewBVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = v.P0[i] << k
		out.P1[i] = v.P1[i] << k
	}
	return out
}

// Shr shifts every shared word right by k bits (local, logical).
func (v BVec) Shr(k uint) BVec {
	out := NewBVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = v.P0[i] >> k
		out.P1[i] = v.P1[i] >> k
	}
	return out
}

// openWords reconstructs the plaintext words without paying communication;
// for tests only.
func (v BVec) openWords() []uint64 {
	out := make([]uint64, v.Len())
	for i := range out {
		out[i] = v.P0[i] ^ v.P1[i]
	}
	return out
}

// AndVec computes the bitwise AND of two shared vectors with bit triples:
// open d = x^a and e = y^b (one combined round), then
// z = c ^ (d & b) ^ (e & a) ^ (d & e), the last term folded by P0.
func AndVec(net *Net, dealer *Dealer, x, y BVec) BVec {
	n := x.Len()
	a, b, c := dealer.BitTripleVec(n)
	out := NewBVec(n)
	// Opening d and e costs 8 bytes per word per value per direction.
	net.Round(2*n*8, 2*n*8)
	for i := 0; i < n; i++ {
		d := (x.P0[i] ^ a.P0[i]) ^ (x.P1[i] ^ a.P1[i])
		e := (y.P0[i] ^ b.P0[i]) ^ (y.P1[i] ^ b.P1[i])
		out.P0[i] = c.P0[i] ^ (d & b.P0[i]) ^ (e & a.P0[i]) ^ (d & e)
		out.P1[i] = c.P1[i] ^ (d & b.P1[i]) ^ (e & a.P1[i])
	}
	return out
}

// concatB concatenates two boolean share vectors (for batching two AND
// evaluations into one round).
func concatB(a, b BVec) BVec {
	out := NewBVec(a.Len() + b.Len())
	copy(out.P0, a.P0)
	copy(out.P0[a.Len():], b.P0)
	copy(out.P1, a.P1)
	copy(out.P1[a.Len():], b.P1)
	return out
}

func splitB(v BVec, n int) (BVec, BVec) {
	return BVec{P0: v.P0[:n], P1: v.P1[:n]}, BVec{P0: v.P0[n:], P1: v.P1[n:]}
}

// A2B converts arithmetic shares to boolean shares of the same values by
// evaluating a Kogge–Stone carry-lookahead adder over the two addends
// (P0's share and P1's share), each of which enters the circuit as a
// trivially XOR-shared input. Cost: 7 rounds (1 initial AND + 6 prefix
// levels), with both ANDs of each level batched into a single round.
func A2B(net *Net, dealer *Dealer, x AVec) BVec {
	n := x.Len()
	xa := BVec{P0: append([]uint64(nil), x.P0...), P1: make([]uint64, n)}
	xb := BVec{P0: make([]uint64, n), P1: append([]uint64(nil), x.P1...)}

	// Level 0: generate g = a&b, propagate p = a^b.
	g := AndVec(net, dealer, xa, xb)
	p := xa.Xor(xb)
	// Kogge–Stone prefix: the invariant g&p = 0 lets OR be XOR.
	for k := uint(1); k < 64; k <<= 1 {
		gk := g.Shl(k)
		pk := p.Shl(k)
		// Two ANDs per level, batched into one round: p&gk and p&pk.
		both := AndVec(net, dealer, concatB(p, p), concatB(gk, pk))
		pg, pp := splitB(both, n)
		g = g.Xor(pg)
		p = pp
	}
	// Carries enter one position left; sum = a ^ b ^ carries.
	carries := g.Shl(1)
	return xa.Xor(xb).Xor(carries)
}

// MSB extracts the sign bit of each shared ring element as an XOR-shared
// 0/1 word.
func MSB(net *Net, dealer *Dealer, x AVec) BVec {
	bits := A2B(net, dealer, x)
	return bits.Shr(63)
}

// B2A converts XOR-shared bits (0/1 words) to arithmetic shares:
// b = b0 + b1 − 2·b0·b1, with the cross term from one Beaver
// multiplication of the parties' locally-known bit values.
func B2A(net *Net, dealer *Dealer, bit BVec) AVec {
	n := bit.Len()
	b0 := make([]int64, n)
	b1 := make([]int64, n)
	for i := 0; i < n; i++ {
		b0[i] = int64(bit.P0[i] & 1)
		b1[i] = int64(bit.P1[i] & 1)
	}
	x := ShareKnownTo(0, b0)
	y := ShareKnownTo(1, b1)
	cross := MulVec(net, dealer, x, y)
	out := NewAVec(n)
	for i := 0; i < n; i++ {
		out.P0[i] = uint64(b0[i]) - 2*cross.P0[i]
		out.P1[i] = uint64(b1[i]) - 2*cross.P1[i]
	}
	return out
}
