package mpc

// ReLUVec computes ReLU(x) on shares: extract the sign bit with the boolean
// sub-protocol, convert it to arithmetic, and multiply:
// relu(x) = x · (1 − sign(x)). All elements of a layer run in parallel, so
// the round count is independent of the layer width — the property that
// makes rounds (and hence WAN RTT) the dominant latency term of E7.
func ReLUVec(net *Net, dealer *Dealer, x AVec) AVec {
	n := x.Len()
	sign := MSB(net, dealer, x)     // 7 rounds
	signA := B2A(net, dealer, sign) // 1 round
	// pos = 1 − sign.
	ones := make([]int64, n)
	for i := range ones {
		ones[i] = 1
	}
	pos := signA.Neg().AddConst(ones)
	return MulVec(net, dealer, x, pos) // 1 round
}
