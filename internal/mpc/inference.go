package mpc

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/intnet"
)

// Report tallies one secure inference.
type Report struct {
	Rounds           int
	BytesOnWire      int64
	SetupBytes       int64 // one-time weight-sharing traffic (amortized)
	ArithTripleElems int64
	BitTripleWords   int64
	Prediction       int
	LANTime          time.Duration
	WANTime          time.Duration
}

// Protocol is the two-party inference: the client (P1) holds the
// fingerprint, the server (P0) holds the model weights; the dealer supplies
// correlated randomness. Outputs (logits) open toward the client.
type Protocol struct {
	spec   *intnet.Spec
	dealer *Dealer
	r      *rand.Rand
	// wShared caches the one-time sharing of the server's weights.
	convW, fcW AVec
	setupBytes int64
}

// NewProtocol prepares a protocol instance for the model.
func NewProtocol(spec *intnet.Spec, seed int64) (*Protocol, error) {
	if spec == nil {
		return nil, fmt.Errorf("mpc: nil spec")
	}
	p := &Protocol{
		spec:   spec,
		dealer: NewDealer(seed),
		r:      rand.New(rand.NewSource(seed + 1)),
	}
	// One-time setup: the server shares its weights with the client. Each
	// element costs 8 bytes toward P1.
	p.convW = ShareVec(p.r, spec.ConvW)
	p.fcW = ShareVec(p.r, spec.FCW)
	p.setupBytes = int64(len(spec.ConvW)+len(spec.FCW)) * 8
	return p, nil
}

// Infer runs one secure inference over the fingerprint.
func (p *Protocol) Infer(features []uint8) (*Report, error) {
	spec := p.spec
	net := &Net{}
	tripleElems0 := p.dealer.ArithTripleElems
	bitWords0 := p.dealer.BitTripleWords

	// Round 1: the client shares its input (8 bytes per element to P0).
	x := ShareVec(p.r, spec.InputFromFeatures(features))
	net.Round(0, len(features)*8)

	conv := ConvSecure(net, p.dealer, spec, x, p.convW)
	relu := ReLUVec(net, p.dealer, conv)
	logits := FCSecure(net, p.dealer, spec, relu, p.fcW)

	// Final round: logits open toward the client.
	vals := logits.Open(net)
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	rep := &Report{
		Rounds:           net.Rounds(),
		BytesOnWire:      net.TotalBytes(),
		SetupBytes:       p.setupBytes,
		ArithTripleElems: p.dealer.ArithTripleElems - tripleElems0,
		BitTripleWords:   p.dealer.BitTripleWords - bitWords0,
		Prediction:       best,
		LANTime:          net.TimeOn(LAN()),
		WANTime:          net.TimeOn(WAN()),
	}
	return rep, nil
}
