// Package mpc implements the secure multi-party computation baseline the
// OMG paper argues against (§II-A): a two-party semi-honest protocol for
// tiny_conv inference built from additive secret sharing over Z_2^64,
// Beaver multiplication triples from a trusted dealer (the "semi-trusted
// third party" design of Chameleon [20]), and GMW-style boolean circuits
// with a Kogge–Stone adder for the sign extraction inside ReLU.
//
// The paper's claim — "the amount and the frequency of required network
// communication is the bottleneck for SMPC protocols" — becomes experiment
// E7: the protocol counts every round and byte, and projects wall-clock
// time onto LAN and WAN link profiles.
//
// The simulation executes both parties in lockstep inside one process and
// draws correlated randomness from a seeded PRG; it is structurally
// faithful (who sends what, when) but not a hardened implementation.
package mpc

import (
	"fmt"
	"time"
)

// Net counts the synchronous communication of the two parties.
type Net struct {
	rounds   int
	p0to1    int64
	p1to0    int64
	openElem int64 // total ring elements opened (diagnostics)
}

// Round records one synchronous exchange with the given payload sizes in
// bytes. Simultaneous sends in both directions count as a single round, as
// in the standard MPC cost model.
func (n *Net) Round(p0to1, p1to0 int) {
	n.rounds++
	n.p0to1 += int64(p0to1)
	n.p1to0 += int64(p1to0)
}

// Rounds returns the number of communication rounds so far.
func (n *Net) Rounds() int { return n.rounds }

// TotalBytes returns all bytes on the wire (both directions).
func (n *Net) TotalBytes() int64 { return n.p0to1 + n.p1to0 }

// Reset clears the counters.
func (n *Net) Reset() { *n = Net{} }

// LinkProfile turns round/byte counts into wall-clock time.
type LinkProfile struct {
	Name         string
	RTT          time.Duration
	BandwidthBps float64
}

// LAN is a 1 Gbit/s, 0.2 ms RTT local network.
func LAN() LinkProfile {
	return LinkProfile{Name: "LAN", RTT: 200 * time.Microsecond, BandwidthBps: 1e9}
}

// WAN is a 10 Mbit/s, 50 ms RTT wide-area link — the mobile scenario the
// paper targets.
func WAN() LinkProfile {
	return LinkProfile{Name: "WAN", RTT: 50 * time.Millisecond, BandwidthBps: 10e6}
}

// TimeOn estimates protocol latency on a link: one RTT per round plus
// serialization of every byte.
func (n *Net) TimeOn(p LinkProfile) time.Duration {
	if p.BandwidthBps <= 0 {
		return time.Duration(n.rounds) * p.RTT
	}
	ser := time.Duration(float64(n.TotalBytes()) * 8 / p.BandwidthBps * float64(time.Second))
	return time.Duration(n.rounds)*p.RTT + ser
}

// String summarizes the tallies.
func (n *Net) String() string {
	return fmt.Sprintf("%d rounds, %d bytes (P0→P1 %d, P1→P0 %d)", n.rounds, n.TotalBytes(), n.p0to1, n.p1to0)
}
