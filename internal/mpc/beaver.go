package mpc

import "repro/internal/intnet"

// MulVec multiplies two shared vectors element-wise with Beaver triples:
// open d = x−a and e = y−b (one combined round), then
// z = c + d·b + e·a + d·e, the last term added publicly by P0.
func MulVec(net *Net, d *Dealer, x, y AVec) AVec {
	n := x.Len()
	a, b, c := d.TripleVec(n)
	dv := x.Sub(a)
	ev := y.Sub(b)
	// Both differences open in a single synchronous round.
	net.Round(2*n*8, 2*n*8)
	dPub := dv.openValues()
	ePub := ev.openValues()
	out := NewAVec(n)
	for i := 0; i < n; i++ {
		du := uint64(dPub[i])
		eu := uint64(ePub[i])
		out.P0[i] = c.P0[i] + du*b.P0[i] + eu*a.P0[i] + du*eu
		out.P1[i] = c.P1[i] + du*b.P1[i] + eu*a.P1[i]
	}
	return out
}

// ConvSecure evaluates the convolution on shares using a convolution
// triple and the bilinearity of conv:
//
//	conv(x, w) = conv(d, e) + conv(d, B) + conv(A, e) + C
//
// with d = x−A, e = w−B opened publicly (one round). The model bias is a
// public-to-P0 constant folded in locally.
func ConvSecure(net *Net, dealer *Dealer, spec *intnet.Spec, x, w AVec) AVec {
	a, b, c := dealer.ConvTriple(spec)
	dv := x.Sub(a)
	ev := w.Sub(b)
	n := dv.Len() + ev.Len()
	net.Round(n*8, n*8)
	dPub := dv.openValues()
	ePub := ev.openValues()

	out := NewAVec(spec.FlatLen)
	// Party-0 share: conv(d,e) + conv(d, B0) + conv(A0, e) + C0 + bias.
	p0 := spec.ConvWith(dPub, ePub, spec.ConvB)
	p0b := spec.ConvWith(dPub, asInt64(b.P0), nil)
	p0a := spec.ConvWith(asInt64(a.P0), ePub, nil)
	// Party-1 share: conv(d, B1) + conv(A1, e) + C1.
	p1b := spec.ConvWith(dPub, asInt64(b.P1), nil)
	p1a := spec.ConvWith(asInt64(a.P1), ePub, nil)
	for i := 0; i < spec.FlatLen; i++ {
		out.P0[i] = uint64(p0[i]) + uint64(p0b[i]) + uint64(p0a[i]) + c.P0[i]
		out.P1[i] = uint64(p1b[i]) + uint64(p1a[i]) + c.P1[i]
	}
	return out
}

// FCSecure evaluates the fully connected layer on shares with a matrix
// triple, analogous to ConvSecure.
func FCSecure(net *Net, dealer *Dealer, spec *intnet.Spec, flat, w AVec) AVec {
	a, b, c := dealer.FCTriple(spec)
	dv := flat.Sub(a)
	ev := w.Sub(b)
	n := dv.Len() + ev.Len()
	net.Round(n*8, n*8)
	dPub := dv.openValues()
	ePub := ev.openValues()

	out := NewAVec(spec.NumClasses)
	p0 := spec.FCWith(dPub, ePub, spec.FCB)
	p0b := spec.FCWith(dPub, asInt64(b.P0), nil)
	p0a := spec.FCWith(asInt64(a.P0), ePub, nil)
	p1b := spec.FCWith(dPub, asInt64(b.P1), nil)
	p1a := spec.FCWith(asInt64(a.P1), ePub, nil)
	for i := 0; i < spec.NumClasses; i++ {
		out.P0[i] = uint64(p0[i]) + uint64(p0b[i]) + uint64(p0a[i]) + c.P0[i]
		out.P1[i] = uint64(p1b[i]) + uint64(p1a[i]) + c.P1[i]
	}
	return out
}

func asInt64(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}
