package mpc

import "math/rand"

// AVec is an additively shared vector over Z_2^64: value[i] = P0[i] + P1[i]
// (mod 2^64). The simulation holds both parties' shares; protocol code only
// ever combines them through Open, which pays communication.
type AVec struct {
	P0, P1 []uint64
}

// Len returns the vector length.
func (v AVec) Len() int { return len(v.P0) }

// NewAVec allocates a zero-shared vector.
func NewAVec(n int) AVec {
	return AVec{P0: make([]uint64, n), P1: make([]uint64, n)}
}

// ShareVec splits plaintext values into fresh additive shares using r.
func ShareVec(r *rand.Rand, xs []int64) AVec {
	v := NewAVec(len(xs))
	for i, x := range xs {
		s0 := r.Uint64()
		v.P0[i] = s0
		v.P1[i] = uint64(x) - s0
	}
	return v
}

// ShareKnownTo creates shares of values known in clear to one party: that
// party holds the value, the other holds zero. No communication needed.
func ShareKnownTo(party int, xs []int64) AVec {
	v := NewAVec(len(xs))
	for i, x := range xs {
		if party == 0 {
			v.P0[i] = uint64(x)
		} else {
			v.P1[i] = uint64(x)
		}
	}
	return v
}

// Open reconstructs the plaintext: both parties exchange shares (one round,
// 8 bytes per element per direction).
func (v AVec) Open(net *Net) []int64 {
	n := v.Len()
	net.Round(n*8, n*8)
	net.openElem += int64(n)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = int64(v.P0[i] + v.P1[i])
	}
	return out
}

// openValues reconstructs without charging the network; used internally by
// the dealer and tests, never by protocol steps.
func (v AVec) openValues() []int64 {
	out := make([]int64, v.Len())
	for i := range out {
		out[i] = int64(v.P0[i] + v.P1[i])
	}
	return out
}

// Add returns the element-wise sum of two shared vectors (local).
func (v AVec) Add(o AVec) AVec {
	out := NewAVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = v.P0[i] + o.P0[i]
		out.P1[i] = v.P1[i] + o.P1[i]
	}
	return out
}

// Sub returns the element-wise difference (local).
func (v AVec) Sub(o AVec) AVec {
	out := NewAVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = v.P0[i] - o.P0[i]
		out.P1[i] = v.P1[i] - o.P1[i]
	}
	return out
}

// AddConst adds public constants (P0 adjusts its share; local).
func (v AVec) AddConst(cs []int64) AVec {
	out := NewAVec(v.Len())
	copy(out.P1, v.P1)
	for i := range out.P0 {
		out.P0[i] = v.P0[i] + uint64(cs[i])
	}
	return out
}

// Neg returns the element-wise negation (local).
func (v AVec) Neg() AVec {
	out := NewAVec(v.Len())
	for i := range out.P0 {
		out.P0[i] = -v.P0[i]
		out.P1[i] = -v.P1[i]
	}
	return out
}
