package mpc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/intnet"
	"repro/internal/tflm"
)

func TestShareOpenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		net := &Net{}
		v := ShareVec(r, xs)
		got := v.Open(net)
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return net.Rounds() == 1 && net.TotalBytes() == int64(len(xs)*16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocalArithmeticOnShares(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := []int64{5, -7, 1 << 40, -(1 << 50)}
	ys := []int64{3, 9, -(1 << 39), 1 << 20}
	x := ShareVec(r, xs)
	y := ShareVec(r, ys)
	sum := x.Add(y).openValues()
	diff := x.Sub(y).openValues()
	neg := x.Neg().openValues()
	withC := x.AddConst([]int64{1, 1, 1, 1}).openValues()
	for i := range xs {
		if sum[i] != xs[i]+ys[i] || diff[i] != xs[i]-ys[i] || neg[i] != -xs[i] || withC[i] != xs[i]+1 {
			t.Fatalf("element %d: got %d %d %d %d", i, sum[i], diff[i], neg[i], withC[i])
		}
	}
}

func TestBeaverMulVec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dealer := NewDealer(seed + 7)
		net := &Net{}
		n := 1 + r.Intn(20)
		xs := make([]int64, n)
		ys := make([]int64, n)
		for i := 0; i < n; i++ {
			xs[i] = int64(r.Uint64())
			ys[i] = int64(r.Uint64())
		}
		z := MulVec(net, dealer, ShareVec(r, xs), ShareVec(r, ys)).openValues()
		for i := 0; i < n; i++ {
			if z[i] != xs[i]*ys[i] {
				return false
			}
		}
		return net.Rounds() == 1 // batched element-wise multiply: one round
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAndVec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dealer := NewDealer(seed)
		net := &Net{}
		n := 1 + r.Intn(10)
		x := NewBVec(n)
		y := NewBVec(n)
		wantX := make([]uint64, n)
		wantY := make([]uint64, n)
		for i := 0; i < n; i++ {
			wantX[i] = r.Uint64()
			wantY[i] = r.Uint64()
			x.P0[i] = r.Uint64()
			x.P1[i] = wantX[i] ^ x.P0[i]
			y.P0[i] = r.Uint64()
			y.P1[i] = wantY[i] ^ y.P0[i]
		}
		z := AndVec(net, dealer, x, y).openWords()
		for i := 0; i < n; i++ {
			if z[i] != wantX[i]&wantY[i] {
				return false
			}
		}
		return net.Rounds() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestA2BMatchesAddition: the Kogge–Stone adder on shares must reproduce
// ring addition bit-exactly, including carries and negative values.
func TestA2BMatchesAddition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dealer := NewDealer(seed ^ 0x5a)
		net := &Net{}
		n := 1 + r.Intn(8)
		xs := make([]int64, n)
		for i := range xs {
			switch r.Intn(4) {
			case 0:
				xs[i] = int64(r.Uint64()) // full range
			case 1:
				xs[i] = int64(r.Intn(1000) - 500)
			case 2:
				xs[i] = -1
			default:
				xs[i] = 0
			}
		}
		bits := A2B(net, dealer, ShareVec(r, xs)).openWords()
		for i := range xs {
			if bits[i] != uint64(xs[i]) {
				return false
			}
		}
		// 1 initial AND + 6 prefix levels = 7 rounds.
		return net.Rounds() == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSBAndB2A(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dealer := NewDealer(99)
	net := &Net{}
	xs := []int64{1, -1, 0, 1 << 62, -(1 << 62), 12345, -99999}
	sign := MSB(net, dealer, ShareVec(r, xs))
	signA := B2A(net, dealer, sign).openValues()
	for i, x := range xs {
		want := int64(0)
		if x < 0 {
			want = 1
		}
		if signA[i] != want {
			t.Fatalf("sign(%d) = %d, want %d", x, signA[i], want)
		}
	}
}

func TestReLUVec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dealer := NewDealer(seed + 13)
		net := &Net{}
		n := 1 + r.Intn(12)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(r.Intn(1<<30) - 1<<29)
		}
		got := ReLUVec(net, dealer, ShareVec(r, xs)).openValues()
		for i, x := range xs {
			want := x
			if want < 0 {
				want = 0
			}
			if got[i] != want {
				return false
			}
		}
		// Rounds independent of n: 7 (MSB) + 1 (B2A) + 1 (mult) = 9.
		return net.Rounds() == 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// miniSpec builds a small integer network directly.
func miniSpec(t *testing.T) *intnet.Spec {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	b := tflm.NewBuilder("mini", 1)
	inQ := tflm.QuantParams{Scale: 1.0 / 128, ZeroPoint: 0}
	in := b.Tensor(&tflm.Tensor{Name: "in", Type: tflm.Int8, Shape: []int{1, 6, 5, 1}, Quant: &inQ})
	b.Input(in)
	wQ := tflm.SymmetricWeightParams(0.5)
	w := &tflm.Tensor{Name: "w", Type: tflm.Int8, Shape: []int{2, 3, 3, 1}, Quant: &wQ}
	w.Alloc()
	for i := range w.I8 {
		w.I8[i] = int8(r.Intn(200) - 100)
	}
	bias := &tflm.Tensor{Name: "b", Type: tflm.Int32, Shape: []int{2}, Quant: &tflm.QuantParams{Scale: inQ.Scale * wQ.Scale}}
	bias.Alloc()
	bias.I32[0], bias.I32[1] = 17, -9
	wi, bi := b.Const(w), b.Const(bias)
	convQ := tflm.QuantParams{Scale: 0.05, ZeroPoint: -128}
	conv := b.Tensor(&tflm.Tensor{Name: "conv", Type: tflm.Int8, Shape: []int{1, 3, 3, 2}, Quant: &convQ})
	b.Node(tflm.OpConv2D, tflm.Conv2DParams{StrideH: 2, StrideW: 2, Padding: tflm.PaddingSame, Activation: tflm.ActReLU},
		[]int{in, wi, bi}, []int{conv})
	flat := b.Tensor(&tflm.Tensor{Name: "flat", Type: tflm.Int8, Shape: []int{1, 18}, Quant: &convQ})
	b.Node(tflm.OpReshape, tflm.ReshapeParams{NewShape: []int{1, 18}}, []int{conv}, []int{flat})
	fcWQ := tflm.SymmetricWeightParams(0.25)
	fcW := &tflm.Tensor{Name: "fcw", Type: tflm.Int8, Shape: []int{3, 18}, Quant: &fcWQ}
	fcW.Alloc()
	for i := range fcW.I8 {
		fcW.I8[i] = int8(r.Intn(200) - 100)
	}
	fcB := &tflm.Tensor{Name: "fcb", Type: tflm.Int32, Shape: []int{3}, Quant: &tflm.QuantParams{Scale: convQ.Scale * fcWQ.Scale}}
	fcB.Alloc()
	fwi, fbi := b.Const(fcW), b.Const(fcB)
	logitQ := tflm.QuantParams{Scale: 0.5, ZeroPoint: 0}
	logits := b.Tensor(&tflm.Tensor{Name: "logits", Type: tflm.Int8, Shape: []int{1, 3}, Quant: &logitQ})
	b.Node(tflm.OpFullyConnected, tflm.FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})
	b.Output(logits)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := intnet.FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestConvAndFCSecureMatchPlain(t *testing.T) {
	spec := miniSpec(t)
	r := rand.New(rand.NewSource(4))
	dealer := NewDealer(5)
	net := &Net{}
	x := make([]int64, spec.InputLn)
	for i := range x {
		x[i] = int64(r.Intn(256) - 128)
	}
	xs := ShareVec(r, x)
	ws := ShareVec(r, spec.ConvW)
	conv := ConvSecure(net, dealer, spec, xs, ws).openValues()
	want := spec.Conv(x)
	for i := range want {
		if conv[i] != want[i] {
			t.Fatalf("conv[%d] = %d, want %d", i, conv[i], want[i])
		}
	}
	// FC on the (pre-ReLU) conv outputs for a pure linear check.
	flatShares := ShareVec(r, want)
	fcWs := ShareVec(r, spec.FCW)
	got := FCSecure(net, dealer, spec, flatShares, fcWs).openValues()
	wantFC := spec.FC(want)
	for i := range wantFC {
		if got[i] != wantFC[i] {
			t.Fatalf("fc[%d] = %d, want %d", i, got[i], wantFC[i])
		}
	}
}

// TestSecureInferenceMatchesPlainReference is the end-to-end equality gate:
// the 2PC evaluation must reproduce the plaintext integer network exactly.
func TestSecureInferenceMatchesPlainReference(t *testing.T) {
	spec := miniSpec(t)
	proto, err := NewProtocol(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		features := make([]uint8, spec.InputLn)
		for i := range features {
			features[i] = uint8(r.Intn(256))
		}
		rep, err := proto.Infer(features)
		if err != nil {
			t.Fatal(err)
		}
		_, want := spec.Forward(spec.InputFromFeatures(features))
		if rep.Prediction != want {
			t.Fatalf("trial %d: MPC predicted %d, plaintext %d", trial, rep.Prediction, want)
		}
		// Round budget: 1 input + 1 conv + 9 ReLU + 1 fc + 1 open = 13.
		if rep.Rounds != 13 {
			t.Fatalf("rounds = %d, want 13", rep.Rounds)
		}
		if rep.BytesOnWire <= 0 || rep.ArithTripleElems <= 0 || rep.BitTripleWords <= 0 {
			t.Fatal("accounting empty")
		}
		if rep.WANTime <= rep.LANTime {
			t.Fatal("WAN not slower than LAN")
		}
	}
}

func TestNetTimeModel(t *testing.T) {
	net := &Net{}
	net.Round(1000, 1000)
	net.Round(0, 0)
	lan := net.TimeOn(LAN())
	wan := net.TimeOn(WAN())
	if lan >= wan {
		t.Fatalf("LAN %v not faster than WAN %v", lan, wan)
	}
	if net.Rounds() != 2 || net.TotalBytes() != 2000 {
		t.Fatalf("accounting: %s", net.String())
	}
	zero := LinkProfile{Name: "rounds-only", RTT: time.Duration(1e6)}
	if net.TimeOn(zero) != 2*time.Duration(1e6) {
		t.Fatal("zero-bandwidth profile mishandled")
	}
	net.Reset()
	if net.Rounds() != 0 || net.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}
