package mpc

import (
	"math/rand"

	"repro/internal/intnet"
)

// Dealer is the semi-honest correlated-randomness provider (Chameleon's
// "semi-trusted third party"): it pre-distributes Beaver triples during an
// offline phase and never sees protocol inputs. The report tracks how much
// randomness the online phase consumed so E7 can cost the offline phase.
type Dealer struct {
	r *rand.Rand
	// Tallies of generated material, in ring elements / bit-words.
	ArithTripleElems int64
	BitTripleWords   int64
}

// NewDealer seeds a dealer.
func NewDealer(seed int64) *Dealer {
	return &Dealer{r: rand.New(rand.NewSource(seed))}
}

func (d *Dealer) shareVals(xs []int64) AVec {
	return ShareVec(d.r, xs)
}

// TripleVec emits n element-wise Beaver triples (a, b, c) with c = a·b.
func (d *Dealer) TripleVec(n int) (a, b, c AVec) {
	av := make([]int64, n)
	bv := make([]int64, n)
	cv := make([]int64, n)
	for i := 0; i < n; i++ {
		av[i] = int64(d.r.Uint64())
		bv[i] = int64(d.r.Uint64())
		cv[i] = av[i] * bv[i] // wraps mod 2^64, as intended
	}
	d.ArithTripleElems += int64(3 * n)
	return d.shareVals(av), d.shareVals(bv), d.shareVals(cv)
}

// ConvTriple emits a convolution triple for the spec's geometry:
// A input-shaped, B weight-shaped, C = conv(A, B). Convolution triples cost
// |in|+|w|+|out| elements instead of one triple per MAC, the standard
// optimization for secure linear layers.
func (d *Dealer) ConvTriple(spec *intnet.Spec) (a, b, c AVec) {
	av := make([]int64, spec.InputLn)
	bv := make([]int64, len(spec.ConvW))
	for i := range av {
		av[i] = int64(d.r.Uint64())
	}
	for i := range bv {
		bv[i] = int64(d.r.Uint64())
	}
	cv := spec.ConvWith(av, bv, nil)
	d.ArithTripleElems += int64(len(av) + len(bv) + len(cv))
	return d.shareVals(av), d.shareVals(bv), d.shareVals(cv)
}

// FCTriple emits a matrix triple for the fully connected layer:
// A flat-shaped, B weight-shaped, C = B·A.
func (d *Dealer) FCTriple(spec *intnet.Spec) (a, b, c AVec) {
	av := make([]int64, spec.FlatLen)
	bv := make([]int64, len(spec.FCW))
	for i := range av {
		av[i] = int64(d.r.Uint64())
	}
	for i := range bv {
		bv[i] = int64(d.r.Uint64())
	}
	cv := spec.FCWith(av, bv, nil)
	d.ArithTripleElems += int64(len(av) + len(bv) + len(cv))
	return d.shareVals(av), d.shareVals(bv), d.shareVals(cv)
}

// BitTripleVec emits n bitwise AND triples on 64-bit words, XOR-shared:
// c = a & b.
func (d *Dealer) BitTripleVec(n int) (a, b, c BVec) {
	a = NewBVec(n)
	b = NewBVec(n)
	c = NewBVec(n)
	for i := 0; i < n; i++ {
		av := d.r.Uint64()
		bv := d.r.Uint64()
		cv := av & bv
		a0 := d.r.Uint64()
		b0 := d.r.Uint64()
		c0 := d.r.Uint64()
		a.P0[i], a.P1[i] = a0, av^a0
		b.P0[i], b.P1[i] = b0, bv^b0
		c.P0[i], c.P1[i] = c0, cv^c0
	}
	d.BitTripleWords += int64(3 * n)
	return a, b, c
}
