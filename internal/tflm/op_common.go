package tflm

import (
	"fmt"
	"math"
)

// convOutputSize computes one spatial output dimension and the leading
// padding, with TensorFlow SAME/VALID semantics.
func convOutputSize(in, filter, stride int, pad Padding) (out, padBefore int) {
	switch pad {
	case PaddingSame:
		out = (in + stride - 1) / stride
		total := (out-1)*stride + filter - in
		if total < 0 {
			total = 0
		}
		padBefore = total / 2
	default: // PaddingValid
		out = (in-filter)/stride + 1
		padBefore = 0
	}
	return out, padBefore
}

// activationRangeQuantized returns the int8 clamp range implementing a fused
// activation under the output quantization.
func activationRangeQuantized(act Activation, q QuantParams) (lo, hi int32) {
	lo, hi = -128, 127
	switch act {
	case ActReLU:
		if q.ZeroPoint > lo {
			lo = q.ZeroPoint
		}
	case ActReLU6:
		if q.ZeroPoint > lo {
			lo = q.ZeroPoint
		}
		upper := q.ZeroPoint + int32(math.Round(6/q.Scale))
		if upper < hi {
			hi = upper
		}
	}
	return lo, hi
}

// activationApplyFloat applies a fused activation in the float domain.
func activationApplyFloat(act Activation, x float32) float32 {
	switch act {
	case ActReLU:
		if x < 0 {
			return 0
		}
	case ActReLU6:
		if x < 0 {
			return 0
		}
		if x > 6 {
			return 6
		}
	}
	return x
}

// wantQuant asserts a tensor carries quantization parameters.
func wantQuant(t *Tensor) error {
	if t.Quant == nil {
		return fmt.Errorf("tflm: tensor %q lacks quantization parameters", t.Name)
	}
	return nil
}

// requantMultiplier builds the accumulator→output multiplier
// inScale·wScale/outScale used by conv and FC.
func requantMultiplier(in, w, out *Tensor) (QuantizedMultiplier, error) {
	for _, t := range []*Tensor{in, w, out} {
		if err := wantQuant(t); err != nil {
			return QuantizedMultiplier{}, err
		}
	}
	return NewQuantizedMultiplier(in.Quant.Scale * w.Quant.Scale / out.Quant.Scale)
}
