package tflm

import "fmt"

// Optimized linear-algebra hot path: Conv2D and FullyConnected are lowered
// onto one blocked GEMM primitive over im2col-packed patches. The packer
// absorbs all padding handling (border patches are filled with the input
// zero point, interior rows are contiguous copies), so the MAC loops carry
// no bounds checks or zero-point subtractions. Per-filter zero-point
// corrections acc0[oc] = bias[oc] - inZP·Σw[oc] are precomputed once, which
// is exact because int32 accumulation is associative modulo 2^32.
//
// Every kernel here is bit-exact with its scalar reference in op_ref.go;
// kernels_equiv_test.go enforces that over randomized geometries.

// convGeom is the resolved geometry of one convolution, computed once at
// prep time instead of per Invoke.
type convGeom struct {
	batches, inH, inW, inC int
	outC, kH, kW           int
	outH, outW             int
	padT, padL             int
	strideH, strideW       int
	// K is the im2col depth kH·kW·inC; M is outH·outW patches per batch.
	K, M int
}

// colLen returns the im2col scratch length for one batch.
func (g convGeom) colLen() int { return g.M * g.K }

func resolveConvGeom(in, w, out *Tensor, p Conv2DParams) (convGeom, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return convGeom{}, fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(0), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	g.K = g.kH * g.kW * g.inC
	g.M = g.outH * g.outW
	return g, nil
}

// linearPrep carries the plan-time constants of one int8 linear op: the
// requantization multiplier, the clamp range, and the per-output-channel
// accumulator seeds with bias and zero-point correction folded in.
type linearPrep struct {
	mult       QuantizedMultiplier
	outZP      int32
	lo, hi     int32
	inZP       int32
	acc0       []int32
	activation Activation
}

// prepLinearInt8 builds the prep for a weight matrix laid out as N rows of
// length K (Conv2D OHWI filters flattened, or FullyConnected [out, in]).
func prepLinearInt8(in, w, bias, out *Tensor, act Activation, n, k int) (*linearPrep, error) {
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < n*k {
		return nil, fmt.Errorf("tflm: weight tensor %q has %d elements, want %d", w.Name, len(w.I8), n*k)
	}
	if len(bias.I32) < n {
		return nil, fmt.Errorf("tflm: bias tensor %q has %d elements, want %d", bias.Name, len(bias.I32), n)
	}
	lo, hi := activationRangeQuantized(act, *out.Quant)
	pr := &linearPrep{
		mult:       mult,
		outZP:      out.Quant.ZeroPoint,
		lo:         lo,
		hi:         hi,
		inZP:       in.Quant.ZeroPoint,
		acc0:       make([]int32, n),
		activation: act,
	}
	for o := 0; o < n; o++ {
		var sum int32
		for _, v := range w.I8[o*k : (o+1)*k] {
			sum += int32(v)
		}
		pr.acc0[o] = bias.I32[o] - pr.inZP*sum
	}
	return pr, nil
}

// im2col packs the receptive fields of one batch into col, one patch per
// GEMM row in (ky, kx, ic) order. Out-of-bounds positions are filled with
// the input zero point (int8) or zero (float32), making padded patches
// behave exactly like interior ones under the corrected accumulator seeds.
// Interior rows reduce to contiguous copies.
func im2col[T int8 | float32](col, src []T, g convGeom, b int, fill T) {
	rowLen := g.kW * g.inC
	m := 0
	for oy := 0; oy < g.outH; oy++ {
		iy0 := oy*g.strideH - g.padT
		for ox := 0; ox < g.outW; ox++ {
			ix0 := ox*g.strideW - g.padL
			patch := col[m*g.K : (m+1)*g.K]
			for ky := 0; ky < g.kH; ky++ {
				iy := iy0 + ky
				row := patch[ky*rowLen : (ky+1)*rowLen]
				if iy < 0 || iy >= g.inH {
					fillSlice(row, fill)
					continue
				}
				// Clip kx to the valid input columns [0, inW).
				kxLo, kxHi := 0, g.kW
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+g.kW > g.inW {
					kxHi = g.inW - ix0
				}
				if kxHi <= kxLo {
					fillSlice(row, fill)
					continue
				}
				fillSlice(row[:kxLo*g.inC], fill)
				srcBase := ((b*g.inH+iy)*g.inW + ix0 + kxLo) * g.inC
				copy(row[kxLo*g.inC:kxHi*g.inC], src[srcBase:srcBase+(kxHi-kxLo)*g.inC])
				fillSlice(row[kxHi*g.inC:], fill)
			}
			m++
		}
	}
}

func fillSlice[T int8 | float32](s []T, v T) {
	for i := range s {
		s[i] = v
	}
}

// dotInt8 is the int8×int8→int32 dot product, 4-way unrolled. Partial sums
// reassociate freely: int32 addition is commutative modulo 2^32, so the
// result is bit-identical to in-order accumulation.
func dotInt8(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// gemmInt8Requant computes dst[m*n] = requant(acc0[n] + A[m]·B[n]) where A
// is M rows of K packed patches and B is N rows of K weights. The A row is
// register/L1-resident across the N dot products (the blocking that
// matters at these sizes); requantization and activation clamping are fused
// into the output write.
func gemmInt8Requant(mRows, nRows, k int, a, b []int8, dst []int8, pr *linearPrep) {
	for m := 0; m < mRows; m++ {
		ar := a[m*k : (m+1)*k]
		drow := dst[m*nRows : (m+1)*nRows]
		for n := 0; n < nRows; n++ {
			acc := pr.acc0[n] + dotInt8(ar, b[n*k:(n+1)*k])
			drow[n] = int8(clampInt32(pr.mult.Apply(acc)+pr.outZP, pr.lo, pr.hi))
		}
	}
}

// gemmFloat computes dst[m*n] = act(bias[n] + A[m]·B[n]). Each accumulator
// adds its K products strictly in order, so results match the scalar
// reference bit-for-bit (padded positions contribute exact zeros); the
// 4-row blocking over B only shares the A row, it never reassociates sums.
func gemmFloat(mRows, nRows, k int, a, b, bias []float32, act Activation, dst []float32) {
	for m := 0; m < mRows; m++ {
		ar := a[m*k : (m+1)*k]
		drow := dst[m*nRows : (m+1)*nRows]
		n := 0
		for ; n <= nRows-4; n += 4 {
			b0 := b[n*k : (n+1)*k]
			b1 := b[(n+1)*k : (n+2)*k]
			b2 := b[(n+2)*k : (n+3)*k]
			b3 := b[(n+3)*k : (n+4)*k]
			acc0, acc1, acc2, acc3 := bias[n], bias[n+1], bias[n+2], bias[n+3]
			for i, av := range ar {
				acc0 += av * b0[i]
				acc1 += av * b1[i]
				acc2 += av * b2[i]
				acc3 += av * b3[i]
			}
			drow[n] = activationApplyFloat(act, acc0)
			drow[n+1] = activationApplyFloat(act, acc1)
			drow[n+2] = activationApplyFloat(act, acc2)
			drow[n+3] = activationApplyFloat(act, acc3)
		}
		for ; n < nRows; n++ {
			br := b[n*k : (n+1)*k]
			acc := bias[n]
			for i, av := range ar {
				acc += av * br[i]
			}
			drow[n] = activationApplyFloat(act, acc)
		}
	}
}

// convInt8Gemm runs the full int8 convolution: per batch, im2col into col
// then one fused GEMM into the output tensor.
func convInt8Gemm(in, w, out *Tensor, g convGeom, pr *linearPrep, col []int8) {
	zpFill := int8(pr.inZP) // int8 zero points are in [-128, 127] by construction
	for b := 0; b < g.batches; b++ {
		im2col(col[:g.colLen()], in.I8, g, b, zpFill)
		gemmInt8Requant(g.M, g.outC, g.K, col, w.I8, out.I8[b*g.M*g.outC:(b+1)*g.M*g.outC], pr)
	}
}

// convFloatGemm is the float32 counterpart of convInt8Gemm.
func convFloatGemm(in, w, bias, out *Tensor, g convGeom, act Activation, col []float32) {
	for b := 0; b < g.batches; b++ {
		im2col(col[:g.colLen()], in.F32, g, b, 0)
		gemmFloat(g.M, g.outC, g.K, col, w.F32, bias.F32, act, out.F32[b*g.M*g.outC:(b+1)*g.M*g.outC])
	}
}

// depthwisePrep is the plan-time state of an int8 DepthwiseConv2D: geometry
// plus per-channel zero-point corrections (the filter layout is [1, kH, kW,
// outC], so the weight sums stride by outC rather than being row-major).
type depthwisePrep struct {
	g   convGeom
	lp  linearPrep
	mul int // depth multiplier
}

func prepDepthwiseInt8(in, w, bias, out *Tensor, p Conv2DParams) (*depthwisePrep, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	mul := p.DepthMultiplier
	if mul <= 0 {
		mul = 1
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(3), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	if g.outC != g.inC*mul {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D filter channels %d != %d*%d", g.outC, g.inC, mul)
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	if in.Type != Int8 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D unsupported input type %v", in.Type)
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < g.kH*g.kW*g.outC {
		return nil, fmt.Errorf("tflm: depthwise weight tensor %q too small", w.Name)
	}
	if len(bias.I32) < g.outC {
		return nil, fmt.Errorf("tflm: depthwise bias tensor %q too small", bias.Name)
	}
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
	dp := &depthwisePrep{
		g:   g,
		mul: mul,
		lp: linearPrep{
			mult:  mult,
			outZP: out.Quant.ZeroPoint,
			lo:    lo,
			hi:    hi,
			inZP:  in.Quant.ZeroPoint,
			acc0:  make([]int32, g.outC),
		},
	}
	for oc := 0; oc < g.outC; oc++ {
		var sum int32
		for i := 0; i < g.kH*g.kW; i++ {
			sum += int32(w.I8[i*g.outC+oc])
		}
		dp.lp.acc0[oc] = bias.I32[oc] - dp.lp.inZP*sum
	}
	return dp, nil
}

// depthwiseInt8Opt evaluates an int8 DepthwiseConv2D with the padding-free
// interior split from the border: interior windows run branchless strided
// MAC loops seeded with the precomputed corrections; border windows fall
// back to reference-style skip-and-subtract accumulation (bit-identical,
// both equal the true sum modulo 2^32).
func depthwiseInt8Opt(in, w, bias, out *Tensor, dp *depthwisePrep) {
	g, lp := dp.g, &dp.lp
	src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
	for b := 0; b < g.batches; b++ {
		for oy := 0; oy < g.outH; oy++ {
			iy0 := oy*g.strideH - g.padT
			rowInterior := iy0 >= 0 && iy0+g.kH <= g.inH
			for ox := 0; ox < g.outW; ox++ {
				ix0 := ox*g.strideW - g.padL
				dBase := ((b*g.outH+oy)*g.outW + ox) * g.outC
				if rowInterior && ix0 >= 0 && ix0+g.kW <= g.inW {
					for ic := 0; ic < g.inC; ic++ {
						for m := 0; m < dp.mul; m++ {
							oc := ic*dp.mul + m
							acc := lp.acc0[oc]
							for ky := 0; ky < g.kH; ky++ {
								sRow := ((b*g.inH+iy0+ky)*g.inW+ix0)*g.inC + ic
								wRow := ky*g.kW*g.outC + oc
								for kx := 0; kx < g.kW; kx++ {
									acc += int32(src[sRow+kx*g.inC]) * int32(flt[wRow+kx*g.outC])
								}
							}
							dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
						}
					}
					continue
				}
				for ic := 0; ic < g.inC; ic++ {
					for m := 0; m < dp.mul; m++ {
						oc := ic*dp.mul + m
						acc := b32[oc]
						for ky := 0; ky < g.kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= g.inH {
								continue
							}
							for kx := 0; kx < g.kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= g.inW {
									continue
								}
								sIdx := ((b*g.inH+iy)*g.inW+ix)*g.inC + ic
								wIdx := (ky*g.kW+kx)*g.outC + oc
								acc += (int32(src[sIdx]) - lp.inZP) * int32(flt[wIdx])
							}
						}
						dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
					}
				}
			}
		}
	}
}
