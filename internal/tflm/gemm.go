package tflm

import "fmt"

// Optimized linear-algebra hot path: Conv2D and FullyConnected are lowered
// onto one blocked GEMM primitive over im2col-packed patches. The packer
// absorbs all padding handling (border patches are filled with the input
// zero point, interior rows are contiguous copies), so the MAC loops carry
// no bounds checks or zero-point subtractions. Per-filter zero-point
// corrections acc0[oc] = bias[oc] - inZP·Σw[oc] are precomputed once, which
// is exact because int32 accumulation is associative modulo 2^32.
//
// Every kernel here is bit-exact with its scalar reference in op_ref.go;
// kernels_equiv_test.go enforces that over randomized geometries.

// convGeom is the resolved geometry of one convolution, computed once at
// prep time instead of per Invoke.
type convGeom struct {
	batches, inH, inW, inC int
	outC, kH, kW           int
	outH, outW             int
	padT, padL             int
	strideH, strideW       int
	// K is the im2col depth kH·kW·inC; M is outH·outW patches per batch.
	K, M int
}

// colLen returns the im2col scratch length for one batch.
func (g convGeom) colLen() int { return g.M * g.K }

func resolveConvGeom(in, w, out *Tensor, p Conv2DParams) (convGeom, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return convGeom{}, fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(0), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	g.K = g.kH * g.kW * g.inC
	g.M = g.outH * g.outW
	return g, nil
}

// linearPrep carries the plan-time constants of one int8 linear op: the
// requantization multiplier, the clamp range, the per-output-channel
// accumulator seeds with bias and zero-point correction folded in, and the
// weight matrix repacked into N-blocked interleaved panels for the
// register-blocked GEMM micro-kernel.
type linearPrep struct {
	mult       QuantizedMultiplier
	outZP      int32
	lo, hi     int32
	inZP       int32
	acc0       []int32
	activation Activation
	// n, k is the weight matrix geometry; panels holds ceil(n/4) panels of
	// k×4 interleaved weights (panel p, depth i, lane j = w[(4p+j)*k+i],
	// zero-filled beyond n), and seeds is acc0 padded to the panel grid so
	// the micro-kernel indexes it unguarded.
	n, k   int
	panels []int8
	seeds  []int32
	// Requantization constants hoisted out of QuantizedMultiplier.Apply:
	// acc<<lsh, saturating-rounding-doubling-high-multiply by rqMult, then
	// rounding divide by 2^rsh with the mask/threshold precomputed. The
	// epilogue below reproduces Apply's arithmetic exactly.
	lsh, rsh uint
	rqMult   int64
	rqMask   int32
	rqThr    int32
}

// requantOne is QuantizedMultiplier.Apply with the shift decomposition and
// rounding constants precomputed in pr — bit-identical by construction
// (rqMult is in [2^30, 2^31), so the SQRDMULH saturation corner of two
// MinInt32 operands cannot occur).
func (pr *linearPrep) requantOne(acc int32) int32 {
	x := int32(uint32(acc) << pr.lsh) // TFLite shifts without saturation here
	ab := int64(x) * pr.rqMult
	// Branch-free nudge: 1<<30 for non-negative products, 1-(1<<30) for
	// negative ones (ab>>63 is 0 or -1).
	nudge := int64(1<<30) + (ab>>63)&(1-(1<<31))
	v := int32((ab + nudge) / (1 << 31))
	if pr.rsh == 0 {
		return v
	}
	// Branch-free rounding divide: threshold is rqThr, one higher for
	// negative values; add 1 when the remainder exceeds it.
	thr := pr.rqThr - int32(int32(v)>>31)
	rem := v & pr.rqMask
	v >>= pr.rsh
	v -= (thr - rem) >> 31
	return v
}

// prepRequant derives the hoisted epilogue constants from mult.
func (pr *linearPrep) prepRequant() {
	if pr.mult.Shift > 0 {
		pr.lsh = uint(pr.mult.Shift)
	} else {
		pr.rsh = uint(-pr.mult.Shift)
	}
	pr.rqMult = int64(pr.mult.Multiplier)
	pr.rqMask = int32(1<<pr.rsh) - 1
	pr.rqThr = pr.rqMask >> 1
}

// gemmPanel is the output-channel blocking factor of the packed weight
// layout and the micro-kernel.
const gemmPanel = 4

// packPanels repacks an n×k row-major weight matrix into gemmPanel-blocked
// interleaved panels: within a panel the gemmPanel filter values of each
// depth position sit adjacently, so the micro-kernel's inner loop walks one
// contiguous stream regardless of which filters it is accumulating.
func packPanels(w []int8, n, k int) []int8 {
	nPanels := (n + gemmPanel - 1) / gemmPanel
	panels := make([]int8, nPanels*gemmPanel*k)
	for p := 0; p < nPanels; p++ {
		pan := panels[p*gemmPanel*k : (p+1)*gemmPanel*k]
		for j := 0; j < gemmPanel; j++ {
			o := p*gemmPanel + j
			if o >= n {
				break // padding lanes stay zero
			}
			row := w[o*k : (o+1)*k]
			for i, v := range row {
				pan[i*gemmPanel+j] = v
			}
		}
	}
	return panels
}

// prepLinearInt8 builds the prep for a weight matrix laid out as N rows of
// length K (Conv2D OHWI filters flattened, or FullyConnected [out, in]),
// including the packed panel image of the weights.
func prepLinearInt8(in, w, bias, out *Tensor, act Activation, n, k int) (*linearPrep, error) {
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < n*k {
		return nil, fmt.Errorf("tflm: weight tensor %q has %d elements, want %d", w.Name, len(w.I8), n*k)
	}
	if len(bias.I32) < n {
		return nil, fmt.Errorf("tflm: bias tensor %q has %d elements, want %d", bias.Name, len(bias.I32), n)
	}
	lo, hi := activationRangeQuantized(act, *out.Quant)
	nPanels := (n + gemmPanel - 1) / gemmPanel
	pr := &linearPrep{
		mult:       mult,
		outZP:      out.Quant.ZeroPoint,
		lo:         lo,
		hi:         hi,
		inZP:       in.Quant.ZeroPoint,
		acc0:       make([]int32, n),
		activation: act,
		n:          n,
		k:          k,
		panels:     packPanels(w.I8, n, k),
		seeds:      make([]int32, nPanels*gemmPanel),
	}
	pr.prepRequant()
	for o := 0; o < n; o++ {
		var sum int32
		for _, v := range w.I8[o*k : (o+1)*k] {
			sum += int32(v)
		}
		pr.acc0[o] = bias.I32[o] - pr.inZP*sum
		pr.seeds[o] = pr.acc0[o]
	}
	return pr, nil
}

// im2col packs the receptive fields of one batch into col, one patch per
// GEMM row in (ky, kx, ic) order. Out-of-bounds positions are filled with
// the input zero point (int8) or zero (float32), making padded patches
// behave exactly like interior ones under the corrected accumulator seeds.
// Interior rows reduce to contiguous copies.
func im2col[T int8 | float32](col, src []T, g convGeom, b int, fill T) {
	rowLen := g.kW * g.inC
	m := 0
	for oy := 0; oy < g.outH; oy++ {
		iy0 := oy*g.strideH - g.padT
		// Clip ky to the valid input rows once per output row.
		kyLo, kyHi := 0, g.kH
		if iy0 < 0 {
			kyLo = -iy0
		}
		if iy0+g.kH > g.inH {
			kyHi = g.inH - iy0
		}
		if kyHi < kyLo {
			kyHi = kyLo
		}
		for ox := 0; ox < g.outW; ox++ {
			ix0 := ox*g.strideW - g.padL
			patch := col[m*g.K : (m+1)*g.K]
			m++
			// Clip kx to the valid input columns once per patch; the clip
			// depends only on ox, not on ky.
			kxLo, kxHi := 0, g.kW
			if ix0 < 0 {
				kxLo = -ix0
			}
			if ix0+g.kW > g.inW {
				kxHi = g.inW - ix0
			}
			if kxHi <= kxLo || kyHi <= kyLo {
				fillSlice(patch, fill)
				continue
			}
			fillSlice(patch[:kyLo*rowLen], fill)
			cpLen := (kxHi - kxLo) * g.inC
			srcRow := ((b*g.inH+iy0+kyLo)*g.inW + ix0 + kxLo) * g.inC
			if cpLen == rowLen {
				// Fully interior columns: each kernel row is one straight copy.
				for ky := kyLo; ky < kyHi; ky++ {
					copy(patch[ky*rowLen:(ky+1)*rowLen], src[srcRow:srcRow+rowLen])
					srcRow += g.inW * g.inC
				}
			} else {
				lo, hi := kxLo*g.inC, kxHi*g.inC
				for ky := kyLo; ky < kyHi; ky++ {
					row := patch[ky*rowLen : (ky+1)*rowLen]
					fillSlice(row[:lo], fill)
					copy(row[lo:hi], src[srcRow:srcRow+cpLen])
					fillSlice(row[hi:], fill)
					srcRow += g.inW * g.inC
				}
			}
			fillSlice(patch[kyHi*rowLen:], fill)
		}
	}
}

func fillSlice[T int8 | float32](s []T, v T) {
	for i := range s {
		s[i] = v
	}
}

// gemmInt8Requant computes dst[m*n] = requant(acc0[n] + A[m]·B[n]) where A
// is M rows of K packed patches and B is the panel-packed weight image in
// pr. The register-blocked micro-kernel runs two im2col rows against one
// four-filter panel with the depth loop unrolled ×4, so every panel load is
// shared by both rows and the eight accumulators stay in registers (wider
// 4×4 blocking spills on amd64's register file and measures slower in Go).
// Requantization and activation clamping are fused into the output write.
// Each accumulator still sums its K products in depth order, and int32
// addition reassociates modulo 2^32, so results are bit-identical to the
// scalar reference.
func gemmInt8Requant(mRows int, a []int8, dst []int8, pr *linearPrep) {
	n, k := pr.n, pr.k
	panels, seeds := pr.panels, pr.seeds
	m := 0
	for ; m+2 <= mRows; m += 2 {
		a0 := a[m*k : m*k+k]
		a1 := a[(m+1)*k : (m+1)*k+k]
		for p, n0 := 0, 0; n0 < n; p, n0 = p+1, n0+gemmPanel {
			pan := panels[p*gemmPanel*k : (p+1)*gemmPanel*k]
			c00, c01, c02, c03 := seeds[n0], seeds[n0+1], seeds[n0+2], seeds[n0+3]
			c10, c11, c12, c13 := c00, c01, c02, c03
			i := 0
			for ; i+4 <= k; i += 4 {
				// One full-width subslice per four depth steps eliminates
				// all but one bounds check on the panel stream.
				q := pan[i*gemmPanel : i*gemmPanel+4*gemmPanel : i*gemmPanel+4*gemmPanel]
				b0, b1, b2, b3 := int32(q[0]), int32(q[1]), int32(q[2]), int32(q[3])
				av := int32(a0[i])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[i])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				b0, b1, b2, b3 = int32(q[4]), int32(q[5]), int32(q[6]), int32(q[7])
				av = int32(a0[i+1])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[i+1])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				b0, b1, b2, b3 = int32(q[8]), int32(q[9]), int32(q[10]), int32(q[11])
				av = int32(a0[i+2])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[i+2])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				b0, b1, b2, b3 = int32(q[12]), int32(q[13]), int32(q[14]), int32(q[15])
				av = int32(a0[i+3])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[i+3])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
			}
			for ; i < k; i++ {
				j := i * gemmPanel
				b0, b1, b2, b3 := int32(pan[j]), int32(pan[j+1]), int32(pan[j+2]), int32(pan[j+3])
				av := int32(a0[i])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[i])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
			}
			requantQuad(dst[m*n:], n, n0, c00, c01, c02, c03, pr)
			requantQuad(dst[(m+1)*n:], n, n0, c10, c11, c12, c13, pr)
		}
	}
	if m < mRows {
		ar := a[m*k : m*k+k]
		for p, n0 := 0, 0; n0 < n; p, n0 = p+1, n0+gemmPanel {
			pan := panels[p*gemmPanel*k : (p+1)*gemmPanel*k]
			c0, c1, c2, c3 := seeds[n0], seeds[n0+1], seeds[n0+2], seeds[n0+3]
			i := 0
			for ; i+2 <= k; i += 2 {
				q := pan[i*gemmPanel : i*gemmPanel+2*gemmPanel : i*gemmPanel+2*gemmPanel]
				av := int32(ar[i])
				c0 += av * int32(q[0])
				c1 += av * int32(q[1])
				c2 += av * int32(q[2])
				c3 += av * int32(q[3])
				av = int32(ar[i+1])
				c0 += av * int32(q[4])
				c1 += av * int32(q[5])
				c2 += av * int32(q[6])
				c3 += av * int32(q[7])
			}
			for ; i < k; i++ {
				j := i * gemmPanel
				av := int32(ar[i])
				c0 += av * int32(pan[j])
				c1 += av * int32(pan[j+1])
				c2 += av * int32(pan[j+2])
				c3 += av * int32(pan[j+3])
			}
			requantQuad(dst[m*n:], n, n0, c0, c1, c2, c3, pr)
		}
	}
}

// requantQuad rescales, offsets, clamps and stores up to four adjacent
// accumulators of one output row, skipping the panel's zero-padding lanes
// past the true output-channel count. The unrolled guarded stores keep the
// function inlinable into the GEMM epilogue.
func requantQuad(drow []int8, n, n0 int, c0, c1, c2, c3 int32, pr *linearPrep) {
	lim := n - n0
	drow = drow[n0:]
	drow[0] = int8(clampInt32(pr.requantOne(c0)+pr.outZP, pr.lo, pr.hi))
	if lim > 1 {
		drow[1] = int8(clampInt32(pr.requantOne(c1)+pr.outZP, pr.lo, pr.hi))
	}
	if lim > 2 {
		drow[2] = int8(clampInt32(pr.requantOne(c2)+pr.outZP, pr.lo, pr.hi))
	}
	if lim > 3 {
		drow[3] = int8(clampInt32(pr.requantOne(c3)+pr.outZP, pr.lo, pr.hi))
	}
}

// gemmFloat computes dst[m*n] = act(bias[n] + A[m]·B[n]). Each accumulator
// adds its K products strictly in order, so results match the scalar
// reference bit-for-bit (padded positions contribute exact zeros); the
// 4-row blocking over B only shares the A row, it never reassociates sums.
func gemmFloat(mRows, nRows, k int, a, b, bias []float32, act Activation, dst []float32) {
	for m := 0; m < mRows; m++ {
		ar := a[m*k : (m+1)*k]
		drow := dst[m*nRows : (m+1)*nRows]
		n := 0
		for ; n <= nRows-4; n += 4 {
			b0 := b[n*k : (n+1)*k]
			b1 := b[(n+1)*k : (n+2)*k]
			b2 := b[(n+2)*k : (n+3)*k]
			b3 := b[(n+3)*k : (n+4)*k]
			acc0, acc1, acc2, acc3 := bias[n], bias[n+1], bias[n+2], bias[n+3]
			for i, av := range ar {
				acc0 += av * b0[i]
				acc1 += av * b1[i]
				acc2 += av * b2[i]
				acc3 += av * b3[i]
			}
			drow[n] = activationApplyFloat(act, acc0)
			drow[n+1] = activationApplyFloat(act, acc1)
			drow[n+2] = activationApplyFloat(act, acc2)
			drow[n+3] = activationApplyFloat(act, acc3)
		}
		for ; n < nRows; n++ {
			br := b[n*k : (n+1)*k]
			acc := bias[n]
			for i, av := range ar {
				acc += av * br[i]
			}
			drow[n] = activationApplyFloat(act, acc)
		}
	}
}

// convInt8Gemm runs the full int8 convolution over the stacked input in
// src (batches×inH×inW×inC) writing dst: every batch is im2col-packed into
// col, then a single GEMM over all batches' patch rows feeds the packed
// weight panels once. src/dst may be the tensor storage (Invoke) or the
// interpreter's stacked batch slabs (InvokeBatch) — the kernel only sees
// geometry. col must hold batches·M·K values.
func convInt8Gemm(src, dst []int8, g convGeom, pr *linearPrep, col []int8) {
	zpFill := int8(pr.inZP) // int8 zero points are in [-128, 127] by construction
	for b := 0; b < g.batches; b++ {
		im2col(col[b*g.colLen():(b+1)*g.colLen()], src, g, b, zpFill)
	}
	gemmInt8Requant(g.batches*g.M, col, dst, pr)
}

// convFloatGemm is the float32 counterpart of convInt8Gemm.
func convFloatGemm(in, w, bias, out *Tensor, g convGeom, act Activation, col []float32) {
	for b := 0; b < g.batches; b++ {
		im2col(col[:g.colLen()], in.F32, g, b, 0)
		gemmFloat(g.M, g.outC, g.K, col, w.F32, bias.F32, act, out.F32[b*g.M*g.outC:(b+1)*g.M*g.outC])
	}
}

// depthwisePrep is the plan-time state of an int8 DepthwiseConv2D: geometry
// plus per-channel zero-point corrections (the filter layout is [1, kH, kW,
// outC], so the weight sums stride by outC rather than being row-major).
type depthwisePrep struct {
	g   convGeom
	lp  linearPrep
	mul int // depth multiplier
}

func prepDepthwiseInt8(in, w, bias, out *Tensor, p Conv2DParams) (*depthwisePrep, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	mul := p.DepthMultiplier
	if mul <= 0 {
		mul = 1
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(3), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	if g.outC != g.inC*mul {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D filter channels %d != %d*%d", g.outC, g.inC, mul)
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	if in.Type != Int8 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D unsupported input type %v", in.Type)
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < g.kH*g.kW*g.outC {
		return nil, fmt.Errorf("tflm: depthwise weight tensor %q too small", w.Name)
	}
	if len(bias.I32) < g.outC {
		return nil, fmt.Errorf("tflm: depthwise bias tensor %q too small", bias.Name)
	}
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
	dp := &depthwisePrep{
		g:   g,
		mul: mul,
		lp: linearPrep{
			mult:  mult,
			outZP: out.Quant.ZeroPoint,
			lo:    lo,
			hi:    hi,
			inZP:  in.Quant.ZeroPoint,
			acc0:  make([]int32, g.outC),
		},
	}
	for oc := 0; oc < g.outC; oc++ {
		var sum int32
		for i := 0; i < g.kH*g.kW; i++ {
			sum += int32(w.I8[i*g.outC+oc])
		}
		dp.lp.acc0[oc] = bias.I32[oc] - dp.lp.inZP*sum
	}
	return dp, nil
}

// depthwiseInt8Opt evaluates an int8 DepthwiseConv2D with the padding-free
// interior split from the border: interior windows run branchless strided
// MAC loops seeded with the precomputed corrections; border windows fall
// back to reference-style skip-and-subtract accumulation (bit-identical,
// both equal the true sum modulo 2^32).
func depthwiseInt8Opt(in, w, bias, out *Tensor, dp *depthwisePrep) {
	g, lp := dp.g, &dp.lp
	src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
	for b := 0; b < g.batches; b++ {
		for oy := 0; oy < g.outH; oy++ {
			iy0 := oy*g.strideH - g.padT
			rowInterior := iy0 >= 0 && iy0+g.kH <= g.inH
			for ox := 0; ox < g.outW; ox++ {
				ix0 := ox*g.strideW - g.padL
				dBase := ((b*g.outH+oy)*g.outW + ox) * g.outC
				if rowInterior && ix0 >= 0 && ix0+g.kW <= g.inW {
					for ic := 0; ic < g.inC; ic++ {
						for m := 0; m < dp.mul; m++ {
							oc := ic*dp.mul + m
							acc := lp.acc0[oc]
							for ky := 0; ky < g.kH; ky++ {
								sRow := ((b*g.inH+iy0+ky)*g.inW+ix0)*g.inC + ic
								wRow := ky*g.kW*g.outC + oc
								for kx := 0; kx < g.kW; kx++ {
									acc += int32(src[sRow+kx*g.inC]) * int32(flt[wRow+kx*g.outC])
								}
							}
							dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
						}
					}
					continue
				}
				for ic := 0; ic < g.inC; ic++ {
					for m := 0; m < dp.mul; m++ {
						oc := ic*dp.mul + m
						acc := b32[oc]
						for ky := 0; ky < g.kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= g.inH {
								continue
							}
							for kx := 0; kx < g.kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= g.inW {
									continue
								}
								sIdx := ((b*g.inH+iy)*g.inW+ix)*g.inC + ic
								wIdx := (ky*g.kW+kx)*g.outC + oc
								acc += (int32(src[sIdx]) - lp.inZP) * int32(flt[wIdx])
							}
						}
						dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
					}
				}
			}
		}
	}
}
