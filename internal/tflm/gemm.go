package tflm

import "fmt"

// Optimized linear-algebra hot path: Conv2D and FullyConnected are lowered
// onto one blocked GEMM primitive over im2col-packed patches. The packer
// absorbs all padding handling (border patches are filled with the input
// zero point, interior rows are contiguous copies), so the MAC loops carry
// no bounds checks or zero-point subtractions. Per-filter zero-point
// corrections acc0[oc] = bias[oc] - inZP·Σw[oc] are precomputed once, which
// is exact because int32 accumulation is associative modulo 2^32.
//
// Every kernel here is bit-exact with its scalar reference in op_ref.go;
// kernels_equiv_test.go enforces that over randomized geometries.

// convGeom is the resolved geometry of one convolution, computed once at
// prep time instead of per Invoke.
type convGeom struct {
	batches, inH, inW, inC int
	outC, kH, kW           int
	outH, outW             int
	padT, padL             int
	strideH, strideW       int
	// K is the im2col depth kH·kW·inC; M is outH·outW patches per batch.
	K, M int
}

// colLen returns the im2col scratch length for one batch.
func (g convGeom) colLen() int { return g.M * g.K }

func resolveConvGeom(in, w, out *Tensor, p Conv2DParams) (convGeom, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return convGeom{}, fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(0), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return convGeom{}, fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	g.K = g.kH * g.kW * g.inC
	g.M = g.outH * g.outW
	return g, nil
}

// linearPrep carries the plan-time constants of one int8 linear op: the
// requantization multiplier, the clamp range, the per-output-channel
// accumulator seeds with bias and zero-point correction folded in, and the
// weight matrix repacked into N-blocked interleaved panels for the
// register-blocked GEMM micro-kernel.
type linearPrep struct {
	mult       QuantizedMultiplier
	outZP      int32
	lo, hi     int32
	inZP       int32
	acc0       []int32
	activation Activation
	// n, k is the weight matrix geometry; kg = ceil(k/3) is the packed SWAR
	// group count. panels holds ceil(n/4) panels of kg four-lane groups of
	// reversed-lane weight words (panel p, group g, lane j packs filter
	// 4p+j's depths 3g..3g+2 per swar.go) — the [gemmPanel]uint64 element
	// type keeps one group's four words a single provably-in-range access
	// for the micro-kernel. seeds is the SWAR-corrected accumulator seed
	// acc0 − 128·Σw padded to the panel grid so the epilogue indexes whole
	// quads unguarded.
	n, k, kg int
	panels   [][gemmPanel]uint64
	seeds    []int32
	// Requantization constants hoisted out of QuantizedMultiplier.Apply:
	// acc<<lsh, saturating-rounding-doubling-high-multiply by rqMult, then
	// rounding divide by 2^rsh with the mask/threshold precomputed. The
	// epilogue below reproduces Apply's arithmetic exactly.
	lsh, rsh uint
	rqMult   int64
	rqMask   int32
	rqThr    int32
}

// requantOne is QuantizedMultiplier.Apply with the shift decomposition and
// rounding constants precomputed in pr — bit-identical by construction
// (rqMult is in [2^30, 2^31), so the SQRDMULH saturation corner of two
// MinInt32 operands cannot occur).
func (pr *linearPrep) requantOne(acc int32) int32 {
	x := int32(uint32(acc) << pr.lsh) // TFLite shifts without saturation here
	ab := int64(x) * pr.rqMult
	// Branch-free nudge: 1<<30 for non-negative products, 1-(1<<30) for
	// negative ones (ab>>63 is 0 or -1).
	nudge := int64(1<<30) + (ab>>63)&(1-(1<<31))
	v := int32((ab + nudge) / (1 << 31))
	if pr.rsh == 0 {
		return v
	}
	// Branch-free rounding divide: threshold is rqThr, one higher for
	// negative values; add 1 when the remainder exceeds it.
	thr := pr.rqThr - int32(int32(v)>>31)
	rem := v & pr.rqMask
	v >>= pr.rsh
	v -= (thr - rem) >> 31
	return v
}

// prepRequant derives the hoisted epilogue constants from mult.
func (pr *linearPrep) prepRequant() {
	if pr.mult.Shift > 0 {
		pr.lsh = uint(pr.mult.Shift)
	} else {
		pr.rsh = uint(-pr.mult.Shift)
	}
	pr.rqMult = int64(pr.mult.Multiplier)
	pr.rqMask = int32(1<<pr.rsh) - 1
	pr.rqThr = pr.rqMask >> 1
}

// gemmPanel is the output-channel blocking factor of the packed weight
// layout and the micro-kernel.
const gemmPanel = 4

// packPanels repacks an n×k row-major weight matrix into gemmPanel-blocked
// interleaved SWAR panels: within a panel the gemmPanel filters' packed
// weight words of each depth group sit adjacently (one [gemmPanel]uint64
// element per depth group), so the micro-kernel's inner loop walks one
// contiguous stream regardless of which filters it is accumulating. Padding
// lanes (filters ≥ n, depths ≥ k) hold the biased zero weight; their
// accumulators are never stored.
func packPanels(w []int8, n, k int) [][gemmPanel]uint64 {
	nPanels := (n + gemmPanel - 1) / gemmPanel
	kg := swarGroups(k)
	panels := make([][gemmPanel]uint64, nPanels*kg)
	scratch := make([]uint64, kg)
	for o := 0; o < nPanels*gemmPanel; o++ {
		p, j := o/gemmPanel, o%gemmPanel
		if o < n {
			swarPackReversed(w[o*k:(o+1)*k], scratch)
		} else {
			swarPackReversed(nil, scratch)
		}
		for g, q := range scratch {
			panels[p*kg+g][j] = q
		}
	}
	return panels
}

// prepLinearInt8 builds the prep for a weight matrix laid out as N rows of
// length K (Conv2D OHWI filters flattened, or FullyConnected [out, in]),
// including the packed panel image of the weights.
func prepLinearInt8(in, w, bias, out *Tensor, act Activation, n, k int) (*linearPrep, error) {
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < n*k {
		return nil, fmt.Errorf("tflm: weight tensor %q has %d elements, want %d", w.Name, len(w.I8), n*k)
	}
	if len(bias.I32) < n {
		return nil, fmt.Errorf("tflm: bias tensor %q has %d elements, want %d", bias.Name, len(bias.I32), n)
	}
	lo, hi := activationRangeQuantized(act, *out.Quant)
	nPanels := (n + gemmPanel - 1) / gemmPanel
	pr := &linearPrep{
		mult:       mult,
		outZP:      out.Quant.ZeroPoint,
		lo:         lo,
		hi:         hi,
		inZP:       in.Quant.ZeroPoint,
		acc0:       make([]int32, n),
		activation: act,
		n:          n,
		k:          k,
		kg:         swarGroups(k),
		panels:     packPanels(w.I8, n, k),
		seeds:      make([]int32, nPanels*gemmPanel),
	}
	pr.prepRequant()
	for o := 0; o < n; o++ {
		sum := swarSum(w.I8[o*k : (o+1)*k])
		pr.acc0[o] = bias.I32[o] - pr.inZP*sum
		// The SWAR seed additionally folds in the weight half of the bias
		// correction (−128·Σw); the activation half arrives per row from
		// swarExpandRow.
		pr.seeds[o] = pr.acc0[o] - swarBias*sum
	}
	return pr, nil
}

// gemmScratchLen returns the packed-activation scratch (in uint64 words) one
// gemmInt8Requant call needs: two rows of kg groups.
func (pr *linearPrep) gemmScratchLen() int { return 2 * pr.kg }

// im2col packs the receptive fields of one batch into col, one patch per
// GEMM row in (ky, kx, ic) order. Out-of-bounds positions are filled with
// the input zero point (int8) or zero (float32), making padded patches
// behave exactly like interior ones under the corrected accumulator seeds.
// Interior rows reduce to contiguous copies.
func im2col[T int8 | float32](col, src []T, g convGeom, b int, fill T) {
	rowLen := g.kW * g.inC
	m := 0
	for oy := 0; oy < g.outH; oy++ {
		iy0 := oy*g.strideH - g.padT
		// Clip ky to the valid input rows once per output row.
		kyLo, kyHi := 0, g.kH
		if iy0 < 0 {
			kyLo = -iy0
		}
		if iy0+g.kH > g.inH {
			kyHi = g.inH - iy0
		}
		if kyHi < kyLo {
			kyHi = kyLo
		}
		for ox := 0; ox < g.outW; ox++ {
			ix0 := ox*g.strideW - g.padL
			patch := col[m*g.K : (m+1)*g.K]
			m++
			// Clip kx to the valid input columns once per patch; the clip
			// depends only on ox, not on ky.
			kxLo, kxHi := 0, g.kW
			if ix0 < 0 {
				kxLo = -ix0
			}
			if ix0+g.kW > g.inW {
				kxHi = g.inW - ix0
			}
			if kxHi <= kxLo || kyHi <= kyLo {
				fillSlice(patch, fill)
				continue
			}
			fillSlice(patch[:kyLo*rowLen], fill)
			cpLen := (kxHi - kxLo) * g.inC
			srcRow := ((b*g.inH+iy0+kyLo)*g.inW + ix0 + kxLo) * g.inC
			if cpLen == rowLen {
				// Fully interior columns: each kernel row is one straight copy.
				for ky := kyLo; ky < kyHi; ky++ {
					copy(patch[ky*rowLen:(ky+1)*rowLen], src[srcRow:srcRow+rowLen])
					srcRow += g.inW * g.inC
				}
			} else {
				lo, hi := kxLo*g.inC, kxHi*g.inC
				for ky := kyLo; ky < kyHi; ky++ {
					row := patch[ky*rowLen : (ky+1)*rowLen]
					fillSlice(row[:lo], fill)
					copy(row[lo:hi], src[srcRow:srcRow+cpLen])
					fillSlice(row[hi:], fill)
					srcRow += g.inW * g.inC
				}
			}
			fillSlice(patch[kyHi*rowLen:], fill)
		}
	}
}

// fillSlice is the one memclr-style prefill helper: the im2col packer, the
// batch plan's padding prefill and the SWAR scratch all flow through it, so
// the idiom lives (and gets tuned) in exactly one place.
func fillSlice[T any](s []T, v T) {
	for i := range s {
		s[i] = v
	}
}

// swarBlock is how many raw X·Y products may accumulate in one uint64
// before the mid lane must be folded out: each product contributes < 2^18
// to the 21-bit mid window (and < 2^18 to each lower lane), so eight
// products sum to < 2^21 in every lane — still carry-free, see swar.go.
// Deferring the extraction this way makes the steady-state MAC step a bare
// multiply-add; the shift+mask runs once per block instead of per product.
const swarBlock = 8

// gemmInt8Requant computes dst[m*n] = requant(acc0[n] + A[m]·B[n]) where A
// is M rows of K packed patches and B is the SWAR panel image in pr. The
// micro-kernel runs two im2col rows against one four-filter panel, three
// depth positions per step: each row is first expanded once into packed
// 21-bit-lane words (xb, caller-owned scratch of pr.gemmScratchLen() words,
// shared across every panel), then each 64-bit multiply against a panel
// word retires three MACs into one of eight raw accumulators, whose mid
// lanes are folded out once per swarBlock groups — see swar.go for the lane
// layout and the carry-freeness proof. Requantization and activation
// clamping are fused into the output write. All intermediate sums are exact
// integers, so the final int32 truncation matches the scalar reference's
// wrapped accumulation bit for bit.
func gemmInt8Requant(mRows int, a []int8, dst []int8, pr *linearPrep, xb []uint64) {
	n, k, kg := pr.n, pr.k, pr.kg
	panels, seeds := pr.panels, pr.seeds
	x0 := xb[:kg]
	x1 := xb[kg : 2*kg]
	m := 0
	for ; m+2 <= mRows; m += 2 {
		adj0 := swarExpandRow(a[m*k:m*k+k], x0)
		adj1 := swarExpandRow(a[(m+1)*k:(m+1)*k+k], x1)
		d0 := dst[m*n : m*n+n]
		d1 := dst[(m+1)*n : (m+1)*n+n]
		p, n0 := 0, 0
		for ; n0+gemmPanel <= n; p, n0 = p+1, n0+gemmPanel {
			pan := panels[p*kg : (p+1)*kg]
			m00, m01, m02, m03 := gemmRowPanel(x0, pan)
			m10, m11, m12, m13 := gemmRowPanel(x1, pan)
			s := (*[gemmPanel]int32)(seeds[n0 : n0+gemmPanel])
			requantQuad((*[gemmPanel]int8)(d0[n0:n0+gemmPanel]), s, adj0, m00, m01, m02, m03, pr)
			requantQuad((*[gemmPanel]int8)(d1[n0:n0+gemmPanel]), s, adj1, m10, m11, m12, m13, pr)
		}
		if n0 < n {
			pan := panels[p*kg : (p+1)*kg]
			m00, m01, m02, m03 := gemmRowPanel(x0, pan)
			m10, m11, m12, m13 := gemmRowPanel(x1, pan)
			requantTail(d0, n0,
				seeds[n0]+adj0+int32(m00), seeds[n0+1]+adj0+int32(m01),
				seeds[n0+2]+adj0+int32(m02), seeds[n0+3]+adj0+int32(m03), pr)
			requantTail(d1, n0,
				seeds[n0]+adj1+int32(m10), seeds[n0+1]+adj1+int32(m11),
				seeds[n0+2]+adj1+int32(m12), seeds[n0+3]+adj1+int32(m13), pr)
		}
	}
	if m < mRows {
		adj := swarExpandRow(a[m*k:m*k+k], x0)
		drow := dst[m*n : m*n+n]
		p, n0 := 0, 0
		for ; n0+gemmPanel <= n; p, n0 = p+1, n0+gemmPanel {
			pan := panels[p*kg : (p+1)*kg]
			m0, m1, m2, m3 := gemmRowPanel(x0, pan)
			s := (*[gemmPanel]int32)(seeds[n0 : n0+gemmPanel])
			requantQuad((*[gemmPanel]int8)(drow[n0:n0+gemmPanel]), s, adj, m0, m1, m2, m3, pr)
		}
		if n0 < n {
			pan := panels[p*kg : (p+1)*kg]
			m0, m1, m2, m3 := gemmRowPanel(x0, pan)
			requantTail(drow, n0,
				seeds[n0]+adj+int32(m0), seeds[n0+1]+adj+int32(m1),
				seeds[n0+2]+adj+int32(m2), seeds[n0+3]+adj+int32(m3), pr)
		}
	}
}

// gemmRowPanel sweeps one expanded activation row against one four-filter
// panel and returns the four mid totals. Keeping the tile one row wide holds
// the live set to four raw accumulators plus the streaming operands, which
// fits amd64's register file without spilling (the two-row tile spilled its
// eight raw accumulators to the stack every group).
//
// BCE shape: both operands advance by reslicing, and the outer condition
// `len(x) > 0 && len(pan) >= len(x)` is the invariant the prove pass needs
// to drop every check in the hot loop — x[:nb], pan[:nb], the range load
// and the &pb[i] group access all become check-free (callers always pass
// len(pan) == len(x) == kg; the condition is the proof, not a semantic
// branch). Enforced by make bce-check.
func gemmRowPanel(x []uint64, pan [][gemmPanel]uint64) (m0, m1, m2, m3 uint64) {
	for len(x) >= swarBlock && len(pan) >= swarBlock {
		xv := (*[swarBlock]uint64)(x[:swarBlock])
		pb := (*[swarBlock][gemmPanel]uint64)(pan[:swarBlock])
		var s0, s1, s2, s3 uint64
		for i := 0; i < swarBlock; i++ {
			xa := xv[i]
			q := &pb[i]
			s0 += xa * q[0]
			s1 += xa * q[1]
			s2 += xa * q[2]
			s3 += xa * q[3]
		}
		x, pan = x[swarBlock:], pan[swarBlock:]
		m0 += (s0 >> (2 * swarShift)) & swarMidMask
		m1 += (s1 >> (2 * swarShift)) & swarMidMask
		m2 += (s2 >> (2 * swarShift)) & swarMidMask
		m3 += (s3 >> (2 * swarShift)) & swarMidMask
	}
	if len(x) > 0 && len(pan) >= len(x) {
		xv, pb := x, pan[:len(x)]
		var s0, s1, s2, s3 uint64
		for i, xa := range xv {
			q := &pb[i]
			s0 += xa * q[0]
			s1 += xa * q[1]
			s2 += xa * q[2]
			s3 += xa * q[3]
		}
		m0 += (s0 >> (2 * swarShift)) & swarMidMask
		m1 += (s1 >> (2 * swarShift)) & swarMidMask
		m2 += (s2 >> (2 * swarShift)) & swarMidMask
		m3 += (s3 >> (2 * swarShift)) & swarMidMask
	}
	return
}

// requantQuad rescales, offsets, clamps and stores one full four-filter quad
// of one output row. The array-pointer operands make every load and store
// provably in range whether or not the call inlines; the caller peels partial
// quads off to requantTail.
func requantQuad(d *[gemmPanel]int8, s *[gemmPanel]int32, adj int32, m0, m1, m2, m3 uint64, pr *linearPrep) {
	d[0] = int8(clampInt32(pr.requantOne(s[0]+adj+int32(m0))+pr.outZP, pr.lo, pr.hi))
	d[1] = int8(clampInt32(pr.requantOne(s[1]+adj+int32(m1))+pr.outZP, pr.lo, pr.hi))
	d[2] = int8(clampInt32(pr.requantOne(s[2]+adj+int32(m2))+pr.outZP, pr.lo, pr.hi))
	d[3] = int8(clampInt32(pr.requantOne(s[3]+adj+int32(m3))+pr.outZP, pr.lo, pr.hi))
}

// requantTail stores the final partial quad of one output row, skipping the
// panel's zero-padding lanes past the true output-channel count. Its guarded
// stores are data-dependent by nature (n mod 4), so it stays off the
// bce-check clean list; it runs at most once per row.
func requantTail(drow []int8, n0 int, c0, c1, c2, c3 int32, pr *linearPrep) {
	lim := len(drow) - n0
	drow = drow[n0:]
	drow[0] = int8(clampInt32(pr.requantOne(c0)+pr.outZP, pr.lo, pr.hi))
	if lim > 1 {
		drow[1] = int8(clampInt32(pr.requantOne(c1)+pr.outZP, pr.lo, pr.hi))
	}
	if lim > 2 {
		drow[2] = int8(clampInt32(pr.requantOne(c2)+pr.outZP, pr.lo, pr.hi))
	}
	if lim > 3 {
		drow[3] = int8(clampInt32(pr.requantOne(c3)+pr.outZP, pr.lo, pr.hi))
	}
}

// gemmFloat computes dst[m*n] = act(bias[n] + A[m]·B[n]). Each accumulator
// adds its K products strictly in order, so results match the scalar
// reference bit-for-bit (padded positions contribute exact zeros); the
// 4-row blocking over B only shares the A row, it never reassociates sums.
func gemmFloat(mRows, nRows, k int, a, b, bias []float32, act Activation, dst []float32) {
	for m := 0; m < mRows; m++ {
		ar := a[m*k : (m+1)*k]
		drow := dst[m*nRows : (m+1)*nRows]
		n := 0
		for ; n <= nRows-4; n += 4 {
			b0 := b[n*k : (n+1)*k]
			b1 := b[(n+1)*k : (n+2)*k]
			b2 := b[(n+2)*k : (n+3)*k]
			b3 := b[(n+3)*k : (n+4)*k]
			acc0, acc1, acc2, acc3 := bias[n], bias[n+1], bias[n+2], bias[n+3]
			for i, av := range ar {
				acc0 += av * b0[i]
				acc1 += av * b1[i]
				acc2 += av * b2[i]
				acc3 += av * b3[i]
			}
			drow[n] = activationApplyFloat(act, acc0)
			drow[n+1] = activationApplyFloat(act, acc1)
			drow[n+2] = activationApplyFloat(act, acc2)
			drow[n+3] = activationApplyFloat(act, acc3)
		}
		for ; n < nRows; n++ {
			br := b[n*k : (n+1)*k]
			acc := bias[n]
			for i, av := range ar {
				acc += av * br[i]
			}
			drow[n] = activationApplyFloat(act, acc)
		}
	}
}

// convInt8Gemm runs the full int8 convolution over the stacked input in
// src (batches×inH×inW×inC) writing dst: every batch is im2col-packed into
// col, then a single GEMM over all batches' patch rows feeds the packed
// weight panels once. src/dst may be the tensor storage (Invoke) or the
// interpreter's stacked batch slabs (InvokeBatch) — the kernel only sees
// geometry. col must hold batches·M·K values and xb pr.gemmScratchLen()
// words.
func convInt8Gemm(src, dst []int8, g convGeom, pr *linearPrep, col []int8, xb []uint64) {
	zpFill := int8(pr.inZP) // int8 zero points are in [-128, 127] by construction
	for b := 0; b < g.batches; b++ {
		im2col(col[b*g.colLen():(b+1)*g.colLen()], src, g, b, zpFill)
	}
	gemmInt8Requant(g.batches*g.M, col, dst, pr, xb)
}

// convFloatGemm is the float32 counterpart of convInt8Gemm.
func convFloatGemm(in, w, bias, out *Tensor, g convGeom, act Activation, col []float32) {
	for b := 0; b < g.batches; b++ {
		im2col(col[:g.colLen()], in.F32, g, b, 0)
		gemmFloat(g.M, g.outC, g.K, col, w.F32, bias.F32, act, out.F32[b*g.M*g.outC:(b+1)*g.M*g.outC])
	}
}

// depthwisePrep is the plan-time state of an int8 DepthwiseConv2D: geometry
// plus per-channel zero-point corrections (the filter layout is [1, kH, kW,
// outC], so the weight sums stride by outC rather than being row-major).
// When the input has a single channel the reduction axis is contiguous in
// the source, so the interior additionally packs each output channel's taps
// into SWAR weight words (kH rows of swarGroups(kW) reversed-lane groups)
// with the −128·Σw half of the bias correction folded into swSeeds; the
// win scales with the depth multiplier, which shares one packed-activation
// expansion across all of a pixel's output channels. Strided multi-channel
// geometries keep the scalar interior — SWAR needs contiguous bytes.
type depthwisePrep struct {
	g   convGeom
	lp  linearPrep
	mul int // depth multiplier
	// SWAR interior state (inC == 1 only; nil otherwise).
	kgW     int      // packed groups per kernel row
	wPack64 []uint64 // [oc][ky][g] packed taps, oc-major
	swSeeds []int32  // acc0[oc] − 128·Σw[oc]
	xwin    []uint64 // window expansion scratch, kH·kgW words (serial Invoke only)
}

func prepDepthwiseInt8(in, w, bias, out *Tensor, p Conv2DParams) (*depthwisePrep, error) {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	mul := p.DepthMultiplier
	if mul <= 0 {
		mul = 1
	}
	g := convGeom{
		batches: in.Dim(0), inH: in.Dim(1), inW: in.Dim(2), inC: in.Dim(3),
		outC: w.Dim(3), kH: w.Dim(1), kW: w.Dim(2),
		strideH: p.StrideH, strideW: p.StrideW,
	}
	if g.outC != g.inC*mul {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D filter channels %d != %d*%d", g.outC, g.inC, mul)
	}
	g.outH, g.padT = convOutputSize(g.inH, g.kH, p.StrideH, p.Padding)
	g.outW, g.padL = convOutputSize(g.inW, g.kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{g.batches, g.outH, g.outW, g.outC}) {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D output shape %v, want %v", out.Shape, []int{g.batches, g.outH, g.outW, g.outC})
	}
	if in.Type != Int8 {
		return nil, fmt.Errorf("tflm: DepthwiseConv2D unsupported input type %v", in.Type)
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return nil, err
	}
	if len(w.I8) < g.kH*g.kW*g.outC {
		return nil, fmt.Errorf("tflm: depthwise weight tensor %q too small", w.Name)
	}
	if len(bias.I32) < g.outC {
		return nil, fmt.Errorf("tflm: depthwise bias tensor %q too small", bias.Name)
	}
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
	dp := &depthwisePrep{
		g:   g,
		mul: mul,
		lp: linearPrep{
			mult:  mult,
			outZP: out.Quant.ZeroPoint,
			lo:    lo,
			hi:    hi,
			inZP:  in.Quant.ZeroPoint,
			acc0:  make([]int32, g.outC),
		},
	}
	for oc := 0; oc < g.outC; oc++ {
		var sum int32
		for i := 0; i < g.kH*g.kW; i++ {
			sum += int32(w.I8[i*g.outC+oc])
		}
		dp.lp.acc0[oc] = bias.I32[oc] - dp.lp.inZP*sum
	}
	if g.inC == 1 {
		dp.kgW = swarGroups(g.kW)
		dp.wPack64 = make([]uint64, g.outC*g.kH*dp.kgW)
		dp.swSeeds = make([]int32, g.outC)
		dp.xwin = make([]uint64, g.kH*dp.kgW)
		row := make([]int8, g.kW)
		for oc := 0; oc < g.outC; oc++ {
			var sum int32
			for ky := 0; ky < g.kH; ky++ {
				for kx := 0; kx < g.kW; kx++ {
					row[kx] = w.I8[(ky*g.kW+kx)*g.outC+oc]
				}
				sum += swarSum(row)
				swarPackReversed(row, dp.wPack64[(oc*g.kH+ky)*dp.kgW:(oc*g.kH+ky+1)*dp.kgW])
			}
			dp.swSeeds[oc] = dp.lp.acc0[oc] - swarBias*sum
		}
	}
	return dp, nil
}

// depthwiseInt8Opt evaluates an int8 DepthwiseConv2D with the padding-free
// interior split from the border: interior windows run branchless strided
// MAC loops seeded with the precomputed corrections; border windows fall
// back to reference-style skip-and-subtract accumulation (bit-identical,
// both equal the true sum modulo 2^32).
func depthwiseInt8Opt(in, w, bias, out *Tensor, dp *depthwisePrep) {
	g, lp := dp.g, &dp.lp
	src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
	for b := 0; b < g.batches; b++ {
		for oy := 0; oy < g.outH; oy++ {
			iy0 := oy*g.strideH - g.padT
			rowInterior := iy0 >= 0 && iy0+g.kH <= g.inH
			for ox := 0; ox < g.outW; ox++ {
				ix0 := ox*g.strideW - g.padL
				dBase := ((b*g.outH+oy)*g.outW + ox) * g.outC
				if rowInterior && ix0 >= 0 && ix0+g.kW <= g.inW {
					if dp.wPack64 != nil {
						// Contiguous reduction axis (inC == 1): expand the
						// window's source rows into SWAR words once, then
						// sweep every output channel's packed taps — three
						// MACs per multiply, expansion shared across the
						// depth multiplier.
						var adj int32
						for ky := 0; ky < g.kH; ky++ {
							sRow := (b*g.inH+iy0+ky)*g.inW + ix0
							adj += swarExpandRow(src[sRow:sRow+g.kW], dp.xwin[ky*dp.kgW:(ky+1)*dp.kgW])
						}
						for oc := 0; oc < g.outC; oc++ {
							pan := dp.wPack64[oc*g.kH*dp.kgW : (oc+1)*g.kH*dp.kgW]
							xw := dp.xwin
							var s uint64
							// The dual loop condition proves both streams
							// in range (they are the same length).
							for i := 0; i < len(pan) && i < len(xw); i++ {
								s += (xw[i] * pan[i] >> (2 * swarShift)) & swarMidMask
							}
							acc := dp.swSeeds[oc] + adj + int32(s)
							dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
						}
						continue
					}
					for ic := 0; ic < g.inC; ic++ {
						for m := 0; m < dp.mul; m++ {
							oc := ic*dp.mul + m
							acc := lp.acc0[oc]
							for ky := 0; ky < g.kH; ky++ {
								sRow := ((b*g.inH+iy0+ky)*g.inW+ix0)*g.inC + ic
								wRow := ky*g.kW*g.outC + oc
								for kx := 0; kx < g.kW; kx++ {
									acc += int32(src[sRow+kx*g.inC]) * int32(flt[wRow+kx*g.outC])
								}
							}
							dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
						}
					}
					continue
				}
				for ic := 0; ic < g.inC; ic++ {
					for m := 0; m < dp.mul; m++ {
						oc := ic*dp.mul + m
						acc := b32[oc]
						for ky := 0; ky < g.kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= g.inH {
								continue
							}
							for kx := 0; kx < g.kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= g.inW {
									continue
								}
								sIdx := ((b*g.inH+iy)*g.inW+ix)*g.inC + ic
								wIdx := (ky*g.kW+kx)*g.outC + oc
								acc += (int32(src[sIdx]) - lp.inZP) * int32(flt[wIdx])
							}
						}
						dst[dBase+oc] = int8(clampInt32(lp.mult.Apply(acc)+lp.outZP, lp.lo, lp.hi))
					}
				}
			}
		}
	}
}
