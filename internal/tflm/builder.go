package tflm

// Builder offers a fluent way to assemble models; the float→int8 converter
// in internal/train and the tests are its main clients.
type Builder struct {
	m *Model
}

// NewBuilder starts a model with vendor metadata.
func NewBuilder(description string, version uint64) *Builder {
	return &Builder{m: &Model{Description: description, Version: version}}
}

// Tensor appends a tensor and returns its index.
func (b *Builder) Tensor(t *Tensor) int {
	b.m.Tensors = append(b.m.Tensors, t)
	return len(b.m.Tensors) - 1
}

// Const appends a constant tensor (weights/bias); the tensor must already
// carry data.
func (b *Builder) Const(t *Tensor) int {
	t.IsConst = true
	return b.Tensor(t)
}

// Input declares tensor index ti as a model input.
func (b *Builder) Input(ti int) *Builder {
	b.m.Inputs = append(b.m.Inputs, ti)
	return b
}

// Output declares tensor index ti as a model output.
func (b *Builder) Output(ti int) *Builder {
	b.m.Outputs = append(b.m.Outputs, ti)
	return b
}

// Node appends an operator node.
func (b *Builder) Node(op OpCode, params any, inputs, outputs []int) *Builder {
	b.m.Nodes = append(b.m.Nodes, Node{Op: op, Inputs: inputs, Outputs: outputs, Params: params})
	return b
}

// Build validates and returns the model.
func (b *Builder) Build() (*Model, error) {
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}
