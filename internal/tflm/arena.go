package tflm

import (
	"fmt"
	"sort"
)

// ArenaPlan is the result of memory planning: a byte offset for every
// non-constant tensor inside a single reusable arena, such that tensors with
// overlapping lifetimes never overlap in memory. This mirrors TFLM's
// GreedyMemoryPlanner and yields the engine's peak-RAM figure.
type ArenaPlan struct {
	// Offsets maps tensor index → arena byte offset.
	Offsets map[int]int
	// Total is the arena size in bytes.
	Total int
}

const arenaAlign = 16

// lifetime is the half-open node interval during which a tensor must be
// resident: [first, last]. Model inputs are born at -1; model outputs die at
// len(nodes).
type lifetime struct {
	tensor      int
	size        int
	first, last int
}

func overlaps(a, b lifetime) bool {
	return a.first <= b.last && b.first <= a.last
}

// PlanArena computes lifetimes for all non-constant tensors and assigns
// offsets greedily (largest tensor first, lowest non-conflicting offset).
func PlanArena(m *Model) (*ArenaPlan, error) {
	first := make(map[int]int)
	last := make(map[int]int)
	for _, i := range m.Inputs {
		first[i] = -1
		last[i] = -1
	}
	for ni, n := range m.Nodes {
		for _, i := range n.Inputs {
			if m.Tensors[i].IsConst {
				continue
			}
			if _, ok := first[i]; !ok {
				return nil, fmt.Errorf("tflm: node %d reads unproduced tensor %q", ni, m.Tensors[i].Name)
			}
			if ni > last[i] {
				last[i] = ni
			}
		}
		for _, i := range n.Outputs {
			if _, ok := first[i]; !ok {
				first[i] = ni
				last[i] = ni
			} else if ni > last[i] {
				last[i] = ni
			}
		}
	}
	for _, i := range m.Outputs {
		last[i] = len(m.Nodes)
	}

	lifetimes := make([]lifetime, 0, len(first))
	for ti, f := range first {
		size := (m.Tensors[ti].ByteSize() + arenaAlign - 1) &^ (arenaAlign - 1)
		lifetimes = append(lifetimes, lifetime{tensor: ti, size: size, first: f, last: last[ti]})
	}
	// Largest first; ties by earlier birth, then index for determinism.
	sort.Slice(lifetimes, func(i, j int) bool {
		if lifetimes[i].size != lifetimes[j].size {
			return lifetimes[i].size > lifetimes[j].size
		}
		if lifetimes[i].first != lifetimes[j].first {
			return lifetimes[i].first < lifetimes[j].first
		}
		return lifetimes[i].tensor < lifetimes[j].tensor
	})

	type placed struct {
		lifetime
		offset int
	}
	var placements []placed
	plan := &ArenaPlan{Offsets: make(map[int]int, len(lifetimes))}
	for _, lt := range lifetimes {
		// Collect conflicting placements and try the gaps between them.
		var conflicts []placed
		for _, p := range placements {
			if overlaps(lt, p.lifetime) {
				conflicts = append(conflicts, p)
			}
		}
		sort.Slice(conflicts, func(i, j int) bool { return conflicts[i].offset < conflicts[j].offset })
		offset := 0
		for _, c := range conflicts {
			if offset+lt.size <= c.offset {
				break
			}
			if end := c.offset + c.size; end > offset {
				offset = end
			}
		}
		offset = (offset + arenaAlign - 1) &^ (arenaAlign - 1)
		placements = append(placements, placed{lifetime: lt, offset: offset})
		plan.Offsets[lt.tensor] = offset
		if end := offset + lt.size; end > plan.Total {
			plan.Total = end
		}
	}
	// Record offsets on the tensors for diagnostics.
	for ti, off := range plan.Offsets {
		m.Tensors[ti].ArenaOffset = off
	}
	return plan, nil
}

// Check verifies the plan's core invariant: no two tensors with overlapping
// lifetimes occupy overlapping byte ranges. Tests and the interpreter's
// constructor call it; it is cheap relative to planning.
func (p *ArenaPlan) Check(m *Model) error {
	lts := make(map[int]lifetime)
	// Rebuild lifetimes exactly as PlanArena computes them.
	first := make(map[int]int)
	last := make(map[int]int)
	for _, i := range m.Inputs {
		first[i] = -1
		last[i] = -1
	}
	for ni, n := range m.Nodes {
		for _, i := range n.Inputs {
			if m.Tensors[i].IsConst {
				continue
			}
			if ni > last[i] {
				last[i] = ni
			}
		}
		for _, i := range n.Outputs {
			if _, ok := first[i]; !ok {
				first[i] = ni
				last[i] = ni
			} else if ni > last[i] {
				last[i] = ni
			}
		}
	}
	for _, i := range m.Outputs {
		last[i] = len(m.Nodes)
	}
	for ti := range p.Offsets {
		size := (m.Tensors[ti].ByteSize() + arenaAlign - 1) &^ (arenaAlign - 1)
		lts[ti] = lifetime{tensor: ti, size: size, first: first[ti], last: last[ti]}
	}
	tensors := make([]int, 0, len(lts))
	for ti := range lts {
		tensors = append(tensors, ti)
	}
	sort.Ints(tensors)
	for i := 0; i < len(tensors); i++ {
		for j := i + 1; j < len(tensors); j++ {
			a, b := lts[tensors[i]], lts[tensors[j]]
			if !overlaps(a, b) {
				continue
			}
			ao, bo := p.Offsets[a.tensor], p.Offsets[b.tensor]
			if ao < bo+b.size && bo < ao+a.size {
				return fmt.Errorf("tflm: arena overlap: %q [%d,%d) vs %q [%d,%d)",
					m.Tensors[a.tensor].Name, ao, ao+a.size,
					m.Tensors[b.tensor].Name, bo, bo+b.size)
			}
		}
	}
	return nil
}
