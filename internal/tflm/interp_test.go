package tflm

import (
	"math/rand"
	"testing"
)

type countingMeter struct{ cycles uint64 }

func (c *countingMeter) Charge(n uint64) { c.cycles += n }

func TestInterpreterTinyConvEndToEnd(t *testing.T) {
	m := testTinyConvModel(t, 1)
	ip, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	in := ip.Input(0)
	r := rand.New(rand.NewSource(9))
	for i := range in.I8 {
		in.I8[i] = int8(r.Intn(255) - 128)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	out := ip.Output(0)
	if !out.ShapeEquals([]int{1, 12}) {
		t.Fatalf("output shape %v", out.Shape)
	}
	// Output is a probability vector: dequantized values in [0,1].
	for i, v := range out.I8 {
		p := out.Quant.Dequantize(v)
		if p < 0 || p > 1 {
			t.Fatalf("prob[%d] = %v", i, p)
		}
	}
	// Determinism: same input, same output.
	first := append([]int8(nil), out.I8...)
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if out.I8[i] != first[i] {
			t.Fatal("non-deterministic inference")
		}
	}
}

func TestInterpreterMetering(t *testing.T) {
	m := testTinyConvModel(t, 1)
	ip, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	meter := &countingMeter{}
	ip.SetMeter(meter)
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	if meter.cycles != InferenceCycles(m) {
		t.Fatalf("metered %d cycles, estimate %d", meter.cycles, InferenceCycles(m))
	}
	// tiny_conv: conv MACs = 4400*80 = 352000, fc = 52800. The cost estimate
	// must be dominated by them.
	if macs := m.NumMACs(); macs != 4400*80+12*4400 {
		t.Fatalf("MACs = %d", macs)
	}
	if meter.cycles < m.NumMACs() {
		t.Fatal("cycles below one per MAC; cost model broken")
	}
}

func TestModelWeightBytesNearPaper(t *testing.T) {
	m := testTinyConvModel(t, 1)
	// conv 640 + fc 52800 int8 weights + (8+12)*4 bias bytes = 53520.
	want := 640 + 52800 + 80
	if got := m.WeightBytes(); got != want {
		t.Fatalf("weight bytes = %d, want %d", got, want)
	}
	// Serialized model lands in the same ballpark as the paper's ~49 kB.
	blob, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 50_000 || len(blob) > 70_000 {
		t.Fatalf("serialized model = %d bytes, expected ~49-64 kB ballpark", len(blob))
	}
}

func TestInterpreterValidatesModel(t *testing.T) {
	m := testTinyConvModel(t, 1)
	m.Outputs = []int{999}
	if _, err := NewInterpreter(m); err == nil {
		t.Fatal("interpreter accepted a malformed model")
	}
}

func TestValidateCatchesGraphErrors(t *testing.T) {
	cases := []func(m *Model){
		func(m *Model) { m.Inputs = nil },
		func(m *Model) { m.Outputs = nil },
		func(m *Model) { m.Nodes[0].Inputs[0] = 999 },
		func(m *Model) { m.Nodes[0].Outputs[0] = -1 },
		func(m *Model) { m.Tensors[m.Nodes[0].Inputs[1]].I8 = nil }, // const without data
		func(m *Model) { m.Inputs = []int{m.Nodes[0].Inputs[1]} },   // const as input
	}
	for i, mutate := range cases {
		m := testTinyConvModel(t, 1)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: mutation not caught", i)
		}
	}
}

func TestArgmax(t *testing.T) {
	tt := &Tensor{Type: Float32, Shape: []int{4}, F32: []float32{0.1, 0.9, 0.3, 0.2}}
	if got := Argmax(tt); got != 1 {
		t.Fatalf("argmax = %d", got)
	}
	ti := &Tensor{Type: Int8, Shape: []int{3}, I8: []int8{-5, -1, -3}}
	if got := Argmax(ti); got != 1 {
		t.Fatalf("argmax = %d", got)
	}
	tu := &Tensor{Type: UInt8, Shape: []int{3}, U8: []uint8{5, 1, 9}}
	if got := Argmax(tu); got != 2 {
		t.Fatalf("argmax = %d", got)
	}
	t32 := &Tensor{Type: Int32, Shape: []int{3}, I32: []int32{7, 1, 2}}
	if got := Argmax(t32); got != 0 {
		t.Fatalf("argmax = %d", got)
	}
}
