package tflm

// SWAR (SIMD-within-a-register) int8 dot-product primitives: the arithmetic
// core of the GEMM micro-kernel in gemm.go and of the depthwise interior
// sweep. One 64-bit multiply retires three int8 MACs.
//
// Lane layout. Both operands are biased to unsigned bytes u = a+128,
// v = w+128 ∈ [0,255] (a byte XOR with 0x80). Three consecutive depth
// positions pack into one uint64 with 21-bit lane spacing — activations in
// ascending order, weights reversed:
//
//	X = u0 | u1<<21 | u2<<42          Y = v2 | v1<<21 | v0<<42
//
// The product X·Y = c0 + c1·2^21 + c2·2^42 + c3·2^63 + c4·2^84 then carries
// the three-term dot product c2 = u0·v0 + u1·v1 + u2·v2 in bits 42..62:
//
//   - c0 = u0·v2 ≤ 255² < 2^17 and c1 = u0·v1 + u1·v2 < 2^18, so
//     c0 + c1·2^21 < 2^39 — nothing below carries into bit 42;
//   - c2 < 2^18 fits its 21-bit window, so nothing carries into bit 63;
//   - c3 lands at bit 63 and c4 past bit 64; the 21-bit mask below bit 63
//     excludes both, and the uint64 truncation of X·Y only drops bits ≥ 64.
//
// Extraction is therefore exact: mid = (X*Y >> 42) & (1<<21 − 1). The bias
// is removed once per reduction, not per lane: Σa·w = Σu·v − 128·Σu −
// 128·Σv + K·128², with Σv folded into prep-time seeds by the GEMM and Σu
// accumulated while packing X. Every quantity is an exact integer, so the
// final int32 truncation equals the scalar reference's wrapped int32
// accumulation modulo 2^32 — bit-exactness needs no reassociation argument
// beyond the one the blocked kernels already relied on. The "saturating"
// corner −128·−128 = 16384 is an ordinary in-range lane value here (u=v=0,
// recovered entirely by the correction terms); the fuzz suite pins it.

// Why not 4 depths × 16-bit lanes? The tempting denser layout — four byte
// lanes at 16-bit spacing, X·Y carrying Σ4 u·v in one window — does not
// survive the carry analysis: a single cross-lane window accumulates up to
// 4·255² = 260100 ≥ 2^16 from one multiply alone, so the dot-product window
// overflows into its neighbor before any deferred folding could help.
// Dropping to signed 7-bit operands or 2-depth windows gives up more MACs
// than it gains. The 3×21-bit layout is the densest carry-free packing for
// full-range int8 (2^18 per window, 3 bits of headroom → swarBlock=8
// deferred folds), so the FC sweep keeps it; measured upper bound on this
// host ~2.8 Gmac/s conv / ~4.1 Gmac/s FC (BenchmarkGEMMMicroKernel).
const (
	// swarGroup is how many depth positions one 64-bit multiply covers.
	swarGroup = 3
	// swarShift is the lane spacing in bits; 3·21+16 = 79-bit products keep
	// the mid window carry-free (see the layout proof above).
	swarShift = 21
	// swarMidMask extracts the mid lane after the 2·swarShift shift.
	swarMidMask = 1<<swarShift - 1
	// swarBias recenters int8 to unsigned bytes (x ^ swarBias == x + 128).
	swarBias = 0x80
)

// swarGroups returns how many packed uint64 groups a depth-k reduction
// needs.
func swarGroups(k int) int { return (k + swarGroup - 1) / swarGroup }

// swarFoldGroups bounds how many packed words may sum lane-wise into one
// uint64 before a 21-bit lane could overflow: 255·8191 < 2^21. Rows longer
// than swarGroup·8191 depths fold in chunks.
const swarFoldGroups = 8191

// swarExpandRow packs one GEMM activation row into x (ascending lane order,
// zero lanes past len(a) so padded groups contribute nothing) and returns
// the row's bias correction −128·Σu. Σu itself rides the packed words: lane
// sums cannot carry for swarFoldGroups words at a time, so the running
// total costs one 64-bit add per group and three folds per chunk. x must
// hold swarGroups(len(a)) words.
//
// The loop walks both slices by reslicing (a three bytes, x one word per
// group): the `len(a) >= swarGroup && len(x) > 0` condition is what lets the
// compiler prove every element access in range, so the packing loop carries
// no bounds checks (enforced by make bce-check).
func swarExpandRow(a []int8, x []uint64) int32 {
	if len(x) < swarGroups(len(a)) {
		panic("tflm: swarExpandRow scratch too short")
	}
	var usum uint64
	for len(a) > 0 {
		ca := a
		if len(ca) > swarGroup*swarFoldGroups {
			ca = ca[:swarGroup*swarFoldGroups]
			a = a[swarGroup*swarFoldGroups:]
		} else {
			a = nil
		}
		var vec uint64
		// Main loop: read four bytes at once (the compiler fuses the byte
		// ORs into one 32-bit load), bias the three live lanes with a single
		// XOR, and spread them to 21-bit spacing — one load and nine ALU ops
		// per group instead of three loads and ten. Requires one byte of
		// lookahead, so the final group of the row falls through below.
		for len(ca) > swarGroup && len(x) > 0 {
			v := uint32(uint8(ca[0])) | uint32(uint8(ca[1]))<<8 |
				uint32(uint8(ca[2]))<<16 | uint32(uint8(ca[3]))<<24
			v ^= swarBias | swarBias<<8 | swarBias<<16
			w := uint64(v&0xff) | uint64(v&0xff00)<<(swarShift-8) |
				uint64(v&0xff0000)<<(2*swarShift-16)
			x[0] = w
			vec += w
			ca = ca[swarGroup:]
			x = x[1:]
		}
		if len(ca) == swarGroup && len(x) > 0 {
			w := uint64(uint8(ca[0])^swarBias) |
				uint64(uint8(ca[1])^swarBias)<<swarShift |
				uint64(uint8(ca[2])^swarBias)<<(2*swarShift)
			x[0] = w
			vec += w
			ca = ca[swarGroup:]
			x = x[1:]
		}
		if len(ca) > 0 && len(x) > 0 {
			var q uint64
			for t := range ca {
				q |= uint64(uint8(ca[t])^swarBias) << (uint(t) * swarShift)
			}
			x[0] = q
			vec += q
			x = x[1:]
		}
		usum += (vec & swarMidMask) + (vec >> swarShift & swarMidMask) + (vec >> (2 * swarShift))
	}
	return -swarBias * int32(usum)
}

// swarPackReversed packs a weight vector into reversed-lane groups (the Y
// operand). Lanes past len(w) hold the biased zero weight — they only ever
// multiply zero activation lanes.
func swarPackReversed(w []int8, x []uint64) {
	for g := range x {
		var q uint64
		for t := 0; t < swarGroup; t++ {
			v := uint64(swarBias)
			if i := g*swarGroup + t; i < len(w) {
				v = uint64(uint8(w[i]) ^ swarBias)
			}
			q |= v << (uint(swarGroup-1-t) * swarShift)
		}
		x[g] = q
	}
}

// swarSum returns Σw over a weight vector as an int32 (the prep-time half of
// the bias correction).
func swarSum(w []int8) int32 {
	var s int32
	for _, v := range w {
		s += int32(v)
	}
	return s
}

// swarDotI8 is the standalone SWAR dot product Σ a[i]·b[i] (mod 2^32, like
// the scalar int32 accumulation it replaces). It packs both operands on the
// fly and removes the bias inline; the GEMM kernel hoists the same
// corrections to prep/row time. This is the unit the fuzz and equivalence
// suites pin against the scalar reference.
func swarDotI8(a, b []int8) int32 {
	k := len(a)
	var mid, usum, vsum uint64
	i := 0
	for ; i+swarGroup <= k; i += swarGroup {
		u0 := uint64(uint8(a[i]) ^ swarBias)
		u1 := uint64(uint8(a[i+1]) ^ swarBias)
		u2 := uint64(uint8(a[i+2]) ^ swarBias)
		v0 := uint64(uint8(b[i]) ^ swarBias)
		v1 := uint64(uint8(b[i+1]) ^ swarBias)
		v2 := uint64(uint8(b[i+2]) ^ swarBias)
		x := u0 | u1<<swarShift | u2<<(2*swarShift)
		y := v2 | v1<<swarShift | v0<<(2*swarShift)
		mid += (x * y >> (2 * swarShift)) & swarMidMask
		usum += u0 + u1 + u2
		vsum += v0 + v1 + v2
	}
	for ; i < k; i++ {
		u := uint64(uint8(a[i]) ^ swarBias)
		v := uint64(uint8(b[i]) ^ swarBias)
		mid += u * v
		usum += u
		vsum += v
	}
	return int32(mid) - swarBias*int32(usum) - swarBias*int32(vsum) + int32(k)*swarBias*swarBias
}
