package tflm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// OMGM is the binary model format this engine serializes to — the blob the
// vendor encrypts and provisions in §V step 3, and whose size experiment E3
// compares to the paper's "about 49 kB".
//
// Layout (all integers little-endian):
//
//	magic "OMGM" | u16 format version | u64 model version
//	str description
//	u32 tensor count | tensors
//	u32 node count   | nodes
//	u32 input count  | u32 indices...
//	u32 output count | u32 indices...
//
// where str is u32 length + bytes, and each tensor/node is self-describing.
const (
	formatMagic   = "OMGM"
	formatVersion = 1
)

// Encode serializes the model.
func Encode(m *Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("tflm: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(formatMagic)
	writeU16(&buf, formatVersion)
	writeU64(&buf, m.Version)
	writeStr(&buf, m.Description)

	writeU32(&buf, uint32(len(m.Tensors)))
	for _, t := range m.Tensors {
		encodeTensor(&buf, t)
	}
	writeU32(&buf, uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		if err := encodeNode(&buf, n); err != nil {
			return nil, err
		}
	}
	writeIndexList(&buf, m.Inputs)
	writeIndexList(&buf, m.Outputs)
	return buf.Bytes(), nil
}

// Decode parses a serialized model and validates it.
func Decode(data []byte) (*Model, error) {
	rd := &reader{data: data}
	if string(rd.bytes(4)) != formatMagic {
		return nil, errors.New("tflm: bad magic (not an OMGM model)")
	}
	if v := rd.u16(); v != formatVersion {
		return nil, fmt.Errorf("tflm: unsupported format version %d", v)
	}
	m := &Model{}
	m.Version = rd.u64()
	m.Description = rd.str()

	nTensors := int(rd.u32())
	if nTensors > 1<<20 {
		return nil, errors.New("tflm: tensor count implausible")
	}
	for i := 0; i < nTensors && rd.err == nil; i++ {
		t, err := decodeTensor(rd)
		if err != nil {
			return nil, err
		}
		m.Tensors = append(m.Tensors, t)
	}
	nNodes := int(rd.u32())
	if nNodes > 1<<20 {
		return nil, errors.New("tflm: node count implausible")
	}
	for i := 0; i < nNodes && rd.err == nil; i++ {
		n, err := decodeNode(rd)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	m.Inputs = rd.indexList()
	m.Outputs = rd.indexList()
	if rd.err != nil {
		return nil, fmt.Errorf("tflm: decode: %w", rd.err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("tflm: decoded model invalid: %w", err)
	}
	return m, nil
}

func encodeTensor(buf *bytes.Buffer, t *Tensor) {
	writeStr(buf, t.Name)
	buf.WriteByte(byte(t.Type))
	flags := byte(0)
	if t.IsConst {
		flags |= 1
	}
	if t.Quant != nil {
		flags |= 2
	}
	buf.WriteByte(flags)
	writeU32(buf, uint32(len(t.Shape)))
	for _, d := range t.Shape {
		writeU32(buf, uint32(d))
	}
	if t.Quant != nil {
		writeU64(buf, math.Float64bits(t.Quant.Scale))
		writeU32(buf, uint32(t.Quant.ZeroPoint))
	}
	if t.IsConst {
		data := tensorBytes(t)
		writeU32(buf, uint32(len(data)))
		buf.Write(data)
	}
}

func decodeTensor(rd *reader) (*Tensor, error) {
	t := &Tensor{ArenaOffset: -1}
	t.Name = rd.str()
	t.Type = DType(rd.byte())
	flags := rd.byte()
	nDims := int(rd.u32())
	if nDims > 8 {
		return nil, errors.New("tflm: tensor rank implausible")
	}
	for i := 0; i < nDims; i++ {
		t.Shape = append(t.Shape, int(rd.u32()))
	}
	if flags&2 != 0 {
		t.Quant = &QuantParams{
			Scale:     math.Float64frombits(rd.u64()),
			ZeroPoint: int32(rd.u32()),
		}
	}
	if flags&1 != 0 {
		t.IsConst = true
		n := int(rd.u32())
		if rd.err == nil && n != t.NumElements()*t.Type.Size() {
			return nil, fmt.Errorf("tflm: tensor %q data length %d != %d", t.Name, n, t.NumElements()*t.Type.Size())
		}
		raw := rd.bytes(n)
		if rd.err != nil {
			return nil, rd.err
		}
		fillTensor(t, raw)
	}
	return t, rd.err
}

// tensorBytes flattens typed storage to little-endian bytes.
func tensorBytes(t *Tensor) []byte {
	switch t.Type {
	case Int8:
		out := make([]byte, len(t.I8))
		for i, v := range t.I8 {
			out[i] = byte(v)
		}
		return out
	case UInt8:
		return append([]byte(nil), t.U8...)
	case Int32:
		out := make([]byte, 4*len(t.I32))
		for i, v := range t.I32 {
			binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
		}
		return out
	case Float32:
		out := make([]byte, 4*len(t.F32))
		for i, v := range t.F32 {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
		}
		return out
	default:
		return nil
	}
}

// fillTensor inflates little-endian bytes into typed storage.
func fillTensor(t *Tensor, raw []byte) {
	switch t.Type {
	case Int8:
		t.I8 = make([]int8, len(raw))
		for i, b := range raw {
			t.I8[i] = int8(b)
		}
	case UInt8:
		t.U8 = append([]uint8(nil), raw...)
	case Int32:
		t.I32 = make([]int32, len(raw)/4)
		for i := range t.I32 {
			t.I32[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	case Float32:
		t.F32 = make([]float32, len(raw)/4)
		for i := range t.F32 {
			t.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
}

func encodeNode(buf *bytes.Buffer, n Node) error {
	buf.WriteByte(byte(n.Op))
	writeIndexList(buf, n.Inputs)
	writeIndexList(buf, n.Outputs)
	switch p := n.Params.(type) {
	case Conv2DParams:
		writeU32(buf, uint32(p.StrideH))
		writeU32(buf, uint32(p.StrideW))
		buf.WriteByte(byte(p.Padding))
		buf.WriteByte(byte(p.Activation))
		writeU32(buf, uint32(p.DepthMultiplier))
	case FullyConnectedParams:
		buf.WriteByte(byte(p.Activation))
	case SoftmaxParams:
		writeU64(buf, math.Float64bits(p.Beta))
	case PoolParams:
		writeU32(buf, uint32(p.FilterH))
		writeU32(buf, uint32(p.FilterW))
		writeU32(buf, uint32(p.StrideH))
		writeU32(buf, uint32(p.StrideW))
		buf.WriteByte(byte(p.Padding))
	case ReshapeParams:
		writeU32(buf, uint32(len(p.NewShape)))
		for _, d := range p.NewShape {
			writeU32(buf, uint32(int32(d)))
		}
	case nil:
		// Ops without parameters (Relu, Reshape-with-shaped-output).
	default:
		return fmt.Errorf("tflm: encode: unknown params type %T", n.Params)
	}
	return nil
}

func decodeNode(rd *reader) (Node, error) {
	n := Node{Op: OpCode(rd.byte())}
	n.Inputs = rd.indexList()
	n.Outputs = rd.indexList()
	switch n.Op {
	case OpConv2D, OpDepthwiseConv2D:
		p := Conv2DParams{}
		p.StrideH = int(rd.u32())
		p.StrideW = int(rd.u32())
		p.Padding = Padding(rd.byte())
		p.Activation = Activation(rd.byte())
		p.DepthMultiplier = int(rd.u32())
		n.Params = p
	case OpFullyConnected:
		n.Params = FullyConnectedParams{Activation: Activation(rd.byte())}
	case OpSoftmax:
		n.Params = SoftmaxParams{Beta: math.Float64frombits(rd.u64())}
	case OpMaxPool2D, OpAvgPool2D:
		p := PoolParams{}
		p.FilterH = int(rd.u32())
		p.FilterW = int(rd.u32())
		p.StrideH = int(rd.u32())
		p.StrideW = int(rd.u32())
		p.Padding = Padding(rd.byte())
		n.Params = p
	case OpReshape:
		p := ReshapeParams{}
		nDims := int(rd.u32())
		if nDims > 8 {
			return n, errors.New("tflm: reshape rank implausible")
		}
		for i := 0; i < nDims; i++ {
			p.NewShape = append(p.NewShape, int(int32(rd.u32())))
		}
		n.Params = p
	case OpRelu:
		// no params
	default:
		return n, fmt.Errorf("tflm: decode: unknown op %d", n.Op)
	}
	return n, rd.err
}

// --- low-level helpers ---

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	writeU32(buf, uint32(len(s)))
	buf.WriteString(s)
}

func writeIndexList(buf *bytes.Buffer, idx []int) {
	writeU32(buf, uint32(len(idx)))
	for _, i := range idx {
		writeU32(buf, uint32(i))
	}
}

// reader is a bounds-checked sequential decoder that records the first
// error and short-circuits subsequent reads, keeping call sites linear.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := int(r.u32())
	if n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.bytes(n))
}

func (r *reader) indexList() []int {
	n := int(r.u32())
	if n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int(r.u32()))
	}
	return out
}
