package tflm

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomConvModel assembles a Conv2D→Reshape→FullyConnected→Softmax
// graph over a randomized geometry, the same op chain as tiny_conv but with
// arbitrary shapes, so batched equivalence is exercised beyond the paper
// model.
func buildRandomConvModel(t *testing.T, r *rand.Rand) *Model {
	t.Helper()
	inH := 5 + r.Intn(12)
	inW := 5 + r.Intn(12)
	inC := 1 + r.Intn(3)
	filters := 1 + r.Intn(9)
	kH := 1 + r.Intn(min(5, inH))
	kW := 1 + r.Intn(min(5, inW))
	strideH := 1 + r.Intn(2)
	strideW := 1 + r.Intn(2)
	pad := PaddingSame
	if r.Intn(2) == 0 {
		pad = PaddingValid
	}
	classes := 2 + r.Intn(10)

	b := NewBuilder("random conv", 1)
	inQ := QuantParams{Scale: 0.5 + r.Float64(), ZeroPoint: int32(r.Intn(256) - 128)}
	in := b.Tensor(&Tensor{Name: "in", Type: Int8, Shape: []int{1, inH, inW, inC}, Quant: &inQ})
	b.Input(in)

	wQ := SymmetricWeightParams(0.3 + r.Float64())
	convW := &Tensor{Name: "conv_w", Type: Int8, Shape: []int{filters, kH, kW, inC}, Quant: &wQ}
	convW.Alloc()
	for i := range convW.I8 {
		convW.I8[i] = int8(r.Intn(256) - 128)
	}
	convB := &Tensor{Name: "conv_b", Type: Int32, Shape: []int{filters}, Quant: &QuantParams{Scale: inQ.Scale * wQ.Scale}}
	convB.Alloc()
	for i := range convB.I32 {
		convB.I32[i] = int32(r.Intn(2048) - 1024)
	}
	wi, bi := b.Const(convW), b.Const(convB)

	outH, _ := convOutputSize(inH, kH, strideH, pad)
	outW, _ := convOutputSize(inW, kW, strideW, pad)
	if outH <= 0 || outW <= 0 {
		t.Skip("degenerate geometry")
	}
	convQ := QuantParams{Scale: 0.1 + r.Float64(), ZeroPoint: int32(r.Intn(256) - 128)}
	convOut := b.Tensor(&Tensor{Name: "conv_out", Type: Int8, Shape: []int{1, outH, outW, filters}, Quant: &convQ})
	b.Node(OpConv2D, Conv2DParams{StrideH: strideH, StrideW: strideW, Padding: pad, Activation: ActReLU},
		[]int{in, wi, bi}, []int{convOut})
	flatLen := outH * outW * filters
	flat := b.Tensor(&Tensor{Name: "flat", Type: Int8, Shape: []int{1, flatLen}, Quant: &convQ})
	b.Node(OpReshape, ReshapeParams{NewShape: []int{1, flatLen}}, []int{convOut}, []int{flat})

	fcWQ := SymmetricWeightParams(0.2 + r.Float64())
	fcW := &Tensor{Name: "fc_w", Type: Int8, Shape: []int{classes, flatLen}, Quant: &fcWQ}
	fcW.Alloc()
	for i := range fcW.I8 {
		fcW.I8[i] = int8(r.Intn(256) - 128)
	}
	fcB := &Tensor{Name: "fc_b", Type: Int32, Shape: []int{classes}, Quant: &QuantParams{Scale: convQ.Scale * fcWQ.Scale}}
	fcB.Alloc()
	fwi, fbi := b.Const(fcW), b.Const(fcB)
	logitQ := QuantParams{Scale: 0.25, ZeroPoint: 0}
	logits := b.Tensor(&Tensor{Name: "logits", Type: Int8, Shape: []int{1, classes}, Quant: &logitQ})
	b.Node(OpFullyConnected, FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})
	probQ := SoftmaxOutputParams()
	probs := b.Tensor(&Tensor{Name: "probs", Type: Int8, Shape: []int{1, classes}, Quant: &probQ})
	b.Node(OpSoftmax, SoftmaxParams{Beta: 1}, []int{logits}, []int{probs})
	b.Output(probs)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInvokeBatchMatchesSerial: over randomized conv geometries (plus the
// paper tiny_conv) and batch sizes including the degenerate B=1, the
// stacked InvokeBatch must be bit-exact with running each utterance through
// serial Invoke — which the kernel equivalence tests in turn pin to the
// scalar reference kernels.
func TestInvokeBatchMatchesSerial(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(9000 + trial)))
			var model *Model
			if trial == 0 {
				var err error
				if model, err = BuildRandomTinyConv(1, 7); err != nil {
					t.Fatal(err)
				}
			} else {
				model = buildRandomConvModel(t, r)
			}
			batched, err := NewInterpreter(model.Clone())
			if err != nil {
				t.Fatal(err)
			}
			serial, err := NewInterpreter(model.Clone())
			if err != nil {
				t.Fatal(err)
			}
			maxB := 1 + r.Intn(9)
			if err := batched.PlanBatch(maxB); err != nil {
				t.Fatal(err)
			}
			if bc := batched.BatchCapacity(); bc != maxB {
				t.Fatalf("BatchCapacity = %d, want %d", bc, maxB)
			}
			inElems := serial.Input(0).NumElements()
			outElems := serial.Output(0).NumElements()
			for _, b := range []int{1, maxB} {
				inputs := make([][]int8, b)
				for j := 0; j < b; j++ {
					inputs[j] = make([]int8, inElems)
					for i := range inputs[j] {
						inputs[j][i] = int8(r.Intn(256) - 128)
					}
					copy(batched.BatchInput(j), inputs[j])
				}
				if err := batched.InvokeBatch(b); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < b; j++ {
					copy(serial.Input(0).I8, inputs[j])
					if err := serial.Invoke(); err != nil {
						t.Fatal(err)
					}
					got := batched.BatchOutput(j)
					for i := 0; i < outElems; i++ {
						if got[i] != serial.Output(0).I8[i] {
							t.Fatalf("B=%d utterance %d output %d: batched %d != serial %d",
								b, j, i, got[i], serial.Output(0).I8[i])
						}
					}
				}
			}
		})
	}
}

// TestInvokeBatchTilingMatchesSerial: the cache-blocking tile is a pure
// iteration-order change, so every forced tile width — untiled, degenerate
// 1, widths that do not divide the batch (odd tails), and widths beyond the
// batch — must stay bit-exact with serial Invoke, over randomized models and
// batch sizes including B=1 and B=MaxBatch.
func TestInvokeBatchTilingMatchesSerial(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(4200 + trial)))
			var model *Model
			if trial == 0 {
				var err error
				if model, err = BuildRandomTinyConv(1, 7); err != nil {
					t.Fatal(err)
				}
			} else {
				model = buildRandomConvModel(t, r)
			}
			batched, err := NewInterpreter(model.Clone())
			if err != nil {
				t.Fatal(err)
			}
			serial, err := NewInterpreter(model.Clone())
			if err != nil {
				t.Fatal(err)
			}
			maxB := 5 + r.Intn(8)
			if err := batched.PlanBatch(maxB); err != nil {
				t.Fatal(err)
			}
			if batched.batch.runs == nil {
				t.Skip("degraded serial fallback: no tiling to exercise")
			}
			if tb := batched.batch.tileB; tb < 2 || tb > maxB {
				t.Fatalf("planned tileB = %d outside [2, %d]", tb, maxB)
			}
			inElems := serial.Input(0).NumElements()
			outElems := serial.Output(0).NumElements()
			// Stage maxB utterances once and precompute the serial truth.
			want := make([][]int8, maxB)
			for j := 0; j < maxB; j++ {
				row := batched.BatchInput(j)
				for i := range row {
					row[i] = int8(r.Intn(256) - 128)
				}
				copy(serial.Input(0).I8, row)
				if err := serial.Invoke(); err != nil {
					t.Fatal(err)
				}
				want[j] = append([]int8(nil), serial.Output(0).I8[:outElems]...)
			}
			_ = inElems
			for _, tile := range []int{0, 1, 2, 3, maxB - 1, maxB, maxB + 3} {
				batched.batch.tileB = tile
				for _, b := range []int{1, maxB - 1, maxB} {
					if err := batched.InvokeBatch(b); err != nil {
						t.Fatalf("tile=%d b=%d: %v", tile, b, err)
					}
					for j := 0; j < b; j++ {
						got := batched.BatchOutput(j)
						for i := 0; i < outElems; i++ {
							if got[i] != want[j][i] {
								t.Fatalf("tile=%d b=%d utterance %d output %d: batched %d != serial %d",
									tile, b, j, i, got[i], want[j][i])
							}
						}
					}
				}
			}
		})
	}
}

// TestInvokeBatchTilingParallel: tiling composes with the sharded fan-out —
// shard spans and tiles both leave odd tails, and the result must still be
// bit-exact with the untiled single-shard sweep.
func TestInvokeBatchTilingParallel(t *testing.T) {
	model, err := BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const maxB = 11
	tiled, err := NewInterpreter(model.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := tiled.PlanBatchParallel(maxB, 3); err != nil {
		t.Fatal(err)
	}
	plain, err := NewInterpreter(model.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.PlanBatch(maxB); err != nil {
		t.Fatal(err)
	}
	plain.batch.tileB = 0 // untiled reference sweep
	tiled.batch.tileB = 3 // does not divide the 4/4/3 shard spans
	r := rand.New(rand.NewSource(77))
	outElems := tiled.Output(0).NumElements()
	for j := 0; j < maxB; j++ {
		row := tiled.BatchInput(j)
		for i := range row {
			row[i] = int8(r.Intn(256) - 128)
		}
		copy(plain.BatchInput(j), row)
	}
	for _, b := range []int{1, 2, maxB - 1, maxB} {
		if err := tiled.InvokeBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := plain.InvokeBatch(b); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < b; j++ {
			got, want := tiled.BatchOutput(j), plain.BatchOutput(j)
			for i := 0; i < outElems; i++ {
				if got[i] != want[i] {
					t.Fatalf("b=%d utterance %d output %d: tiled-parallel %d != untiled %d",
						b, j, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchTile: the tile sizer respects its floor (2, the GEMM row
// pairing), its cap (the plan capacity), counts aliased slabs once, and
// degrades to the capacity when there are no slabs to measure.
func TestBatchTile(t *testing.T) {
	mk := func(n int) []int8 { return make([]int8, n) }
	if got := batchTile(nil, 16); got != 16 {
		t.Fatalf("no slabs: tile = %d, want capB 16", got)
	}
	// Huge per-utterance footprint → floor of 2.
	if got := batchTile([][]int8{mk(16 * 64 << 10)}, 16); got != 2 {
		t.Fatalf("huge slab: tile = %d, want 2", got)
	}
	// Tiny footprint → capped at capB.
	if got := batchTile([][]int8{mk(16 * 4)}, 16); got != 16 {
		t.Fatalf("tiny slab: tile = %d, want 16", got)
	}
	// Mid footprint: 16 utterances × 2 KiB rows → 8 rows per 16 KiB budget.
	if got := batchTile([][]int8{mk(16 * 2048)}, 16); got != 8 {
		t.Fatalf("mid slab: tile = %d, want 8", got)
	}
	// An aliased slab (Reshape) must not double-count its bytes.
	shared := mk(16 * 2048)
	if got := batchTile([][]int8{shared, shared}, 16); got != 8 {
		t.Fatalf("aliased slabs: tile = %d, want 8", got)
	}
}

// TestInvokeBatchValidation: unplanned and out-of-range calls must fail.
func TestInvokeBatchValidation(t *testing.T) {
	model, err := BuildRandomTinyConv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.InvokeBatch(1); err == nil {
		t.Fatal("InvokeBatch before PlanBatch accepted")
	}
	if err := ip.PlanBatch(0); err == nil {
		t.Fatal("PlanBatch(0) accepted")
	}
	if err := ip.PlanBatch(4); err != nil {
		t.Fatal(err)
	}
	if err := ip.InvokeBatch(5); err == nil {
		t.Fatal("batch beyond capacity accepted")
	}
	if err := ip.InvokeBatch(0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

// TestInvokeBatchZeroAlloc: like Invoke, the planned batched path must not
// touch the heap.
func TestInvokeBatchZeroAlloc(t *testing.T) {
	model, err := BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 8
	if err := ip.PlanBatch(batch); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < batch; j++ {
		row := ip.BatchInput(j)
		for i := range row {
			row[i] = int8((i + j) % 251)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := ip.InvokeBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("InvokeBatch allocates %v times per run, want 0", allocs)
	}
}
