package tflm

import "fmt"

// fcGeom resolves FullyConnected shapes: weights [outN, inN], the input's
// trailing dimensions flattened into batches of inN.
func fcGeom(in, w, out *Tensor) (batches, outN, inN int, err error) {
	outN, inN = w.Dim(0), w.Dim(1)
	total := in.NumElements()
	if total%inN != 0 {
		return 0, 0, 0, fmt.Errorf("tflm: FullyConnected input %d elements not divisible by %d", total, inN)
	}
	batches = total / inN
	if out.NumElements() != batches*outN {
		return 0, 0, 0, fmt.Errorf("tflm: FullyConnected output %v, want %d×%d", out.Shape, batches, outN)
	}
	return batches, outN, inN, nil
}

// evalFullyConnected computes out[b,o] = act(Σ_i in[b,i]·w[o,i] + bias[o]).
// The input already is the GEMM A matrix (batches × inN rows), so both
// dtypes go straight to the gemm.go primitives without packing.
func evalFullyConnected(in, w, bias, out *Tensor, p FullyConnectedParams) error {
	batches, outN, inN, err := fcGeom(in, w, out)
	if err != nil {
		return err
	}
	switch in.Type {
	case Int8:
		pr, err := prepLinearInt8(in, w, bias, out, p.Activation, outN, inN)
		if err != nil {
			return err
		}
		gemmInt8Requant(batches, in.I8, out.I8, pr, make([]uint64, pr.gemmScratchLen()))
		return nil
	case Float32:
		gemmFloat(batches, outN, inN, in.F32, w.F32, bias.F32, p.Activation, out.F32)
		return nil
	default:
		return fmt.Errorf("tflm: FullyConnected unsupported input type %v", in.Type)
	}
}
