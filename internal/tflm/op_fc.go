package tflm

import "fmt"

// evalFullyConnected computes out[b,o] = act(Σ_i in[b,i]·w[o,i] + bias[o]).
// Weights are [outN, inN]; the input's trailing dimensions are flattened.
func evalFullyConnected(in, w, bias, out *Tensor, p FullyConnectedParams) error {
	outN, inN := w.Dim(0), w.Dim(1)
	total := in.NumElements()
	if total%inN != 0 {
		return fmt.Errorf("tflm: FullyConnected input %d elements not divisible by %d", total, inN)
	}
	batches := total / inN
	if out.NumElements() != batches*outN {
		return fmt.Errorf("tflm: FullyConnected output %v, want %d×%d", out.Shape, batches, outN)
	}
	switch in.Type {
	case Int8:
		mult, err := requantMultiplier(in, w, out)
		if err != nil {
			return err
		}
		inZP, outZP := in.Quant.ZeroPoint, out.Quant.ZeroPoint
		lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
		src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
		for b := 0; b < batches; b++ {
			sBase := b * inN
			for o := 0; o < outN; o++ {
				acc := b32[o]
				wBase := o * inN
				for i := 0; i < inN; i++ {
					acc += (int32(src[sBase+i]) - inZP) * int32(flt[wBase+i])
				}
				dst[b*outN+o] = int8(clampInt32(mult.Apply(acc)+outZP, lo, hi))
			}
		}
		return nil
	case Float32:
		src, flt, dst, b32 := in.F32, w.F32, out.F32, bias.F32
		for b := 0; b < batches; b++ {
			sBase := b * inN
			for o := 0; o < outN; o++ {
				acc := b32[o]
				wBase := o * inN
				for i := 0; i < inN; i++ {
					acc += src[sBase+i] * flt[wBase+i]
				}
				dst[b*outN+o] = activationApplyFloat(p.Activation, acc)
			}
		}
		return nil
	default:
		return fmt.Errorf("tflm: FullyConnected unsupported input type %v", in.Type)
	}
}
