package tflm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizedMultiplierRepresentation(t *testing.T) {
	for _, real := range []float64{0.25, 0.5, 0.9999, 1.0, 1.5, 0.0005, 123.456, 1e-9} {
		m, err := NewQuantizedMultiplier(real)
		if err != nil {
			t.Fatalf("NewQuantizedMultiplier(%v): %v", real, err)
		}
		if got := m.Real(); math.Abs(got-real)/real > 1e-9 {
			t.Errorf("Real() = %v, want %v", got, real)
		}
		if m.Multiplier < 1<<30 || int64(m.Multiplier) >= 1<<31 {
			t.Errorf("multiplier %d out of normalized range for %v", m.Multiplier, real)
		}
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewQuantizedMultiplier(bad); err == nil {
			t.Errorf("NewQuantizedMultiplier(%v) succeeded", bad)
		}
	}
}

// TestApplyMatchesFloatReference: the fixed-point rescale must agree with
// round(acc*real) within one unit across the int32 range actually used by
// accumulators.
func TestApplyMatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		real := math.Exp(r.Float64()*12 - 10) // ~[4.5e-5, 7.4]
		m, err := NewQuantizedMultiplier(real)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			acc := int32(r.Intn(1<<22) - 1<<21)
			want := math.Round(float64(acc) * real)
			if math.Abs(want) > float64(math.MaxInt32)/2 {
				continue
			}
			got := float64(m.Apply(acc))
			if math.Abs(got-want) > 1.0 {
				t.Logf("real=%v acc=%d got=%v want=%v", real, acc, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRoundingDivideByPOT(t *testing.T) {
	cases := []struct {
		x        int32
		exp      int
		expected int32
	}{
		{0, 3, 0},
		{8, 3, 1},
		{12, 3, 2}, // 1.5 rounds away from zero
		{11, 3, 1}, // 1.375 rounds down
		{-8, 3, -1},
		{-12, 3, -2}, // -1.5 rounds away from zero
		{-11, 3, -1},
		{5, 0, 5},
	}
	for _, c := range cases {
		if got := roundingDivideByPOT(c.x, c.exp); got != c.expected {
			t.Errorf("roundingDivideByPOT(%d, %d) = %d, want %d", c.x, c.exp, got, c.expected)
		}
	}
}

func TestSaturatingRoundingDoublingHighMulOverflow(t *testing.T) {
	if got := saturatingRoundingDoublingHighMul(math.MinInt32, math.MinInt32); got != math.MaxInt32 {
		t.Fatalf("min*min = %d, want MaxInt32", got)
	}
	// 0.5 in Q31 times 0.5 in Q31 is 0.25 doubled = 0.5.
	half := int32(1 << 30)
	if got := saturatingRoundingDoublingHighMul(half, half); got != 1<<29 {
		t.Fatalf("0.5*0.5 = %d, want %d", got, 1<<29)
	}
}

func TestChooseQuantParams(t *testing.T) {
	q := ChooseQuantParams(-1, 1)
	if q.Scale <= 0 {
		t.Fatal("non-positive scale")
	}
	// Zero must be exactly representable.
	if got := q.Dequantize(int8(q.ZeroPoint)); got != 0 {
		t.Fatalf("zero dequantizes to %v", got)
	}
	// Round trip error bounded by scale/2 inside the range.
	for _, x := range []float64{-1, -0.5, 0, 0.3, 0.9999, 1} {
		back := q.Dequantize(q.Quantize(x))
		if math.Abs(back-x) > q.Scale/2+1e-12 {
			t.Errorf("round trip %v -> %v (scale %v)", x, back, q.Scale)
		}
	}
	// Positive-only and negative-only ranges are widened to include zero.
	qp := ChooseQuantParams(2, 5)
	if qp.Dequantize(qp.Quantize(0)) != 0 {
		t.Error("positive-only range lost zero")
	}
	qz := ChooseQuantParams(0, 0)
	if qz.Scale != 1 || qz.ZeroPoint != 0 {
		t.Errorf("degenerate range params = %+v", qz)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := QuantParams{Scale: 0.1, ZeroPoint: 0}
	if got := q.Quantize(1e9); got != 127 {
		t.Fatalf("huge value quantized to %d", got)
	}
	if got := q.Quantize(-1e9); got != -128 {
		t.Fatalf("huge negative quantized to %d", got)
	}
}

func TestSymmetricWeightParams(t *testing.T) {
	q := SymmetricWeightParams(2.54)
	if q.ZeroPoint != 0 {
		t.Fatal("weight zero point must be 0")
	}
	if got := q.Quantize(2.54); got != 127 {
		t.Fatalf("absmax quantized to %d", got)
	}
	if q2 := SymmetricWeightParams(0); q2.Scale <= 0 {
		t.Fatal("degenerate weight scale")
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(lo, hi float32) bool {
		minV, maxV := float64(lo), float64(hi)
		if math.IsNaN(minV) || math.IsNaN(maxV) || math.IsInf(minV, 0) || math.IsInf(maxV, 0) {
			return true
		}
		if minV > maxV {
			minV, maxV = maxV, minV
		}
		if maxV-minV > 1e12 {
			return true
		}
		q := ChooseQuantParams(minV, maxV)
		mid := (minV + maxV) / 2
		back := q.Dequantize(q.Quantize(mid))
		return math.Abs(back-mid) <= q.Scale*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
