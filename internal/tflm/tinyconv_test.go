package tflm

import (
	"math/rand"
	"testing"
)

// testTinyConvModel constructs the paper's tiny_conv architecture with
// deterministic random weights: Conv2D(8 filters 10×8, stride 2×2, SAME,
// fused ReLU) → Reshape → FullyConnected(12) → Softmax over a 1×49×43×1
// int8 fingerprint.
func testTinyConvModel(t testing.TB, version uint64) *Model {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	b := NewBuilder("tiny_conv test", version)

	inQ := QuantParams{Scale: 25.6 / 256, ZeroPoint: -128} // uint8 features shifted to int8
	in := b.Tensor(&Tensor{Name: "fingerprint", Type: Int8, Shape: []int{1, 49, 43, 1}, Quant: &inQ})
	b.Input(in)

	wQ := SymmetricWeightParams(0.5)
	convW := &Tensor{Name: "conv_w", Type: Int8, Shape: []int{8, 10, 8, 1}, Quant: &wQ}
	convW.Alloc()
	for i := range convW.I8 {
		convW.I8[i] = int8(r.Intn(255) - 127)
	}
	convB := &Tensor{Name: "conv_b", Type: Int32, Shape: []int{8},
		Quant: &QuantParams{Scale: inQ.Scale * wQ.Scale}}
	convB.Alloc()
	for i := range convB.I32 {
		convB.I32[i] = int32(r.Intn(2048) - 1024)
	}
	wi := b.Const(convW)
	bi := b.Const(convB)

	convOutQ := QuantParams{Scale: 0.2, ZeroPoint: -128}
	convOut := b.Tensor(&Tensor{Name: "conv_out", Type: Int8, Shape: []int{1, 25, 22, 8}, Quant: &convOutQ})
	b.Node(OpConv2D, Conv2DParams{StrideH: 2, StrideW: 2, Padding: PaddingSame, Activation: ActReLU},
		[]int{in, wi, bi}, []int{convOut})

	flat := b.Tensor(&Tensor{Name: "flat", Type: Int8, Shape: []int{1, 4400}, Quant: &convOutQ})
	b.Node(OpReshape, ReshapeParams{NewShape: []int{1, 4400}}, []int{convOut}, []int{flat})

	fcWQ := SymmetricWeightParams(0.25)
	fcW := &Tensor{Name: "fc_w", Type: Int8, Shape: []int{12, 4400}, Quant: &fcWQ}
	fcW.Alloc()
	for i := range fcW.I8 {
		fcW.I8[i] = int8(r.Intn(255) - 127)
	}
	fcB := &Tensor{Name: "fc_b", Type: Int32, Shape: []int{12},
		Quant: &QuantParams{Scale: convOutQ.Scale * fcWQ.Scale}}
	fcB.Alloc()
	fwi := b.Const(fcW)
	fbi := b.Const(fcB)

	logitsQ := QuantParams{Scale: 0.5, ZeroPoint: 0}
	logits := b.Tensor(&Tensor{Name: "logits", Type: Int8, Shape: []int{1, 12}, Quant: &logitsQ})
	b.Node(OpFullyConnected, FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})

	probQ := SoftmaxOutputParams()
	probs := b.Tensor(&Tensor{Name: "probs", Type: Int8, Shape: []int{1, 12}, Quant: &probQ})
	b.Node(OpSoftmax, SoftmaxParams{Beta: 1}, []int{logits}, []int{probs})
	b.Output(probs)

	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}
