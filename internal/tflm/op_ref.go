package tflm

import "fmt"

// Reference kernels: the original scalar implementations of Conv2D,
// DepthwiseConv2D and FullyConnected, kept verbatim as the semantic ground
// truth for the optimized im2col/GEMM kernels in gemm.go. Every optimized
// kernel must stay bit-exact against its reference; kernels_equiv_test.go
// enforces this over randomized shapes, paddings, strides and activations.
// New ops must follow the same pattern: land a reference kernel first, then
// an optimized one that is tested against it.

// evalConv2DRef dispatches to the scalar reference kernels with the same
// validation order as evalConv2D. The interpreter routes unprepped nodes
// here, so the fallback path costs exactly what the seed engine did — no
// per-Invoke prep or im2col scratch allocation.
func evalConv2DRef(in, w, bias, out *Tensor, p Conv2DParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	switch in.Type {
	case Int8:
		return evalConv2DInt8Ref(in, w, bias, out, p)
	case Float32:
		return evalConv2DFloatRef(in, w, bias, out, p)
	default:
		return fmt.Errorf("tflm: Conv2D unsupported input type %v", in.Type)
	}
}

func evalConv2DInt8Ref(in, w, bias, out *Tensor, p Conv2DParams) error {
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	outC, kH, kW := w.Dim(0), w.Dim(1), w.Dim(2)
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return err
	}
	inZP := in.Quant.ZeroPoint
	outZP := out.Quant.ZeroPoint
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)

	src, flt, dst := in.I8, w.I8, out.I8
	b32 := bias.I32
	oi := 0
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for oc := 0; oc < outC; oc++ {
					acc := b32[oc]
					wBase := oc * kH * kW * inC
					for ky := 0; ky < kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sBase := ((b*inH+iy)*inW + ix) * inC
							wRow := wBase + (ky*kW+kx)*inC
							for ic := 0; ic < inC; ic++ {
								acc += (int32(src[sBase+ic]) - inZP) * int32(flt[wRow+ic])
							}
						}
					}
					v := clampInt32(mult.Apply(acc)+outZP, lo, hi)
					dst[oi] = int8(v)
					oi++
				}
			}
		}
	}
	return nil
}

func evalConv2DFloatRef(in, w, bias, out *Tensor, p Conv2DParams) error {
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	outC, kH, kW := w.Dim(0), w.Dim(1), w.Dim(2)
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	src, flt, dst, b32 := in.F32, w.F32, out.F32, bias.F32
	oi := 0
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for oc := 0; oc < outC; oc++ {
					acc := b32[oc]
					wBase := oc * kH * kW * inC
					for ky := 0; ky < kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sBase := ((b*inH+iy)*inW + ix) * inC
							wRow := wBase + (ky*kW+kx)*inC
							for ic := 0; ic < inC; ic++ {
								acc += src[sBase+ic] * flt[wRow+ic]
							}
						}
					}
					dst[oi] = activationApplyFloat(p.Activation, acc)
					oi++
				}
			}
		}
	}
	return nil
}

func evalDepthwiseConv2DRef(in, w, bias, out *Tensor, p Conv2DParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tflm: DepthwiseConv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	mul := p.DepthMultiplier
	if mul <= 0 {
		mul = 1
	}
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	kH, kW, outC := w.Dim(1), w.Dim(2), w.Dim(3)
	if outC != inC*mul {
		return fmt.Errorf("tflm: DepthwiseConv2D filter channels %d != %d*%d", outC, inC, mul)
	}
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: DepthwiseConv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	if in.Type != Int8 {
		return fmt.Errorf("tflm: DepthwiseConv2D unsupported input type %v", in.Type)
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return err
	}
	inZP, outZP := in.Quant.ZeroPoint, out.Quant.ZeroPoint
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
	src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for ic := 0; ic < inC; ic++ {
					for m := 0; m < mul; m++ {
						oc := ic*mul + m
						acc := b32[oc]
						for ky := 0; ky < kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							for kx := 0; kx < kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								sIdx := ((b*inH+iy)*inW+ix)*inC + ic
								wIdx := (ky*kW+kx)*outC + oc
								acc += (int32(src[sIdx]) - inZP) * int32(flt[wIdx])
							}
						}
						v := clampInt32(mult.Apply(acc)+outZP, lo, hi)
						dst[((b*outH+oy)*outW+ox)*outC+oc] = int8(v)
					}
				}
			}
		}
	}
	return nil
}

func evalFullyConnectedRef(in, w, bias, out *Tensor, p FullyConnectedParams) error {
	outN, inN := w.Dim(0), w.Dim(1)
	total := in.NumElements()
	if total%inN != 0 {
		return fmt.Errorf("tflm: FullyConnected input %d elements not divisible by %d", total, inN)
	}
	batches := total / inN
	if out.NumElements() != batches*outN {
		return fmt.Errorf("tflm: FullyConnected output %v, want %d×%d", out.Shape, batches, outN)
	}
	switch in.Type {
	case Int8:
		mult, err := requantMultiplier(in, w, out)
		if err != nil {
			return err
		}
		inZP, outZP := in.Quant.ZeroPoint, out.Quant.ZeroPoint
		lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
		src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
		for b := 0; b < batches; b++ {
			sBase := b * inN
			for o := 0; o < outN; o++ {
				acc := b32[o]
				wBase := o * inN
				for i := 0; i < inN; i++ {
					acc += (int32(src[sBase+i]) - inZP) * int32(flt[wBase+i])
				}
				dst[b*outN+o] = int8(clampInt32(mult.Apply(acc)+outZP, lo, hi))
			}
		}
		return nil
	case Float32:
		src, flt, dst, b32 := in.F32, w.F32, out.F32, bias.F32
		for b := 0; b < batches; b++ {
			sBase := b * inN
			for o := 0; o < outN; o++ {
				acc := b32[o]
				wBase := o * inN
				for i := 0; i < inN; i++ {
					acc += src[sBase+i] * flt[wBase+i]
				}
				dst[b*outN+o] = activationApplyFloat(p.Activation, acc)
			}
		}
		return nil
	default:
		return fmt.Errorf("tflm: FullyConnected unsupported input type %v", in.Type)
	}
}
