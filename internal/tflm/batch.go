package tflm

import "fmt"

// Batched execution: PlanBatch sizes a stacked-utterance twin of the graph
// once, and InvokeBatch runs up to that many utterances through one pass of
// the node list — one taller im2col/GEMM per convolution (M→B·M patch
// rows), one wider GEMM per fully-connected layer, one sweep per
// elementwise node. Per-node dispatch is paid once per batch instead of
// once per utterance, and the packed weight panels stay L1-resident across
// the stacked rows.
//
// The plan owns stacked int8 slabs for every non-constant tensor; utterance
// j's input is staged via BatchInput(j) and its result read via
// BatchOutput(j). Output rows are valid until the next InvokeBatch (or
// Invoke) on this interpreter — copy what must outlive it. Results are
// bit-exact with running each utterance through Invoke serially: the
// batched kernels are the same kernels over stacked rows, and the batch
// slabs are disjoint from the serial tensors.

// batchPlan is the plan-time state of InvokeBatch.
type batchPlan struct {
	capB int
	// slabs[ti] holds capB stacked copies of tensor ti's storage (nil for
	// constants and tensors the batched graph never touches). A pure-copy
	// Reshape aliases its output slab to its input slab, so the copy
	// disappears from the batched hot path.
	slabs [][]int8
	// execs run one node over b stacked utterances; nil execs means the
	// whole plan fell back to per-utterance serial Invoke (exotic node or
	// dtype in the graph).
	execs []func(b int) error
}

// colCopy is one replayed im2col transfer: col[dst:dst+n] = src[src:src+n].
type colCopy struct{ dst, src, n int32 }

// recordIm2col compiles the im2col traversal of one utterance (all original
// batches) into a copy program: the clip arithmetic, branch structure and
// padding fills run once at plan time; InvokeBatch replays only the
// surviving contiguous copies. Padding positions are never recorded — the
// plan prefills the column slab with the zero point once, and no replay
// touches those bytes again. Adjacent transfers that abut in both source
// and destination are merged.
func recordIm2col(g convGeom) []colCopy {
	var prog []colCopy
	rowLen := g.kW * g.inC
	add := func(dst, src, n int) {
		if n <= 0 {
			return
		}
		if len(prog) > 0 {
			last := &prog[len(prog)-1]
			if int(last.dst)+int(last.n) == dst && int(last.src)+int(last.n) == src {
				last.n += int32(n)
				return
			}
		}
		prog = append(prog, colCopy{int32(dst), int32(src), int32(n)})
	}
	m := 0
	for b := 0; b < g.batches; b++ {
		for oy := 0; oy < g.outH; oy++ {
			iy0 := oy*g.strideH - g.padT
			kyLo, kyHi := 0, g.kH
			if iy0 < 0 {
				kyLo = -iy0
			}
			if iy0+g.kH > g.inH {
				kyHi = g.inH - iy0
			}
			for ox := 0; ox < g.outW; ox++ {
				ix0 := ox*g.strideW - g.padL
				kxLo, kxHi := 0, g.kW
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+g.kW > g.inW {
					kxHi = g.inW - ix0
				}
				for ky := kyLo; ky < kyHi; ky++ {
					if kxHi <= kxLo {
						break
					}
					add(m*g.K+ky*rowLen+kxLo*g.inC,
						((b*g.inH+iy0+ky)*g.inW+ix0+kxLo)*g.inC,
						(kxHi-kxLo)*g.inC)
				}
				m++
			}
		}
	}
	return prog
}

// PlanBatch prepares the interpreter to run up to maxB stacked utterances
// per InvokeBatch call. It allocates the stacked activation slabs and
// batched kernel scratch now so InvokeBatch performs no heap allocation.
// Planning again replaces the previous plan (tickets into old slabs become
// stale). The model's primary input and output must be int8; graphs with
// nodes the batched engine cannot stack (float dtypes, pooling, dynamic
// weights) keep a degraded plan that runs the serial engine per utterance —
// same results, no stacked GEMM.
func (ip *Interpreter) PlanBatch(maxB int) error {
	if maxB < 1 {
		return fmt.Errorf("tflm: batch capacity %d < 1", maxB)
	}
	m := ip.model
	if len(m.Inputs) != 1 || len(m.Outputs) != 1 {
		return fmt.Errorf("tflm: PlanBatch needs a single-input single-output model")
	}
	if ip.Input(0).Type != Int8 || ip.Output(0).Type != Int8 {
		return fmt.Errorf("tflm: PlanBatch needs int8 model I/O")
	}
	bp := &batchPlan{capB: maxB, slabs: make([][]int8, len(m.Tensors))}
	slab := func(ti int) []int8 {
		t := m.Tensors[ti]
		if t.IsConst || t.Type != Int8 {
			return nil
		}
		if bp.slabs[ti] == nil {
			bp.slabs[ti] = make([]int8, maxB*t.NumElements())
		}
		return bp.slabs[ti]
	}
	// Input/output slabs exist even when the node walk degrades to the
	// serial fallback.
	slab(m.Inputs[0])
	slab(m.Outputs[0])
	// producers[ti] counts nodes writing tensor ti; the Reshape alias below
	// is only sound when both endpoints have a single writer.
	producers := make([]int, len(m.Tensors))
	for _, n := range m.Nodes {
		for _, o := range n.Outputs {
			producers[o]++
		}
	}

	execs := make([]func(b int) error, len(m.Nodes))
	for ni, n := range m.Nodes {
		switch n.Op {
		case OpConv2D:
			cp, ok := ip.preps[ni].(*convPrep)
			if !ok {
				execs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					execs = nil
					break
				}
				g, pr := cp.g, cp.pr
				// Dedicated column slab per conv node, prefilled with the
				// node's padding zero point so the replayed copy program
				// never has to re-fill padding. The slab holds one
				// utterance: replay and GEMM interleave per utterance so
				// the column data is consumed while still cache-hot (a
				// single B·M-row sweep would stream B×col through the
				// cache between write and read).
				col := make([]int8, g.batches*g.colLen())
				fillSlice(col, int8(pr.inZP))
				prog := recordIm2col(g)
				uttIn := g.batches * g.inH * g.inW * g.inC
				rows := g.batches * g.M
				uttOut := rows * g.outC
				execs[ni] = func(b int) error {
					for u := 0; u < b; u++ {
						sb := u * uttIn
						for _, cp := range prog {
							copy(col[cp.dst:cp.dst+cp.n], src[sb+int(cp.src):sb+int(cp.src)+int(cp.n)])
						}
						gemmInt8Requant(rows, col, dst[u*uttOut:(u+1)*uttOut], pr)
					}
					return nil
				}
			}
		case OpFullyConnected:
			fp, ok := ip.preps[ni].(*fcPrep)
			if !ok {
				execs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					execs = nil
					break
				}
				pr, rows := fp.pr, fp.batches
				execs[ni] = func(b int) error {
					gemmInt8Requant(b*rows, src, dst, pr)
					return nil
				}
			}
		case OpSoftmax:
			sp, ok := ip.preps[ni].(*softmaxPrep)
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if !ok || in.Quant == nil || out.Quant == nil {
				execs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					execs = nil
					break
				}
				depth, outer, beta := sp.depth, sp.outer, sp.beta
				inQ, outQ := in.Quant, out.Quant
				execs[ni] = func(b int) error {
					softmaxRowsI8(src, dst, b*outer, depth, beta, inQ, outQ, ip.smLogits, ip.smProbs)
					return nil
				}
			}
		case OpReshape:
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if in.Type != Int8 || out.Type != Int8 || in.NumElements() != out.NumElements() {
				execs = nil
			} else {
				src := slab(n.Inputs[0])
				if src == nil {
					execs = nil
					break
				}
				// A reshape is a pure copy; when its endpoints each have a
				// single writer and the output slab does not exist yet, the
				// output can alias the input and the node costs nothing per
				// batch. (The simulated-device cycle charge still applies —
				// aliasing is a host optimization.)
				if producers[n.Inputs[0]] <= 1 && producers[n.Outputs[0]] == 1 && bp.slabs[n.Outputs[0]] == nil {
					bp.slabs[n.Outputs[0]] = src
					execs[ni] = func(int) error { return nil }
					break
				}
				dst := slab(n.Outputs[0])
				if dst == nil {
					execs = nil
					break
				}
				elems := in.NumElements()
				execs[ni] = func(b int) error {
					copy(dst[:b*elems], src[:b*elems])
					return nil
				}
			}
		case OpRelu:
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if in.Type != Int8 || in.Quant == nil || in.NumElements() != out.NumElements() {
				execs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					execs = nil
					break
				}
				elems, zp := in.NumElements(), in.Quant.ZeroPoint
				execs[ni] = func(b int) error {
					for i, v := range src[:b*elems] {
						if int32(v) < zp {
							dst[i] = int8(zp)
						} else {
							dst[i] = v
						}
					}
					return nil
				}
			}
		default:
			execs = nil
		}
		if execs == nil {
			break
		}
	}
	if execs != nil {
		bp.execs = execs
	}
	ip.batch = bp
	return nil
}

// BatchCapacity returns the planned stacked-utterance capacity (0 before
// PlanBatch).
func (ip *Interpreter) BatchCapacity() int {
	if ip.batch == nil {
		return 0
	}
	return ip.batch.capB
}

// BatchInput returns utterance j's input row in the stacked plan; stage
// quantized features here before InvokeBatch.
func (ip *Interpreter) BatchInput(j int) []int8 {
	elems := ip.Input(0).NumElements()
	return ip.batch.slabs[ip.model.Inputs[0]][j*elems : (j+1)*elems]
}

// BatchOutput returns utterance j's output row of the most recent
// InvokeBatch; valid until the next InvokeBatch on this interpreter.
func (ip *Interpreter) BatchOutput(j int) []int8 {
	elems := ip.Output(0).NumElements()
	return ip.batch.slabs[ip.model.Outputs[0]][j*elems : (j+1)*elems]
}

// InvokeBatch classifies the b staged utterances (1 ≤ b ≤ BatchCapacity)
// in one pass over the graph. Cycle metering charges b× the per-utterance
// node costs — batching is a host-side optimization; the simulated device
// still performs every utterance's work.
func (ip *Interpreter) InvokeBatch(b int) error {
	bp := ip.batch
	if bp == nil {
		return fmt.Errorf("tflm: InvokeBatch before PlanBatch")
	}
	if b < 1 || b > bp.capB {
		return fmt.Errorf("tflm: batch size %d outside planned capacity [1, %d]", b, bp.capB)
	}
	m := ip.model
	if bp.execs == nil {
		return ip.invokeBatchSerial(b)
	}
	for ni, ex := range bp.execs {
		if err := ex(b); err != nil {
			return fmt.Errorf("tflm: node %d (%v): %w", ni, m.Nodes[ni].Op, err)
		}
		if ip.meter != nil {
			ip.meter.Charge(uint64(b) * NodeCycles(m, m.Nodes[ni]))
		}
	}
	return nil
}

// invokeBatchSerial is the degraded path for graphs the batched engine
// cannot stack: each staged utterance runs through the ordinary serial
// Invoke, via the plan's I/O slabs so the caller contract is unchanged.
func (ip *Interpreter) invokeBatchSerial(b int) error {
	in, out := ip.Input(0), ip.Output(0)
	for j := 0; j < b; j++ {
		copy(in.I8, ip.BatchInput(j))
		if err := ip.Invoke(); err != nil {
			return err
		}
		copy(ip.BatchOutput(j), out.I8)
	}
	return nil
}
