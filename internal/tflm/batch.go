package tflm

import (
	"fmt"
	"runtime"
	"sync"
)

// Batched execution: PlanBatch sizes a stacked-utterance twin of the graph
// once, and InvokeBatch runs up to that many utterances through one pass of
// the node list — one taller im2col/GEMM per convolution (M→B·M patch
// rows), one wider GEMM per fully-connected layer, one sweep per
// elementwise node. Per-node dispatch is paid once per batch instead of
// once per utterance, and the packed weight panels stay L1-resident across
// the stacked rows.
//
// The plan owns stacked int8 slabs for every non-constant tensor; utterance
// j's input is staged via BatchInput(j) and its result read via
// BatchOutput(j). Output rows are valid until the next InvokeBatch (or
// Invoke) on this interpreter — copy what must outlive it. Results are
// bit-exact with running each utterance through Invoke serially: the
// batched kernels are the same kernels over stacked rows, and the batch
// slabs are disjoint from the serial tensors.
//
// PlanBatchParallel additionally fans InvokeBatch across a persistent
// shard-worker group: utterances are independent, so the batch splits into
// contiguous utterance spans and each shard runs the whole node list over
// its span. Every shard owns its own kernel scratch — im2col column slabs
// (padding prefilled per conv node), SWAR packed-activation rows, softmax
// staging — so the zero-allocation invariant survives; the stacked tensor
// slabs are shared but each shard touches only its span's disjoint rows.
// Workers are spawned once at plan time and parked on a channel between
// calls (no per-call goroutine churn); the degenerate parallelism of 1 is
// exactly the previous serial loop on shard 0. Cycle metering is untouched:
// InvokeBatch charges b× the per-utterance node costs regardless of how
// many host cores ran them — parallelism, like SWAR, is a host-side
// optimization invisible to the simulated device.

// batchShard is one execution context of the batched plan: every kernel
// scratch buffer a span sweep needs, so concurrent shards never share
// mutable state beyond the (row-disjoint) tensor slabs.
type batchShard struct {
	cols     [][]int8 // per conv node column slab, padding prefilled
	gemmX    []uint64
	smLogits []float64
	smProbs  []float64
}

// batchSpan is one unit of fan-out work: utterances [u0, u1).
type batchSpan struct{ u0, u1 int }

// batchPlan is the plan-time state of InvokeBatch.
type batchPlan struct {
	capB int
	par  int // shard count; 1 = serial
	// slabs[ti] holds capB stacked copies of tensor ti's storage (nil for
	// constants and tensors the batched graph never touches). A pure-copy
	// Reshape aliases its output slab to its input slab, so the copy
	// disappears from the batched hot path.
	slabs [][]int8
	// runs[ni] executes node ni over utterances [u0, u1) with shard sc's
	// scratch; nil runs means the whole plan fell back to per-utterance
	// serial Invoke (exotic node or dtype in the graph).
	runs   []func(sc *batchShard, u0, u1 int) error
	ops    []OpCode // node opcodes, for error messages off the fast path
	shards []*batchShard
	// tileB is the cache-blocking tile: runSpan sweeps the node list over
	// tileB utterances at a time so a tile's activation slab rows stay
	// L1-resident from producer to consumer instead of streaming the whole
	// span between nodes (0 = untiled). Chosen at plan time from the
	// per-utterance slab footprint; purely an iteration-order change, so
	// results are bit-identical to the untiled sweep.
	tileB int
	// Persistent worker group (par > 1 only): workers park on work and
	// answer on done; closing stop retires them.
	work     chan batchSpan
	done     chan error
	stop     chan struct{}
	stopOnce sync.Once
}

// colCopy is one replayed im2col transfer: col[dst:dst+n] = src[src:src+n].
type colCopy struct{ dst, src, n int32 }

// recordIm2col compiles the im2col traversal of one utterance (all original
// batches) into a copy program: the clip arithmetic, branch structure and
// padding fills run once at plan time; InvokeBatch replays only the
// surviving contiguous copies. Padding positions are never recorded — the
// plan prefills the column slab with the zero point once, and no replay
// touches those bytes again. Adjacent transfers that abut in both source
// and destination are merged.
func recordIm2col(g convGeom) []colCopy {
	var prog []colCopy
	rowLen := g.kW * g.inC
	add := func(dst, src, n int) {
		if n <= 0 {
			return
		}
		if len(prog) > 0 {
			last := &prog[len(prog)-1]
			if int(last.dst)+int(last.n) == dst && int(last.src)+int(last.n) == src {
				last.n += int32(n)
				return
			}
		}
		prog = append(prog, colCopy{int32(dst), int32(src), int32(n)})
	}
	m := 0
	for b := 0; b < g.batches; b++ {
		for oy := 0; oy < g.outH; oy++ {
			iy0 := oy*g.strideH - g.padT
			kyLo, kyHi := 0, g.kH
			if iy0 < 0 {
				kyLo = -iy0
			}
			if iy0+g.kH > g.inH {
				kyHi = g.inH - iy0
			}
			for ox := 0; ox < g.outW; ox++ {
				ix0 := ox*g.strideW - g.padL
				kxLo, kxHi := 0, g.kW
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+g.kW > g.inW {
					kxHi = g.inW - ix0
				}
				for ky := kyLo; ky < kyHi; ky++ {
					if kxHi <= kxLo {
						break
					}
					add(m*g.K+ky*rowLen+kxLo*g.inC,
						((b*g.inH+iy0+ky)*g.inW+ix0+kxLo)*g.inC,
						(kxHi-kxLo)*g.inC)
				}
				m++
			}
		}
	}
	return prog
}

// replayIm2col replays a compiled copy program into col, reading src at a
// byte offset (0 for serial Invoke, the utterance base for InvokeBatch).
// Short transfers move inline: the program is dominated by single-kernel-row
// segments a few bytes long, where memmove's call overhead dwarfs the move.
func replayIm2col(prog []colCopy, col, src []int8, off int) {
	for i := range prog {
		c := &prog[i]
		s := src[off+int(c.src) : off+int(c.src)+int(c.n)]
		d := col[c.dst : int(c.dst)+int(c.n)]
		if len(s) == 8 && len(d) == 8 {
			// The dominant record shape is one full kernel row of the
			// single-channel conv — exactly eight bytes, compiled to one
			// word-sized load/store pair instead of a byte loop.
			*(*[8]int8)(d) = *(*[8]int8)(s)
		} else if len(s) <= 16 {
			for j, v := range s {
				d[j] = v
			}
		} else {
			copy(d, s)
		}
	}
}

// convColSpec records one conv node's per-shard column-slab requirement.
type convColSpec struct {
	length int
	fill   int8
}

// PlanBatch prepares the interpreter to run up to maxB stacked utterances
// per InvokeBatch call with the serial (single-shard) engine; see
// PlanBatchParallel for the multi-core form.
func (ip *Interpreter) PlanBatch(maxB int) error { return ip.PlanBatchParallel(maxB, 1) }

// PlanBatchParallel prepares the interpreter to run up to maxB stacked
// utterances per InvokeBatch call, fanned across parallel shard contexts
// (parallel <= 0 means min(GOMAXPROCS, maxB)). It allocates the stacked
// activation slabs, the per-shard kernel scratch, and — for parallelism
// above 1 — the persistent worker goroutines now, so InvokeBatch performs
// no heap allocation and no goroutine spawning. Planning again replaces the
// previous plan (tickets into old slabs become stale; the old worker group
// retires). The model's primary input and output must be int8; graphs with
// nodes the batched engine cannot stack (float dtypes, pooling, dynamic
// weights) keep a degraded single-shard plan that runs the serial engine
// per utterance — same results, no stacked GEMM, no fan-out.
func (ip *Interpreter) PlanBatchParallel(maxB, parallel int) error {
	if maxB < 1 {
		return fmt.Errorf("tflm: batch capacity %d < 1", maxB)
	}
	m := ip.model
	if len(m.Inputs) != 1 || len(m.Outputs) != 1 {
		return fmt.Errorf("tflm: PlanBatch needs a single-input single-output model")
	}
	if ip.Input(0).Type != Int8 || ip.Output(0).Type != Int8 {
		return fmt.Errorf("tflm: PlanBatch needs int8 model I/O")
	}
	par := parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > maxB {
		par = maxB
	}
	bp := &batchPlan{capB: maxB, par: par, slabs: make([][]int8, len(m.Tensors))}
	slab := func(ti int) []int8 {
		t := m.Tensors[ti]
		if t.IsConst || t.Type != Int8 {
			return nil
		}
		if bp.slabs[ti] == nil {
			bp.slabs[ti] = make([]int8, maxB*t.NumElements())
		}
		return bp.slabs[ti]
	}
	// Input/output slabs exist even when the node walk degrades to the
	// serial fallback.
	slab(m.Inputs[0])
	slab(m.Outputs[0])
	// producers[ti] counts nodes writing tensor ti; the Reshape alias below
	// is only sound when both endpoints have a single writer.
	producers := make([]int, len(m.Tensors))
	for _, n := range m.Nodes {
		for _, o := range n.Outputs {
			producers[o]++
		}
	}

	var cols []convColSpec
	maxGemmX, maxDepth := 0, 0
	runs := make([]func(sc *batchShard, u0, u1 int) error, len(m.Nodes))
	for ni, n := range m.Nodes {
		switch n.Op {
		case OpConv2D:
			cp, ok := ip.preps[ni].(*convPrep)
			if !ok {
				runs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					runs = nil
					break
				}
				g, pr := cp.g, cp.pr
				// Dedicated column slab per (shard, conv node), prefilled
				// with the node's padding zero point so the replayed copy
				// program never has to re-fill padding. The slab holds one
				// utterance: replay and GEMM interleave per utterance so
				// the column data is consumed while still cache-hot (a
				// single B·M-row sweep would stream B×col through the
				// cache between write and read).
				ci := len(cols)
				cols = append(cols, convColSpec{length: g.batches * g.colLen(), fill: int8(pr.inZP)})
				if n := pr.gemmScratchLen(); n > maxGemmX {
					maxGemmX = n
				}
				prog := cp.prog // compiled once at prepNodes time
				uttIn := g.batches * g.inH * g.inW * g.inC
				rows := g.batches * g.M
				uttOut := rows * g.outC
				runs[ni] = func(sc *batchShard, u0, u1 int) error {
					col := sc.cols[ci]
					for u := u0; u < u1; u++ {
						replayIm2col(prog, col, src, u*uttIn)
						gemmInt8Requant(rows, col, dst[u*uttOut:(u+1)*uttOut], pr, sc.gemmX)
					}
					return nil
				}
			}
		case OpFullyConnected:
			fp, ok := ip.preps[ni].(*fcPrep)
			if !ok {
				runs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					runs = nil
					break
				}
				pr, rows := fp.pr, fp.batches
				if n := pr.gemmScratchLen(); n > maxGemmX {
					maxGemmX = n
				}
				inRow, outRow := rows*pr.k, rows*pr.n
				runs[ni] = func(sc *batchShard, u0, u1 int) error {
					gemmInt8Requant((u1-u0)*rows, src[u0*inRow:u1*inRow], dst[u0*outRow:u1*outRow], pr, sc.gemmX)
					return nil
				}
			}
		case OpSoftmax:
			sp, ok := ip.preps[ni].(*softmaxPrep)
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if !ok || in.Quant == nil || out.Quant == nil {
				runs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					runs = nil
					break
				}
				depth, outer, beta := sp.depth, sp.outer, sp.beta
				if depth > maxDepth {
					maxDepth = depth
				}
				inQ, outQ := in.Quant, out.Quant
				uttLen := outer * depth
				runs[ni] = func(sc *batchShard, u0, u1 int) error {
					softmaxRowsI8(src[u0*uttLen:u1*uttLen], dst[u0*uttLen:u1*uttLen],
						(u1-u0)*outer, depth, beta, inQ, outQ, sc.smLogits, sc.smProbs)
					return nil
				}
			}
		case OpReshape:
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if in.Type != Int8 || out.Type != Int8 || in.NumElements() != out.NumElements() {
				runs = nil
			} else {
				src := slab(n.Inputs[0])
				if src == nil {
					runs = nil
					break
				}
				// A reshape is a pure copy; when its endpoints each have a
				// single writer and the output slab does not exist yet, the
				// output can alias the input and the node costs nothing per
				// batch. (The simulated-device cycle charge still applies —
				// aliasing is a host optimization.)
				if producers[n.Inputs[0]] <= 1 && producers[n.Outputs[0]] == 1 && bp.slabs[n.Outputs[0]] == nil {
					bp.slabs[n.Outputs[0]] = src
					runs[ni] = func(*batchShard, int, int) error { return nil }
					break
				}
				dst := slab(n.Outputs[0])
				if dst == nil {
					runs = nil
					break
				}
				elems := in.NumElements()
				runs[ni] = func(sc *batchShard, u0, u1 int) error {
					copy(dst[u0*elems:u1*elems], src[u0*elems:u1*elems])
					return nil
				}
			}
		case OpRelu:
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if in.Type != Int8 || in.Quant == nil || in.NumElements() != out.NumElements() {
				runs = nil
			} else {
				src, dst := slab(n.Inputs[0]), slab(n.Outputs[0])
				if src == nil || dst == nil {
					runs = nil
					break
				}
				elems, zp := in.NumElements(), in.Quant.ZeroPoint
				runs[ni] = func(sc *batchShard, u0, u1 int) error {
					off := u0 * elems
					for i, v := range src[off : u1*elems] {
						if int32(v) < zp {
							dst[off+i] = int8(zp)
						} else {
							dst[off+i] = v
						}
					}
					return nil
				}
			}
		default:
			runs = nil
		}
		if runs == nil {
			break
		}
	}
	if runs != nil {
		bp.runs = runs
		bp.tileB = batchTile(bp.slabs, maxB)
		bp.ops = make([]OpCode, len(m.Nodes))
		for ni, n := range m.Nodes {
			bp.ops[ni] = n.Op
		}
		bp.shards = make([]*batchShard, bp.par)
		for s := range bp.shards {
			sc := &batchShard{cols: make([][]int8, len(cols))}
			for i, spec := range cols {
				col := make([]int8, spec.length)
				fillSlice(col, spec.fill)
				sc.cols[i] = col
			}
			if maxGemmX > 0 {
				sc.gemmX = make([]uint64, maxGemmX)
			}
			if maxDepth > 0 {
				sc.smLogits = make([]float64, maxDepth)
				sc.smProbs = make([]float64, maxDepth)
			}
			bp.shards[s] = sc
		}
	} else {
		// The serial fallback replays Invoke per utterance through the
		// single tensor storage; it cannot shard.
		bp.par = 1
	}
	ip.releaseBatchPlan()
	ip.batch = bp
	if bp.par > 1 {
		bp.startWorkers()
		// Retire the worker group when the interpreter itself is dropped
		// without a replacing plan. The cleanup must capture the plan, not
		// the interpreter, or the interpreter would never be collected; the
		// handle is stopped on replan/release so retired plans don't stay
		// pinned by their own backstop.
		c := runtime.AddCleanup(ip, func(old *batchPlan) { old.stopWorkers() }, bp)
		ip.batchCleanup = &c
	}
	return nil
}

// releaseBatchPlan retires the current plan's workers and cancels its GC
// cleanup backstop, dropping every reference the interpreter holds to it.
func (ip *Interpreter) releaseBatchPlan() {
	if ip.batch != nil {
		ip.batch.stopWorkers()
		ip.batch = nil
	}
	if ip.batchCleanup != nil {
		ip.batchCleanup.Stop()
		ip.batchCleanup = nil
	}
}

// startWorkers launches the persistent shard workers (shards 1..par−1;
// shard 0 always runs on the InvokeBatch caller). Workers hold no reference
// to the interpreter — only to the plan — and park on the work channel
// between calls.
func (bp *batchPlan) startWorkers() {
	bp.work = make(chan batchSpan)
	bp.done = make(chan error, bp.par)
	bp.stop = make(chan struct{})
	for w := 1; w < bp.par; w++ {
		sc := bp.shards[w]
		go func() {
			for {
				select {
				case <-bp.stop:
					return
				case sp := <-bp.work:
					bp.done <- bp.runSpan(sc, sp.u0, sp.u1)
				}
			}
		}()
	}
}

// stopWorkers retires the worker group; safe to call repeatedly and on
// serial plans.
func (bp *batchPlan) stopWorkers() {
	if bp.stop != nil {
		bp.stopOnce.Do(func() { close(bp.stop) })
	}
}

// batchTileBudget is the activation working set one cache-blocking tile may
// occupy, in bytes. It deliberately undershoots a typical 32 KiB L1d: the
// packed weight panels, the column slab rows and the SWAR scratch stream
// through the same cache while a tile is in flight.
const batchTileBudget = 16 << 10

// batchTile sizes the cache-blocking tile from the plan's stacked slabs:
// the largest utterance count whose slab rows fit batchTileBudget, floored
// at 2 so the GEMM keeps its two-row pairing, and capped at the plan
// capacity. Aliased slabs (Reshape) are counted once.
func batchTile(slabs [][]int8, capB int) int {
	perUtt := 0
	seen := make(map[*int8]bool, len(slabs))
	for _, s := range slabs {
		if len(s) == 0 || seen[&s[0]] {
			continue
		}
		seen[&s[0]] = true
		perUtt += len(s) / capB
	}
	if perUtt == 0 {
		return capB
	}
	t := batchTileBudget / perUtt
	if t < 2 {
		t = 2
	}
	if t > capB {
		t = capB
	}
	return t
}

// runSpan executes every node over utterances [u0, u1) with sc's scratch,
// cache-blocked: the node list sweeps tileB utterances at a time, so each
// tile's activations are consumed while still resident instead of the whole
// span streaming between producer and consumer nodes. Node order within a
// tile is unchanged and tiles are disjoint, so the result is bit-identical
// to the untiled sweep.
func (bp *batchPlan) runSpan(sc *batchShard, u0, u1 int) error {
	step := bp.tileB
	if step <= 0 {
		step = u1 - u0
	}
	for t0 := u0; t0 < u1; t0 += step {
		t1 := t0 + step
		if t1 > u1 {
			t1 = u1
		}
		for ni, run := range bp.runs {
			if err := run(sc, t0, t1); err != nil {
				return fmt.Errorf("tflm: node %d (%v): %w", ni, bp.ops[ni], err)
			}
		}
	}
	return nil
}

// ReleaseBatch drops the batch plan and retires its worker group, if any.
// Optional — a dropped interpreter's workers are retired by a GC cleanup —
// but callers that own worker lifecycles (core.Server) release explicitly
// so goroutine accounting is deterministic.
func (ip *Interpreter) ReleaseBatch() { ip.releaseBatchPlan() }

// BatchCapacity returns the planned stacked-utterance capacity (0 before
// PlanBatch).
func (ip *Interpreter) BatchCapacity() int {
	if ip.batch == nil {
		return 0
	}
	return ip.batch.capB
}

// BatchParallelism returns the planned shard count (0 before PlanBatch; 1
// for serial plans, including the degraded fallback).
func (ip *Interpreter) BatchParallelism() int {
	if ip.batch == nil {
		return 0
	}
	return ip.batch.par
}

// BatchInput returns utterance j's input row in the stacked plan; stage
// quantized features here before InvokeBatch.
func (ip *Interpreter) BatchInput(j int) []int8 {
	elems := ip.Input(0).NumElements()
	return ip.batch.slabs[ip.model.Inputs[0]][j*elems : (j+1)*elems]
}

// BatchOutput returns utterance j's output row of the most recent
// InvokeBatch; valid until the next InvokeBatch on this interpreter.
func (ip *Interpreter) BatchOutput(j int) []int8 {
	elems := ip.Output(0).NumElements()
	return ip.batch.slabs[ip.model.Outputs[0]][j*elems : (j+1)*elems]
}

// InvokeBatch classifies the b staged utterances (1 ≤ b ≤ BatchCapacity)
// in one pass over the graph, fanning contiguous utterance spans across the
// planned shards when the plan is parallel (spans only as many shards as
// there are utterances; a lone utterance never leaves the caller). Cycle
// metering charges b× the per-utterance node costs — batching and host
// parallelism are host-side optimizations; the simulated device still
// performs every utterance's work.
func (ip *Interpreter) InvokeBatch(b int) error {
	bp := ip.batch
	if bp == nil {
		return fmt.Errorf("tflm: InvokeBatch before PlanBatch")
	}
	if b < 1 || b > bp.capB {
		return fmt.Errorf("tflm: batch size %d outside planned capacity [1, %d]", b, bp.capB)
	}
	m := ip.model
	if bp.runs == nil {
		return ip.invokeBatchSerial(b)
	}
	p := bp.par
	if p > b {
		p = b
	}
	var err error
	if p <= 1 {
		err = bp.runSpan(bp.shards[0], 0, b)
	} else {
		// Balanced contiguous spans: the first b%p spans take one extra
		// utterance. The caller keeps span 0 and collects the rest.
		q, r := b/p, b%p
		u1 := q
		if r > 0 {
			u1++
		}
		u := u1
		for w := 1; w < p; w++ {
			sz := q
			if w < r {
				sz++
			}
			bp.work <- batchSpan{u, u + sz}
			u += sz
		}
		err = bp.runSpan(bp.shards[0], 0, u1)
		for w := 1; w < p; w++ {
			if e := <-bp.done; err == nil {
				err = e
			}
		}
	}
	if err != nil {
		return err
	}
	if ip.meter != nil {
		for _, n := range m.Nodes {
			ip.meter.Charge(uint64(b) * NodeCycles(m, n))
		}
	}
	return nil
}

// invokeBatchSerial is the degraded path for graphs the batched engine
// cannot stack: each staged utterance runs through the ordinary serial
// Invoke, via the plan's I/O slabs so the caller contract is unchanged.
func (ip *Interpreter) invokeBatchSerial(b int) error {
	in, out := ip.Input(0), ip.Output(0)
	for j := 0; j < b; j++ {
		copy(in.I8, ip.BatchInput(j))
		if err := ip.Invoke(); err != nil {
			return err
		}
		copy(ip.BatchOutput(j), out.I8)
	}
	return nil
}
