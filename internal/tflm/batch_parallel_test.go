package tflm

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestInvokeBatchParallelMatchesSerial: for shard counts beyond one and
// batch sizes straddling the shard count (1, P−1, P, 2P+3), the fanned-out
// InvokeBatch must be bit-exact with running each utterance through serial
// Invoke — which the kernel equivalence tests in turn pin to the scalar
// reference kernels. Randomized conv geometries plus the paper tiny_conv.
func TestInvokeBatchParallelMatchesSerial(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		for _, par := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("trial%d_par%d", trial, par), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(17000 + 31*trial + par)))
				var model *Model
				if trial == 0 {
					var err error
					if model, err = BuildRandomTinyConv(1, 7); err != nil {
						t.Fatal(err)
					}
				} else {
					model = buildRandomConvModel(t, r)
				}
				batched, err := NewInterpreter(model.Clone())
				if err != nil {
					t.Fatal(err)
				}
				serial, err := NewInterpreter(model.Clone())
				if err != nil {
					t.Fatal(err)
				}
				maxB := 2*par + 3
				if err := batched.PlanBatchParallel(maxB, par); err != nil {
					t.Fatal(err)
				}
				if got := batched.BatchParallelism(); got != par {
					t.Fatalf("BatchParallelism = %d, want %d", got, par)
				}
				inElems := serial.Input(0).NumElements()
				outElems := serial.Output(0).NumElements()
				for _, b := range []int{1, par - 1, par, 2*par + 3} {
					if b < 1 {
						continue
					}
					inputs := make([][]int8, b)
					for j := 0; j < b; j++ {
						inputs[j] = make([]int8, inElems)
						for i := range inputs[j] {
							inputs[j][i] = int8(r.Intn(256) - 128)
						}
						copy(batched.BatchInput(j), inputs[j])
					}
					if err := batched.InvokeBatch(b); err != nil {
						t.Fatal(err)
					}
					for j := 0; j < b; j++ {
						copy(serial.Input(0).I8, inputs[j])
						if err := serial.Invoke(); err != nil {
							t.Fatal(err)
						}
						got := batched.BatchOutput(j)
						for i := 0; i < outElems; i++ {
							if got[i] != serial.Output(0).I8[i] {
								t.Fatalf("B=%d utterance %d output %d: parallel %d != serial %d",
									b, j, i, got[i], serial.Output(0).I8[i])
							}
						}
					}
				}
				batched.ReleaseBatch()
			})
		}
	}
}

// TestInvokeBatchParallelZeroAlloc: the fan-out must not touch the heap —
// shard scratch is plan-owned and the worker handoff is channel traffic of
// plain structs. AllocsPerRun reads the global allocation counter, so the
// worker goroutines' behavior is covered too.
func TestInvokeBatchParallelZeroAlloc(t *testing.T) {
	model, err := BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 8
	if err := ip.PlanBatchParallel(batch, 2); err != nil {
		t.Fatal(err)
	}
	defer ip.ReleaseBatch()
	for j := 0; j < batch; j++ {
		row := ip.BatchInput(j)
		for i := range row {
			row[i] = int8((i + j) % 251)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := ip.InvokeBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("parallel InvokeBatch allocates %v times per run, want 0", allocs)
	}
}

// waitGoroutines polls for the goroutine count to drop back to want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines = %d, want <= %d (leaked shard workers?)", runtime.NumGoroutine(), want)
}

// TestPlanBatchParallelWorkerLifecycle: replanning retires the previous
// worker group, ReleaseBatch retires the last one, and parallelism clamps
// to the batch capacity (no worker can ever get an empty span).
func TestPlanBatchParallelWorkerLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	model, err := BuildRandomTinyConv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.PlanBatchParallel(8, 3); err != nil {
		t.Fatal(err)
	}
	if got := ip.BatchParallelism(); got != 3 {
		t.Fatalf("BatchParallelism = %d, want 3", got)
	}
	// Replanning must not stack a second worker group on the first.
	if err := ip.PlanBatchParallel(8, 4); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base+3) // 4 shards → 3 workers
	// Parallelism clamps to capacity.
	if err := ip.PlanBatchParallel(2, 16); err != nil {
		t.Fatal(err)
	}
	if got := ip.BatchParallelism(); got != 2 {
		t.Fatalf("BatchParallelism = %d after clamp, want 2", got)
	}
	ip.ReleaseBatch()
	waitGoroutines(t, base)
	if got := ip.BatchParallelism(); got != 0 {
		t.Fatalf("BatchParallelism after release = %d, want 0", got)
	}
	if err := ip.InvokeBatch(1); err == nil {
		t.Fatal("InvokeBatch after ReleaseBatch accepted")
	}
}
