package tflm

import (
	"fmt"
	"math/rand"
)

// BuildRandomTinyConv constructs the paper's tiny_conv architecture
// (Conv2D 8·mul filters 10×8 stride 2×2 SAME + fused ReLU → Reshape →
// FullyConnected(12) → Softmax over a 1×49×43×1 int8 fingerprint) with
// deterministic random weights. Protocol tests, benchmarks and the scaling
// experiment use it where a *trained* model is unnecessary: weight values
// do not affect latency, size or protocol behaviour.
func BuildRandomTinyConv(mul int, seed int64) (*Model, error) {
	if mul <= 0 {
		return nil, fmt.Errorf("tflm: filter multiplier %d", mul)
	}
	r := rand.New(rand.NewSource(seed))
	filters := 8 * mul
	b := NewBuilder(fmt.Sprintf("tiny_conv %dx (random weights)", mul), 1)
	inQ := QuantParams{Scale: 1.0 / 128, ZeroPoint: 0}
	in := b.Tensor(&Tensor{Name: "fingerprint", Type: Int8, Shape: []int{1, 49, 43, 1}, Quant: &inQ})
	b.Input(in)

	wQ := SymmetricWeightParams(0.5)
	convW := &Tensor{Name: "conv_w", Type: Int8, Shape: []int{filters, 10, 8, 1}, Quant: &wQ}
	convW.Alloc()
	for i := range convW.I8 {
		convW.I8[i] = int8(r.Intn(255) - 127)
	}
	convB := &Tensor{Name: "conv_b", Type: Int32, Shape: []int{filters}, Quant: &QuantParams{Scale: inQ.Scale * wQ.Scale}}
	convB.Alloc()
	wi, bi := b.Const(convW), b.Const(convB)

	convQ := QuantParams{Scale: 0.2, ZeroPoint: -128}
	flatLen := 25 * 22 * filters
	convOut := b.Tensor(&Tensor{Name: "conv_out", Type: Int8, Shape: []int{1, 25, 22, filters}, Quant: &convQ})
	b.Node(OpConv2D, Conv2DParams{StrideH: 2, StrideW: 2, Padding: PaddingSame, Activation: ActReLU},
		[]int{in, wi, bi}, []int{convOut})
	flat := b.Tensor(&Tensor{Name: "flat", Type: Int8, Shape: []int{1, flatLen}, Quant: &convQ})
	b.Node(OpReshape, ReshapeParams{NewShape: []int{1, flatLen}}, []int{convOut}, []int{flat})

	fcWQ := SymmetricWeightParams(0.25)
	fcW := &Tensor{Name: "fc_w", Type: Int8, Shape: []int{12, flatLen}, Quant: &fcWQ}
	fcW.Alloc()
	for i := range fcW.I8 {
		fcW.I8[i] = int8(r.Intn(255) - 127)
	}
	fcB := &Tensor{Name: "fc_b", Type: Int32, Shape: []int{12}, Quant: &QuantParams{Scale: convQ.Scale * fcWQ.Scale}}
	fcB.Alloc()
	fwi, fbi := b.Const(fcW), b.Const(fcB)

	logitQ := QuantParams{Scale: 0.5, ZeroPoint: 0}
	logits := b.Tensor(&Tensor{Name: "logits", Type: Int8, Shape: []int{1, 12}, Quant: &logitQ})
	b.Node(OpFullyConnected, FullyConnectedParams{}, []int{flat, fwi, fbi}, []int{logits})
	probQ := SoftmaxOutputParams()
	probs := b.Tensor(&Tensor{Name: "probs", Type: Int8, Shape: []int{1, 12}, Quant: &probQ})
	b.Node(OpSoftmax, SoftmaxParams{Beta: 1}, []int{logits}, []int{probs})
	b.Output(probs)
	return b.Build()
}
