package tflm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDepthwiseInt8TracksFloatConv: depthwise conv with depth multiplier 1
// equals a per-channel grouped convolution; validate the quantized kernel
// against a float computation channel by channel.
func TestDepthwiseInt8TracksFloatConv(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const h, w, c = 7, 6, 3
	inF := randomFloats(r, h*w*c, 1.0)
	wF := randomFloats(r, 3*3*c, 0.5)
	bF := randomFloats(r, c, 0.1)

	// Float reference computed directly.
	outH, padT := convOutputSize(h, 3, 1, PaddingSame)
	outW, padL := convOutputSize(w, 3, 1, PaddingSame)
	ref := make([]float32, outH*outW*c)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ch := 0; ch < c; ch++ {
				acc := bF[ch]
				for ky := 0; ky < 3; ky++ {
					iy := oy - padT + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < 3; kx++ {
						ix := ox - padL + kx
						if ix < 0 || ix >= w {
							continue
						}
						acc += inF[(iy*w+ix)*c+ch] * wF[(ky*3+kx)*c+ch]
					}
				}
				ref[(oy*outW+ox)*c+ch] = acc
			}
		}
	}

	qin := quantizeTensorF32("in", []int{1, h, w, c}, inF)
	qw := quantizeWeights("w", []int{1, 3, 3, c}, wF)
	qb := quantizeBias("b", bF, qin.Quant.Scale, qw.Quant.Scale)
	outMin, outMax := 0.0, 0.0
	for _, v := range ref {
		outMin = math.Min(outMin, float64(v))
		outMax = math.Max(outMax, float64(v))
	}
	oq := ChooseQuantParams(outMin, outMax)
	qout := &Tensor{Type: Int8, Shape: []int{1, outH, outW, c}, Quant: &oq}
	qout.Alloc()
	err := evalDepthwiseConv2D(qin, qw, qb, qout, Conv2DParams{
		StrideH: 1, StrideW: 1, Padding: PaddingSame, DepthMultiplier: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		got := oq.Dequantize(qout.I8[i])
		if math.Abs(got-float64(ref[i])) > 4*oq.Scale {
			t.Fatalf("out[%d]: %v vs %v", i, got, ref[i])
		}
	}
}

// TestPoolingWithSamePadding: pooled windows at the border must only
// average the in-bounds elements (TFLite semantics).
func TestPoolingWithSamePadding(t *testing.T) {
	unit := QuantParams{Scale: 1, ZeroPoint: 0}
	// 3x3 input, 2x2 filter, stride 2, SAME → 2x2 output; the bottom-right
	// window sees a single element.
	in := &Tensor{Type: Int8, Shape: []int{1, 3, 3, 1}, Quant: &unit,
		I8: []int8{1, 2, 3, 4, 5, 6, 7, 8, 9}}
	out := &Tensor{Type: Int8, Shape: []int{1, 2, 2, 1}, Quant: &unit}
	out.Alloc()
	p := PoolParams{FilterH: 2, FilterW: 2, StrideH: 2, StrideW: 2, Padding: PaddingSame}
	if err := evalPool(OpAvgPool2D, in, out, p); err != nil {
		t.Fatal(err)
	}
	want := []int8{3, 5, 8, 9} // avg{1,2,4,5}=3, avg{3,6}=5 (rounded), avg{7,8}=8, avg{9}=9
	for i := range want {
		if out.I8[i] != want[i] {
			t.Fatalf("avgpool[%d] = %d, want %d", i, out.I8[i], want[i])
		}
	}
	if err := evalPool(OpMaxPool2D, in, out, p); err != nil {
		t.Fatal(err)
	}
	wantMax := []int8{5, 6, 8, 9}
	for i := range wantMax {
		if out.I8[i] != wantMax[i] {
			t.Fatalf("maxpool[%d] = %d, want %d", i, out.I8[i], wantMax[i])
		}
	}
}

// TestRequantOrderInvariance: for a positive multiplier, requantize-then-
// clamp at the zero point equals ReLU-then-requantize — the property the
// integer baselines (intnet) rely on when they skip requantization.
func TestRequantOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mult, err := NewQuantizedMultiplier(math.Exp(r.Float64()*6 - 6))
		if err != nil {
			return false
		}
		zp := int32(r.Intn(50) - 25)
		for i := 0; i < 50; i++ {
			acc := int32(r.Intn(1<<20) - 1<<19)
			// Path A: requantize, add zp, clamp at zp (fused ReLU).
			a := mult.Apply(acc) + zp
			if a < zp {
				a = zp
			}
			// Path B: ReLU on the accumulator, then requantize.
			accB := acc
			if accB < 0 {
				accB = 0
			}
			bV := mult.Apply(accB) + zp
			if bV < zp {
				bV = zp
			}
			// Identical up to one rounding quantum.
			if d := a - bV; d > 1 || d < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBuildRandomTinyConvMultipliers checks the exported builder across
// widths (used by E10 and the benchmarks).
func TestBuildRandomTinyConvMultipliers(t *testing.T) {
	for _, mul := range []int{1, 2, 4} {
		m, err := BuildRandomTinyConv(mul, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.NumMACs(); got != uint64(4400*80+12*4400)*uint64(mul) {
			t.Fatalf("mul %d: MACs = %d", mul, got)
		}
		if _, err := NewInterpreter(m); err != nil {
			t.Fatalf("mul %d: %v", mul, err)
		}
	}
	if _, err := BuildRandomTinyConv(0, 1); err == nil {
		t.Fatal("zero multiplier accepted")
	}
	// Same seed, same bytes.
	a, _ := BuildRandomTinyConv(1, 5)
	b, _ := BuildRandomTinyConv(1, 5)
	ab, _ := Encode(a)
	bb, _ := Encode(b)
	if string(ab) != string(bb) {
		t.Fatal("builder not deterministic")
	}
}

// TestArenaOffsetsRecorded: after planning, non-const tensors carry their
// arena offsets for diagnostics.
func TestArenaOffsetsRecorded(t *testing.T) {
	m := testTinyConvModel(t, 1)
	if _, err := NewInterpreter(m); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, tt := range m.Tensors {
		if !tt.IsConst && tt.ArenaOffset >= 0 {
			seen = true
		}
		if tt.IsConst && tt.ArenaOffset > 0 {
			t.Fatalf("const tensor %q has arena offset", tt.Name)
		}
	}
	if !seen {
		t.Fatal("no arena offsets recorded")
	}
}
