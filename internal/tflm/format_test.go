package tflm

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testTinyConvModel(t, 7)
	blob, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || got.Description != m.Description {
		t.Fatalf("metadata: %d %q", got.Version, got.Description)
	}
	if len(got.Tensors) != len(m.Tensors) || len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("counts: %d tensors, %d nodes", len(got.Tensors), len(got.Nodes))
	}
	for i, want := range m.Tensors {
		g := got.Tensors[i]
		if g.Name != want.Name || g.Type != want.Type || !g.ShapeEquals(want.Shape) || g.IsConst != want.IsConst {
			t.Fatalf("tensor %d header mismatch: %v vs %v", i, g, want)
		}
		if (g.Quant == nil) != (want.Quant == nil) {
			t.Fatalf("tensor %d quant presence", i)
		}
		if g.Quant != nil && *g.Quant != *want.Quant {
			t.Fatalf("tensor %d quant %v vs %v", i, *g.Quant, *want.Quant)
		}
		if want.IsConst {
			switch want.Type {
			case Int8:
				if !reflect.DeepEqual(g.I8, want.I8) {
					t.Fatalf("tensor %d const data mismatch", i)
				}
			case Int32:
				if !reflect.DeepEqual(g.I32, want.I32) {
					t.Fatalf("tensor %d const data mismatch", i)
				}
			}
		}
	}
	for i, want := range m.Nodes {
		g := got.Nodes[i]
		if g.Op != want.Op || !reflect.DeepEqual(g.Inputs, want.Inputs) || !reflect.DeepEqual(g.Outputs, want.Outputs) {
			t.Fatalf("node %d header mismatch", i)
		}
		if !reflect.DeepEqual(g.Params, want.Params) {
			t.Fatalf("node %d params %#v vs %#v", i, g.Params, want.Params)
		}
	}
	if !reflect.DeepEqual(got.Inputs, m.Inputs) || !reflect.DeepEqual(got.Outputs, m.Outputs) {
		t.Fatal("io lists mismatch")
	}

	// The decoded model runs and agrees with the original.
	ip1, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := NewInterpreter(got)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := range ip1.Input(0).I8 {
		v := int8(r.Intn(255) - 128)
		ip1.Input(0).I8[i] = v
		ip2.Input(0).I8[i] = v
	}
	if err := ip1.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := ip2.Invoke(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ip1.Output(0).I8, ip2.Output(0).I8) {
		t.Fatal("decoded model computes different outputs")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := testTinyConvModel(t, 3)
	a, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded nil")
	}
	if _, err := Decode([]byte("XXXX garbage")); err == nil {
		t.Fatal("decoded bad magic")
	}
	m := testTinyConvModel(t, 1)
	blob, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at various points must error, never panic.
	for _, n := range []int{4, 5, 10, 20, 100, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("decoded truncation at %d bytes", n)
		}
	}
	// A wrong format version is refused.
	bad := append([]byte(nil), blob...)
	bad[4] = 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("decoded wrong format version")
	}
}

func TestDecodeRandomCorruptionNeverPanics(t *testing.T) {
	m := testTinyConvModel(t, 1)
	blob, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), blob...)
		for k := 0; k < 1+r.Intn(8); k++ {
			bad[r.Intn(len(bad))] ^= byte(1 + r.Intn(255))
		}
		// Either decodes to a valid model or errors; must not panic.
		if dm, err := Decode(bad); err == nil {
			if err := dm.Validate(); err != nil {
				t.Fatalf("Decode returned invalid model: %v", err)
			}
		}
	}
}
