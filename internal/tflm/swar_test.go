package tflm

import (
	"math/rand"
	"testing"
)

// refDotI8 is the scalar ground truth: plain wrapped int32 accumulation,
// exactly what the reference kernels in op_ref.go do per output.
func refDotI8(a, b []int8) int32 {
	var acc int32
	for i := range a {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

// TestSWARDotMatchesScalar sweeps random lengths (including every tail
// residue mod 3 and mod 8) and value distributions including the saturating
// extremes, where −128·−128 = 16384 would overflow a naive 16-bit product
// lane.
func TestSWARDotMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		k := r.Intn(300)
		a := make([]int8, k)
		b := make([]int8, k)
		switch trial % 4 {
		case 0: // uniform
			for i := range a {
				a[i] = int8(r.Intn(256) - 128)
				b[i] = int8(r.Intn(256) - 128)
			}
		case 1: // saturating corners only
			corners := []int8{-128, -127, 127}
			for i := range a {
				a[i] = corners[r.Intn(len(corners))]
				b[i] = corners[r.Intn(len(corners))]
			}
		case 2: // all −128: every product is the 16384 overflow corner
			for i := range a {
				a[i], b[i] = -128, -128
			}
		case 3: // sparse
			for i := range a {
				if r.Intn(4) == 0 {
					a[i] = int8(r.Intn(256) - 128)
				}
				if r.Intn(4) == 0 {
					b[i] = int8(r.Intn(256) - 128)
				}
			}
		}
		if got, want := swarDotI8(a, b), refDotI8(a, b); got != want {
			t.Fatalf("k=%d trial=%d: swarDotI8 = %d, want %d", k, trial, got, want)
		}
	}
	// Long vector: exercises the lane-sum fold bound and accumulator width.
	k := swarGroup*swarFoldGroups + 17
	a := make([]int8, k)
	b := make([]int8, k)
	for i := range a {
		a[i], b[i] = -128, -128
	}
	if got, want := swarDotI8(a, b), refDotI8(a, b); got != want {
		t.Fatalf("long all-min dot: swarDotI8 = %d, want %d", got, want)
	}
}

// TestSWARExpandRowFold pins swarExpandRow's chunked lane-sum fold against a
// direct byte sum across the fold boundary.
func TestSWARExpandRowFold(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 7, 8, 80, swarGroup * swarFoldGroups, swarGroup*swarFoldGroups + 1, swarGroup*swarFoldGroups + 5} {
		a := make([]int8, k)
		for i := range a {
			a[i] = int8((i*37 + 11) % 256)
			if i%5 == 0 {
				a[i] = -128
			}
		}
		x := make([]uint64, swarGroups(k))
		adj := swarExpandRow(a, x)
		var usum int64
		for _, v := range a {
			usum += int64(v) + 128
		}
		if want := int32(-128 * usum); adj != want {
			t.Fatalf("k=%d: adj = %d, want %d", k, adj, want)
		}
		// Lanes must reproduce the biased bytes, zero past the end.
		for i := 0; i < len(x)*swarGroup; i++ {
			lane := x[i/swarGroup] >> (uint(i%swarGroup) * swarShift) & swarMidMask
			want := uint64(0)
			if i < k {
				want = uint64(uint8(a[i]) ^ swarBias)
			}
			if lane != want {
				t.Fatalf("k=%d lane %d = %d, want %d", k, i, lane, want)
			}
		}
	}
}

// FuzzSWARDot fuzzes the SWAR dot product against the scalar reference: the
// input splits into two equal halves (so ragged lengths with every residue
// mod 3 and mod 8 arise naturally), and the checked-in seed corpus pins the
// saturating −128·−128 lane corner and both tail shapes.
func FuzzSWARDot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80}) // single-pair −128·−128
	// 8 pairs of −128: overflows a 16-bit lane twice over if mishandled.
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{1, 255, 128, 127, 0, 3})                           // k=3 (no tail)
	f.Add([]byte{1, 255, 128, 127, 0, 3, 80, 81})                   // k=4 → tail 1
	f.Add([]byte{1, 255, 128, 127, 0, 3, 80, 81, 200, 201})         // k=5 → tail 2
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 254, 128, 127}) // k=7
	f.Fuzz(func(t *testing.T, data []byte) {
		k := len(data) / 2
		a := make([]int8, k)
		b := make([]int8, k)
		for i := 0; i < k; i++ {
			a[i] = int8(data[i])
			b[i] = int8(data[k+i])
		}
		if got, want := swarDotI8(a, b), refDotI8(a, b); got != want {
			t.Fatalf("k=%d: swarDotI8 = %d, want %d (a=%v b=%v)", k, got, want, a, b)
		}
	})
}
