// Package tflm is a from-scratch re-implementation of the inference engine
// the OMG paper runs inside its enclave: TensorFlow Lite for Microcontrollers
// (§VI). It provides int8 post-training-quantized reference kernels with
// TFLite's exact fixed-point requantization arithmetic, float32 kernels for
// parity testing, a greedy arena memory planner, an interpreter, a compact
// binary model format ("OMGM"), and a per-operator cycle-cost model used to
// charge simulated cores.
//
// The engine supports the paper's tiny_conv keyword-spotting network —
// Conv2D (8 filters, 8×10, stride 2×2, SAME) + ReLU + FullyConnected +
// Softmax over a 49×43 spectrogram fingerprint — as well as the additional
// operators (depthwise convolution, pooling) needed for the model-scaling
// experiment E10 and for porting "larger and recurrent architectures" the
// paper mentions as future work.
package tflm

import (
	"fmt"
	"math"
	"strings"
)

// DType enumerates tensor element types.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota
	Int8
	UInt8
	Int32
)

// String names the dtype.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	case UInt8:
		return "uint8"
	case Int32:
		return "int32"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	default:
		return 1
	}
}

// QuantParams holds per-tensor affine quantization parameters:
// real = Scale * (q - ZeroPoint).
type QuantParams struct {
	// Scale is the real-domain step per quantized unit.
	Scale float64
	// ZeroPoint is the quantized value representing real 0.
	ZeroPoint int32
}

// Quantize maps a real value to the quantized domain with round-to-nearest
// and saturation to the int8 range. Clamping happens in the float domain so
// arbitrarily large inputs saturate instead of wrapping.
func (q QuantParams) Quantize(x float64) int8 {
	v := roundAwayFromZero(x/q.Scale) + float64(q.ZeroPoint)
	if v < -128 {
		return -128
	}
	if v > 127 {
		return 127
	}
	return int8(v)
}

// Dequantize maps a quantized value back to the real domain.
func (q QuantParams) Dequantize(v int8) float64 {
	return q.Scale * float64(int32(v)-q.ZeroPoint)
}

func roundAwayFromZero(x float64) float64 {
	if x >= 0 {
		return math.Floor(x + 0.5)
	}
	return math.Ceil(x - 0.5)
}

// Tensor is an n-dimensional array with optional quantization parameters.
// 4-D tensors use NHWC layout; convolution filters use OHWI (output
// channels, height, width, input channels), matching TFLite.
type Tensor struct {
	// Name is the tensor's debug name.
	Name string
	// Type is the element dtype, matching the allocated storage slice.
	Type DType
	// Shape is the dimension list (NHWC for 4-D activations).
	Shape []int
	// Quant holds the affine quantization parameters; nil for float.
	Quant *QuantParams

	// F32, I8, U8, I32 are the element storage: exactly one is non-nil
	// once allocated, matching Type.
	F32 []float32 // Float32 storage
	I8  []int8    // Int8 storage
	U8  []uint8   // UInt8 storage
	I32 []int32   // Int32 storage

	// IsConst marks weight/bias tensors whose data is baked into the model.
	IsConst bool
	// ArenaOffset is the byte offset assigned by the memory planner for
	// non-constant tensors (-1 before planning).
	ArenaOffset int
}

// NumElements returns the product of the shape dimensions.
func (t *Tensor) NumElements() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// ByteSize returns the tensor's storage size.
func (t *Tensor) ByteSize() int { return t.NumElements() * t.Type.Size() }

// Alloc allocates backing storage for the tensor's type and shape.
func (t *Tensor) Alloc() {
	n := t.NumElements()
	switch t.Type {
	case Float32:
		if len(t.F32) != n {
			t.F32 = make([]float32, n)
		}
	case Int8:
		if len(t.I8) != n {
			t.I8 = make([]int8, n)
		}
	case UInt8:
		if len(t.U8) != n {
			t.U8 = make([]uint8, n)
		}
	case Int32:
		if len(t.I32) != n {
			t.I32 = make([]int32, n)
		}
	}
}

// Allocated reports whether backing storage matches the shape.
func (t *Tensor) Allocated() bool {
	n := t.NumElements()
	switch t.Type {
	case Float32:
		return len(t.F32) == n
	case Int8:
		return len(t.I8) == n
	case UInt8:
		return len(t.U8) == n
	case Int32:
		return len(t.I32) == n
	default:
		return false
	}
}

// Dim returns shape dimension i, or 1 when the axis does not exist, which
// lets kernels treat lower-rank tensors as batch-1 NHWC.
func (t *Tensor) Dim(i int) int {
	if i < len(t.Shape) {
		return t.Shape[i]
	}
	return 1
}

// ShapeEquals compares shapes element-wise.
func (t *Tensor) ShapeEquals(shape []int) bool {
	if len(t.Shape) != len(shape) {
		return false
	}
	for i := range shape {
		if t.Shape[i] != shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description ("conv_w int8[8 10 8 1] const").
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %v%v", t.Name, t.Type, t.Shape)
	if t.IsConst {
		sb.WriteString(" const")
	}
	if t.Quant != nil {
		fmt.Fprintf(&sb, " q(%.6g,%d)", t.Quant.Scale, t.Quant.ZeroPoint)
	}
	return sb.String()
}
