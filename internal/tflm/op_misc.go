package tflm

import (
	"fmt"
	"math"
)

// evalRelu is the standalone ReLU operator (same quantization in and out).
func evalRelu(in, out *Tensor) error {
	if in.NumElements() != out.NumElements() {
		return fmt.Errorf("tflm: Relu shape mismatch %v vs %v", in.Shape, out.Shape)
	}
	switch in.Type {
	case Int8:
		if err := wantQuant(in); err != nil {
			return err
		}
		zp := in.Quant.ZeroPoint
		for i, v := range in.I8 {
			if int32(v) < zp {
				out.I8[i] = int8(zp)
			} else {
				out.I8[i] = v
			}
		}
		return nil
	case Float32:
		for i, v := range in.F32 {
			if v < 0 {
				out.F32[i] = 0
			} else {
				out.F32[i] = v
			}
		}
		return nil
	default:
		return fmt.Errorf("tflm: Relu unsupported type %v", in.Type)
	}
}

// evalSoftmax computes softmax over the last dimension. For quantized
// tensors the computation dequantizes to float, applies softmax, and
// requantizes to the output parameters; TFLM proper uses a fixed-point exp
// LUT, a substitution that changes results by <1 quantum and is documented
// in DESIGN.md.
func evalSoftmax(in, out *Tensor, p SoftmaxParams) error {
	depth := in.Shape[len(in.Shape)-1]
	return evalSoftmaxScratch(in, out, p, make([]float64, depth), make([]float64, depth))
}

// evalSoftmaxScratch is evalSoftmax with caller-owned staging buffers (at
// least depth elements each); the interpreter passes its plan-time scratch
// so Invoke stays allocation-free.
func evalSoftmaxScratch(in, out *Tensor, p SoftmaxParams, logits, probs []float64) error {
	if in.NumElements() != out.NumElements() {
		return fmt.Errorf("tflm: Softmax shape mismatch %v vs %v", in.Shape, out.Shape)
	}
	beta := p.Beta
	if beta == 0 {
		beta = 1
	}
	depth := in.Shape[len(in.Shape)-1]
	outer := in.NumElements() / depth
	logits = logits[:depth]
	probs = probs[:depth]
	for b := 0; b < outer; b++ {
		switch in.Type {
		case Int8:
			if err := wantQuant(in); err != nil {
				return err
			}
			for i := 0; i < depth; i++ {
				logits[i] = in.Quant.Dequantize(in.I8[b*depth+i])
			}
		case Float32:
			for i := 0; i < depth; i++ {
				logits[i] = float64(in.F32[b*depth+i])
			}
		default:
			return fmt.Errorf("tflm: Softmax unsupported type %v", in.Type)
		}
		maxV := logits[0]
		for _, v := range logits[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range logits {
			probs[i] = math.Exp(beta * (v - maxV))
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		switch out.Type {
		case Int8:
			if err := wantQuant(out); err != nil {
				return err
			}
			for i := 0; i < depth; i++ {
				out.I8[b*depth+i] = out.Quant.Quantize(probs[i])
			}
		case Float32:
			for i := 0; i < depth; i++ {
				out.F32[b*depth+i] = float32(probs[i])
			}
		default:
			return fmt.Errorf("tflm: Softmax unsupported output type %v", out.Type)
		}
	}
	return nil
}

// softmaxRowsI8 computes softmax over rows of depth int8 logits — the raw
// kernel behind the int8→int8 case of evalSoftmaxScratch and the batched
// InvokeBatch plan, which stacks many utterances' rows into one call. The
// staging buffers must hold depth float64 each.
func softmaxRowsI8(in, out []int8, rows, depth int, beta float64, inQ, outQ *QuantParams, logits, probs []float64) {
	logits = logits[:depth]
	probs = probs[:depth]
	for b := 0; b < rows; b++ {
		row := in[b*depth : (b+1)*depth]
		for i, q := range row {
			logits[i] = inQ.Dequantize(q)
		}
		maxV := logits[0]
		for _, v := range logits[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range logits {
			probs[i] = math.Exp(beta * (v - maxV))
			sum += probs[i]
		}
		orow := out[b*depth : (b+1)*depth]
		for i, p := range probs {
			orow[i] = outQ.Quantize(p / sum)
		}
	}
}

// SoftmaxOutputParams is the standard TFLite int8 softmax output
// quantization: scale 1/256, zero point -128, covering [0, 1).
func SoftmaxOutputParams() QuantParams {
	return QuantParams{Scale: 1.0 / 256.0, ZeroPoint: -128}
}

// evalReshape copies data into the new shape (element count must match).
func evalReshape(in, out *Tensor) error {
	if in.NumElements() != out.NumElements() {
		return fmt.Errorf("tflm: Reshape element count %d != %d", in.NumElements(), out.NumElements())
	}
	if in.Type != out.Type {
		return fmt.Errorf("tflm: Reshape type %v != %v", in.Type, out.Type)
	}
	switch in.Type {
	case Int8:
		copy(out.I8, in.I8)
	case UInt8:
		copy(out.U8, in.U8)
	case Float32:
		copy(out.F32, in.F32)
	case Int32:
		copy(out.I32, in.I32)
	}
	return nil
}

// evalPool implements MaxPool2D and AvgPool2D over NHWC tensors with
// identical input/output quantization.
func evalPool(op OpCode, in, out *Tensor, p PoolParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 || p.FilterH <= 0 || p.FilterW <= 0 {
		return fmt.Errorf("tflm: pool geometry invalid: %+v", p)
	}
	batches, inH, inW, ch := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	outH, padT := convOutputSize(inH, p.FilterH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, p.FilterW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, ch}) {
		return fmt.Errorf("tflm: pool output shape %v, want %v", out.Shape, []int{batches, outH, outW, ch})
	}
	if in.Type != Int8 && in.Type != Float32 {
		return fmt.Errorf("tflm: pool unsupported type %v", in.Type)
	}
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for c := 0; c < ch; c++ {
					switch in.Type {
					case Int8:
						var acc int32
						maxV := int32(math.MinInt32)
						count := int32(0)
						for ky := 0; ky < p.FilterH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							for kx := 0; kx < p.FilterW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								v := int32(in.I8[((b*inH+iy)*inW+ix)*ch+c])
								acc += v
								if v > maxV {
									maxV = v
								}
								count++
							}
						}
						var v int32
						if op == OpMaxPool2D {
							v = maxV
						} else if count > 0 {
							// Round-half-away-from-zero average, as TFLite.
							if acc >= 0 {
								v = (acc + count/2) / count
							} else {
								v = (acc - count/2) / count
							}
						}
						out.I8[((b*outH+oy)*outW+ox)*ch+c] = int8(clampInt32(v, -128, 127))
					case Float32:
						var acc float32
						maxV := float32(math.Inf(-1))
						count := 0
						for ky := 0; ky < p.FilterH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							for kx := 0; kx < p.FilterW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								v := in.F32[((b*inH+iy)*inW+ix)*ch+c]
								acc += v
								if v > maxV {
									maxV = v
								}
								count++
							}
						}
						var v float32
						if op == OpMaxPool2D {
							v = maxV
						} else if count > 0 {
							v = acc / float32(count)
						}
						out.F32[((b*outH+oy)*outW+ox)*ch+c] = v
					}
				}
			}
		}
	}
	return nil
}
