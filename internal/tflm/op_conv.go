package tflm

import "fmt"

// evalConv2D dispatches Conv2D on dtype. Tensors: input NHWC, filter OHWI,
// bias [O] (int32 for quantized, float32 for float), output NHWC.
func evalConv2D(in, w, bias, out *Tensor, p Conv2DParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	switch in.Type {
	case Int8:
		return evalConv2DInt8(in, w, bias, out, p)
	case Float32:
		return evalConv2DFloat(in, w, bias, out, p)
	default:
		return fmt.Errorf("tflm: Conv2D unsupported input type %v", in.Type)
	}
}

func evalConv2DInt8(in, w, bias, out *Tensor, p Conv2DParams) error {
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	outC, kH, kW := w.Dim(0), w.Dim(1), w.Dim(2)
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return err
	}
	inZP := in.Quant.ZeroPoint
	outZP := out.Quant.ZeroPoint
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)

	src, flt, dst := in.I8, w.I8, out.I8
	b32 := bias.I32
	oi := 0
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for oc := 0; oc < outC; oc++ {
					acc := b32[oc]
					wBase := oc * kH * kW * inC
					for ky := 0; ky < kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sBase := ((b*inH+iy)*inW + ix) * inC
							wRow := wBase + (ky*kW+kx)*inC
							for ic := 0; ic < inC; ic++ {
								acc += (int32(src[sBase+ic]) - inZP) * int32(flt[wRow+ic])
							}
						}
					}
					v := clampInt32(mult.Apply(acc)+outZP, lo, hi)
					dst[oi] = int8(v)
					oi++
				}
			}
		}
	}
	return nil
}

func evalConv2DFloat(in, w, bias, out *Tensor, p Conv2DParams) error {
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	outC, kH, kW := w.Dim(0), w.Dim(1), w.Dim(2)
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: Conv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	src, flt, dst, b32 := in.F32, w.F32, out.F32, bias.F32
	oi := 0
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for oc := 0; oc < outC; oc++ {
					acc := b32[oc]
					wBase := oc * kH * kW * inC
					for ky := 0; ky < kH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < kW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sBase := ((b*inH+iy)*inW + ix) * inC
							wRow := wBase + (ky*kW+kx)*inC
							for ic := 0; ic < inC; ic++ {
								acc += src[sBase+ic] * flt[wRow+ic]
							}
						}
					}
					dst[oi] = activationApplyFloat(p.Activation, acc)
					oi++
				}
			}
		}
	}
	return nil
}

// evalDepthwiseConv2D implements DepthwiseConv2D. The filter is [1, kH, kW,
// outC] where outC = inC * DepthMultiplier.
func evalDepthwiseConv2D(in, w, bias, out *Tensor, p Conv2DParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tflm: DepthwiseConv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	mul := p.DepthMultiplier
	if mul <= 0 {
		mul = 1
	}
	batches, inH, inW, inC := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	kH, kW, outC := w.Dim(1), w.Dim(2), w.Dim(3)
	if outC != inC*mul {
		return fmt.Errorf("tflm: DepthwiseConv2D filter channels %d != %d*%d", outC, inC, mul)
	}
	outH, padT := convOutputSize(inH, kH, p.StrideH, p.Padding)
	outW, padL := convOutputSize(inW, kW, p.StrideW, p.Padding)
	if !out.ShapeEquals([]int{batches, outH, outW, outC}) {
		return fmt.Errorf("tflm: DepthwiseConv2D output shape %v, want %v", out.Shape, []int{batches, outH, outW, outC})
	}
	if in.Type != Int8 {
		return fmt.Errorf("tflm: DepthwiseConv2D unsupported input type %v", in.Type)
	}
	mult, err := requantMultiplier(in, w, out)
	if err != nil {
		return err
	}
	inZP, outZP := in.Quant.ZeroPoint, out.Quant.ZeroPoint
	lo, hi := activationRangeQuantized(p.Activation, *out.Quant)
	src, flt, dst, b32 := in.I8, w.I8, out.I8, bias.I32
	for b := 0; b < batches; b++ {
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*p.StrideH - padT
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*p.StrideW - padL
				for ic := 0; ic < inC; ic++ {
					for m := 0; m < mul; m++ {
						oc := ic*mul + m
						acc := b32[oc]
						for ky := 0; ky < kH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							for kx := 0; kx < kW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								sIdx := ((b*inH+iy)*inW+ix)*inC + ic
								wIdx := (ky*kW+kx)*outC + oc
								acc += (int32(src[sIdx]) - inZP) * int32(flt[wIdx])
							}
						}
						v := clampInt32(mult.Apply(acc)+outZP, lo, hi)
						dst[((b*outH+oy)*outW+ox)*outC+oc] = int8(v)
					}
				}
			}
		}
	}
	return nil
}
