package tflm

import "fmt"

// evalConv2D dispatches Conv2D on dtype. Tensors: input NHWC, filter OHWI,
// bias [O] (int32 for quantized, float32 for float), output NHWC. Both
// dtypes run the im2col+GEMM kernels from gemm.go; the scalar originals
// live in op_ref.go and the two are kept bit-exact by tests.
func evalConv2D(in, w, bias, out *Tensor, p Conv2DParams) error {
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("tflm: Conv2D stride %dx%d invalid", p.StrideH, p.StrideW)
	}
	if w.Dim(3) != in.Dim(3) {
		return fmt.Errorf("tflm: Conv2D filter input channels %d != input channels %d", w.Dim(3), in.Dim(3))
	}
	switch in.Type {
	case Int8:
		return evalConv2DInt8(in, w, bias, out, p)
	case Float32:
		return evalConv2DFloat(in, w, bias, out, p)
	default:
		return fmt.Errorf("tflm: Conv2D unsupported input type %v", in.Type)
	}
}

// evalConv2DInt8 is the standalone entry point: it preps and allocates its
// own im2col scratch per call. The interpreter instead preps once at plan
// time and reuses its arena-owned scratch (see interp.go).
func evalConv2DInt8(in, w, bias, out *Tensor, p Conv2DParams) error {
	g, err := resolveConvGeom(in, w, out, p)
	if err != nil {
		return err
	}
	pr, err := prepLinearInt8(in, w, bias, out, p.Activation, g.outC, g.K)
	if err != nil {
		return err
	}
	// The im2col packer fills padding with the zero point as an int8;
	// models with an out-of-range ZP (legal int32 in QuantParams, nothing
	// validates it) keep the exact scalar path.
	if pr.inZP < -128 || pr.inZP > 127 {
		return evalConv2DInt8Ref(in, w, bias, out, p)
	}
	convInt8Gemm(in.I8, out.I8, g, pr, make([]int8, g.batches*g.colLen()), make([]uint64, pr.gemmScratchLen()))
	return nil
}

func evalConv2DFloat(in, w, bias, out *Tensor, p Conv2DParams) error {
	g, err := resolveConvGeom(in, w, out, p)
	if err != nil {
		return err
	}
	convFloatGemm(in, w, bias, out, g, p.Activation, make([]float32, g.colLen()))
	return nil
}

// evalDepthwiseConv2D implements DepthwiseConv2D. The filter is [1, kH, kW,
// outC] where outC = inC * DepthMultiplier.
func evalDepthwiseConv2D(in, w, bias, out *Tensor, p Conv2DParams) error {
	dp, err := prepDepthwiseInt8(in, w, bias, out, p)
	if err != nil {
		return err
	}
	depthwiseInt8Opt(in, w, bias, out, dp)
	return nil
}
