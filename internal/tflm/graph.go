package tflm

import "fmt"

// OpCode enumerates the supported operators.
type OpCode uint8

// Supported operators.
const (
	OpConv2D OpCode = iota
	OpDepthwiseConv2D
	OpFullyConnected
	OpSoftmax
	OpReshape
	OpMaxPool2D
	OpAvgPool2D
	OpRelu // standalone activation (fused activations live in op params)
)

// String names the op.
func (o OpCode) String() string {
	switch o {
	case OpConv2D:
		return "Conv2D"
	case OpDepthwiseConv2D:
		return "DepthwiseConv2D"
	case OpFullyConnected:
		return "FullyConnected"
	case OpSoftmax:
		return "Softmax"
	case OpReshape:
		return "Reshape"
	case OpMaxPool2D:
		return "MaxPool2D"
	case OpAvgPool2D:
		return "AvgPool2D"
	case OpRelu:
		return "Relu"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// Padding selects the convolution/pooling padding scheme.
type Padding uint8

// Padding schemes, matching TensorFlow semantics.
const (
	PaddingSame Padding = iota
	PaddingValid
)

// Activation is a fused activation function.
type Activation uint8

// Fused activations.
const (
	ActNone Activation = iota
	ActReLU
	ActReLU6
)

// Conv2DParams parameterizes Conv2D and DepthwiseConv2D. Filters are OHWI
// for Conv2D and 1HWC (channel multiplier folded into C) for depthwise.
type Conv2DParams struct {
	// StrideH and StrideW are the vertical/horizontal strides.
	StrideH, StrideW int
	// Padding selects SAME or VALID edge handling.
	Padding Padding
	// Activation is the fused post-accumulation activation.
	Activation Activation
	// DepthMultiplier applies to DepthwiseConv2D only.
	DepthMultiplier int
}

// FullyConnectedParams parameterizes FullyConnected; weights are [out, in].
type FullyConnectedParams struct {
	// Activation is the fused post-accumulation activation.
	Activation Activation
}

// SoftmaxParams parameterizes Softmax.
type SoftmaxParams struct {
	// Beta scales the logits before exponentiation (1.0 is standard).
	Beta float64
}

// PoolParams parameterizes the pooling ops.
type PoolParams struct {
	// FilterH and FilterW are the pooling window dimensions.
	FilterH, FilterW int
	// StrideH and StrideW are the window strides.
	StrideH, StrideW int
	// Padding selects SAME or VALID edge handling.
	Padding Padding
}

// ReshapeParams carries the target shape (one dimension may be -1).
type ReshapeParams struct {
	// NewShape is the target shape; one dimension may be -1 (inferred).
	NewShape []int
}

// Node is one operator application: it reads Inputs and writes Outputs
// (indices into the model's tensor table).
type Node struct {
	// Op selects the operator.
	Op OpCode
	// Inputs and Outputs index the model's tensor table.
	Inputs, Outputs []int
	// Params is the op-specific parameter struct (Conv2DParams etc.).
	Params any
}

// Model is a dataflow graph plus its tensor table, the unit that gets
// serialized, encrypted, provisioned and executed.
type Model struct {
	// Description is free-form vendor metadata.
	Description string
	// Version is the model version the vendor licenses; the nonce-based
	// rollback protection of §V is keyed on it.
	Version uint64
	// Tensors is the tensor table Node indices refer to.
	Tensors []*Tensor
	// Nodes is the operator list in execution order.
	Nodes []Node
	// Inputs and Outputs index the model's external interface tensors.
	Inputs, Outputs []int
}

// Tensor returns tensor i (panics on bad index, which indicates a malformed
// graph caught at validation time).
func (m *Model) Tensor(i int) *Tensor { return m.Tensors[i] }

// Clone returns a copy of the model that shares constant (weight/bias)
// tensors with the receiver but carries fresh, unallocated non-constant
// tensors. Weights are immutable at inference time, so multiple
// interpreters — one per pipeline worker — can run concurrently over clones
// of one model without duplicating the weight storage.
func (m *Model) Clone() *Model {
	out := &Model{
		Description: m.Description,
		Version:     m.Version,
		Tensors:     make([]*Tensor, len(m.Tensors)),
		Nodes:       append([]Node(nil), m.Nodes...),
		Inputs:      append([]int(nil), m.Inputs...),
		Outputs:     append([]int(nil), m.Outputs...),
	}
	for i, t := range m.Tensors {
		if t.IsConst {
			out.Tensors[i] = t
			continue
		}
		out.Tensors[i] = &Tensor{
			Name:        t.Name,
			Type:        t.Type,
			Shape:       append([]int(nil), t.Shape...),
			Quant:       t.Quant,
			ArenaOffset: -1,
		}
	}
	return out
}

// Validate checks structural invariants: index ranges, constant tensors
// allocated, non-constant tensors produced before use, IO lists sane.
func (m *Model) Validate() error {
	inRange := func(i int) bool { return i >= 0 && i < len(m.Tensors) }
	produced := make([]bool, len(m.Tensors))
	for i, t := range m.Tensors {
		if t == nil {
			return fmt.Errorf("tflm: tensor %d is nil", i)
		}
		if t.IsConst {
			if !t.Allocated() {
				return fmt.Errorf("tflm: constant tensor %q has no data", t.Name)
			}
			produced[i] = true
		}
		if t.NumElements() <= 0 {
			return fmt.Errorf("tflm: tensor %q has empty shape %v", t.Name, t.Shape)
		}
	}
	for _, i := range m.Inputs {
		if !inRange(i) {
			return fmt.Errorf("tflm: input index %d out of range", i)
		}
		if m.Tensors[i].IsConst {
			return fmt.Errorf("tflm: input %q is constant", m.Tensors[i].Name)
		}
		produced[i] = true
	}
	for ni, n := range m.Nodes {
		for _, i := range n.Inputs {
			if !inRange(i) {
				return fmt.Errorf("tflm: node %d (%v) input index %d out of range", ni, n.Op, i)
			}
			if !produced[i] {
				return fmt.Errorf("tflm: node %d (%v) reads tensor %q before it is produced", ni, n.Op, m.Tensors[i].Name)
			}
		}
		for _, i := range n.Outputs {
			if !inRange(i) {
				return fmt.Errorf("tflm: node %d (%v) output index %d out of range", ni, n.Op, i)
			}
			if m.Tensors[i].IsConst {
				return fmt.Errorf("tflm: node %d (%v) writes constant tensor %q", ni, n.Op, m.Tensors[i].Name)
			}
			produced[i] = true
		}
	}
	for _, i := range m.Outputs {
		if !inRange(i) {
			return fmt.Errorf("tflm: output index %d out of range", i)
		}
		if !produced[i] {
			return fmt.Errorf("tflm: output %q never produced", m.Tensors[i].Name)
		}
	}
	if len(m.Inputs) == 0 || len(m.Outputs) == 0 {
		return fmt.Errorf("tflm: model needs at least one input and one output")
	}
	return nil
}

// WeightBytes returns the total size of constant tensor data, the number the
// paper's "compressed model is about 49 kB" claim refers to (E3).
func (m *Model) WeightBytes() int {
	total := 0
	for _, t := range m.Tensors {
		if t.IsConst {
			total += t.ByteSize()
		}
	}
	return total
}

// NumMACs estimates multiply-accumulate operations for one inference, the
// basis of the cycle-cost model.
func (m *Model) NumMACs() uint64 {
	var total uint64
	for _, n := range m.Nodes {
		total += nodeMACs(m, n)
	}
	return total
}

func nodeMACs(m *Model, n Node) uint64 {
	switch n.Op {
	case OpConv2D:
		out := m.Tensor(n.Outputs[0])
		w := m.Tensor(n.Inputs[1])
		// out elems × filter volume (KH*KW*Cin)
		return uint64(out.NumElements()) * uint64(w.Dim(1)*w.Dim(2)*w.Dim(3))
	case OpDepthwiseConv2D:
		out := m.Tensor(n.Outputs[0])
		w := m.Tensor(n.Inputs[1])
		return uint64(out.NumElements()) * uint64(w.Dim(1)*w.Dim(2))
	case OpFullyConnected:
		w := m.Tensor(n.Inputs[1])
		return uint64(w.Dim(0)) * uint64(w.Dim(1))
	default:
		return 0
	}
}
