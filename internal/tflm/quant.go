package tflm

import (
	"fmt"
	"math"
)

// Fixed-point requantization arithmetic, bit-compatible with TFLite /
// gemmlowp. Quantized kernels accumulate in int32 and rescale with an
// integer multiplier and shift; reproducing TFLite's exact rounding is what
// makes our int8 results match the original toolchain's behaviour.

// QuantizedMultiplier represents a real multiplier as
// real = M * 2^(Shift-31) with M in [2^30, 2^31).
type QuantizedMultiplier struct {
	// Multiplier is M, the Q31 mantissa in [2^30, 2^31).
	Multiplier int32
	// Shift is the power-of-two exponent of the decomposition.
	Shift int
}

// NewQuantizedMultiplier decomposes a positive real multiplier, mirroring
// TFLite's QuantizeMultiplier.
func NewQuantizedMultiplier(real float64) (QuantizedMultiplier, error) {
	if real <= 0 || math.IsNaN(real) || math.IsInf(real, 0) {
		return QuantizedMultiplier{}, fmt.Errorf("tflm: multiplier %v not representable", real)
	}
	frac, exp := math.Frexp(real) // real = frac * 2^exp, frac in [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // rounding overflowed: frac was ~1
		q /= 2
		exp++
	}
	if exp < -31 { // underflow to zero multiplier
		return QuantizedMultiplier{Multiplier: 0, Shift: 0}, nil
	}
	return QuantizedMultiplier{Multiplier: int32(q), Shift: exp}, nil
}

// Real returns the represented real multiplier (for tests).
func (m QuantizedMultiplier) Real() float64 {
	return float64(m.Multiplier) * math.Pow(2, float64(m.Shift-31))
}

// saturatingRoundingDoublingHighMul is gemmlowp's SQRDMULH. Note the
// truncating (not flooring) division, which matters for negative products.
func saturatingRoundingDoublingHighMul(a, b int32) int32 {
	if a == math.MinInt32 && b == math.MinInt32 {
		return math.MaxInt32
	}
	ab := int64(a) * int64(b)
	nudge := int64(1 << 30)
	if ab < 0 {
		nudge = 1 - (1 << 30)
	}
	return int32((ab + nudge) / (1 << 31))
}

// roundingDivideByPOT divides by 2^exponent with round-half-away-from-zero,
// gemmlowp's RoundingDivideByPOT.
func roundingDivideByPOT(x int32, exponent int) int32 {
	if exponent == 0 {
		return x
	}
	mask := int32(1<<uint(exponent)) - 1
	remainder := x & mask
	threshold := mask >> 1
	if x < 0 {
		threshold++
	}
	result := x >> uint(exponent)
	if remainder > threshold {
		result++
	}
	return result
}

// Apply rescales an int32 accumulator: round(acc * real_multiplier) in
// TFLite's fixed-point semantics (MultiplyByQuantizedMultiplier).
func (m QuantizedMultiplier) Apply(acc int32) int32 {
	leftShift := m.Shift
	if leftShift < 0 {
		leftShift = 0
	}
	rightShift := -m.Shift
	if rightShift < 0 {
		rightShift = 0
	}
	x := acc
	if leftShift > 0 {
		x = int32(uint32(x) << uint(leftShift)) // TFLite shifts without saturation here
	}
	x = saturatingRoundingDoublingHighMul(x, m.Multiplier)
	return roundingDivideByPOT(x, rightShift)
}

// clampInt32 saturates v into [lo, hi].
func clampInt32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ChooseQuantParams derives affine int8 parameters covering [minVal, maxVal],
// as post-training quantization calibration does. The range is nudged to
// include zero exactly (TFLite requirement).
func ChooseQuantParams(minVal, maxVal float64) QuantParams {
	if minVal > 0 {
		minVal = 0
	}
	if maxVal < 0 {
		maxVal = 0
	}
	if maxVal == minVal { // all-zero tensor
		return QuantParams{Scale: 1, ZeroPoint: 0}
	}
	const qmin, qmax = -128.0, 127.0
	scale := (maxVal - minVal) / (qmax - qmin)
	zpReal := qmin - minVal/scale
	zp := int32(math.Round(zpReal))
	if zp < -128 {
		zp = -128
	}
	if zp > 127 {
		zp = 127
	}
	return QuantParams{Scale: scale, ZeroPoint: zp}
}

// SymmetricWeightParams derives symmetric (zero-point 0) int8 parameters for
// a weight tensor with the given absolute maximum, TFLite's convention for
// int8 weights.
func SymmetricWeightParams(absMax float64) QuantParams {
	if absMax == 0 {
		absMax = 1e-8
	}
	return QuantParams{Scale: absMax / 127, ZeroPoint: 0}
}
